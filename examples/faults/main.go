// Faults: walk through the scripted fault-injection layer on a
// rack-aggregated cluster. Builds an aggregator-crash plan (rack 1's
// aggregator goes down mid-run and every affected reduction rides the
// timeout/re-push failover), runs it against the clean baseline under
// both an unwindowed discipline and the credit window, and prints the
// graceful-degradation comparison plus the plan's JSON — the same format
// `p3sim -faultplan` replays deterministically.
//
//	go run ./examples/faults
//	go run ./examples/faults -machines 64 -racksize 16 -sched damped
package main

import (
	"flag"
	"fmt"
	"log"

	"p3/internal/cluster"
	"p3/internal/faults"
	"p3/internal/netsim"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

func run(sched string, cfg cluster.Config, plan *faults.Plan) cluster.Result {
	st, err := strategy.SlicingOnly(0).WithSched(sched)
	if err != nil {
		log.Fatal(err)
	}
	st.Name = "sliced+" + sched
	cfg.Strategy = st
	cfg.Faults = plan
	return cluster.Run(cfg)
}

func main() {
	name := flag.String("model", "resnet50", "resnet50|inception3|vgg19|sockeye")
	machines := flag.Int("machines", 64, "cluster size (multiple of -racksize)")
	rackSize := flag.Int("racksize", 16, "machines per rack")
	gbps := flag.Float64("gbps", 1.5, "host link bandwidth")
	sched := flag.String("sched", "fifo", "unwindowed discipline to compare against credit")
	crashAt := flag.Float64("crashms", 100, "crash rack 1's aggregator at this many ms")
	warm := flag.Int("warm", 2, "warmup iterations")
	measure := flag.Int("measure", 8, "measured iterations")
	seed := flag.Int64("seed", 2, "workload seed")
	flag.Parse()
	if *machines%*rackSize != 0 || *machines / *rackSize < 2 {
		log.Fatalf("need at least 2 full racks: machines=%d racksize=%d", *machines, *rackSize)
	}

	topo := netsim.Topology{RackSize: *rackSize, CoreOversub: 4}
	racks := *machines / *rackSize
	servers := make([]int, racks)
	for r := range servers {
		servers[r] = r * *rackSize // one server per rack, spread placement
	}
	base := cluster.Config{
		Model: zoo.ByName(*name), Machines: *machines, Servers: racks,
		BandwidthGbps: *gbps, WarmupIters: *warm, MeasureIters: *measure, Seed: *seed,
		Topology: topo, ServerMachines: servers, RackAggregation: true,
	}

	// The plan: rack 1's aggregator goes down at crashAt and never
	// restarts (Until 0 = permanent). DetectNs is how long a worker waits
	// before treating silence as a crash; TimeoutNs paces the server's
	// re-push requests for partial reductions the crash destroyed.
	plan := &faults.Plan{
		DetectNs:  2e6,
		TimeoutNs: 10e6,
		Events: []faults.Event{{
			Kind:  faults.KindAggCrash,
			At:    int64(*crashAt * 1e6),
			Tier:  faults.TierRack,
			Index: 1,
		}},
	}
	if err := plan.Validate(*machines, topo); err != nil {
		log.Fatal(err)
	}
	data, err := plan.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault plan (replay with p3sim -faultplan):\n%s\n", data)

	fmt.Printf("%s on %d machines (%d racks of %d) @%.1f Gbps, rack aggregation, aggregator crash at %.0f ms\n\n",
		base.Model, *machines, racks, *rackSize, *gbps, *crashAt)
	fmt.Printf("%8s %10s %12s %10s %10s %8s %12s\n",
		"sched", "run", "samples/s/m", "iter_ms", "failovers", "lost", "retained")
	for _, sc := range []string{*sched, "credit"} {
		clean := run(sc, base, nil)
		faulted := run(sc, base, plan)
		perM := func(r cluster.Result) float64 { return r.Throughput / float64(r.Machines) }
		fmt.Printf("%8s %10s %12.1f %10.2f %10d %8d %12s\n",
			sc, "clean", perM(clean), clean.MeanIterTime.Millis(), clean.AggFailovers, clean.LostReductions, "100.0%")
		fmt.Printf("%8s %10s %12.1f %10.2f %10d %8d %11.1f%%\n",
			sc, "agg-crash", perM(faulted), faulted.MeanIterTime.Millis(), faulted.AggFailovers, faulted.LostReductions,
			100*perM(faulted)/perM(clean))
	}
	fmt.Println("\nEvery lost reduction is a partial sum the crash destroyed; failovers count")
	fmt.Println("the recovery actions (direct re-pushes, recovery pulls, re-push rounds)")
	fmt.Println("that rebuilt them. The run completes under every discipline, degraded:")
	fmt.Println("the crashed rack's workers push directly across the oversubscribed core,")
	fmt.Println("and a fixed credit window sized for the healthy in-rack round-trip")
	fmt.Println("throttles that much slower path hardest (static-window/BDP mismatch) —")
	fmt.Println("sweep stragglers and link degradation too with `p3bench faults`.")
}
