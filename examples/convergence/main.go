// Convergence: train the same residual classifier with synchronous dense
// aggregation (what the baseline AND P3 compute — identical by
// construction), with Deep Gradient Compression, and with asynchronous SGD,
// then print the validation-accuracy trajectories side by side — the
// substance of the paper's Section 5.6 and Appendix B.2.
//
//	go run ./examples/convergence
package main

import (
	"fmt"

	"p3/internal/data"
	"p3/internal/nn"
	"p3/internal/opt"
	"p3/internal/train"
)

func main() {
	set := data.Generate(data.Config{Samples: 2560, Features: 64, Classes: 10, Noise: 1.5, Seed: 7})
	tr, val := set.Split(0.25)
	fmt.Printf("synthetic task: %d train / %d val samples, 10 classes\n\n", tr.N(), val.N())

	netCfg := nn.Config{In: 64, Width: 64, Classes: 10, Blocks: 4, Seed: 3}
	const epochs = 24
	base := train.Config{
		Net: netCfg, Workers: 4, Batch: 16, Epochs: epochs,
		Schedule: opt.StepSchedule{Base: 0.06, Gamma: 0.1, Milestones: []int{15, 21}},
		Momentum: 0.9, WeightDecay: 1e-4, ClipNorm: 2,
		Seed: 11, Parallel: true,
	}

	modes := []struct {
		label string
		cfg   func(train.Config) train.Config
	}{
		{"p3/baseline (dense)", func(c train.Config) train.Config { c.Mode = train.Dense; return c }},
		{"dgc @99.9%", func(c train.Config) train.Config {
			c.Mode = train.DGC
			c.DGCSparsity = 0.999
			return c
		}},
		{"asgd", func(c train.Config) train.Config { c.Mode = train.ASGD; return c }},
	}

	histories := make([]*train.History, len(modes))
	for i, m := range modes {
		h, _ := train.Run(m.cfg(base), tr, val)
		histories[i] = h
	}

	fmt.Printf("%6s", "epoch")
	for _, m := range modes {
		fmt.Printf("%22s", m.label)
	}
	fmt.Println()
	for e := 0; e < epochs; e++ {
		fmt.Printf("%6d", e+1)
		for _, h := range histories {
			fmt.Printf("%22.4f", h.ValAcc[e])
		}
		fmt.Println()
	}
	fmt.Println()
	for i, m := range modes {
		fmt.Printf("final %-22s %.4f\n", m.label+":", histories[i].FinalValAcc)
	}
	fmt.Println("\npaper's finding: P3 == baseline exactly; DGC slightly below; ASGD below and unstable at higher learning rates")
}
