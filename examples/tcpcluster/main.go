// Tcpcluster: end-to-end distributed training over the REAL TCP parameter
// server (internal/pstcp) on loopback — the full Section 4.2 machinery with
// nothing simulated. Three worker processes (goroutines here) train a
// shared residual classifier through two P3 servers: gradients are cut into
// parameter slices, pushed through priority queues (first layer most
// urgent), aggregated server-side on the Nth push, updated, and immediately
// broadcast back.
//
// The example verifies the distributed run's replicas stay bit-identical
// across workers and that the loss falls — i.e., the wire protocol
// faithfully implements synchronous SGD.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"sync"

	"p3/internal/core"
	"p3/internal/data"
	"p3/internal/nn"
	"p3/internal/pstcp"
	"p3/internal/train"
	"p3/internal/transport"
)

const (
	nServers = 2
	nWorkers = 3
	nEpochs  = 8
	batch    = 16
	lr       = 0.05
	sliceSz  = 256 // parameters per slice: small so priority visibly matters
)

func main() {
	set := data.Generate(data.Config{Samples: 1200, Features: 32, Classes: 6, Noise: 1.2, Seed: 9})
	tr, val := set.Split(0.25)
	netCfg := nn.Config{In: 32, Width: 32, Classes: 6, Blocks: 2, Seed: 5}

	// The slicing plan: every worker and server agrees on chunk IDs,
	// offsets, priorities and server placement.
	probe := nn.NewResidualMLP(netCfg)
	plan := train.PlanFor(probe, sliceSz, nServers)
	fmt.Printf("network: %d params in %d tensors -> %d slices across %d servers\n",
		probe.NumParams(), len(probe.Params()), plan.NumChunks(), nServers)

	// Start the parameter servers.
	var servers []*pstcp.Server
	var addrs []string
	for s := 0; s < nServers; s++ {
		srv := pstcp.NewServer(pstcp.ServerConfig{
			ID: s, Workers: nWorkers, Sched: "p3", Updater: pstcp.SGDUpdater(lr),
		})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, addr)
		fmt.Printf("server %d listening on %s\n", s, addr)
	}

	// Launch the workers.
	var wg sync.WaitGroup
	finals := make([]*nn.Network, nWorkers)
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			finals[w] = runWorker(w, addrs, plan, netCfg, tr, val)
		}(w)
	}
	wg.Wait()
	for _, srv := range servers {
		srv.Close()
	}

	// All replicas must have identical parameters: they installed identical
	// broadcasts every iteration.
	for w := 1; w < nWorkers; w++ {
		pa, pb := finals[0].Params(), finals[w].Params()
		for i := range pa {
			for j := range pa[i].Data {
				if pa[i].Data[j] != pb[i].Data[j] {
					log.Fatalf("worker %d diverged from worker 0 at tensor %d", w, i)
				}
			}
		}
	}
	fmt.Printf("\nall %d replicas bit-identical after training\n", nWorkers)
	fmt.Printf("final validation accuracy: %.4f\n", finals[0].Accuracy(val.X, val.Y))
}

// runWorker is one training process: compute local gradients, slice, push
// by priority, wait for the broadcast of every slice, install, repeat.
func runWorker(id int, addrs []string, plan *core.Plan, netCfg nn.Config,
	tr, val *data.Set) *nn.Network {

	net := nn.NewResidualMLP(netCfg) // identical init on every worker
	params := net.Params()
	shard := tr.Shard(id, nWorkers)

	recv := make(chan *transport.Frame, plan.NumChunks()+8)
	worker, err := pstcp.DialWorker(id, addrs, "p3", func(f *transport.Frame) { recv <- f })
	if err != nil {
		log.Fatal(err)
	}
	defer worker.Close()

	// Worker 0 seeds the servers with the initial parameter values.
	if id == 0 {
		for _, c := range plan.Chunks {
			worker.Init(c.Server, uint64(c.ID), sliceOf(params[c.Layer].Data, c))
		}
	}

	iters := shard.N() / batch * nEpochs
	for it := 0; it < iters; it++ {
		idx := make([]int, batch)
		for i := range idx {
			idx[i] = (it*batch + i) % shard.N()
		}
		x, y := shard.Batch(idx)
		loss := net.LossAndBackward(net.Forward(x), y)

		// Produce: slice the gradients and push every slice; the worker's
		// consumer thread transmits them most-urgent-first.
		for _, c := range plan.Chunks {
			worker.Push(c.Server, uint64(c.ID), int32(it), int32(c.Priority),
				sliceOf(params[c.Layer].Grad, c))
		}
		// Consume: wait for the updated value of every slice and install.
		for n := 0; n < plan.NumChunks(); n++ {
			f := <-recv
			c := plan.Chunks[f.Key]
			dst := params[c.Layer].Data[c.Offset : c.Offset+c.Params]
			for i, v := range f.Values {
				dst[i] = float64(v)
			}
		}
		if id == 0 && (it+1)%(iters/4) == 0 {
			fmt.Printf("worker 0: iter %3d/%d  loss %.4f  val_acc %.4f\n",
				it+1, iters, loss, net.Accuracy(val.X, val.Y))
		}
	}
	return net
}

// sliceOf extracts chunk c's float32 view of a float64 tensor.
func sliceOf(t []float64, c core.Chunk) []float32 {
	out := make([]float32, c.Params)
	for i := range out {
		out[i] = float32(t[c.Offset+int64(i)])
	}
	return out
}
