// Quickstart: simulate one data-parallel training run of ResNet-50 on a
// four-machine cluster at 4 Gbps, under the MXNet baseline and under P3,
// and print the throughput difference — the paper's headline experiment in
// a dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"p3/internal/cluster"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

func main() {
	model := zoo.ResNet50()
	fmt.Println("model:", model)

	run := func(s strategy.Strategy) cluster.Result {
		return cluster.Run(cluster.Config{
			Model:         model,
			Machines:      4,
			Strategy:      s,
			BandwidthGbps: 4,
			Seed:          1,
		})
	}

	base := run(strategy.Baseline())
	p3 := run(strategy.P3(0)) // 0 = the paper's 50,000-parameter slices

	fmt.Printf("baseline: %6.1f images/sec (iteration %6.1f ms)\n",
		base.Throughput, base.MeanIterTime.Millis())
	fmt.Printf("p3:       %6.1f images/sec (iteration %6.1f ms)\n",
		p3.Throughput, p3.MeanIterTime.Millis())
	fmt.Printf("speedup:  %.1f%%  (paper reports 26%% for ResNet-50 at 4 Gbps)\n",
		(p3.Speedup(base)-1)*100)
}
