// Stallmap: visualize WHERE the forward pass stalls waiting for parameters
// — the queueing-delay mechanism of the paper's Figures 1 and 4. For each
// synchronization strategy, the simulator records how long worker 0 blocked
// at each layer across the measured iterations; the histogram makes P3's
// effect directly visible: the baseline piles its stall onto the earliest
// layers (their gradients leave last and return last), while P3 drains it.
//
//	go run ./examples/stallmap -model sockeye -bw 4
package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"p3/internal/cluster"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

func main() {
	name := flag.String("model", "sockeye", "resnet50|inception3|vgg19|sockeye")
	bw := flag.Float64("bw", 4, "bandwidth in Gbps")
	top := flag.Int("top", 8, "layers to show")
	flag.Parse()

	m := zoo.ByName(*name)
	fmt.Printf("%s at %g Gbps, 4 machines — per-layer forward stalls of worker 0\n\n", m.Name, *bw)

	for _, s := range []strategy.Strategy{strategy.Baseline(), strategy.SlicingOnly(0), strategy.P3(0)} {
		r := cluster.Run(cluster.Config{
			Model: m, Machines: 4, Strategy: s, BandwidthGbps: *bw, Seed: 1,
		})
		type stall struct {
			layer int
			ms    float64
		}
		var stalls []stall
		for l, t := range r.LayerStalls {
			if t > 0 {
				stalls = append(stalls, stall{l, t.Millis()})
			}
		}
		sort.Slice(stalls, func(i, j int) bool { return stalls[i].ms > stalls[j].ms })

		fmt.Printf("%s: iter %.1f ms (compute %.1f ms), total stall %.1f ms over %d iterations\n",
			s.Name, r.MeanIterTime.Millis(), r.ComputeIterTime.Millis(),
			r.TotalStall().Millis(), len(r.IterTimes))
		max := 1.0
		if len(stalls) > 0 {
			max = stalls[0].ms
		}
		for i, st := range stalls {
			if i >= *top {
				fmt.Printf("  ... %d more layers with smaller stalls\n", len(stalls)-*top)
				break
			}
			bar := strings.Repeat("#", 1+int(st.ms/max*40))
			fmt.Printf("  layer %3d %-28s %8.1f ms %s\n",
				st.layer, m.Layers[st.layer].Name, st.ms, bar)
		}
		if len(stalls) == 0 {
			fmt.Println("  (no stalls: fully overlapped)")
		}
		fmt.Println()
	}
}
