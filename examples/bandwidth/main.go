// Bandwidth: sweep network bandwidth for one model and plot throughput of
// Baseline vs Slicing vs P3 — a single panel of the paper's Figure 7,
// configurable from the command line.
//
//	go run ./examples/bandwidth -model vgg19 -from 2 -to 30
package main

import (
	"flag"
	"fmt"
	"strings"

	"p3/internal/cluster"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

func main() {
	name := flag.String("model", "vgg19", "resnet50|inception3|vgg19|sockeye")
	from := flag.Float64("from", 2, "lowest bandwidth (Gbps)")
	to := flag.Float64("to", 30, "highest bandwidth (Gbps)")
	steps := flag.Int("steps", 6, "sweep points")
	machines := flag.Int("machines", 4, "cluster size")
	flag.Parse()

	m := zoo.ByName(*name)
	strategies := []strategy.Strategy{strategy.Baseline(), strategy.SlicingOnly(0), strategy.P3(0)}

	fmt.Printf("%s on %d machines, %s/sec per machine\n\n", m, *machines, m.SampleUnit)
	fmt.Printf("%10s", "Gbps")
	for _, s := range strategies {
		fmt.Printf("%12s", s.Name)
	}
	fmt.Printf("%12s\n", "p3 gain")
	fmt.Println(strings.Repeat("-", 10+12*4))

	for i := 0; i < *steps; i++ {
		bw := *from + (*to-*from)*float64(i)/float64(*steps-1)
		var results []cluster.Result
		for _, s := range strategies {
			results = append(results, cluster.Run(cluster.Config{
				Model: m, Machines: *machines, Strategy: s, BandwidthGbps: bw, Seed: 1,
			}))
		}
		fmt.Printf("%10.1f", bw)
		for _, r := range results {
			fmt.Printf("%12.1f", r.Throughput/float64(*machines))
		}
		fmt.Printf("%11.1f%%\n", (results[2].Speedup(results[0])-1)*100)
	}
}
