// Command p3report runs the full experiment suite and writes the
// paper-versus-measured record to stdout in markdown — the generator behind
// EXPERIMENTS.md.
//
//	go run ./cmd/p3report > EXPERIMENTS.md        # full (a few minutes)
//	go run ./cmd/p3report -fast                   # trimmed smoke version
package main

import (
	"flag"
	"fmt"

	"p3/internal/experiments"
	"p3/internal/report"
)

func main() {
	fast := flag.Bool("fast", false, "trimmed sweeps")
	seed := flag.Int64("seed", 0, "workload seed")
	flag.Parse()
	fmt.Print(report.Generate(experiments.Options{Fast: *fast, Seed: *seed}))
}
