// Command p3train runs the convergence experiments' data-parallel trainer
// directly: pick an aggregation mode (dense = baseline/P3, dgc, asgd) and
// hyper-parameters, and watch per-epoch validation accuracy — the workload
// behind Figures 11 and 15.
//
// Example:
//
//	p3train -mode dgc -sparsity 0.999 -lr 0.07 -epochs 40 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"

	"p3/internal/data"
	"p3/internal/nn"
	"p3/internal/opt"
	"p3/internal/train"
)

func main() {
	mode := flag.String("mode", "dense", "aggregation: dense|dgc|asgd")
	lr := flag.Float64("lr", 0.05, "base learning rate")
	momentum := flag.Float64("momentum", 0.9, "SGD momentum")
	sparsity := flag.Float64("sparsity", 0.999, "DGC sparsity (dgc mode)")
	workers := flag.Int("workers", 4, "data-parallel workers")
	batch := flag.Int("batch", 16, "per-worker batch size")
	epochs := flag.Int("epochs", 40, "training epochs")
	samples := flag.Int("samples", 3840, "synthetic dataset size")
	width := flag.Int("width", 64, "residual MLP width")
	blocks := flag.Int("blocks", 4, "residual blocks")
	clip := flag.Float64("clip", 2, "gradient clipping norm (0 = off)")
	seed := flag.Int64("seed", 11, "seed")
	flag.Parse()

	var m train.Mode
	switch *mode {
	case "dense":
		m = train.Dense
	case "dgc":
		m = train.DGC
	case "asgd":
		m = train.ASGD
	default:
		fmt.Fprintf(os.Stderr, "p3train: unknown mode %q (want dense|dgc|asgd)\n", *mode)
		os.Exit(2)
	}

	set := data.Generate(data.Config{Samples: *samples, Features: 64, Classes: 10, Noise: 1.5, Seed: 7})
	tr, val := set.Split(0.25)
	fmt.Printf("dataset: %d train / %d val, 10 classes\n", tr.N(), val.N())

	cfg := train.Config{
		Net:      nn.Config{In: 64, Width: *width, Classes: 10, Blocks: *blocks, Seed: 3},
		Workers:  *workers,
		Batch:    *batch,
		Epochs:   *epochs,
		Schedule: opt.StepSchedule{Base: *lr, Gamma: 0.1, Milestones: []int{*epochs * 5 / 8, *epochs * 7 / 8}},
		Momentum: *momentum, WeightDecay: 1e-4, ClipNorm: *clip,
		Mode: m, DGCSparsity: *sparsity,
		Seed: *seed, Parallel: true,
	}
	h, net := train.Run(cfg, tr, val)
	fmt.Printf("mode=%v workers=%d params=%d\n", m, *workers, net.NumParams())
	for e := range h.ValAcc {
		fmt.Printf("epoch %3d  loss %.4f  val_acc %.4f\n", e+1, h.TrainLoss[e], h.ValAcc[e])
	}
	fmt.Printf("final val accuracy: %.4f after %d iterations\n", h.FinalValAcc, h.Iterations)
}
