package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const knownbad = "./internal/lint/testdata/src/knownbad"

// buildTool compiles p3lint once per test binary into a temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "p3lint")
	cmd := exec.Command("go", "build", "-o", bin, "p3/cmd/p3lint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building p3lint: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// TestStandaloneKnownBad runs the full standalone tool over the known-bad
// fixture and asserts each analyzer fires exactly once, with its documented
// message, at the expected site.
func TestStandaloneKnownBad(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command(bin, knownbad)
	cmd.Dir = repoRoot(t)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("p3lint %s: err=%v (want exit 2)\nstdout:\n%s\nstderr:\n%s", knownbad, err, stdout.String(), stderr.String())
	}
	checkKnownBadFindings(t, stdout.String(), map[string]*regexp.Regexp{
		"wallclock":  regexp.MustCompile(`time\.Now reads wall-clock state; annotate //p3:wallclock-ok`),
		"maporder":   regexp.MustCompile(`map iteration over pending reaches event scheduling \(p3/internal/sim\.\(Engine\)\.At\)`),
		"sizebudget": regexp.MustCompile(`struct grownEvent is 40 bytes, declared //p3:sizebudget 32`),
		"noescape":   regexp.MustCompile(`heap escape in //p3:noescape function Leak: new\(int\) escapes to heap`),
	})
}

// TestVettoolKnownBad drives the same fixture through `go vet -vettool`,
// exercising the vet.cfg protocol end to end. The build-driven noescape
// gate cannot run under vet (it needs the compiler's -m output), so here
// the three AST analyzers are expected.
func TestVettoolKnownBad(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "p3/internal/lint/testdata/src/knownbad")
	cmd.Dir = repoRoot(t)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() == 0 {
		t.Fatalf("go vet -vettool: err=%v (want nonzero exit)\nstderr:\n%s", err, stderr.String())
	}
	checkKnownBadFindings(t, stderr.String(), map[string]*regexp.Regexp{
		"wallclock":  regexp.MustCompile(`time\.Now reads wall-clock state; annotate //p3:wallclock-ok`),
		"maporder":   regexp.MustCompile(`map iteration over pending reaches event scheduling \(p3/internal/sim\.\(Engine\)\.At\)`),
		"sizebudget": regexp.MustCompile(`struct grownEvent is 40 bytes, declared //p3:sizebudget 32`),
	})
}

// checkKnownBadFindings asserts output contains exactly one finding per
// analyzer in want, and no findings from analyzers outside it.
func checkKnownBadFindings(t *testing.T, output string, want map[string]*regexp.Regexp) {
	t.Helper()
	counts := make(map[string]int)
	finding := regexp.MustCompile(`knownbad\.go:\d+:\d+: (.*) \[(\w+)\]$`)
	for _, line := range strings.Split(output, "\n") {
		m := finding.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg, analyzer := m[1], m[2]
		counts[analyzer]++
		re, expected := want[analyzer]
		if !expected {
			t.Errorf("unexpected analyzer %q fired: %s", analyzer, line)
			continue
		}
		if !re.MatchString(msg) {
			t.Errorf("%s: message %q does not match documented form %q", analyzer, msg, re)
		}
	}
	for analyzer := range want {
		if counts[analyzer] != 1 {
			t.Errorf("analyzer %s fired %d times, want exactly 1\noutput:\n%s", analyzer, counts[analyzer], output)
		}
	}
}

// TestProtocolHandshake pins the two cmd/go protocol entry points: -flags
// must emit a JSON flag list, and -V=full a version line whose buildID
// is stable for one binary (vet's cache key).
func TestProtocolHandshake(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil || strings.TrimSpace(string(out)) != "[]" {
		t.Errorf("p3lint -flags = %q, %v; want []", out, err)
	}
	v1, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("p3lint -V=full: %v", err)
	}
	if !regexp.MustCompile(`^p3lint version \S+ buildID=[0-9a-f]+\s*$`).Match(v1) {
		t.Errorf("p3lint -V=full = %q, want 'p3lint version <ver> buildID=<hex>'", v1)
	}
	v2, _ := exec.Command(bin, "-V=full").Output()
	if !bytes.Equal(v1, v2) {
		t.Errorf("buildID not stable across runs: %q vs %q", v1, v2)
	}
}

// TestTreeClean is the gate the repo lives under: the full analyzer suite,
// including the build-driven noescape pass, must be clean over ./... — the
// same invocation CI runs.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the whole module with -m; skipped in -short")
	}
	bin := buildTool(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Errorf("p3lint ./... is not clean: %v\n%s", err, out)
	}
}
