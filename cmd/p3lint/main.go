// Command p3lint statically enforces the repo's determinism, size-budget and
// zero-allocation contracts (see internal/lint/doc.go for the invariants and
// the //p3: directive grammar).
//
// It runs in two modes:
//
//   - As a vettool: `go vet -vettool=$(which p3lint) ./...`. cmd/go drives
//     the tool once per compilation unit (including test variants) with a
//     vet.cfg file; p3lint speaks that protocol natively and runs the three
//     AST analyzers (wallclock, maporder, sizebudget).
//
//   - Standalone: `p3lint ./...`. Loads packages itself via
//     `go list -deps -export` and additionally runs the build-driven
//     noescape gate, which cannot run under vet because it needs the
//     compiler's -m escape diagnostics: `p3lint -analyzers=noescape ./...`.
//
// Exit status: 0 clean, 1 tool error, 2 findings (matching go vet).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"p3/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("p3lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		flagV         = fs.String("V", "", "print version and exit (cmd/go protocol)")
		flagFlags     = fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go protocol)")
		flagAnalyzers = fs.String("analyzers", "wallclock,maporder,sizebudget,noescape",
			"comma-separated analyzers to run (standalone mode)")
		flagSinks = fs.String("maporder.sinks", "",
			"comma-separated extra maporder sinks (pkg.Func or pkg.(Recv).Method)")
		flagDir = fs.String("C", ".", "directory to resolve package patterns in (standalone mode)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	// cmd/go handshake: `p3lint -flags` must print the tool's analyzer flags
	// as JSON (p3lint exposes none to vet), and `p3lint -V=full` a version
	// line whose buildID changes when the tool does, so vet's cache never
	// serves results from a stale binary.
	if *flagFlags {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if *flagV != "" {
		id, err := selfBuildID()
		if err != nil {
			fmt.Fprintln(stderr, "p3lint:", err)
			return 1
		}
		fmt.Fprintf(stdout, "p3lint version devel buildID=%s\n", id)
		return 0
	}

	sinks := lint.DefaultSinks
	if *flagSinks != "" {
		for _, spec := range strings.Split(*flagSinks, ",") {
			s, err := lint.ParseSink(strings.TrimSpace(spec))
			if err != nil {
				fmt.Fprintln(stderr, "p3lint:", err)
				return 1
			}
			sinks = append(sinks, s)
		}
	}
	astAnalyzers := []*lint.Analyzer{
		lint.Wallclock(lint.CriticalPackages),
		lint.MapOrder(sinks),
		lint.SizeBudget(),
	}

	rest := fs.Args()

	// Vettool mode: the sole argument is a *.cfg file describing one
	// compilation unit.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		n, err := lint.RunUnit(rest[0], astAnalyzers, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "p3lint:", err)
			return 1
		}
		if n > 0 {
			return 2
		}
		return 0
	}

	// Standalone mode.
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(*flagAnalyzers, ",") {
		want[strings.TrimSpace(name)] = true
	}
	var selected []*lint.Analyzer
	for _, az := range astAnalyzers {
		if want[az.Name] {
			selected = append(selected, az)
		}
	}
	var diags []lint.Diagnostic
	if len(selected) > 0 {
		pkgs, err := lint.Load(*flagDir, patterns)
		if err != nil {
			fmt.Fprintln(stderr, "p3lint:", err)
			return 1
		}
		for _, pkg := range pkgs {
			ds, err := lint.RunAnalyzers(pkg, selected)
			if err != nil {
				fmt.Fprintln(stderr, "p3lint:", err)
				return 1
			}
			diags = append(diags, ds...)
		}
	}
	if want["noescape"] {
		ds, err := lint.NoEscape(*flagDir, patterns)
		if err != nil {
			fmt.Fprintln(stderr, "p3lint:", err)
			return 1
		}
		diags = append(diags, ds...)
	}
	lint.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// selfBuildID hashes the running binary: any rebuild of p3lint yields a new
// ID, which is exactly the invalidation granularity vet's result cache needs.
func selfBuildID() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16]), nil
}
