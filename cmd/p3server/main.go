// Command p3server runs one real P3 parameter server over TCP — the
// deployable counterpart of the paper's modified KVServer (Section 4.2).
// Start one per machine, then point p3worker processes at the full server
// list (the paper's Appendix A workflow, minus MXNet).
//
//	p3server -addr :9700 -workers 4 -sched p3
//	p3server -addr :9701 -workers 4 -sched p3
//
// The server aggregates each key's gradient pushes, applies SGD on the Nth
// push, and immediately broadcasts the updated values (or, with
// -notifypull, uses stock KVStore notify-then-pull semantics for baseline
// measurements).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p3/internal/pstcp"
	"p3/internal/sched"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9700", "listen address")
	id := flag.Int("id", 0, "server id")
	workers := flag.Int("workers", 4, "worker count (pushes per update)")
	schedName := flag.String("sched", "p3", "queue discipline: "+strings.Join(sched.Usage(), "|")+" (p3 = paper, fifo = baseline)")
	modelName := flag.String("model", "", "zoo model supplying the timing profile for model-aware disciplines (tictac); empty = none")
	gbps := flag.Float64("gbps", 10, "estimated wire rate (Gbps) for the timing profile's transfer estimates")
	stallsIn := flag.String("stalls", "", "calibrated mode: build the timing profile from this measured stall file (p3sim -stallsout) instead of static timing alone; requires -model")
	preempt := flag.Int("preempt", 0, "write quantum in bytes for preemptive transmission (0 = whole frames)")
	notifyPull := flag.Bool("notifypull", false, "stock KVStore notify+pull instead of immediate broadcast")
	lr := flag.Float64("lr", 0.1, "server-side SGD learning rate")
	stats := flag.Duration("stats", 10*time.Second, "stats print interval (0 = off)")
	flag.Parse()

	disc, err := sched.ByName(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3server:", err)
		os.Exit(2)
	}
	var profile *sched.Profile
	if *modelName != "" {
		m, err := zoo.Lookup(*modelName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p3server:", err)
			os.Exit(2)
		}
		if *stallsIn != "" {
			stalls, err := strategy.ReadStallFile(*stallsIn)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p3server:", err)
				os.Exit(2)
			}
			profile = strategy.CalibrateProfile(m, *gbps, stalls)
			fmt.Printf("p3server %d: timing profile calibrated from measured stalls in %s\n", *id, *stallsIn)
		} else {
			profile = strategy.ComputeProfile(m, *gbps)
		}
	} else if *stallsIn != "" {
		fmt.Fprintln(os.Stderr, "p3server: -stalls requires -model (the stall profile is per-layer)")
		os.Exit(2)
	} else if _, wantsProfile := disc.(sched.Profiled); wantsProfile {
		fmt.Fprintf(os.Stderr, "p3server: warning: -sched %s without -model has no timing profile and degrades to p3 ordering\n", *schedName)
	}
	srv := pstcp.NewServer(pstcp.ServerConfig{
		ID:           *id,
		Workers:      *workers,
		Sched:        *schedName,
		Profile:      profile,
		NotifyPull:   *notifyPull,
		PreemptBytes: *preempt,
		Updater:      pstcp.SGDUpdater(float32(*lr)),
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3server:", err)
		os.Exit(1)
	}
	mode := "immediate broadcast"
	if *notifyPull {
		mode = "notify+pull"
	}
	fmt.Printf("p3server %d listening on %s (workers=%d, sched=%s, %s)\n",
		*id, bound, *workers, *schedName, mode)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *stats > 0 {
		//p3:wallclock-ok operator-facing stats cadence on the live server
		ticker := time.NewTicker(*stats)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				p, u := srv.Stats()
				fmt.Printf("p3server %d: %d pushes processed, %d updates applied\n", *id, p, u)
			case <-stop:
				srv.Close()
				fmt.Printf("p3server %d: shut down\n", *id)
				return
			}
		}
	}
	<-stop
	srv.Close()
}
