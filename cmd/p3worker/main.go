// Command p3worker drives real P3 parameter servers with a synthetic
// training workload: it slices a zoo model's gradient set, emits the slices
// in backpropagation order (last layer first) with forward-order priorities,
// waits for every updated slice to return, and reports iteration times —
// a real-network microbenchmark of the mechanism, usable on loopback or
// across machines (the paper's Appendix A benchmark workflow). The -sched
// flag selects the send-queue discipline (see internal/sched).
//
// Start the servers first, then one p3worker per machine:
//
//	p3server -addr :9700 -workers 2 &   p3server -addr :9701 -workers 2 &
//	p3worker -id 0 -servers 127.0.0.1:9700,127.0.0.1:9701 -model resnet50 &
//	p3worker -id 1 -servers 127.0.0.1:9700,127.0.0.1:9701 -model resnet50
//
// Every worker must use the same -model, -slice and -servers list (they
// define the shared key space).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"p3/internal/core"
	"p3/internal/pstcp"
	"p3/internal/sched"
	"p3/internal/strategy"
	"p3/internal/transport"
	"p3/internal/zoo"
)

func main() {
	id := flag.Int("id", 0, "worker id (0-based, unique per worker)")
	serverList := flag.String("servers", "127.0.0.1:9700", "comma-separated server addresses")
	modelName := flag.String("model", "resnet110", "zoo model defining the gradient set")
	slice := flag.Int64("slice", 0, "max slice size in parameters (0 = paper default 50k)")
	iters := flag.Int("iters", 20, "iterations to run")
	warmup := flag.Int("warmup", 3, "warm-up iterations excluded from stats")
	schedName := flag.String("sched", "p3", "send-queue discipline: "+strings.Join(sched.Names(), "|")+" (p3 = paper, fifo = baseline)")
	preempt := flag.Int("preempt", 0, "write quantum in bytes for preemptive transmission (0 = whole frames)")
	gbps := flag.Float64("gbps", 10, "estimated wire rate (Gbps) for the tictac timing profile's transfer estimates")
	batch := flag.Int("batch", 32, "nominal batch size (throughput accounting only)")
	flag.Parse()

	addrs := strings.Split(*serverList, ",")
	m := zoo.ByName(*modelName)
	plan := core.PartitionSlices(m, *slice, len(addrs))
	fmt.Printf("p3worker %d: %s -> %d slices over %d servers (%.1f MB gradients/iter)\n",
		*id, m, plan.NumChunks(), len(addrs), float64(m.TotalBytes())/1e6)

	// Preallocate one gradient buffer per chunk (contents are irrelevant to
	// the transport; sizes are the real ones).
	grads := make([][]float32, plan.NumChunks())
	for i, c := range plan.Chunks {
		grads[i] = make([]float32, c.Params)
	}

	recv := make(chan struct{}, plan.NumChunks()+8)
	profile := strategy.ComputeProfile(m, *gbps)
	worker, err := pstcp.DialWorkerCfg(pstcp.WorkerConfig{
		ID:           *id,
		Servers:      addrs,
		Sched:        *schedName,
		Profile:      profile,
		PreemptBytes: *preempt,
		Handler: func(f *transport.Frame) {
			if f.Type == transport.TypeData {
				recv <- struct{}{}
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3worker:", err)
		os.Exit(1)
	}
	defer worker.Close()

	if *id == 0 {
		for _, c := range plan.Chunks {
			worker.Init(c.Server, uint64(c.ID), grads[c.ID])
		}
		time.Sleep(200 * time.Millisecond) // let inits land before traffic
	}

	var measured []time.Duration
	for it := 0; it < *warmup+*iters; it++ {
		start := time.Now()
		// Gradient generation order: backpropagation walks the layers from
		// last to first; priorities (forward order) are what reorder the
		// wire under -priority.
		for l := len(m.Layers) - 1; l >= 0; l-- {
			for _, cid := range plan.LayerChunks(l) {
				c := plan.Chunks[cid]
				worker.Push(c.Server, uint64(c.ID), int32(it), int32(c.Priority), grads[c.ID])
			}
		}
		for n := 0; n < plan.NumChunks(); n++ {
			<-recv
		}
		if it >= *warmup {
			measured = append(measured, time.Since(start))
		}
	}

	var total time.Duration
	for _, d := range measured {
		total += d
	}
	mean := total / time.Duration(len(measured))
	fmt.Printf("p3worker %d: mean sync time %v over %d iterations (%.1f %s/sec at batch %d)\n",
		*id, mean.Round(time.Microsecond), len(measured),
		float64(*batch)/mean.Seconds(), m.SampleUnit, *batch)
}
