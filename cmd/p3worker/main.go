// Command p3worker drives real P3 parameter servers with a synthetic
// training workload: it slices a zoo model's gradient set, emits the slices
// in backpropagation order (last layer first) with forward-order priorities,
// waits for every updated slice to return, and reports iteration times —
// a real-network microbenchmark of the mechanism, usable on loopback or
// across machines (the paper's Appendix A benchmark workflow). The -sched
// flag selects the send-queue discipline (see internal/sched).
//
// Start the servers first, then one p3worker per machine:
//
//	p3server -addr :9700 -workers 2 &   p3server -addr :9701 -workers 2 &
//	p3worker -id 0 -servers 127.0.0.1:9700,127.0.0.1:9701 -model resnet50 &
//	p3worker -id 1 -servers 127.0.0.1:9700,127.0.0.1:9701 -model resnet50
//
// Every worker must use the same -model, -slice and -servers list (they
// define the shared key space).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"p3/internal/core"
	"p3/internal/pstcp"
	"p3/internal/sched"
	"p3/internal/sim"
	"p3/internal/strategy"
	"p3/internal/transport"
	"p3/internal/zoo"
)

func main() {
	id := flag.Int("id", 0, "worker id (0-based, unique per worker)")
	serverList := flag.String("servers", "127.0.0.1:9700", "comma-separated server addresses")
	modelName := flag.String("model", "resnet110", "zoo model defining the gradient set")
	slice := flag.Int64("slice", 0, "max slice size in parameters (0 = paper default 50k)")
	iters := flag.Int("iters", 20, "iterations to run")
	warmup := flag.Int("warmup", 3, "warm-up iterations excluded from stats")
	schedName := flag.String("sched", "p3", "send-queue discipline: "+strings.Join(sched.Usage(), "|")+" (p3 = paper, fifo = baseline)")
	preempt := flag.Int("preempt", 0, "write quantum in bytes for preemptive transmission (0 = whole frames)")
	gbps := flag.Float64("gbps", 10, "estimated wire rate (Gbps) for the tictac timing profile's transfer estimates")
	batch := flag.Int("batch", 32, "nominal batch size (throughput accounting only)")
	stallsIn := flag.String("stalls", "", "calibrated mode: build the timing profile from this measured stall file (p3sim -stallsout) instead of static timing alone")
	calibrate := flag.Bool("calibrate", false, "live calibrated mode: after the warm-up iterations, rebuild the timing profile from this worker's own measured per-layer stalls and re-rank subsequent sends against it")
	flag.Parse()

	if *calibrate && *warmup < 1 {
		fmt.Fprintln(os.Stderr, "p3worker: -calibrate needs at least one warm-up iteration to measure (-warmup >= 1)")
		os.Exit(2)
	}
	addrs := strings.Split(*serverList, ",")
	m := zoo.ByName(*modelName)
	plan := core.PartitionSlices(m, *slice, len(addrs))
	fmt.Printf("p3worker %d: %s -> %d slices over %d servers (%.1f MB gradients/iter)\n",
		*id, m, plan.NumChunks(), len(addrs), float64(m.TotalBytes())/1e6)

	// Preallocate one gradient buffer per chunk (contents are irrelevant to
	// the transport; sizes are the real ones).
	grads := make([][]float32, plan.NumChunks())
	for i, c := range plan.Chunks {
		grads[i] = make([]float32, c.Params)
	}

	recv := make(chan struct{}, plan.NumChunks()+8)
	profile := strategy.ComputeProfile(m, *gbps)
	if *stallsIn != "" {
		stalls, err := strategy.ReadStallFile(*stallsIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p3worker:", err)
			os.Exit(2)
		}
		profile = strategy.CalibrateProfile(m, *gbps, stalls)
		fmt.Printf("p3worker %d: timing profile calibrated from measured stalls in %s\n", *id, *stallsIn)
	}

	// Live calibration state: the handler records, per layer, when the
	// layer's last updated slice arrived relative to the iteration start;
	// after warm-up the mean overshoot past the static deadline becomes the
	// measured stall profile.
	var calMu sync.Mutex
	var iterStart time.Time
	layerLast := make([]time.Duration, len(m.Layers))

	worker, err := pstcp.DialWorkerCfg(pstcp.WorkerConfig{
		ID:           *id,
		Servers:      addrs,
		Sched:        *schedName,
		Profile:      profile,
		PreemptBytes: *preempt,
		Handler: func(f *transport.Frame) {
			if f.Type == transport.TypeData {
				if *calibrate {
					if l := plan.Chunks[f.Key].Layer; l < len(layerLast) {
						calMu.Lock()
						//p3:wallclock-ok calibration measures real per-layer latency
						if d := time.Since(iterStart); d > layerLast[l] {
							layerLast[l] = d
						}
						calMu.Unlock()
					}
				}
				recv <- struct{}{}
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3worker:", err)
		os.Exit(1)
	}
	defer worker.Close()

	if *id == 0 {
		for _, c := range plan.Chunks {
			worker.Init(c.Server, uint64(c.ID), grads[c.ID])
		}
		//p3:wallclock-ok real startup settling on the live transport
		time.Sleep(200 * time.Millisecond) // let inits land before traffic
	}

	var measured []time.Duration
	stallSum := make([]sim.Time, len(m.Layers))
	for it := 0; it < *warmup+*iters; it++ {
		//p3:wallclock-ok iteration timing measures the real transport
		start := time.Now()
		calMu.Lock()
		iterStart = start
		for l := range layerLast {
			layerLast[l] = 0
		}
		calMu.Unlock()
		// Gradient generation order: backpropagation walks the layers from
		// last to first; priorities (forward order) are what reorder the
		// wire under -priority.
		for l := len(m.Layers) - 1; l >= 0; l-- {
			for _, cid := range plan.LayerChunks(l) {
				c := plan.Chunks[cid]
				worker.Push(c.Server, uint64(c.ID), int32(it), int32(c.Priority), grads[c.ID])
			}
		}
		for n := 0; n < plan.NumChunks(); n++ {
			<-recv
		}
		if *calibrate && it < *warmup {
			// Overshoot past the static consumption deadline is the measured
			// stall the calibrated profile feeds back.
			calMu.Lock()
			for l := range layerLast {
				if over := layerLast[l].Nanoseconds() - profile.NeedAtNs[l]; over > 0 {
					stallSum[l] += sim.Time(over)
				}
			}
			calMu.Unlock()
		}
		if *calibrate && it == *warmup-1 {
			stalls := make([]sim.Time, len(stallSum))
			var total sim.Time
			for l, s := range stallSum {
				stalls[l] = s / sim.Time(*warmup)
				total += stalls[l]
			}
			worker.SetProfile(strategy.CalibrateProfile(m, *gbps, stalls))
			fmt.Printf("p3worker %d: recalibrated timing profile from %d warm-up iterations (%.2f ms measured stall/iter)\n",
				*id, *warmup, total.Millis())
		}
		if it >= *warmup {
			//p3:wallclock-ok iteration timing measures the real transport
			measured = append(measured, time.Since(start))
		}
	}

	var total time.Duration
	for _, d := range measured {
		total += d
	}
	mean := total / time.Duration(len(measured))
	fmt.Printf("p3worker %d: mean sync time %v over %d iterations (%.1f %s/sec at batch %d)\n",
		*id, mean.Round(time.Microsecond), len(measured),
		float64(*batch)/mean.Seconds(), m.SampleUnit, *batch)
}
