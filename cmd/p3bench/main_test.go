package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestNextBenchPath pins the artifact-numbering contract: successive -json
// runs accumulate BENCH_0, BENCH_1, ... and a run never overwrites an
// existing artifact — the next free index is probed, including holes left by
// deleted artifacts.
func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	touch := func(name string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want := func(name string) {
		t.Helper()
		got, err := nextBenchPath(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got != filepath.Join(dir, name) {
			t.Fatalf("nextBenchPath = %q, want %q", got, filepath.Join(dir, name))
		}
	}

	want("BENCH_0.json") // empty dir starts the trajectory
	touch("BENCH_0.json")
	want("BENCH_1.json") // next free index
	touch("BENCH_1.json")
	touch("BENCH_2.json")
	want("BENCH_3.json") // skips everything taken
	touch("BENCH_5.json")
	want("BENCH_3.json") // first hole wins; BENCH_5 is not clobbered either way
	touch("BENCH_3.json")
	touch("BENCH_4.json")
	want("BENCH_6.json")
}
