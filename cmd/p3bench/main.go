// Command p3bench regenerates every table and figure of the paper's
// evaluation section. Each experiment prints an ASCII rendering plus the
// underlying TSV series, with the paper's reference values in the notes.
//
// Usage:
//
//	p3bench [-fast] [-seed N] [-plot] [fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 headline | all]
//
// The throughput/utilization experiments (fig5, fig7-10, fig12-14, headline)
// run on the discrete-event simulator and take seconds. The convergence
// experiments (fig11, fig15) train real networks and take minutes without
// -fast.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"p3/internal/experiments"
)

var figOrder = []string{
	"fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
	"headline", "ablation", "sched", "allreduce", "tta", "compression", "sensitivity",
}

func main() {
	fast := flag.Bool("fast", false, "trimmed sweeps (for smoke runs)")
	seed := flag.Int64("seed", 0, "workload seed")
	plot := flag.Bool("plot", true, "render ASCII plots")
	tsv := flag.Bool("tsv", true, "print TSV series")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: p3bench [flags] [%s|all]...\n", strings.Join(figOrder, "|"))
		flag.PrintDefaults()
	}
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "all") {
		targets = figOrder
	}

	o := experiments.Options{Fast: *fast, Seed: *seed}
	runners := map[string]func(experiments.Options) []*experiments.Figure{
		"fig5":      experiments.Fig5,
		"fig7":      experiments.Fig7,
		"fig8":      experiments.Fig8,
		"fig9":      experiments.Fig9,
		"fig10":     experiments.Fig10,
		"fig11":     experiments.Fig11,
		"fig12":     experiments.Fig12,
		"fig13":     experiments.Fig13,
		"fig14":     experiments.Fig14,
		"fig15":     experiments.Fig15,
		"allreduce": experiments.ExtAllreduce,
	}

	for _, t := range targets {
		switch {
		case t == "headline":
			fmt.Println("== Section 5.3 headline speedups (P3 vs baseline) ==")
			fmt.Print(experiments.HeadlineTable(experiments.Headline(o)))
			fmt.Println()
		case t == "ablation":
			fmt.Println("== Ablation: contribution of each P3 design decision (per-machine samples/sec) ==")
			fmt.Print(experiments.AblationTable(experiments.Ablation(o)))
			fmt.Println()
		case t == "sched":
			fmt.Println("== Scheduler ablation: every queue discipline on the sliced strategy (internal/sched) ==")
			fmt.Print(experiments.SchedulerTable(experiments.SchedulerAblation(o)))
			fmt.Println()
		case t == "compression":
			fmt.Println("== Extension: compression family (related work, Section 6) vs dense exchange ==")
			fmt.Print(experiments.CompressionTable(experiments.ExtCompression(o)))
			fmt.Println()
		case t == "sensitivity":
			fmt.Println("== Sensitivity: server count and batch size (VGG-19 @15Gbps, per-machine images/sec) ==")
			fmt.Print(experiments.SensitivityTable(experiments.Sensitivity(o)))
			fmt.Println()
		case t == "tta":
			fmt.Println("== Extension: time-to-accuracy (ResNet-110 profile @1Gbps iteration times x substitute-task convergence) ==")
			fmt.Print(experiments.TimeToAccuracyTable(experiments.TimeToAccuracy(o)))
			fmt.Println()
		case runners[t] != nil:
			for _, fig := range runners[t](o) {
				if *plot {
					fmt.Println(fig.ASCII(72, 16))
				}
				if *tsv {
					fmt.Println(fig.TSV())
				}
			}
		default:
			fmt.Fprintf(os.Stderr, "p3bench: unknown target %q\n", t)
			flag.Usage()
			os.Exit(2)
		}
	}
}
