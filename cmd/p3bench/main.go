// Command p3bench regenerates every table and figure of the paper's
// evaluation section. Each experiment prints an ASCII rendering plus the
// underlying TSV series, with the paper's reference values in the notes.
//
// Usage:
//
//	p3bench [-fast] [-seed N] [-shards N] [-plot] [-json] [-baseline FILE] \
//	        [fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 \
//	         headline ablation sched scale rack faults allreduce tta compression \
//	         sensitivity bench | all]
//
// The throughput/utilization experiments (fig5, fig7-10, fig12-14, headline)
// run on the discrete-event simulator and take seconds; multi-configuration
// sweeps (sched, scale, rack, headline, ablation, fig7, fig10) spread their
// cells over GOMAXPROCS workers, and the cluster-path cells of scale and rack
// additionally run on the sharded engine (-shards). The convergence experiments (fig11, fig15) train
// real networks and take minutes without -fast.
//
// bench runs the dispatch-path microbenchmarks (ns/op + allocs/op for the
// scheduler queue, transport queue and event engine) plus the zoo-simulation
// timings. -json additionally writes the measurements as the next BENCH_<n>.json
// perf-trajectory artifact in the current directory. -baseline FILE compares
// the microbenchmarks against a checked-in artifact and exits non-zero when
// any dispatch path allocates at steady state or regresses ns/op by more
// than 25% (calibration-scaled) — the CI regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"p3/internal/benchmarks"
	"p3/internal/experiments"
)

var figOrder = []string{
	"fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
	"headline", "ablation", "sched", "scale", "rack", "faults", "allreduce", "tta", "compression", "sensitivity",
}

func main() {
	fast := flag.Bool("fast", false, "trimmed sweeps (for smoke runs)")
	seed := flag.Int64("seed", 0, "workload seed")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "simulation shards per cluster-path cell (1 = legacy single-heap engine; results are bit-identical either way)")
	plot := flag.Bool("plot", true, "render ASCII plots")
	tsv := flag.Bool("tsv", true, "print TSV series")
	jsonOut := flag.Bool("json", false, "write benchmark results as the next BENCH_<n>.json artifact (implies the bench target)")
	baseline := flag.String("baseline", "", "compare dispatch microbenchmarks against this artifact; exit 1 on regression (implies the bench target)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: p3bench [flags] [%s|bench|all]...\n", strings.Join(figOrder, "|"))
		flag.PrintDefaults()
	}
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "all") {
		targets = figOrder
	}
	if *jsonOut || *baseline != "" {
		hasBench := false
		for _, t := range targets {
			hasBench = hasBench || t == "bench"
		}
		if !hasBench {
			targets = append(targets, "bench")
		}
	}

	o := experiments.Options{Fast: *fast, Seed: *seed, Shards: *shards}
	runners := map[string]func(experiments.Options) []*experiments.Figure{
		"fig5":      experiments.Fig5,
		"fig7":      experiments.Fig7,
		"fig8":      experiments.Fig8,
		"fig9":      experiments.Fig9,
		"fig10":     experiments.Fig10,
		"fig11":     experiments.Fig11,
		"fig12":     experiments.Fig12,
		"fig13":     experiments.Fig13,
		"fig14":     experiments.Fig14,
		"fig15":     experiments.Fig15,
		"allreduce": experiments.ExtAllreduce,
	}

	for _, t := range targets {
		switch {
		case t == "headline":
			fmt.Println("== Section 5.3 headline speedups (P3 vs baseline) ==")
			fmt.Print(experiments.HeadlineTable(experiments.Headline(o)))
			fmt.Println()
		case t == "ablation":
			fmt.Println("== Ablation: contribution of each P3 design decision (per-machine samples/sec) ==")
			fmt.Print(experiments.AblationTable(experiments.Ablation(o)))
			fmt.Println()
		case t == "sched":
			fmt.Println("== Scheduler ablation: every queue discipline on the sliced strategy (internal/sched) ==")
			fmt.Print(experiments.SchedulerTable(experiments.SchedulerAblation(o)))
			fmt.Println()
		case t == "scale":
			fmt.Println("== Scale axis: cluster sizes past the paper's testbed (resnet50 @1.5Gbps, sliced strategy) ==")
			fmt.Print(experiments.ScaleTable(experiments.Scale(o)))
			fmt.Println()
		case t == "rack":
			fmt.Println("== Rack axis: multi-rack topology, oversubscribed core, server placement (resnet50 @1.5Gbps) ==")
			fmt.Print(experiments.RackTable(experiments.Rack(o)))
			fmt.Println()
		case t == "faults":
			fmt.Println("== Faults: scripted stragglers, link degradation and aggregator crashes per discipline (resnet50 @1.5Gbps, rack-aggregated) ==")
			fmt.Print(experiments.FaultsTable(experiments.Faults(o)))
			fmt.Println()
		case t == "compression":
			fmt.Println("== Extension: compression family (related work, Section 6) vs dense exchange ==")
			fmt.Print(experiments.CompressionTable(experiments.ExtCompression(o)))
			fmt.Println()
		case t == "sensitivity":
			fmt.Println("== Sensitivity: server count and batch size (VGG-19 @15Gbps, per-machine images/sec) ==")
			fmt.Print(experiments.SensitivityTable(experiments.Sensitivity(o)))
			fmt.Println()
		case t == "tta":
			fmt.Println("== Extension: time-to-accuracy (ResNet-110 profile @1Gbps iteration times x substitute-task convergence) ==")
			fmt.Print(experiments.TimeToAccuracyTable(experiments.TimeToAccuracy(o)))
			fmt.Println()
		case t == "bench":
			runBench(*jsonOut, *baseline, *fast)
		case runners[t] != nil:
			for _, fig := range runners[t](o) {
				if *plot {
					fmt.Println(fig.ASCII(72, 16))
				}
				if *tsv {
					fmt.Println(fig.TSV())
				}
			}
		default:
			fmt.Fprintf(os.Stderr, "p3bench: unknown target %q\n", t)
			flag.Usage()
			os.Exit(2)
		}
	}
}

// runBench measures the dispatch microbenchmarks (and, unless gating only,
// the zoo simulation timings), prints them, optionally writes the BENCH_<n>
// artifact, and optionally enforces the regression gate.
func runBench(writeJSON bool, baselinePath string, fast bool) {
	// The CI gate (baseline set, no artifact) skips the zoo sims: the gate's
	// thresholds cover only the microbenchmarks, and the sims add minutes.
	withSims := writeJSON || baselinePath == ""
	if fast {
		withSims = false
	}
	fmt.Println("== Dispatch microbenchmarks (ns/op, allocs/op) and zoo sim timings ==")
	art := benchmarks.Collect(withSims)
	fmt.Printf("go\t%s\tGOMAXPROCS\t%d\tcalib_ns\t%.2f\n", art.GoVersion, art.GOMAXPROCS, art.CalibNs)
	fmt.Println("benchmark\tns/op\tallocs/op\tB/op")
	for _, r := range art.Dispatch {
		fmt.Printf("%s\t%.1f\t%d\t%d\n", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	if len(art.Sims) > 0 {
		fmt.Println("sim\tmachines\titer_ms\twall_ms\tevents")
		for _, s := range art.Sims {
			fmt.Printf("%s\t%d\t%.2f\t%.1f\t%d\n", s.Name, s.Machines, s.IterMs, s.WallMs, s.Events)
		}
	}
	fmt.Println()

	if writeJSON {
		path, err := nextBenchPath(".")
		if err == nil {
			var buf []byte
			buf, err = json.MarshalIndent(art, "", "  ")
			if err == nil {
				err = os.WriteFile(path, append(buf, '\n'), 0o644)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "p3bench: writing artifact: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n\n", path)
	}

	if baselinePath != "" {
		buf, err := os.ReadFile(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p3bench: reading baseline: %v\n", err)
			os.Exit(1)
		}
		var base benchmarks.Artifact
		if err := json.Unmarshal(buf, &base); err != nil {
			fmt.Fprintf(os.Stderr, "p3bench: parsing baseline %s: %v\n", baselinePath, err)
			os.Exit(1)
		}
		violations := benchmarks.Check(art, &base, 0.25)
		if len(violations) > 0 {
			// Shared runners suffer multi-second CPU-steal phases that spike
			// ns/op past any tolerance the start-of-run calibration can
			// correct for, and survive even the min-of-reps statistic. A real
			// regression reproduces in a fresh measurement round; a steal
			// spike does not — so the gate fails only on violations that
			// recur for the same benchmark in an independent re-measurement.
			fmt.Fprintf(os.Stderr, "p3bench: first measurement round regressed (%d violation(s)); re-measuring\n", len(violations))
			retry := benchmarks.Check(benchmarks.Collect(false), &base, 0.25)
			recurred := make(map[string]bool, len(retry))
			for _, v := range retry {
				recurred[v[:strings.Index(v, ":")]] = true
			}
			var confirmed []string
			for _, v := range violations {
				if recurred[v[:strings.Index(v, ":")]] {
					confirmed = append(confirmed, v)
				}
			}
			violations = confirmed
		}
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "p3bench: dispatch benchmarks regressed against %s in both measurement rounds:\n", baselinePath)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("benchmark gate passed against %s (tolerance 25%%, allocs/op must be 0)\n\n", baselinePath)
	}
}

// nextBenchPath returns the first unused BENCH_<n>.json path in dir, so
// successive runs accumulate a perf trajectory instead of overwriting it.
func nextBenchPath(dir string) (string, error) {
	existing, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	used := make(map[string]bool, len(existing))
	for _, p := range existing {
		used[filepath.Base(p)] = true
	}
	for n := 0; ; n++ {
		name := fmt.Sprintf("BENCH_%d.json", n)
		if !used[name] {
			return filepath.Join(dir, name), nil
		}
	}
}
