// Command p3sim runs a single simulated training configuration and reports
// its throughput, iteration breakdown and (optionally) the NIC utilization
// trace of machine 0 — the simulated analogue of one cell of the paper's
// evaluation grid.
//
// Example:
//
//	p3sim -model vgg19 -strategy p3 -bw 15 -machines 4 -slice 50000 -trace
//
// The -sched flag re-runs any strategy under a different queue discipline
// from the internal/sched registry (fifo, p3, rr, smallest, credit:<bytes>),
// and -preempt enables resumable egress transmission: serialization happens
// in segments of the given byte quantum and a strictly more urgent message
// preempts an in-flight one at the next segment boundary — the
// true-preemption upper bound that the paper's slicing approximates:
//
//	p3sim -model vgg19 -strategy slicing -sched credit:1048576 -bw 15
//	p3sim -model vgg19 -strategy p3 -bw 1.5 -preempt 65536
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"p3/internal/cluster"
	"p3/internal/sched"
	"p3/internal/strategy"
	"p3/internal/trace"
	"p3/internal/zoo"
)

func main() {
	modelName := flag.String("model", "resnet50", "model: resnet50|inception3|vgg19|sockeye|resnet110")
	stratName := flag.String("strategy", "p3", "strategy: baseline|tensorflow|wfbp|slicing|p3|asgd")
	schedName := flag.String("sched", "", "override the strategy's queue discipline: "+strings.Join(sched.Names(), "|")+" (also credit:<bytes>)")
	preempt := flag.Int64("preempt", 0, "egress preemption quantum in wire bytes (0 = off: in-flight messages always finish)")
	bw := flag.Float64("bw", 10, "per-direction NIC bandwidth in Gbps")
	machines := flag.Int("machines", 4, "cluster size (workers == servers == machines)")
	slice := flag.Int64("slice", 0, "max slice size in parameters (0 = paper default 50k; slicing/p3 only)")
	iters := flag.Int("iters", 8, "measured iterations")
	warmup := flag.Int("warmup", 2, "warm-up iterations")
	seed := flag.Int64("seed", 1, "workload seed")
	showTrace := flag.Bool("trace", false, "print machine 0's 10ms utilization trace")
	showLayers := flag.Bool("layers", false, "print the model's per-tensor table (Figure 5 data) and exit")
	flag.Parse()

	st, err := strategy.ByName(*stratName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3sim:", err)
		os.Exit(2)
	}
	if *schedName != "" {
		st, err = st.WithSched(*schedName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p3sim:", err)
			os.Exit(2)
		}
	}
	if *slice > 0 && st.Granularity == strategy.Slices {
		st.MaxSliceParams = *slice
	}

	m := zoo.ByName(*modelName)
	if *showLayers {
		fmt.Print(m.Table())
		return
	}

	var rec *trace.Recorder
	if *showTrace {
		rec = trace.NewRecorder(*machines, 0)
	}
	r := cluster.Run(cluster.Config{
		Model:          m,
		Machines:       *machines,
		Strategy:       st,
		BandwidthGbps:  *bw,
		PreemptQuantum: *preempt,
		WarmupIters:    *warmup,
		MeasureIters:   *iters,
		Seed:           *seed,
		Recorder:       rec,
	})

	preemptDesc := "off"
	if *preempt > 0 {
		preemptDesc = fmt.Sprintf("%d B", *preempt)
	}
	fmt.Printf("model:       %s (%s)\n", m.Name, m)
	fmt.Printf("strategy:    %s  sched: %s  preempt: %s  machines: %d  bandwidth: %g Gbps\n",
		st.Name, st.Discipline(), preemptDesc, r.Machines, r.BandwidthGbps)
	fmt.Printf("throughput:  %.1f %s/s aggregate (%.1f per machine)\n",
		r.Throughput, m.SampleUnit, r.Throughput/float64(r.Machines))
	fmt.Printf("iteration:   %.2f ms mean (pure compute %.2f ms, comm overhead %.2f ms)\n",
		r.MeanIterTime.Millis(), r.ComputeIterTime.Millis(),
		(r.MeanIterTime - r.ComputeIterTime).Millis())
	fmt.Printf("sim cost:    %d events, %d messages, %.1f MB on the wire\n",
		r.Events, r.Msgs, float64(r.WireBytes)/1e6)

	if rec != nil {
		skip := int(r.WarmupEnd / rec.Bucket())
		out, in := rec.Gbps(0, trace.Out), rec.Gbps(0, trace.In)
		fmt.Println("\nbucket\toutbound_gbps\tinbound_gbps")
		for i := skip; i < len(out) && i < skip+250; i++ {
			iv := 0.0
			if i < len(in) {
				iv = in[i]
			}
			fmt.Printf("%d\t%.3f\t%.3f\n", i-skip, out[i], iv)
		}
	}
}
