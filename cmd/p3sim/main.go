// Command p3sim runs a single simulated training configuration and reports
// its throughput, iteration breakdown and (optionally) the NIC utilization
// trace of machine 0 — the simulated analogue of one cell of the paper's
// evaluation grid.
//
// Example:
//
//	p3sim -model vgg19 -strategy p3 -bw 15 -machines 4 -slice 50000 -trace
//
// The -sched flag re-runs any strategy under a different queue discipline
// from the internal/sched registry (fifo, p3, rr, smallest, credit:<bytes>),
// and -preempt enables resumable egress transmission: serialization happens
// in segments of the given byte quantum and a strictly more urgent message
// preempts an in-flight one at the next segment boundary — the
// true-preemption upper bound that the paper's slicing approximates:
//
//	p3sim -model vgg19 -strategy slicing -sched credit:1048576 -bw 15
//	p3sim -model vgg19 -strategy p3 -bw 1.5 -preempt 65536
//
// The calibrated mode closes the stall-feedback loop: -calibrate runs two
// passes — the first on the static FLOP-derived timing profile, the second
// on a profile rebuilt from the first pass's measured per-layer stalls —
// and reports both. -stallsout writes the measured stall profile for a
// later p3server/p3worker run; -stalls starts from one instead of the
// static profile:
//
//	p3sim -model vgg19 -strategy tictac -bw 1.5 -calibrate -stallsout vgg19.stalls
//	p3sim -model vgg19 -strategy tictac -bw 1.5 -stalls vgg19.stalls
//
// Fault injection replays (or generates) a deterministic scripted plan of
// aggregator crashes, straggler windows, link degradations and worker
// leave/join events (see internal/faults). -faultplan loads a JSON plan,
// -faultseed generates one matched to the topology flags; both are
// validated against the configured cluster before the run starts:
//
//	p3sim -model resnet50 -machines 16 -racksize 4 -oversub 4 -rackagg -faultseed 7
//	p3sim -model resnet50 -machines 16 -racksize 4 -oversub 4 -rackagg -faultplan crash.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"p3/internal/cluster"
	"p3/internal/sched"
	"p3/internal/strategy"
	"p3/internal/trace"
	"p3/internal/zoo"
)

func main() {
	modelName := flag.String("model", "resnet50", "model: resnet50|inception3|vgg19|sockeye|resnet110")
	stratName := flag.String("strategy", "p3", "strategy: baseline|tensorflow|wfbp|slicing|p3|asgd")
	schedName := flag.String("sched", "", "override the strategy's queue discipline: "+strings.Join(sched.Usage(), "|"))
	preempt := flag.Int64("preempt", 0, "egress preemption quantum in wire bytes (0 = off: in-flight messages always finish)")
	bw := flag.Float64("bw", 10, "per-direction NIC bandwidth in Gbps")
	machines := flag.Int("machines", 4, "cluster size (workers == servers == machines)")
	slice := flag.Int64("slice", 0, "max slice size in parameters (0 = paper default 50k; slicing/p3 only)")
	iters := flag.Int("iters", 8, "measured iterations")
	warmup := flag.Int("warmup", 2, "warm-up iterations")
	seed := flag.Int64("seed", 1, "workload seed")
	showTrace := flag.Bool("trace", false, "print machine 0's 10ms utilization trace")
	showLayers := flag.Bool("layers", false, "print the model's per-tensor table (Figure 5 data) and exit")
	calibrate := flag.Bool("calibrate", false, "two-pass calibrated mode: re-run with the profile rebuilt from the first pass's measured stalls and report both")
	stallsIn := flag.String("stalls", "", "run against a measured stall profile (file written by -stallsout) instead of the static timing")
	stallsOut := flag.String("stallsout", "", "write the run's measured per-layer mean stalls to this file")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "simulation shards for the conservative-lookahead parallel engine (1 = legacy single-heap engine; results are bit-identical either way)")
	rackSize := flag.Int("racksize", 0, "machines per rack (0 = flat network; >0 adds per-rack ToR uplinks and an oversubscribable core)")
	oversub := flag.Float64("oversub", 1, "core oversubscription ratio for -racksize topologies (1 = non-blocking core, values in (0,1) undersubscribe)")
	coreSched := flag.String("coresched", "", "queue discipline for the ToR core ports (requires -racksize; empty = blind FIFO ports)")
	rackAgg := flag.Bool("rackagg", false, "in-rack gradient aggregation: reduce pushes at each rack's ToR and fan broadcasts out there (requires -racksize)")
	pods := flag.Int("pods", 0, "group the racks into this many equal pods joined by a spine tier (0 = single-tier core; requires -racksize)")
	spineOversub := flag.Float64("spineoversub", 1, "spine oversubscription ratio relative to each pod's aggregate ToR-uplink rate (requires -pods)")
	spineSched := flag.String("spinesched", "", "queue discipline for the spine ports (requires -pods; empty = blind FIFO ports)")
	hierAgg := flag.Bool("hieragg", false, "hierarchical aggregation: reduce again at each pod's spine so one stream per pod reaches the server tier (requires -rackagg and -pods)")
	rackLocal := flag.Bool("racklocalps", false, "rack-local parameter serving: rack aggregators cache updated chunks and answer in-rack pulls without crossing the core (requires -rackagg)")
	aggRate := flag.Float64("aggrate", 0, "aggregator reduce rate in GB/s: each aggregator serializes ingest at this rate before reducing (0 = instantaneous; requires -rackagg)")
	faultPlan := flag.String("faultplan", "", "replay a scripted fault plan from this JSON file (see internal/faults; validated against the topology flags)")
	faultSeed := flag.Int64("faultseed", 0, "generate a deterministic scripted fault plan from this seed (0 = no faults; mutually exclusive with -faultplan)")
	flag.Parse()

	st, err := strategy.ByName(*stratName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3sim:", err)
		os.Exit(2)
	}
	if *schedName != "" {
		st, err = st.WithSched(*schedName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p3sim:", err)
			os.Exit(2)
		}
	}
	if *slice > 0 && st.Granularity == strategy.Slices {
		st.MaxSliceParams = *slice
	}

	m := zoo.ByName(*modelName)
	if *showLayers {
		fmt.Print(m.Table())
		return
	}

	var rec *trace.Recorder
	if *showTrace {
		rec = trace.NewRecorder(*machines, 0)
	}
	// The sharded engine cannot serve the utilization recorder (shared
	// buckets); it falls back to the legacy engine, which produces the
	// identical Result. Credit-gated disciplines shard like every other
	// since the window-relaxed refund protocol (refunds land one lookahead
	// after delivery, inside the conservative barrier window).
	nShards := *shards
	if nShards > *machines {
		nShards = *machines
	}
	if rec != nil {
		nShards = 1
	}
	cfg := cluster.Config{
		Model:          m,
		Machines:       *machines,
		Strategy:       st,
		BandwidthGbps:  *bw,
		PreemptQuantum: *preempt,
		WarmupIters:    *warmup,
		MeasureIters:   *iters,
		Seed:           *seed,
		Recorder:       rec,
		Shards:         nShards,
	}
	topo, useTopo, err := topologyFromFlags(topoFlags{
		machines: *machines, rackSize: *rackSize, oversub: *oversub,
		coreSched: *coreSched, rackAgg: *rackAgg, async: st.Async,
		pods: *pods, spineOversub: *spineOversub, spineSched: *spineSched,
		hierAgg: *hierAgg, rackLocal: *rackLocal, aggRate: *aggRate,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3sim:", err)
		os.Exit(2)
	}
	if useTopo {
		cfg.Topology = topo
		cfg.RackAggregation = *rackAgg
		cfg.HierAggregation = *hierAgg
		cfg.RackLocalPS = *rackLocal
		cfg.AggReduceGBps = *aggRate
	}
	plan, err := faultsFromFlags(faultFlags{
		planPath: *faultPlan, seed: *faultSeed, machines: *machines,
		topo: topo, rackAgg: useTopo && *rackAgg, hierAgg: useTopo && *hierAgg,
		rackLocal: useTopo && *rackLocal, pull: st.Pull,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "p3sim:", err)
		os.Exit(2)
	}
	cfg.Faults = plan
	if *stallsIn != "" {
		stalls, err := strategy.ReadStallFile(*stallsIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p3sim:", err)
			os.Exit(2)
		}
		cfg.Profile = strategy.CalibrateProfile(m, *bw, stalls)
	}
	var r cluster.Result
	if *calibrate {
		// Two passes by hand rather than cluster.RunCalibrated so the
		// utilization recorder (and any -stallsout artifact) reflects only
		// the calibrated pass.
		first := cfg
		first.Recorder = nil
		static := cluster.Run(first)
		cfg.Profile = strategy.CalibrateProfile(m, *bw, static.MeanLayerStalls())
		r = cluster.Run(cfg)
		firstLabel := "static"
		if *stallsIn != "" {
			firstLabel = "stall-file" // the first pass already ran on -stalls
		}
		fmt.Printf("calibrated:  %s pass %.2f ms/iter (stall %.2f ms) -> measured-profile pass %.2f ms/iter (stall %.2f ms)\n",
			firstLabel, static.MeanIterTime.Millis(), static.TotalStall().Millis(),
			r.MeanIterTime.Millis(), r.TotalStall().Millis())
	} else {
		r = cluster.Run(cfg)
	}
	if *stallsOut != "" {
		if err := strategy.WriteStallFile(*stallsOut, r.MeanLayerStalls()); err != nil {
			fmt.Fprintln(os.Stderr, "p3sim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote measured stall profile to %s\n", *stallsOut)
	}

	preemptDesc := "off"
	if *preempt > 0 {
		preemptDesc = fmt.Sprintf("%d B", *preempt)
	}
	topoDesc := "flat"
	if useTopo {
		topoDesc = fmt.Sprintf("racks of %d, core %g:1", *rackSize, *oversub)
		if *pods > 0 {
			topoDesc += fmt.Sprintf(", %d pods, spine %g:1", *pods, *spineOversub)
		}
		if *coreSched != "" {
			topoDesc += ", core sched " + *coreSched
		}
		if *spineSched != "" {
			topoDesc += ", spine sched " + *spineSched
		}
		switch {
		case *hierAgg:
			topoDesc += ", hierarchical aggregation"
		case *rackAgg:
			topoDesc += ", in-rack aggregation"
		}
		if *rackLocal {
			topoDesc += ", rack-local PS"
		}
		if *aggRate > 0 {
			topoDesc += fmt.Sprintf(", agg %g GB/s", *aggRate)
		}
	}
	fmt.Printf("model:       %s (%s)\n", m.Name, m)
	fmt.Printf("strategy:    %s  sched: %s  preempt: %s  machines: %d  bandwidth: %g Gbps\n",
		st.Name, st.Discipline(), preemptDesc, r.Machines, r.BandwidthGbps)
	fmt.Printf("engine:      %d shard(s)  topology: %s\n", nShards, topoDesc)
	fmt.Printf("throughput:  %.1f %s/s aggregate (%.1f per machine)\n",
		r.Throughput, m.SampleUnit, r.Throughput/float64(r.Machines))
	fmt.Printf("iteration:   %.2f ms mean (pure compute %.2f ms, comm overhead %.2f ms)\n",
		r.MeanIterTime.Millis(), r.ComputeIterTime.Millis(),
		(r.MeanIterTime - r.ComputeIterTime).Millis())
	fmt.Printf("sim cost:    %d events, %d messages, %.1f MB on the wire\n",
		r.Events, r.Msgs, float64(r.WireBytes)/1e6)
	if plan != nil {
		fmt.Printf("faults:      %d injected, %d agg failovers, %d lost reductions, %.1f ms degraded links\n",
			r.FaultsInjected, r.AggFailovers, r.LostReductions, float64(r.DegradedNs)/1e6)
	}

	if rec != nil {
		skip := int(r.WarmupEnd / rec.Bucket())
		out, in := rec.Gbps(0, trace.Out), rec.Gbps(0, trace.In)
		fmt.Println("\nbucket\toutbound_gbps\tinbound_gbps")
		for i := skip; i < len(out) && i < skip+250; i++ {
			iv := 0.0
			if i < len(in) {
				iv = in[i]
			}
			fmt.Printf("%d\t%.3f\t%.3f\n", i-skip, out[i], iv)
		}
	}
}
