package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p3/internal/faults"
	"p3/internal/netsim"
	"p3/internal/strategy"
)

// writePlan encodes p into a temp file and returns its path.
func writePlan(t *testing.T, p *faults.Plan) string {
	t.Helper()
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFaultsFromFlags(t *testing.T) {
	rackTopo := netsim.Topology{RackSize: 4, CoreOversub: 4}
	crashPlan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindAggCrash, At: 1e6, Until: 2e6, Tier: faults.TierRack, Index: 1},
	}}
	podCrashPlan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindAggCrash, At: 1e6, Until: 2e6, Tier: faults.TierPod, Index: 0},
	}}
	stragglerPlan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindStraggler, At: 1e6, Until: 2e6, Machine: 3, Factor: 2},
	}}
	outOfRangePlan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindStraggler, At: 1e6, Until: 2e6, Machine: 99, Factor: 2},
	}}

	for _, tc := range []struct {
		name     string
		f        faultFlags
		plan     *faults.Plan // written to a temp file when non-nil
		badFile  string       // raw file contents instead of an encoded plan
		wantPlan bool
		wantErr  string // fragment of the expected usage error
	}{
		{name: "no flags", f: faultFlags{machines: 16}},
		{name: "seeded flat", f: faultFlags{seed: 7, machines: 16}, wantPlan: true},
		{name: "seeded racks", f: faultFlags{seed: 7, machines: 16, topo: rackTopo,
			rackAgg: true, pull: strategy.Immediate}, wantPlan: true},
		{name: "seeded rack-local avoids crashes", f: faultFlags{seed: 7, machines: 16,
			topo: rackTopo, rackAgg: true, rackLocal: true}, wantPlan: true},
		{name: "replayed straggler", f: faultFlags{machines: 16}, plan: stragglerPlan, wantPlan: true},
		{name: "replayed crash", f: faultFlags{machines: 16, topo: rackTopo,
			rackAgg: true, pull: strategy.Immediate}, plan: crashPlan, wantPlan: true},
		{name: "both flags", f: faultFlags{seed: 7, machines: 16}, plan: stragglerPlan,
			wantErr: "mutually exclusive"},
		{name: "missing file", f: faultFlags{planPath: "/nonexistent/plan.json", machines: 16},
			wantErr: "-faultplan"},
		{name: "malformed file", f: faultFlags{machines: 16}, badFile: `{"events": [`,
			wantErr: "faults:"},
		{name: "machine out of topology", f: faultFlags{machines: 16}, plan: outOfRangePlan,
			wantErr: "machine 99"},
		{name: "rack crash on flat topology", f: faultFlags{machines: 16}, plan: crashPlan,
			wantErr: "flat topology"},
		{name: "crash without rackagg", f: faultFlags{machines: 16, topo: rackTopo,
			pull: strategy.Immediate}, plan: crashPlan, wantErr: "-rackagg is off"},
		{name: "crash with racklocalps", f: faultFlags{machines: 16, topo: rackTopo,
			rackAgg: true, rackLocal: true, pull: strategy.Immediate}, plan: crashPlan,
			wantErr: "-racklocalps"},
		{name: "crash without immediate broadcast", f: faultFlags{machines: 16, topo: rackTopo,
			rackAgg: true, pull: strategy.NotifyPull}, plan: crashPlan,
			wantErr: "immediate-broadcast"},
		{name: "pod crash without spine", f: faultFlags{machines: 16, topo: rackTopo,
			rackAgg: true, pull: strategy.Immediate}, plan: podCrashPlan,
			wantErr: "spine"},
	} {
		f := tc.f
		if tc.plan != nil {
			f.planPath = writePlan(t, tc.plan)
		}
		if tc.badFile != "" {
			f.planPath = filepath.Join(t.TempDir(), "bad.json")
			if err := os.WriteFile(f.planPath, []byte(tc.badFile), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		p, err := faultsFromFlags(f)
		if tc.wantErr != "" {
			if err == nil {
				t.Errorf("%s: no error, want one containing %q", tc.name, tc.wantErr)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if (p != nil) != tc.wantPlan {
			t.Errorf("%s: plan = %v, wantPlan %v", tc.name, p, tc.wantPlan)
		}
		if tc.name == "seeded rack-local avoids crashes" && p.HasAggCrash() {
			t.Errorf("%s: seeded plan crashes an aggregator the rack-local cache cannot fail over", tc.name)
		}
	}
}
