package main

import (
	"fmt"
	"os"

	"p3/internal/faults"
	"p3/internal/netsim"
	"p3/internal/strategy"
)

// faultFlags is the fault-injection flag group of p3sim, cross-checked as a
// unit by faultsFromFlags against the topology and strategy flags already
// resolved.
type faultFlags struct {
	planPath  string
	seed      int64
	machines  int
	topo      netsim.Topology
	rackAgg   bool
	hierAgg   bool
	rackLocal bool
	pull      strategy.PullMode
}

// faultsFromFlags loads (-faultplan) or generates (-faultseed) the run's
// fault plan and validates it against the configured cluster, so a plan
// referencing machines, racks or pods the topology does not have — or
// needing an aggregation mode the flags did not enable — is a usage error
// at the CLI boundary rather than a panic inside the engine. A nil plan
// (neither flag set) means a fault-free run.
func faultsFromFlags(f faultFlags) (*faults.Plan, error) {
	if f.planPath != "" && f.seed != 0 {
		return nil, fmt.Errorf("-faultplan and -faultseed are mutually exclusive: a file replays a scripted plan, a seed generates one")
	}
	var p *faults.Plan
	switch {
	case f.planPath != "":
		data, err := os.ReadFile(f.planPath)
		if err != nil {
			return nil, fmt.Errorf("-faultplan: %w", err)
		}
		p, err = faults.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("-faultplan %s: %w", f.planPath, err)
		}
	case f.seed != 0:
		// Crashes only make sense when the cluster has aggregators with a
		// recovery path, so the generator is told which tiers are crashable.
		canCrash := f.rackAgg && !f.rackLocal && f.pull == strategy.Immediate
		p = faults.Scripted(f.seed, f.machines, f.topo, canCrash, canCrash && f.hierAgg, 0)
	default:
		return nil, nil
	}
	if err := p.Validate(f.machines, f.topo); err != nil {
		return nil, err
	}
	// Mirror the cluster's construction-time prerequisites as usage errors.
	if p.HasAggCrash() {
		switch {
		case !f.rackAgg:
			return nil, fmt.Errorf("the plan crashes an aggregator but -rackagg is off: there is no aggregator to crash")
		case f.rackLocal:
			return nil, fmt.Errorf("agg-crash faults are incompatible with -racklocalps (the rack parameter cache has no failover path)")
		case f.pull != strategy.Immediate:
			return nil, fmt.Errorf("agg-crash faults need an immediate-broadcast strategy (crash recovery re-pulls against the immediate data path)")
		}
		if p.HasTierCrash(faults.TierPod) && !f.hierAgg {
			return nil, fmt.Errorf("the plan crashes a pod aggregator but -hieragg is off: there is no pod aggregator to crash")
		}
	}
	return p, nil
}
