package main

import "testing"

func TestTopologyFromFlags(t *testing.T) {
	for _, tc := range []struct {
		name     string
		f        topoFlags
		wantTopo bool
		wantErr  bool
	}{
		{name: "flat default", f: topoFlags{machines: 4, oversub: 1, spineOversub: 1}},
		{name: "racks", f: topoFlags{machines: 8, rackSize: 4, oversub: 4, spineOversub: 1}, wantTopo: true},
		{name: "undersubscribed", f: topoFlags{machines: 8, rackSize: 4, oversub: 0.5, spineOversub: 1}, wantTopo: true},
		{name: "core sched and agg", f: topoFlags{machines: 8, rackSize: 4, oversub: 4, coreSched: "p3", rackAgg: true, spineOversub: 1}, wantTopo: true},
		{name: "two-tier", f: topoFlags{machines: 16, rackSize: 4, oversub: 4, pods: 2, spineOversub: 4, spineSched: "p3", rackAgg: true, hierAgg: true}, wantTopo: true},
		{name: "rack-local and rate", f: topoFlags{machines: 8, rackSize: 4, oversub: 4, rackAgg: true, rackLocal: true, aggRate: 8, spineOversub: 1}, wantTopo: true},
		{name: "oversub without racks", f: topoFlags{machines: 4, oversub: 4, spineOversub: 1}, wantErr: true},
		{name: "coresched without racks", f: topoFlags{machines: 4, oversub: 1, coreSched: "p3", spineOversub: 1}, wantErr: true},
		{name: "rackagg without racks", f: topoFlags{machines: 4, oversub: 1, rackAgg: true, spineOversub: 1}, wantErr: true},
		{name: "pods without racks", f: topoFlags{machines: 4, oversub: 1, pods: 2, spineOversub: 1}, wantErr: true},
		{name: "spineoversub without racks", f: topoFlags{machines: 4, oversub: 1, spineOversub: 4}, wantErr: true},
		{name: "spinesched without racks", f: topoFlags{machines: 4, oversub: 1, spineSched: "p3", spineOversub: 1}, wantErr: true},
		{name: "hieragg without racks", f: topoFlags{machines: 4, oversub: 1, hierAgg: true, spineOversub: 1}, wantErr: true},
		{name: "racklocalps without racks", f: topoFlags{machines: 4, oversub: 1, rackLocal: true, spineOversub: 1}, wantErr: true},
		{name: "aggrate without racks", f: topoFlags{machines: 4, oversub: 1, aggRate: 8, spineOversub: 1}, wantErr: true},
		{name: "racksize over machines", f: topoFlags{machines: 4, rackSize: 8, oversub: 1, spineOversub: 1}, wantErr: true},
		{name: "negative racksize", f: topoFlags{machines: 4, rackSize: -1, oversub: 1, spineOversub: 1}, wantErr: true},
		{name: "zero oversub", f: topoFlags{machines: 8, rackSize: 4, oversub: 0, spineOversub: 1}, wantErr: true},
		{name: "negative oversub", f: topoFlags{machines: 8, rackSize: 4, oversub: -2, spineOversub: 1}, wantErr: true},
		{name: "unknown coresched", f: topoFlags{machines: 8, rackSize: 4, oversub: 4, coreSched: "nosuch", spineOversub: 1}, wantErr: true},
		{name: "rackagg with asgd", f: topoFlags{machines: 8, rackSize: 4, oversub: 4, rackAgg: true, async: true, spineOversub: 1}, wantErr: true},
		{name: "spineoversub without pods", f: topoFlags{machines: 8, rackSize: 4, oversub: 4, spineOversub: 4}, wantErr: true},
		{name: "spinesched without pods", f: topoFlags{machines: 8, rackSize: 4, oversub: 4, spineSched: "p3", spineOversub: 1}, wantErr: true},
		{name: "hieragg without pods", f: topoFlags{machines: 8, rackSize: 4, oversub: 4, rackAgg: true, hierAgg: true, spineOversub: 1}, wantErr: true},
		{name: "hieragg without rackagg", f: topoFlags{machines: 16, rackSize: 4, oversub: 4, pods: 2, hierAgg: true, spineOversub: 1}, wantErr: true},
		{name: "racklocalps without rackagg", f: topoFlags{machines: 8, rackSize: 4, oversub: 4, rackLocal: true, spineOversub: 1}, wantErr: true},
		{name: "aggrate without rackagg", f: topoFlags{machines: 8, rackSize: 4, oversub: 4, aggRate: 8, spineOversub: 1}, wantErr: true},
		{name: "negative aggrate", f: topoFlags{machines: 8, rackSize: 4, oversub: 4, rackAgg: true, aggRate: -1, spineOversub: 1}, wantErr: true},
		{name: "negative spineoversub", f: topoFlags{machines: 16, rackSize: 4, oversub: 4, pods: 2, spineOversub: -4}, wantErr: true},
		{name: "negative pods", f: topoFlags{machines: 8, rackSize: 4, oversub: 4, pods: -1, spineOversub: 1}, wantErr: true},
		{name: "pods do not divide racks", f: topoFlags{machines: 12, rackSize: 4, oversub: 4, pods: 2, spineOversub: 1}, wantErr: true},
		{name: "unknown spinesched", f: topoFlags{machines: 16, rackSize: 4, oversub: 4, pods: 2, spineSched: "nosuch", spineOversub: 1}, wantErr: true},
	} {
		topo, useTopo, err := topologyFromFlags(tc.f)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", tc.name, err, tc.wantErr)
			continue
		}
		if useTopo != tc.wantTopo {
			t.Errorf("%s: useTopo = %v, want %v", tc.name, useTopo, tc.wantTopo)
		}
		if tc.wantTopo && (topo.RackSize != tc.f.rackSize || topo.CoreOversub != tc.f.oversub ||
			topo.CoreSched != tc.f.coreSched || topo.Pods != tc.f.pods || topo.SpineSched != tc.f.spineSched) {
			t.Errorf("%s: topology %+v does not reflect the flags", tc.name, topo)
		}
		if tc.wantTopo && tc.f.pods > 0 && topo.SpineOversub != tc.f.spineOversub {
			t.Errorf("%s: SpineOversub %g does not reflect the flag %g", tc.name, topo.SpineOversub, tc.f.spineOversub)
		}
	}
}
