package main

import "testing"

func TestTopologyFromFlags(t *testing.T) {
	for _, tc := range []struct {
		name      string
		machines  int
		rackSize  int
		oversub   float64
		coreSched string
		rackAgg   bool
		async     bool
		wantTopo  bool
		wantErr   bool
	}{
		{name: "flat default", machines: 4, oversub: 1},
		{name: "racks", machines: 8, rackSize: 4, oversub: 4, wantTopo: true},
		{name: "undersubscribed", machines: 8, rackSize: 4, oversub: 0.5, wantTopo: true},
		{name: "core sched and agg", machines: 8, rackSize: 4, oversub: 4, coreSched: "p3", rackAgg: true, wantTopo: true},
		{name: "oversub without racks", machines: 4, oversub: 4, wantErr: true},
		{name: "coresched without racks", machines: 4, oversub: 1, coreSched: "p3", wantErr: true},
		{name: "rackagg without racks", machines: 4, oversub: 1, rackAgg: true, wantErr: true},
		{name: "racksize over machines", machines: 4, rackSize: 8, oversub: 1, wantErr: true},
		{name: "negative racksize", machines: 4, rackSize: -1, oversub: 1, wantErr: true},
		{name: "zero oversub", machines: 8, rackSize: 4, oversub: 0, wantErr: true},
		{name: "negative oversub", machines: 8, rackSize: 4, oversub: -2, wantErr: true},
		{name: "unknown coresched", machines: 8, rackSize: 4, oversub: 4, coreSched: "nosuch", wantErr: true},
		{name: "rackagg with asgd", machines: 8, rackSize: 4, oversub: 4, rackAgg: true, async: true, wantErr: true},
	} {
		topo, useTopo, err := topologyFromFlags(tc.machines, tc.rackSize, tc.oversub, tc.coreSched, tc.rackAgg, tc.async)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", tc.name, err, tc.wantErr)
			continue
		}
		if useTopo != tc.wantTopo {
			t.Errorf("%s: useTopo = %v, want %v", tc.name, useTopo, tc.wantTopo)
		}
		if tc.wantTopo && (topo.RackSize != tc.rackSize || topo.CoreOversub != tc.oversub || topo.CoreSched != tc.coreSched) {
			t.Errorf("%s: topology %+v does not reflect the flags", tc.name, topo)
		}
	}
}
