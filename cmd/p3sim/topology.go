package main

import (
	"fmt"

	"p3/internal/netsim"
)

// topoFlags is the rack/spine topology flag group of p3sim, cross-checked
// as a unit by topologyFromFlags.
type topoFlags struct {
	machines     int
	rackSize     int
	oversub      float64
	coreSched    string
	rackAgg      bool
	async        bool
	pods         int
	spineOversub float64
	spineSched   string
	hierAgg      bool
	rackLocal    bool
	aggRate      float64
}

// topologyFromFlags cross-checks the rack-topology flag group and builds
// the netsim.Topology. It rejects the silently-meaningless combinations
// the flags otherwise permit: -oversub/-coresched/-rackagg without a rack
// topology, a rack size exceeding the machine count, a non-positive
// oversubscription ratio, -rackagg under asynchronous SGD (which has no
// aggregation barrier to fold into the rack), spine flags without the
// tier they modify (-pods needs -racksize, -spineoversub/-spinesched
// need -pods), and the aggregation extensions without the rack
// aggregators they run on (-hieragg/-racklocalps/-aggrate need -rackagg;
// -hieragg additionally needs -pods). useTopo reports whether a rack
// topology was requested at all.
func topologyFromFlags(f topoFlags) (topo netsim.Topology, useTopo bool, err error) {
	if f.rackSize < 0 {
		return topo, false, fmt.Errorf("-racksize %d: must be >= 0", f.rackSize)
	}
	if f.rackSize == 0 {
		switch {
		case f.oversub != 1:
			return topo, false, fmt.Errorf("-oversub %g without -racksize: a flat network has no core to oversubscribe", f.oversub)
		case f.coreSched != "":
			return topo, false, fmt.Errorf("-coresched %s without -racksize: a flat network has no core ports to schedule", f.coreSched)
		case f.rackAgg:
			return topo, false, fmt.Errorf("-rackagg without -racksize: a flat network has no racks to aggregate in")
		case f.pods != 0:
			return topo, false, fmt.Errorf("-pods %d without -racksize: a flat network has no racks to group into pods", f.pods)
		case f.spineOversub != 1:
			return topo, false, fmt.Errorf("-spineoversub %g without -racksize: a flat network has no spine tier", f.spineOversub)
		case f.spineSched != "":
			return topo, false, fmt.Errorf("-spinesched %s without -racksize: a flat network has no spine ports to schedule", f.spineSched)
		case f.hierAgg:
			return topo, false, fmt.Errorf("-hieragg without -racksize: a flat network has no tiers to aggregate across")
		case f.rackLocal:
			return topo, false, fmt.Errorf("-racklocalps without -racksize: a flat network has no racks to localize servers in")
		case f.aggRate != 0:
			return topo, false, fmt.Errorf("-aggrate %g without -racksize: a flat network has no aggregators to rate-limit", f.aggRate)
		}
		return topo, false, nil
	}
	if f.rackSize > f.machines {
		return topo, false, fmt.Errorf("-racksize %d exceeds -machines %d", f.rackSize, f.machines)
	}
	if f.oversub <= 0 {
		return topo, false, fmt.Errorf("-oversub %g: must be positive (values in (0,1) undersubscribe the core)", f.oversub)
	}
	if f.pods == 0 {
		switch {
		case f.spineOversub != 1:
			return topo, false, fmt.Errorf("-spineoversub %g without -pods: a single-tier topology has no spine to oversubscribe", f.spineOversub)
		case f.spineSched != "":
			return topo, false, fmt.Errorf("-spinesched %s without -pods: a single-tier topology has no spine ports to schedule", f.spineSched)
		case f.hierAgg:
			return topo, false, fmt.Errorf("-hieragg without -pods: hierarchical aggregation needs a spine tier to reduce at")
		}
	}
	if f.rackAgg && f.async {
		return topo, false, fmt.Errorf("-rackagg with an asynchronous strategy: ASGD has no synchronous reduction to aggregate")
	}
	if !f.rackAgg {
		switch {
		case f.hierAgg:
			return topo, false, fmt.Errorf("-hieragg without -rackagg: the spine reduces streams the rack aggregators produce")
		case f.rackLocal:
			return topo, false, fmt.Errorf("-racklocalps without -rackagg: rack-local parameter caches live on the rack aggregators")
		case f.aggRate != 0:
			return topo, false, fmt.Errorf("-aggrate %g without -rackagg: there are no aggregators to rate-limit", f.aggRate)
		}
	}
	if f.aggRate < 0 {
		return topo, false, fmt.Errorf("-aggrate %g: must be >= 0 (0 = instantaneous reduction)", f.aggRate)
	}
	topo = netsim.Topology{
		RackSize: f.rackSize, CoreOversub: f.oversub, CoreSched: f.coreSched,
		Pods: f.pods, SpineSched: f.spineSched,
	}
	if f.pods > 0 {
		topo.SpineOversub = f.spineOversub
	}
	if err := topo.ValidateFor(f.machines); err != nil {
		return netsim.Topology{}, false, err
	}
	return topo, true, nil
}
