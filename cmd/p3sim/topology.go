package main

import (
	"fmt"

	"p3/internal/netsim"
)

// topologyFromFlags cross-checks the rack-topology flag group and builds
// the netsim.Topology. It rejects the silently-meaningless combinations
// the flags otherwise permit: -oversub/-coresched/-rackagg without a rack
// topology, a rack size exceeding the machine count, a non-positive
// oversubscription ratio, and -rackagg under asynchronous SGD, which has
// no aggregation barrier to fold into the rack. useTopo reports whether a
// rack topology was requested at all.
func topologyFromFlags(machines, rackSize int, oversub float64, coreSched string, rackAgg, async bool) (topo netsim.Topology, useTopo bool, err error) {
	if rackSize < 0 {
		return topo, false, fmt.Errorf("-racksize %d: must be >= 0", rackSize)
	}
	if rackSize == 0 {
		if oversub != 1 {
			return topo, false, fmt.Errorf("-oversub %g without -racksize: a flat network has no core to oversubscribe", oversub)
		}
		if coreSched != "" {
			return topo, false, fmt.Errorf("-coresched %s without -racksize: a flat network has no core ports to schedule", coreSched)
		}
		if rackAgg {
			return topo, false, fmt.Errorf("-rackagg without -racksize: a flat network has no racks to aggregate in")
		}
		return topo, false, nil
	}
	if rackSize > machines {
		return topo, false, fmt.Errorf("-racksize %d exceeds -machines %d", rackSize, machines)
	}
	if oversub <= 0 {
		return topo, false, fmt.Errorf("-oversub %g: must be positive (values in (0,1) undersubscribe the core)", oversub)
	}
	if rackAgg && async {
		return topo, false, fmt.Errorf("-rackagg with an asynchronous strategy: ASGD has no synchronous reduction to aggregate")
	}
	topo = netsim.Topology{RackSize: rackSize, CoreOversub: oversub, CoreSched: coreSched}
	if err := topo.Validate(); err != nil {
		return netsim.Topology{}, false, err
	}
	return topo, true, nil
}
