// Root benchmarks: one testing.B benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark runs a
// representative configuration of its experiment; the cmd/p3bench tool runs
// the full sweeps and prints the series.
//
//	go test -bench=. -benchmem
package p3_test

import (
	"runtime"
	"testing"
	"time"

	"p3/internal/benchmarks"
	"p3/internal/cluster"
	"p3/internal/data"
	"p3/internal/experiments"
	"p3/internal/nn"
	"p3/internal/opt"
	"p3/internal/strategy"
	"p3/internal/trace"
	"p3/internal/train"
	"p3/internal/zoo"
)

// BenchmarkDispatch runs the shared dispatch microbenchmark suite
// (internal/benchmarks): the same code `p3bench bench` renders and the CI
// regression gate measures against ci/bench_baseline.json, so `go test
// -bench Dispatch` and the gate can never drift apart.
func BenchmarkDispatch(b *testing.B) {
	for _, n := range benchmarks.Dispatch() {
		b.Run(n.Name, n.Bench)
	}
}

// runSim is one simulated configuration with test-friendly iteration counts.
func runSim(b *testing.B, model string, s strategy.Strategy, machines int, gbps float64, rec *trace.Recorder) cluster.Result {
	b.Helper()
	return cluster.Run(cluster.Config{
		Model: zoo.ByName(model), Machines: machines, Strategy: s,
		BandwidthGbps: gbps, WarmupIters: 1, MeasureIters: 3, Seed: 1, Recorder: rec,
	})
}

// BenchmarkFig5ModelZoo builds all four model tables (Figure 5's data).
func BenchmarkFig5ModelZoo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range zoo.All() {
			if m.TotalParams() == 0 {
				b.Fatal("empty model")
			}
		}
	}
}

// Figure 7: bandwidth vs throughput, one benchmark per sub-figure at the
// bandwidth the paper quotes its headline speedup for.
func BenchmarkFig7aResNet50Baseline4G(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "resnet50", strategy.Baseline(), 4, 4, nil)
	}
}

func BenchmarkFig7aResNet50P3_4G(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "resnet50", strategy.P3(0), 4, 4, nil)
	}
}

func BenchmarkFig7bInception3P3_4G(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "inception3", strategy.P3(0), 4, 4, nil)
	}
}

func BenchmarkFig7cVGG19Baseline15G(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "vgg19", strategy.Baseline(), 4, 15, nil)
	}
}

func BenchmarkFig7cVGG19P3_15G(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "vgg19", strategy.P3(0), 4, 15, nil)
	}
}

func BenchmarkFig7cVGG19Slicing30G(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "vgg19", strategy.SlicingOnly(0), 4, 30, nil)
	}
}

func BenchmarkFig7dSockeyeP3_4G(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "sockeye", strategy.P3(0), 4, 4, nil)
	}
}

// Figures 8/9: network-utilization traces (recorder attached).
func BenchmarkFig8NetworkUtilBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rec := trace.NewRecorder(4, 0)
		runSim(b, "resnet50", strategy.Baseline(), 4, 4, rec)
	}
}

func BenchmarkFig9NetworkUtilP3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rec := trace.NewRecorder(4, 0)
		runSim(b, "resnet50", strategy.P3(0), 4, 4, rec)
	}
}

// Figure 10: scalability (8-machine point at 10 Gbps).
func BenchmarkFig10aResNet50Scale8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "resnet50", strategy.P3(0), 8, 10, nil)
	}
}

func BenchmarkFig10bVGG19Scale8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "vgg19", strategy.P3(0), 8, 10, nil)
	}
}

func BenchmarkFig10cSockeyeScale16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "sockeye", strategy.P3(0), 16, 10, nil)
	}
}

// Figure 11: one P3-vs-DGC convergence epoch at test scale.
func BenchmarkFig11ConvergenceP3vsDGC(b *testing.B) {
	set := data.Generate(data.Config{Samples: 480, Features: 16, Classes: 4, Noise: 1.2, Seed: 5})
	tr, val := set.Split(0.25)
	cfg := train.Config{
		Net:     nn.Config{In: 16, Width: 24, Classes: 4, Blocks: 2, Seed: 9},
		Workers: 4, Batch: 8, Epochs: 1,
		Schedule: opt.ConstSchedule(0.05), Momentum: 0.9, ClipNorm: 2, Seed: 31,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Mode = train.Dense
		train.Run(cfg, tr, val)
		cfg.Mode = train.DGC
		cfg.DGCSparsity = 0.99
		train.Run(cfg, tr, val)
	}
}

// Figure 12: slice-size sweep endpoints and the paper's 50k optimum.
func BenchmarkFig12Slice1k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "resnet50", strategy.P3(1000), 4, 4, nil)
	}
}

func BenchmarkFig12Slice50k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "resnet50", strategy.P3(50_000), 4, 4, nil)
	}
}

func BenchmarkFig12Slice1M(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "resnet50", strategy.P3(1_000_000), 4, 4, nil)
	}
}

// Figure 13: TensorFlow-style synchronization.
func BenchmarkFig13TensorFlowUtil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rec := trace.NewRecorder(4, 0)
		runSim(b, "resnet50", strategy.TFStyle(), 4, 4, rec)
	}
}

// Figure 14: Poseidon-style WFBP.
func BenchmarkFig14PoseidonUtil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rec := trace.NewRecorder(4, 0)
		runSim(b, "inception3", strategy.WFBP(), 4, 1, rec)
	}
}

// Figure 15: ASGD vs P3 — the simulated iteration-time half of the figure.
func BenchmarkFig15ASGDvsP3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "resnet110", strategy.P3(0), 4, 1, nil)
		runSim(b, "resnet110", strategy.ASGDStrategy(), 4, 1, nil)
	}
}

// Scale axis (beyond the paper): the 64-machine comm-bound configuration
// that the O(log F) dispatch rewrite made practical — every egress queue
// holds one flow per peer, and event volume grows ~N^2.
func BenchmarkScale64Machines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "resnet50", strategy.P3(0), 64, 1.5, nil)
	}
}

// runSimShards is runSim on the conservative-lookahead sharded engine.
func runSimShards(b *testing.B, model string, s strategy.Strategy, machines, shards int, gbps float64) cluster.Result {
	b.Helper()
	return cluster.Run(cluster.Config{
		Model: zoo.ByName(model), Machines: machines, Strategy: s,
		BandwidthGbps: gbps, WarmupIters: 1, MeasureIters: 3, Seed: 1,
		Shards: shards,
	})
}

// BenchmarkScale256 is the 256-machine cell the sharded engine brought in
// reach: same comm-bound configuration as Scale64, four times as wide.
func BenchmarkScale256(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSim(b, "resnet50", strategy.P3(0), 256, 1.5, nil)
	}
}

// BenchmarkScale64Shards8 is Scale64 on the parallel executor. Its Result
// is bit-identical to the single-shard run (the conservative-lookahead
// determinism contract); the wall-clock ratio against BenchmarkScale64-
// Machines is the sharding speedup on the machine at hand.
func BenchmarkScale64Shards8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSimShards(b, "resnet50", strategy.P3(0), 64, 8, 1.5)
	}
}

// TestShardSpeedup64 pins that sharding actually pays at scale: on a host
// with enough cores the 64-machine cell at -shards=8 must finish at least
// 2.5x faster than the single-shard run. Gated on NumCPU so single-core CI
// runners (where the window machinery can only add overhead) skip rather
// than flake; the bit-equality property is pinned separately in
// internal/cluster regardless of core count.
func TestShardSpeedup64(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement in -short mode")
	}
	if runtime.NumCPU() < 8 {
		t.Skipf("need >= 8 CPUs for a meaningful 8-shard speedup, have %d", runtime.NumCPU())
	}
	run := func(shards int) time.Duration {
		cfg := cluster.Config{
			Model: zoo.ByName("resnet50"), Machines: 64, Strategy: strategy.P3(0),
			BandwidthGbps: 1.5, WarmupIters: 1, MeasureIters: 3, Seed: 1,
			Shards: shards,
		}
		best := time.Duration(0)
		for rep := 0; rep < 2; rep++ { // best of two: load spikes only slow a run down
			t0 := time.Now()
			cluster.Run(cfg)
			if d := time.Since(t0); rep == 0 || d < best {
				best = d
			}
		}
		return best
	}
	single := run(0)
	sharded := run(8)
	speedup := float64(single) / float64(sharded)
	t.Logf("64 machines: single %v, 8 shards %v, speedup %.2fx", single, sharded, speedup)
	if speedup < 2.5 {
		t.Errorf("8-shard speedup %.2fx < 2.5x (single %v, sharded %v)", speedup, single, sharded)
	}
}

// BenchmarkScale256Shards8Credit is the 256-machine credit cell on the
// parallel executor — the cell the window-relaxed refund protocol moved
// off the single-heap engine (credit-gated egress historically forced
// shards=1, so this cell used to run single-core while every ungated
// discipline fanned out).
func BenchmarkScale256Shards8Credit(b *testing.B) {
	st, err := strategy.SlicingOnly(0).WithSched("credit")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		runSimShards(b, "resnet50", st, 256, 8, 1.5)
	}
}

// TestShardSpeedupCredit256 pins the wall-clock payoff of the
// window-relaxed credit protocol: the 256-machine credit sweep cell —
// which the shards=1 rejection used to pin to one core — must finish at
// least 2.5x faster at -shards=8 than single-shard, on a host with
// enough cores. Same gating and best-of-two discipline as
// TestShardSpeedup64; bit-equality of the sharded credit run is pinned
// separately by internal/cluster's TestShardedGatedMatchesSingle
// regardless of core count.
func TestShardSpeedupCredit256(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement in -short mode")
	}
	if runtime.NumCPU() < 8 {
		t.Skipf("need >= 8 CPUs for a meaningful 8-shard speedup, have %d", runtime.NumCPU())
	}
	st, err := strategy.SlicingOnly(0).WithSched("credit")
	if err != nil {
		t.Fatal(err)
	}
	st.Name = "sliced+credit"
	run := func(shards int) time.Duration {
		cfg := cluster.Config{
			Model: zoo.ByName("resnet50"), Machines: 256, Strategy: st,
			BandwidthGbps: 1.5, WarmupIters: 1, MeasureIters: 2, Seed: 1,
			Shards: shards,
		}
		best := time.Duration(0)
		for rep := 0; rep < 2; rep++ { // best of two: load spikes only slow a run down
			t0 := time.Now()
			cluster.Run(cfg)
			if d := time.Since(t0); rep == 0 || d < best {
				best = d
			}
		}
		return best
	}
	single := run(0)
	sharded := run(8)
	speedup := float64(single) / float64(sharded)
	t.Logf("256 machines, credit: single %v, 8 shards %v, speedup %.2fx", single, sharded, speedup)
	if speedup < 2.5 {
		t.Errorf("8-shard credit speedup %.2fx < 2.5x (single %v, sharded %v)", speedup, single, sharded)
	}
}

// BenchmarkHeadline regenerates the Section 5.3 summary table.
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Headline(experiments.Options{Fast: true, Seed: 1})
		if len(rows) != 4 {
			b.Fatal("headline incomplete")
		}
	}
}
