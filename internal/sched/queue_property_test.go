package sched

import (
	"math/rand/v2"
	"testing"
)

// TestDispatchMatchesLinearScanReference is the bit-parity contract of the
// indexed-heap dispatcher: on every discipline — plain, ranked, profiled and
// credit-gated — every primitive must behave exactly like the retained
// linear-scan reference (reference_test.go) under random interleavings of
// push, pop, admission-gated pop, veto pop, preemption probes, credit
// acknowledgements and cancels. Both sides run their own fresh discipline
// instance; stateful disciplines (rr's stride clock, credit-adaptive's AIMD
// windows) stay in lockstep only while every walk consults Admit in the
// same order, so any divergence — in result OR in internal walk order —
// surfaces as a mismatch within a few steps.
func TestDispatchMatchesLinearScanReference(t *testing.T) {
	prof := &Profile{
		NeedAtNs:     []int64{10_000, 20_000, 40_000, 45_000, 90_000, 100_000},
		LayerBytes:   []int64{4_000, 80_000, 2_000, 64_000, 8_000, 120_000},
		GbpsEstimate: 1.5,
	}
	disciplines := []string{
		"fifo", "p3", "rr", "smallest", "tictac",
		"credit:1500", "credit-adaptive:1500",
	}
	for _, name := range disciplines {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(17, uint64(len(name))))
			for trial := 0; trial < 15; trial++ {
				var pri []int32
				var bytes []int64
				var dest []int32
				view := func(i int) Item {
					return Item{Priority: pri[i], Bytes: bytes[i], Dest: dest[i]}
				}
				q := NewQueue(ApplyProfile(MustByName(name), prof), view)
				r := newRefQueue(ApplyProfile(MustByName(name), prof), view)

				push := func() {
					pri = append(pri, int32(rng.IntN(6)))
					bytes = append(bytes, int64(1+rng.IntN(999)))
					dest = append(dest, int32(rng.IntN(5)))
					i := len(pri) - 1
					q.Push(i)
					r.Push(i)
				}
				// inflight holds indices popped (charged) but not yet
				// released; both queues share it because their pops must
				// agree.
				var inflight []int
				keep := func(i int) bool { return bytes[i]%3 != 0 }

				for step := 0; step < 500; step++ {
					op := rng.IntN(10)
					if q.Len() == 0 && op < 8 {
						op = 0
					}
					switch op {
					case 0, 1, 2: // push
						push()
					case 3, 4: // PopReady
						gv, gok := q.PopReady()
						wv, wok := r.PopReady()
						if gv != wv || gok != wok {
							t.Fatalf("trial %d step %d: PopReady = (%d,%v), reference (%d,%v)", trial, step, gv, gok, wv, wok)
						}
						if gok {
							inflight = append(inflight, gv)
						}
					case 5: // Pop (drain path: bypasses the gate, still charges)
						gv, gok := q.Pop()
						wv, wok := r.Pop()
						if gv != wv || gok != wok {
							t.Fatalf("trial %d step %d: Pop = (%d,%v), reference (%d,%v)", trial, step, gv, gok, wv, wok)
						}
						if gok {
							inflight = append(inflight, gv)
						}
					case 6: // PopReadyIf with a deterministic veto
						gv, gok := q.PopReadyIf(keep)
						wv, wok := r.PopReadyIf(keep)
						if gv != wv || gok != wok {
							t.Fatalf("trial %d step %d: PopReadyIf = (%d,%v), reference (%d,%v)", trial, step, gv, gok, wv, wok)
						}
						if gok {
							inflight = append(inflight, gv)
						}
					case 7: // Preempts / PopPreempting against a random in-flight hold
						if len(inflight) == 0 {
							push()
							continue
						}
						hold := inflight[rng.IntN(len(inflight))]
						if rng.IntN(2) == 0 {
							if g, w := q.Preempts(hold), r.Preempts(hold); g != w {
								t.Fatalf("trial %d step %d: Preempts(%d) = %v, reference %v", trial, step, hold, g, w)
							}
							continue
						}
						gv, gok := q.PopPreempting(hold)
						wv, wok := r.PopPreempting(hold)
						if gv != wv || gok != wok {
							t.Fatalf("trial %d step %d: PopPreempting(%d) = (%d,%v), reference (%d,%v)", trial, step, hold, gv, gok, wv, wok)
						}
						if gok {
							inflight = append(inflight, gv)
						}
					case 8: // release an in-flight element: Done or Cancel
						if len(inflight) == 0 {
							continue
						}
						k := rng.IntN(len(inflight))
						v := inflight[k]
						inflight = append(inflight[:k], inflight[k+1:]...)
						if rng.IntN(3) == 0 {
							q.Cancel(v)
							r.Cancel(v)
						} else {
							q.Done(v)
							r.Done(v)
						}
					case 9: // Blocked probe (mutates adaptive state via Admit)
						if g, w := q.Blocked(), r.Blocked(); g != w {
							t.Fatalf("trial %d step %d: Blocked = %v, reference %v", trial, step, g, w)
						}
					}
					if q.Len() != r.Len() {
						t.Fatalf("trial %d step %d: Len %d, reference %d", trial, step, q.Len(), r.Len())
					}
				}
				// Drain both to the end: residual order must match too.
				for {
					gv, gok := q.Pop()
					wv, wok := r.Pop()
					if gv != wv || gok != wok {
						t.Fatalf("trial %d drain: Pop = (%d,%v), reference (%d,%v)", trial, gv, gok, wv, wok)
					}
					if !gok {
						break
					}
				}
			}
		})
	}
}

// TestDrainedFlowsAreEvicted pins the leak fix: a flow whose subqueue
// drains must leave the flow map immediately (the reference — and the old
// dispatcher — kept it forever, which grew without bound on long-running
// transport queues cycling through many destinations).
func TestDrainedFlowsAreEvicted(t *testing.T) {
	var dest int32
	q := NewQueue(NewP3Priority(), func(i int) Item { return Item{Priority: 1, Dest: dest} })
	for round := 0; round < 10_000; round++ {
		dest = int32(round) // a fresh destination every round
		q.Push(round)
		if _, ok := q.Pop(); !ok {
			t.Fatal("pop failed")
		}
	}
	if len(q.flows) != 0 {
		t.Fatalf("%d drained flows still mapped, want 0 (unbounded growth on long-running queues)", len(q.flows))
	}
	if q.heads.Len() != 0 {
		t.Fatalf("%d drained flows still in the head heap, want 0", q.heads.Len())
	}
	// The shells are recycled, not hoarded: at most one live flow existed at
	// a time, so one shell suffices for all 10k destinations.
	if len(q.free) != 1 {
		t.Fatalf("free list holds %d shells, want 1 (one live flow at a time)", len(q.free))
	}
}

// TestQueueSteadyStateAllocs pins the allocation contract of the dispatch
// hot path: once slabs have grown, push/dispatch/release cycles allocate
// nothing, for plain, ranked and credit-gated disciplines alike.
func TestQueueSteadyStateAllocs(t *testing.T) {
	for _, name := range []string{"p3", "rr", "credit-adaptive:1048576"} {
		t.Run(name, func(t *testing.T) {
			ident := func(it Item) Item { return it }
			q := NewQueue(MustByName(name), ident)
			for i := 0; i < 256; i++ {
				q.Push(Item{Priority: int32(i % 8), Bytes: 64, Dest: int32(i % 32)})
			}
			avg := testing.AllocsPerRun(2000, func() {
				v, ok := q.PopReady()
				if !ok {
					t.Fatal("nothing admissible")
				}
				q.Done(v)
				q.Push(v)
			})
			if avg != 0 {
				t.Fatalf("steady-state dispatch allocates %.2f per op, want 0", avg)
			}
		})
	}
}
