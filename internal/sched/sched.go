// Package sched is the pluggable scheduling subsystem behind every
// send/processing queue in the tree: the simulator's NIC egress queues and
// endpoint processing pools (internal/netsim, internal/cluster,
// internal/ring) and the real TCP transport's producer/consumer queues
// (internal/transport, internal/pstcp) all order their work through a
// sched.Discipline.
//
// P3's core contribution (Section 4.2 of the paper) is an ordering
// discipline on parameter-chunk traffic; the related systems differ mainly
// in which discipline they apply to the same queues — ByteScheduler gates a
// credit window, TicTac derives a DAG order, Parameter Hub schedules at rack
// scale. Making the discipline a first-class value turns every queue into an
// experiment knob: a strategy (internal/strategy) names its discipline, the
// registry resolves it, and each queue instantiates a fresh copy so stateful
// disciplines never share state across queues.
//
// The built-in disciplines:
//
//   - fifo: insertion order (the MXNet/ps-lite baseline).
//   - p3: strict priority, lower Item.Priority first (the paper's
//     mechanism; ties dequeue in insertion order).
//   - rr: round-robin across priority classes via stride scheduling —
//     layers share the wire instead of starving each other.
//   - smallest: smallest payload first (shortest-job-first; a natural
//     foil for slicing experiments).
//   - credit / credit:<bytes>: ByteScheduler-style credit gate — strict
//     priority order, but at most <bytes> of traffic may be in flight
//     (popped and not yet acknowledged via Done), bounding how much
//     lower-priority data can delay a newly urgent item.
//
// Disciplines are deliberately deterministic: equal items dequeue in
// insertion order, which keeps the discrete-event simulator reproducible and
// matches the paper's implementation (slices of one layer go out in order).
package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Item is the scheduler-visible view of a queued element. Callers project
// their own element type (a transport frame, a simulator message, a
// processing-pool work item) into an Item; disciplines only ever see this
// view.
type Item struct {
	// Priority is the urgency class, lower = more urgent. P3 assigns
	// forward-pass layer order, so Priority doubles as the flow key for
	// fairness disciplines.
	Priority int32
	// Bytes is the payload size (wire bytes or processing cost proxy).
	Bytes int64
	// rank is a discipline-assigned ordering key, set by a Ranker at
	// enqueue time (e.g. the stride-scheduling pass of rr).
	rank uint64
}

// Discipline orders a queue. Less reports whether a should dequeue before
// b; elements that compare equal dequeue in insertion order. A Discipline
// instance may be stateful and must not be shared between queues — obtain a
// fresh instance per queue via ByName or a registered Factory.
type Discipline interface {
	// Name returns the canonical registry name.
	Name() string
	// Less reports whether a is more urgent than b.
	Less(a, b Item) bool
}

// Ranker is implemented by disciplines that assign an ordering key at
// enqueue time (stateful orders that a pure comparator cannot express, such
// as round-robin). Rank is called exactly once per item, before insertion.
type Ranker interface {
	Rank(it *Item)
}

// Dispatcher is implemented by disciplines that track dequeues (e.g. to
// advance a virtual clock). OnDispatch is called when an item is popped.
type Dispatcher interface {
	OnDispatch(it Item)
}

// Admitter is implemented by disciplines that gate dispatch with a credit
// window (ByteScheduler-style preemption control). Admit is consulted before
// an item may start; OnStart/OnDone bracket the item's in-flight interval.
// An Admitter must admit at least one item when nothing is in flight, or the
// queue would wedge.
type Admitter interface {
	Admit(it Item) bool
	OnStart(it Item)
	OnDone(it Item)
}

// ---- built-in disciplines ----

// FIFO dequeues in insertion order: the baseline wire behaviour of
// stock ps-lite/MXNet.
type FIFO struct{}

// NewFIFO returns the fifo discipline.
func NewFIFO() *FIFO { return &FIFO{} }

func (*FIFO) Name() string        { return "fifo" }
func (*FIFO) Less(a, b Item) bool { return false }

// P3Priority dequeues the lowest Priority value first — the paper's
// mechanism (Section 4.2): chunks of early layers preempt chunks of late
// layers at item granularity, ties in insertion order.
type P3Priority struct{}

// NewP3Priority returns the p3 strict-priority discipline.
func NewP3Priority() *P3Priority { return &P3Priority{} }

func (*P3Priority) Name() string        { return "p3" }
func (*P3Priority) Less(a, b Item) bool { return a.Priority < b.Priority }

// RoundRobinLayer interleaves priority classes (layers) fairly via stride
// scheduling: each class holds a pass counter, every enqueued item is
// stamped with its class's next pass (never behind the virtual clock of the
// last dispatch, so an idle class cannot hoard credit), and the smallest
// pass dequeues first. The result is one-from-each-layer round-robin rather
// than strict preemption.
type RoundRobinLayer struct {
	pass    map[int32]uint64
	virtual uint64
}

// NewRoundRobinLayer returns the rr discipline.
func NewRoundRobinLayer() *RoundRobinLayer {
	return &RoundRobinLayer{pass: make(map[int32]uint64)}
}

func (*RoundRobinLayer) Name() string { return "rr" }

func (r *RoundRobinLayer) Less(a, b Item) bool { return a.rank < b.rank }

func (r *RoundRobinLayer) Rank(it *Item) {
	p := r.pass[it.Priority]
	if p < r.virtual {
		p = r.virtual
	}
	it.rank = p
	r.pass[it.Priority] = p + 1
}

func (r *RoundRobinLayer) OnDispatch(it Item) {
	if it.rank+1 > r.virtual {
		r.virtual = it.rank + 1
	}
}

// SmallestFirst dequeues the smallest payload first (shortest-job-first),
// breaking ties by priority. It minimizes mean queueing delay without any
// model knowledge — the natural foil for P3's semantic priorities.
type SmallestFirst struct{}

// NewSmallestFirst returns the smallest discipline.
func NewSmallestFirst() *SmallestFirst { return &SmallestFirst{} }

func (*SmallestFirst) Name() string { return "smallest" }

func (*SmallestFirst) Less(a, b Item) bool {
	if a.Bytes != b.Bytes {
		return a.Bytes < b.Bytes
	}
	return a.Priority < b.Priority
}

// DefaultCreditBytes is the credit window used by the plain "credit" name:
// 4 MiB, ByteScheduler's default credit of a few slices' worth of traffic.
const DefaultCreditBytes = 4 << 20

// CreditGated is the ByteScheduler-style discipline: strict priority order
// plus a credit window — an item may start only while the bytes already in
// flight (started, not yet Done) leave room for it, except that the window
// never blocks an otherwise idle queue. Small windows approximate perfect
// preemption (a newly urgent item waits behind at most Credit bytes); an
// infinite window degenerates to p3.
type CreditGated struct {
	// Credit is the in-flight byte budget.
	Credit int64
	// inFlight is the byte total of started-but-not-Done items.
	inFlight int64
}

// NewCreditGated returns a credit discipline with the given window
// (<= 0 selects DefaultCreditBytes).
func NewCreditGated(credit int64) *CreditGated {
	if credit <= 0 {
		credit = DefaultCreditBytes
	}
	return &CreditGated{Credit: credit}
}

func (*CreditGated) Name() string        { return "credit" }
func (*CreditGated) Less(a, b Item) bool { return a.Priority < b.Priority }

func (c *CreditGated) Admit(it Item) bool {
	return c.inFlight == 0 || c.inFlight+it.Bytes <= c.Credit
}

func (c *CreditGated) OnStart(it Item) { c.inFlight += it.Bytes }

func (c *CreditGated) OnDone(it Item) {
	c.inFlight -= it.Bytes
	if c.inFlight < 0 {
		panic(fmt.Sprintf("sched: credit underflow (%d bytes)", c.inFlight))
	}
}

// InFlight reports the bytes currently charged against the window.
func (c *CreditGated) InFlight() int64 { return c.inFlight }

// ---- registry ----

// Factory builds a fresh Discipline instance. arg is the text after ":" in
// a parameterized name ("credit:1048576"), or "" when absent.
type Factory func(arg string) (Discipline, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
	aliases  = map[string]string{}
)

// Register installs a Factory under a canonical name plus aliases. It
// panics on duplicates — registration is an init-time affair.
func Register(name string, f Factory, alias ...string) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate discipline %q", name))
	}
	registry[name] = f
	for _, a := range alias {
		if _, dup := aliases[a]; dup {
			panic(fmt.Sprintf("sched: duplicate alias %q", a))
		}
		aliases[a] = name
	}
}

func init() {
	Register("fifo", func(string) (Discipline, error) { return NewFIFO(), nil }, "baseline")
	Register("p3", func(string) (Discipline, error) { return NewP3Priority(), nil }, "priority", "p3priority")
	Register("rr", func(string) (Discipline, error) { return NewRoundRobinLayer(), nil }, "roundrobin")
	Register("smallest", func(string) (Discipline, error) { return NewSmallestFirst(), nil }, "sjf")
	Register("credit", func(arg string) (Discipline, error) {
		if arg == "" {
			return NewCreditGated(0), nil
		}
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sched: credit window %q (want a positive byte count)", arg)
		}
		return NewCreditGated(n), nil
	}, "bytescheduler")
}

// ByName resolves a discipline name (optionally parameterized as
// "name:arg") to a fresh instance. The empty name resolves to fifo.
func ByName(name string) (Discipline, error) {
	if name == "" {
		return NewFIFO(), nil
	}
	base, arg := name, ""
	if i := strings.IndexByte(name, ':'); i >= 0 {
		base, arg = name[:i], name[i+1:]
	}
	regMu.RLock()
	if canon, ok := aliases[base]; ok {
		base = canon
	}
	f, ok := registry[base]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown discipline %q (want %s)", name, strings.Join(Names(), "|"))
	}
	return f(arg)
}

// MustByName is ByName for statically known names; it panics on error.
func MustByName(name string) Discipline {
	d, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Names returns the canonical discipline names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
