package sched

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Item is the scheduler-visible view of a queued element. Callers project
// their own element type (a transport frame, a simulator message, a
// processing-pool work item) into an Item; disciplines only ever see this
// view.
//
//p3:sizebudget 32
type Item struct {
	// Priority is the urgency class, lower = more urgent. P3 assigns
	// forward-pass layer order, so Priority doubles as the flow key for
	// fairness disciplines.
	Priority int32
	// Bytes is the payload size (wire bytes or processing cost proxy).
	Bytes int64
	// Dest identifies the flow's destination (receiving machine, worker
	// id, ...); per-destination disciplines (credit-adaptive) key their
	// windows on it. Callers without a meaningful destination leave it 0,
	// which collapses those disciplines to a single shared window.
	//
	// Item deliberately has no Src twin: the element's origin is a
	// property of the QUEUE (a NIC egress queue belongs to one machine, a
	// transport send queue to one worker), injected once per discipline
	// via ApplySource/Sourced. Keeping Item at four fields also keeps a
	// Less(a, b Item) interface call inside the amd64 ABI's nine integer
	// argument registers — a fifth field spills both arguments to the
	// stack and costs the dispatch hot path ~45% (measured on
	// BenchmarkQueueManyFlows/p3).
	Dest int32
	// rank is a discipline-assigned ordering key, set by a Ranker at
	// enqueue time (e.g. the stride-scheduling pass of rr).
	rank uint64
}

// Discipline orders a queue. Less reports whether a should dequeue before
// b; elements that compare equal dequeue in insertion order. A Discipline
// instance may be stateful and must not be shared between queues — obtain a
// fresh instance per queue via ByName or a registered Factory.
type Discipline interface {
	// Name returns the canonical registry name.
	Name() string
	// Less reports whether a is more urgent than b.
	Less(a, b Item) bool
}

// Ranker is implemented by disciplines that assign an ordering key at
// enqueue time (stateful orders that a pure comparator cannot express, such
// as round-robin). Rank is called exactly once per item, before insertion,
// and returns the stamped item. (Value-in/value-out rather than a pointer:
// passing a stack Item's address through the interface would force every
// enqueue — under every discipline — to heap-allocate the view.)
type Ranker interface {
	Rank(it Item) Item
}

// Dispatcher is implemented by disciplines that track dequeues (e.g. to
// advance a virtual clock). OnDispatch is called when an item is popped.
type Dispatcher interface {
	OnDispatch(it Item)
}

// Admitter is implemented by disciplines that gate dispatch with a credit
// window (ByteScheduler-style preemption control). Admit is consulted before
// an item may start; OnStart/OnDone bracket the item's in-flight interval.
// An Admitter must admit at least one item when nothing is in flight, or the
// queue would wedge. Admit is part of the adaptation protocol, not a pure
// query: an adaptive discipline may record a refusal as a congestion
// signal, so callers must not poll it (or Queue.Blocked) outside the
// dispatch loop's own cadence.
type Admitter interface {
	Admit(it Item) bool
	OnStart(it Item)
	OnDone(it Item)
}

// Canceler is implemented by Admitters that distinguish a refunded
// admission — the caller backed out before performing the work (e.g. a
// processing pool deferring an item on per-key serialization) — from a
// real completion. OnCancel releases the in-flight charge without feeding
// the discipline's adaptation signals; an Admitter without it treats
// cancels as completions.
type Canceler interface {
	OnCancel(it Item)
}

// Parker is implemented by Admitters that distinguish a parked (preempted)
// transmission's bytes from bytes genuinely in flight. A preemptive
// transmitter that parks an element calls OnPark: the element's remaining
// bytes are off the wire, so they must stop counting against the flow's
// admission window, and the transition must not feed the discipline's
// adaptation — a window that looks full of parked bytes is not congestion
// evidence. OnResume re-charges the element when transmission continues;
// the eventual OnDone then balances as usual. An Admitter without Parker
// keeps parked bytes charged (the pre-Parker behaviour), which is safe but
// lets a long-parked tail spuriously bind its flow's window.
type Parker interface {
	OnPark(it Item)
	OnResume(it Item)
}

// Profile carries the model timing knowledge that model-aware disciplines
// consume: for each priority class p (a layer's forward-pass index, the
// value carried in Item.Priority), NeedAtNs[p] is the compute time from the
// start of a forward pass until that layer's parameters are consumed, and
// GbpsEstimate is the wire rate used to estimate transfer times. Strategies
// populate it from the zoo model's model.Timing (strategy.ComputeProfile)
// and the scheduling sites hand it to their disciplines via ApplyProfile.
type Profile struct {
	NeedAtNs []int64
	// LayerBytes[p] is the total wire size of class p's tensor, used to
	// estimate how early the class's transfer must start.
	LayerBytes   []int64
	GbpsEstimate float64
}

// TxNs estimates the transfer time of a payload at the profiled wire rate
// (Gbit/s == bit/ns, so bits/rate is already nanoseconds).
func (p *Profile) TxNs(bytes int64) int64 {
	if p == nil || p.GbpsEstimate <= 0 {
		return 0
	}
	return int64(float64(bytes) * 8 / p.GbpsEstimate)
}

// Profiled is implemented by disciplines that consume a model Profile
// (tictac). A queue site that has one applies it with ApplyProfile right
// after resolving the discipline; disciplines must tolerate never receiving
// a profile by degrading to a model-blind order.
type Profiled interface {
	SetProfile(*Profile)
}

// ApplyProfile hands p to d when d is profile-aware, and returns d for
// chaining around NewQueue. A nil profile is a no-op.
func ApplyProfile(d Discipline, p *Profile) Discipline {
	if p != nil {
		if pd, ok := d.(Profiled); ok {
			pd.SetProfile(p)
		}
	}
	return d
}

// Sourced is implemented by disciplines that de-synchronize otherwise
// identical schedules across queue owners (damped): the source seed — the
// machine or endpoint the queue belongs to — rotates equal-rank decisions
// differently on every owner, so N machines running the same discipline do
// not collapse their urgent traffic onto the same receiver window. A queue
// site that knows its owner applies it with ApplySource right after
// resolving the discipline; disciplines must behave sensibly (rotation 0)
// without it.
type Sourced interface {
	SetSource(src int32)
}

// ApplySource hands the queue owner's identity to d when d is
// source-aware, and returns d for chaining around NewQueue.
func ApplySource(d Discipline, src int32) Discipline {
	if sd, ok := d.(Sourced); ok {
		sd.SetSource(src)
	}
	return d
}

// ---- built-in disciplines ----

// FIFO dequeues in insertion order: the baseline wire behaviour of
// stock ps-lite/MXNet.
type FIFO struct{}

// NewFIFO returns the fifo discipline.
func NewFIFO() *FIFO { return &FIFO{} }

func (*FIFO) Name() string        { return "fifo" }
func (*FIFO) Less(a, b Item) bool { return false }

// P3Priority dequeues the lowest Priority value first — the paper's
// mechanism (Section 4.2): chunks of early layers preempt chunks of late
// layers at item granularity, ties in insertion order.
type P3Priority struct{}

// NewP3Priority returns the p3 strict-priority discipline.
func NewP3Priority() *P3Priority { return &P3Priority{} }

func (*P3Priority) Name() string        { return "p3" }
func (*P3Priority) Less(a, b Item) bool { return a.Priority < b.Priority }

// RoundRobinLayer interleaves priority classes (layers) fairly via stride
// scheduling: each class holds a pass counter, every enqueued item is
// stamped with its class's next pass (never behind the virtual clock of the
// last dispatch, so an idle class cannot hoard credit), and the smallest
// pass dequeues first. The result is one-from-each-layer round-robin rather
// than strict preemption.
type RoundRobinLayer struct {
	pass    map[int32]uint64
	virtual uint64
}

// NewRoundRobinLayer returns the rr discipline.
func NewRoundRobinLayer() *RoundRobinLayer {
	return &RoundRobinLayer{pass: make(map[int32]uint64)}
}

func (*RoundRobinLayer) Name() string { return "rr" }

func (r *RoundRobinLayer) Less(a, b Item) bool { return a.rank < b.rank }

func (r *RoundRobinLayer) Rank(it Item) Item {
	p := r.pass[it.Priority]
	if p < r.virtual {
		p = r.virtual
	}
	it.rank = p
	r.pass[it.Priority] = p + 1
	return it
}

func (r *RoundRobinLayer) OnDispatch(it Item) {
	if it.rank+1 > r.virtual {
		r.virtual = it.rank + 1
	}
}

// SmallestFirst dequeues the smallest payload first (shortest-job-first),
// breaking ties by priority. It minimizes mean queueing delay without any
// model knowledge — the natural foil for P3's semantic priorities.
type SmallestFirst struct{}

// NewSmallestFirst returns the smallest discipline.
func NewSmallestFirst() *SmallestFirst { return &SmallestFirst{} }

func (*SmallestFirst) Name() string { return "smallest" }

func (*SmallestFirst) Less(a, b Item) bool {
	if a.Bytes != b.Bytes {
		return a.Bytes < b.Bytes
	}
	return a.Priority < b.Priority
}

// DefaultCreditBytes is the credit window used by the plain "credit" name:
// 4 MiB, ByteScheduler's default credit of a few slices' worth of traffic.
const DefaultCreditBytes = 4 << 20

// CreditGated is the ByteScheduler-style discipline: strict priority order
// plus a credit window — an item may start only while the bytes already in
// flight (started, not yet Done) leave room for it, except that the window
// never blocks an otherwise idle queue. Small windows approximate perfect
// preemption (a newly urgent item waits behind at most Credit bytes); an
// infinite window degenerates to p3.
type CreditGated struct {
	// Credit is the in-flight byte budget.
	Credit int64
	// inFlight is the byte total of started-but-not-Done items.
	inFlight int64
}

// NewCreditGated returns a credit discipline with the given window
// (<= 0 selects DefaultCreditBytes).
func NewCreditGated(credit int64) *CreditGated {
	if credit <= 0 {
		credit = DefaultCreditBytes
	}
	return &CreditGated{Credit: credit}
}

func (*CreditGated) Name() string        { return "credit" }
func (*CreditGated) Less(a, b Item) bool { return a.Priority < b.Priority }

func (c *CreditGated) Admit(it Item) bool {
	return c.inFlight == 0 || c.inFlight+it.Bytes <= c.Credit
}

func (c *CreditGated) OnStart(it Item) { c.inFlight += it.Bytes }

func (c *CreditGated) OnDone(it Item) {
	c.inFlight -= it.Bytes
	if c.inFlight < 0 {
		panic(fmt.Sprintf("sched: credit underflow (%d bytes)", c.inFlight))
	}
}

// InFlight reports the bytes currently charged against the window.
func (c *CreditGated) InFlight() int64 { return c.inFlight }

// TicTac ranks transfers by critical-path urgency the way TicTac (Hashemi
// et al., cited in the paper's related work) derives its DAG order: each
// layer's rank is its slack to consumption — the compute time until the
// next forward pass blocks on the layer, minus the estimated time to move
// the layer's bytes — so a heavy tensor's transfer is started earlier than
// its raw position suggests, and layers the timing profile declares
// compute-equivalent are ordered by transfer weight instead of p3's
// arbitrary index order.
//
// The slack is computed per layer (priority class), never per item: ranking
// individual chunks by their own size lets a layer's smaller tail chunk
// sort behind future full-size arrivals of the same layer, and because the
// forward pass consumes a layer all-or-nothing, that one chunk's starvation
// stalls the layer for a whole queue drain (observed on ResNet-50's fc
// layer: one 192 KB tail chunk behind 150 ms of backlog). Within a layer,
// and between layers with identical slack, items keep insertion order.
// Without a Profile the slack is unknowable and the discipline degrades to
// p3 exactly.
type TicTac struct {
	prof  *Profile
	slack []int64 // per priority class, precomputed on SetProfile
}

// NewTicTac returns the tictac discipline; supply timing via SetProfile
// (ApplyProfile) before use, or it behaves as p3.
func NewTicTac() *TicTac { return &TicTac{} }

func (*TicTac) Name() string { return "tictac" }

// SetProfile installs the model timing profile (Profiled) and precomputes
// the per-layer slack ranks.
func (t *TicTac) SetProfile(p *Profile) {
	t.prof = p
	t.slack = nil
	if p == nil {
		return
	}
	t.slack = make([]int64, len(p.NeedAtNs))
	for l := range p.NeedAtNs {
		var bytes int64
		if l < len(p.LayerBytes) {
			bytes = p.LayerBytes[l]
		}
		t.slack[l] = p.NeedAtNs[l] - p.TxNs(bytes)
	}
}

// Slack returns priority class pri's rank: its consumption deadline minus
// its estimated transfer time, in nanoseconds; lower is more urgent.
// Out-of-range classes clamp to the nearest profiled class.
func (t *TicTac) Slack(pri int32) int64 {
	if len(t.slack) == 0 {
		return 0
	}
	if pri < 0 {
		return t.slack[0]
	}
	if int(pri) >= len(t.slack) {
		return t.slack[len(t.slack)-1]
	}
	return t.slack[pri]
}

func (t *TicTac) Less(a, b Item) bool {
	if len(t.slack) == 0 {
		return a.Priority < b.Priority
	}
	sa, sb := t.Slack(a.Priority), t.Slack(b.Priority)
	if sa != sb {
		return sa < sb
	}
	return a.Priority < b.Priority
}

// AdaptiveCredit extends the credit gate from one shared window to one
// window per destination (Item.Dest), each tuned by AIMD from the
// admit/acknowledge pattern the queue already observes — no clock needed,
// so the adaptation is identical on the virtual and the real transport:
//
//   - stall: the window ran dry straight after refusing traffic (at most
//     one acknowledgement followed the last refusal), i.e. the destination
//     sat credit-limited with work queued — additive increase (Step,
//     capped at Max). A refusal followed by a burst of acknowledgements is
//     batch bookkeeping (the real send loops flush pending frames whenever
//     the gate refuses), not starvation, and does not grow the window;
//   - idle margin: 2x the window's worth of bytes completed without the
//     gate ever binding — the window buys no preemption it is paying for,
//     multiplicative decrease (halve, floored at Min).
//
// Window sizing is independent per destination: a slow receiver tunes its
// own window without inflating or shrinking anyone else's, the rack-scale
// imbalance Parameter Hub's analysis attributes to shared gates. Dispatch,
// however, still runs through the queue's single priority order: while the
// head item's destination is out of credit, admissible items for other
// destinations behind it wait too (head-of-line coupling); the ROADMAP
// lists flow-aware head skipping as an open item.
type AdaptiveCredit struct {
	// Initial is the starting window per destination.
	Initial int64
	// Min and Max bound the adaptation; Step is the additive increment.
	Min, Max, Step int64
	wins           map[int32]*destWindow
}

type destWindow struct {
	credit   int64
	inFlight int64
	parked   int64 // bytes of parked (preempted) transmissions, off the wire
	refused  bool  // the gate refused an item in the current busy period
	sinceRef int   // completions since the gate last refused
	clean    int64 // bytes acked since the gate last bound (or last adjust)
}

// NewAdaptiveCredit returns a credit-adaptive discipline whose per-
// destination windows start at initial bytes (<= 0 selects
// DefaultCreditBytes) and adapt within [initial/8, initial*16].
func NewAdaptiveCredit(initial int64) *AdaptiveCredit {
	if initial <= 0 {
		initial = DefaultCreditBytes
	}
	a := &AdaptiveCredit{
		Initial: initial,
		Min:     initial / 8,
		Max:     initial * 16,
		Step:    initial / 4,
		wins:    make(map[int32]*destWindow),
	}
	if a.Max/16 != initial { // initial*16 overflowed int64
		a.Max = math.MaxInt64
	}
	if a.Min < 1 {
		a.Min = 1
	}
	if a.Step < 1 {
		a.Step = 1
	}
	return a
}

func (*AdaptiveCredit) Name() string        { return "credit-adaptive" }
func (*AdaptiveCredit) Less(a, b Item) bool { return a.Priority < b.Priority }

func (a *AdaptiveCredit) win(dst int32) *destWindow {
	w := a.wins[dst]
	if w == nil {
		w = &destWindow{credit: a.Initial}
		a.wins[dst] = w
	}
	return w
}

func (a *AdaptiveCredit) Admit(it Item) bool {
	w := a.win(it.Dest)
	if w.inFlight == 0 || w.inFlight+it.Bytes <= w.credit {
		return true
	}
	w.refused = true
	w.sinceRef = 0
	w.clean = 0
	return false
}

func (a *AdaptiveCredit) OnStart(it Item) { a.win(it.Dest).inFlight += it.Bytes }

func (a *AdaptiveCredit) OnDone(it Item) {
	w := a.win(it.Dest)
	w.inFlight -= it.Bytes
	if w.inFlight < 0 {
		panic(fmt.Sprintf("sched: credit-adaptive underflow (dest %d, %d bytes)", it.Dest, w.inFlight))
	}
	if w.refused {
		w.sinceRef++
	}
	if w.inFlight == 0 {
		if w.refused {
			// The busy period ended with traffic having been refused. If at
			// most one completion followed the last refusal, the window ran
			// dry straight after binding — the destination stalled on
			// credit, not on data: additive increase. A burst of
			// completions after the refusal instead means the consumer
			// acknowledges in batches (the real send loops flush a whole
			// pending batch whenever the gate refuses), which drains the
			// window to zero as a matter of bookkeeping, not starvation —
			// growing on that signal would ratchet every window to Max and
			// degrade the discipline to an ungated p3 queue.
			if w.sinceRef <= 1 {
				w.credit += a.Step
				if w.credit > a.Max {
					w.credit = a.Max
				}
			}
			w.refused = false
			w.sinceRef = 0
			w.clean = 0
			return
		}
		// Idle drain without any refusal: fall through and count the bytes
		// as unconstrained.
	}
	if !w.refused {
		w.clean += it.Bytes
		if w.clean >= 2*w.credit {
			w.credit /= 2
			if w.credit < a.Min {
				w.credit = a.Min
			}
			w.clean = 0
		}
	}
}

// OnCancel refunds an admission without feeding the AIMD: the caller
// backed out of the work, so the bytes were neither stalled on nor cleanly
// delivered. If the refund drains the window, any pending refusal evidence
// is discarded rather than interpreted — a drain by cancellation says
// nothing about credit starvation.
func (a *AdaptiveCredit) OnCancel(it Item) {
	w := a.win(it.Dest)
	w.inFlight -= it.Bytes
	if w.inFlight < 0 {
		panic(fmt.Sprintf("sched: credit-adaptive underflow on cancel (dest %d, %d bytes)", it.Dest, w.inFlight))
	}
	if w.inFlight == 0 {
		w.refused = false
		w.sinceRef = 0
	}
}

// OnPark moves a preempted transmission's bytes out of the admission
// window (Parker): the remainder is off the wire while parked, so leaving
// it charged would refuse admissible traffic and feed those refusals to
// the AIMD as if the destination were stalled on credit — preemption would
// spuriously tune the window. Like OnCancel, a drain by parking discards
// pending refusal evidence instead of interpreting it.
func (a *AdaptiveCredit) OnPark(it Item) {
	w := a.win(it.Dest)
	w.inFlight -= it.Bytes
	w.parked += it.Bytes
	if w.inFlight < 0 {
		panic(fmt.Sprintf("sched: credit-adaptive underflow on park (dest %d, %d bytes)", it.Dest, w.inFlight))
	}
	if w.inFlight == 0 {
		w.refused = false
		w.sinceRef = 0
	}
}

// OnResume re-charges a parked transmission when it continues; the
// eventual OnDone balances the charge. Resuming is not an admission and
// feeds no adaptation signal.
func (a *AdaptiveCredit) OnResume(it Item) {
	w := a.win(it.Dest)
	w.parked -= it.Bytes
	w.inFlight += it.Bytes
	if w.parked < 0 {
		panic(fmt.Sprintf("sched: credit-adaptive resume without park (dest %d, %d bytes)", it.Dest, w.parked))
	}
}

// Window reports dst's current credit window (Initial if never used).
func (a *AdaptiveCredit) Window(dst int32) int64 {
	if w := a.wins[dst]; w != nil {
		return w.credit
	}
	return a.Initial
}

// InFlight reports the bytes currently charged against dst's window.
func (a *AdaptiveCredit) InFlight(dst int32) int64 {
	if w := a.wins[dst]; w != nil {
		return w.inFlight
	}
	return 0
}

// Parked reports the bytes of dst's transmissions currently parked
// (preempted), which do not count against the admission window.
func (a *AdaptiveCredit) Parked(dst int32) int64 {
	if w := a.wins[dst]; w != nil {
		return w.parked
	}
	return 0
}

// ---- registry ----

// Factory builds a fresh Discipline instance. arg is the text after ":" in
// a parameterized name ("credit:1048576"), or "" when absent.
type Factory func(arg string) (Discipline, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
	aliases  = map[string]string{}
)

// Register installs a Factory under a canonical name plus aliases. It
// panics on duplicates — registration is an init-time affair.
func Register(name string, f Factory, alias ...string) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate discipline %q", name))
	}
	registry[name] = f
	for _, a := range alias {
		if _, dup := aliases[a]; dup {
			panic(fmt.Sprintf("sched: duplicate alias %q", a))
		}
		aliases[a] = name
	}
}

// noArg wraps a parameterless discipline constructor into a Factory that
// rejects stray arguments ("rr:junk" must not silently resolve to rr).
func noArg(name string, mk func() Discipline) Factory {
	return func(arg string) (Discipline, error) {
		if arg != "" {
			return nil, fmt.Errorf("sched: %s takes no argument (got %q)", name, arg)
		}
		return mk(), nil
	}
}

// windowArg parses the optional byte-count argument of the credit
// disciplines; the empty string selects the default window.
func windowArg(name, arg string) (int64, error) {
	if arg == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(arg, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("sched: %s window %q (want a positive byte count)", name, arg)
	}
	return n, nil
}

func init() {
	Register("fifo", noArg("fifo", func() Discipline { return NewFIFO() }), "baseline")
	Register("p3", noArg("p3", func() Discipline { return NewP3Priority() }), "priority", "p3priority")
	Register("rr", noArg("rr", func() Discipline { return NewRoundRobinLayer() }), "roundrobin")
	Register("smallest", noArg("smallest", func() Discipline { return NewSmallestFirst() }), "sjf")
	Register("tictac", noArg("tictac", func() Discipline { return NewTicTac() }), "dag", "criticalpath")
	Register("credit", func(arg string) (Discipline, error) {
		n, err := windowArg("credit", arg)
		if err != nil {
			return nil, err
		}
		return NewCreditGated(n), nil
	}, "bytescheduler")
	Register("credit-adaptive", func(arg string) (Discipline, error) {
		n, err := windowArg("credit-adaptive", arg)
		if err != nil {
			return nil, err
		}
		return NewAdaptiveCredit(n), nil
	}, "adaptive")
}

// ByName resolves a discipline name (optionally parameterized as
// "name:arg") to a fresh instance. The empty name resolves to fifo.
func ByName(name string) (Discipline, error) {
	if name == "" {
		return NewFIFO(), nil
	}
	base, arg := name, ""
	if i := strings.IndexByte(name, ':'); i >= 0 {
		base, arg = name[:i], name[i+1:]
		if arg == "" {
			// "credit:" is a malformed parameterization, not a request for
			// the default window — resolving it silently would mask a lost
			// argument (found by FuzzByName).
			return nil, fmt.Errorf("sched: %q has an empty argument (drop the colon for the default)", name)
		}
	}
	regMu.RLock()
	if canon, ok := aliases[base]; ok {
		base = canon
	}
	f, ok := registry[base]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown discipline %q (want %s)", name, strings.Join(Usage(), "|"))
	}
	return f(arg)
}

// usageArgs annotates the parameterized registry names with their argument
// grammar, so ByName's error text (and the CLI -sched help strings built
// from it) documents how to invoke them, not just that they exist.
var usageArgs = map[string]string{
	"credit":          "credit[:bytes]",
	"credit-adaptive": "credit-adaptive[:bytes]",
	"damped":          "damped[:base[@weight]]",
}

// Usage returns the canonical discipline names with argument grammar
// ("credit[:bytes]", "damped[:base[@weight]]"), sorted like Names.
func Usage() []string {
	names := Names()
	for i, n := range names {
		if u, ok := usageArgs[n]; ok {
			names[i] = u
		}
	}
	return names
}

// MustByName is ByName for statically known names; it panics on error.
func MustByName(name string) Discipline {
	d, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Names returns the canonical discipline names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
