package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Damped is a composable rank transform over a priority-ordered base
// discipline: fan-in-aware priority damping. Each item's dispatch rank is
//
//	rank = arrival epoch + Weight × class
//
// where the arrival epoch is the queue's enqueue counter and class is the
// item's priority level in the base discipline's order (the raw layer
// priority under p3/credit, the slack-sorted position under a profiled
// tictac). Lower rank dispatches first, ties in insertion order. Weight is
// the damping horizon: an urgent item may overtake at most Weight×Δclass
// earlier arrivals, so Weight→0 degrades to fifo, Weight→∞ to the base's
// strict order, and any finite Weight bounds priority inversion — no class
// can be starved by an unbounded stream of fresher, more urgent work.
//
// The pathology it exists for is the 64-machine p3-vs-fifo inversion on the
// parameter-server path (see ROADMAP). Under strict priority at high fan-in
// the cluster's NICs run far below saturation: every machine prefers the
// freshly-aggregated urgent broadcasts over its own remaining gradient-push
// tail, all 64 workers defer the same tail layers in lockstep, and the
// aggregation barrier (a chunk's update needs every worker's push) turns
// that shared deferral into idle ingest windows on every server — measured
// at 64 machines/1.5 Gbps, strict p3 holds the wire at 66% utilization
// versus fifo's 86% and runs 34% slower; the damped rank restores the
// pipeline (push tails age into dispatch) while keeping enough priority to
// beat fifo's arrival order at every machine count.
//
// Ranks collide whenever a fresher more-urgent item lands on an older less
// urgent one's damped position (epoch difference == Weight × class
// difference — a constant occurrence in a saturated queue). Those ties are
// broken by the per-source rotation in the low bits, Dest XOR source seed
// (the queue owner's identity, injected via ApplySource): each source
// machine resolves the same tie toward a different destination, so the N
// otherwise-identical schedules fan the contested window out across
// receivers instead of synchronizing on one.
//
// The transform never drops or duplicates work: the dispatch order is a
// permutation of the base schedule with bounded per-item displacement
// (pinned by TestDampedIsPermutation and TestDampedNoStarvation). The bound
// costs a little strictness where strict priority was already optimal — at
// 4 machines damped-p3 trails strict p3 by under 1% while still beating
// fifo — and buys back the whole inversion at 64.
//
// Damped needs no Profile of its own: with a profile-aware base
// (damped:tictac) the profile is forwarded and the class mapping follows
// the base's slack order; without one the base's documented fallback
// applies (tictac degrades to p3) and a Profile-less damped is simply
// damped p3 order — it never panics.
type Damped struct {
	base Discipline
	// Weight is the damping horizon in queued items per priority class
	// step. DefaultDampWeight when zero.
	weight uint64
	seq    uint64
	// src is the queue owner's rotation seed (Sourced); 0 without one.
	src uint32
	// classOf maps Item.Priority to the base discipline's class index;
	// nil means identity (p3/credit order). A profiled tictac base
	// installs its slack-sorted positions here via SetProfile.
	classOf []uint64
}

// DefaultDampWeight is the damping horizon used by the bare "damped" name:
// an urgent item overtakes at most 8 queued items per class step it is
// ahead of — near-strict priority through the shallow queues of small
// clusters, bounded tail starvation in the deep queues of large ones.
// Chosen by sweeping the 4/16/64-machine scale axis (weights 1..32;
// TestInversionFixedAt64Machines and the experiments.Scale sweep pin the
// result).
const DefaultDampWeight = 8

// dampedRotBits is the width of the rotation tie-break packed into the low
// bits of Item.rank; the damped rank occupies the high bits.
const dampedRotBits = 16

// NewDamped wraps base in the damped rank transform with the given weight
// (0 selects DefaultDampWeight). base must be priority-ordered — p3,
// tictac, or a credit discipline; bases that rank at enqueue themselves
// (rr, another damped) or order by something other than the priority class
// (fifo, smallest) are rejected.
func NewDamped(base Discipline, weight int64) (Discipline, error) {
	if _, ok := base.(Ranker); ok {
		return nil, fmt.Errorf("sched: damped cannot wrap %s (it already ranks at enqueue)", base.Name())
	}
	switch base.(type) {
	case *P3Priority, *TicTac, *CreditGated, *AdaptiveCredit:
	default:
		return nil, fmt.Errorf("sched: damped wraps priority-ordered disciplines (p3, tictac, credit, credit-adaptive), not %s", base.Name())
	}
	if weight < 0 {
		return nil, fmt.Errorf("sched: damped weight %d (want >= 0)", weight)
	}
	if weight == 0 {
		weight = DefaultDampWeight
	}
	d := &Damped{base: base, weight: uint64(weight)}
	if adm, ok := base.(Admitter); ok {
		return &gatedDamped{Damped: *d, adm: adm}, nil
	}
	return d, nil
}

// Base returns the wrapped discipline.
func (d *Damped) Base() Discipline { return d.base }

// Weight returns the damping horizon (items per class step).
func (d *Damped) Weight() int64 { return int64(d.weight) }

func (d *Damped) Name() string { return "damped:" + d.base.Name() }

// class maps a priority to its class index in the base's order.
func (d *Damped) class(pri int32) uint64 {
	if pri < 0 {
		pri = 0
	}
	if len(d.classOf) > 0 {
		if int(pri) >= len(d.classOf) {
			pri = int32(len(d.classOf) - 1)
		}
		return d.classOf[pri]
	}
	return uint64(pri)
}

// SetSource installs the queue owner's rotation seed (Sourced).
func (d *Damped) SetSource(src int32) { d.src = uint32(src) }

// Rank stamps the item with (epoch + Weight×class) in the high bits and
// the per-source rotation (Dest XOR source seed) in the low tie-break
// bits.
func (d *Damped) Rank(it Item) Item {
	e := d.seq + d.weight*d.class(it.Priority)
	d.seq++
	it.rank = e<<dampedRotBits | uint64(uint16(uint32(it.Dest)^d.src))
	return it
}

// Less orders by the damped rank; full ties keep insertion order, as every
// discipline must.
func (d *Damped) Less(a, b Item) bool { return a.rank < b.rank }

// SetProfile forwards the timing profile when the base is profile-aware
// (damped:tictac) and rebuilds the class mapping from the base's slack
// order, so damping and the base agree on which class is more urgent.
// Otherwise it is a no-op — damped itself never needs a profile.
func (d *Damped) SetProfile(p *Profile) {
	pd, ok := d.base.(Profiled)
	if !ok {
		return
	}
	pd.SetProfile(p)
	d.classOf = nil
	t, ok := d.base.(*TicTac)
	if !ok || p == nil {
		return
	}
	// Position of each priority in the slack order (ties by priority,
	// mirroring TicTac.Less). An empty profile carries no class order:
	// keep the identity mapping (and the no-panic contract).
	n := len(p.NeedAtNs)
	if n == 0 {
		return
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := t.Slack(order[i]), t.Slack(order[j])
		if si != sj {
			return si < sj
		}
		return order[i] < order[j]
	})
	d.classOf = make([]uint64, n)
	for pos, pri := range order {
		d.classOf[pri] = uint64(pos)
	}
}

// gatedDamped is the wrapper variant for Admitter bases (damped:credit,
// damped:credit-adaptive): the rank transform plus pass-through credit
// accounting. It is a separate type so that a damped ungated base does not
// present an Admitter to the queue (which would route every dispatch
// through the admission walk).
type gatedDamped struct {
	Damped
	adm Admitter
}

func (g *gatedDamped) Admit(it Item) bool { return g.adm.Admit(it) }
func (g *gatedDamped) OnStart(it Item)    { g.adm.OnStart(it) }
func (g *gatedDamped) OnDone(it Item)     { g.adm.OnDone(it) }

// OnCancel forwards to the base's cancel path, falling back to completion
// semantics exactly as Queue.Cancel would for the bare base.
func (g *gatedDamped) OnCancel(it Item) {
	if c, ok := g.adm.(Canceler); ok {
		c.OnCancel(it)
		return
	}
	g.adm.OnDone(it)
}

// OnPark and OnResume forward parked-transmission accounting to bases that
// track it (credit-adaptive); for the rest a parked element simply stays
// charged, the pre-Parker behaviour.
func (g *gatedDamped) OnPark(it Item) {
	if p, ok := g.adm.(Parker); ok {
		p.OnPark(it)
	}
}

func (g *gatedDamped) OnResume(it Item) {
	if p, ok := g.adm.(Parker); ok {
		p.OnResume(it)
	}
}

func init() {
	Register("damped", func(arg string) (Discipline, error) {
		base, weight := arg, int64(0)
		// The optional trailing "@<weight>" tunes the damping horizon:
		// "damped:credit:1048576@16" wraps credit:1048576 at weight 16.
		if i := strings.LastIndexByte(arg, '@'); i >= 0 {
			n, err := strconv.ParseInt(arg[i+1:], 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("sched: damped weight %q (want a positive item count)", arg[i+1:])
			}
			base, weight = arg[:i], n
		}
		if base == "" {
			base = "p3"
		}
		b, err := ByName(base)
		if err != nil {
			return nil, fmt.Errorf("sched: damped base: %w", err)
		}
		return NewDamped(b, weight)
	}, "damp")
}
