package sched

import "p3/internal/pq"

// Queue is a deterministic, non-thread-safe queue of T ordered by a
// Discipline. It is the building block behind every scheduling site: the
// discrete-event simulator uses it directly (single-threaded on the virtual
// clock), and transport.SendQueue wraps it with a mutex/condvar for the real
// concurrent transport.
//
// The view function projects an element into the scheduler-visible Item;
// it must be pure (the queue may call it more than once per element).
type Queue[T any] struct {
	d    Discipline
	rank Ranker     // non-nil iff d ranks at enqueue
	disp Dispatcher // non-nil iff d tracks dispatches
	adm  Admitter   // non-nil iff d gates with a credit window
	view func(T) Item
	q    *pq.Queue[entry[T]]
}

type entry[T any] struct {
	v  T
	it Item
}

// NewQueue builds a queue ordered by d. d must be a fresh instance not
// shared with any other queue (stateful disciplines carry per-queue state).
func NewQueue[T any](d Discipline, view func(T) Item) *Queue[T] {
	q := &Queue[T]{d: d, view: view}
	q.rank, _ = d.(Ranker)
	q.disp, _ = d.(Dispatcher)
	q.adm, _ = d.(Admitter)
	q.q = pq.New(func(a, b entry[T]) bool { return d.Less(a.it, b.it) })
	return q
}

// Discipline returns the queue's discipline.
func (q *Queue[T]) Discipline() Discipline { return q.d }

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return q.q.Len() }

// Push enqueues v.
func (q *Queue[T]) Push(v T) {
	it := q.view(v)
	if q.rank != nil {
		q.rank.Rank(&it)
	}
	q.q.Push(entry[T]{v: v, it: it})
}

// Peek returns the most urgent element without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	e, ok := q.q.Peek()
	return e.v, ok
}

// Pop removes and returns the most urgent element, bypassing the Admit
// check of any credit gate (used when draining a closed queue). It still
// charges the element in flight (OnStart), so the caller's usual Done call
// stays balanced whether the element came from Pop or PopReady. The second
// result is false when the queue is empty.
func (q *Queue[T]) Pop() (T, bool) {
	if q.q.Len() == 0 {
		var zero T
		return zero, false
	}
	e := q.q.Pop()
	if q.adm != nil {
		q.adm.OnStart(e.it)
	}
	if q.disp != nil {
		q.disp.OnDispatch(e.it)
	}
	return e.v, true
}

// PopReady removes and returns the most urgent element if the discipline
// admits it now. The second result is false when the queue is empty or the
// head is blocked by the credit window. An admitted element is charged
// in-flight (OnStart); release it with Done once it completes.
func (q *Queue[T]) PopReady() (T, bool) {
	e, ok := q.q.Peek()
	if !ok {
		var zero T
		return zero, false
	}
	if q.adm != nil && !q.adm.Admit(e.it) {
		var zero T
		return zero, false
	}
	q.q.Pop()
	if q.adm != nil {
		q.adm.OnStart(e.it)
	}
	if q.disp != nil {
		q.disp.OnDispatch(e.it)
	}
	return e.v, true
}

// Done releases v's in-flight charge (a no-op for disciplines without a
// credit window). Call it exactly once per successful PopReady.
func (q *Queue[T]) Done(v T) {
	if q.adm != nil {
		q.adm.OnDone(q.view(v))
	}
}

// Cancel releases v's in-flight charge without signalling a completion:
// use it when the caller backs out of work it popped (e.g. re-queueing an
// item deferred on a serialization constraint), so adaptive disciplines do
// not tune their windows on bytes that were never actually processed.
// Falls back to Done semantics for disciplines without a cancel path.
func (q *Queue[T]) Cancel(v T) {
	if q.adm == nil {
		return
	}
	if c, ok := q.adm.(Canceler); ok {
		c.OnCancel(q.view(v))
		return
	}
	q.adm.OnDone(q.view(v))
}

// Blocked reports whether the head exists but is currently refused by the
// credit window — i.e. a Done call is required before progress. It consults
// the discipline's Admit, which for adaptive disciplines records the
// refusal as a congestion signal — treat Blocked as part of the dispatch
// loop, not a free-standing query to poll.
func (q *Queue[T]) Blocked() bool {
	e, ok := q.q.Peek()
	return ok && q.adm != nil && !q.adm.Admit(e.it)
}
