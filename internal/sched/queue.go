package sched

import (
	"sort"

	"p3/internal/pq"
)

// Queue is a deterministic, non-thread-safe queue of T ordered by a
// Discipline. It is the building block behind every scheduling site: the
// discrete-event simulator uses it directly (single-threaded on the virtual
// clock), and transport.SendQueue wraps it with a mutex/condvar for the real
// concurrent transport.
//
// Internally the queue is per-flow: elements are bucketed into subqueues
// keyed by their Item.Dest, each subqueue ordered by the discipline, and the
// dispatcher (Pop/PopReady) selects among the flow heads — discipline order
// first, global insertion order on ties. For plain disciplines this is
// indistinguishable from one priority heap (the most urgent flow head IS the
// global minimum), so fifo, p3, rr, smallest and tictac dequeue bit-identically
// to a single queue. The structure pays off under an Admitter: when a flow's
// head is refused by its credit window, PopReady skips to the most urgent
// admissible head of another flow instead of blocking every destination
// behind one starved one (flow-aware head skipping).
//
// The view function projects an element into the scheduler-visible Item;
// it must be pure (the queue may call it more than once per element).
type Queue[T any] struct {
	d    Discipline
	rank Ranker     // non-nil iff d ranks at enqueue
	disp Dispatcher // non-nil iff d tracks dispatches
	adm  Admitter   // non-nil iff d gates with a credit window
	view func(T) Item

	flows   map[int32]*flow[T]
	order   []*flow[T] // creation order: deterministic iteration
	scratch []*flow[T] // reusable head-selection buffer
	seq     uint64     // global insertion counter (cross-flow tie-break)
	n       int
}

type flow[T any] struct {
	key int32
	q   *pq.Queue[entry[T]]
}

type entry[T any] struct {
	v   T
	it  Item
	seq uint64
}

// NewQueue builds a queue ordered by d. d must be a fresh instance not
// shared with any other queue (stateful disciplines carry per-queue state).
func NewQueue[T any](d Discipline, view func(T) Item) *Queue[T] {
	q := &Queue[T]{d: d, view: view, flows: make(map[int32]*flow[T])}
	q.rank, _ = d.(Ranker)
	q.disp, _ = d.(Dispatcher)
	q.adm, _ = d.(Admitter)
	return q
}

// Discipline returns the queue's discipline.
func (q *Queue[T]) Discipline() Discipline { return q.d }

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// Push enqueues v into its flow's subqueue.
func (q *Queue[T]) Push(v T) {
	it := q.view(v)
	if q.rank != nil {
		q.rank.Rank(&it)
	}
	q.seq++
	f := q.flows[it.Dest]
	if f == nil {
		f = &flow[T]{key: it.Dest}
		f.q = pq.New(func(a, b entry[T]) bool { return q.d.Less(a.it, b.it) })
		q.flows[it.Dest] = f
		q.order = append(q.order, f)
	}
	f.q.Push(entry[T]{v: v, it: it, seq: q.seq})
	q.n++
}

// before reports whether entry a precedes b in the global dispatch order:
// discipline order first, global insertion order on ties. Sequence numbers
// are unique, so this is a strict total order and selection is deterministic
// regardless of flow iteration order.
func (q *Queue[T]) before(a, b entry[T]) bool {
	if q.d.Less(a.it, b.it) {
		return true
	}
	if q.d.Less(b.it, a.it) {
		return false
	}
	return a.seq < b.seq
}

// best returns the flow holding the globally most urgent head, or nil when
// the queue is empty. Admission is not consulted.
func (q *Queue[T]) best() *flow[T] {
	var bf *flow[T]
	var bh entry[T]
	for _, f := range q.order {
		h, ok := f.q.Peek()
		if !ok {
			continue
		}
		if bf == nil || q.before(h, bh) {
			bf, bh = f, h
		}
	}
	return bf
}

// heads returns the non-empty flows sorted by the urgency of their heads,
// most urgent first. The returned slice is reused across calls.
func (q *Queue[T]) heads() []*flow[T] {
	hs := q.scratch[:0]
	for _, f := range q.order {
		if f.q.Len() > 0 {
			hs = append(hs, f)
		}
	}
	sort.Slice(hs, func(i, j int) bool {
		a, _ := hs[i].q.Peek()
		b, _ := hs[j].q.Peek()
		return q.before(a, b)
	})
	q.scratch = hs
	return hs
}

// take pops f's head and runs the dispatch bookkeeping.
func (q *Queue[T]) take(f *flow[T]) T {
	e := f.q.Pop()
	q.n--
	if q.adm != nil {
		q.adm.OnStart(e.it)
	}
	if q.disp != nil {
		q.disp.OnDispatch(e.it)
	}
	return e.v
}

// Peek returns the most urgent element without removing it, ignoring any
// credit gate.
func (q *Queue[T]) Peek() (T, bool) {
	f := q.best()
	if f == nil {
		var zero T
		return zero, false
	}
	e, _ := f.q.Peek()
	return e.v, true
}

// Pop removes and returns the most urgent element, bypassing the Admit
// check of any credit gate (used when draining a closed queue). It still
// charges the element in flight (OnStart), so the caller's usual Done call
// stays balanced whether the element came from Pop or PopReady. The second
// result is false when the queue is empty.
func (q *Queue[T]) Pop() (T, bool) {
	f := q.best()
	if f == nil {
		var zero T
		return zero, false
	}
	return q.take(f), true
}

// PopReady removes and returns the most urgent admissible element: flow
// heads are consulted in urgency order and the first one the discipline
// admits dispatches, so a credit-blocked flow never delays an admissible
// item bound for another destination. Disciplines without an Admitter
// always admit their global head, making PopReady identical to Pop. The
// second result is false when the queue is empty or every flow head is
// refused by the credit window. An admitted element is charged in-flight
// (OnStart); release it with Done once it completes.
func (q *Queue[T]) PopReady() (T, bool) {
	if q.adm == nil {
		return q.Pop()
	}
	for _, f := range q.heads() {
		e, _ := f.q.Peek()
		if !q.adm.Admit(e.it) {
			continue
		}
		return q.take(f), true
	}
	var zero T
	return zero, false
}

// Preempts reports whether PopReady would dispatch an element strictly more
// urgent than hold (discipline order; ties never preempt, preserving the
// insertion-order guarantee within a priority class). It is the
// segment-boundary check of preemptive transmitters: hold is the in-flight
// element, and a true result means the caller should park it (Cancel +
// Push, progress retained) and re-dispatch. Like Blocked, it consults the
// discipline's Admit and so belongs inside the dispatch loop's cadence.
//
// hold is compared through the raw view, without a Ranker pass: under a
// rank-at-enqueue discipline (rr) an in-flight element holds its dispatch
// position in virtual time and nothing queued ever outranks it, so Ranker
// disciplines never preempt — stride scheduling expresses fairness, not
// urgency, and there is no "more urgent" to preempt for.
func (q *Queue[T]) Preempts(hold T) bool {
	if q.n == 0 {
		return false
	}
	ht := q.view(hold)
	if q.adm == nil {
		f := q.best()
		e, _ := f.q.Peek()
		return q.d.Less(e.it, ht)
	}
	for _, f := range q.heads() {
		e, _ := f.q.Peek()
		if !q.d.Less(e.it, ht) {
			return false // heads are urgency-ordered: no candidate remains
		}
		if q.adm.Admit(e.it) {
			return true
		}
	}
	return false
}

// PopReadyIf is PopReady with a caller veto: it selects the element
// PopReady would dispatch — the most urgent admissible flow head — but
// pops it only when keep approves it, leaving the queue untouched (and
// returning false) otherwise. It is the single-walk primitive behind
// conditional dispatch such as netsim's preemption rule, where the
// candidate must beat the in-flight transmission on more than urgency;
// skipping a vetoed candidate for a less urgent one would reorder the
// discipline, so the veto ends the walk.
func (q *Queue[T]) PopReadyIf(keep func(T) bool) (T, bool) {
	var zero T
	if q.adm == nil {
		f := q.best()
		if f == nil {
			return zero, false
		}
		e, _ := f.q.Peek()
		if !keep(e.v) {
			return zero, false
		}
		return q.take(f), true
	}
	for _, f := range q.heads() {
		e, _ := f.q.Peek()
		if !q.adm.Admit(e.it) {
			continue
		}
		if !keep(e.v) {
			return zero, false
		}
		return q.take(f), true
	}
	return zero, false
}

// PopPreempting pops the most urgent admissible element that is strictly
// more urgent than hold AND belongs to a different flow than hold. It is the
// preemption primitive of senders whose in-flight element occupies its
// flow's channel (one TCP stream cannot interleave two frames): traffic for
// other destinations may overtake at a segment boundary, same-destination
// traffic must wait for hold to finish. The second result is false when no
// such element exists. As with Preempts, Ranker disciplines never preempt
// (hold's unranked view precedes every queued rank).
func (q *Queue[T]) PopPreempting(hold T) (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	ht := q.view(hold)
	for _, f := range q.heads() {
		e, _ := f.q.Peek()
		if !q.d.Less(e.it, ht) {
			break // heads are urgency-ordered: no candidate remains
		}
		if f.key == ht.Dest {
			continue
		}
		if q.adm != nil && !q.adm.Admit(e.it) {
			continue
		}
		return q.take(f), true
	}
	return zero, false
}

// Done releases v's in-flight charge (a no-op for disciplines without a
// credit window). Call it exactly once per successful PopReady.
func (q *Queue[T]) Done(v T) {
	if q.adm != nil {
		q.adm.OnDone(q.view(v))
	}
}

// Cancel releases v's in-flight charge without signalling a completion:
// use it when the caller backs out of work it popped (e.g. re-queueing an
// item deferred on a serialization constraint, or parking a preempted
// transmission), so adaptive disciplines do not tune their windows on bytes
// that were never actually processed. The refund is routed by v's own Item
// view — v carries its destination, so a flow skipped at dispatch can never
// absorb another flow's refund. Falls back to Done semantics for
// disciplines without a cancel path.
func (q *Queue[T]) Cancel(v T) {
	if q.adm == nil {
		return
	}
	if c, ok := q.adm.(Canceler); ok {
		c.OnCancel(q.view(v))
		return
	}
	q.adm.OnDone(q.view(v))
}

// Blocked reports whether elements are queued but every flow head is
// currently refused by the credit window — i.e. a Done call is required
// before progress. It consults the discipline's Admit, which for adaptive
// disciplines records each refusal as a congestion signal — treat Blocked
// as part of the dispatch loop, not a free-standing query to poll.
func (q *Queue[T]) Blocked() bool {
	if q.adm == nil || q.n == 0 {
		return false
	}
	for _, f := range q.heads() {
		e, _ := f.q.Peek()
		if q.adm.Admit(e.it) {
			return false
		}
	}
	return true
}
