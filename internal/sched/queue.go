package sched

import (
	"sort"

	"p3/internal/pq"
)

// Queue is a deterministic, non-thread-safe queue of T ordered by a
// Discipline. It is the building block behind every scheduling site: the
// discrete-event simulator uses it directly (single-threaded on the virtual
// clock), and transport.SendQueue wraps it with a mutex/condvar for the real
// concurrent transport.
//
// Internally the queue is per-flow: elements are bucketed into subqueues
// keyed by their Item.Dest, each subqueue ordered by the discipline, and the
// dispatcher (Pop/PopReady) selects among the flow heads — discipline order
// first, global insertion order on ties. For plain disciplines this is
// indistinguishable from one priority heap (the most urgent flow head IS the
// global minimum), so fifo, p3, rr, smallest and tictac dequeue bit-identically
// to a single queue. The structure pays off under an Admitter: when a flow's
// head is refused by its credit window, PopReady skips to the most urgent
// admissible head of another flow instead of blocking every destination
// behind one starved one (flow-aware head skipping).
//
// The flow heads live in an indexed min-heap (pq.Indexed) ordered by the
// same strict total order the dispatcher uses, so selecting, re-ranking or
// evicting a flow costs O(log F) in the flow count F — never a linear scan —
// and the admission walk visits heads in urgency order by popping the heap,
// restoring the skipped prefix afterwards. A flow whose subqueue drains is
// evicted immediately and its storage recycled through a free list, so a
// long-running queue (the pstcp server's send queues live for the process
// lifetime) holds memory proportional to its current, not historical, flow
// set, and steady-state operation allocates nothing. See doc.go for the
// per-operation complexity contract.
//
// The view function projects an element into the scheduler-visible Item;
// it must be pure (the queue may call it more than once per element).
type Queue[T any] struct {
	d    Discipline
	rank Ranker     // non-nil iff d ranks at enqueue
	disp Dispatcher // non-nil iff d tracks dispatches
	adm  Admitter   // non-nil iff d gates with a credit window
	view func(T) Item

	flows map[int32]*flow[T] // non-empty flows only, keyed by Item.Dest
	heads *pq.Indexed[*flow[T]]
	walk  []*flow[T] // reusable admission-walk buffer (skipped prefix)
	free  []*flow[T] // drained flow shells kept for reuse
	seq   uint64     // global insertion counter (cross-flow tie-break)
	n     int
}

// flow is one destination's subqueue plus its position in the head heap
// (maintained by the heap's move callback; -1 while evicted).
type flow[T any] struct {
	key int32
	idx int
	q   *pq.Queue[entry[T]]
}

type entry[T any] struct {
	v   T
	it  Item
	seq uint64
}

// NewQueue builds a queue ordered by d. d must be a fresh instance not
// shared with any other queue (stateful disciplines carry per-queue state).
func NewQueue[T any](d Discipline, view func(T) Item) *Queue[T] {
	q := &Queue[T]{d: d, view: view, flows: make(map[int32]*flow[T])}
	q.rank, _ = d.(Ranker)
	q.disp, _ = d.(Dispatcher)
	q.adm, _ = d.(Admitter)
	q.heads = pq.NewIndexed(
		func(a, b *flow[T]) bool {
			ea, _ := a.q.Peek()
			eb, _ := b.q.Peek()
			return q.before(ea, eb)
		},
		func(f *flow[T], i int) { f.idx = i },
	)
	return q
}

// Discipline returns the queue's discipline.
func (q *Queue[T]) Discipline() Discipline { return q.d }

// Gated reports whether the discipline gates dispatch with a credit window
// (implements Admitter, possibly under wrappers). Gated queues need
// completion feedback (Done) from the consumer; execution modes that cannot
// deliver it synchronously (the sharded engine's cross-shard deliveries)
// use this to reject the combination up front.
func (q *Queue[T]) Gated() bool { return q.adm != nil }

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// Push enqueues v into its flow's subqueue in O(log F) (plus O(log n_f) in
// the flow's own depth), allocating only when a slab must grow.
//
//p3:noescape
func (q *Queue[T]) Push(v T) {
	it := q.view(v)
	if q.rank != nil {
		it = q.rank.Rank(it)
	}
	q.seq++
	f := q.flows[it.Dest]
	if f == nil {
		if k := len(q.free); k > 0 {
			f = q.free[k-1]
			q.free[k-1] = nil
			q.free = q.free[:k-1]
			f.key = it.Dest
		} else {
			//p3:alloc-ok first flow per destination; recycled via q.free thereafter
			f = &flow[T]{key: it.Dest}
			//p3:alloc-ok per-flow heap and closure, amortized over the flow's lifetime
			f.q = pq.New(func(a, b entry[T]) bool { return q.d.Less(a.it, b.it) })
		}
		q.flows[it.Dest] = f
		f.q.Push(entry[T]{v: v, it: it, seq: q.seq})
		q.heads.Push(f)
	} else {
		f.q.Push(entry[T]{v: v, it: it, seq: q.seq})
		q.heads.Fix(f.idx) // the flow's head may have changed
	}
	q.n++
}

// before reports whether entry a precedes b in the global dispatch order:
// discipline order first, global insertion order on ties. Sequence numbers
// are unique, so this is a strict total order and both the head heap and the
// dispatcher are deterministic regardless of internal layout.
//
//p3:noescape
func (q *Queue[T]) before(a, b entry[T]) bool {
	if q.d.Less(a.it, b.it) {
		return true
	}
	if q.d.Less(b.it, a.it) {
		return false
	}
	return a.seq < b.seq
}

// take pops f's head, evicts f if that drained it, and runs the dispatch
// bookkeeping. f must currently be in the head heap.
//
//p3:noescape
func (q *Queue[T]) take(f *flow[T]) T {
	e := f.q.Pop()
	q.n--
	if f.q.Len() == 0 {
		// Evict immediately: an empty flow must not linger in the map (that
		// leak grew without bound on long-running transport queues) nor in
		// the heap (its comparator has no head to read). The shell is
		// recycled so a flow that reappears costs no allocation.
		q.heads.Remove(f.idx)
		delete(q.flows, f.key)
		q.free = append(q.free, f)
	} else {
		q.heads.Fix(f.idx)
	}
	if q.adm != nil {
		q.adm.OnStart(e.it)
	}
	if q.disp != nil {
		q.disp.OnDispatch(e.it)
	}
	return e.v
}

// restoreWalk pushes the admission walk's popped prefix back into the head
// heap. Heap layout after restoration may differ, but dispatch order cannot:
// the order is the comparator's strict total order, not the layout.
//
//p3:noescape
func (q *Queue[T]) restoreWalk() {
	for i, f := range q.walk {
		q.heads.Push(f)
		q.walk[i] = nil
	}
	q.walk = q.walk[:0]
}

// Peek returns the most urgent element without removing it, ignoring any
// credit gate.
//
//p3:noescape
func (q *Queue[T]) Peek() (T, bool) {
	f, ok := q.heads.Peek()
	if !ok {
		var zero T
		return zero, false
	}
	e, _ := f.q.Peek()
	return e.v, true
}

// Pop removes and returns the most urgent element, bypassing the Admit
// check of any credit gate (used when draining a closed queue). It still
// charges the element in flight (OnStart), so the caller's usual Done call
// stays balanced whether the element came from Pop or PopReady. The second
// result is false when the queue is empty.
//
//p3:noescape
func (q *Queue[T]) Pop() (T, bool) {
	f, ok := q.heads.Peek()
	if !ok {
		var zero T
		return zero, false
	}
	return q.take(f), true
}

// PopReady removes and returns the most urgent admissible element: flow
// heads are consulted in urgency order and the first one the discipline
// admits dispatches, so a credit-blocked flow never delays an admissible
// item bound for another destination. Disciplines without an Admitter
// always admit their global head, making PopReady identical to Pop. The
// second result is false when the queue is empty or every flow head is
// refused by the credit window. An admitted element is charged in-flight
// (OnStart); release it with Done once it completes.
//
//p3:noescape
func (q *Queue[T]) PopReady() (T, bool) {
	if q.adm == nil {
		return q.Pop()
	}
	var chosen *flow[T]
	for q.heads.Len() > 0 {
		f := q.heads.Pop()
		q.walk = append(q.walk, f)
		e, _ := f.q.Peek()
		if q.adm.Admit(e.it) {
			chosen = f
			break
		}
	}
	q.restoreWalk()
	if chosen == nil {
		var zero T
		return zero, false
	}
	return q.take(chosen), true
}

// Preempts reports whether PopReady would dispatch an element strictly more
// urgent than hold (discipline order; ties never preempt, preserving the
// insertion-order guarantee within a priority class). It is the
// segment-boundary check of preemptive transmitters: hold is the in-flight
// element, and a true result means the caller should park it (Cancel +
// Push, progress retained) and re-dispatch. Like Blocked, it consults the
// discipline's Admit and so belongs inside the dispatch loop's cadence.
//
// hold is compared through the raw view, without a Ranker pass: under a
// rank-at-enqueue discipline (rr) an in-flight element holds its dispatch
// position in virtual time and nothing queued ever outranks it, so Ranker
// disciplines never preempt — stride scheduling expresses fairness, not
// urgency, and there is no "more urgent" to preempt for.
//
//p3:noescape
func (q *Queue[T]) Preempts(hold T) bool {
	if q.n == 0 {
		return false
	}
	ht := q.view(hold)
	if q.adm == nil {
		f, _ := q.heads.Peek()
		e, _ := f.q.Peek()
		return q.d.Less(e.it, ht)
	}
	found := false
	for q.heads.Len() > 0 {
		f := q.heads.Pop()
		q.walk = append(q.walk, f)
		e, _ := f.q.Peek()
		if !q.d.Less(e.it, ht) {
			break // heads are urgency-ordered: no candidate remains
		}
		if q.adm.Admit(e.it) {
			found = true
			break
		}
	}
	q.restoreWalk()
	return found
}

// PopReadyIf is PopReady with a caller veto: it selects the element
// PopReady would dispatch — the most urgent admissible flow head — but
// pops it only when keep approves it, leaving the queue untouched (and
// returning false) otherwise. It is the single-walk primitive behind
// conditional dispatch such as netsim's preemption rule, where the
// candidate must beat the in-flight transmission on more than urgency;
// skipping a vetoed candidate for a less urgent one would reorder the
// discipline, so the veto ends the walk.
//
// keep must not touch the queue (no Push/Pop/Done/Cancel): it runs while
// the head heap is mid-walk, exactly like pq.NewIndexed's move callback
// must not touch its heap. It should be a pure predicate of the candidate.
//
//p3:noescape
func (q *Queue[T]) PopReadyIf(keep func(T) bool) (T, bool) {
	var zero T
	if q.adm == nil {
		f, ok := q.heads.Peek()
		if !ok {
			return zero, false
		}
		e, _ := f.q.Peek()
		if !keep(e.v) {
			return zero, false
		}
		return q.take(f), true
	}
	var chosen *flow[T]
	for q.heads.Len() > 0 {
		f := q.heads.Pop()
		q.walk = append(q.walk, f)
		e, _ := f.q.Peek()
		if !q.adm.Admit(e.it) {
			continue
		}
		if keep(e.v) {
			chosen = f
		}
		break
	}
	q.restoreWalk()
	if chosen == nil {
		return zero, false
	}
	return q.take(chosen), true
}

// PopPreempting pops the most urgent admissible element that is strictly
// more urgent than hold AND belongs to a different flow than hold. It is the
// preemption primitive of senders whose in-flight element occupies its
// flow's channel (one TCP stream cannot interleave two frames): traffic for
// other destinations may overtake at a segment boundary, same-destination
// traffic must wait for hold to finish. The second result is false when no
// such element exists. As with Preempts, Ranker disciplines never preempt
// (hold's unranked view precedes every queued rank).
//
//p3:noescape
func (q *Queue[T]) PopPreempting(hold T) (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	ht := q.view(hold)
	var chosen *flow[T]
	for q.heads.Len() > 0 {
		f := q.heads.Pop()
		q.walk = append(q.walk, f)
		e, _ := f.q.Peek()
		if !q.d.Less(e.it, ht) {
			break // heads are urgency-ordered: no candidate remains
		}
		if f.key == ht.Dest {
			continue
		}
		if q.adm != nil && !q.adm.Admit(e.it) {
			continue
		}
		chosen = f
		break
	}
	q.restoreWalk()
	if chosen == nil {
		return zero, false
	}
	return q.take(chosen), true
}

// Done releases v's in-flight charge (a no-op for disciplines without a
// credit window). Call it exactly once per successful PopReady.
//
//p3:noescape
func (q *Queue[T]) Done(v T) {
	if q.adm != nil {
		q.adm.OnDone(q.view(v))
	}
}

// Cancel releases v's in-flight charge without signalling a completion:
// use it when the caller backs out of work it popped (e.g. re-queueing an
// item deferred on a serialization constraint, or parking a preempted
// transmission), so adaptive disciplines do not tune their windows on bytes
// that were never actually processed. The refund is routed by v's own Item
// view — v carries its destination, so a flow skipped at dispatch can never
// absorb another flow's refund. Falls back to Done semantics for
// disciplines without a cancel path.
//
//p3:noescape
func (q *Queue[T]) Cancel(v T) {
	if q.adm == nil {
		return
	}
	if c, ok := q.adm.(Canceler); ok {
		c.OnCancel(q.view(v))
		return
	}
	q.adm.OnDone(q.view(v))
}

// SetProfile applies a (re)calibrated timing profile to the queue's
// discipline (ApplyProfile) and, when elements are queued, rebuilds the
// queue under the new order: a comparator-ranked discipline (tictac) reads
// the profile inside Less, so swapping it under a populated heap would
// break the heap invariant and dispatch in neither the old nor the new
// order. Queued elements are re-enqueued in their original insertion order
// — Ranker disciplines re-rank them, and in-flight credit charges are
// untouched (they belong to popped elements). O(n log n); intended for the
// rare recalibration point, not a hot path. A no-op profile-wise for
// profile-blind disciplines, but the rebuild still runs so a Ranker
// wrapper over a profiled base (damped:tictac) re-ranks consistently.
func (q *Queue[T]) SetProfile(p *Profile) {
	ApplyProfile(q.d, p)
	if q.n == 0 {
		return
	}
	ents := make([]entry[T], 0, q.n)
	for _, f := range q.flows {
		for f.q.Len() > 0 {
			ents = append(ents, f.q.Pop())
		}
		q.free = append(q.free, f) // drained shell, reusable
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].seq < ents[j].seq })
	q.flows = make(map[int32]*flow[T], len(q.flows))
	q.heads = pq.NewIndexed(
		func(a, b *flow[T]) bool {
			ea, _ := a.q.Peek()
			eb, _ := b.q.Peek()
			return q.before(ea, eb)
		},
		func(f *flow[T], i int) { f.idx = i },
	)
	q.n = 0
	for _, e := range ents {
		q.Push(e.v)
	}
}

// Park tells a Parker discipline that v — popped earlier and still
// unfinished — has been preempted and parked outside the queue: its
// remaining bytes are off the wire and must stop counting against its
// flow's admission window, without feeding the discipline's adaptation.
// For disciplines that do not track parked bytes it is a no-op (the
// element simply stays charged, the conservative pre-Parker behaviour).
// Balance every Park with a Resume before the element's Done.
//
//p3:noescape
func (q *Queue[T]) Park(v T) {
	if p, ok := q.adm.(Parker); ok {
		p.OnPark(q.view(v))
	}
}

// Resume re-charges a parked element when its transmission continues; the
// caller's eventual Done then balances as usual. A no-op for disciplines
// without a Parker, mirroring Park.
//
//p3:noescape
func (q *Queue[T]) Resume(v T) {
	if p, ok := q.adm.(Parker); ok {
		p.OnResume(q.view(v))
	}
}

// Blocked reports whether elements are queued but every flow head is
// currently refused by the credit window — i.e. a Done call is required
// before progress. It consults the discipline's Admit, which for adaptive
// disciplines records each refusal as a congestion signal — treat Blocked
// as part of the dispatch loop, not a free-standing query to poll.
//
//p3:noescape
func (q *Queue[T]) Blocked() bool {
	if q.adm == nil || q.n == 0 {
		return false
	}
	admissible := false
	for q.heads.Len() > 0 {
		f := q.heads.Pop()
		q.walk = append(q.walk, f)
		e, _ := f.q.Peek()
		if q.adm.Admit(e.it) {
			admissible = true
			break
		}
	}
	q.restoreWalk()
	return !admissible
}
