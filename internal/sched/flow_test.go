package sched

import (
	"math/rand/v2"
	"testing"
)

// flowItem builds a view function over parallel priority/bytes/dest slices.
func flowView(pri []int32, bytes []int64, dest []int32) func(int) Item {
	return func(i int) Item {
		it := Item{Priority: pri[i]}
		if bytes != nil {
			it.Bytes = bytes[i]
		}
		if dest != nil {
			it.Dest = dest[i]
		}
		return it
	}
}

// TestFlowAwareHeadSkipping is the dispatch contract of the per-flow queue:
// when the most urgent flow head is refused by its credit window, PopReady
// dispatches the most urgent admissible head of another flow instead of
// wedging every destination behind the starved one.
func TestFlowAwareHeadSkipping(t *testing.T) {
	a := NewAdaptiveCredit(1000)
	pri := []int32{0, 5, 9}
	bytes := []int64{900, 900, 100}
	dest := []int32{1, 1, 2}
	q := NewQueue[int](a, flowView(pri, bytes, dest))
	q.Push(0) // dest 1, most urgent
	q.Push(1) // dest 1, queued behind 0
	q.Push(2) // dest 2, least urgent but independently admissible

	v, ok := q.PopReady()
	if !ok || v != 0 {
		t.Fatalf("first PopReady = (%d,%v), want the urgent head of flow 1", v, ok)
	}
	// Flow 1's window is now full (900/1000): its next head is refused, but
	// flow 2's item must dispatch instead of waiting behind it.
	v, ok = q.PopReady()
	if !ok {
		t.Fatal("credit-blocked flow 1 wedged admissible flow 2 (head-of-line coupling)")
	}
	if v != 2 {
		t.Fatalf("head-skip popped %d, want flow 2's item", v)
	}
	// Nothing else is admissible: flow 1 still blocked, flow 2 drained.
	if _, ok := q.PopReady(); ok {
		t.Fatal("blocked flow dispatched beyond its window")
	}
	if !q.Blocked() {
		t.Fatal("queue must report Blocked: work queued, nothing admissible")
	}
	q.Done(0)
	if v, ok := q.PopReady(); !ok || v != 1 {
		t.Fatalf("after credit returned, PopReady = (%d,%v), want flow 1's second item", v, ok)
	}
}

// TestCancelAfterHeadSkip is the regression test for Queue.Cancel with
// per-flow subqueues: an item popped via head skipping (its own flow
// admitted it while another flow's head was blocked) and then cancelled —
// the cluster pool's per-key deferral path — must refund its own flow's
// window, not the blocked flow that was skipped over.
func TestCancelAfterHeadSkip(t *testing.T) {
	a := NewAdaptiveCredit(1000)
	pri := []int32{0, 9}
	bytes := []int64{900, 300}
	dest := []int32{1, 2}
	q := NewQueue[int](a, flowView(pri, bytes, dest))
	q.Push(0)
	q.Push(1)
	if v, ok := q.PopReady(); !ok || v != 0 {
		t.Fatalf("setup pop = (%d,%v)", v, ok)
	}
	// Head skip: flow 1 blocked, flow 2's item dispatches.
	v, ok := q.PopReady()
	if !ok || v != 1 {
		t.Fatalf("head-skip pop = (%d,%v), want flow 2's item", v, ok)
	}
	q.Cancel(v)
	if got := a.InFlight(2); got != 0 {
		t.Fatalf("flow 2 in-flight after cancel = %d, want 0 (refund missed its flow)", got)
	}
	if got := a.InFlight(1); got != 900 {
		t.Fatalf("flow 1 in-flight = %d, want 900 untouched by flow 2's refund", got)
	}
	if got := a.Window(2); got != 1000 {
		t.Fatalf("flow 2 window = %d, want 1000 (cancel must not feed AIMD)", got)
	}
	// The cancelled item re-queues and dispatches again once re-pushed.
	q.Push(1)
	if v, ok := q.PopReady(); !ok || v != 1 {
		t.Fatalf("re-queued item did not dispatch: (%d,%v)", v, ok)
	}
}

// TestPerFlowMatchesSingleQueue is the bit-parity property behind the
// refactor: for every discipline without an admission gate, the per-flow
// queue must dequeue in exactly the order a single queue would — flow
// structure is invisible until a credit window refuses a head. Randomized
// over priorities, sizes, destinations and pop/push interleavings, checked
// against the pre-refactor reference semantics (discipline order, global
// insertion order on ties).
func TestPerFlowMatchesSingleQueue(t *testing.T) {
	for _, name := range []string{"fifo", "p3", "rr", "smallest", "tictac"} {
		rng := rand.New(rand.NewPCG(3, uint64(len(name))))
		for trial := 0; trial < 20; trial++ {
			var pri []int32
			var bytes []int64
			var dest []int32
			view := func(i int) Item { return Item{Priority: pri[i], Bytes: bytes[i], Dest: dest[i]} }
			q := NewQueue(MustByName(name), view)

			// Reference: a single slice re-sorted stably by the same
			// discipline instance's comparator at every pop.
			ref := NewQueue(MustByName(name), func(i int) Item {
				it := view(i)
				it.Dest = 0 // everything in one flow == one queue
				return it
			})

			for step := 0; step < 300; step++ {
				if rng.IntN(2) == 0 || q.Len() == 0 {
					pri = append(pri, int32(rng.IntN(6)))
					bytes = append(bytes, int64(rng.IntN(1000)))
					dest = append(dest, int32(rng.IntN(4)))
					q.Push(len(pri) - 1)
					ref.Push(len(pri) - 1)
					continue
				}
				got, _ := q.Pop()
				want, _ := ref.Pop()
				if got != want {
					t.Fatalf("%s trial %d: per-flow popped %d, single queue popped %d", name, trial, got, want)
				}
			}
		}
	}
}

// TestPopPreempting covers the transport-side preemption primitive: only
// strictly more urgent admissible elements of OTHER flows qualify.
func TestPopPreempting(t *testing.T) {
	pri := []int32{5, 3, 1, 0}
	dest := []int32{1, 1, 1, 2}
	q := NewQueue(NewP3Priority(), flowView(pri, nil, dest))
	hold := 0 // priority 5, dest 1
	q.Push(1) // more urgent, same flow: must NOT preempt
	if v, ok := q.PopPreempting(hold); ok {
		t.Fatalf("same-flow item %d preempted across its own connection", v)
	}
	q.Push(3) // priority 0, dest 2: preempts
	if v, ok := q.PopPreempting(hold); !ok || v != 3 {
		t.Fatalf("PopPreempting = (%d,%v), want flow 2's urgent item", v, ok)
	}
	// Ties never preempt.
	q2 := NewQueue(NewP3Priority(), flowView(pri, nil, dest))
	q2.Push(2) // priority 1, dest 1
	if v, ok := q2.PopPreempting(2); ok {
		t.Fatalf("equal-urgency item %d preempted", v)
	}
}

// TestPreemptsStrictness: Preempts reports only strictly more urgent
// admissible work, regardless of flow.
func TestPreemptsStrictness(t *testing.T) {
	pri := []int32{5, 5, 1}
	dest := []int32{1, 2, 1}
	q := NewQueue(NewP3Priority(), flowView(pri, nil, dest))
	q.Push(1) // tie with hold: no preemption
	if q.Preempts(0) {
		t.Fatal("tie reported as preempting")
	}
	q.Push(2) // strictly more urgent, same flow as hold: preempts (netsim semantics)
	if !q.Preempts(0) {
		t.Fatal("strictly more urgent queued item not reported")
	}
}

// TestPopReadyIf: the veto leaves the queue untouched and never skips to a
// less urgent candidate.
func TestPopReadyIf(t *testing.T) {
	pri := []int32{3, 1}
	q := NewQueue(NewP3Priority(), flowView(pri, nil, nil))
	q.Push(0)
	q.Push(1)
	if v, ok := q.PopReadyIf(func(int) bool { return false }); ok {
		t.Fatalf("vetoed candidate %d popped", v)
	}
	if q.Len() != 2 {
		t.Fatalf("veto mutated the queue: len %d", q.Len())
	}
	seen := -1
	if v, ok := q.PopReadyIf(func(c int) bool { seen = c; return true }); !ok || v != 1 {
		t.Fatalf("PopReadyIf = (%d,%v), want the most urgent item", v, ok)
	}
	if seen != 1 {
		t.Fatalf("predicate consulted %d, want the most urgent candidate only", seen)
	}
}
