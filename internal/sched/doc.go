// Package sched is the pluggable scheduling subsystem behind every
// send/processing queue in the tree: the simulator's NIC egress queues and
// endpoint processing pools (internal/netsim, internal/cluster,
// internal/ring) and the real TCP transport's producer/consumer queues
// (internal/transport, internal/pstcp) all order their work through a
// sched.Discipline.
//
// P3's core contribution (Section 4.2 of the paper) is an ordering
// discipline on parameter-chunk traffic; the related systems differ mainly
// in which discipline they apply to the same queues — ByteScheduler gates a
// credit window, TicTac derives a DAG order, Parameter Hub schedules at rack
// scale. Making the discipline a first-class value turns every queue into an
// experiment knob: a strategy (internal/strategy) names its discipline, the
// registry resolves it, and each queue instantiates a fresh copy so stateful
// disciplines never share state across queues.
//
// # Contracts
//
// A Discipline is a named comparator: Less reports which of two Items is
// more urgent, and equal items always dequeue in insertion order, which
// keeps the discrete-event simulator reproducible and matches the paper's
// implementation (slices of one layer go out in order). Three optional
// interfaces extend it:
//
//   - Ranker: assigns an ordering key at enqueue time, for stateful orders
//     a pure comparator cannot express (rr's stride scheduling, damped's
//     epoch rank). Rank is called exactly once per item, before insertion.
//   - Dispatcher: observes dequeues (OnDispatch), e.g. to advance a
//     virtual clock.
//   - Admitter: gates dispatch with a credit window. Admit is consulted
//     before an item may start; OnStart/OnDone bracket its in-flight
//     interval; an Admitter must admit at least one item when nothing is
//     in flight, or the queue would wedge. Admit doubles as an adaptation
//     signal (a refusal is congestion evidence to credit-adaptive), so it
//     belongs inside the dispatch loop's cadence, never in a free-standing
//     poll. Canceler refines an Admitter: OnCancel refunds an admission
//     the caller backed out of without feeding the adaptation. Parker
//     refines it further for preemptive transmitters: OnPark moves a
//     preempted element's remaining bytes out of the admission window
//     (they are off the wire, and a window full of parked bytes is not
//     congestion evidence), OnResume re-charges them; Queue.Park/Resume
//     route the calls and are no-ops for disciplines without the
//     interface, which simply keep parked bytes charged.
//
// Profiled disciplines (tictac, damped over a profiled base) additionally
// consume a Profile — the model timing that strategies derive via
// strategy.ComputeProfile — through ApplyProfile; without one they must
// degrade to a model-blind order, never panic.
//
// # Damped rank
//
// Damped ("damped[:base[@weight]]") composes over a priority-ordered base
// (p3 by default; tictac and the credit gates compose too) and re-ranks
// every item to (arrival epoch + weight x class): between classes the base's
// urgency order holds only within a bounded horizon — an urgent item may
// overtake at most weight x Δclass earlier arrivals, so aging guarantees
// every class progress — and rank ties resolve by the per-source rotation
// Dest XOR source seed (the queue owner's identity, ApplySource/Sourced),
// which de-synchronizes the otherwise identical schedules of N machines.
// The schedule is a permutation of the base's (same items, bounded
// displacement, no starvation). This is the fan-in-aware damping
// that fixes the 64-machine p3-vs-fifo inversion: at high fan-in strict
// priority lets every machine defer its gradient-push tail behind fresher
// urgent broadcasts in lockstep, and the aggregation barrier turns the
// shared deferral into idle ingest windows (66% wire utilization vs fifo's
// 86%, 34% slower at 64 machines/1.5 Gbps); damping restores the pipeline
// while keeping strict-priority behaviour through shallow queues.
//
// # Core-port scheduling and in-rack aggregation
//
// Under a rack topology (netsim.Topology) every ToR uplink and downlink
// port is itself a scheduling site: Topology.CoreSched names a registry
// discipline and each port instantiates a fresh copy, seeded with the
// port's LP index via ApplySource and given the run's Profile via
// ApplyProfile — so a rank means the same thing at a ToR port as it does
// at the host NIC that assigned it (Item.Priority and Item.Dest travel
// with the message), and p3/tictac/damped orders survive into the core
// instead of dissolving in a priority-blind FIFO. An empty CoreSched keeps
// the blind FIFO port, bit-identical to the pre-CoreSched simulator, and
// the "fifo" discipline is pinned bit-identical to it. Determinism at the
// core is inherited from the Discipline contract (equal items dequeue in
// insertion order) plus netsim's canonical arrival order (simultaneous
// arrivals enqueue in source-LP order). Gated disciplines are shard-safe
// everywhere, but for two different reasons: at a core port the admission
// window opens and closes entirely on that port's LP — PopReady at
// serialization start, Done at serialization end — so there is no
// cross-shard edge at all; at a host egress queue the Done refund is
// driven by a delivery on the receiver's LP, and netsim closes that
// cross-shard edge with the window-relaxed credit protocol: the refund is
// carried home as a scheduled event on the sender's own LP, delayed by
// exactly one conservative lookahead window after the delivery. Every
// shard count sees the identical refund timeline (the delay is a constant
// of the topology, not of the shard layout), so credit-gated runs are
// bit-identical from shards=1 through shards=N — pinned by
// internal/cluster's TestShardedGatedMatchesSingle — and the old
// shards=1 fallback for Admitter disciplines is gone. The relaxation is
// semantically free at PropDelay=0 (lookahead 0 means the refund lands at
// the delivery instant, the pre-protocol timing) and otherwise trades at
// most one lookahead of window staleness for parallel execution.
//
// Ordering alone cannot beat an oversubscribed core, though: once the
// core is the bottleneck, every order drains the same bytes through the
// same pipe (the PR-6 negative result). cluster.Config.RackAggregation
// attacks the bytes instead — Parameter Hub-style in-rack reduction sums
// each rack's gradient pushes at an aggregator LP and sends one reduced
// stream per rack across the core, with server broadcasts fanned back out
// at the ToR — after which the core stops saturating and the discipline
// axis differentiates again (damped hosts + damped core ports beat fifo
// at 256 machines under a 4:1 core; TestRackAggregationFinding).
//
// # Calibrated profiles
//
// A Profile may be built from measured stalls instead of static timing:
// strategy.CalibrateProfile shifts each layer's consumption deadline by the
// observed per-layer forward stalls of a prior run (cluster/ring
// Result.MeanLayerStalls), so slack ranking follows the iteration timeline
// the system actually produced — the closed-loop form of TicTac's
// observed-timing priorities. The simulators expose it as a two-pass mode
// (cluster.RunCalibrated, ring.RunCalibrated), the real transport as
// runtime hooks (transport.SendQueue.SetProfile, pstcp Server/Worker.
// SetProfile — safe mid-traffic: Queue.SetProfile rebuilds the heaps so
// queued elements re-order under the new profile), and the CLIs as
// -calibrate/-stalls/-stallsout. Caveat, pinned by
// the scale sweep: under STRICT priority at saturation the feedback
// diverges (stretching a starved layer's deadline makes it less urgent
// still); under the damped rank it converges — compose them.
//
// # Flows
//
// Queue, the building block behind every scheduling site, is per-flow:
// elements are bucketed into subqueues keyed by Item.Dest (the receiving
// machine, worker id, or server connection — 0 when the caller has no
// meaningful destination), and the dispatcher selects among the flow heads
// by discipline order, global insertion order on ties. For plain
// disciplines this is indistinguishable from one priority heap — fifo, p3,
// rr, smallest and tictac dequeue bit-identically to a single queue. The
// structure pays off under an Admitter: PopReady consults flow heads in
// urgency order and dispatches the first one admitted, so a destination
// whose credit window is exhausted never blocks admissible traffic bound
// for other destinations (flow-aware head skipping). Cancel refunds route
// by the element's own Dest, so a skipped flow can never absorb another
// flow's refund.
//
// # Complexity and allocation contract
//
// Queue's dispatcher keeps the non-empty flows in an indexed min-heap
// (pq.Indexed) ordered by head urgency, so no primitive ever scans the flow
// set linearly. With F non-empty flows, n_f elements in the touched flow,
// and k the number of flow heads the admission walk visits before its
// verdict (k = 1 whenever the most urgent head is admitted — the common
// case — and k never exceeds F):
//
//   - Push: O(log F + log n_f)
//   - Peek: O(1)
//   - Pop: O(log F + log n_f)
//   - PopReady, PopReadyIf, PopPreempting, Preempts, Blocked:
//     O(k log F + log n_f); ungated disciplines pin k = 1
//   - Done, Cancel, Len, Discipline: O(1)
//
// Steady-state operation allocates nothing: elements, flow heads and the
// admission walk all live in reusable slabs, a drained flow is evicted from
// the flow map immediately (a long-running queue holds memory proportional
// to its current flow set, not its historical one) and its shell is
// recycled through a free list for the next flow that appears. Allocation
// occurs only while a slab or the flow map is still growing toward the
// working-set high-water mark. The CI benchmark gate (`p3bench -baseline`)
// enforces both halves of this contract — allocs/op must be zero and ns/op
// may not regress — and TestDispatchMatchesLinearScanReference pins the
// dispatcher bit-identical to the retained linear-scan reference
// implementation.
//
// # Preemption
//
// Two primitives support preemptive transmitters, which charge
// serialization in segments and re-decide at segment boundaries:
//
//   - Preempts(hold) reports whether PopReady would dispatch something
//     strictly more urgent than the in-flight element — ties never
//     preempt, preserving insertion order within a priority class.
//     internal/netsim uses it (with PopReadyIf for its size gates) to park
//     an in-flight message, retaining partial progress, whenever an
//     express message can win the exchange outright.
//   - PopPreempting(hold) pops the most urgent admissible element that is
//     strictly more urgent than hold AND belongs to a different flow —
//     the rule of the real transport's send loop, where the in-flight
//     frame occupies its destination's TCP stream and only other
//     connections can be served mid-frame (transport.SendLoop).
//
// # Registry
//
// ByName resolves a discipline name, optionally parameterized as
// "name:arg", to a fresh instance; the empty name resolves to fifo and
// Register installs new factories at init time. The built-ins (aliases in
// parentheses):
//
//   - fifo (baseline): insertion order — the MXNet/ps-lite wire behaviour.
//   - p3 (priority, p3priority): strict priority, lower Item.Priority
//     first — the paper's mechanism.
//   - rr (roundrobin): round-robin across priority classes via stride
//     scheduling — layers share the wire instead of starving each other.
//   - smallest (sjf): smallest payload first — the model-blind foil for
//     slicing experiments.
//   - tictac (dag, criticalpath): critical-path order from the timing
//     Profile — per-layer slack to consumption; p3 without a profile.
//   - credit[:bytes] (bytescheduler): ByteScheduler-style credit gate —
//     priority order plus one bounded in-flight window per queue.
//   - credit-adaptive[:bytes] (adaptive): one credit window per
//     destination, each tuned by AIMD from the admit/ack pattern.
//   - damped[:base[@weight]] (damp): fan-in-aware priority damping over a
//     priority-ordered base (default p3, weight 8): bounded-horizon
//     urgency plus per-source tie rotation. Rejects bases that rank at
//     enqueue (rr, damped) or order by something other than priority
//     (fifo, smallest).
//
// ByName's unknown-name diagnostic (and Usage) spells the parameterized
// grammar for each of these.
package sched
