package sched

import (
	"math/rand/v2"
	"testing"
)

func drain(q *Queue[int]) []int {
	var out []int
	for {
		v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// items pushes n elements where element i carries priority pri[i] and size
// bytes[i]; the element value is its index, so pop order is observable.
func fill(q *Queue[int], pri []int32, bytes []int64) {
	for i := range pri {
		q.Push(i)
	}
	_ = bytes
}

func TestFIFOOrder(t *testing.T) {
	pri := []int32{3, 1, 2, 0}
	q := NewQueue(NewFIFO(), func(i int) Item { return Item{Priority: pri[i]} })
	fill(q, pri, nil)
	got := drain(q)
	for i, v := range got {
		if v != i {
			t.Fatalf("fifo pop order %v, want insertion order", got)
		}
	}
}

func TestP3PriorityOrderWithFIFOTies(t *testing.T) {
	pri := []int32{2, 0, 1, 0, 2, 1}
	q := NewQueue(NewP3Priority(), func(i int) Item { return Item{Priority: pri[i]} })
	fill(q, pri, nil)
	want := []int{1, 3, 2, 5, 0, 4} // by priority, ties in insertion order
	got := drain(q)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("p3 pop order %v, want %v", got, want)
		}
	}
}

func TestSmallestFirstOrder(t *testing.T) {
	pri := []int32{0, 1, 2}
	bytes := []int64{300, 100, 200}
	q := NewQueue(NewSmallestFirst(), func(i int) Item { return Item{Priority: pri[i], Bytes: bytes[i]} })
	fill(q, pri, bytes)
	want := []int{1, 2, 0}
	got := drain(q)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("smallest pop order %v, want %v", got, want)
		}
	}
}

func TestRoundRobinInterleavesLayers(t *testing.T) {
	// Three items of layer 0 queued before three of layer 1: strict priority
	// would emit 0,0,0,1,1,1; round-robin must alternate.
	pri := []int32{0, 0, 0, 1, 1, 1}
	q := NewQueue(NewRoundRobinLayer(), func(i int) Item { return Item{Priority: pri[i]} })
	fill(q, pri, nil)
	got := drain(q)
	var layers []int32
	for _, v := range got {
		layers = append(layers, pri[v])
	}
	want := []int32{0, 1, 0, 1, 0, 1}
	for i := range want {
		if layers[i] != want[i] {
			t.Fatalf("rr layer order %v, want %v", layers, want)
		}
	}
}

func TestRoundRobinLateFlowDoesNotHoardCredit(t *testing.T) {
	pri := []int32{0, 0, 0, 0, 1}
	q := NewQueue(NewRoundRobinLayer(), func(i int) Item { return Item{Priority: pri[i]} })
	// Dispatch several layer-0 items, then a layer-1 item arrives: it must
	// not jump ahead of everything by starting at pass 0.
	for i := 0; i < 3; i++ {
		q.Push(i)
	}
	for i := 0; i < 3; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatal("pop failed")
		}
	}
	q.Push(3) // layer 0 again
	q.Push(4) // layer 1, first appearance
	first, _ := q.Pop()
	second, _ := q.Pop()
	// Both were stamped at the current virtual time, so insertion order
	// (layer 0's item first) must hold — not a burst of the late flow.
	if first != 3 || second != 4 {
		t.Fatalf("late-flow pop order (%d,%d), want (3,4)", first, second)
	}
}

func TestCreditGatedWindow(t *testing.T) {
	pri := []int32{5, 5, 0}
	bytes := []int64{600, 600, 100}
	d := NewCreditGated(1000)
	q := NewQueue[int](d, func(i int) Item { return Item{Priority: pri[i], Bytes: bytes[i]} })
	q.Push(0)
	q.Push(1)

	v, ok := q.PopReady()
	if !ok || v != 0 {
		t.Fatalf("first PopReady = (%d,%v), want (0,true)", v, ok)
	}
	// 600 bytes in flight; another 600 would exceed the 1000-byte window.
	if _, ok := q.PopReady(); ok {
		t.Fatal("second low-priority item admitted beyond the credit window")
	}
	if !q.Blocked() {
		t.Fatal("queue should report Blocked while the window is full")
	}
	// An urgent item arrives; it is also blocked (the window is about
	// in-flight bytes), but as soon as credit returns it goes first.
	q.Push(2)
	q.Done(0)
	v, ok = q.PopReady()
	if !ok || v != 2 {
		t.Fatalf("post-credit PopReady = (%d,%v), want (2,true)", v, ok)
	}
	if d.InFlight() != 100 {
		t.Fatalf("in-flight = %d, want 100", d.InFlight())
	}
	// Oversized item with an idle queue must still be admitted.
	q.Done(2)
	big := NewCreditGated(10)
	qb := NewQueue[int](big, func(int) Item { return Item{Bytes: 1 << 20} })
	qb.Push(0)
	if _, ok := qb.PopReady(); !ok {
		t.Fatal("idle queue refused an oversized item: wedge")
	}
}

func TestByNameRegistry(t *testing.T) {
	for _, name := range []string{"fifo", "p3", "rr", "smallest", "credit", "tictac", "credit-adaptive"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if d.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, d.Name())
		}
	}
	for alias, canon := range map[string]string{
		"baseline": "fifo", "priority": "p3", "p3priority": "p3",
		"roundrobin": "rr", "sjf": "smallest", "bytescheduler": "credit",
		"dag": "tictac", "criticalpath": "tictac", "adaptive": "credit-adaptive",
	} {
		d, err := ByName(alias)
		if err != nil {
			t.Fatalf("ByName(%q): %v", alias, err)
		}
		if d.Name() != canon {
			t.Fatalf("alias %q resolved to %q, want %q", alias, d.Name(), canon)
		}
	}
	if d, err := ByName("credit:123"); err != nil {
		t.Fatalf("credit:123: %v", err)
	} else if d.(*CreditGated).Credit != 123 {
		t.Fatalf("credit:123 window = %d", d.(*CreditGated).Credit)
	}
	if _, err := ByName("credit:nope"); err == nil {
		t.Fatal("credit:nope accepted")
	}
	if _, err := ByName("zgoneba"); err == nil {
		t.Fatal("unknown discipline accepted")
	}
	if d, err := ByName(""); err != nil || d.Name() != "fifo" {
		t.Fatalf("empty name = (%v,%v), want fifo", d, err)
	}
	if len(Names()) < 7 {
		t.Fatalf("Names() = %v, want at least the 7 built-ins", Names())
	}
	// Malformed parameterizations must not silently resolve.
	for _, bad := range []string{"credit:", "credit-adaptive:", "credit-adaptive:0", "credit-adaptive:x", "rr:junk", "tictac:5", "fifo:0", ":"} {
		if d, err := ByName(bad); err == nil {
			t.Fatalf("ByName(%q) silently resolved to %q", bad, d.Name())
		}
	}
	if d, err := ByName("credit-adaptive:65536"); err != nil {
		t.Fatalf("credit-adaptive:65536: %v", err)
	} else if a := d.(*AdaptiveCredit); a.Initial != 65536 {
		t.Fatalf("credit-adaptive:65536 initial window = %d", a.Initial)
	}
}

func ttProfile(needUs []int64, layerKB []int64, gbps float64) *Profile {
	p := &Profile{GbpsEstimate: gbps}
	for i := range needUs {
		p.NeedAtNs = append(p.NeedAtNs, needUs[i]*1000)
		p.LayerBytes = append(p.LayerBytes, layerKB[i]*1000)
	}
	return p
}

func TestTicTacDegradesToP3WithoutProfile(t *testing.T) {
	pri := []int32{2, 0, 1, 0}
	q := NewQueue(NewTicTac(), func(i int) Item { return Item{Priority: pri[i]} })
	fill(q, pri, nil)
	want := []int{1, 3, 2, 0}
	got := drain(q)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("profile-less tictac pop order %v, want p3 order %v", got, want)
		}
	}
}

func TestTicTacSlackReordersHeavyLayer(t *testing.T) {
	// Layer 0: tiny tensor needed immediately. Layer 1: huge tensor needed
	// only 1 ms later but costing 8 ms to move at 1 Gbps — its slack is far
	// more negative, so tictac starts it first, where p3 would not.
	prof := ttProfile([]int64{0, 1000}, []int64{1, 1000}, 1)
	tt := NewTicTac()
	tt.SetProfile(prof)
	if tt.Slack(0) <= tt.Slack(1) {
		t.Fatalf("slack(0)=%d <= slack(1)=%d, want heavy layer more urgent", tt.Slack(0), tt.Slack(1))
	}
	pri := []int32{0, 1}
	q := NewQueue[int](tt, func(i int) Item { return Item{Priority: pri[i]} })
	fill(q, pri, nil)
	got := drain(q)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("pop order %v, want the heavy layer (item 1) first", got)
	}
}

func TestTicTacKeepsInsertionOrderWithinLayer(t *testing.T) {
	// Chunks of one layer differ in size, but the rank is per layer: they
	// must dequeue in insertion order (a smaller tail chunk sorting behind
	// future full-size arrivals would starve the layer's completion).
	prof := ttProfile([]int64{0, 1000}, []int64{500, 500}, 1)
	tt := NewTicTac()
	tt.SetProfile(prof)
	sizes := []int64{200, 192, 200}
	q := NewQueue[int](tt, func(i int) Item { return Item{Priority: 0, Bytes: sizes[i]} })
	for i := range sizes {
		q.Push(i)
	}
	got := drain(q)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-layer pop order %v, want insertion order", got)
		}
	}
}

func TestTicTacOutOfRangePriorityClamps(t *testing.T) {
	prof := ttProfile([]int64{0, 1000}, []int64{1, 1}, 1)
	tt := NewTicTac()
	tt.SetProfile(prof)
	if tt.Slack(-3) != tt.Slack(0) || tt.Slack(99) != tt.Slack(1) {
		t.Fatalf("out-of-range slack not clamped: %d/%d vs %d/%d",
			tt.Slack(-3), tt.Slack(99), tt.Slack(0), tt.Slack(1))
	}
}

func TestAdaptiveCreditPerDestinationIndependence(t *testing.T) {
	a := NewAdaptiveCredit(1000)
	full := Item{Bytes: 900, Dest: 1}
	if !a.Admit(full) {
		t.Fatal("idle window refused")
	}
	a.OnStart(full)
	if a.Admit(Item{Bytes: 900, Dest: 1}) {
		t.Fatal("dest 1 admitted beyond its window")
	}
	// Destination 2 has its own window: unaffected by dest 1's backlog.
	other := Item{Bytes: 900, Dest: 2}
	if !a.Admit(other) {
		t.Fatal("dest 2 blocked by dest 1's in-flight bytes")
	}
	a.OnStart(other)
	if a.InFlight(1) != 900 || a.InFlight(2) != 900 {
		t.Fatalf("in-flight (%d,%d), want (900,900)", a.InFlight(1), a.InFlight(2))
	}
	a.OnDone(full)
	a.OnDone(other)
}

func TestAdaptiveCreditGrowsOnStall(t *testing.T) {
	a := NewAdaptiveCredit(1000)
	it := Item{Bytes: 800, Dest: 3}
	a.Admit(it)
	a.OnStart(it)
	// The gate refuses more traffic, then the window drains dry: a stall.
	if a.Admit(Item{Bytes: 800, Dest: 3}) {
		t.Fatal("second item admitted inside the window")
	}
	a.OnDone(it)
	if got := a.Window(3); got != 1000+a.Step {
		t.Fatalf("window after stall = %d, want %d", got, 1000+a.Step)
	}
	// Repeated stalls saturate at Max, never beyond.
	for i := 0; i < 1000; i++ {
		a.Admit(it)
		a.OnStart(it)
		a.Admit(Item{Bytes: a.Max, Dest: 3})
		a.OnDone(it)
	}
	if got := a.Window(3); got != a.Max {
		t.Fatalf("window after repeated stalls = %d, want capped at %d", got, a.Max)
	}
}

func TestAdaptiveCreditHugeInitialDoesNotOverflow(t *testing.T) {
	// initial*16 would overflow int64; Max must clamp, not go negative
	// (a negative ceiling would pin every window to one item in flight).
	a := NewAdaptiveCredit(1 << 62)
	if a.Max < a.Initial {
		t.Fatalf("Max %d below Initial %d: overflow", a.Max, a.Initial)
	}
	it := Item{Bytes: 100, Dest: 1}
	if !a.Admit(it) {
		t.Fatal("huge window refused a small item")
	}
	a.OnStart(it)
	if !a.Admit(Item{Bytes: 100, Dest: 1}) {
		t.Fatal("second small item refused inside a huge window")
	}
	a.OnDone(it)
}

func TestAdaptiveCreditBatchFlushDoesNotRatchet(t *testing.T) {
	// The real send loops (pstcp worker/server) pop until the gate refuses,
	// then flush and Done the whole pending batch, draining the window to
	// zero with a refusal on record. That is bookkeeping, not starvation:
	// the window must hold, or every destination would ratchet to Max under
	// sustained load and the gate would degrade to an ungated p3 queue.
	a := NewAdaptiveCredit(1000)
	for cycle := 0; cycle < 100; cycle++ {
		batch := []Item{{Bytes: 400, Dest: 7}, {Bytes: 400, Dest: 7}}
		for _, it := range batch {
			if !a.Admit(it) {
				t.Fatalf("cycle %d: in-window item refused", cycle)
			}
			a.OnStart(it)
		}
		if a.Admit(Item{Bytes: 400, Dest: 7}) {
			t.Fatalf("cycle %d: item admitted beyond the window", cycle)
		}
		for _, it := range batch { // flushAll: a burst of Dones
			a.OnDone(it)
		}
	}
	if got := a.Window(7); got != 1000 {
		t.Fatalf("window after batched flush cycles = %d, want unchanged 1000", got)
	}
}

func TestAdaptiveCreditCancelDoesNotFeedAIMD(t *testing.T) {
	// A processing pool that pops an item and immediately re-queues it
	// (per-key serialization deferral) refunds via Cancel: the in-flight
	// charge returns, but neither the clean-byte shrink counter nor the
	// stall detector may move — those signals describe transfers that
	// actually happened.
	a := NewAdaptiveCredit(1000)
	view := func(i int) Item { return Item{Priority: 0, Bytes: 300, Dest: 2} }
	q := NewQueue(Discipline(a), view)
	for cycle := 0; cycle < 50; cycle++ {
		q.Push(cycle)
		v, ok := q.PopReady()
		if !ok {
			t.Fatalf("cycle %d: pop refused on refunded window", cycle)
		}
		q.Cancel(v) // the pool would stash v and re-Push it later
	}
	if got := a.Window(2); got != 1000 {
		t.Fatalf("window after cancel churn = %d, want unchanged 1000", got)
	}
	if got := a.InFlight(2); got != 0 {
		t.Fatalf("in-flight after cancel churn = %d, want 0", got)
	}
	// Cancel on a gate-less discipline is a no-op, and on CreditGated it
	// falls back to Done semantics (the window is static anyway).
	qf := NewQueue(NewFIFO(), view)
	qf.Push(1)
	v, _ := qf.PopReady()
	qf.Cancel(v)
	c := NewCreditGated(1000)
	qc := NewQueue(Discipline(c), view)
	qc.Push(1)
	v, _ = qc.PopReady()
	qc.Cancel(v)
	if c.InFlight() != 0 {
		t.Fatalf("CreditGated in-flight after Cancel = %d, want 0", c.InFlight())
	}
}

func TestAdaptiveCreditShrinksWhenUnconstrained(t *testing.T) {
	a := NewAdaptiveCredit(1000)
	it := Item{Bytes: 300, Dest: 5}
	// Sequential singleton traffic never touches the gate: after two
	// windows' worth of clean bytes the window halves, down to Min.
	for i := 0; i < 7; i++ {
		if !a.Admit(it) {
			t.Fatalf("iteration %d: unconstrained item refused", i)
		}
		a.OnStart(it)
		a.OnDone(it)
	}
	if got := a.Window(5); got >= 1000 {
		t.Fatalf("window after unconstrained traffic = %d, want shrunk below 1000", got)
	}
	for i := 0; i < 200; i++ {
		a.Admit(it)
		a.OnStart(it)
		a.OnDone(it)
	}
	if got := a.Window(5); got < a.Min {
		t.Fatalf("window shrank to %d, below Min %d", got, a.Min)
	}
}

func TestAdaptiveCreditQueueNeverExceedsWindow(t *testing.T) {
	// Through the Queue wrapper: pops stop exactly at the window, drain
	// resumes on Done, and the most urgent item still goes first.
	a := NewAdaptiveCredit(1000)
	sizes := []int64{600, 600, 100}
	pris := []int32{5, 5, 0}
	q := NewQueue[int](a, func(i int) Item { return Item{Priority: pris[i], Bytes: sizes[i], Dest: 1} })
	q.Push(0)
	q.Push(1)
	if v, ok := q.PopReady(); !ok || v != 0 {
		t.Fatalf("first PopReady = (%d,%v), want (0,true)", v, ok)
	}
	if _, ok := q.PopReady(); ok {
		t.Fatal("second item admitted beyond the window")
	}
	q.Push(2)
	q.Done(0)
	if v, ok := q.PopReady(); !ok || v != 2 {
		t.Fatalf("post-credit PopReady = (%d,%v), want the urgent item", v, ok)
	}
}

func TestByNameReturnsFreshInstances(t *testing.T) {
	a := MustByName("rr").(*RoundRobinLayer)
	b := MustByName("rr").(*RoundRobinLayer)
	ita := Item{Priority: 7}
	ita = a.Rank(ita)
	ita = a.Rank(ita)
	itb := Item{Priority: 7}
	itb = b.Rank(itb)
	if itb.rank != 0 {
		t.Fatal("rr instances share pass state across queues")
	}
}

// TestPriorityInvariantProperty: under any interleaving of pushes and pops,
// p3 never emits an item while a strictly more urgent one is queued.
func TestPriorityInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 50; trial++ {
		pris := make([]int32, 0, 256)
		q := NewQueue(NewP3Priority(), func(i int) Item { return Item{Priority: pris[i]} })
		queued := map[int32]int{} // priority -> count currently queued
		for step := 0; step < 400; step++ {
			if rng.IntN(2) == 0 || q.Len() == 0 {
				p := int32(rng.IntN(8))
				pris = append(pris, p)
				q.Push(len(pris) - 1)
				queued[p]++
				continue
			}
			v, _ := q.Pop()
			got := pris[v]
			for p, n := range queued {
				if n > 0 && p < got {
					t.Fatalf("trial %d: popped priority %d while %d queued", trial, got, p)
				}
			}
			queued[got]--
		}
	}
}
