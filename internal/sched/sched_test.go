package sched

import (
	"math/rand/v2"
	"testing"
)

func drain(q *Queue[int]) []int {
	var out []int
	for {
		v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// items pushes n elements where element i carries priority pri[i] and size
// bytes[i]; the element value is its index, so pop order is observable.
func fill(q *Queue[int], pri []int32, bytes []int64) {
	for i := range pri {
		q.Push(i)
	}
	_ = bytes
}

func TestFIFOOrder(t *testing.T) {
	pri := []int32{3, 1, 2, 0}
	q := NewQueue(NewFIFO(), func(i int) Item { return Item{Priority: pri[i]} })
	fill(q, pri, nil)
	got := drain(q)
	for i, v := range got {
		if v != i {
			t.Fatalf("fifo pop order %v, want insertion order", got)
		}
	}
}

func TestP3PriorityOrderWithFIFOTies(t *testing.T) {
	pri := []int32{2, 0, 1, 0, 2, 1}
	q := NewQueue(NewP3Priority(), func(i int) Item { return Item{Priority: pri[i]} })
	fill(q, pri, nil)
	want := []int{1, 3, 2, 5, 0, 4} // by priority, ties in insertion order
	got := drain(q)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("p3 pop order %v, want %v", got, want)
		}
	}
}

func TestSmallestFirstOrder(t *testing.T) {
	pri := []int32{0, 1, 2}
	bytes := []int64{300, 100, 200}
	q := NewQueue(NewSmallestFirst(), func(i int) Item { return Item{Priority: pri[i], Bytes: bytes[i]} })
	fill(q, pri, bytes)
	want := []int{1, 2, 0}
	got := drain(q)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("smallest pop order %v, want %v", got, want)
		}
	}
}

func TestRoundRobinInterleavesLayers(t *testing.T) {
	// Three items of layer 0 queued before three of layer 1: strict priority
	// would emit 0,0,0,1,1,1; round-robin must alternate.
	pri := []int32{0, 0, 0, 1, 1, 1}
	q := NewQueue(NewRoundRobinLayer(), func(i int) Item { return Item{Priority: pri[i]} })
	fill(q, pri, nil)
	got := drain(q)
	var layers []int32
	for _, v := range got {
		layers = append(layers, pri[v])
	}
	want := []int32{0, 1, 0, 1, 0, 1}
	for i := range want {
		if layers[i] != want[i] {
			t.Fatalf("rr layer order %v, want %v", layers, want)
		}
	}
}

func TestRoundRobinLateFlowDoesNotHoardCredit(t *testing.T) {
	pri := []int32{0, 0, 0, 0, 1}
	q := NewQueue(NewRoundRobinLayer(), func(i int) Item { return Item{Priority: pri[i]} })
	// Dispatch several layer-0 items, then a layer-1 item arrives: it must
	// not jump ahead of everything by starting at pass 0.
	for i := 0; i < 3; i++ {
		q.Push(i)
	}
	for i := 0; i < 3; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatal("pop failed")
		}
	}
	q.Push(3) // layer 0 again
	q.Push(4) // layer 1, first appearance
	first, _ := q.Pop()
	second, _ := q.Pop()
	// Both were stamped at the current virtual time, so insertion order
	// (layer 0's item first) must hold — not a burst of the late flow.
	if first != 3 || second != 4 {
		t.Fatalf("late-flow pop order (%d,%d), want (3,4)", first, second)
	}
}

func TestCreditGatedWindow(t *testing.T) {
	pri := []int32{5, 5, 0}
	bytes := []int64{600, 600, 100}
	d := NewCreditGated(1000)
	q := NewQueue[int](d, func(i int) Item { return Item{Priority: pri[i], Bytes: bytes[i]} })
	q.Push(0)
	q.Push(1)

	v, ok := q.PopReady()
	if !ok || v != 0 {
		t.Fatalf("first PopReady = (%d,%v), want (0,true)", v, ok)
	}
	// 600 bytes in flight; another 600 would exceed the 1000-byte window.
	if _, ok := q.PopReady(); ok {
		t.Fatal("second low-priority item admitted beyond the credit window")
	}
	if !q.Blocked() {
		t.Fatal("queue should report Blocked while the window is full")
	}
	// An urgent item arrives; it is also blocked (the window is about
	// in-flight bytes), but as soon as credit returns it goes first.
	q.Push(2)
	q.Done(0)
	v, ok = q.PopReady()
	if !ok || v != 2 {
		t.Fatalf("post-credit PopReady = (%d,%v), want (2,true)", v, ok)
	}
	if d.InFlight() != 100 {
		t.Fatalf("in-flight = %d, want 100", d.InFlight())
	}
	// Oversized item with an idle queue must still be admitted.
	q.Done(2)
	big := NewCreditGated(10)
	qb := NewQueue[int](big, func(int) Item { return Item{Bytes: 1 << 20} })
	qb.Push(0)
	if _, ok := qb.PopReady(); !ok {
		t.Fatal("idle queue refused an oversized item: wedge")
	}
}

func TestByNameRegistry(t *testing.T) {
	for _, name := range []string{"fifo", "p3", "rr", "smallest", "credit"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if d.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, d.Name())
		}
	}
	for alias, canon := range map[string]string{
		"baseline": "fifo", "priority": "p3", "p3priority": "p3",
		"roundrobin": "rr", "sjf": "smallest", "bytescheduler": "credit",
	} {
		d, err := ByName(alias)
		if err != nil {
			t.Fatalf("ByName(%q): %v", alias, err)
		}
		if d.Name() != canon {
			t.Fatalf("alias %q resolved to %q, want %q", alias, d.Name(), canon)
		}
	}
	if d, err := ByName("credit:123"); err != nil {
		t.Fatalf("credit:123: %v", err)
	} else if d.(*CreditGated).Credit != 123 {
		t.Fatalf("credit:123 window = %d", d.(*CreditGated).Credit)
	}
	if _, err := ByName("credit:nope"); err == nil {
		t.Fatal("credit:nope accepted")
	}
	if _, err := ByName("zgoneba"); err == nil {
		t.Fatal("unknown discipline accepted")
	}
	if d, err := ByName(""); err != nil || d.Name() != "fifo" {
		t.Fatalf("empty name = (%v,%v), want fifo", d, err)
	}
	if len(Names()) < 5 {
		t.Fatalf("Names() = %v, want at least the 5 built-ins", Names())
	}
}

func TestByNameReturnsFreshInstances(t *testing.T) {
	a := MustByName("rr").(*RoundRobinLayer)
	b := MustByName("rr").(*RoundRobinLayer)
	ita := Item{Priority: 7}
	a.Rank(&ita)
	a.Rank(&ita)
	itb := Item{Priority: 7}
	b.Rank(&itb)
	if itb.rank != 0 {
		t.Fatal("rr instances share pass state across queues")
	}
}

// TestPriorityInvariantProperty: under any interleaving of pushes and pops,
// p3 never emits an item while a strictly more urgent one is queued.
func TestPriorityInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 50; trial++ {
		pris := make([]int32, 0, 256)
		q := NewQueue(NewP3Priority(), func(i int) Item { return Item{Priority: pris[i]} })
		queued := map[int32]int{} // priority -> count currently queued
		for step := 0; step < 400; step++ {
			if rng.IntN(2) == 0 || q.Len() == 0 {
				p := int32(rng.IntN(8))
				pris = append(pris, p)
				q.Push(len(pris) - 1)
				queued[p]++
				continue
			}
			v, _ := q.Pop()
			got := pris[v]
			for p, n := range queued {
				if n > 0 && p < got {
					t.Fatalf("trial %d: popped priority %d while %d queued", trial, got, p)
				}
			}
			queued[got]--
		}
	}
}
