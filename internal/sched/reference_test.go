package sched

import (
	"sort"

	"p3/internal/pq"
)

// refQueue retains the pre-PR-4 linear-scan dispatcher verbatim as the
// executable specification of dispatch order: flows are selected with an
// O(F) scan over every subqueue head (best) and the admission walk sorts
// all heads on every pop (heads). The indexed-heap Queue must be
// bit-identical to this reference on every primitive — the property test in
// queue_property_test.go drives both through random interleavings. The
// reference also retains the old no-eviction behaviour (drained flows stay
// in the map forever), which dispatch order must not observe.
type refQueue[T any] struct {
	d    Discipline
	rank Ranker
	disp Dispatcher
	adm  Admitter
	view func(T) Item

	flows   map[int32]*refFlow[T]
	order   []*refFlow[T]
	scratch []*refFlow[T]
	seq     uint64
	n       int
}

type refFlow[T any] struct {
	key int32
	q   *pq.Queue[entry[T]]
}

func newRefQueue[T any](d Discipline, view func(T) Item) *refQueue[T] {
	q := &refQueue[T]{d: d, view: view, flows: make(map[int32]*refFlow[T])}
	q.rank, _ = d.(Ranker)
	q.disp, _ = d.(Dispatcher)
	q.adm, _ = d.(Admitter)
	return q
}

func (q *refQueue[T]) Len() int { return q.n }

func (q *refQueue[T]) Push(v T) {
	it := q.view(v)
	if q.rank != nil {
		it = q.rank.Rank(it)
	}
	q.seq++
	f := q.flows[it.Dest]
	if f == nil {
		f = &refFlow[T]{key: it.Dest}
		f.q = pq.New(func(a, b entry[T]) bool { return q.d.Less(a.it, b.it) })
		q.flows[it.Dest] = f
		q.order = append(q.order, f)
	}
	f.q.Push(entry[T]{v: v, it: it, seq: q.seq})
	q.n++
}

func (q *refQueue[T]) before(a, b entry[T]) bool {
	if q.d.Less(a.it, b.it) {
		return true
	}
	if q.d.Less(b.it, a.it) {
		return false
	}
	return a.seq < b.seq
}

// best: the O(F) linear scan over all flow heads.
func (q *refQueue[T]) best() *refFlow[T] {
	var bf *refFlow[T]
	var bh entry[T]
	for _, f := range q.order {
		h, ok := f.q.Peek()
		if !ok {
			continue
		}
		if bf == nil || q.before(h, bh) {
			bf, bh = f, h
		}
	}
	return bf
}

// heads: the O(F log F) full sort on every admission walk.
func (q *refQueue[T]) heads() []*refFlow[T] {
	hs := q.scratch[:0]
	for _, f := range q.order {
		if f.q.Len() > 0 {
			hs = append(hs, f)
		}
	}
	sort.Slice(hs, func(i, j int) bool {
		a, _ := hs[i].q.Peek()
		b, _ := hs[j].q.Peek()
		return q.before(a, b)
	})
	q.scratch = hs
	return hs
}

func (q *refQueue[T]) take(f *refFlow[T]) T {
	e := f.q.Pop()
	q.n--
	if q.adm != nil {
		q.adm.OnStart(e.it)
	}
	if q.disp != nil {
		q.disp.OnDispatch(e.it)
	}
	return e.v
}

func (q *refQueue[T]) Peek() (T, bool) {
	f := q.best()
	if f == nil {
		var zero T
		return zero, false
	}
	e, _ := f.q.Peek()
	return e.v, true
}

func (q *refQueue[T]) Pop() (T, bool) {
	f := q.best()
	if f == nil {
		var zero T
		return zero, false
	}
	return q.take(f), true
}

func (q *refQueue[T]) PopReady() (T, bool) {
	if q.adm == nil {
		return q.Pop()
	}
	for _, f := range q.heads() {
		e, _ := f.q.Peek()
		if !q.adm.Admit(e.it) {
			continue
		}
		return q.take(f), true
	}
	var zero T
	return zero, false
}

func (q *refQueue[T]) Preempts(hold T) bool {
	if q.n == 0 {
		return false
	}
	ht := q.view(hold)
	if q.adm == nil {
		f := q.best()
		e, _ := f.q.Peek()
		return q.d.Less(e.it, ht)
	}
	for _, f := range q.heads() {
		e, _ := f.q.Peek()
		if !q.d.Less(e.it, ht) {
			return false
		}
		if q.adm.Admit(e.it) {
			return true
		}
	}
	return false
}

func (q *refQueue[T]) PopReadyIf(keep func(T) bool) (T, bool) {
	var zero T
	if q.adm == nil {
		f := q.best()
		if f == nil {
			return zero, false
		}
		e, _ := f.q.Peek()
		if !keep(e.v) {
			return zero, false
		}
		return q.take(f), true
	}
	for _, f := range q.heads() {
		e, _ := f.q.Peek()
		if !q.adm.Admit(e.it) {
			continue
		}
		if !keep(e.v) {
			return zero, false
		}
		return q.take(f), true
	}
	return zero, false
}

func (q *refQueue[T]) PopPreempting(hold T) (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	ht := q.view(hold)
	for _, f := range q.heads() {
		e, _ := f.q.Peek()
		if !q.d.Less(e.it, ht) {
			break
		}
		if f.key == ht.Dest {
			continue
		}
		if q.adm != nil && !q.adm.Admit(e.it) {
			continue
		}
		return q.take(f), true
	}
	return zero, false
}

func (q *refQueue[T]) Done(v T) {
	if q.adm != nil {
		q.adm.OnDone(q.view(v))
	}
}

func (q *refQueue[T]) Cancel(v T) {
	if q.adm == nil {
		return
	}
	if c, ok := q.adm.(Canceler); ok {
		c.OnCancel(q.view(v))
		return
	}
	q.adm.OnDone(q.view(v))
}

func (q *refQueue[T]) Blocked() bool {
	if q.adm == nil || q.n == 0 {
		return false
	}
	for _, f := range q.heads() {
		e, _ := f.q.Peek()
		if q.adm.Admit(e.it) {
			return false
		}
	}
	return true
}
