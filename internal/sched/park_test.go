package sched

import "testing"

// TestAdaptiveCreditParkAccounting pins the preemption-aware credit fix: a
// parked (preempted) transmission's remaining bytes must stop counting
// against its flow's admission window, and the park/resume transitions must
// not feed the AIMD — before the Parker interface, a long-parked tail kept
// its flow's window spuriously bound and every refusal it caused was
// recorded as credit-starvation evidence.
func TestAdaptiveCreditParkAccounting(t *testing.T) {
	a := NewAdaptiveCredit(1000)
	bulk := Item{Priority: 5, Bytes: 900, Dest: 1}
	urgent := Item{Priority: 0, Bytes: 800, Dest: 1}

	if !a.Admit(bulk) {
		t.Fatal("empty window refused the bulk item")
	}
	a.OnStart(bulk)
	// Parked: the 900 in-flight bytes move out of the window...
	a.OnPark(bulk)
	if got := a.InFlight(1); got != 0 {
		t.Fatalf("in-flight after park = %d, want 0", got)
	}
	if got := a.Parked(1); got != 900 {
		t.Fatalf("parked after park = %d, want 900", got)
	}
	// ...so the urgent preemptor is admissible where the old accounting
	// (900 + 800 > 1000) would have refused it and logged a stall.
	if !a.Admit(urgent) {
		t.Fatal("urgent preemptor refused against a parked-only window")
	}
	a.OnStart(urgent)
	a.OnDone(urgent)
	if got := a.Window(1); got != 1000 {
		t.Fatalf("window tuned to %d by a park/preempt cycle, want untouched 1000", got)
	}
	// Resume re-charges, Done balances.
	a.OnResume(bulk)
	if got, parked := a.InFlight(1), a.Parked(1); got != 900 || parked != 0 {
		t.Fatalf("after resume: in-flight %d parked %d, want 900/0", got, parked)
	}
	a.OnDone(bulk)
	if got := a.InFlight(1); got != 0 {
		t.Fatalf("in-flight after done = %d, want 0", got)
	}
	if got := a.Window(1); got != 1000 {
		t.Fatalf("window %d after balanced park cycle, want 1000", got)
	}
}

// TestAdaptiveCreditParkDiscardsRefusalEvidence: a refusal caused while the
// window later drains BY PARKING (not by completions) must not grow the
// window — the drain says nothing about credit starvation, exactly like the
// OnCancel path.
func TestAdaptiveCreditParkDiscardsRefusalEvidence(t *testing.T) {
	a := NewAdaptiveCredit(1000)
	bulk := Item{Priority: 5, Bytes: 900, Dest: 1}
	big := Item{Priority: 1, Bytes: 500, Dest: 1}
	a.OnStart(bulk)
	if a.Admit(big) {
		t.Fatal("900+500 admitted into a 1000-byte window")
	}
	// The transmission parks; the refusal evidence must be discarded, not
	// interpreted as a stall on the next drain.
	a.OnPark(bulk)
	if !a.Admit(big) {
		t.Fatal("big item still refused after the blocking bytes parked")
	}
	a.OnStart(big)
	a.OnDone(big)
	if got := a.Window(1); got != 1000 {
		t.Fatalf("window grew to %d on park-discarded refusal evidence, want 1000", got)
	}
}

// TestQueueParkResume drives the Park/Resume plumbing through the queue
// (and the gatedDamped forwarding): the element's own view routes the
// park, a non-Parker discipline ignores it, and the walk stays balanced.
func TestQueueParkResume(t *testing.T) {
	for _, name := range []string{"credit-adaptive:1000", "damped:credit-adaptive:1000"} {
		q := NewQueue(MustByName(name), ident)
		bulk := Item{Priority: 5, Bytes: 900, Dest: 1}
		q.Push(bulk)
		v, ok := q.PopReady()
		if !ok {
			t.Fatalf("%s: nothing admitted", name)
		}
		q.Park(v)
		// With 900 bytes parked the window is free: another 900-byte item
		// for the same flow must be admissible.
		q.Push(Item{Priority: 0, Bytes: 900, Dest: 1})
		w, ok := q.PopReady()
		if !ok {
			t.Fatalf("%s: admissible item refused against a parked window", name)
		}
		q.Done(w)
		q.Resume(v)
		q.Done(v)
	}
	// Non-Parker admitters (plain credit) keep parked bytes charged: Park
	// must be a safe no-op, not an underflow.
	q := NewQueue(MustByName("credit:1000"), ident)
	bulk := Item{Priority: 5, Bytes: 900, Dest: 1}
	q.Push(bulk)
	v, _ := q.PopReady()
	q.Park(v)
	q.Push(Item{Priority: 0, Bytes: 900, Dest: 1})
	if _, ok := q.PopReady(); ok {
		t.Fatal("credit (no Parker) admitted past bytes that stay charged while parked")
	}
	q.Resume(v)
	q.Done(v)
	// Ungated disciplines: Park/Resume are no-ops.
	p := NewQueue(MustByName("p3"), ident)
	p.Push(bulk)
	v, _ = p.Pop()
	p.Park(v)
	p.Resume(v)
}
