package sched

import (
	"math/rand/v2"
	"strings"
	"testing"
)

func ident(it Item) Item { return it }

// TestDampedRegistry pins the damped factory's name grammar: bare damped
// wraps p3 at the default weight, ":base" selects the base, "@weight" tunes
// the horizon, and non-priority-ordered or enqueue-ranking bases are
// rejected with a diagnostic.
func TestDampedRegistry(t *testing.T) {
	d := MustByName("damped")
	dd, ok := d.(*Damped)
	if !ok {
		t.Fatalf("damped resolved to %T", d)
	}
	if dd.Base().Name() != "p3" || dd.Weight() != DefaultDampWeight {
		t.Fatalf("bare damped = %s @%d, want p3 @%d", dd.Base().Name(), dd.Weight(), DefaultDampWeight)
	}
	if got := MustByName("damped:tictac").Name(); got != "damped:tictac" {
		t.Fatalf("damped:tictac resolved to %s", got)
	}
	g, ok := MustByName("damped:credit-adaptive:1048576@16").(*gatedDamped)
	if !ok {
		t.Fatalf("damped over an Admitter base must present the gated wrapper")
	}
	if g.Weight() != 16 {
		t.Fatalf("explicit weight lost: got %d", g.Weight())
	}
	if _, ok := MustByName("damped:credit").(Admitter); !ok {
		t.Fatal("damped:credit lost the base's Admitter")
	}
	if _, ok := MustByName("damped:p3").(Admitter); ok {
		t.Fatal("damped:p3 must not present an Admitter (base has none)")
	}
	for _, bad := range []string{
		"damped:rr",       // ranks at enqueue
		"damped:damped",   // ditto
		"damped:fifo",     // not priority-ordered
		"damped:smallest", // ordered by size, not priority
		"damped:nope",     // unknown base
		"damped:p3@0",     // weight must be positive
		"damped:p3@x",     // weight must be a number
	} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) = nil error, want rejection", bad)
		}
	}
}

// TestByNameErrorMentionsDamped: the unknown-discipline diagnostic must
// list the damped wrapper with its argument grammar, so a user who
// misspells a name discovers the full registry including parameterized
// forms.
func TestByNameErrorMentionsDamped(t *testing.T) {
	_, err := ByName("bogus")
	if err == nil {
		t.Fatal("ByName(bogus) succeeded")
	}
	for _, want := range []string{"damped[:base[@weight]]", "credit[:bytes]", "credit-adaptive[:bytes]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestDampedProfileLessDegradesToP3: a damped:tictac without a Profile must
// behave exactly like damped p3 order (tictac's documented fallback), and
// must not panic anywhere on the dispatch path.
func TestDampedProfileLessDegradesToP3(t *testing.T) {
	mk := func(name string) *Queue[Item] { return NewQueue(MustByName(name), ident) }
	a, b := mk("damped:tictac"), mk("damped:p3")
	rng := rand.New(rand.NewPCG(7, 9))
	var items []Item
	for i := 0; i < 500; i++ {
		items = append(items, Item{
			Priority: int32(rng.IntN(20)),
			Bytes:    int64(1 + rng.IntN(4096)),
			Dest:     int32(rng.IntN(8)),
		})
	}
	for _, it := range items {
		a.Push(it)
		b.Push(it)
	}
	for i := 0; a.Len() > 0; i++ {
		va, _ := a.Pop()
		vb, _ := b.Pop()
		if va != vb {
			t.Fatalf("pop %d: profile-less damped:tictac %+v != damped:p3 %+v", i, va, vb)
		}
	}
	if b.Len() != 0 {
		t.Fatal("length mismatch")
	}
}

// TestDampedIsPermutation: damping reorders the schedule but never changes
// its contents — popping everything yields exactly the pushed multiset, for
// random workloads across several weights.
func TestDampedIsPermutation(t *testing.T) {
	for _, name := range []string{"damped:p3@1", "damped", "damped:p3@64"} {
		rng := rand.New(rand.NewPCG(11, 13))
		q := NewQueue(MustByName(name), ident)
		pushed := map[Item]int{}
		popped := map[Item]int{}
		n := 0
		for round := 0; round < 50; round++ {
			for i := 0; i < rng.IntN(40); i++ {
				it := Item{
					Priority: int32(rng.IntN(16)),
					Bytes:    int64(1 + rng.IntN(1024)),
					Dest:     int32(rng.IntN(6)),
				}
				pushed[it]++
				q.Push(it)
				n++
			}
			for i := 0; i < rng.IntN(30) && q.Len() > 0; i++ {
				v, _ := q.Pop()
				// Clear the discipline-stamped rank: pushed items were
				// recorded pre-rank.
				popped[Item{Priority: v.Priority, Bytes: v.Bytes, Dest: v.Dest}]++
			}
		}
		for q.Len() > 0 {
			v, _ := q.Pop()
			popped[Item{Priority: v.Priority, Bytes: v.Bytes, Dest: v.Dest}]++
		}
		if len(pushed) != len(popped) {
			t.Fatalf("%s: %d distinct pushed vs %d popped", name, len(pushed), len(popped))
		}
		for it, cnt := range pushed {
			if popped[it] != cnt {
				t.Fatalf("%s: item %+v pushed %d times, popped %d", name, it, cnt, popped[it])
			}
		}
	}
}

// TestDampedNoStarvation pins the bounded-inversion contract: a queued
// low-priority item is overtaken by at most Weight x Δclass later arrivals,
// so even an unbounded stream of fresher urgent work cannot starve it.
func TestDampedNoStarvation(t *testing.T) {
	const weight = 8
	const lowPri = 10
	q := NewQueue(MustByName("damped:p3@8"), ident)
	low := Item{Priority: lowPri, Bytes: 1, Dest: 1}
	q.Push(low)
	overtakes := 0
	for i := 0; i < 10*weight*lowPri; i++ {
		q.Push(Item{Priority: 0, Bytes: 1, Dest: 2})
		v, _ := q.Pop()
		if v.Priority == lowPri {
			if overtakes > weight*lowPri {
				t.Fatalf("low-priority item overtaken %d times, bound is %d", overtakes, weight*lowPri)
			}
			return
		}
		overtakes++
	}
	t.Fatalf("low-priority item starved: still queued after %d urgent dispatches", overtakes)
}

// TestDampedStrictWithShallowQueue: with a horizon that covers the whole
// backlog, damped dispatches exactly like its base — the small-cluster
// regime where strict priority is the right call must be preserved.
func TestDampedStrictWithShallowQueue(t *testing.T) {
	q := NewQueue(MustByName("damped:p3@64"), ident)
	// 6 items, max Δclass 5: horizon 64x5 far exceeds the backlog.
	prios := []int32{5, 3, 4, 1, 2, 0}
	for _, p := range prios {
		q.Push(Item{Priority: p, Bytes: 1, Dest: p})
	}
	for want := int32(0); want < 6; want++ {
		v, _ := q.Pop()
		if v.Priority != want {
			t.Fatalf("shallow-queue damped popped priority %d, want strict order %d", v.Priority, want)
		}
	}
}

// TestDampedRotationBreaksTiesPerSource: when an older less-urgent item and
// a fresher more-urgent one collide on the same damped rank, the tie
// resolves by Dest XOR the queue owner's source seed (ApplySource) — so two
// source machines running the identical schedule resolve the same collision
// toward different destinations, the de-synchronization that keeps N
// senders off one receiver's ingest window.
func TestDampedRotationBreaksTiesPerSource(t *testing.T) {
	const weight = 8
	order := func(src int32) []int32 {
		q := NewQueue(ApplySource(MustByName("damped:p3@8"), src), ident)
		// Epoch 0: one class-1 item to dest 0 -> rank 0 + 8x1 = 8.
		q.Push(Item{Priority: 1, Bytes: 1, Dest: 0})
		// Epochs 1..7: class-0 fillers, ranks 1..7.
		for i := 0; i < weight-1; i++ {
			q.Push(Item{Priority: 0, Bytes: 1, Dest: 9})
		}
		// Epoch 8: a class-0 item to dest 1 -> rank 8, tying the first.
		q.Push(Item{Priority: 0, Bytes: 1, Dest: 1})
		var out []int32
		for q.Len() > 0 {
			v, _ := q.Pop()
			if v.Dest != 9 {
				out = append(out, v.Dest)
			}
		}
		return out
	}
	// Source 0: rotations 0^0=0 vs 1^0=1 -> dest 0 wins the tie.
	if o := order(0); o[0] != 0 || o[1] != 1 {
		t.Fatalf("source 0 resolved the rank tie as %v, want [0 1]", o)
	}
	// Source 1: rotations 0^1=1 vs 1^1=0 -> dest 1 wins the same tie.
	if o := order(1); o[0] != 1 || o[1] != 0 {
		t.Fatalf("source 1 resolved the rank tie as %v, want [1 0]", o)
	}
}

// TestDampedTictacClassMapping: with a profile installed, damped:tictac
// damps along the base's slack order, not the raw layer order — a heavy
// early-deadline tensor outranks a light later one exactly as bare tictac
// would, while within a class the damped epoch applies.
func TestDampedTictacClassMapping(t *testing.T) {
	prof := &Profile{
		// Three classes; class 2's deadline is so early relative to its
		// transfer that its slack beats class 0 and 1.
		NeedAtNs:     []int64{5000, 6000, 7000},
		LayerBytes:   []int64{100, 100, 1_000_000},
		GbpsEstimate: 1,
	}
	d := ApplyProfile(MustByName("damped:tictac"), prof)
	q := NewQueue(d, ident)
	q.Push(Item{Priority: 0, Bytes: 1, Dest: 0})
	q.Push(Item{Priority: 2, Bytes: 1, Dest: 1})
	v, _ := q.Pop()
	if v.Priority != 2 {
		t.Fatalf("damped:tictac popped class %d first, want the negative-slack class 2", v.Priority)
	}
	// Bare tictac must agree on the class order.
	tt := ApplyProfile(MustByName("tictac"), prof)
	if !tt.Less(Item{Priority: 2}, Item{Priority: 0}) {
		t.Fatal("tictac itself does not rank class 2 first; test premise broken")
	}
}
