package sched_test

import (
	"strings"
	"testing"

	"p3/internal/benchmarks"
)

// BenchmarkQueueManyFlows prices one dispatch with the queue spread over
// many flows (64 and 256) — the regime the paper's 50k-parameter slicing
// and a 64-machine cluster put every egress queue in. The benchmark bodies
// live in internal/benchmarks so that `go test -bench`, `p3bench bench` and
// the CI regression gate all measure the SAME code; this driver runs the
// queue-level entries of that suite. The linear head scan the indexed heap
// replaced was O(F) per pop (O(F log F) under a credit gate); every entry
// here must be O(log F) and allocation-free at steady state.
func BenchmarkQueueManyFlows(b *testing.B) {
	for _, n := range benchmarks.Dispatch() {
		if strings.HasPrefix(n.Name, "queue/") {
			b.Run(strings.TrimPrefix(n.Name, "queue/"), n.Bench)
		}
	}
}
