package sched

import "testing"

// TestQueueSetProfileRebuildsOrder pins the live-recalibration contract: a
// populated tictac queue re-orders its QUEUED elements when a new profile
// arrives — swapping the comparator's profile under the heaps would break
// the heap invariant and dispatch in neither the old nor the new order, so
// SetProfile rebuilds them.
func TestQueueSetProfileRebuildsOrder(t *testing.T) {
	q := NewQueue(MustByName("tictac"), ident)
	// Profile-less tictac ranks by raw priority: class 0 would pop first.
	q.Push(Item{Priority: 0, Bytes: 1, Dest: 0})
	q.Push(Item{Priority: 1, Bytes: 1, Dest: 1})
	q.Push(Item{Priority: 2, Bytes: 1, Dest: 2})
	// The new profile makes class 2 the most urgent (huge transfer against
	// an early deadline) and must reorder the already-queued items.
	q.SetProfile(&Profile{
		NeedAtNs:     []int64{5000, 6000, 7000},
		LayerBytes:   []int64{100, 100, 1_000_000},
		GbpsEstimate: 1,
	})
	var got []int32
	for q.Len() > 0 {
		v, _ := q.Pop()
		got = append(got, v.Priority)
	}
	want := []int32{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-recalibration pop order %v, want %v", got, want)
		}
	}
	// A nil-profile rebuild on an empty queue must not wedge anything, and
	// insertion order must survive a rebuild that does not change ranks.
	q.SetProfile(nil)
	q.Push(Item{Priority: 3, Bytes: 1, Dest: 0})
	q.Push(Item{Priority: 3, Bytes: 1, Dest: 0})
	q.SetProfile(&Profile{NeedAtNs: []int64{1, 1, 1, 1}, GbpsEstimate: 1})
	a, _ := q.Pop()
	b, _ := q.Pop()
	_ = a
	_ = b
	if q.Len() != 0 {
		t.Fatal("rebuild lost or duplicated elements")
	}
}

// TestQueueSetProfileKeepsCreditCharges: rebuilding must not disturb
// in-flight credit accounting — charges belong to popped elements, which
// are outside the queue.
func TestQueueSetProfileKeepsCreditCharges(t *testing.T) {
	q := NewQueue(MustByName("damped:credit-adaptive:1000"), ident)
	q.Push(Item{Priority: 0, Bytes: 900, Dest: 1})
	q.Push(Item{Priority: 1, Bytes: 900, Dest: 1})
	v, ok := q.PopReady()
	if !ok {
		t.Fatal("nothing admitted")
	}
	q.SetProfile(&Profile{NeedAtNs: []int64{10, 20}, GbpsEstimate: 1})
	// The window still holds v's 900 bytes: the queued 900-byte item for
	// the same flow must stay refused until Done.
	if _, ok := q.PopReady(); ok {
		t.Fatal("rebuild leaked the in-flight credit charge")
	}
	q.Done(v)
	if w, ok := q.PopReady(); !ok || w.Bytes != 900 {
		t.Fatal("queued item lost across the rebuild")
	}
}
