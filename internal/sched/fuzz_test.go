package sched

import (
	"strings"
	"testing"
)

// FuzzByName hammers the registry's name/arg parsing. Historical catches:
// "credit:" (colon, empty argument) used to resolve silently to the default
// window, masking a lost argument, and "rr:junk" used to resolve to rr with
// the argument dropped; both are errors now. The invariants checked on
// every successful resolution keep a future discipline from wedging a
// queue: a resolved credit window is positive, Less is irreflexive (a
// self-inverting comparator corrupts the heap), and an Admitter admits onto
// an idle queue.
func FuzzByName(f *testing.F) {
	for _, seed := range []string{
		"", "fifo", "p3", "rr", "smallest", "credit", "tictac",
		"credit-adaptive", "credit:1048576", "credit-adaptive:65536",
		"credit:", "credit:-5", "credit:abc", "credit:0", "credit:+7",
		"credit:5:6", "adaptive:0", "bytescheduler:7", "dag", "rr:junk",
		"tictac:5", "zgoneba", ":", "::", "CREDIT", " credit", "credit ",
		"credit:99999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		d, err := ByName(name)
		if err != nil {
			if d != nil {
				t.Fatalf("ByName(%q) returned both a discipline and error %v", name, err)
			}
			return
		}
		if d == nil {
			t.Fatalf("ByName(%q) returned nil without error", name)
		}
		if d.Name() == "" {
			t.Fatalf("ByName(%q): empty canonical name", name)
		}
		if strings.ContainsRune(name, ':') && strings.HasSuffix(name, ":") {
			t.Fatalf("ByName(%q): empty argument resolved silently to %q", name, d.Name())
		}
		switch c := d.(type) {
		case *CreditGated:
			if c.Credit <= 0 {
				t.Fatalf("ByName(%q): zero/negative credit window %d would wedge the queue", name, c.Credit)
			}
		case *AdaptiveCredit:
			if c.Initial <= 0 || c.Min <= 0 || c.Max < c.Initial || c.Step <= 0 {
				t.Fatalf("ByName(%q): degenerate adaptive window (initial %d, min %d, max %d, step %d)",
					name, c.Initial, c.Min, c.Max, c.Step)
			}
		}
		it := Item{Priority: 1, Bytes: 100}
		if d.Less(it, it) {
			t.Fatalf("ByName(%q): Less(x, x) = true", name)
		}
		if a, ok := d.(Admitter); ok {
			if !a.Admit(Item{Bytes: 1 << 40}) {
				t.Fatalf("ByName(%q): idle queue refused an oversized item: wedge", name)
			}
		}
	})
}
