package sim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Proc is the scheduling handle of one logical process: a local clock and
// the ability to schedule events on it. *Engine satisfies Proc, so
// single-engine code and LP-aware code share one vocabulary.
type Proc interface {
	Now() Time
	At(t Time, fn func())
	After(d Time, fn func())
}

// Exec abstracts the execution engine behind logical processes. Single is
// the single-heap engine; Parallel shards LPs over goroutines under
// conservative lookahead (see the package comment for the contract).
type Exec interface {
	// Proc returns the scheduling handle of LP lp. Handles carry the LP
	// identity for the canonical tie key; callers should cache them.
	Proc(lp int) Proc
	// Cross schedules fn on dst's timeline at absolute time at, from an
	// event currently executing on src's timeline. On a Parallel exec, at
	// must be at least src's clock plus the lookahead.
	Cross(src, dst int, at Time, fn func())
	// Shards reports the parallelism: 1 for Single. Models use it to gate
	// semantics that only a single-threaded run can provide (credit
	// feedback across LPs, trace recording).
	Shards() int
	Run() Time
	Stop()
	Processed() uint64
}

// Single adapts one Engine to the Exec interface: every LP shares the
// engine's heap and clock, Proc(lp) tags scheduled events with lp's
// canonical key, and Cross tags with the sending LP's — so same-instant
// ties fire in exactly the order a Parallel run computes (see the package
// comment). Events scheduled directly on the Engine keep the legacy
// untagged behavior.
type Single struct{ Eng *Engine }

// singleProc is Single's per-LP scheduling handle: Engine scheduling
// stamped with the LP's canonical key.
type singleProc struct {
	eng *Engine
	lp  int32
}

func (p singleProc) Now() Time               { return p.eng.now }
func (p singleProc) At(t Time, fn func())    { p.eng.atFrom(p.lp, t, fn) }
func (p singleProc) After(d Time, fn func()) { p.eng.atFrom(p.lp, p.eng.now+d, fn) }

func (s Single) Proc(lp int) Proc { return singleProc{eng: s.Eng, lp: int32(lp)} }

func (s Single) Cross(src, _ int, at Time, fn func()) { s.Eng.atFrom(int32(src), at, fn) }

func (s Single) Shards() int       { return 1 }
func (s Single) Run() Time         { return s.Eng.Run() }
func (s Single) Stop()             { s.Eng.Stop() }
func (s Single) Processed() uint64 { return s.Eng.Processed() }

// xmsg is one buffered cross-shard message awaiting barrier injection. It
// carries the canonical key stamped at the send — the sender's virtual
// clock, the sending LP, and the per-LP schedule order — so after
// injection it sorts against the destination's local events exactly as it
// would have on a single heap.
type xmsg struct {
	at    Time
	sched Time
	ord   uint64 // ordKey(src, seq), stamped at the send
	fn    func()
}

// pshard is one shard: an event heap, a local clock, and per-destination
// outboxes for cross-shard sends. Shards are allocated individually so two
// shards' hot fields never share a cache line.
type pshard struct {
	heap   eventHeap
	now    Time
	nRun   uint64
	outbox [][]xmsg  // indexed by destination shard; owned by this shard's goroutine during a window
	work   chan Time // window horizons from the coordinator
}

func (s *pshard) runWindow(horizon Time, stopped *atomic.Bool) {
	// Strictly before the horizon: an event at the horizon itself may need
	// to be ordered against cross messages injected at this window's
	// barrier, so it belongs to a later window.
	for len(s.heap) > 0 && s.heap[0].at < horizon && !stopped.Load() {
		ev := s.heap.pop()
		s.now = ev.at
		s.nRun++
		ev.fn()
	}
}

// shardProc is the per-LP scheduling handle of a Parallel executor. Local
// scheduling stamps the canonical key from the owning shard's clock and
// the LP's schedule counter — the same key a Single run stamps, which is
// what keeps same-instant ties engine-independent.
type shardProc struct {
	s  *pshard
	p  *Parallel
	lp int32
}

func (p shardProc) Now() Time { return p.s.now }

func (p shardProc) At(t Time, fn func()) {
	if t < p.s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, p.s.now))
	}
	p.p.lpSeq[p.lp]++
	p.s.heap.push(event{at: t, sched: p.s.now, ord: ordKey(p.lp, p.p.lpSeq[p.lp]), fn: fn})
}

func (p shardProc) After(d Time, fn func()) { p.At(p.s.now+d, fn) }

// Parallel is a conservative-lookahead parallel discrete-event executor:
// LPs are partitioned over shards, each shard runs its events on its own
// goroutine within barrier-synchronous windows of width lookahead, and
// cross-shard sends are buffered and injected at the barrier carrying the
// canonical key stamped at the send. See the package comment for the
// determinism contract.
type Parallel struct {
	shards  []*pshard
	procs   []shardProc // per LP
	lpShard []int32     // LP -> shard
	look    Time
	stopped atomic.Bool
	windowW sync.WaitGroup // open window dispatches

	// lpSeq is the per-LP schedule counter behind the canonical key. Each
	// entry is touched only by the goroutine of the shard owning that LP
	// (local At and Cross both run on the scheduling LP's shard), so no
	// synchronization is needed.
	lpSeq []uint64
}

// NewParallel builds a Parallel executor over len(lpShard) logical
// processes: lpShard[lp] names the shard (in [0, shards)) that owns LP lp.
// lookahead must be positive — it is the minimum latency of every Cross
// send, and the width of the safe execution window; a zero-lookahead
// topology admits no safe window and is rejected rather than left to
// deadlock.
func NewParallel(shards int, lpShard []int, lookahead Time) (*Parallel, error) {
	if shards < 1 {
		return nil, fmt.Errorf("sim: %d shards", shards)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: conservative parallel execution needs a positive lookahead, got %v (a zero-lookahead topology has no safe window and would deadlock)", lookahead)
	}
	if len(lpShard) >= 1<<16 {
		return nil, fmt.Errorf("sim: %d LPs exceed the canonical tie key's LP field (max %d)", len(lpShard), 1<<16-2)
	}
	p := &Parallel{
		shards:  make([]*pshard, shards),
		procs:   make([]shardProc, len(lpShard)),
		lpShard: make([]int32, len(lpShard)),
		look:    lookahead,
		lpSeq:   make([]uint64, len(lpShard)),
	}
	for i := range p.shards {
		p.shards[i] = &pshard{outbox: make([][]xmsg, shards)}
	}
	for lp, s := range lpShard {
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("sim: LP %d assigned to shard %d of %d", lp, s, shards)
		}
		p.lpShard[lp] = int32(s)
		p.procs[lp] = shardProc{s: p.shards[s], p: p, lp: int32(lp)}
	}
	return p, nil
}

// Proc returns the scheduling handle of LP lp.
func (p *Parallel) Proc(lp int) Proc { return p.procs[lp] }

// Shards reports the shard count.
func (p *Parallel) Shards() int { return len(p.shards) }

// Cross buffers fn for injection into dst's shard at time at, stamped with
// the canonical key of the sending LP. It must be called from an event
// executing on src's shard (that shard's outbox row and src's schedule
// counter are written without synchronization) and at must respect the
// lookahead.
func (p *Parallel) Cross(src, dst int, at Time, fn func()) {
	ss := p.shards[p.lpShard[src]]
	if at < ss.now+p.look {
		panic(fmt.Sprintf("sim: cross-shard send at %v from now %v violates lookahead %v", at, ss.now, p.look))
	}
	p.lpSeq[src]++
	ds := p.lpShard[dst]
	ss.outbox[ds] = append(ss.outbox[ds], xmsg{at: at, sched: ss.now, ord: ordKey(int32(src), p.lpSeq[src]), fn: fn})
}

// Stop makes Run return once every shard finishes its current event. Which
// pending events have fired when a Stop lands mid-window depends on the
// goroutine interleaving — Stop is a shutdown hatch, not a measurement
// point.
func (p *Parallel) Stop() { p.stopped.Store(true) }

// Processed reports how many events have fired across all shards. Only
// meaningful once Run has returned.
func (p *Parallel) Processed() uint64 {
	var n uint64
	for _, s := range p.shards {
		n += s.nRun
	}
	return n
}

// Run processes events until every heap drains or Stop is called, and
// returns the final virtual time (the maximum over shards). Worker
// goroutines live only for the duration of the call.
func (p *Parallel) Run() Time {
	p.stopped.Store(false)
	var workers sync.WaitGroup
	workers.Add(len(p.shards))
	for _, s := range p.shards {
		s.work = make(chan Time, 1)
		go func(s *pshard) {
			defer workers.Done()
			for horizon := range s.work {
				s.runWindow(horizon, &p.stopped)
				p.windowW.Done()
			}
		}(s)
	}

	const inf = Time(math.MaxInt64)
	for !p.stopped.Load() {
		tmin := inf
		for _, s := range p.shards {
			if len(s.heap) > 0 && s.heap[0].at < tmin {
				tmin = s.heap[0].at
			}
		}
		if tmin == inf {
			break
		}
		horizon := tmin + p.look
		nActive := 0
		var only *pshard
		for _, s := range p.shards {
			if len(s.heap) > 0 && s.heap[0].at < horizon {
				nActive++
				only = s
			}
		}
		if nActive == 1 {
			// A one-shard window needs no handoff; running it inline keeps
			// sparse phases (one machine computing while the rest wait) at
			// sequential-engine cost.
			only.runWindow(horizon, &p.stopped)
		} else {
			p.windowW.Add(nActive)
			for _, s := range p.shards {
				if len(s.heap) > 0 && s.heap[0].at < horizon {
					s.work <- horizon
				}
			}
			p.windowW.Wait()
		}
		p.inject()
	}
	for _, s := range p.shards {
		close(s.work)
	}
	workers.Wait()

	var end Time
	for _, s := range p.shards {
		if s.now > end {
			end = s.now
		}
	}
	return end
}

// inject drains every outbox into the destination heaps. Each message
// keeps the canonical key stamped at its send, and the heap orders events
// by that key, so injection order — which depends on barrier boundaries —
// carries no semantic weight: two messages arriving at one LP at the same
// instant, or a message tying with a locally scheduled event there, fire
// in (scheduling time, scheduling LP, per-LP order) exactly as a Single
// run fires them. That is what makes an N-shard run reproduce the 1-shard
// Result.
func (p *Parallel) inject() {
	for ds, dst := range p.shards {
		for _, src := range p.shards {
			box := src.outbox[ds]
			for i := range box {
				dst.heap.push(event{at: box[i].at, sched: box[i].sched, ord: box[i].ord, fn: box[i].fn})
			}
			clear(box) // release the buffered closures
			src.outbox[ds] = box[:0]
		}
	}
}
