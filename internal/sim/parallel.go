package sim

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
)

// Proc is the scheduling handle of one logical process: a local clock and
// the ability to schedule events on it. *Engine satisfies Proc, so
// single-engine code and LP-aware code share one vocabulary.
type Proc interface {
	Now() Time
	At(t Time, fn func())
	After(d Time, fn func())
}

// Exec abstracts the execution engine behind logical processes. Single is
// the exact legacy single-heap engine; Parallel shards LPs over goroutines
// under conservative lookahead (see the package comment for the contract).
type Exec interface {
	// Proc returns the scheduling handle of LP lp. Handles may be shared
	// between LPs on the same shard; callers should cache them.
	Proc(lp int) Proc
	// Cross schedules fn on dst's timeline at absolute time at, from an
	// event currently executing on src's timeline. On a Parallel exec, at
	// must be at least src's clock plus the lookahead.
	Cross(src, dst int, at Time, fn func())
	// Shards reports the parallelism: 1 for Single. Models use it to gate
	// semantics that only a single-threaded run can provide (credit
	// feedback across LPs, trace recording).
	Shards() int
	Run() Time
	Stop()
	Processed() uint64
}

// Single adapts one Engine to the Exec interface: every LP shares the
// engine, and Cross is plain At. It is the bit-identical legacy path — the
// adapter adds no state and reorders nothing.
type Single struct{ Eng *Engine }

func (s Single) Proc(int) Proc                      { return s.Eng }
func (s Single) Cross(_, _ int, at Time, fn func()) { s.Eng.At(at, fn) }
func (s Single) Shards() int                        { return 1 }
func (s Single) Run() Time                          { return s.Eng.Run() }
func (s Single) Stop()                              { s.Eng.Stop() }
func (s Single) Processed() uint64                  { return s.Eng.Processed() }

// xmsg is one buffered cross-shard message awaiting barrier injection. src
// (the sending LP) and the per-source append order are the canonical tie
// keys that make injection order independent of shard count and goroutine
// interleaving.
type xmsg struct {
	at  Time
	src int32
	fn  func()
}

// pshard is one shard: an event heap, a local clock, and per-destination
// outboxes for cross-shard sends. Shards are allocated individually so two
// shards' hot fields never share a cache line.
type pshard struct {
	heap   eventHeap
	now    Time
	seq    uint64
	nRun   uint64
	outbox [][]xmsg  // indexed by destination shard; owned by this shard's goroutine during a window
	work   chan Time // window horizons from the coordinator
}

func (s *pshard) runWindow(horizon Time, stopped *atomic.Bool) {
	// Strictly before the horizon: an event at the horizon itself may need
	// to be ordered against cross messages injected at this window's
	// barrier, so it belongs to a later window.
	for len(s.heap) > 0 && s.heap[0].at < horizon && !stopped.Load() {
		ev := s.heap.pop()
		s.now = ev.at
		s.nRun++
		ev.fn()
	}
}

// shardProc is the Proc handle shared by every LP of one shard.
type shardProc struct{ s *pshard }

func (p shardProc) Now() Time { return p.s.now }

func (p shardProc) At(t Time, fn func()) {
	if t < p.s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, p.s.now))
	}
	p.s.seq++
	p.s.heap.push(event{at: t, seq: p.s.seq, fn: fn})
}

func (p shardProc) After(d Time, fn func()) { p.At(p.s.now+d, fn) }

// Parallel is a conservative-lookahead parallel discrete-event executor:
// LPs are partitioned over shards, each shard runs its events on its own
// goroutine within barrier-synchronous windows of width lookahead, and
// cross-shard sends are buffered and injected at the barrier in canonical
// (timestamp, source LP, send order). See the package comment for the
// determinism contract.
type Parallel struct {
	shards  []*pshard
	procs   []shardProc // per shard
	lpShard []int32     // LP -> shard
	look    Time
	stopped atomic.Bool
	windowW sync.WaitGroup // open window dispatches
	scratch []xmsg         // barrier injection staging, reused
}

// NewParallel builds a Parallel executor over len(lpShard) logical
// processes: lpShard[lp] names the shard (in [0, shards)) that owns LP lp.
// lookahead must be positive — it is the minimum latency of every Cross
// send, and the width of the safe execution window; a zero-lookahead
// topology admits no safe window and is rejected rather than left to
// deadlock.
func NewParallel(shards int, lpShard []int, lookahead Time) (*Parallel, error) {
	if shards < 1 {
		return nil, fmt.Errorf("sim: %d shards", shards)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: conservative parallel execution needs a positive lookahead, got %v (a zero-lookahead topology has no safe window and would deadlock)", lookahead)
	}
	p := &Parallel{
		shards:  make([]*pshard, shards),
		procs:   make([]shardProc, shards),
		lpShard: make([]int32, len(lpShard)),
		look:    lookahead,
	}
	for i := range p.shards {
		p.shards[i] = &pshard{outbox: make([][]xmsg, shards)}
		p.procs[i] = shardProc{s: p.shards[i]}
	}
	for lp, s := range lpShard {
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("sim: LP %d assigned to shard %d of %d", lp, s, shards)
		}
		p.lpShard[lp] = int32(s)
	}
	return p, nil
}

// Proc returns the scheduling handle of LP lp (shared by the LPs of a
// shard).
func (p *Parallel) Proc(lp int) Proc { return p.procs[p.lpShard[lp]] }

// Shards reports the shard count.
func (p *Parallel) Shards() int { return len(p.shards) }

// Cross buffers fn for injection into dst's shard at time at. It must be
// called from an event executing on src's shard (that shard's outbox row is
// written without synchronization) and at must respect the lookahead.
func (p *Parallel) Cross(src, dst int, at Time, fn func()) {
	ss := p.shards[p.lpShard[src]]
	if at < ss.now+p.look {
		panic(fmt.Sprintf("sim: cross-shard send at %v from now %v violates lookahead %v", at, ss.now, p.look))
	}
	ds := p.lpShard[dst]
	ss.outbox[ds] = append(ss.outbox[ds], xmsg{at: at, src: int32(src), fn: fn})
}

// Stop makes Run return once every shard finishes its current event. Which
// pending events have fired when a Stop lands mid-window depends on the
// goroutine interleaving — Stop is a shutdown hatch, not a measurement
// point.
func (p *Parallel) Stop() { p.stopped.Store(true) }

// Processed reports how many events have fired across all shards. Only
// meaningful once Run has returned.
func (p *Parallel) Processed() uint64 {
	var n uint64
	for _, s := range p.shards {
		n += s.nRun
	}
	return n
}

// Run processes events until every heap drains or Stop is called, and
// returns the final virtual time (the maximum over shards). Worker
// goroutines live only for the duration of the call.
func (p *Parallel) Run() Time {
	p.stopped.Store(false)
	var workers sync.WaitGroup
	workers.Add(len(p.shards))
	for _, s := range p.shards {
		s.work = make(chan Time, 1)
		go func(s *pshard) {
			defer workers.Done()
			for horizon := range s.work {
				s.runWindow(horizon, &p.stopped)
				p.windowW.Done()
			}
		}(s)
	}

	const inf = Time(math.MaxInt64)
	for !p.stopped.Load() {
		tmin := inf
		for _, s := range p.shards {
			if len(s.heap) > 0 && s.heap[0].at < tmin {
				tmin = s.heap[0].at
			}
		}
		if tmin == inf {
			break
		}
		horizon := tmin + p.look
		nActive := 0
		var only *pshard
		for _, s := range p.shards {
			if len(s.heap) > 0 && s.heap[0].at < horizon {
				nActive++
				only = s
			}
		}
		if nActive == 1 {
			// A one-shard window needs no handoff; running it inline keeps
			// sparse phases (one machine computing while the rest wait) at
			// sequential-engine cost.
			only.runWindow(horizon, &p.stopped)
		} else {
			p.windowW.Add(nActive)
			for _, s := range p.shards {
				if len(s.heap) > 0 && s.heap[0].at < horizon {
					s.work <- horizon
				}
			}
			p.windowW.Wait()
		}
		p.inject()
	}
	for _, s := range p.shards {
		close(s.work)
	}
	workers.Wait()

	var end Time
	for _, s := range p.shards {
		if s.now > end {
			end = s.now
		}
	}
	return end
}

// inject drains every outbox into the destination heaps in canonical order:
// ascending (timestamp, source LP), ties within one source resolved by send
// order (the stable sort preserves each source's append order). The order
// is a function of the simulation alone — not of the shard count or of
// which goroutine ran when — which is what makes an N-shard run reproduce
// the 1-shard Result.
func (p *Parallel) inject() {
	for ds, dst := range p.shards {
		sc := p.scratch[:0]
		for _, src := range p.shards {
			box := src.outbox[ds]
			sc = append(sc, box...)
			clear(box) // release the buffered closures
			src.outbox[ds] = box[:0]
		}
		if len(sc) > 1 {
			slices.SortStableFunc(sc, func(a, b xmsg) int {
				if a.at != b.at {
					if a.at < b.at {
						return -1
					}
					return 1
				}
				if a.src != b.src {
					if a.src < b.src {
						return -1
					}
					return 1
				}
				return 0
			})
		}
		for i := range sc {
			dst.seq++
			dst.heap.push(event{at: sc[i].at, seq: dst.seq, fn: sc[i].fn})
		}
		clear(sc)
		p.scratch = sc[:0]
	}
}
