package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
)

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := (3 * Millisecond).Millis(); got != 3.0 {
		t.Fatalf("Millis = %v", got)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", got)
	}
	if s := (1500 * Millisecond).String(); s != "1.500000s" {
		t.Fatalf("String = %q", s)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	var eng Engine
	rng := rand.New(rand.NewPCG(7, 9))
	times := make([]Time, 200)
	for i := range times {
		times[i] = Time(rng.IntN(1_000_000))
	}
	var fired []Time
	for _, at := range times {
		at := at
		eng.At(at, func() { fired = append(fired, at) })
	}
	end := eng.Run()

	sorted := append([]Time(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(fired) != len(sorted) {
		t.Fatalf("fired %d events, want %d", len(fired), len(sorted))
	}
	for i := range fired {
		if fired[i] != sorted[i] {
			t.Fatalf("event %d fired at %v, want %v", i, fired[i], sorted[i])
		}
	}
	if end != sorted[len(sorted)-1] {
		t.Fatalf("Run returned %v, want %v", end, sorted[len(sorted)-1])
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	var eng Engine
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		eng.At(1000, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie at same timestamp fired out of order: %v", order)
		}
	}
}

func TestAfterAccumulates(t *testing.T) {
	var eng Engine
	var at Time
	eng.After(10, func() {
		eng.After(5, func() { at = eng.Now() })
	})
	eng.Run()
	if at != 15 {
		t.Fatalf("nested After fired at %v, want 15", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var eng Engine
	eng.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.At(50, func() {})
	})
	eng.Run()
}

func TestRunUntil(t *testing.T) {
	var eng Engine
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		eng.At(at, func() { fired = append(fired, at) })
	}
	if end := eng.RunUntil(25); end != 25 {
		t.Fatalf("RunUntil returned %v, want 25", end)
	}
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", len(fired))
	}
	if eng.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", eng.Pending())
	}
	eng.Run()
	if len(fired) != 4 {
		t.Fatalf("second Run fired %d total, want 4", len(fired))
	}
}

func TestStop(t *testing.T) {
	var eng Engine
	count := 0
	for i := 1; i <= 10; i++ {
		eng.At(Time(i), func() {
			count++
			if count == 3 {
				eng.Stop()
			}
		})
	}
	eng.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt run: %d events fired", count)
	}
	if eng.Pending() != 7 {
		t.Fatalf("pending after Stop = %d, want 7", eng.Pending())
	}
}

func TestProcessedCounter(t *testing.T) {
	var eng Engine
	for i := 0; i < 5; i++ {
		eng.After(Time(i), func() {})
	}
	eng.Run()
	if eng.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", eng.Processed())
	}
}

// TestDeterminism: two identical schedules fire identically.
func TestDeterminism(t *testing.T) {
	runOnce := func() []Time {
		var eng Engine
		rng := rand.New(rand.NewPCG(42, 42))
		var out []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 3 {
				return
			}
			eng.After(Time(rng.IntN(100)), func() {
				out = append(out, eng.Now())
				spawn(depth + 1)
				spawn(depth + 1)
			})
		}
		spawn(0)
		eng.Run()
		return out
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// The engine's scheduling benchmark (engine/event) lives in
// internal/benchmarks, shared with `p3bench bench` and the CI regression
// gate, and runs under go test via the root BenchmarkDispatch driver.

// TestPoppedEventSlotCleared pins the slab-hygiene fix: once an event has
// fired, the heap's backing array must not keep its closure reachable — a
// long-lived engine (the zoo sweeps reuse one per run) would otherwise pin
// every dead closure and whatever it captured until the slab shrank.
func TestPoppedEventSlotCleared(t *testing.T) {
	var eng Engine
	eng.At(1, func() {})
	eng.At(2, func() {})
	eng.Run()
	slab := eng.events[:cap(eng.events)]
	for i, ev := range slab {
		if ev.fn != nil {
			t.Fatalf("slab slot %d still pins a fired event's closure", i)
		}
	}
}

// TestEngineSteadyStateAllocs pins the scheduling cost: re-arming an event
// from within an event (the simulator's universal pattern) must not allocate
// once the slab has grown — container/heap boxed every push into an `any`,
// one heap allocation per event on top of the caller's closure.
func TestEngineSteadyStateAllocs(t *testing.T) {
	var eng Engine
	var tick func()
	n := 0
	tick = func() {
		n++
		if n%2 == 0 {
			eng.After(10, tick) // re-arm with the SAME closure value: no capture alloc
		} else {
			eng.After(5, tick)
		}
	}
	eng.After(1, tick)
	avg := testing.AllocsPerRun(500, func() {
		eng.RunUntil(eng.Now() + 100)
	})
	if avg != 0 {
		t.Fatalf("steady-state event scheduling allocates %.2f per 100-tick window, want 0", avg)
	}
}
