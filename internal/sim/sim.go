// Package sim implements the deterministic discrete-event engine that drives
// every timing experiment in this repository. The engine substitutes for the
// paper's physical four-machine GPU cluster: compute phases, NIC
// serialization, parameter-server processing and scheduling decisions are all
// expressed as events on a virtual clock.
//
// Determinism: events scheduled for the same instant fire in canonical key
// order — ascending (virtual scheduling time, scheduling LP, per-LP
// schedule order) — so a run is a pure function of its inputs (and of any
// explicitly seeded randomness in the workload). For events scheduled
// directly on an Engine the key reduces to plain scheduling order, the
// legacy behavior; the LP components exist so the sharded engine computes
// the identical order (see below).
//
// # Parallel execution, lookahead and the determinism contract
//
// The Exec interface abstracts the engine behind logical processes (LPs):
// Single runs every LP on one Engine — the exact legacy semantics — while
// Parallel shards LPs over goroutines, each shard with its own event heap
// and local clock, synchronized by conservative lookahead. A Parallel run
// remains a pure function of its inputs when the model obeys three rules:
//
//  1. State discipline: an event scheduled on LP p (Proc(p).At/After)
//     touches only state owned by p's shard. Interaction between LPs on
//     different shards goes through Cross.
//  2. Lookahead: every Cross(src, dst, at, fn) satisfies
//     at >= now(src) + lookahead, where lookahead is the minimum cross-LP
//     latency declared at construction (the link propagation delay in this
//     repository's network models). Parallel panics on a violating send and
//     NewParallel rejects a non-positive lookahead outright — a
//     zero-lookahead topology admits no safe window and would otherwise
//     deadlock or corrupt causality silently.
//  3. Canonical ties: shards advance in barrier-synchronous windows
//     [Tmin, Tmin+lookahead); rule 2 guarantees every cross message lands
//     at or past the window's horizon, so no shard can see an event it
//     should have influenced. Every event — local or cross — carries the
//     canonical key (virtual scheduling time, scheduling LP, per-LP
//     schedule order), stamped at the scheduling call from the
//     simulation's own state, and each shard's heap fires same-instant
//     events in key order. A cross message buffered across a barrier
//     keeps the key stamped at its send, so where it lands relative to
//     the destination's local events does not depend on the shard count,
//     the window boundaries, or goroutine interleaving: a local timer and
//     a cross arrival colliding at one instant resolve by who scheduled
//     first on the virtual clock, exactly as on a Single engine, where
//     scheduling-time order is call order. That is what pins an N-shard
//     run's Result — including under scripted fault plans, whose timing
//     perturbations manufacture exactly these collisions — to the 1-shard
//     run's.
//
// Within one shard, same-instant events still fire in scheduling order,
// exactly as on a Single engine.
package sim

import (
	"fmt"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations, mirroring time.Duration conventions on the virtual clock.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromSeconds converts floating-point seconds to a virtual timestamp.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// event is one scheduled callback. Beyond the firing time, it carries the
// canonical tie key: the virtual instant it was scheduled at, and the
// packed (scheduling LP, per-LP schedule order) word. Both engines compute
// the key from the simulation alone, which is what lets same-instant ties
// resolve identically on any shard count (see the package comment).
//
// The struct is kept at 32 bytes deliberately: the heap moves events by
// value, and one more word pushes the copies off the compiler's
// register-move path and triples the per-event cost — which is why lp and
// seq share a word instead of having fields of their own.
//
//p3:sizebudget 32
type event struct {
	at    Time
	sched Time   // virtual time of the scheduling call
	ord   uint64 // ordKey(lp, seq): scheduling LP and per-LP schedule order
	fn    func()
}

// ordKey packs the last two canonical tie components into one word:
// scheduling LP plus one in the high 16 bits — zero marks raw Engine
// scheduling, which therefore sorts before any tagged LP, preserving the
// legacy order — and the per-LP schedule order in the low 48. The packing
// compares exactly like (lp, seq) lexicographically, and its limits
// (65534 LPs, 2^48 events scheduled per LP) sit orders of magnitude above
// any simulation this repository can hold in memory; NewParallel rejects
// LP counts beyond the field width.
func ordKey(lp int32, seq uint64) uint64 { return uint64(lp+1)<<48 | seq }

// eventHeap is a slab-backed binary min-heap of events ordered by the
// canonical key (at, sched, ord): all pending events live by value in
// one contiguous slice that is reused across the run, and the sift code is
// monomorphic — container/heap, which this replaced, boxed every scheduled
// event into an `any` and so cost one heap allocation per event on top of
// the caller's closure. pop clears the vacated slot, so the slab never
// pins a fired event's closure (and the whole object graph it captures)
// for the garbage collector.
type eventHeap []event

func (h eventHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].sched != h[j].sched {
		return h[i].sched < h[j].sched
	}
	return h[i].ord < h[j].ord
}

// push appends ev to the slab and sifts it up.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.before(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the earliest event, clearing the vacated slot.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // the slab must not pin the fired closure
	s = s[:n]
	*h = s
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && s.before(right, left) {
			min = right
		}
		if !s.before(min, i) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	lpSeq   []uint64 // per-LP schedule counters for tagged (Proc/Cross) events
	stopped bool
	nRun    uint64
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently corrupt causality in the simulation. Raw Engine
// scheduling tags the event with the zero LP mark and the engine-wide
// sequence, which reproduces the legacy same-instant behavior exactly:
// calls happen in nondecreasing virtual time, so (sched, seq) order is
// call order.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, sched: e.now, ord: e.seq, fn: fn})
}

// atFrom schedules fn at t with the canonical key of LP lp: the current
// virtual time and lp's own schedule counter. Single's per-LP Proc handles
// and its Cross path land here, so a tagged event carries the same key a
// Parallel run would compute for it.
func (e *Engine) atFrom(lp int32, t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if n := int(lp) + 1; n > len(e.lpSeq) {
		e.lpSeq = append(e.lpSeq, make([]uint64, n-len(e.lpSeq))...)
	}
	e.lpSeq[lp]++
	e.events.push(event{at: t, sched: e.now, ord: ordKey(lp, e.lpSeq[lp]), fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := e.events.pop()
		e.now = ev.at
		e.nRun++
		ev.fn()
	}
	return e.now
}

// RunUntil processes events with timestamps ≤ deadline, advances the clock to
// deadline, and returns it. Events after the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > deadline {
			break
		}
		ev := e.events.pop()
		e.now = ev.at
		e.nRun++
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Reset returns the engine to its zero state while retaining the event
// slab's capacity, so a long-lived engine (the sweep worker pools reuse one
// per worker) does not reallocate and regrow the heap on every run. Pending
// events are dropped and their closures released.
func (e *Engine) Reset() {
	clear(e.events) // drop pending closures; the slab must not pin them
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	clear(e.lpSeq) // keep capacity, zero the per-LP counters
	e.stopped = false
	e.nRun = 0
}
