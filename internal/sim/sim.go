// Package sim implements the deterministic discrete-event engine that drives
// every timing experiment in this repository. The engine substitutes for the
// paper's physical four-machine GPU cluster: compute phases, NIC
// serialization, parameter-server processing and scheduling decisions are all
// expressed as events on a single virtual clock.
//
// Determinism: events scheduled for the same instant fire in scheduling
// order, so a run is a pure function of its inputs (and of any explicitly
// seeded randomness in the workload).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations, mirroring time.Duration conventions on the virtual clock.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromSeconds converts floating-point seconds to a virtual timestamp.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	nRun    uint64
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently corrupt causality in the simulation.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		e.nRun++
		ev.fn()
	}
	return e.now
}

// RunUntil processes events with timestamps ≤ deadline, advances the clock to
// deadline, and returns it. Events after the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > deadline {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		e.nRun++
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
