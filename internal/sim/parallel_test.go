package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// lockstepTrace runs a deterministic multi-LP workload on the given exec
// and returns each LP's observed (time, tag) sequence. Every LP relays a
// token around the ring with a per-hop delay of at least the lookahead, at
// staggered points fans a burst out to every other LP at one shared
// timestamp, and schedules local timers on the same quantized grid the
// bursts land on — so cross arrivals collide both with each other and
// with locally scheduled events at one (LP, instant), exercising every
// class of canonical tie.
func lockstepTrace(t *testing.T, mk func(nLP int, look Time) Exec) [][]string {
	t.Helper()
	const (
		nLP  = 6
		look = Time(40)
		hops = 120
	)
	x := mk(nLP, look)
	traces := make([][]string, nLP)
	procs := make([]Proc, nLP)
	for lp := 0; lp < nLP; lp++ {
		procs[lp] = x.Proc(lp)
	}
	// Quantizing burst and timer targets onto one grid manufactures exact
	// collisions between cross arrivals and local events.
	grid := func(t Time) Time { return (t + 63) / 64 * 64 }
	var relay func(lp, hop int) func()
	relay = func(lp, hop int) func() {
		return func() {
			traces[lp] = append(traces[lp], fmt.Sprintf("%d@%d", hop, procs[lp].Now()))
			if hop >= hops {
				return
			}
			next := (lp + 1) % nLP
			// Per-hop jitter derived from the inputs alone.
			d := look + Time((lp*7+hop*13)%29)
			x.Cross(lp, next, procs[lp].Now()+d, relay(next, hop+1))
			// A local timer on the shared grid: it ties with whatever
			// bursts land on the same grid point at this LP, the
			// local-versus-cross collision class.
			tick := grid(procs[lp].Now() + 2*look)
			procs[lp].At(tick, func() {
				traces[lp] = append(traces[lp], fmt.Sprintf("tick%d@%d", hop, procs[lp].Now()))
			})
			if hop%10 == lp {
				// Fan a burst out to every LP at one shared grid instant:
				// same-timestamp arrivals from one source at many
				// destinations, and (across bursting LPs) at the same
				// destination.
				at := grid(procs[lp].Now() + 4*look)
				for dst := 0; dst < nLP; dst++ {
					if dst == lp {
						continue
					}
					dst := dst
					x.Cross(lp, dst, at, func() {
						traces[dst] = append(traces[dst], fmt.Sprintf("burst%d@%d", lp, procs[dst].Now()))
					})
				}
			}
		}
	}
	for lp := 0; lp < nLP; lp++ {
		procs[lp].At(Time(lp), relay(lp, 0))
	}
	x.Run()
	return traces
}

// TestParallelMatchesSingleTrace pins the determinism contract at the
// engine level: per-LP event sequences of a sharded run equal the
// single-engine run's, for several shard counts, including the
// same-instant multi-source bursts.
func TestParallelMatchesSingleTrace(t *testing.T) {
	want := lockstepTrace(t, func(nLP int, look Time) Exec {
		return Single{Eng: &Engine{}}
	})
	for _, shards := range []int{2, 3, 4, 6} {
		got := lockstepTrace(t, func(nLP int, look Time) Exec {
			lpShard := make([]int, nLP)
			for lp := range lpShard {
				lpShard[lp] = lp * shards / nLP
			}
			p, err := NewParallel(shards, lpShard, look)
			if err != nil {
				t.Fatal(err)
			}
			return p
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d-shard trace diverges from single-engine trace:\n got %v\nwant %v", shards, got, want)
		}
	}
}

func TestParallelZeroLookaheadRejected(t *testing.T) {
	_, err := NewParallel(2, []int{0, 1}, 0)
	if err == nil {
		t.Fatal("NewParallel accepted a zero lookahead")
	}
	if !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("unhelpful zero-lookahead error: %v", err)
	}
	if _, err := NewParallel(2, []int{0, 2}, 10); err == nil {
		t.Fatal("NewParallel accepted an out-of-range shard assignment")
	}
}

func TestParallelCrossBelowLookaheadPanics(t *testing.T) {
	p, err := NewParallel(2, []int{0, 1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	p.Proc(0).At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-shard send below the lookahead did not panic")
			}
			p.Stop()
		}()
		p.Cross(0, 1, p.Proc(0).Now()+10, func() {})
	})
	p.Run()
}

// TestParallelStopFromShardEvent pins that Stop called from inside a shard
// event halts the run without deadlocking the barrier protocol, and leaves
// unfired events pending.
func TestParallelStopFromShardEvent(t *testing.T) {
	const nLP = 4
	lpShard := []int{0, 1, 2, 3}
	p, err := NewParallel(4, lpShard, 25)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	var relay func(lp, hop int) func()
	relay = func(lp, hop int) func() {
		return func() {
			// Only LP 0's chain counts and stops, so the counter stays
			// unshared; the other chains just keep the shards busy.
			if lp == 0 {
				fired++
				if fired == 5 {
					p.Stop()
					return
				}
			}
			p.Cross(lp, lp, p.Proc(lp).Now()+25, relay(lp, hop+1))
		}
	}
	for lp := 0; lp < nLP; lp++ {
		p.Proc(lp).At(0, relay(lp, 0))
	}
	p.Run()
	if fired != 5 {
		t.Fatalf("Stop did not halt the run promptly: %d counted events fired", fired)
	}
}

// TestParallelConcurrentCrossSends floods the outboxes from every shard at
// once — the -race exercise for the barrier protocol: shards write only
// their own outbox rows during a window, the coordinator drains them only
// at the barrier.
func TestParallelConcurrentCrossSends(t *testing.T) {
	const (
		nLP    = 8
		shards = 8
		rounds = 200
	)
	lpShard := make([]int, nLP)
	for lp := range lpShard {
		lpShard[lp] = lp % shards
	}
	p, err := NewParallel(shards, lpShard, 10)
	if err != nil {
		t.Fatal(err)
	}
	received := make([]int, nLP) // per-LP, shard-owned
	var step func(lp, round int) func()
	step = func(lp, round int) func() {
		return func() {
			received[lp]++
			if round >= rounds {
				return
			}
			// Each chain relays to a rotating destination at one shared
			// instant: every window has all shards executing and all
			// outbox rows in use simultaneously.
			dst := (lp + round + 1) % nLP
			p.Cross(lp, dst, p.Proc(lp).Now()+10, step(dst, round+1))
		}
	}
	for lp := 0; lp < nLP; lp++ {
		p.Proc(lp).At(0, step(lp, 0))
	}
	p.Run()
	total := 0
	for _, n := range received {
		total += n
	}
	if want := nLP * (rounds + 1); total != want {
		t.Fatalf("received %d events, want %d", total, want)
	}
	if uint64(total) != p.Processed() {
		t.Fatalf("received %d events, engine processed %d", total, p.Processed())
	}
}

func TestEngineReset(t *testing.T) {
	var eng Engine
	for i := 0; i < 100; i++ {
		eng.At(Time(i), func() {})
	}
	eng.RunUntil(50)
	grown := cap(eng.events)
	eng.Reset()
	if eng.Pending() != 0 || eng.Now() != 0 || eng.Processed() != 0 {
		t.Fatalf("Reset left state: pending %d now %v processed %d", eng.Pending(), eng.Now(), eng.Processed())
	}
	if cap(eng.events) != grown {
		t.Fatalf("Reset dropped the slab: cap %d, want %d", cap(eng.events), grown)
	}
	slab := eng.events[:cap(eng.events)]
	for i, ev := range slab {
		if ev.fn != nil {
			t.Fatalf("Reset left slab slot %d pinning a closure", i)
		}
	}
	// The engine is fully reusable: a fresh schedule runs as on a new engine.
	var fired []Time
	for _, at := range []Time{5, 1, 3} {
		at := at
		eng.At(at, func() { fired = append(fired, at) })
	}
	eng.Run()
	if len(fired) != 3 || fired[0] != 1 || fired[2] != 5 {
		t.Fatalf("post-Reset run fired %v", fired)
	}
}
