// Package experiments regenerates every table and figure of the paper's
// evaluation section (Figures 5 and 7-15, plus the Section 5.3 headline
// speedups). Each experiment returns structured Figure values that the
// cmd/p3bench tool and the root benchmarks render as TSV series and ASCII
// plots, side by side with the paper's reference numbers.
package experiments

import (
	"fmt"

	"p3/internal/cluster"
	"p3/internal/model"
	"p3/internal/strategy"
	"p3/internal/trace"
	"p3/internal/zoo"
)

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is the reproduction of one paper figure (or sub-figure).
type Figure struct {
	ID     string // e.g. "fig7a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carries paper-reference values and reproduction caveats.
	Notes []string
}

// Options tunes experiment cost. The zero value reproduces the full paper
// grids; Fast trims sweeps for tests and smoke runs.
type Options struct {
	Fast bool
	// Seed for workload jitter; runs are deterministic per seed.
	Seed int64
	// Shards selects the cluster simulator's engine: <= 1 runs the legacy
	// single-heap engine, >= 2 the conservative-lookahead parallel engine
	// with that many shards. Results are bit-identical either way (the
	// determinism contract in internal/sim); shards only buy wall-clock on
	// multi-core runners, and recorder-backed utilization figures always
	// run single-shard.
	Shards int
}

func (o Options) iters() (warm, measure int) {
	if o.Fast {
		return 1, 3
	}
	return 2, 8
}

// run executes one simulated configuration.
func run(m *model.Model, s strategy.Strategy, machines int, gbps float64, o Options, rec *trace.Recorder) cluster.Result {
	warm, measure := o.iters()
	shards := o.Shards
	if rec != nil {
		shards = 0 // utilization buckets need the single-shard engine
	}
	return cluster.Run(cluster.Config{
		Model:         m,
		Machines:      machines,
		Strategy:      s,
		BandwidthGbps: gbps,
		WarmupIters:   warm,
		MeasureIters:  measure,
		Seed:          o.Seed + 1,
		Recorder:      rec,
		Shards:        shards,
	})
}

// runPreempt is run with an egress preemption quantum (0 = off) and no
// recorder.
func runPreempt(m *model.Model, s strategy.Strategy, machines int, gbps float64, preempt int64, o Options) cluster.Result {
	warm, measure := o.iters()
	return cluster.Run(cluster.Config{
		Model:          m,
		Machines:       machines,
		Strategy:       s,
		BandwidthGbps:  gbps,
		PreemptQuantum: preempt,
		WarmupIters:    warm,
		MeasureIters:   measure,
		Seed:           o.Seed + 1,
	})
}

// awsModel derives the AWS g3.4xlarge variant of a model used by the
// scalability study (Section 5.5): the paper's Figure 10 was measured on
// M60 GPUs, roughly half the P4000 throughput of the Figure 7 testbed
// (0.6x for the LSTM-bound Sockeye).
func awsModel(m *model.Model) *model.Model {
	clone := *m
	factor := 0.5
	if m.Name == "sockeye" {
		factor = 0.6
	}
	clone.PlateauPerWorker = m.PlateauPerWorker * factor
	return &clone
}

// Fig5 reproduces Figure 5: the per-tensor parameter distribution of
// ResNet-50, VGG-19 and Sockeye.
func Fig5(o Options) []*Figure {
	var figs []*Figure
	sub := 'a'
	for _, name := range []string{"resnet50", "vgg19", "sockeye"} {
		m := zoo.ByName(name)
		x := make([]float64, len(m.Layers))
		y := make([]float64, len(m.Layers))
		for i, l := range m.Layers {
			x[i] = float64(i)
			y[i] = float64(l.Params) / 1e6
		}
		figs = append(figs, &Figure{
			ID:     fmt.Sprintf("fig5%c", sub),
			Title:  fmt.Sprintf("Parameter distribution: %s (%d tensors, %.2fM params)", m.Name, len(m.Layers), float64(m.TotalParams())/1e6),
			XLabel: "layer index",
			YLabel: "params (millions)",
			Series: []Series{{Name: m.Name, X: x, Y: y}},
			Notes: []string{
				"paper: ResNet-50 all tensors < 2.4M; VGG-19 fc6 = 71.5% of model; Sockeye heaviest tensor is the initial embedding",
			},
		})
		sub++
	}
	return figs
}

// fig7Grid returns the bandwidth grid for a model (Gbps).
func fig7Grid(name string, fast bool) []float64 {
	switch name {
	case "resnet50", "inception3":
		if fast {
			return []float64{2, 4, 8}
		}
		return []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	default: // vgg19, sockeye: the paper sweeps to 30 Gbps
		if fast {
			return []float64{4, 15, 30}
		}
		return []float64{1, 2, 4, 6, 8, 10, 15, 20, 25, 30}
	}
}

// Fig7 reproduces Figure 7: per-machine training throughput vs network
// bandwidth for Baseline, Slicing and P3 on a four-machine cluster.
func Fig7(o Options) []*Figure {
	names := []string{"resnet50", "inception3", "vgg19", "sockeye"}
	notes := map[string]string{
		"resnet50":   "paper: baseline degrades below 6 Gbps, P3 linear to 4 Gbps, max speedup 26% at 4 Gbps",
		"inception3": "paper: max speedup 18%; slicing alone does not help (small tensors)",
		"vgg19":      "paper: slicing +49% at 30 Gbps, P3 +66% at 15 Gbps",
		"sockeye":    "paper: max speedup 38%; heavy *initial* layer",
	}
	strategies := []strategy.Strategy{strategy.Baseline(), strategy.SlicingOnly(0), strategy.P3(0)}
	var figs []*Figure
	sub := 'a'
	for _, name := range names {
		m := zoo.ByName(name)
		grid := fig7Grid(name, o.Fast)
		fig := &Figure{
			ID:     fmt.Sprintf("fig7%c", sub),
			Title:  fmt.Sprintf("Bandwidth vs throughput: %s (4 machines)", name),
			XLabel: "bandwidth (Gbps)",
			YLabel: fmt.Sprintf("throughput (%s/sec per machine)", m.SampleUnit),
			Notes:  []string{notes[name]},
		}
		// The (strategy, bandwidth) cells are independent pure simulations:
		// fill a flat grid on the worker pool, then slice it into series.
		ys := make([]float64, len(strategies)*len(grid))
		parEach(len(ys), func(i int) {
			r := run(zoo.ByName(name), strategies[i/len(grid)], 4, grid[i%len(grid)], o, nil)
			ys[i] = r.Throughput / float64(r.Machines)
		})
		for si, s := range strategies {
			series := Series{Name: s.Name, X: append([]float64(nil), grid...)}
			series.Y = ys[si*len(grid) : (si+1)*len(grid)]
			fig.Series = append(fig.Series, series)
		}
		figs = append(figs, fig)
		sub++
	}
	return figs
}

// utilConfig is one sub-figure of the network-utilization studies.
type utilConfig struct {
	model string
	gbps  float64
}

var utilConfigs = []utilConfig{
	{"resnet50", 4},
	{"vgg19", 15},
	{"sockeye", 4},
}

// utilizationFigure runs one strategy/model/bandwidth configuration and
// extracts machine 0's inbound/outbound Gbps series (10 ms buckets), as
// measured by bwm-ng in the paper.
func utilizationFigure(id, title string, m *model.Model, s strategy.Strategy, gbps float64, o Options, note string) *Figure {
	rec := trace.NewRecorder(4, 0)
	r := run(m, s, 4, gbps, o, rec)
	skip := int(r.WarmupEnd / rec.Bucket())
	out := rec.Gbps(0, trace.Out)
	in := rec.Gbps(0, trace.In)
	maxBuckets := 250
	clip := func(xs []float64) []float64 {
		if skip < len(xs) {
			xs = xs[skip:]
		} else {
			xs = nil
		}
		if len(xs) > maxBuckets {
			xs = xs[:maxBuckets]
		}
		return xs
	}
	out, in = clip(out), clip(in)
	mk := func(name string, ys []float64) Series {
		xs := make([]float64, len(ys))
		for i := range xs {
			xs[i] = float64(i)
		}
		return Series{Name: name, X: xs, Y: ys}
	}
	return &Figure{
		ID:     id,
		Title:  title,
		XLabel: "time (10 ms buckets)",
		YLabel: "usage (Gbps)",
		Series: []Series{mk("outbound", out), mk("inbound", in)},
		Notes:  []string{note},
	}
}

// Fig8 reproduces Figure 8: baseline network utilization (bursty, poorly
// overlapped bidirectional traffic).
func Fig8(o Options) []*Figure {
	var figs []*Figure
	sub := 'a'
	for _, uc := range utilConfigs {
		m := zoo.ByName(uc.model)
		figs = append(figs, utilizationFigure(
			fmt.Sprintf("fig8%c", sub),
			fmt.Sprintf("Baseline network utilization: %s at %gGbps", uc.model, uc.gbps),
			m, strategy.Baseline(), uc.gbps, o,
			"paper: bursty traffic, long idle gaps, inbound/outbound not overlapped"))
		sub++
	}
	return figs
}

// Fig9 reproduces Figure 9: P3's network utilization (smoother, overlapped
// bidirectional traffic, reduced idle time).
func Fig9(o Options) []*Figure {
	var figs []*Figure
	sub := 'a'
	for _, uc := range utilConfigs {
		m := zoo.ByName(uc.model)
		figs = append(figs, utilizationFigure(
			fmt.Sprintf("fig9%c", sub),
			fmt.Sprintf("P3 network utilization: %s at %gGbps", uc.model, uc.gbps),
			m, strategy.P3(0), uc.gbps, o,
			"paper: reduced idle time, bidirectional bandwidth used simultaneously"))
		sub++
	}
	return figs
}

// Fig10 reproduces Figure 10: aggregate throughput scaling with cluster
// size (2-16 machines) on a 10 Gbps AWS-like network.
func Fig10(o Options) []*Figure {
	names := []string{"resnet50", "vgg19", "sockeye"}
	notes := map[string]string{
		"resnet50": "paper: baseline == P3 (10 Gbps is enough for ResNet-50)",
		"vgg19":    "paper: up to +61% on an 8-machine cluster",
		"sockeye":  "paper: up to +18% on an 8-machine cluster; LSTMs scale poorly",
	}
	sizes := []int{2, 4, 8, 16}
	if o.Fast {
		sizes = []int{2, 8}
	}
	var figs []*Figure
	sub := 'a'
	for _, name := range names {
		m := awsModel(zoo.ByName(name))
		fig := &Figure{
			ID:     fmt.Sprintf("fig10%c", sub),
			Title:  fmt.Sprintf("Scalability: %s @10Gbps (AWS g3.4xlarge profile)", name),
			XLabel: "cluster size (machines)",
			YLabel: fmt.Sprintf("aggregate throughput (%s/sec)", m.SampleUnit),
			Notes:  []string{notes[name]},
		}
		strategies := []strategy.Strategy{strategy.Baseline(), strategy.P3(0)}
		ys := make([]float64, len(strategies)*len(sizes))
		parEach(len(ys), func(i int) {
			r := run(awsModel(zoo.ByName(name)), strategies[i/len(sizes)], sizes[i%len(sizes)], 10, o, nil)
			ys[i] = r.Throughput
		})
		for si, s := range strategies {
			series := Series{Name: s.Name}
			for ni, n := range sizes {
				series.X = append(series.X, float64(n))
				series.Y = append(series.Y, ys[si*len(sizes)+ni])
			}
			fig.Series = append(fig.Series, series)
		}
		figs = append(figs, fig)
		sub++
	}
	return figs
}

// Fig12 reproduces Figure 12: P3 throughput vs slice size.
func Fig12(o Options) []*Figure {
	sizes := []int64{1000, 2000, 5000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000}
	if o.Fast {
		sizes = []int64{1000, 50_000, 1_000_000}
	}
	var figs []*Figure
	sub := 'a'
	for _, uc := range utilConfigs {
		m := zoo.ByName(uc.model)
		fig := &Figure{
			ID:     fmt.Sprintf("fig12%c", sub),
			Title:  fmt.Sprintf("Slice size vs throughput: %s at %gGbps", uc.model, uc.gbps),
			XLabel: "slice size (parameters)",
			YLabel: fmt.Sprintf("throughput (%s/sec per machine)", m.SampleUnit),
			Notes:  []string{"paper: peak at 50,000 parameters; overhead dominates below, pipelining degrades above"},
		}
		series := Series{Name: "p3"}
		for _, sz := range sizes {
			r := run(m, strategy.P3(sz), 4, uc.gbps, o, nil)
			series.X = append(series.X, float64(sz))
			series.Y = append(series.Y, r.Throughput/float64(r.Machines))
		}
		fig.Series = append(fig.Series, series)
		figs = append(figs, fig)
		sub++
	}
	return figs
}

// Fig13 reproduces Appendix Figure 13: TensorFlow-style synchronization's
// network utilization on ResNet-50 at 4 Gbps.
func Fig13(o Options) []*Figure {
	return []*Figure{utilizationFigure(
		"fig13", "TensorFlow-style network utilization: resnet50 at 4Gbps",
		zoo.ByName("resnet50"), strategy.TFStyle(), 4, o,
		"paper: bursty; pulls deferred to the next iteration leave inbound idle during backprop")}
}

// Fig14 reproduces Appendix Figure 14: Poseidon-style WFBP network
// utilization on InceptionV3 at 1 Gbps.
func Fig14(o Options) []*Figure {
	return []*Figure{utilizationFigure(
		"fig14", "Poseidon-style (WFBP) network utilization: inception3 at 1Gbps",
		zoo.ByName("inception3"), strategy.WFBP(), 1, o,
		"paper: layer-granularity WFBP also utilizes the network poorly under bandwidth constraints")}
}

// HeadlineRow is one model's Section 5.3 summary speedup.
type HeadlineRow struct {
	Model         string
	BandwidthGbps float64
	Baseline      float64 // per-machine samples/sec
	Slicing       float64
	P3            float64
	SpeedupPct    float64 // P3 vs baseline
	PaperPct      float64
}

// Headline reproduces the Section 5.3 headline numbers: the P3 speedup at
// the bandwidth the paper quotes for each model.
func Headline(o Options) []HeadlineRow {
	cases := []struct {
		model string
		gbps  float64
		paper float64
	}{
		{"resnet50", 4, 26},
		{"inception3", 4, 18},
		{"vgg19", 15, 66},
		{"sockeye", 4, 38},
	}
	// All 12 (model, strategy) runs are independent pure simulations: fill a
	// flat grid on the worker pool, then assemble rows in case order.
	strategies := []strategy.Strategy{strategy.Baseline(), strategy.SlicingOnly(0), strategy.P3(0)}
	grid := make([]cluster.Result, len(cases)*len(strategies))
	parEach(len(grid), func(i int) {
		c := cases[i/len(strategies)]
		grid[i] = run(zoo.ByName(c.model), strategies[i%len(strategies)], 4, c.gbps, o, nil)
	})
	rows := make([]HeadlineRow, 0, len(cases))
	for ci, c := range cases {
		base := grid[ci*len(strategies)+0]
		slic := grid[ci*len(strategies)+1]
		p3 := grid[ci*len(strategies)+2]
		rows = append(rows, HeadlineRow{
			Model:         c.model,
			BandwidthGbps: c.gbps,
			Baseline:      base.Throughput / 4,
			Slicing:       slic.Throughput / 4,
			P3:            p3.Throughput / 4,
			SpeedupPct:    (p3.Throughput/base.Throughput - 1) * 100,
			PaperPct:      c.paper,
		})
	}
	return rows
}
