package experiments

import "testing"

// TestFaultSweepFast runs the trimmed fault sweep and checks the table's
// structural invariants: every discipline runs every scenario, clean cells
// define the 100% baseline and inject nothing, crash cells actually
// exercise the failover path (failovers and lost reductions recorded), and
// the non-crash scenarios recover every reduction.
func TestFaultSweepFast(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep in -short mode")
	}
	rows := Faults(Options{Fast: true, Seed: 1, Shards: 2})
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12 (3 disciplines x 4 scenarios)", len(rows))
	}
	seen := map[string]map[string]FaultRow{}
	for _, r := range rows {
		if r.PerMachine <= 0 || r.IterMs <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.RetainedPct <= 0 || r.RetainedPct > 120 {
			t.Errorf("retained_pct out of range: %+v", r)
		}
		if seen[r.Sched] == nil {
			seen[r.Sched] = map[string]FaultRow{}
		}
		seen[r.Sched][r.Scenario] = r
	}
	for _, sched := range []string{"fifo", "damped", "credit"} {
		cells := seen[sched]
		for _, scenario := range []string{"clean", "straggler", "agg-crash", "nic-degrade"} {
			r, ok := cells[scenario]
			if !ok {
				t.Fatalf("missing cell %s/%s", sched, scenario)
			}
			switch scenario {
			case "agg-crash":
				if r.Failovers == 0 || r.Lost == 0 {
					t.Errorf("%s/agg-crash recorded %d failovers, %d lost reductions — the crash never exercised the failover path",
						sched, r.Failovers, r.Lost)
				}
			case "clean":
				if r.RetainedPct != 100 {
					t.Errorf("%s/clean retained %.1f%%, want exactly 100 (it is its own baseline)", sched, r.RetainedPct)
				}
				fallthrough
			default:
				if r.Failovers != 0 || r.Lost != 0 {
					t.Errorf("%s/%s recorded %d failovers, %d lost reductions without an aggregator crash",
						sched, scenario, r.Failovers, r.Lost)
				}
			}
		}
	}
	if FaultsTable(rows) == "" {
		t.Error("empty table")
	}
}

// TestFaultGracefulDegradationFinding pins the graceful-degradation
// ordering measured on this tree at the full 64-machine cell
// (resnet50 @1.5Gbps, 4 racks of 16 behind a 4:1 core, rack aggregation):
//
//   - The 1.5x compute straggler is absorbed almost entirely by every
//     discipline (fifo 99.5% / damped 99.0% / credit 99.8% retained when
//     captured) — in the comm-bound regime the straggler's extra compute
//     hides under everyone else's transfers, so the priority disciplines
//     degrade exactly as gracefully as fifo: nobody pays.
//   - Under the half-rate NIC the credit window degrades most gracefully
//     (83.4% retained vs fifo 77.6% / damped 77.3%): bounding in-flight
//     bytes keeps the slowed link's queue shallow instead of letting the
//     backlog snowball.
//   - Under the permanent aggregator crash the same window becomes the
//     liability: credit retained 8.3% vs fifo 16.6% / damped 15.5%. The
//     crashed rack's workers fail over to direct cross-core pushes whose
//     delivery latency is tens of times the healthy in-rack path's, and a
//     fixed window sized for the healthy path's round-trip throttles the
//     inflated one — the classic static-window/BDP mismatch, and the
//     measured motivation for adaptive windows in the self-tuning
//     roadmap item. All three disciplines complete the run via failover.
//
// The assertions are directional with margin (thresholds, strict
// orderings), not bit-pinned, so unrelated timing shifts don't thrash
// them; if a future discipline or recovery change flips one, re-measure
// and re-pin.
func TestFaultGracefulDegradationFinding(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("full 64-machine fault sweep is for the non-race suite")
	}
	rows := Faults(Options{Seed: 1, Shards: 4})
	cell := map[string]map[string]FaultRow{}
	for _, r := range rows {
		if cell[r.Sched] == nil {
			cell[r.Sched] = map[string]FaultRow{}
		}
		cell[r.Sched][r.Scenario] = r
		t.Logf("%s/%s: %.1f samples/s/machine, retained %.1f%%, %d failovers, %d lost",
			r.Sched, r.Scenario, r.PerMachine, r.RetainedPct, r.Failovers, r.Lost)
	}
	for _, sched := range []string{"fifo", "damped", "credit"} {
		if got := cell[sched]["straggler"].RetainedPct; got < 95 {
			t.Errorf("%s retained %.1f%% under the 1.5x straggler, want >= 95 — the comm-bound regime stopped hiding the straggler, re-pin",
				sched, got)
		}
		crash := cell[sched]["agg-crash"]
		if crash.RetainedPct <= 1 || crash.RetainedPct >= 50 {
			t.Errorf("%s retained %.1f%% under the permanent aggregator crash, want a degraded-but-alive run in (1, 50) — re-measure",
				sched, crash.RetainedPct)
		}
	}
	fifoNic := cell["fifo"]["nic-degrade"].RetainedPct
	creditNic := cell["credit"]["nic-degrade"].RetainedPct
	if creditNic <= fifoNic {
		t.Errorf("credit retained %.1f%% under the half-rate NIC vs fifo's %.1f%% — the windowed-degradation ordering flipped, re-pin",
			creditNic, fifoNic)
	}
	fifoCrash := cell["fifo"]["agg-crash"].RetainedPct
	creditCrash := cell["credit"]["agg-crash"].RetainedPct
	if fifoCrash <= creditCrash {
		t.Errorf("fifo retained %.1f%% under the aggregator crash vs credit's %.1f%% — the static-window/BDP-mismatch finding flipped; if an adaptive window fixed it, re-pin",
			fifoCrash, creditCrash)
	}
}
