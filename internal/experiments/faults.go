package experiments

import (
	"fmt"
	"time"

	"p3/internal/cluster"
	"p3/internal/faults"
	"p3/internal/netsim"
	"p3/internal/sim"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// FaultRow is one cell of the fault-injection sweep: a rack-aggregated
// cluster driven through a scripted fault scenario under one wire
// discipline.
type FaultRow struct {
	Model    string
	Machines int
	RackSize int
	Sched    string
	// Scenario names the injected fault: "clean" (no plan), "straggler"
	// (one machine computes 1.5x slower for the whole run), "agg-crash"
	// (rack 1's aggregator is down from 100 ms on; every affected reduction
	// rides the timeout/re-push failover), "nic-degrade" (machine 1's NIC
	// runs at half rate for the whole run — the host link is the bottleneck
	// resource once aggregation has thinned the core traffic).
	Scenario string
	// PerMachine is per-machine training throughput (samples/sec);
	// RetainedPct is that throughput as a percentage of the same
	// discipline's clean cell — the graceful-degradation measure.
	PerMachine  float64
	RetainedPct float64
	IterMs      float64
	Failovers   int64
	Lost        int64
	Events      uint64
	WallMs      float64
}

// faultScenario pairs a scenario name with its plan builder (nil = clean).
type faultScenario struct {
	name string
	plan func() *faults.Plan
}

// faultHorizonNs bounds the finite-window scenarios (straggler,
// link-degrade require Until > At): far past the end of their runs, so
// whole-run windows behave as permanent. The crash scenario must NOT use
// it — a wedged recovery can push the sim clock past any finite horizon,
// silently restarting the aggregator mid-measurement — so it uses the
// explicit permanent form (Until 0) instead.
const faultHorizonNs = int64(60e9)

// Faults sweeps scripted fault scenarios against the wire disciplines on a
// rack-aggregated cluster: the same 4:1-oversubscribed topology as the
// rack sweep's fast rows, one server and aggregator per rack, with the
// paper's fifo baseline against the damped priority discipline and the
// credit window. Each discipline runs every scenario; RetainedPct compares
// each faulted cell against the same discipline's clean cell, making the
// graceful-degradation ordering directly readable from the table.
func Faults(o Options) []FaultRow {
	warm, measure := o.iters()
	const model = "resnet50"
	const gbps = 1.5
	machines, rackSize := 64, 16
	if o.Fast {
		machines = 32
	}
	racks := machines / rackSize
	scheds := []string{"fifo", "damped", "credit"}
	scenarios := []faultScenario{
		{name: "clean", plan: nil},
		{name: "straggler", plan: func() *faults.Plan {
			return &faults.Plan{Events: []faults.Event{
				{Kind: faults.KindStraggler, At: 0, Until: faultHorizonNs, Machine: 1, Factor: 1.5},
			}}
		}},
		{name: "agg-crash", plan: func() *faults.Plan {
			return &faults.Plan{DetectNs: 2e6, TimeoutNs: 10e6, Events: []faults.Event{
				{Kind: faults.KindAggCrash, At: 100e6, Tier: faults.TierRack, Index: 1},
			}}
		}},
		{name: "nic-degrade", plan: func() *faults.Plan {
			return &faults.Plan{Events: []faults.Event{
				{Kind: faults.KindLinkDegrade, At: 0, Until: faultHorizonNs, Link: faults.LinkHost, Index: 1, Factor: 0.5},
			}}
		}},
	}
	type cell struct {
		sched    string
		scenario faultScenario
	}
	var cells []cell
	for _, sc := range scheds {
		for _, fs := range scenarios {
			cells = append(cells, cell{sched: sc, scenario: fs})
		}
	}
	rows := make([]FaultRow, len(cells))
	parEachEngine(len(cells), func(i int, eng *sim.Engine) {
		c := cells[i]
		st, err := strategy.SlicingOnly(0).WithSched(c.sched)
		if err != nil {
			panic(err)
		}
		st.Name = "sliced+" + c.sched
		var plan *faults.Plan
		if c.scenario.plan != nil {
			plan = c.scenario.plan()
		}
		//p3:wallclock-ok WallMs reports real simulator throughput
		t0 := time.Now()
		r := cluster.Run(cluster.Config{
			Model: zoo.ByName(model), Machines: machines, Servers: racks,
			Strategy: st, BandwidthGbps: gbps,
			WarmupIters: warm, MeasureIters: measure, Seed: o.Seed + 1,
			Topology:        netsim.Topology{RackSize: rackSize, CoreOversub: 4},
			ServerMachines:  rackPlacement("spread", racks, machines, rackSize),
			RackAggregation: true,
			Faults:          plan,
			Engine:          eng, Shards: o.Shards,
		})
		rows[i] = FaultRow{
			Model: model, Machines: machines, RackSize: rackSize,
			Sched: c.sched, Scenario: c.scenario.name,
			PerMachine: r.Throughput / float64(r.Machines),
			IterMs:     r.MeanIterTime.Millis(),
			Failovers:  r.AggFailovers,
			Lost:       r.LostReductions,
			Events:     r.Events,
			WallMs:     float64(time.Since(t0).Microseconds()) / 1000, //p3:wallclock-ok WallMs reports real simulator throughput
		}
	})
	// RetainedPct normalizes each faulted cell by its discipline's clean
	// cell — cells run in parallel, so the normalization is a second pass.
	clean := map[string]float64{}
	for _, r := range rows {
		if r.Scenario == "clean" {
			clean[r.Sched] = r.PerMachine
		}
	}
	for i := range rows {
		if base := clean[rows[i].Sched]; base > 0 {
			rows[i].RetainedPct = 100 * rows[i].PerMachine / base
		}
	}
	return rows
}

// FaultsTable renders the fault sweep, one line per cell.
func FaultsTable(rows []FaultRow) string {
	out := "model\tmachines\track\tsched\tscenario\tsamples/s/machine\tretained_pct\titer_ms\tfailovers\tlost\tevents\tsim_wall_ms\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s\t%d\t%d\t%s\t%s\t%.1f\t%.1f\t%.2f\t%d\t%d\t%d\t%.1f\n",
			r.Model, r.Machines, r.RackSize, r.Sched, r.Scenario,
			r.PerMachine, r.RetainedPct, r.IterMs, r.Failovers, r.Lost, r.Events, r.WallMs)
	}
	return out
}
