//go:build race

package experiments

// raceEnabled reports whether the race detector instruments this build;
// multi-million-event simulations are an order of magnitude slower under it
// and are left to the dedicated non-race CI step.
const raceEnabled = true
