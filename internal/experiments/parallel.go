package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"p3/internal/sim"
)

// parEach runs fn(i) for every i in [0, n) on a worker pool sized to
// GOMAXPROCS, and returns once all calls completed. Every simulated
// configuration in this package is a pure function of its config (own
// engine, own network, own discipline instances; the zoo builds a fresh
// model per call), so sweeps parallelize freely: callers pre-build a flat
// cell list, let parEach fill one result slot per index, and keep their
// output order — and therefore every table and golden — bit-identical to
// the serial sweep. Work is handed out by an atomic counter rather than
// pre-sliced ranges because cell costs vary wildly (a 64-machine cell costs
// ~100x a 4-machine one); the counter keeps every core busy until the tail.
//
// On a single-core runner (GOMAXPROCS=1) it degrades to a plain loop with
// no goroutines at all, so serial debugging and deterministic profiling
// stay trivial.
func parEach(n int, fn func(i int)) {
	parEachEngine(n, func(i int, _ *sim.Engine) { fn(i) })
}

// parEachEngine is parEach with one reusable simulation engine per worker:
// fn receives the engine owned by the worker running it, to hand to
// cluster.Config.Engine / ring.Config.Engine. The simulator resets the
// engine (retaining its event slab) at the start of every run, so a sweep
// grows each worker's heap once instead of re-growing it for every cell.
// The engine must not outlive the call that received it.
func parEachEngine(n int, fn func(i int, eng *sim.Engine)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		eng := &sim.Engine{}
		for i := 0; i < n; i++ {
			fn(i, eng)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			eng := &sim.Engine{}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i, eng)
			}
		}()
	}
	wg.Wait()
}
