package experiments

import (
	"fmt"

	"p3/internal/cluster"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// SensitivityRow is one configuration of the Appendix A.7 customization
// study: varying the server count or the per-machine batch size.
type SensitivityRow struct {
	Knob     string
	Value    int
	Baseline float64 // per-machine samples/sec
	P3       float64
	GainPct  float64
}

// Sensitivity sweeps the two knobs the paper's artifact exposes beyond the
// headline grid: the number of parameter servers (the paper co-locates one
// per machine; fewer servers concentrate ingress and update load) and the
// per-worker batch size (which scales compute time against a fixed
// communication volume). VGG-19 at 15 Gbps, 4 machines.
func Sensitivity(o Options) []SensitivityRow {
	warm, measure := o.iters()
	m := zoo.VGG19()
	runOne := func(s strategy.Strategy, servers, batch int) float64 {
		mm := m
		if batch != m.BatchSize {
			clone := *m
			clone.BatchSize = batch
			mm = &clone
		}
		r := cluster.Run(cluster.Config{
			Model: mm, Machines: 4, Servers: servers, Strategy: s, BandwidthGbps: 15,
			WarmupIters: warm, MeasureIters: measure, Seed: o.Seed + 1,
		})
		return r.Throughput / 4
	}

	var rows []SensitivityRow
	add := func(knob string, value int, servers, batch int) {
		base := runOne(strategy.Baseline(), servers, batch)
		p3 := runOne(strategy.P3(0), servers, batch)
		rows = append(rows, SensitivityRow{
			Knob: knob, Value: value, Baseline: base, P3: p3,
			GainPct: (p3/base - 1) * 100,
		})
	}

	serverCounts := []int{1, 2, 4}
	batches := []int{16, 32, 64}
	if o.Fast {
		serverCounts = []int{1, 4}
		batches = []int{32}
	}
	for _, s := range serverCounts {
		add("servers", s, s, m.BatchSize)
	}
	for _, b := range batches {
		add("batch", b, 4, b)
	}
	return rows
}

// SensitivityTable renders the sweep.
func SensitivityTable(rows []SensitivityRow) string {
	out := "knob\tvalue\tbaseline\tp3\tgain%\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s\t%d\t%.1f\t%.1f\t%+.1f\n", r.Knob, r.Value, r.Baseline, r.P3, r.GainPct)
	}
	return out
}
