package experiments

import (
	"fmt"

	"p3/internal/strategy"
	"p3/internal/zoo"
)

// SchedDisciplines is the discipline sweep of the scheduler ablation: every
// built-in sched.Discipline, applied to the same sliced/immediate-broadcast
// strategy so ordering is the only variable.
var SchedDisciplines = []string{"fifo", "rr", "smallest", "credit", "p3"}

// SchedulerRow is one (model, discipline) cell of the scheduler ablation.
type SchedulerRow struct {
	Model         string
	BandwidthGbps float64
	Sched         string
	// PerMachine is the per-machine training throughput (samples/sec).
	PerMachine float64
	// IterMs is the mean iteration makespan in milliseconds.
	IterMs float64
	// TTCSpeedup is the time-to-convergence speedup over fifo. Synchronous
	// SGD's convergence trajectory is identical under every discipline (the
	// wire order changes, the math does not), so time-to-convergence scales
	// exactly with iteration time: fifo_iter / sched_iter.
	TTCSpeedup float64
}

// SchedulerAblation compares every registered queue discipline on the zoo
// models at their headline bandwidths — the payoff of extracting
// internal/sched: the paper's p3-vs-fifo comparison becomes one row pair in
// a sweep that also covers round-robin fairness, shortest-job-first, and a
// ByteScheduler-style credit window, with no changes outside the strategy's
// Sched name.
func SchedulerAblation(o Options) []SchedulerRow {
	cases := []struct {
		model string
		gbps  float64
	}{
		{"resnet50", 4},
		{"vgg19", 15},
		{"sockeye", 4},
	}
	var rows []SchedulerRow
	for _, c := range cases {
		m := zoo.ByName(c.model)
		measure := func(name string) SchedulerRow {
			st, err := strategy.SlicingOnly(0).WithSched(name)
			if err != nil {
				panic(err) // SchedDisciplines only holds registered names
			}
			st.Name = "sliced+" + name
			r := run(m, st, 4, c.gbps, o, nil)
			return SchedulerRow{
				Model:         c.model,
				BandwidthGbps: c.gbps,
				Sched:         name,
				PerMachine:    r.Throughput / float64(r.Machines),
				IterMs:        r.MeanIterTime.Millis(),
			}
		}
		// The fifo reference runs once, up front, so TTCSpeedup does not
		// depend on SchedDisciplines' ordering.
		fifo := measure("fifo")
		fifo.TTCSpeedup = 1
		for _, name := range SchedDisciplines {
			if name == "fifo" {
				rows = append(rows, fifo)
				continue
			}
			row := measure(name)
			row.TTCSpeedup = fifo.IterMs / row.IterMs
			rows = append(rows, row)
		}
	}
	return rows
}

// SchedulerTable renders the ablation, one line per (model, discipline).
func SchedulerTable(rows []SchedulerRow) string {
	out := "model\tGbps\tsched\tsamples/s/machine\titer_ms\tttc_speedup_vs_fifo\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s\t%g\t%s\t%.1f\t%.2f\t%.3fx\n",
			r.Model, r.BandwidthGbps, r.Sched, r.PerMachine, r.IterMs, r.TTCSpeedup)
	}
	return out
}
