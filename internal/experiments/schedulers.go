package experiments

import (
	"fmt"

	"p3/internal/netsim"
	"p3/internal/ring"
	"p3/internal/sched"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// SchedDisciplines returns the discipline sweep of the scheduler ablation:
// every name in the sched registry (fifo, p3, rr, smallest, credit, tictac,
// credit-adaptive, ...), applied to the same sliced/immediate-broadcast
// strategy so ordering is the only variable. Reading the registry at call
// time (not package init) means a discipline registered from anywhere —
// even a late init — joins the sweep for free.
func SchedDisciplines() []string { return sched.Names() }

// Aggregation paths the ablation sweeps: the parameter-server cluster
// simulator and the ring all-reduce simulator.
const (
	PathCluster = "cluster"
	PathRing    = "ring"
)

// SchedulerRow is one (model, path, discipline, preemption) cell of the
// scheduler ablation.
type SchedulerRow struct {
	Model         string
	BandwidthGbps float64
	// Path is the aggregation path: "cluster" (parameter server) or "ring"
	// (all-reduce).
	Path  string
	Sched string
	// Preempt is the egress preemption quantum in wire bytes (0 = off:
	// an in-flight message always finishes — the paper's semantics).
	// Non-zero rows model true sub-message preemption, the upper bound
	// that parameter slicing approximates. Preemption is inert by
	// construction for fifo (nothing is ever more urgent) and rr (stride
	// rank is a dispatch position, not urgency), so those rows pin the
	// segmented path's bit-parity instead of measuring a policy.
	Preempt int64
	// PerMachine is the per-machine training throughput (samples/sec).
	PerMachine float64
	// IterMs is the mean iteration makespan in milliseconds.
	IterMs float64
	// TTCSpeedup is the time-to-convergence speedup over non-preemptive
	// fifo on the same path. Synchronous SGD's convergence trajectory is
	// identical under every discipline (the wire order changes, the math
	// does not), so time-to-convergence scales exactly with iteration
	// time: fifo_iter / sched_iter.
	TTCSpeedup float64
}

// schedCases returns the (model, bandwidth) grid of the ablation: each
// sweep model at its paper-headline bandwidth, plus every zoo model at the
// 1.5 Gbps bottleneck where ordering (and preemption) dominates. Fast mode
// trims the low-bandwidth axis to the cheapest model.
func schedCases(o Options) []struct {
	model string
	gbps  float64
} {
	cases := []struct {
		model string
		gbps  float64
	}{
		{"resnet50", 4},
		{"vgg19", 15},
		{"sockeye", 4},
	}
	if o.Fast {
		return append(cases, struct {
			model string
			gbps  float64
		}{"resnet110", 1.5})
	}
	for _, m := range []string{"resnet50", "inception3", "vgg19", "sockeye", "resnet110"} {
		cases = append(cases, struct {
			model string
			gbps  float64
		}{m, 1.5})
	}
	return cases
}

// SchedulerAblation compares every registered queue discipline on the zoo
// models, on both aggregation paths and with egress preemption off and on —
// the payoff of extracting internal/sched: the paper's p3-vs-fifo
// comparison becomes one row pair in a sweep that also covers round-robin
// fairness, shortest-job-first, ByteScheduler-style credit windows, TicTac
// critical-path ranking, per-destination adaptive credit, and the
// true-preemption upper bound (netsim.DefaultPreemptQuantum segments) that
// parameter slicing approximates, with no changes outside the strategy's
// Sched name and the network's preemption quantum.
func SchedulerAblation(o Options) []SchedulerRow {
	warm, measure := o.iters()
	// Flatten the sweep into independent cells first, then fill every cell
	// on the parEach worker pool: each cell is one pure simulation, so the
	// table comes out bit-identical to the serial sweep, only bounded by
	// the slowest core instead of the sum of all cells. The non-preemptive
	// fifo cell doubles as the TTCSpeedup reference of its (model, path)
	// group, resolved in a serial pass after the measurements land.
	type cell struct {
		model   string
		gbps    float64
		path    string
		sched   string
		preempt int64
	}
	var cells []cell
	for _, c := range schedCases(o) {
		for _, path := range []string{PathCluster, PathRing} {
			for _, name := range SchedDisciplines() {
				for _, preempt := range []int64{0, netsim.DefaultPreemptQuantum} {
					cells = append(cells, cell{c.model, c.gbps, path, name, preempt})
				}
			}
		}
	}
	rows := make([]SchedulerRow, len(cells))
	parEach(len(cells), func(i int) {
		c := cells[i]
		st, err := strategy.SlicingOnly(0).WithSched(c.sched)
		if err != nil {
			panic(err) // SchedDisciplines() only holds registered names
		}
		st.Name = "sliced+" + c.sched
		m := zoo.ByName(c.model) // fresh model per cell: nothing shared across goroutines
		row := SchedulerRow{
			Model:         c.model,
			BandwidthGbps: c.gbps,
			Path:          c.path,
			Sched:         c.sched,
			Preempt:       c.preempt,
		}
		if c.path == PathRing {
			r := ring.Run(ring.Config{
				Model: m, Machines: 4, Strategy: st, BandwidthGbps: c.gbps,
				PreemptQuantum: c.preempt,
				WarmupIters:    warm, MeasureIters: measure, Seed: o.Seed + 1,
			})
			row.PerMachine = r.Throughput / float64(r.Machines)
			row.IterMs = r.MeanIterTime.Millis()
		} else {
			r := runPreempt(m, st, 4, c.gbps, c.preempt, o)
			row.PerMachine = r.Throughput / float64(r.Machines)
			row.IterMs = r.MeanIterTime.Millis()
		}
		rows[i] = row
	})
	// Resolve TTCSpeedup against each (model, bandwidth, path) group's
	// non-preemptive fifo row (a model appears at several bandwidths).
	type group struct {
		model string
		gbps  float64
		path  string
	}
	fifoIter := make(map[group]float64)
	for i := range rows {
		if rows[i].Sched == "fifo" && rows[i].Preempt == 0 {
			fifoIter[group{rows[i].Model, rows[i].BandwidthGbps, rows[i].Path}] = rows[i].IterMs
		}
	}
	for i := range rows {
		rows[i].TTCSpeedup = fifoIter[group{rows[i].Model, rows[i].BandwidthGbps, rows[i].Path}] / rows[i].IterMs
	}
	return rows
}

// SchedulerTable renders the ablation, one line per (model, path,
// discipline, preemption) cell.
func SchedulerTable(rows []SchedulerRow) string {
	out := "model\tGbps\tpath\tsched\tpreempt\tsamples/s/machine\titer_ms\tttc_speedup_vs_fifo\n"
	for _, r := range rows {
		preempt := "off"
		if r.Preempt > 0 {
			preempt = fmt.Sprintf("%dKiB", r.Preempt>>10)
		}
		out += fmt.Sprintf("%s\t%g\t%s\t%s\t%s\t%.1f\t%.2f\t%.3fx\n",
			r.Model, r.BandwidthGbps, r.Path, r.Sched, preempt, r.PerMachine, r.IterMs, r.TTCSpeedup)
	}
	return out
}
