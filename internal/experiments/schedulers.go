package experiments

import (
	"fmt"

	"p3/internal/ring"
	"p3/internal/sched"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// SchedDisciplines returns the discipline sweep of the scheduler ablation:
// every name in the sched registry (fifo, p3, rr, smallest, credit, tictac,
// credit-adaptive, ...), applied to the same sliced/immediate-broadcast
// strategy so ordering is the only variable. Reading the registry at call
// time (not package init) means a discipline registered from anywhere —
// even a late init — joins the sweep for free.
func SchedDisciplines() []string { return sched.Names() }

// Aggregation paths the ablation sweeps: the parameter-server cluster
// simulator and the ring all-reduce simulator.
const (
	PathCluster = "cluster"
	PathRing    = "ring"
)

// SchedulerRow is one (model, path, discipline) cell of the scheduler
// ablation.
type SchedulerRow struct {
	Model         string
	BandwidthGbps float64
	// Path is the aggregation path: "cluster" (parameter server) or "ring"
	// (all-reduce).
	Path  string
	Sched string
	// PerMachine is the per-machine training throughput (samples/sec).
	PerMachine float64
	// IterMs is the mean iteration makespan in milliseconds.
	IterMs float64
	// TTCSpeedup is the time-to-convergence speedup over fifo on the same
	// path. Synchronous SGD's convergence trajectory is identical under
	// every discipline (the wire order changes, the math does not), so
	// time-to-convergence scales exactly with iteration time:
	// fifo_iter / sched_iter.
	TTCSpeedup float64
}

// SchedulerAblation compares every registered queue discipline on the zoo
// models at their headline bandwidths, on both aggregation paths — the
// payoff of extracting internal/sched: the paper's p3-vs-fifo comparison
// becomes one row pair in a sweep that also covers round-robin fairness,
// shortest-job-first, ByteScheduler-style credit windows, TicTac
// critical-path ranking, and per-destination adaptive credit, with no
// changes outside the strategy's Sched name.
func SchedulerAblation(o Options) []SchedulerRow {
	cases := []struct {
		model string
		gbps  float64
	}{
		{"resnet50", 4},
		{"vgg19", 15},
		{"sockeye", 4},
	}
	warm, measure := o.iters()
	var rows []SchedulerRow
	for _, c := range cases {
		m := zoo.ByName(c.model)
		for _, path := range []string{PathCluster, PathRing} {
			measureRow := func(name string) SchedulerRow {
				st, err := strategy.SlicingOnly(0).WithSched(name)
				if err != nil {
					panic(err) // SchedDisciplines() only holds registered names
				}
				st.Name = "sliced+" + name
				row := SchedulerRow{
					Model:         c.model,
					BandwidthGbps: c.gbps,
					Path:          path,
					Sched:         name,
				}
				if path == PathRing {
					r := ring.Run(ring.Config{
						Model: m, Machines: 4, Strategy: st, BandwidthGbps: c.gbps,
						WarmupIters: warm, MeasureIters: measure, Seed: o.Seed + 1,
					})
					row.PerMachine = r.Throughput / float64(r.Machines)
					row.IterMs = r.MeanIterTime.Millis()
				} else {
					r := run(m, st, 4, c.gbps, o, nil)
					row.PerMachine = r.Throughput / float64(r.Machines)
					row.IterMs = r.MeanIterTime.Millis()
				}
				return row
			}
			// The fifo reference runs once, up front, so TTCSpeedup does not
			// depend on SchedDisciplines' ordering.
			fifo := measureRow("fifo")
			fifo.TTCSpeedup = 1
			for _, name := range SchedDisciplines() {
				if name == "fifo" {
					rows = append(rows, fifo)
					continue
				}
				row := measureRow(name)
				row.TTCSpeedup = fifo.IterMs / row.IterMs
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// SchedulerTable renders the ablation, one line per (model, path,
// discipline).
func SchedulerTable(rows []SchedulerRow) string {
	out := "model\tGbps\tpath\tsched\tsamples/s/machine\titer_ms\tttc_speedup_vs_fifo\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s\t%g\t%s\t%s\t%.1f\t%.2f\t%.3fx\n",
			r.Model, r.BandwidthGbps, r.Path, r.Sched, r.PerMachine, r.IterMs, r.TTCSpeedup)
	}
	return out
}
