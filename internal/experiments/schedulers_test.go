package experiments

import "testing"

// TestSchedulerAblation checks the shape of the sweep and its headline
// claim: the p3 discipline beats fifo on time-to-convergence for every zoo
// model at its paper bandwidth (the acceptance criterion of the sched
// extraction), with the credit window close behind.
func TestSchedulerAblation(t *testing.T) {
	rows := SchedulerAblation(Options{Fast: true})
	const models = 3
	if len(rows) != models*len(SchedDisciplines) {
		t.Fatalf("%d rows, want %d", len(rows), models*len(SchedDisciplines))
	}
	byModel := map[string]map[string]SchedulerRow{}
	for _, r := range rows {
		if byModel[r.Model] == nil {
			byModel[r.Model] = map[string]SchedulerRow{}
		}
		byModel[r.Model][r.Sched] = r
	}
	for model, per := range byModel {
		fifo, p3 := per["fifo"], per["p3"]
		if !(p3.IterMs < fifo.IterMs) {
			t.Errorf("%s: p3 iter %.2f ms not below fifo %.2f ms", model, p3.IterMs, fifo.IterMs)
		}
		if !(p3.TTCSpeedup > 1.0) {
			t.Errorf("%s: p3 time-to-convergence speedup %.3f <= 1", model, p3.TTCSpeedup)
		}
		if fifo.TTCSpeedup != 1.0 {
			t.Errorf("%s: fifo speedup %.3f, want exactly 1", model, fifo.TTCSpeedup)
		}
		// The credit window approximates p3 (it is p3 plus a bounded
		// in-flight budget), so it must land within a few percent.
		credit := per["credit"]
		if credit.IterMs > p3.IterMs*1.05 {
			t.Errorf("%s: credit iter %.2f ms >5%% above p3 %.2f ms", model, credit.IterMs, p3.IterMs)
		}
		// Every discipline still moves the same bytes to the same places:
		// throughput may differ, but nothing should collapse below fifo by
		// more than a third (a wedged schedule would).
		for name, r := range per {
			if r.PerMachine < fifo.PerMachine*0.66 {
				t.Errorf("%s/%s: throughput %.1f collapsed vs fifo %.1f", model, name, r.PerMachine, fifo.PerMachine)
			}
		}
	}
}
