package experiments

import (
	"testing"

	"p3/internal/sched"
)

// TestSchedulerAblation checks the shape of the sweep and its headline
// claims: every registered discipline appears on both aggregation paths
// with the preemption axis off and on, the p3 discipline beats fifo on
// time-to-convergence for every sweep model at its paper bandwidth, and the
// model-aware disciplines (tictac, credit-adaptive) land close to p3 rather
// than collapsing.
func TestSchedulerAblation(t *testing.T) {
	o := Options{Fast: true}
	rows := SchedulerAblation(o)
	cases := len(schedCases(o))
	const paths = 2
	const preempts = 2
	if len(rows) != cases*paths*len(SchedDisciplines())*preempts {
		t.Fatalf("%d rows, want %d", len(rows), cases*paths*len(SchedDisciplines())*preempts)
	}
	for _, name := range []string{"tictac", "credit-adaptive"} {
		found := false
		for _, n := range SchedDisciplines() {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("SchedDisciplines %v misses %q", SchedDisciplines(), name)
		}
	}
	type cellKey struct {
		model string
		gbps  float64
		path  string
	}
	byCell := map[cellKey]map[string]SchedulerRow{}
	for _, r := range rows {
		key := cellKey{r.Model, r.BandwidthGbps, r.Path}
		if byCell[key] == nil {
			byCell[key] = map[string]SchedulerRow{}
		}
		if r.Preempt == 0 {
			byCell[key][r.Sched] = r
		}
	}
	if len(byCell) != cases*paths {
		t.Fatalf("%d (model, bandwidth, path) cells, want %d", len(byCell), cases*paths)
	}
	for cell, per := range byCell {
		if len(per) != len(sched.Names()) {
			t.Errorf("%v: %d disciplines, want every registered one (%d)", cell, len(per), len(sched.Names()))
		}
		fifo, p3 := per["fifo"], per["p3"]
		// At the paper-headline bandwidths ordering is the bottleneck and
		// p3 must win outright; the added 1.5 Gbps rows are so saturated
		// that some models pin to the wire for every discipline, so there
		// p3 only has to not lose.
		if cell.gbps > 1.5 {
			if !(p3.IterMs < fifo.IterMs) {
				t.Errorf("%v: p3 iter %.2f ms not below fifo %.2f ms", cell, p3.IterMs, fifo.IterMs)
			}
			if !(p3.TTCSpeedup > 1.0) {
				t.Errorf("%v: p3 time-to-convergence speedup %.3f <= 1", cell, p3.TTCSpeedup)
			}
		} else if p3.IterMs > fifo.IterMs {
			t.Errorf("%v: p3 iter %.2f ms above fifo %.2f ms", cell, p3.IterMs, fifo.IterMs)
		}
		if fifo.TTCSpeedup != 1.0 {
			t.Errorf("%v: fifo speedup %.3f, want exactly 1", cell, fifo.TTCSpeedup)
		}
		// The credit window approximates p3 (it is p3 plus a bounded
		// in-flight budget), so it must land within a few percent; the
		// adaptive variant converges toward the same regime.
		for _, name := range []string{"credit", "credit-adaptive"} {
			if r := per[name]; r.IterMs > p3.IterMs*1.05 {
				t.Errorf("%v: %s iter %.2f ms >5%% above p3 %.2f ms", cell, name, r.IterMs, p3.IterMs)
			}
		}
		// tictac's timing-derived order coincides with layer order for
		// these linear-chain models (the paper's own observation about
		// TicTac vs P3), so it must track p3 closely — a large gap means
		// the slack ranking inverted something structural.
		if tt := per["tictac"]; tt.IterMs > p3.IterMs*1.10 {
			t.Errorf("%v: tictac iter %.2f ms >10%% above p3 %.2f ms", cell, tt.IterMs, p3.IterMs)
		}
		// Every discipline still moves the same bytes to the same places:
		// throughput may differ, but nothing should collapse below fifo by
		// more than a third (a wedged schedule would).
		for name, r := range per {
			if r.PerMachine < fifo.PerMachine*0.66 {
				t.Errorf("%v/%s: throughput %.1f collapsed vs fifo %.1f", cell, name, r.PerMachine, fifo.PerMachine)
			}
		}
	}
	// The preemption axis: fifo never preempts (nothing is ever more
	// urgent) and neither does rr (stride rank is a dispatch position, not
	// urgency), so their preemptive rows must reproduce the non-preemptive
	// numbers exactly — segment timing telescopes.
	for _, r := range rows {
		if (r.Sched != "fifo" && r.Sched != "rr") || r.Preempt == 0 {
			continue
		}
		base := byCell[cellKey{r.Model, r.BandwidthGbps, r.Path}][r.Sched]
		if r.IterMs != base.IterMs || r.PerMachine != base.PerMachine {
			t.Errorf("%s/%g/%s: preemptive %s (%.4f ms) != %s (%.4f ms); preemption must be inert",
				r.Model, r.BandwidthGbps, r.Path, r.Sched, r.IterMs, r.Sched, base.IterMs)
		}
	}
}
