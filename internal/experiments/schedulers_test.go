package experiments

import (
	"testing"

	"p3/internal/sched"
)

// TestSchedulerAblation checks the shape of the sweep and its headline
// claims: every registered discipline appears on both aggregation paths,
// the p3 discipline beats fifo on time-to-convergence for every zoo model
// at its paper bandwidth, and the model-aware disciplines (tictac,
// credit-adaptive) land close to p3 rather than collapsing.
func TestSchedulerAblation(t *testing.T) {
	rows := SchedulerAblation(Options{Fast: true})
	const models = 3
	const paths = 2
	if len(rows) != models*paths*len(SchedDisciplines()) {
		t.Fatalf("%d rows, want %d", len(rows), models*paths*len(SchedDisciplines()))
	}
	for _, name := range []string{"tictac", "credit-adaptive"} {
		found := false
		for _, n := range SchedDisciplines() {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("SchedDisciplines %v misses %q", SchedDisciplines(), name)
		}
	}
	byCell := map[string]map[string]SchedulerRow{}
	for _, r := range rows {
		key := r.Model + "/" + r.Path
		if byCell[key] == nil {
			byCell[key] = map[string]SchedulerRow{}
		}
		byCell[key][r.Sched] = r
	}
	if len(byCell) != models*paths {
		t.Fatalf("%d (model, path) cells, want %d", len(byCell), models*paths)
	}
	for cell, per := range byCell {
		if len(per) != len(sched.Names()) {
			t.Errorf("%s: %d disciplines, want every registered one (%d)", cell, len(per), len(sched.Names()))
		}
		fifo, p3 := per["fifo"], per["p3"]
		if !(p3.IterMs < fifo.IterMs) {
			t.Errorf("%s: p3 iter %.2f ms not below fifo %.2f ms", cell, p3.IterMs, fifo.IterMs)
		}
		if !(p3.TTCSpeedup > 1.0) {
			t.Errorf("%s: p3 time-to-convergence speedup %.3f <= 1", cell, p3.TTCSpeedup)
		}
		if fifo.TTCSpeedup != 1.0 {
			t.Errorf("%s: fifo speedup %.3f, want exactly 1", cell, fifo.TTCSpeedup)
		}
		// The credit window approximates p3 (it is p3 plus a bounded
		// in-flight budget), so it must land within a few percent; the
		// adaptive variant converges toward the same regime.
		for _, name := range []string{"credit", "credit-adaptive"} {
			if r := per[name]; r.IterMs > p3.IterMs*1.05 {
				t.Errorf("%s: %s iter %.2f ms >5%% above p3 %.2f ms", cell, name, r.IterMs, p3.IterMs)
			}
		}
		// tictac's timing-derived order coincides with layer order for
		// these linear-chain models (the paper's own observation about
		// TicTac vs P3), so it must track p3 closely — a large gap means
		// the slack ranking inverted something structural.
		if tt := per["tictac"]; tt.IterMs > p3.IterMs*1.10 {
			t.Errorf("%s: tictac iter %.2f ms >10%% above p3 %.2f ms", cell, tt.IterMs, p3.IterMs)
		}
		// Every discipline still moves the same bytes to the same places:
		// throughput may differ, but nothing should collapse below fifo by
		// more than a third (a wedged schedule would).
		for name, r := range per {
			if r.PerMachine < fifo.PerMachine*0.66 {
				t.Errorf("%s/%s: throughput %.1f collapsed vs fifo %.1f", cell, name, r.PerMachine, fifo.PerMachine)
			}
		}
	}
}
