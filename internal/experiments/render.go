package experiments

import (
	"fmt"
	"math"
	"strings"
)

// TSV renders the figure's series as a tab-separated table: one x column
// followed by one column per series (aligned by x where the series share a
// grid, padded otherwise).
func (f *Figure) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		b.WriteByte('\t')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	n := 0
	for _, s := range f.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		var x float64
		for _, s := range f.Series {
			if i < len(s.X) {
				x = s.X[i]
				break
			}
		}
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "\t%.3f", s.Y[i])
			} else {
				b.WriteString("\t-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ASCII renders the figure as a rough terminal plot: one mark per series.
// Width and height are in character cells (minimums are enforced).
func (f *Figure) ASCII(width, height int) string {
	if width < 40 {
		width = 40
	}
	if height < 8 {
		height = 8
	}
	marks := []byte{'o', '+', 'x', '*', '#', '@'}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1) // y axis anchored at zero, like the paper
	for _, s := range f.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) || ymax <= ymin {
		return fmt.Sprintf("%s: (no data)\n", f.ID)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1)))
			r := height - 1 - row
			if r >= 0 && r < height && col >= 0 && col < width {
				grid[r][col] = mark
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	for r, row := range grid {
		yval := ymax - float64(r)/float64(height-1)*(ymax-ymin)
		fmt.Fprintf(&b, "%9.1f |%s|\n", yval, string(row))
	}
	fmt.Fprintf(&b, "%9s  %s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%9s  %-*g%*g\n", "", width/2, xmin, width-width/2, xmax)
	fmt.Fprintf(&b, "%9s  x: %s, y: %s\n", "", f.XLabel, f.YLabel)
	legend := make([]string, 0, len(f.Series))
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], s.Name))
	}
	fmt.Fprintf(&b, "%9s  legend: %s\n", "", strings.Join(legend, "  "))
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "%9s  note: %s\n", "", n)
	}
	return b.String()
}

// HeadlineTable renders the Section 5.3 summary rows.
func HeadlineTable(rows []HeadlineRow) string {
	var b strings.Builder
	b.WriteString("model\tGbps\tbaseline\tslicing\tp3\tspeedup%\tpaper%\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%g\t%.1f\t%.1f\t%.1f\t%+.1f\t%+.1f\n",
			r.Model, r.BandwidthGbps, r.Baseline, r.Slicing, r.P3, r.SpeedupPct, r.PaperPct)
	}
	return b.String()
}
