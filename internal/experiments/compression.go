package experiments

import (
	"fmt"

	"p3/internal/nn"
	"p3/internal/opt"
	"p3/internal/quant"
	"p3/internal/train"
)

// CompressionRow is one mechanism's entry in the compression-family
// comparison.
type CompressionRow struct {
	Mechanism        string
	FinalAcc         float64
	CompressionRatio float64 // dense bits / wire bits (1 = full gradients)
}

// ExtCompression runs the related-work compression family (Section 6 of
// the paper) against dense exchange on the substitute task: QSGD (4-level),
// TernGrad and 1-bit SGD with error feedback, plus DGC. P3's pitch is that
// it needs none of these trade-offs — dense (its arithmetic) anchors the
// accuracy column while the codecs buy bandwidth with accuracy risk.
func ExtCompression(o Options) []CompressionRow {
	tr, val, netCfg, epochs := convergenceTask(o)
	base := train.Config{
		Net: netCfg, Workers: 4, Batch: 16, Epochs: epochs,
		Schedule: opt.StepSchedule{Base: 0.06, Gamma: 0.1, Milestones: []int{epochs * 5 / 8, epochs * 7 / 8}},
		Momentum: 0.9, WeightDecay: 1e-4, ClipNorm: 2,
		Seed: 11 + o.Seed, Parallel: true,
	}
	sizes := func() []int {
		probe := nn.NewResidualMLP(netCfg)
		var out []int
		for _, p := range probe.Params() {
			out = append(out, len(p.Data))
		}
		return out
	}

	var rows []CompressionRow
	runOne := func(name string, mutate func(*train.Config)) {
		cfg := base
		mutate(&cfg)
		h, _ := train.Run(cfg, tr, val)
		ratio := h.CompressionRatio
		if ratio == 0 {
			switch cfg.Mode {
			case train.Dense:
				ratio = 1
			case train.DGC:
				// top-k at sparsity s: (value+index) per kept coordinate.
				ratio = 32.0 / ((1 - cfg.DGCSparsity) * 64)
			}
		}
		rows = append(rows, CompressionRow{Mechanism: name, FinalAcc: h.FinalValAcc, CompressionRatio: ratio})
	}

	runOne("dense (baseline == p3)", func(c *train.Config) { c.Mode = train.Dense })
	runOne("dgc@99.9%", func(c *train.Config) { c.Mode = train.DGC; c.DGCSparsity = 0.999 })
	runOne("qsgd-4", func(c *train.Config) {
		c.Mode = train.Quantized
		for w := 0; w < c.Workers; w++ {
			c.Codecs = append(c.Codecs, quant.NewQSGD(4, int64(100+w)))
		}
	})
	runOne("terngrad", func(c *train.Config) {
		c.Mode = train.Quantized
		for w := 0; w < c.Workers; w++ {
			c.Codecs = append(c.Codecs, quant.NewTernGrad(int64(200+w)))
		}
	})
	runOne("1bit-sgd", func(c *train.Config) {
		c.Mode = train.Quantized
		for w := 0; w < c.Workers; w++ {
			c.Codecs = append(c.Codecs, quant.NewOneBit(sizes()))
		}
	})
	return rows
}

// CompressionTable renders the comparison.
func CompressionTable(rows []CompressionRow) string {
	out := "mechanism\tfinal_acc\tcompression_x\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s\t%.4f\t%.1f\n", r.Mechanism, r.FinalAcc, r.CompressionRatio)
	}
	return out
}
