package experiments

import (
	"strings"
	"testing"
)

// TestScaleSweep runs the trimmed scale axis end to end: every cell must
// complete (a wedged 64-machine protocol panics inside cluster.Run), report
// sane throughput, and show the event volume actually growing with the
// cluster — the regime the O(log F) dispatcher exists for.
func TestScaleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("64-machine sweep in -short mode")
	}
	rows := Scale(Options{Fast: true, Seed: 1})
	if len(rows) == 0 {
		t.Fatal("no scale rows")
	}
	events := map[int]uint64{}
	var saw64 bool
	type cellKey struct {
		path     string
		machines int
	}
	type variantKey struct {
		sched   string
		profile string
	}
	byCell := map[cellKey]map[variantKey]ScaleRow{}
	for _, r := range rows {
		if r.PerMachine <= 0 || r.IterMs <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.Path == PathCluster && r.Sched == "p3" {
			events[r.Machines] = r.Events
		}
		if r.Machines == 64 {
			saw64 = true
		}
		ck := cellKey{r.Path, r.Machines}
		if byCell[ck] == nil {
			byCell[ck] = map[variantKey]ScaleRow{}
		}
		byCell[ck][variantKey{r.Sched, r.Profile}] = r
	}
	if !saw64 {
		t.Fatal("fast sweep lost the 64-machine cell")
	}
	if events[64] <= events[4] {
		t.Fatalf("64-machine run should dwarf 4-machine event volume: %d vs %d", events[64], events[4])
	}
	// The sweep's headline claims, in every cell: the damped transform beats
	// fifo (no inversion at any scale, on either path) and never loses to
	// strict p3; the calibrated damped:tictac composition also beats fifo
	// (stall feedback converges under damping — under strict tictac at 64
	// machines it diverges, which the table reports but nothing pins).
	for ck, per := range byCell {
		if len(per) != len(scaleVariants()) {
			t.Fatalf("%v: %d variants, want %d", ck, len(per), len(scaleVariants()))
		}
		fifo := per[variantKey{"fifo", "-"}]
		p3 := per[variantKey{"p3", "-"}]
		damped := per[variantKey{"damped", "-"}]
		dampedCal := per[variantKey{"damped:tictac", "measured"}]
		if damped.IterMs > fifo.IterMs {
			t.Errorf("%v: damped %.2f ms above fifo %.2f ms — inversion", ck, damped.IterMs, fifo.IterMs)
		}
		if dampedCal.IterMs > fifo.IterMs {
			t.Errorf("%v: calibrated damped:tictac %.2f ms above fifo %.2f ms", ck, dampedCal.IterMs, fifo.IterMs)
		}
		// At the fan-in that inverted strict priority the damped rank must
		// recover more than the whole inversion (at small scale it may
		// trail strict p3 by the sub-1% cost of its bounded horizon).
		if ck.machines == 64 && damped.IterMs > p3.IterMs {
			t.Errorf("%v: damped %.2f ms above strict p3 %.2f ms", ck, damped.IterMs, p3.IterMs)
		}
	}
	table := ScaleTable(rows)
	if !strings.Contains(table, "cluster\t64\tp3") {
		t.Fatalf("table missing the 64-machine p3 cell:\n%s", table)
	}
	if !strings.Contains(table, "damped:tictac\tmeasured") {
		t.Fatalf("table missing the calibrated damped:tictac column:\n%s", table)
	}
}
