package experiments

import (
	"strings"
	"testing"
)

// TestScaleSweep runs the trimmed scale axis end to end: every cell must
// complete (a wedged 64-machine protocol panics inside cluster.Run), report
// sane throughput, and show the event volume actually growing with the
// cluster — the regime the O(log F) dispatcher exists for.
func TestScaleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("64-machine sweep in -short mode")
	}
	rows := Scale(Options{Fast: true, Seed: 1})
	if len(rows) == 0 {
		t.Fatal("no scale rows")
	}
	events := map[int]uint64{}
	var saw64 bool
	for _, r := range rows {
		if r.PerMachine <= 0 || r.IterMs <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.Path == PathCluster && r.Sched == "p3" {
			events[r.Machines] = r.Events
		}
		if r.Machines == 64 {
			saw64 = true
		}
	}
	if !saw64 {
		t.Fatal("fast sweep lost the 64-machine cell")
	}
	if events[64] <= events[4] {
		t.Fatalf("64-machine run should dwarf 4-machine event volume: %d vs %d", events[64], events[4])
	}
	table := ScaleTable(rows)
	if !strings.Contains(table, "cluster\t64\tp3") {
		t.Fatalf("table missing the 64-machine p3 cell:\n%s", table)
	}
}
