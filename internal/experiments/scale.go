package experiments

import (
	"fmt"
	"time"

	"p3/internal/cluster"
	"p3/internal/ring"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// ScaleRow is one cell of the cluster-size scale axis: a model at the
// 1.5 Gbps bottleneck bandwidth (where ordering dominates), swept well past
// the paper's 4-16 machines on both aggregation paths. WallMs records the
// simulator's own cost for the cell — the number the dispatch-path
// optimization is accountable to — and Events its discrete-event volume.
type ScaleRow struct {
	Model    string
	Machines int
	// Path is the aggregation path: "cluster" (parameter server) or "ring"
	// (all-reduce).
	Path  string
	Sched string
	// PerMachine is per-machine training throughput (samples/sec); the
	// paper's scalability claim is that it stays flat as machines grow.
	PerMachine float64
	IterMs     float64
	// Events is the discrete-event count of the run; at 64 machines the
	// cluster path multiplies traffic ~250x over 4 machines.
	Events uint64
	// WallMs is the wall-clock cost of simulating the cell, measured while
	// the other cells of the sweep share the machine (the sweep runs on the
	// parEach pool), so on a multi-core runner it is an upper bound on the
	// cell's serial cost. The serial perf-trajectory numbers live in the
	// BENCH_<n>.json artifacts, whose sims run one at a time.
	WallMs float64
}

// scaleSizes returns the machine-count axis. 64 machines was impractical
// before the O(log F) dispatch rewrite: every egress queue holds one flow
// per peer, so each pop paid a 64-flow linear scan (sorted in full under a
// credit gate), inside simulations whose event volume itself grows ~N^2.
func scaleSizes(path string, fast bool) []int {
	if fast && path == PathRing {
		// The 64-machine ring (2(N-1) rounds x N machines per chunk) costs
		// ~40M events per cell; the trimmed sweep keeps CI fast and leaves
		// the full axis to `p3bench scale`.
		return []int{4, 16}
	}
	if fast {
		return []int{4, 64}
	}
	return []int{4, 16, 64}
}

// Scale sweeps cluster sizes past the paper's testbed (Figure 10 stops at
// 16 machines): the sliced strategy under fifo vs p3 ordering, parameter
// server and ring all-reduce, at the bottleneck bandwidth. Cells run on the
// parEach worker pool — each is a pure simulation — so the sweep's
// wall-clock is bounded by its slowest cell on a multi-core runner.
func Scale(o Options) []ScaleRow {
	warm, measure := o.iters()
	const model = "resnet50"
	const gbps = 1.5
	type cell struct {
		path     string
		machines int
		sched    string
	}
	var cells []cell
	for _, path := range []string{PathCluster, PathRing} {
		for _, n := range scaleSizes(path, o.Fast) {
			for _, sched := range []string{"fifo", "p3"} {
				cells = append(cells, cell{path, n, sched})
			}
		}
	}
	rows := make([]ScaleRow, len(cells))
	parEach(len(cells), func(i int) {
		c := cells[i]
		st, err := strategy.SlicingOnly(0).WithSched(c.sched)
		if err != nil {
			panic(err)
		}
		st.Name = "sliced+" + c.sched
		row := ScaleRow{Model: model, Machines: c.machines, Path: c.path, Sched: c.sched}
		t0 := time.Now()
		if c.path == PathRing {
			r := ring.Run(ring.Config{
				Model: zoo.ByName(model), Machines: c.machines, Strategy: st,
				BandwidthGbps: gbps,
				WarmupIters:   warm, MeasureIters: measure, Seed: o.Seed + 1,
			})
			row.PerMachine = r.Throughput / float64(r.Machines)
			row.IterMs = r.MeanIterTime.Millis()
			row.Events = r.Events
		} else {
			r := cluster.Run(cluster.Config{
				Model: zoo.ByName(model), Machines: c.machines, Strategy: st,
				BandwidthGbps: gbps,
				WarmupIters:   warm, MeasureIters: measure, Seed: o.Seed + 1,
			})
			row.PerMachine = r.Throughput / float64(r.Machines)
			row.IterMs = r.MeanIterTime.Millis()
			row.Events = r.Events
		}
		row.WallMs = float64(time.Since(t0).Microseconds()) / 1000
		rows[i] = row
	})
	return rows
}

// ScaleTable renders the scale axis, one line per (path, machines, sched).
func ScaleTable(rows []ScaleRow) string {
	out := "model\tpath\tmachines\tsched\tsamples/s/machine\titer_ms\tevents\tsim_wall_ms\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s\t%s\t%d\t%s\t%.1f\t%.2f\t%d\t%.1f\n",
			r.Model, r.Path, r.Machines, r.Sched, r.PerMachine, r.IterMs, r.Events, r.WallMs)
	}
	return out
}
