package experiments

import (
	"fmt"
	"time"

	"p3/internal/cluster"
	"p3/internal/ring"
	"p3/internal/sim"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// ScaleRow is one cell of the cluster-size scale axis: a model at the
// 1.5 Gbps bottleneck bandwidth (where ordering dominates), swept well past
// the paper's 4-16 machines on both aggregation paths. WallMs records the
// simulator's own cost for the cell — the number the dispatch-path
// optimization is accountable to — and Events its discrete-event volume.
type ScaleRow struct {
	Model    string
	Machines int
	// Path is the aggregation path: "cluster" (parameter server) or "ring"
	// (all-reduce).
	Path  string
	Sched string
	// Profile is the timing profile the discipline ranked against:
	// "static" (FLOP-derived), "measured" (the two-pass calibrated mode,
	// rebuilt from the first pass's observed stalls), or "-" for
	// model-blind disciplines.
	Profile string
	// PerMachine is per-machine training throughput (samples/sec); the
	// paper's scalability claim is that it stays flat as machines grow.
	PerMachine float64
	IterMs     float64
	// Events is the discrete-event count of the run; at 64 machines the
	// cluster path multiplies traffic ~250x over 4 machines.
	Events uint64
	// WallMs is the wall-clock cost of simulating the cell, measured while
	// the other cells of the sweep share the machine (the sweep runs on the
	// parEach pool), so on a multi-core runner it is an upper bound on the
	// cell's serial cost; a calibrated cell pays for both of its passes.
	// The serial perf-trajectory numbers live in the BENCH_<n>.json
	// artifacts, whose sims run one at a time.
	WallMs float64
}

// scaleSizes returns the machine-count axis. 64 machines was impractical
// before the O(log F) dispatch rewrite: every egress queue holds one flow
// per peer, so each pop paid a 64-flow linear scan (sorted in full under a
// credit gate), inside simulations whose event volume itself grows ~N^2.
// 256 and 1024 came within reach with the sharded engine: parameter-server
// event volume grows roughly linearly in machines, so the big cells are
// wide rather than deep and the conservative-lookahead shards (plus the
// reused per-worker engines) keep them tractable. The ring axis stays
// capped at 64: every collective is 2(N-1) rounds of N transmissions per
// chunk, ~N^2 events — a 256-machine ring cell alone would cost ~16x the
// whole 64-machine sweep — and its global per-collective launch barrier
// pins it to the single-shard engine besides.
func scaleSizes(path string, fast bool) []int {
	if path == PathRing {
		if fast {
			// The 64-machine ring costs ~40M events per cell; the trimmed
			// sweep keeps CI fast and leaves the full axis to `p3bench
			// scale`.
			return []int{4, 16}
		}
		return []int{4, 16, 64}
	}
	if fast {
		return []int{4, 64}
	}
	return []int{4, 16, 64, 256, 1024}
}

// scaleVariant is one scheduling variant of the scale sweep.
type scaleVariant struct {
	sched      string
	calibrated bool
}

// scaleVariants returns the discipline axis: the original fifo-vs-p3 pair,
// the damped wrapper that fixes the 64-machine p3-vs-fifo inversion, tictac
// under both the static and the measured (two-pass calibrated) profile, and
// the damped+calibrated composition. The last two pin the sweep's second
// finding: at 64 machines stall feedback under STRICT priority diverges
// (stretching a starved layer's deadline makes it still less urgent — the
// feedback chases its own tail), while under the damped rank, which bounds
// any class's deferral, the same feedback converges and beats fifo.
func scaleVariants() []scaleVariant {
	return []scaleVariant{
		{sched: "fifo"},
		{sched: "p3"},
		{sched: "damped"},
		{sched: "tictac"},
		{sched: "tictac", calibrated: true},
		{sched: "damped:tictac", calibrated: true},
	}
}

// Scale sweeps cluster sizes past the paper's testbed (Figure 10 stops at
// 16 machines): the sliced strategy under fifo, p3, damped-p3 and
// static/calibrated tictac ordering, parameter server and ring all-reduce,
// at the bottleneck bandwidth. The damped and calibrated columns pin the
// 64-machine result: strict p3 inverts against fifo at high fan-in, the
// damped rank does not. Cells run on the parEach worker pool — each is a
// pure simulation — so the sweep's wall-clock is bounded by its slowest
// cell on a multi-core runner.
func Scale(o Options) []ScaleRow {
	warm, measure := o.iters()
	const model = "resnet50"
	const gbps = 1.5
	type cell struct {
		path     string
		machines int
		variant  scaleVariant
	}
	var cells []cell
	for _, path := range []string{PathCluster, PathRing} {
		for _, n := range scaleSizes(path, o.Fast) {
			for _, v := range scaleVariants() {
				if n > 64 && v.calibrated {
					// The calibrated variants pay for two full passes per
					// cell; past 64 machines the sweep keeps the
					// single-pass fifo/p3/damped/tictac axis.
					continue
				}
				cells = append(cells, cell{path, n, v})
			}
		}
	}
	rows := make([]ScaleRow, len(cells))
	parEachEngine(len(cells), func(i int, eng *sim.Engine) {
		c := cells[i]
		st, err := strategy.SlicingOnly(0).WithSched(c.variant.sched)
		if err != nil {
			panic(err)
		}
		st.Name = "sliced+" + c.variant.sched
		row := ScaleRow{Model: model, Machines: c.machines, Path: c.path, Sched: c.variant.sched}
		switch {
		case c.variant.calibrated:
			row.Profile = "measured"
		case c.variant.sched == "tictac":
			row.Profile = "static"
		default:
			row.Profile = "-"
		}
		//p3:wallclock-ok WallMs reports real simulator throughput
		t0 := time.Now()
		if c.path == PathRing {
			cfg := ring.Config{
				Model: zoo.ByName(model), Machines: c.machines, Strategy: st,
				BandwidthGbps: gbps,
				WarmupIters:   warm, MeasureIters: measure, Seed: o.Seed + 1,
				Engine: eng,
			}
			var r ring.Result
			if c.variant.calibrated {
				_, r = ring.RunCalibrated(cfg)
			} else {
				r = ring.Run(cfg)
			}
			row.PerMachine = r.Throughput / float64(r.Machines)
			row.IterMs = r.MeanIterTime.Millis()
			row.Events = r.Events
		} else {
			cfg := cluster.Config{
				Model: zoo.ByName(model), Machines: c.machines, Strategy: st,
				BandwidthGbps: gbps,
				WarmupIters:   warm, MeasureIters: measure, Seed: o.Seed + 1,
				Engine: eng, Shards: o.Shards,
			}
			var r cluster.Result
			if c.variant.calibrated {
				_, r = cluster.RunCalibrated(cfg)
			} else {
				r = cluster.Run(cfg)
			}
			row.PerMachine = r.Throughput / float64(r.Machines)
			row.IterMs = r.MeanIterTime.Millis()
			row.Events = r.Events
		}
		//p3:wallclock-ok WallMs reports real simulator throughput
		row.WallMs = float64(time.Since(t0).Microseconds()) / 1000
		rows[i] = row
	})
	return rows
}

// ScaleTable renders the scale axis, one line per (path, machines, sched,
// profile).
func ScaleTable(rows []ScaleRow) string {
	out := "model\tpath\tmachines\tsched\tprofile\tsamples/s/machine\titer_ms\tevents\tsim_wall_ms\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s\t%s\t%d\t%s\t%s\t%.1f\t%.2f\t%d\t%.1f\n",
			r.Model, r.Path, r.Machines, r.Sched, r.Profile, r.PerMachine, r.IterMs, r.Events, r.WallMs)
	}
	return out
}
