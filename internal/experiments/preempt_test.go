package experiments

import (
	"testing"

	"p3/internal/cluster"
	"p3/internal/netsim"
	"p3/internal/ring"
	"p3/internal/sim"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// sliceSlackNs is the serialization time of one default 50k-parameter slice
// (200 KB) at the 1.5 Gbps bottleneck — the scheduling granularity that
// NON-preemptive priority scheduling itself tolerates: an urgent chunk may
// always wait behind one in-flight slice, so two schedules that differ by
// less than one slice's wire time are equally consistent with the
// discipline. The preemption upper bound is asserted to this slack: the
// closed training loop (aggregation max over four near-symmetric workers,
// limit-cycle phase) deterministically amplifies sub-slice reorderings into
// hairline shifts of either sign, but a true regression — a starved bulk
// tail, lost progress on a parked transmission, an urgent message failing
// to overtake — costs whole slices and fails this bound loudly (the
// unbounded-deferral bug found while building this showed up at 10-20x the
// slack).
const sliceSlackNs = int64(50_000*4*8*2/3) + 1 // bits / 1.5 Gbps, in ns

// TestPreemptionUpperBound pins the headline property of the resumable
// egress on the exact configurations the scheduler ablation reports: at the
// 1.5 Gbps bottleneck, enabling sub-message preemption
// (netsim.DefaultPreemptQuantum) never makes the p3 or tictac
// configurations slower than message-granularity transmission by more than
// the one-slice scheduling slack, on any zoo model, on either aggregation
// path. The quantum only changes the interleaving of serialization — the
// per-message overhead is charged once either way and segment timing
// telescopes exactly — so the preemptive run is the true-preemption upper
// bound that the paper's slicing approximates.
func TestPreemptionUpperBound(t *testing.T) {
	warm, measure := Options{Fast: true}.iters()
	fired := int64(0)
	for _, m := range zoo.All() {
		for _, name := range []string{"p3", "tictac"} {
			st, err := strategy.SlicingOnly(0).WithSched(name)
			if err != nil {
				t.Fatal(err)
			}
			st.Name = "sliced+" + name

			cb := cluster.Run(cluster.Config{Model: m, Machines: 4, Strategy: st,
				BandwidthGbps: 1.5, WarmupIters: warm, MeasureIters: measure, Seed: 1})
			cp := cluster.Run(cluster.Config{Model: m, Machines: 4, Strategy: st,
				BandwidthGbps: 1.5, PreemptQuantum: netsim.DefaultPreemptQuantum,
				WarmupIters: warm, MeasureIters: measure, Seed: 1})
			fired += cp.Preemptions
			if cp.MeanIterTime > cb.MeanIterTime+sim.Time(sliceSlackNs) {
				t.Errorf("cluster %s/%s: preemptive iter %.3f ms exceeds non-preemptive %.3f ms by more than one slice slack",
					m.Name, name, cp.MeanIterTime.Millis(), cb.MeanIterTime.Millis())
			}

			rb := ring.Run(ring.Config{Model: m, Machines: 4, Strategy: st,
				BandwidthGbps: 1.5, WarmupIters: warm, MeasureIters: measure, Seed: 1})
			rp := ring.Run(ring.Config{Model: m, Machines: 4, Strategy: st,
				BandwidthGbps: 1.5, PreemptQuantum: netsim.DefaultPreemptQuantum,
				WarmupIters: warm, MeasureIters: measure, Seed: 1})
			if rp.MeanIterTime > rb.MeanIterTime+sim.Time(sliceSlackNs) {
				t.Errorf("ring %s/%s: preemptive iter %.3f ms exceeds non-preemptive %.3f ms by more than one slice slack",
					m.Name, name, rp.MeanIterTime.Millis(), rb.MeanIterTime.Millis())
			}
		}
	}
	if fired == 0 {
		t.Error("no preemption ever fired across the zoo: the ablation axis is measuring nothing")
	}
}

// TestPreemptionRecoversHeadOfLineBlocking pins the regime the mechanism
// exists for: express traffic behind a BULK in-flight message. With one
// huge low-priority message serializing ahead of a small urgent one,
// message-granularity scheduling strands the urgent chunk for the whole
// bulk transfer; the resumable egress delivers it almost immediately, and
// the bulk message still completes without losing progress.
func TestPreemptionRecoversHeadOfLineBlocking(t *testing.T) {
	type outcome struct {
		urgent, bulk sim.Time
	}
	run := func(quantum int64) outcome {
		var eng sim.Engine
		cfg := netsim.Config{
			BandwidthGbps:      8, // 1 byte/ns
			LocalBandwidthGbps: 8000,
			Egress:             "p3",
			PreemptQuantum:     quantum,
		}
		var out outcome
		nw := netsim.New(&eng, 2, cfg, func(m netsim.Message) {
			if m.Chunk == 1 {
				out.urgent = eng.Now()
			} else {
				out.bulk = eng.Now()
			}
		}, nil)
		nw.Send(netsim.Message{From: 0, To: 1, Bytes: 1 << 20, Priority: 9, Chunk: 0})
		eng.After(1000, func() {
			nw.Send(netsim.Message{From: 0, To: 1, Bytes: 4 << 10, Priority: 0, Chunk: 1})
		})
		eng.Run()
		return out
	}
	base := run(0)
	pre := run(64 << 10)
	// Non-preemptive: the urgent message waits out the full 1 MiB bulk
	// serialization. Preemptive: it starts at the next 64 KiB boundary.
	if pre.urgent >= base.urgent {
		t.Fatalf("urgent delivery not improved: %v vs %v", pre.urgent, base.urgent)
	}
	if base.urgent < sim.Time(1<<20) || pre.urgent > sim.Time(200_000) {
		t.Fatalf("head-of-line relief off-scale: base %v, preemptive %v", base.urgent, pre.urgent)
	}
	// Work conservation: the bulk message pays exactly the urgent message's
	// service time (egress side), nothing more.
	if d := pre.bulk - base.bulk; d <= 0 || d > sim.Time(10_000) {
		t.Fatalf("bulk completion shifted by %v, want one small-message service time", d)
	}
}
