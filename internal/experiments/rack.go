package experiments

import (
	"fmt"
	"time"

	"p3/internal/cluster"
	"p3/internal/netsim"
	"p3/internal/sim"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// RackRow is one cell of the rack-scale sweep: a multi-rack topology with
// an oversubscribed core, with parameter-server placement, core-port
// scheduling, in-rack aggregation, the spine tier and its hierarchical
// extensions as swept axes.
type RackRow struct {
	Model    string
	Machines int
	RackSize int
	// Oversub is the core oversubscription ratio (1 = non-blocking core).
	Oversub float64
	// Placement is the parameter-server placement policy: "spread" puts one
	// server in every rack (pulls fan out of each rack once), "packed"
	// crowds every server into rack 0 (all push/pull traffic squeezes
	// through one rack's uplink and downlink).
	Placement string
	Sched     string
	// Core names the discipline of the ToR uplink/downlink port queues;
	// "" is the blind FIFO of plain switch ports.
	Core string
	// Agg reports whether Parameter Hub-style in-rack aggregation was on:
	// gradient pushes reduce at the rack aggregator (one stream per rack
	// crosses the core) and server broadcasts fan out at the ToR.
	Agg bool
	// Pods is the spine-tier pod count (0 = single-tier core). Two-tier
	// cells run a 4:1 spine above the 4:1 core.
	Pods int
	// Hier reports whether the rack streams reduced again at the pod
	// aggregators (one stream per pod crosses the spine to the servers).
	Hier bool
	// Local reports whether the rack aggregators served parameter pulls
	// from a rack-local cache (RackLocalPS; only meaningful on pull-mode
	// strategy cells, see Pull).
	Local bool
	// AggGBps is the aggregators' reduce rate in GB/s (0 = the free
	// instantaneous reduction engine).
	AggGBps float64
	// Pull marks cells running the NotifyPull baseline strategy instead of
	// the sliced Immediate-broadcast one — the mode whose parameter pulls
	// RackLocalPS keeps inside the rack.
	Pull bool
	// PerMachine is per-machine training throughput (samples/sec).
	PerMachine float64
	IterMs     float64
	// CoreMB is the payload volume that serialized through the core ports,
	// in megabytes — the traffic aggregation exists to shrink.
	CoreMB float64
	// SpineMB is the payload volume that serialized through the spine
	// ports (0 on single-tier cells) — the traffic hierarchical
	// aggregation exists to shrink.
	SpineMB float64
	Events  uint64
	WallMs  float64
}

// rackPlacement builds the ServerMachines vector for a placement policy.
// "spread" distributes servers round-robin over racks (server s in rack
// s mod racks, at slot s div racks — one per rack while servers <= racks),
// "packed" crowds them all into rack 0.
func rackPlacement(policy string, servers, machines, rackSize int) []int {
	racks := (machines + rackSize - 1) / rackSize
	out := make([]int, servers)
	for s := range out {
		if policy == "spread" {
			out[s] = (s%racks)*rackSize + s/racks
		} else {
			out[s] = s
		}
		if out[s] >= machines {
			panic(fmt.Sprintf("rackPlacement: server %d lands on machine %d of %d (%s, %d racks)",
				s, out[s], machines, policy, racks))
		}
	}
	return out
}

// Rack sweeps the rack-scale regime the paper's flat 4-16 machine testbed
// never reaches: machines in racks behind an oversubscribed core (the
// dominant constraint Parameter Hub identifies for rack-scale training),
// with the scale sweep's discipline axis, server placement, and — against
// the 4:1 core — the core-aware mechanisms: priority core queues
// (the ToR ports run the row's discipline), in-rack aggregation, and the
// two-tier extensions layered on top of it: a 4:1 spine over two pods
// (rack-aggregated vs hierarchically aggregated), the aggregator
// reduce-rate axis (free vs 8 vs 1 GB/s, bracketing the ~6 GB/s line-rate
// ingest demand of a 32-machine rack at 1.5 Gbps), and the rack-local
// parameter cache under the pull-mode baseline strategy. The non-blocking
// (1:1) column isolates placement effects from core contention. Cells run
// on the parEachEngine pool with o.Shards threaded through, like the
// scale sweep.
func Rack(o Options) []RackRow {
	warm, measure := o.iters()
	const model = "resnet50"
	const gbps = 1.5
	machines, rackSize, servers := 256, 32, 8
	oversubs := []float64{1, 4}
	scheds := []string{"fifo", "p3", "damped", "tictac"}
	hierScheds := []string{"fifo", "damped"}
	rates := []float64{8, 1}
	if o.Fast {
		// Same experiment, CI-sized: still multi-rack, still oversubscribed,
		// still one server per rack when spread, still two pods.
		machines, rackSize, servers = 64, 16, 4
		oversubs = []float64{4}
		scheds = []string{"fifo", "damped"}
		hierScheds = []string{"damped"}
		rates = []float64{1}
	}
	type cell struct {
		oversub   float64
		placement string
		sched     string
		core      string
		agg       bool
		pods      int
		hier      bool
		local     bool
		pull      bool
		aggGBps   float64
	}
	var cells []cell
	for _, ov := range oversubs {
		for _, pl := range []string{"spread", "packed"} {
			for _, sc := range scheds {
				cells = append(cells, cell{oversub: ov, placement: pl, sched: sc})
				if ov > 1 {
					// The core-aware mechanisms only differentiate against a
					// contended core. The fast sweep drops the core-queues-only
					// cells: they are the most expensive rows (full flat event
					// volume) and their parity base case is pinned by
					// cluster-level tests.
					if !o.Fast {
						cells = append(cells, cell{oversub: ov, placement: pl, sched: sc, core: sc})
					}
					cells = append(cells, cell{oversub: ov, placement: pl, sched: sc, core: sc, agg: true})
				}
			}
		}
	}
	// Two-tier cells: spread placement against the contended core, a 4:1
	// spine over two pods — rack-only vs hierarchical aggregation, the
	// reduce-rate axis on the hierarchical cell, and the rack-local cache
	// pair under the pull-mode baseline.
	for _, sc := range hierScheds {
		cells = append(cells,
			cell{oversub: 4, placement: "spread", sched: sc, core: sc, agg: true, pods: 2},
			cell{oversub: 4, placement: "spread", sched: sc, core: sc, agg: true, pods: 2, hier: true})
	}
	for _, rate := range rates {
		cells = append(cells, cell{oversub: 4, placement: "spread", sched: hierScheds[len(hierScheds)-1],
			core: hierScheds[len(hierScheds)-1], agg: true, pods: 2, hier: true, aggGBps: rate})
	}
	for _, local := range []bool{false, true} {
		cells = append(cells, cell{oversub: 4, placement: "spread", sched: "fifo", agg: true, pull: true, local: local})
	}
	rows := make([]RackRow, len(cells))
	parEachEngine(len(cells), func(i int, eng *sim.Engine) {
		c := cells[i]
		base := strategy.SlicingOnly(0)
		name := "sliced"
		if c.pull {
			base = strategy.Baseline()
			name = "baseline"
		}
		st, err := base.WithSched(c.sched)
		if err != nil {
			panic(err)
		}
		st.Name = name + "+" + c.sched
		topo := netsim.Topology{RackSize: rackSize, CoreOversub: c.oversub, CoreSched: c.core, Pods: c.pods}
		if c.pods > 0 {
			topo.SpineOversub = 4
			topo.SpineSched = c.core
		}
		//p3:wallclock-ok WallMs reports real simulator throughput
		t0 := time.Now()
		r := cluster.Run(cluster.Config{
			Model: zoo.ByName(model), Machines: machines, Servers: servers,
			Strategy: st, BandwidthGbps: gbps,
			WarmupIters: warm, MeasureIters: measure, Seed: o.Seed + 1,
			Topology:        topo,
			ServerMachines:  rackPlacement(c.placement, servers, machines, rackSize),
			RackAggregation: c.agg,
			HierAggregation: c.hier,
			RackLocalPS:     c.local,
			AggReduceGBps:   c.aggGBps,
			Engine:          eng, Shards: o.Shards,
		})
		rows[i] = RackRow{
			Model: model, Machines: machines, RackSize: rackSize,
			Oversub: c.oversub, Placement: c.placement, Sched: c.sched,
			Core: c.core, Agg: c.agg,
			Pods: c.pods, Hier: c.hier, Local: c.local, AggGBps: c.aggGBps, Pull: c.pull,
			PerMachine: r.Throughput / float64(r.Machines),
			IterMs:     r.MeanIterTime.Millis(),
			CoreMB:     float64(r.CoreBytes) / 1e6,
			SpineMB:    float64(r.SpineBytes) / 1e6,
			Events:     r.Events,
			WallMs:     float64(time.Since(t0).Microseconds()) / 1000, //p3:wallclock-ok WallMs reports real simulator throughput
		}
	})
	return rows
}

// RackTable renders the rack sweep, one line per cell.
func RackTable(rows []RackRow) string {
	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	out := "model\tmachines\track\toversub\tplacement\tstrategy\tsched\tcore\tagg\tpods\thier\tlocal\tagg_GBps\tsamples/s/machine\titer_ms\tcore_MB\tspine_MB\tevents\tsim_wall_ms\n"
	for _, r := range rows {
		core := r.Core
		if core == "" {
			core = "blind"
		}
		strat := "sliced"
		if r.Pull {
			strat = "baseline"
		}
		rate := "inf"
		if r.AggGBps > 0 {
			rate = fmt.Sprintf("%g", r.AggGBps)
		}
		out += fmt.Sprintf("%s\t%d\t%d\t%g:1\t%s\t%s\t%s\t%s\t%s\t%d\t%s\t%s\t%s\t%.1f\t%.2f\t%.0f\t%.0f\t%d\t%.1f\n",
			r.Model, r.Machines, r.RackSize, r.Oversub, r.Placement, strat, r.Sched, core, onOff(r.Agg),
			r.Pods, onOff(r.Hier), onOff(r.Local), rate,
			r.PerMachine, r.IterMs, r.CoreMB, r.SpineMB, r.Events, r.WallMs)
	}
	return out
}
