package experiments

import (
	"fmt"
	"time"

	"p3/internal/cluster"
	"p3/internal/netsim"
	"p3/internal/sim"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// RackRow is one cell of the rack-scale sweep: a multi-rack topology with
// an oversubscribed core, with parameter-server placement, core-port
// scheduling and in-rack aggregation as swept axes.
type RackRow struct {
	Model    string
	Machines int
	RackSize int
	// Oversub is the core oversubscription ratio (1 = non-blocking core).
	Oversub float64
	// Placement is the parameter-server placement policy: "spread" puts one
	// server in every rack (pulls fan out of each rack once), "packed"
	// crowds every server into rack 0 (all push/pull traffic squeezes
	// through one rack's uplink and downlink).
	Placement string
	Sched     string
	// Core names the discipline of the ToR uplink/downlink port queues;
	// "" is the blind FIFO of plain switch ports.
	Core string
	// Agg reports whether Parameter Hub-style in-rack aggregation was on:
	// gradient pushes reduce at the rack aggregator (one stream per rack
	// crosses the core) and server broadcasts fan out at the ToR.
	Agg bool
	// PerMachine is per-machine training throughput (samples/sec).
	PerMachine float64
	IterMs     float64
	// CoreMB is the payload volume that serialized through the core ports,
	// in megabytes — the traffic aggregation exists to shrink.
	CoreMB float64
	Events uint64
	WallMs float64
}

// rackPlacement builds the ServerMachines vector for a placement policy.
// "spread" distributes servers round-robin over racks (server s in rack
// s mod racks, at slot s div racks — one per rack while servers <= racks),
// "packed" crowds them all into rack 0.
func rackPlacement(policy string, servers, machines, rackSize int) []int {
	racks := (machines + rackSize - 1) / rackSize
	out := make([]int, servers)
	for s := range out {
		if policy == "spread" {
			out[s] = (s%racks)*rackSize + s/racks
		} else {
			out[s] = s
		}
		if out[s] >= machines {
			panic(fmt.Sprintf("rackPlacement: server %d lands on machine %d of %d (%s, %d racks)",
				s, out[s], machines, policy, racks))
		}
	}
	return out
}

// Rack sweeps the rack-scale regime the paper's flat 4-16 machine testbed
// never reaches: machines in racks behind an oversubscribed core (the
// dominant constraint Parameter Hub identifies for rack-scale training),
// with the scale sweep's discipline axis, server placement, and — against
// the 4:1 core — the two core-aware mechanisms: priority core queues
// (mode "coreq": the ToR ports run the row's discipline) and in-rack
// aggregation (mode "agg": aggregation plus the discipline-scheduled
// core). The non-blocking (1:1) column isolates placement effects from
// core contention. Cells run on the parEachEngine pool with o.Shards
// threaded through, like the scale sweep.
func Rack(o Options) []RackRow {
	warm, measure := o.iters()
	const model = "resnet50"
	const gbps = 1.5
	machines, rackSize, servers := 256, 32, 8
	oversubs := []float64{1, 4}
	scheds := []string{"fifo", "p3", "damped", "tictac"}
	if o.Fast {
		// Same experiment, CI-sized: still multi-rack, still oversubscribed,
		// still one server per rack when spread.
		machines, rackSize, servers = 64, 16, 4
		oversubs = []float64{4}
		scheds = []string{"fifo", "damped"}
	}
	type cell struct {
		oversub   float64
		placement string
		sched     string
		core      string
		agg       bool
	}
	var cells []cell
	for _, ov := range oversubs {
		for _, pl := range []string{"spread", "packed"} {
			for _, sc := range scheds {
				cells = append(cells, cell{ov, pl, sc, "", false})
				if ov > 1 {
					// The core-aware mechanisms only differentiate against a
					// contended core. The fast sweep drops the core-queues-only
					// cells: they are the most expensive rows (full flat event
					// volume) and their parity base case is pinned by
					// cluster-level tests.
					if !o.Fast {
						cells = append(cells, cell{ov, pl, sc, sc, false})
					}
					cells = append(cells, cell{ov, pl, sc, sc, true})
				}
			}
		}
	}
	rows := make([]RackRow, len(cells))
	parEachEngine(len(cells), func(i int, eng *sim.Engine) {
		c := cells[i]
		st, err := strategy.SlicingOnly(0).WithSched(c.sched)
		if err != nil {
			panic(err)
		}
		st.Name = "sliced+" + c.sched
		t0 := time.Now()
		r := cluster.Run(cluster.Config{
			Model: zoo.ByName(model), Machines: machines, Servers: servers,
			Strategy: st, BandwidthGbps: gbps,
			WarmupIters: warm, MeasureIters: measure, Seed: o.Seed + 1,
			Topology:        netsim.Topology{RackSize: rackSize, CoreOversub: c.oversub, CoreSched: c.core},
			ServerMachines:  rackPlacement(c.placement, servers, machines, rackSize),
			RackAggregation: c.agg,
			Engine:          eng, Shards: o.Shards,
		})
		rows[i] = RackRow{
			Model: model, Machines: machines, RackSize: rackSize,
			Oversub: c.oversub, Placement: c.placement, Sched: c.sched,
			Core: c.core, Agg: c.agg,
			PerMachine: r.Throughput / float64(r.Machines),
			IterMs:     r.MeanIterTime.Millis(),
			CoreMB:     float64(r.CoreBytes) / 1e6,
			Events:     r.Events,
			WallMs:     float64(time.Since(t0).Microseconds()) / 1000,
		}
	})
	return rows
}

// RackTable renders the rack sweep, one line per (oversub, placement,
// sched, core, agg).
func RackTable(rows []RackRow) string {
	out := "model\tmachines\track\toversub\tplacement\tsched\tcore\tagg\tsamples/s/machine\titer_ms\tcore_MB\tevents\tsim_wall_ms\n"
	for _, r := range rows {
		core := r.Core
		if core == "" {
			core = "blind"
		}
		agg := "off"
		if r.Agg {
			agg = "on"
		}
		out += fmt.Sprintf("%s\t%d\t%d\t%g:1\t%s\t%s\t%s\t%s\t%.1f\t%.2f\t%.0f\t%d\t%.1f\n",
			r.Model, r.Machines, r.RackSize, r.Oversub, r.Placement, r.Sched, core, agg,
			r.PerMachine, r.IterMs, r.CoreMB, r.Events, r.WallMs)
	}
	return out
}
