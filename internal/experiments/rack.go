package experiments

import (
	"fmt"
	"time"

	"p3/internal/cluster"
	"p3/internal/netsim"
	"p3/internal/sim"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// RackRow is one cell of the rack-scale sweep: a multi-rack topology with
// an oversubscribed core, with parameter-server placement as a swept axis.
type RackRow struct {
	Model    string
	Machines int
	RackSize int
	// Oversub is the core oversubscription ratio (1 = non-blocking core).
	Oversub float64
	// Placement is the parameter-server placement policy: "spread" puts one
	// server in every rack (pulls fan out of each rack once), "packed"
	// crowds every server into rack 0 (all push/pull traffic squeezes
	// through one rack's uplink and downlink).
	Placement string
	Sched     string
	// PerMachine is per-machine training throughput (samples/sec).
	PerMachine float64
	IterMs     float64
	Events     uint64
	WallMs     float64
}

// rackPlacement builds the ServerMachines vector for a placement policy.
func rackPlacement(policy string, servers, rackSize int) []int {
	out := make([]int, servers)
	for s := range out {
		if policy == "spread" {
			out[s] = s * rackSize // server s at the head of rack s
		} else {
			out[s] = s // all servers in rack 0
		}
	}
	return out
}

// Rack sweeps the rack-scale regime the paper's flat 4-16 machine testbed
// never reaches: machines in racks behind an oversubscribed core (the
// dominant constraint Parameter Hub identifies for rack-scale training),
// with the scale sweep's discipline axis and server placement as the
// second axis. The non-blocking (1:1) column isolates placement effects
// from core contention; the oversubscribed column is where the two
// interact. Cells run on the parEachEngine pool with o.Shards threaded
// through, like the scale sweep.
func Rack(o Options) []RackRow {
	warm, measure := o.iters()
	const model = "resnet50"
	const gbps = 1.5
	machines, rackSize, servers := 256, 32, 8
	oversubs := []float64{1, 4}
	scheds := []string{"fifo", "p3", "damped", "tictac"}
	if o.Fast {
		// Same experiment, CI-sized: still multi-rack, still oversubscribed,
		// still one server per rack when spread.
		machines, rackSize, servers = 64, 16, 4
		oversubs = []float64{4}
		scheds = []string{"fifo", "damped"}
	}
	type cell struct {
		oversub   float64
		placement string
		sched     string
	}
	var cells []cell
	for _, ov := range oversubs {
		for _, pl := range []string{"spread", "packed"} {
			for _, sc := range scheds {
				cells = append(cells, cell{ov, pl, sc})
			}
		}
	}
	rows := make([]RackRow, len(cells))
	parEachEngine(len(cells), func(i int, eng *sim.Engine) {
		c := cells[i]
		st, err := strategy.SlicingOnly(0).WithSched(c.sched)
		if err != nil {
			panic(err)
		}
		st.Name = "sliced+" + c.sched
		t0 := time.Now()
		r := cluster.Run(cluster.Config{
			Model: zoo.ByName(model), Machines: machines, Servers: servers,
			Strategy: st, BandwidthGbps: gbps,
			WarmupIters: warm, MeasureIters: measure, Seed: o.Seed + 1,
			Topology:       netsim.Topology{RackSize: rackSize, CoreOversub: c.oversub},
			ServerMachines: rackPlacement(c.placement, servers, rackSize),
			Engine:         eng, Shards: o.Shards,
		})
		rows[i] = RackRow{
			Model: model, Machines: machines, RackSize: rackSize,
			Oversub: c.oversub, Placement: c.placement, Sched: c.sched,
			PerMachine: r.Throughput / float64(r.Machines),
			IterMs:     r.MeanIterTime.Millis(),
			Events:     r.Events,
			WallMs:     float64(time.Since(t0).Microseconds()) / 1000,
		}
	})
	return rows
}

// RackTable renders the rack sweep, one line per (oversub, placement,
// sched).
func RackTable(rows []RackRow) string {
	out := "model\tmachines\track\toversub\tplacement\tsched\tsamples/s/machine\titer_ms\tevents\tsim_wall_ms\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s\t%d\t%d\t%g:1\t%s\t%s\t%.1f\t%.2f\t%d\t%.1f\n",
			r.Model, r.Machines, r.RackSize, r.Oversub, r.Placement, r.Sched,
			r.PerMachine, r.IterMs, r.Events, r.WallMs)
	}
	return out
}
