package experiments

import (
	"fmt"

	"p3/internal/cluster"
	"p3/internal/model"
	"p3/internal/ring"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// AblationRow decomposes P3's gain for one model at its headline bandwidth.
type AblationRow struct {
	Model         string
	BandwidthGbps float64
	// Per-machine throughputs at each design point.
	Baseline      float64 // KVStore: shards, FIFO, notify+pull
	ImmediateOnly float64 // + immediate broadcast (still shards, FIFO)
	SlicingOnly   float64 // + slicing (FIFO order)
	PriorityOnly  float64 // shards + priority queues (no slicing)
	FullP3        float64 // slicing + priority
}

// Ablation isolates the contribution of each P3 design decision the paper
// discusses in Section 4.2: removing the notify/pull round trip, slicing,
// and priority scheduling. DESIGN.md lists this decomposition as the ablation
// study for the mechanism's two core components.
func Ablation(o Options) []AblationRow {
	cases := []struct {
		model string
		gbps  float64
	}{
		{"resnet50", 4},
		{"vgg19", 15},
		{"sockeye", 4},
	}
	priorityShards := strategy.Strategy{
		Name: "priority-shards", Granularity: strategy.Shards,
		Sched: "p3", Pull: strategy.Immediate,
	}
	// The 15 (model, design point) cells are independent pure simulations:
	// fill a flat grid on the worker pool, then assemble rows in case order.
	strategies := []strategy.Strategy{
		strategy.Baseline(), strategy.WFBP(), strategy.SlicingOnly(0),
		priorityShards, strategy.P3(0),
	}
	grid := make([]float64, len(cases)*len(strategies))
	parEach(len(grid), func(i int) {
		c := cases[i/len(strategies)]
		r := run(zoo.ByName(c.model), strategies[i%len(strategies)], 4, c.gbps, o, nil)
		grid[i] = r.Throughput / float64(r.Machines)
	})
	rows := make([]AblationRow, 0, len(cases))
	for ci, c := range cases {
		g := grid[ci*len(strategies):]
		rows = append(rows, AblationRow{
			Model:         c.model,
			BandwidthGbps: c.gbps,
			Baseline:      g[0],
			ImmediateOnly: g[1],
			SlicingOnly:   g[2],
			PriorityOnly:  g[3],
			FullP3:        g[4],
		})
	}
	return rows
}

// AblationTable renders the decomposition.
func AblationTable(rows []AblationRow) string {
	out := "model\tGbps\tbaseline\t+immediate\t+slicing\t+priority\tfull_p3\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s\t%g\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			r.Model, r.BandwidthGbps, r.Baseline, r.ImmediateOnly, r.SlicingOnly, r.PriorityOnly, r.FullP3)
	}
	return out
}

// ExtAllreduce is the extension experiment backing the paper's Section 6
// claim that P3's principles carry over to other aggregation methods: the
// same models on ring all-reduce, at layer granularity (WFBP-style, what
// contemporary all-reduce frameworks did) vs P3-style sliced + priority.
func ExtAllreduce(o Options) []*Figure {
	warm, measure := o.iters()
	configs := []struct {
		model string
		grid  []float64
	}{
		{"resnet50", fig7Grid("resnet50", o.Fast)},
		{"vgg19", fig7Grid("vgg19", o.Fast)},
		{"sockeye", fig7Grid("sockeye", o.Fast)},
	}
	strategies := []struct {
		name string
		s    strategy.Strategy
	}{
		{"ar-layer", strategy.Strategy{Name: "ar-layer", Granularity: strategy.Shards, Sched: "fifo"}},
		{"ar-sliced", strategy.Strategy{Name: "ar-sliced", Granularity: strategy.Slices, Sched: "fifo"}},
		{"ar-p3", strategy.Strategy{Name: "ar-p3", Granularity: strategy.Slices, Sched: "p3"}},
	}
	var figs []*Figure
	sub := 'a'
	for _, c := range configs {
		m := zoo.ByName(c.model)
		fig := &Figure{
			ID:     fmt.Sprintf("ext-allreduce-%c", sub),
			Title:  fmt.Sprintf("Extension: ring all-reduce, %s (4 machines)", c.model),
			XLabel: "bandwidth (Gbps)",
			YLabel: fmt.Sprintf("throughput (%s/sec per machine)", m.SampleUnit),
			Notes: []string{
				"extension of Section 6: slicing + priority applied to ring all-reduce instead of the parameter server",
			},
		}
		for _, st := range strategies {
			series := Series{Name: st.name}
			for _, bw := range c.grid {
				r := ring.Run(ring.Config{
					Model: m, Machines: 4, Strategy: st.s, BandwidthGbps: bw,
					WarmupIters: warm, MeasureIters: measure, Seed: o.Seed + 1,
				})
				series.X = append(series.X, bw)
				series.Y = append(series.Y, r.Throughput/float64(r.Machines))
			}
			fig.Series = append(fig.Series, series)
		}
		figs = append(figs, fig)
		sub++
	}
	return figs
}

// TimeToAccuracyRow is one line of the time-to-accuracy extension: how the
// mechanisms trade iteration speed against statistical efficiency.
type TimeToAccuracyRow struct {
	Mechanism   string
	IterMs      float64 // simulated iteration time at the reference setup
	FinalAcc    float64
	MinutesTo80 float64 // simulated wall-clock to 80% validation accuracy
}

// TimeToAccuracy combines both halves of the reproduction: simulated
// iteration times (ResNet-110 profile, 4 machines, 1 Gbps — the Appendix
// B.2 setup) with measured convergence trajectories, for baseline, P3 and
// DGC. DGC moves ~0.1% of the bytes, so its iterations are nearly
// compute-bound, but it pays a small accuracy gap — while P3 gets its
// speedup with bit-identical convergence.
func TimeToAccuracy(o Options) []TimeToAccuracyRow {
	warm, measure := o.iters()
	iterMs := func(s strategy.Strategy, scaleBytes float64) float64 {
		m := zoo.ResNet110()
		if scaleBytes != 1 {
			clone := *m
			clone.Layers = append([]model.Layer(nil), m.Layers...)
			for i := range clone.Layers {
				p := int64(float64(clone.Layers[i].Params) * scaleBytes)
				if p < 1 {
					p = 1
				}
				clone.Layers[i].Params = p
			}
			m = &clone
		}
		r := cluster.Run(cluster.Config{
			Model: m, Machines: 4, Strategy: s, BandwidthGbps: 1,
			WarmupIters: warm, MeasureIters: measure, Seed: o.Seed + 1,
		})
		return r.MeanIterTime.Millis()
	}

	// Accuracy trajectories from the real trainer.
	histories := convergenceHistories(o)

	rows := []TimeToAccuracyRow{
		{Mechanism: "baseline", IterMs: iterMs(strategy.Baseline(), 1)},
		{Mechanism: "p3", IterMs: iterMs(strategy.P3(0), 1)},
		// DGC wire bytes: top-0.1% of values plus indices (~2x per value).
		{Mechanism: "dgc", IterMs: iterMs(strategy.P3(0), 0.002)},
	}
	for i := range rows {
		h := histories[rows[i].Mechanism]
		rows[i].FinalAcc = h.acc[len(h.acc)-1]
		rows[i].MinutesTo80 = -1
		for e, a := range h.acc {
			if a >= 0.8 {
				rows[i].MinutesTo80 = float64(e+1) * float64(h.itersPerEpoch) * rows[i].IterMs / 1000 / 60
				break
			}
		}
	}
	return rows
}

// TimeToAccuracyTable renders the extension rows.
func TimeToAccuracyTable(rows []TimeToAccuracyRow) string {
	out := "mechanism\titer_ms\tfinal_acc\tminutes_to_80%\n"
	for _, r := range rows {
		to80 := "never"
		if r.MinutesTo80 >= 0 {
			to80 = fmt.Sprintf("%.1f", r.MinutesTo80)
		}
		out += fmt.Sprintf("%s\t%.1f\t%.4f\t%s\n", r.Mechanism, r.IterMs, r.FinalAcc, to80)
	}
	return out
}
