package experiments

import (
	"strings"
	"testing"
)

func TestSensitivity(t *testing.T) {
	rows := Sensitivity(fast)
	if len(rows) != 3 { // fast: 2 server counts + 1 batch
		t.Fatalf("%d sensitivity rows", len(rows))
	}
	var oneServer, fourServers SensitivityRow
	for _, r := range rows {
		if r.Baseline <= 0 || r.P3 <= 0 {
			t.Fatalf("%s=%d: non-positive throughput", r.Knob, r.Value)
		}
		if r.P3 < r.Baseline*0.97 {
			t.Errorf("%s=%d: P3 (%.1f) clearly below baseline (%.1f)", r.Knob, r.Value, r.P3, r.Baseline)
		}
		if r.Knob == "servers" && r.Value == 1 {
			oneServer = r
		}
		if r.Knob == "servers" && r.Value == 4 {
			fourServers = r
		}
	}
	// Concentrating all traffic on one server must not beat spreading it
	// over four (the load-balancing rationale of KVStore and round-robin
	// slicing alike).
	if oneServer.P3 > fourServers.P3*1.001 {
		t.Errorf("1 server (%.1f) beat 4 servers (%.1f) under P3", oneServer.P3, fourServers.P3)
	}
	if !strings.Contains(SensitivityTable(rows), "gain%") {
		t.Fatal("table broken")
	}
}
