package experiments

import (
	"strings"
	"testing"
)

func TestAblation(t *testing.T) {
	rows := Ablation(fast)
	if len(rows) != 3 {
		t.Fatalf("%d ablation rows", len(rows))
	}
	for _, r := range rows {
		// Full P3 dominates every single-mechanism variant.
		for name, v := range map[string]float64{
			"baseline":   r.Baseline,
			"+immediate": r.ImmediateOnly,
			"+slicing":   r.SlicingOnly,
			"+priority":  r.PriorityOnly,
		} {
			if r.FullP3 < v*0.99 {
				t.Errorf("%s: full P3 (%.1f) below %s (%.1f)", r.Model, r.FullP3, name, v)
			}
		}
		// Each partial mechanism should at least not hurt the baseline.
		if r.SlicingOnly < r.Baseline*0.98 {
			t.Errorf("%s: slicing (%.1f) hurt the baseline (%.1f)", r.Model, r.SlicingOnly, r.Baseline)
		}
	}
	tbl := AblationTable(rows)
	if !strings.Contains(tbl, "full_p3") {
		t.Fatalf("table:\n%s", tbl)
	}
}

func TestExtAllreduce(t *testing.T) {
	figs := ExtAllreduce(fast)
	if len(figs) != 3 {
		t.Fatalf("%d allreduce figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
		if len(f.Series) != 3 {
			t.Fatalf("%s: %d series", f.ID, len(f.Series))
		}
		layer, p3 := f.Series[0], f.Series[2]
		// The paper's claim transplanted: P3-style all-reduce never loses
		// to layer-granularity all-reduce.
		for i := range layer.Y {
			if p3.Y[i] < layer.Y[i]*0.99 {
				t.Errorf("%s: ar-p3 (%.1f) below ar-layer (%.1f) at %g Gbps",
					f.ID, p3.Y[i], layer.Y[i], layer.X[i])
			}
		}
	}
}

func TestTimeToAccuracy(t *testing.T) {
	rows := TimeToAccuracy(fast)
	if len(rows) != 3 {
		t.Fatalf("%d tta rows", len(rows))
	}
	byName := map[string]TimeToAccuracyRow{}
	for _, r := range rows {
		byName[r.Mechanism] = r
		if r.IterMs <= 0 {
			t.Errorf("%s: iteration time %v", r.Mechanism, r.IterMs)
		}
	}
	// P3 iterates faster than the baseline; baseline and P3 share identical
	// final accuracy (dense aggregation is the same arithmetic).
	if byName["p3"].IterMs >= byName["baseline"].IterMs {
		t.Errorf("p3 iteration (%.1f ms) not faster than baseline (%.1f ms)",
			byName["p3"].IterMs, byName["baseline"].IterMs)
	}
	if byName["p3"].FinalAcc != byName["baseline"].FinalAcc {
		t.Error("p3 and baseline final accuracies differ — dense aggregation must be shared")
	}
	// DGC's iterations are the fastest (it barely moves bytes).
	if byName["dgc"].IterMs >= byName["baseline"].IterMs {
		t.Errorf("dgc iteration (%.1f ms) not below baseline (%.1f ms)",
			byName["dgc"].IterMs, byName["baseline"].IterMs)
	}
	tbl := TimeToAccuracyTable(rows)
	if !strings.Contains(tbl, "minutes_to_80%") {
		t.Fatalf("table:\n%s", tbl)
	}
}
