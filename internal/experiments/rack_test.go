package experiments

import (
	"strings"
	"testing"

	"p3/internal/cluster"
	"p3/internal/netsim"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// TestRackSweepFast runs the CI-sized rack sweep end to end: every cell
// completes with sane throughput, the event volume depends only on whether
// aggregation is on (the protocol sends the same messages for a given
// aggregation setting; placement, discipline and core queueing only move
// their timing), aggregated cells move strictly fewer bytes through the
// core than flat ones, and the table renders every axis.
func TestRackSweepFast(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rack sweep in -short mode")
	}
	rows := Rack(Options{Fast: true, Seed: 1})
	if len(rows) == 0 {
		t.Fatal("no rack rows")
	}
	events := map[bool]uint64{}
	coreMB := map[bool]float64{}
	for _, r := range rows {
		if r.PerMachine <= 0 || r.IterMs <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if want, ok := events[r.Agg]; !ok {
			events[r.Agg] = r.Events
		} else if r.Events != want {
			t.Errorf("event volume should depend only on aggregation: %+v has %d, want %d", r, r.Events, want)
		}
		if r.CoreMB <= 0 {
			t.Errorf("no core traffic recorded: %+v", r)
		}
		coreMB[r.Agg] = r.CoreMB
	}
	if len(events) != 2 {
		t.Fatalf("fast sweep should cover agg on and off, got %v", events)
	}
	if coreMB[true] >= coreMB[false] {
		t.Errorf("aggregation moved %.0f MB through the core, flat moved %.0f — aggregation should shrink core traffic",
			coreMB[true], coreMB[false])
	}
	table := RackTable(rows)
	for _, want := range []string{"spread", "packed", "4:1", "blind", "damped", "\ton\t", "\toff\t"} {
		if !strings.Contains(table, want) {
			t.Fatalf("rack table missing %q:\n%s", want, table)
		}
	}
}

// rackFindingRun is one cell of the pinned 256-machine findings, at the
// same topology the full Rack sweep uses but with smoke-test iteration
// counts. core names the ToR port discipline ("" = blind FIFO) and agg
// toggles in-rack aggregation.
func rackFindingRun(t *testing.T, sched, placement, core string, agg bool) cluster.Result {
	t.Helper()
	st, err := strategy.SlicingOnly(0).WithSched(sched)
	if err != nil {
		t.Fatal(err)
	}
	st.Name = "sliced+" + sched
	return cluster.Run(cluster.Config{
		Model: zoo.ByName("resnet50"), Machines: 256, Servers: 8,
		Strategy: st, BandwidthGbps: 1.5,
		WarmupIters: 1, MeasureIters: 2, Seed: 2,
		Topology:        netsim.Topology{RackSize: 32, CoreOversub: 4, CoreSched: core},
		ServerMachines:  rackPlacement(placement, 8, 256, 32),
		RackAggregation: agg,
	})
}

// TestRackOversubDampingFinding pins the 256-machine multi-rack result,
// measured on this tree: under a 4:1 oversubscribed core the damped rank
// does NOT carry its flat-network win over fifo (the PR-5 inversion fix).
// With the bottleneck moved from the end-host NICs to the priority-blind
// FIFO core links, reordering at host egress cannot expedite anything —
// the core serializes in arrival order regardless — while damped's bounded
// deferral still delays bulk traffic's entry into the core pipeline. fifo
// beat damped by ~33% under the spread placement (1.57 vs 1.05
// samples/s/machine) and ~3% under packed (1.54 vs 1.49) when this was
// captured. The assertion is directional (fifo strictly faster), not
// bit-pinned, so unrelated timing changes don't thrash it; if a future
// core-aware discipline closes the gap, re-measure and re-pin.
func TestRackOversubDampingFinding(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("256-machine cells are for the non-race suite")
	}
	for _, placement := range []string{"spread", "packed"} {
		fifo := rackFindingRun(t, "fifo", placement, "", false)
		damped := rackFindingRun(t, "damped", placement, "", false)
		if damped.Throughput >= fifo.Throughput {
			t.Errorf("%s: damped %.2f >= fifo %.2f samples/s — damping now beats fifo under the 4:1 core; the rack finding flipped, re-pin it",
				placement, damped.Throughput/256, fifo.Throughput/256)
		}
	}
}

// TestRackAggregationFinding pins the reversal of that negative result,
// measured on this tree: at the same 256-machine 4:1 cell, in-rack
// aggregation beats flat fifo by an order of magnitude under BOTH
// placements (fifo+agg 27.7 vs flat fifo 1.57/1.54 samples/s/machine —
// each rack's 32 gradient streams reduce to one before crossing the core,
// cutting core traffic 32x), and once the core is unclogged, priority
// damping matters again: damped hosts + damped ToR queues + aggregation
// beat fifo + aggregation (29.6 vs 27.7) under both placements. The
// assertions are directional with a wide margin (10x for aggregation vs
// flat), not bit-pinned.
func TestRackAggregationFinding(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("256-machine cells are for the non-race suite")
	}
	for _, placement := range []string{"spread", "packed"} {
		flat := rackFindingRun(t, "fifo", placement, "", false)
		agg := rackFindingRun(t, "fifo", placement, "", true)
		if agg.Throughput < 10*flat.Throughput {
			t.Errorf("%s: fifo+agg %.2f < 10x flat fifo %.2f samples/s/machine — aggregation stopped paying for itself, re-measure",
				placement, agg.Throughput/256, flat.Throughput/256)
		}
		if agg.CoreBytes >= flat.CoreBytes {
			t.Errorf("%s: agg moved %d core bytes >= flat's %d — aggregation should shrink core traffic",
				placement, agg.CoreBytes, flat.CoreBytes)
		}
		damped := rackFindingRun(t, "damped", placement, "damped", true)
		if damped.Throughput <= agg.Throughput {
			t.Errorf("%s: damped+agg+core-damped %.2f <= fifo+agg %.2f samples/s/machine — priority scheduling no longer helps on the unclogged core, re-pin",
				placement, damped.Throughput/256, agg.Throughput/256)
		}
	}
}

// TestScale1024Smoke drives the largest cell of the extended scale axis —
// 1024 machines on the parameter-server path — through a minimal run: the
// protocol must complete (cluster.Run panics if any worker wedges) with
// sane throughput. ~17M events; kept out of -short and the race-detector
// suite.
func TestScale1024Smoke(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("1024-machine smoke is for the non-race suite")
	}
	st, err := strategy.SlicingOnly(0).WithSched("fifo")
	if err != nil {
		t.Fatal(err)
	}
	st.Name = "sliced+fifo"
	r := cluster.Run(cluster.Config{
		Model: zoo.ByName("resnet50"), Machines: 1024, Strategy: st,
		BandwidthGbps: 1.5, WarmupIters: 1, MeasureIters: 1, Seed: 2,
	})
	if r.Throughput <= 0 || r.MeanIterTime <= 0 {
		t.Fatalf("degenerate 1024-machine result: %+v", r)
	}
	if r.Events < 10_000_000 {
		t.Fatalf("1024-machine run processed only %d events — the cell shrank", r.Events)
	}
}
