package experiments

import (
	"strings"
	"testing"

	"p3/internal/cluster"
	"p3/internal/netsim"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// rackProto identifies the protocol-determining axes of a rack cell: rows
// that differ only in placement, host discipline or port discipline send
// the same messages and must process the same event count; anything that
// changes the protocol (aggregation, the spine tier and its extensions,
// the strategy's pull mode, a finite reduce rate) forms its own group.
type rackProto struct {
	agg, hier, local, pull bool
	pods                   int
	aggGBps                float64
}

// TestRackSweepFast runs the CI-sized rack sweep end to end: every cell
// completes with sane throughput, the event volume depends only on the
// protocol axes (placement, discipline and core queueing only move their
// timing), the reduction tiers shrink the traffic they exist to shrink
// (aggregation the core bytes, hierarchical aggregation the spine bytes,
// the rack-local cache the pull-mode core bytes), and the table renders
// every axis.
func TestRackSweepFast(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rack sweep in -short mode")
	}
	rows := Rack(Options{Fast: true, Seed: 1})
	if len(rows) == 0 {
		t.Fatal("no rack rows")
	}
	events := map[rackProto]uint64{}
	byProto := map[rackProto]RackRow{}
	for _, r := range rows {
		if r.PerMachine <= 0 || r.IterMs <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		key := rackProto{r.Agg, r.Hier, r.Local, r.Pull, r.Pods, r.AggGBps}
		if want, ok := events[key]; !ok {
			events[key] = r.Events
		} else if r.Events != want {
			t.Errorf("event volume should depend only on the protocol axes: %+v has %d, want %d", r, r.Events, want)
		}
		if r.CoreMB <= 0 {
			t.Errorf("no core traffic recorded: %+v", r)
		}
		if r.Pods > 0 && r.SpineMB <= 0 {
			t.Errorf("no spine traffic recorded on a two-tier cell: %+v", r)
		}
		if r.Pods == 0 && r.SpineMB != 0 {
			t.Errorf("spine traffic on a single-tier cell: %+v", r)
		}
		byProto[key] = r
	}
	flat := byProto[rackProto{}]
	agg := byProto[rackProto{agg: true}]
	if agg.Model == "" || flat.Model == "" {
		t.Fatal("fast sweep lost the single-tier agg on/off pair")
	}
	if agg.CoreMB >= flat.CoreMB {
		t.Errorf("aggregation moved %.0f MB through the core, flat moved %.0f — aggregation should shrink core traffic",
			agg.CoreMB, flat.CoreMB)
	}
	twoTier := byProto[rackProto{agg: true, pods: 2}]
	hier := byProto[rackProto{agg: true, pods: 2, hier: true}]
	if twoTier.Model == "" || hier.Model == "" {
		t.Fatal("fast sweep lost the two-tier rack-only/hier pair")
	}
	if hier.SpineMB >= twoTier.SpineMB {
		t.Errorf("hierarchical aggregation moved %.0f MB through the spine, rack-only moved %.0f — the pod reduction should shrink spine traffic",
			hier.SpineMB, twoTier.SpineMB)
	}
	pull := byProto[rackProto{agg: true, pull: true}]
	local := byProto[rackProto{agg: true, pull: true, local: true}]
	if pull.Model == "" || local.Model == "" {
		t.Fatal("fast sweep lost the pull-mode local on/off pair")
	}
	if local.CoreMB >= pull.CoreMB {
		t.Errorf("rack-local PS moved %.0f MB through the core, plain pull moved %.0f — pulls should stay in-rack",
			local.CoreMB, pull.CoreMB)
	}
	table := RackTable(rows)
	for _, want := range []string{"spread", "packed", "4:1", "blind", "damped", "baseline", "sliced", "inf", "\ton\t", "\toff\t"} {
		if !strings.Contains(table, want) {
			t.Fatalf("rack table missing %q:\n%s", want, table)
		}
	}
}

// rackFindingRun is one cell of the pinned 256-machine findings, at the
// same topology the full Rack sweep uses but with smoke-test iteration
// counts. core names the ToR port discipline ("" = blind FIFO) and agg
// toggles in-rack aggregation.
func rackFindingRun(t *testing.T, sched, placement, core string, agg bool) cluster.Result {
	t.Helper()
	return hierFindingRun(t, findingCell{sched: sched, placement: placement, core: core, agg: agg})
}

// findingCell parameterizes the 256-machine finding cells across every
// axis of the extended sweep: the spine tier (pods, with a 4:1 spine and
// the core discipline on the spine ports), hierarchical aggregation, the
// aggregator reduce rate, and the rack-local cache under the pull-mode
// baseline strategy.
type findingCell struct {
	sched, placement, core string
	agg, hier, local, pull bool
	pods                   int
	aggGBps                float64
}

func hierFindingRun(t *testing.T, c findingCell) cluster.Result {
	t.Helper()
	base := strategy.SlicingOnly(0)
	name := "sliced"
	if c.pull {
		base = strategy.Baseline()
		name = "baseline"
	}
	st, err := base.WithSched(c.sched)
	if err != nil {
		t.Fatal(err)
	}
	st.Name = name + "+" + c.sched
	topo := netsim.Topology{RackSize: 32, CoreOversub: 4, CoreSched: c.core, Pods: c.pods}
	if c.pods > 0 {
		topo.SpineOversub = 4
		topo.SpineSched = c.core
	}
	return cluster.Run(cluster.Config{
		Model: zoo.ByName("resnet50"), Machines: 256, Servers: 8,
		Strategy: st, BandwidthGbps: 1.5,
		WarmupIters: 1, MeasureIters: 2, Seed: 2,
		Topology:        topo,
		ServerMachines:  rackPlacement(c.placement, 8, 256, 32),
		RackAggregation: c.agg,
		HierAggregation: c.hier,
		RackLocalPS:     c.local,
		AggReduceGBps:   c.aggGBps,
	})
}

// TestRackOversubDampingFinding pins the 256-machine multi-rack result,
// measured on this tree: under a 4:1 oversubscribed core the damped rank
// does NOT carry its flat-network win over fifo (the PR-5 inversion fix).
// With the bottleneck moved from the end-host NICs to the priority-blind
// FIFO core links, reordering at host egress cannot expedite anything —
// the core serializes in arrival order regardless — while damped's bounded
// deferral still delays bulk traffic's entry into the core pipeline. fifo
// beat damped by ~33% under the spread placement (1.57 vs 1.05
// samples/s/machine) and ~3% under packed (1.54 vs 1.49) when this was
// captured. The assertion is directional (fifo strictly faster), not
// bit-pinned, so unrelated timing changes don't thrash it; if a future
// core-aware discipline closes the gap, re-measure and re-pin.
func TestRackOversubDampingFinding(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("256-machine cells are for the non-race suite")
	}
	for _, placement := range []string{"spread", "packed"} {
		fifo := rackFindingRun(t, "fifo", placement, "", false)
		damped := rackFindingRun(t, "damped", placement, "", false)
		if damped.Throughput >= fifo.Throughput {
			t.Errorf("%s: damped %.2f >= fifo %.2f samples/s — damping now beats fifo under the 4:1 core; the rack finding flipped, re-pin it",
				placement, damped.Throughput/256, fifo.Throughput/256)
		}
	}
}

// TestRackAggregationFinding pins the reversal of that negative result,
// measured on this tree: at the same 256-machine 4:1 cell, in-rack
// aggregation beats flat fifo by an order of magnitude under BOTH
// placements (fifo+agg 27.7 vs flat fifo 1.57/1.54 samples/s/machine —
// each rack's 32 gradient streams reduce to one before crossing the core,
// cutting core traffic 32x), and once the core is unclogged, priority
// damping matters again: damped hosts + damped ToR queues + aggregation
// beat fifo + aggregation (29.6 vs 27.7) under both placements. The
// assertions are directional with a wide margin (10x for aggregation vs
// flat), not bit-pinned.
func TestRackAggregationFinding(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("256-machine cells are for the non-race suite")
	}
	for _, placement := range []string{"spread", "packed"} {
		flat := rackFindingRun(t, "fifo", placement, "", false)
		agg := rackFindingRun(t, "fifo", placement, "", true)
		if agg.Throughput < 10*flat.Throughput {
			t.Errorf("%s: fifo+agg %.2f < 10x flat fifo %.2f samples/s/machine — aggregation stopped paying for itself, re-measure",
				placement, agg.Throughput/256, flat.Throughput/256)
		}
		if agg.CoreBytes >= flat.CoreBytes {
			t.Errorf("%s: agg moved %d core bytes >= flat's %d — aggregation should shrink core traffic",
				placement, agg.CoreBytes, flat.CoreBytes)
		}
		damped := rackFindingRun(t, "damped", placement, "damped", true)
		if damped.Throughput <= agg.Throughput {
			t.Errorf("%s: damped+agg+core-damped %.2f <= fifo+agg %.2f samples/s/machine — priority scheduling no longer helps on the unclogged core, re-pin",
				placement, damped.Throughput/256, agg.Throughput/256)
		}
	}
}

// TestHierAggregationFinding pins the two-tier result, measured on this
// tree: at 256 machines (8 racks of 32, two pods) behind a 4:1 core AND a
// 4:1 spine, hierarchical aggregation beats rack-only aggregation in
// samples/s/machine by reducing the per-rack streams once more at the pod
// aggregators — one stream per pod transits the spine instead of one per
// rack, both ways. When this was captured, rack-only aggregation ran at
// 29.61 samples/s/machine moving 4907 MB through the spine; hierarchical
// aggregation ran at 33.91 (+15%) moving 1227 MB (4x less). The
// assertions are directional (hier strictly faster, strictly fewer spine
// bytes); the measured values are logged so the ROADMAP numbers stay
// anchored to a real run.
func TestHierAggregationFinding(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("256-machine cells are for the non-race suite")
	}
	rackOnly := hierFindingRun(t, findingCell{sched: "damped", placement: "spread", core: "damped", agg: true, pods: 2})
	hier := hierFindingRun(t, findingCell{sched: "damped", placement: "spread", core: "damped", agg: true, pods: 2, hier: true})
	t.Logf("2-tier 256-machine damped+agg: rack-only %.2f samples/s/machine (spine %.0f MB), hier %.2f (spine %.0f MB)",
		rackOnly.Throughput/256, float64(rackOnly.SpineBytes)/1e6,
		hier.Throughput/256, float64(hier.SpineBytes)/1e6)
	if rackOnly.SpineBytes <= 0 || hier.SpineBytes <= 0 {
		t.Fatalf("no spine traffic: rack-only %d, hier %d", rackOnly.SpineBytes, hier.SpineBytes)
	}
	if hier.SpineBytes >= rackOnly.SpineBytes {
		t.Errorf("hier moved %d spine bytes >= rack-only's %d — the pod reduction should shrink spine traffic",
			hier.SpineBytes, rackOnly.SpineBytes)
	}
	if hier.Throughput <= rackOnly.Throughput {
		t.Errorf("hier %.2f <= rack-only %.2f samples/s/machine on the 4:1 spine — hierarchical aggregation stopped paying for itself, re-measure",
			hier.Throughput/256, rackOnly.Throughput/256)
	}
}

// TestAggCapacityCliffFinding pins the reduce-rate capacity cliff,
// measured on this tree: a 32-machine rack pushing at 1.5 Gbps line rate
// demands 32 x 1.5/8 = 6 GB/s of aggregator ingest. An 8 GB/s reduction
// engine sits above that demand and stays within a few percent of the
// free (instantaneous) engine; a 1 GB/s engine sits 6x below it and
// falls off the cliff. Measured when captured: free 33.91, 8 GB/s 33.87
// (-0.1%), 1 GB/s 8.51 samples/s/machine (-75%) — the cliff sits between
// 8 and 1 GB/s, at the ~6 GB/s line-rate demand. The assertions bracket
// the cliff directionally; measured values are logged.
func TestAggCapacityCliffFinding(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("256-machine cells are for the non-race suite")
	}
	cell := findingCell{sched: "damped", placement: "spread", core: "damped", agg: true, pods: 2, hier: true}
	free := hierFindingRun(t, cell)
	cell.aggGBps = 8
	above := hierFindingRun(t, cell)
	cell.aggGBps = 1
	below := hierFindingRun(t, cell)
	t.Logf("2-tier 256-machine hier reduce-rate axis: free %.2f, 8 GB/s %.2f, 1 GB/s %.2f samples/s/machine",
		free.Throughput/256, above.Throughput/256, below.Throughput/256)
	if above.Throughput < 0.9*free.Throughput {
		t.Errorf("8 GB/s reduction %.2f < 90%% of free %.2f samples/s/machine — the engine above the 6 GB/s demand should be nearly free, re-measure",
			above.Throughput/256, free.Throughput/256)
	}
	if below.Throughput >= 0.8*above.Throughput {
		t.Errorf("1 GB/s reduction %.2f >= 80%% of 8 GB/s %.2f samples/s/machine — the capacity cliff flattened, re-measure",
			below.Throughput/256, above.Throughput/256)
	}
}

// TestRackLocalPSFinding pins the placement co-design result, measured on
// this tree: under the pull-mode baseline strategy at the 256-machine 4:1
// cell, serving pulls from the rack-local parameter cache strictly
// shrinks core traffic (no pull or data reply crosses the core) without
// costing throughput. When captured: plain pull 1.42 samples/s/machine
// moving 141,693 MB through the core; rack-local 19.43 (13.7x) moving
// 8,587 MB (16x less) — the per-worker data replies were the dominant
// core traffic, and the cache replaces them with one kCache stream per
// rack. Directional assertions; measured values logged.
func TestRackLocalPSFinding(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("256-machine cells are for the non-race suite")
	}
	plain := hierFindingRun(t, findingCell{sched: "fifo", placement: "spread", agg: true, pull: true})
	local := hierFindingRun(t, findingCell{sched: "fifo", placement: "spread", agg: true, pull: true, local: true})
	t.Logf("256-machine baseline-pull: plain %.2f samples/s/machine (core %.0f MB), rack-local %.2f (core %.0f MB)",
		plain.Throughput/256, float64(plain.CoreBytes)/1e6,
		local.Throughput/256, float64(local.CoreBytes)/1e6)
	if local.CoreBytes >= plain.CoreBytes {
		t.Errorf("rack-local PS moved %d core bytes >= plain's %d — pulls should stay in-rack", local.CoreBytes, plain.CoreBytes)
	}
	if local.Throughput < plain.Throughput {
		t.Errorf("rack-local PS %.2f < plain %.2f samples/s/machine — the cache slowed the run down, re-measure",
			local.Throughput/256, plain.Throughput/256)
	}
}

// TestScale1024Smoke drives the largest cell of the extended scale axis —
// 1024 machines on the parameter-server path — through a minimal run: the
// protocol must complete (cluster.Run panics if any worker wedges) with
// sane throughput. ~17M events; kept out of -short and the race-detector
// suite.
func TestScale1024Smoke(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("1024-machine smoke is for the non-race suite")
	}
	st, err := strategy.SlicingOnly(0).WithSched("fifo")
	if err != nil {
		t.Fatal(err)
	}
	st.Name = "sliced+fifo"
	r := cluster.Run(cluster.Config{
		Model: zoo.ByName("resnet50"), Machines: 1024, Strategy: st,
		BandwidthGbps: 1.5, WarmupIters: 1, MeasureIters: 1, Seed: 2,
	})
	if r.Throughput <= 0 || r.MeanIterTime <= 0 {
		t.Fatalf("degenerate 1024-machine result: %+v", r)
	}
	if r.Events < 10_000_000 {
		t.Fatalf("1024-machine run processed only %d events — the cell shrank", r.Events)
	}
}
