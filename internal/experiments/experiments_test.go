package experiments

import (
	"strings"
	"testing"
)

var fast = Options{Fast: true, Seed: 1}

func checkFigure(t *testing.T, f *Figure) {
	t.Helper()
	if f.ID == "" || f.Title == "" {
		t.Fatalf("figure missing metadata: %+v", f)
	}
	if len(f.Series) == 0 {
		t.Fatalf("%s: no series", f.ID)
	}
	for _, s := range f.Series {
		if len(s.X) != len(s.Y) {
			t.Fatalf("%s/%s: %d x vs %d y", f.ID, s.Name, len(s.X), len(s.Y))
		}
	}
	if tsv := f.TSV(); !strings.Contains(tsv, f.ID) {
		t.Fatalf("%s: TSV missing header", f.ID)
	}
	if plot := f.ASCII(60, 10); !strings.Contains(plot, f.ID) {
		t.Fatalf("%s: ASCII missing header", f.ID)
	}
}

func TestFig5(t *testing.T) {
	figs := Fig5(fast)
	if len(figs) != 3 {
		t.Fatalf("fig5 has %d sub-figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
	}
	// VGG sub-figure must show the dominant fc6 spike.
	vgg := figs[1]
	_, hi := minMax(vgg.Series[0].Y)
	if hi < 100 {
		t.Fatalf("vgg19 max tensor %.1fM, want >100M (fc6)", hi)
	}
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return
}

func TestFig7FastShapes(t *testing.T) {
	figs := Fig7(fast)
	if len(figs) != 4 {
		t.Fatalf("fig7 has %d sub-figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
		if len(f.Series) != 3 {
			t.Fatalf("%s: %d series, want baseline/slicing/p3", f.ID, len(f.Series))
		}
		// P3 never loses to the baseline at any measured bandwidth.
		base, p3 := f.Series[0], f.Series[2]
		for i := range base.Y {
			if p3.Y[i] < base.Y[i]*0.99 {
				t.Errorf("%s: p3 (%.1f) below baseline (%.1f) at %g Gbps",
					f.ID, p3.Y[i], base.Y[i], base.X[i])
			}
		}
		// Throughput grows with bandwidth.
		for i := 1; i < len(p3.Y); i++ {
			if p3.Y[i] < p3.Y[i-1]*0.99 {
				t.Errorf("%s: p3 throughput fell between %g and %g Gbps", f.ID, p3.X[i-1], p3.X[i])
			}
		}
	}
}

func TestFig8And9(t *testing.T) {
	for _, figs := range [][]*Figure{Fig8(fast), Fig9(fast)} {
		if len(figs) != 3 {
			t.Fatalf("%d sub-figures", len(figs))
		}
		for _, f := range figs {
			checkFigure(t, f)
			if len(f.Series) != 2 {
				t.Fatalf("%s: want outbound+inbound", f.ID)
			}
			var total float64
			for _, s := range f.Series {
				for _, y := range s.Y {
					if y < 0 {
						t.Fatalf("%s: negative utilization", f.ID)
					}
					total += y
				}
			}
			if total == 0 {
				t.Fatalf("%s: all-zero utilization", f.ID)
			}
		}
	}
}

func TestFig10Scaling(t *testing.T) {
	figs := Fig10(fast)
	if len(figs) != 3 {
		t.Fatalf("fig10 has %d sub-figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
		for _, s := range f.Series {
			// Aggregate throughput grows with cluster size.
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] <= s.Y[i-1] {
					t.Errorf("%s/%s: no scaling from %g to %g machines", f.ID, s.Name, s.X[i-1], s.X[i])
				}
			}
		}
	}
}

func TestFig12SliceSweep(t *testing.T) {
	figs := Fig12(fast)
	if len(figs) != 3 {
		t.Fatalf("fig12 has %d sub-figures", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f)
		s := f.Series[0]
		// Fast mode measures {1k, 50k, 1M}: the paper's 50k sweet spot must
		// beat both extremes (or at least never lose to them).
		if len(s.Y) == 3 {
			if s.Y[1] < s.Y[0] || s.Y[1] < s.Y[2]*0.99 {
				t.Errorf("%s: 50k (%.1f) not the peak of [%.1f %.1f %.1f]",
					f.ID, s.Y[1], s.Y[0], s.Y[1], s.Y[2])
			}
		}
	}
}

func TestFig13And14(t *testing.T) {
	for _, figs := range [][]*Figure{Fig13(fast), Fig14(fast)} {
		if len(figs) != 1 {
			t.Fatalf("%d figures", len(figs))
		}
		checkFigure(t, figs[0])
	}
}

func TestHeadline(t *testing.T) {
	rows := Headline(fast)
	if len(rows) != 4 {
		t.Fatalf("%d headline rows", len(rows))
	}
	for _, r := range rows {
		if r.SpeedupPct < 0 {
			t.Errorf("%s: negative P3 speedup %.1f%%", r.Model, r.SpeedupPct)
		}
		if r.P3 < r.Baseline {
			t.Errorf("%s: P3 %.1f below baseline %.1f", r.Model, r.P3, r.Baseline)
		}
	}
	tbl := HeadlineTable(rows)
	if !strings.Contains(tbl, "vgg19") {
		t.Fatalf("headline table:\n%s", tbl)
	}
}

func TestFig11Fast(t *testing.T) {
	figs := Fig11(fast)
	if len(figs) != 1 {
		t.Fatalf("%d figures", len(figs))
	}
	f := figs[0]
	checkFigure(t, f)
	if len(f.Series) != 4 {
		t.Fatalf("fig11 has %d series, want min/max bands for p3 and dgc", len(f.Series))
	}
	for _, s := range f.Series {
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("accuracy %v out of range", y)
			}
		}
	}
}

func TestFig15Fast(t *testing.T) {
	figs := Fig15(fast)
	f := figs[0]
	checkFigure(t, f)
	if len(f.Series) != 2 {
		t.Fatalf("fig15 has %d series", len(f.Series))
	}
	// Time axis must be strictly increasing.
	for _, s := range f.Series {
		for i := 1; i < len(s.X); i++ {
			if s.X[i] <= s.X[i-1] {
				t.Fatalf("%s: time axis not increasing", s.Name)
			}
		}
	}
}

func TestASCIIHandlesEmptyFigure(t *testing.T) {
	f := &Figure{ID: "x", Title: "t", Series: []Series{{Name: "s"}}}
	if out := f.ASCII(40, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty figure rendering: %q", out)
	}
}
