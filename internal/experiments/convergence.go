package experiments

import (
	"fmt"

	"p3/internal/cluster"
	"p3/internal/data"
	"p3/internal/nn"
	"p3/internal/opt"
	"p3/internal/strategy"
	"p3/internal/train"
	"p3/internal/zoo"
)

// convergenceTask returns the substitute for the paper's ResNet-110 on
// CIFAR-10 (see DESIGN.md): a residual MLP on the synthetic classification
// set, sized so a full Figure 11 run finishes in minutes of CPU time.
func convergenceTask(o Options) (tr, val *data.Set, netCfg nn.Config, epochs int) {
	samples, width, blocks, epochs := 3840, 64, 4, 40
	if o.Fast {
		samples, width, blocks, epochs = 960, 32, 2, 8
	}
	set := data.Generate(data.Config{
		Samples: samples, Features: 64, Classes: 10, Noise: 1.5, Seed: 7 + o.Seed,
	})
	tr, val = set.Split(0.25)
	netCfg = nn.Config{In: 64, Width: width, Classes: 10, Blocks: blocks, Seed: 3 + o.Seed}
	return tr, val, netCfg, epochs
}

// fig11LRs are the five hyper-parameter settings of Section 5.6 (the paper
// does not publish its grid; we vary the base learning rate over the stable
// range of the substitute task).
var fig11LRs = []float64{0.05, 0.06, 0.07, 0.08, 0.09}

// history is a compact accuracy trajectory used by the time-to-accuracy
// extension.
type history struct {
	acc           []float64
	itersPerEpoch int
}

// convergenceHistories trains the substitute task under dense aggregation
// (baseline and P3 share this trajectory bit-for-bit) and under DGC, and
// returns per-epoch validation accuracies.
func convergenceHistories(o Options) map[string]history {
	tr, val, netCfg, epochs := convergenceTask(o)
	runOne := func(mode train.Mode) history {
		h, _ := train.Run(train.Config{
			Net: netCfg, Workers: 4, Batch: 16, Epochs: epochs,
			Schedule: opt.StepSchedule{Base: 0.06, Gamma: 0.1, Milestones: []int{epochs * 5 / 8, epochs * 7 / 8}},
			Momentum: 0.9, WeightDecay: 1e-4, ClipNorm: 2,
			Mode: mode, DGCSparsity: 0.999,
			Seed: 11 + o.Seed, Parallel: true,
		}, tr, val)
		return history{acc: h.ValAcc, itersPerEpoch: h.Iterations / epochs}
	}
	dense := runOne(train.Dense)
	dgc := runOne(train.DGC)
	return map[string]history{"baseline": dense, "p3": dense, "dgc": dgc}
}

// Fig11 reproduces Figure 11: the validation-accuracy band (min/max over
// five hyper-parameter settings) of P3 vs DGC. P3 uses the Dense
// aggregation rule — bit-identical to the baseline, which is the paper's
// point — while DGC runs at 99.9% sparsity.
func Fig11(o Options) []*Figure {
	tr, val, netCfg, epochs := convergenceTask(o)
	lrs := fig11LRs
	if o.Fast {
		lrs = lrs[:2]
	}
	milestones := []int{epochs * 5 / 8, epochs * 7 / 8}

	runs := map[train.Mode][][]float64{}
	for _, mode := range []train.Mode{train.Dense, train.DGC} {
		for _, lr := range lrs {
			h, _ := train.Run(train.Config{
				Net: netCfg, Workers: 4, Batch: 16, Epochs: epochs,
				Schedule: opt.StepSchedule{Base: lr, Gamma: 0.1, Milestones: milestones},
				Momentum: 0.9, WeightDecay: 1e-4, ClipNorm: 2,
				Mode: mode, DGCSparsity: 0.999,
				Seed: 11 + o.Seed, Parallel: true,
			}, tr, val)
			runs[mode] = append(runs[mode], h.ValAcc)
		}
	}

	// Band: per-epoch min and max across the hyper-parameter settings,
	// plotted over the back half of training as in the paper (its x axis
	// starts at epoch 100 of 160).
	from := epochs * 5 / 8
	band := func(histories [][]float64, pick func(lo, hi float64) float64) Series {
		var xs, ys []float64
		for e := from; e < epochs; e++ {
			lo, hi := histories[0][e], histories[0][e]
			for _, h := range histories[1:] {
				if h[e] < lo {
					lo = h[e]
				}
				if h[e] > hi {
					hi = h[e]
				}
			}
			xs = append(xs, float64(e+1))
			ys = append(ys, pick(lo, hi))
		}
		return Series{X: xs, Y: ys}
	}
	mk := func(mode train.Mode, name string) []Series {
		low := band(runs[mode], func(lo, _ float64) float64 { return lo })
		high := band(runs[mode], func(_, hi float64) float64 { return hi })
		low.Name, high.Name = name+"_min", name+"_max"
		return []Series{low, high}
	}
	fig := &Figure{
		ID:     "fig11",
		Title:  fmt.Sprintf("Validation accuracy band over %d hyper-parameter settings: P3 vs DGC", len(lrs)),
		XLabel: "epoch",
		YLabel: "validation accuracy",
		Series: append(mk(train.Dense, "p3"), mk(train.DGC, "dgc")...),
		Notes: []string{
			"paper: P3's final accuracy always above DGC; average DGC drop 0.4% (ResNet-110/CIFAR-10)",
			"substitute task: residual MLP on synthetic data (DESIGN.md); P3 == baseline bit-identically by construction",
		},
	}
	return []*Figure{fig}
}

// Fig15 reproduces Appendix Figure 15: validation accuracy against
// wall-clock time for synchronous P3 vs asynchronous SGD. Iteration times
// come from the discrete-event simulator running the paper's setup
// (ResNet-110 profile, 4 machines, 1 Gbps); accuracy trajectories come from
// the real trainer.
func Fig15(o Options) []*Figure {
	tr, val, netCfg, epochs := convergenceTask(o)
	warm, measure := o.iters()

	iterTime := func(s strategy.Strategy) float64 {
		r := cluster.Run(cluster.Config{
			Model: zoo.ResNet110(), Machines: 4, Strategy: s, BandwidthGbps: 1,
			WarmupIters: warm, MeasureIters: measure, Seed: o.Seed + 1,
		})
		return r.MeanIterTime.Seconds()
	}
	p3Iter := iterTime(strategy.P3(0))
	asgdIter := iterTime(strategy.ASGDStrategy())

	lr := 0.075
	runOne := func(mode train.Mode) *train.History {
		h, _ := train.Run(train.Config{
			Net: netCfg, Workers: 4, Batch: 16, Epochs: epochs,
			Schedule: opt.ConstSchedule(lr),
			Momentum: 0.9, WeightDecay: 1e-4, ClipNorm: 2,
			Mode: mode, Seed: 11 + o.Seed, Parallel: true,
		}, tr, val)
		return h
	}
	p3Hist := runOne(train.Dense)
	asgdHist := runOne(train.ASGD)

	itersPerEpoch := p3Hist.Iterations / epochs
	series := func(name string, h *train.History, perIter float64) Series {
		s := Series{Name: name}
		for e, acc := range h.ValAcc {
			s.X = append(s.X, float64(e+1)*float64(itersPerEpoch)*perIter/60) // minutes
			s.Y = append(s.Y, acc)
		}
		return s
	}
	fig := &Figure{
		ID:     "fig15",
		Title:  "ASGD vs P3: validation accuracy over wall-clock time (1 Gbps)",
		XLabel: "time (minutes)",
		YLabel: "validation accuracy",
		Series: []Series{
			series("p3", p3Hist, p3Iter),
			series("asgd", asgdHist, asgdIter),
		},
		Notes: []string{
			fmt.Sprintf("simulated iteration times at 1 Gbps: p3 %.0f ms, asgd %.0f ms", p3Iter*1000, asgdIter*1000),
			"paper: P3 final 93% vs ASGD 88%; P3 reaches 80% ~6x faster despite ASGD's faster iterations",
		},
	}
	return []*Figure{fig}
}
