package experiments

import (
	"strings"
	"testing"
)

func TestExtCompression(t *testing.T) {
	rows := ExtCompression(fast)
	if len(rows) != 5 {
		t.Fatalf("%d compression rows", len(rows))
	}
	byName := map[string]CompressionRow{}
	for _, r := range rows {
		byName[r.Mechanism] = r
		if r.FinalAcc <= 0.2 {
			t.Errorf("%s: final accuracy %.3f — diverged", r.Mechanism, r.FinalAcc)
		}
		if r.CompressionRatio < 1 {
			t.Errorf("%s: compression ratio %.2f < 1", r.Mechanism, r.CompressionRatio)
		}
	}
	dense := byName["dense (baseline == p3)"]
	if dense.CompressionRatio != 1 {
		t.Errorf("dense ratio %v", dense.CompressionRatio)
	}
	// 1-bit approaches 32x, terngrad ~16x, dgc hundreds.
	if byName["1bit-sgd"].CompressionRatio < 25 {
		t.Errorf("1bit ratio %v", byName["1bit-sgd"].CompressionRatio)
	}
	if byName["terngrad"].CompressionRatio < 14 {
		t.Errorf("terngrad ratio %v", byName["terngrad"].CompressionRatio)
	}
	if byName["dgc@99.9%"].CompressionRatio < 100 {
		t.Errorf("dgc ratio %v", byName["dgc@99.9%"].CompressionRatio)
	}
	if !strings.Contains(CompressionTable(rows), "compression_x") {
		t.Fatal("table broken")
	}
}
