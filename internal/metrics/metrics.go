// Package metrics provides the small statistical helpers shared by the
// benchmark harness and the training stack: summary statistics and
// throughput bookkeeping.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Summarize computes summary statistics. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P95 = Percentile(sorted, 0.95)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0..1) of an ascending-sorted sample
// using linear interpolation. It panics on an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("metrics: percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinMax returns the extrema of a nonempty sample.
func MinMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P95, s.Max)
}
