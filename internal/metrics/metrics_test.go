package metrics

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	wantStd := math.Sqrt(2.5) // sample variance of 1..5 is 2.5
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("P%.2f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty sample")
		}
	}()
	Percentile(nil, 0.5)
}

func TestMeanAndMinMax(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{2, 4, 9}); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

// Property: min <= p50 <= p95 <= p99 <= max, and mean within [min, max].
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sort.Float64s(xs)
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		v := Percentile(xs, p)
		if v < prev {
			t.Fatalf("percentile decreased at p=%.2f: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestSummaryString(t *testing.T) {
	if Summarize([]float64{1}).String() == "" {
		t.Fatal("empty String()")
	}
}
