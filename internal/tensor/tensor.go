// Package tensor implements the small dense linear-algebra kernel used by
// the convergence experiments: float64 matrices in row-major order with the
// handful of operations a feed-forward/residual network needs. Everything is
// deterministic; there is no hidden parallelism.
package tensor

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromData wraps data (not copied) as a Rows x Cols matrix.
func FromData(rows, cols int, data []float64) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: %dx%d needs %d elements, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// Row returns a view of row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero clears all elements.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Randn fills m with N(0, std) entries from rng.
func (m *Mat) Randn(rng *rand.Rand, std float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// Matmul computes dst = a @ b. dst must not alias a or b.
func Matmul(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)@(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	// ikj order: stream through b and dst rows for cache friendliness.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range drow {
				drow[j] += aik * brow[j]
			}
		}
	}
}

// MatmulNT computes dst = a @ b^T.
func MatmulNT(dst, a, b *Mat) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulNT shape mismatch (%dx%d)@(%dx%d)^T->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k := range arow {
				s += arow[k] * brow[k]
			}
			drow[j] = s
		}
	}
}

// MatmulTN computes dst = a^T @ b.
func MatmulTN(dst, a, b *Mat) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTN shape mismatch (%dx%d)^T@(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := range arow {
			aki := arow[i]
			if aki == 0 {
				continue
			}
			drow := dst.Row(i)
			for j := range brow {
				drow[j] += aki * brow[j]
			}
		}
	}
}

// Axpy computes y += alpha * x over raw slices of equal length.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns the inner product of equal-length slices.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }
