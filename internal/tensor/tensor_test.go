package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// naiveMatmul is the reference implementation tests compare against.
func naiveMatmul(a, b *Mat) *Mat {
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	m.Randn(rng, 1)
	return m
}

func matEq(a, b *Mat, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatmulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		r, k, c := 1+rng.IntN(8), 1+rng.IntN(8), 1+rng.IntN(8)
		a, b := randMat(rng, r, k), randMat(rng, k, c)
		got := NewMat(r, c)
		Matmul(got, a, b)
		if !matEq(got, naiveMatmul(a, b), 1e-12) {
			t.Fatalf("trial %d: matmul mismatch (%dx%dx%d)", trial, r, k, c)
		}
	}
}

func TestMatmulNTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 50; trial++ {
		r, k, c := 1+rng.IntN(8), 1+rng.IntN(8), 1+rng.IntN(8)
		a, bT := randMat(rng, r, k), randMat(rng, c, k)
		got := NewMat(r, c)
		MatmulNT(got, a, bT)
		// Reference: transpose bT then multiply.
		b := NewMat(k, c)
		for i := 0; i < k; i++ {
			for j := 0; j < c; j++ {
				b.Set(i, j, bT.At(j, i))
			}
		}
		if !matEq(got, naiveMatmul(a, b), 1e-12) {
			t.Fatalf("trial %d: matmulNT mismatch", trial)
		}
	}
}

func TestMatmulTNMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 50; trial++ {
		r, k, c := 1+rng.IntN(8), 1+rng.IntN(8), 1+rng.IntN(8)
		aT, b := randMat(rng, k, r), randMat(rng, k, c)
		got := NewMat(r, c)
		MatmulTN(got, aT, b)
		a := NewMat(r, k)
		for i := 0; i < r; i++ {
			for j := 0; j < k; j++ {
				a.Set(i, j, aT.At(j, i))
			}
		}
		if !matEq(got, naiveMatmul(a, b), 1e-12) {
			t.Fatalf("trial %d: matmulTN mismatch", trial)
		}
	}
}

func TestShapePanics(t *testing.T) {
	a, b := NewMat(2, 3), NewMat(4, 5)
	for name, fn := range map[string]func(){
		"matmul":   func() { Matmul(NewMat(2, 5), a, b) },
		"matmulNT": func() { MatmulNT(NewMat(2, 4), a, b) },
		"matmulTN": func() { MatmulTN(NewMat(3, 5), a, b) },
		"fromdata": func() { FromData(2, 2, []float64{1}) },
		"newmat":   func() { NewMat(0, 3) },
		"axpy":     func() { Axpy(1, []float64{1}, []float64{1, 2}) },
		"dot":      func() { Dot([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on shape mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestAxpyScaleDotNorm(t *testing.T) {
	y := []float64{1, 2, 3}
	Axpy(2, []float64{10, 20, 30}, y)
	want := []float64{21, 42, 63}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("axpy = %v", y)
		}
	}
	Scale(0.5, y)
	if y[0] != 10.5 {
		t.Fatalf("scale = %v", y)
	}
	if got := Dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Fatalf("dot = %v", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("norm = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMat(2, 2)
	m.Set(0, 0, 7)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 7 {
		t.Fatal("clone aliases original")
	}
}

func TestRowIsView(t *testing.T) {
	m := NewMat(3, 4)
	m.Row(1)[2] = 42
	if m.At(1, 2) != 42 {
		t.Fatal("Row is not a view")
	}
}

func TestZero(t *testing.T) {
	m := NewMat(2, 2)
	m.Set(1, 1, 5)
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left data behind")
		}
	}
}

// Property: (A@B)@C == A@(B@C) within tolerance.
func TestMatmulAssociativity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed))
		n := 1 + rng.IntN(6)
		a, b, c := randMat(rng, n, n), randMat(rng, n, n), randMat(rng, n, n)
		ab, bc := NewMat(n, n), NewMat(n, n)
		Matmul(ab, a, b)
		Matmul(bc, b, c)
		left, right := NewMat(n, n), NewMat(n, n)
		Matmul(left, ab, c)
		Matmul(right, a, bc)
		return matEq(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatmul64(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	x, y := randMat(rng, 64, 64), randMat(rng, 64, 64)
	out := NewMat(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Matmul(out, x, y)
	}
}
