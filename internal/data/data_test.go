package data

import (
	"testing"
)

func genSmall(t *testing.T) *Set {
	t.Helper()
	return Generate(Config{Samples: 400, Features: 8, Classes: 4, Seed: 42})
}

func TestGenerateShape(t *testing.T) {
	s := genSmall(t)
	if s.N() != 400 || s.X.Cols != 8 || len(s.Y) != 400 || s.Classes != 4 {
		t.Fatalf("unexpected shape: n=%d cols=%d", s.N(), s.X.Cols)
	}
	for _, y := range s.Y {
		if y < 0 || y >= 4 {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestGenerateBalanced(t *testing.T) {
	s := genSmall(t)
	counts := map[int]int{}
	for _, y := range s.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d has %d samples, want 100", c, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Samples: 50, Features: 4, Classes: 2, Seed: 7})
	b := Generate(Config{Samples: 50, Features: 4, Classes: 2, Seed: 7})
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := Generate(Config{Samples: 50, Features: 4, Classes: 2, Seed: 8})
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSplitStratified(t *testing.T) {
	s := genSmall(t)
	tr, val := s.Split(0.25)
	if tr.N()+val.N() != s.N() {
		t.Fatalf("split loses samples: %d + %d != %d", tr.N(), val.N(), s.N())
	}
	if val.N() != 100 {
		t.Fatalf("val size %d, want 100 for frac 0.25", val.N())
	}
	valCounts := map[int]int{}
	for _, y := range val.Y {
		valCounts[y]++
	}
	if len(valCounts) != 4 {
		t.Fatalf("validation set is missing classes: %v", valCounts)
	}
	for c, n := range valCounts {
		if n != 25 {
			t.Fatalf("val class %d has %d samples, want 25", c, n)
		}
	}
}

func TestSplitPanicsOnBadFrac(t *testing.T) {
	s := genSmall(t)
	for _, f := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("frac %v accepted", f)
				}
			}()
			s.Split(f)
		}()
	}
}

func TestShardPartition(t *testing.T) {
	s := genSmall(t)
	const n = 4
	total := 0
	seen := map[float64]bool{}
	for w := 0; w < n; w++ {
		sh := s.Shard(w, n)
		total += sh.N()
		for i := 0; i < sh.N(); i++ {
			key := sh.X.At(i, 0)
			if seen[key] {
				t.Fatal("shards overlap")
			}
			seen[key] = true
		}
	}
	if total != s.N() {
		t.Fatalf("shards cover %d of %d samples", total, s.N())
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid shard accepted")
		}
	}()
	s.Shard(4, 4)
}

func TestBatchCopiesAndWraps(t *testing.T) {
	s := genSmall(t)
	x, y := s.Batch([]int{0, 1, 399, 400}) // 400 wraps to 0
	if x.Rows != 4 || len(y) != 4 {
		t.Fatalf("batch shape %d/%d", x.Rows, len(y))
	}
	if y[3] != s.Y[0] {
		t.Fatal("index wrap-around broken")
	}
	// Mutating the batch must not touch the dataset.
	x.Set(0, 0, 1e9)
	if s.X.At(0, 0) == 1e9 {
		t.Fatal("Batch aliases dataset storage")
	}
}

func TestGenerateInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Samples: 0, Features: 4, Classes: 2},
		{Samples: 10, Features: 0, Classes: 2},
		{Samples: 10, Features: 4, Classes: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			Generate(cfg)
		}()
	}
}

// TestTaskIsNonlinear: a linear probe should do clearly worse than perfect,
// confirming the warp makes class boundaries curved (the property that
// justifies using a deep model).
func TestTaskIsNonlinear(t *testing.T) {
	s := Generate(Config{Samples: 800, Features: 16, Classes: 4, Seed: 3, Noise: 1.0})
	tr, val := s.Split(0.25)

	// One least-squares-ish epoch of a linear classifier via perceptron
	// updates; enough to measure linear separability roughly.
	w := make([][]float64, s.Classes)
	for c := range w {
		w[c] = make([]float64, s.X.Cols+1)
	}
	score := func(x []float64, c int) float64 {
		v := w[c][len(x)]
		for j := range x {
			v += w[c][j] * x[j]
		}
		return v
	}
	for epoch := 0; epoch < 30; epoch++ {
		for i := 0; i < tr.N(); i++ {
			x := tr.X.Row(i)
			best, bestV := 0, score(x, 0)
			for c := 1; c < s.Classes; c++ {
				if v := score(x, c); v > bestV {
					best, bestV = c, v
				}
			}
			if best != tr.Y[i] {
				for j := range x {
					w[tr.Y[i]][j] += 0.01 * x[j]
					w[best][j] -= 0.01 * x[j]
				}
				w[tr.Y[i]][len(x)] += 0.01
				w[best][len(x)] -= 0.01
			}
		}
	}
	correct := 0
	for i := 0; i < val.N(); i++ {
		x := val.X.Row(i)
		best, bestV := 0, score(x, 0)
		for c := 1; c < s.Classes; c++ {
			if v := score(x, c); v > bestV {
				best, bestV = c, v
			}
		}
		if best == val.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(val.N())
	if acc > 0.98 {
		t.Fatalf("linear probe reached %.3f: task is linearly separable", acc)
	}
	if acc < 0.3 {
		t.Fatalf("linear probe only %.3f: task may be pure noise", acc)
	}
}

// TestShardsContainAllClasses is the regression test for the round-robin
// alignment bug: when the worker count divides the class count, shards must
// still contain every class (the generator shuffles to guarantee it).
func TestShardsContainAllClasses(t *testing.T) {
	s := Generate(Config{Samples: 300, Features: 8, Classes: 3, Seed: 4})
	for _, n := range []int{2, 3, 6} {
		for w := 0; w < n; w++ {
			sh := s.Shard(w, n)
			seen := map[int]bool{}
			for _, y := range sh.Y {
				seen[y] = true
			}
			if len(seen) != 3 {
				t.Fatalf("shard %d/%d sees only classes %v", w, n, seen)
			}
		}
	}
}
