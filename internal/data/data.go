// Package data generates the deterministic synthetic classification
// datasets used by the convergence experiments — the stand-in for CIFAR-10,
// which the offline build cannot download. Samples are drawn from per-class
// Gaussian clusters pushed through a fixed random nonlinear warp, which
// makes the task non-linearly separable (a linear model plateaus well below
// a deep one; the trainer tests verify this).
package data

import (
	"fmt"
	"math"
	"math/rand/v2"

	"p3/internal/tensor"
)

// Set is a labelled dataset.
type Set struct {
	X       *tensor.Mat // samples x features
	Y       []int
	Classes int
}

// N returns the number of samples.
func (s *Set) N() int { return s.X.Rows }

// Config describes a synthetic dataset.
type Config struct {
	Samples  int
	Features int
	Classes  int
	// Noise is the within-cluster standard deviation (larger = harder).
	Noise float64
	Seed  int64
}

// Generate builds a synthetic classification set: class centroids on a
// scaled hypersphere, Gaussian within-class noise, then a fixed nonlinear
// mixing layer (tanh of a random projection added back) so that class
// boundaries are curved.
func Generate(cfg Config) *Set {
	if cfg.Samples <= 0 || cfg.Features <= 0 || cfg.Classes <= 1 {
		panic(fmt.Sprintf("data: invalid config %+v", cfg))
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.6
	}
	rng := rand.New(rand.NewPCG(uint64(cfg.Seed), uint64(cfg.Seed)^0xABCD1234))

	// Class centroids.
	centroids := tensor.NewMat(cfg.Classes, cfg.Features)
	centroids.Randn(rng, 1.0)

	// Fixed nonlinear warp: x <- x + tanh(x @ P) @ Q with random P, Q.
	hid := cfg.Features
	p := tensor.NewMat(cfg.Features, hid)
	p.Randn(rng, 1.0/math.Sqrt(float64(cfg.Features)))
	q := tensor.NewMat(hid, cfg.Features)
	q.Randn(rng, 1.0/math.Sqrt(float64(hid)))

	set := &Set{X: tensor.NewMat(cfg.Samples, cfg.Features), Y: make([]int, cfg.Samples), Classes: cfg.Classes}
	raw := tensor.NewMat(1, cfg.Features)
	proj := tensor.NewMat(1, hid)
	warp := tensor.NewMat(1, cfg.Features)
	for i := 0; i < cfg.Samples; i++ {
		c := i % cfg.Classes // balanced classes
		set.Y[i] = c
		row := raw.Row(0)
		cen := centroids.Row(c)
		for j := range row {
			row[j] = cen[j] + rng.NormFloat64()*cfg.Noise
		}
		tensor.Matmul(proj, raw, p)
		for j, v := range proj.Row(0) {
			proj.Row(0)[j] = math.Tanh(v)
		}
		tensor.Matmul(warp, proj, q)
		dst := set.X.Row(i)
		for j := range dst {
			dst[j] = row[j] + 1.5*warp.Row(0)[j]
		}
	}
	// Deterministic shuffle: without it, the round-robin class assignment
	// aligns with Shard's round-robin partitioning whenever the worker
	// count divides the class count, silently giving workers single-class
	// shards.
	for i := cfg.Samples - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		set.Y[i], set.Y[j] = set.Y[j], set.Y[i]
		ri, rj := set.X.Row(i), set.X.Row(j)
		for k := range ri {
			ri[k], rj[k] = rj[k], ri[k]
		}
	}
	return set
}

// Split partitions the set into train and validation subsets, stratified by
// class: within each class, every k-th occurrence goes to validation, so
// both subsets keep the full class distribution. frac is the validation
// fraction in (0, 1).
func (s *Set) Split(frac float64) (train, val *Set) {
	if frac <= 0 || frac >= 1 {
		panic(fmt.Sprintf("data: invalid validation fraction %f", frac))
	}
	stride := int(math.Round(1 / frac))
	if stride < 2 {
		stride = 2
	}
	seen := make(map[int]int, s.Classes)
	var trIdx, vaIdx []int
	for i := 0; i < s.N(); i++ {
		c := s.Y[i]
		if seen[c]%stride == stride-1 {
			vaIdx = append(vaIdx, i)
		} else {
			trIdx = append(trIdx, i)
		}
		seen[c]++
	}
	return s.subset(trIdx), s.subset(vaIdx)
}

// Shard returns worker w's 1/n horizontal shard (round-robin), the data
// layout of data-parallel training.
func (s *Set) Shard(w, n int) *Set {
	if w < 0 || w >= n {
		panic(fmt.Sprintf("data: shard %d of %d", w, n))
	}
	var idx []int
	for i := w; i < s.N(); i += n {
		idx = append(idx, i)
	}
	return s.subset(idx)
}

// Batch copies the samples idx (mod N) into a fresh matrix/label pair.
func (s *Set) Batch(idx []int) (*tensor.Mat, []int) {
	x := tensor.NewMat(len(idx), s.X.Cols)
	y := make([]int, len(idx))
	for i, ix := range idx {
		ix = ix % s.N()
		copy(x.Row(i), s.X.Row(ix))
		y[i] = s.Y[ix]
	}
	return x, y
}

func (s *Set) subset(idx []int) *Set {
	out := &Set{X: tensor.NewMat(len(idx), s.X.Cols), Y: make([]int, len(idx)), Classes: s.Classes}
	for i, ix := range idx {
		copy(out.X.Row(i), s.X.Row(ix))
		out.Y[i] = s.Y[ix]
	}
	return out
}
