// Package trace records per-machine, per-direction network utilization on
// the virtual clock, mirroring the paper's bwm-ng measurements: bytes
// crossing each NIC are accumulated into fixed-width (default 10 ms) buckets,
// from which the Gbps time series of Figures 8, 9, 13 and 14 are produced.
package trace

import (
	"fmt"
	"strings"

	"p3/internal/sim"
)

// Dir is a transfer direction relative to a machine's NIC.
type Dir int

// NIC directions.
const (
	Out Dir = iota // outbound (transmit)
	In             // inbound (receive)
)

func (d Dir) String() string {
	if d == Out {
		return "outbound"
	}
	return "inbound"
}

// DefaultBucket matches the 10 ms precision of the paper's bwm-ng runs.
const DefaultBucket = 10 * sim.Millisecond

// Recorder accumulates transferred bytes into time buckets. The zero value is
// not usable; call NewRecorder.
type Recorder struct {
	bucket   sim.Time
	machines int
	out      [][]float64 // [machine][bucket] bytes
	in       [][]float64
	enabled  bool
	start    sim.Time // recording window start; bytes before it are dropped
}

// NewRecorder creates a recorder for n machines with the given bucket width
// (0 means DefaultBucket). Recording starts disabled; call Start.
func NewRecorder(n int, bucket sim.Time) *Recorder {
	if bucket <= 0 {
		bucket = DefaultBucket
	}
	return &Recorder{
		bucket:   bucket,
		machines: n,
		out:      make([][]float64, n),
		in:       make([][]float64, n),
	}
}

// Start begins recording; bytes transferred before at are ignored and bucket
// 0 corresponds to the instant at.
func (r *Recorder) Start(at sim.Time) {
	r.enabled = true
	r.start = at
}

// Stop halts recording.
func (r *Recorder) Stop() { r.enabled = false }

// Bucket returns the bucket width.
func (r *Recorder) Bucket() sim.Time { return r.bucket }

// AddRange attributes bytes transferred over [from, to) on machine m in
// direction d, spreading them proportionally over the buckets the interval
// covers (a transfer that straddles a bucket boundary contributes to both).
func (r *Recorder) AddRange(m int, d Dir, from, to sim.Time, bytes int64) {
	if r == nil || !r.enabled || bytes <= 0 || to <= from {
		return
	}
	if to <= r.start {
		return
	}
	if from < r.start {
		// Clip to the recording window, dropping the pre-window share.
		bytes = int64(float64(bytes) * float64(to-r.start) / float64(to-from))
		from = r.start
	}
	series := &r.out[m]
	if d == In {
		series = &r.in[m]
	}
	first := int((from - r.start) / r.bucket)
	last := int((to - r.start - 1) / r.bucket)
	for len(*series) <= last {
		*series = append(*series, 0)
	}
	if first == last {
		(*series)[first] += float64(bytes)
		return
	}
	perNS := float64(bytes) / float64(to-from)
	for bkt := first; bkt <= last; bkt++ {
		bStart := r.start + sim.Time(bkt)*r.bucket
		bEnd := bStart + r.bucket
		lo, hi := from, to
		if bStart > lo {
			lo = bStart
		}
		if bEnd < hi {
			hi = bEnd
		}
		(*series)[bkt] += perNS * float64(hi-lo)
	}
}

// Series returns the raw byte counts per bucket for machine m, direction d.
func (r *Recorder) Series(m int, d Dir) []float64 {
	if d == Out {
		return r.out[m]
	}
	return r.in[m]
}

// Gbps converts the bucket series for machine m, direction d into gigabits
// per second.
func (r *Recorder) Gbps(m int, d Dir) []float64 {
	raw := r.Series(m, d)
	out := make([]float64, len(raw))
	secs := r.bucket.Seconds()
	for i, b := range raw {
		out[i] = b * 8 / secs / 1e9
	}
	return out
}

// TotalBytes returns the sum over all buckets for machine m, direction d.
func (r *Recorder) TotalBytes(m int, d Dir) float64 {
	var t float64
	for _, b := range r.Series(m, d) {
		t += b
	}
	return t
}

// Table renders both directions for machine m as the paper's
// time-vs-usage series (time in bucket index, usage in Gbps).
func (r *Recorder) Table(m int) string {
	outG, inG := r.Gbps(m, Out), r.Gbps(m, In)
	n := len(outG)
	if len(inG) > n {
		n = len(inG)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "bucket\toutbound_gbps\tinbound_gbps\n")
	for i := 0; i < n; i++ {
		var o, in float64
		if i < len(outG) {
			o = outG[i]
		}
		if i < len(inG) {
			in = inG[i]
		}
		fmt.Fprintf(&b, "%d\t%.4f\t%.4f\n", i, o, in)
	}
	return b.String()
}
