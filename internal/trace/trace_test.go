package trace

import (
	"math"
	"testing"

	"p3/internal/sim"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSingleBucket(t *testing.T) {
	r := NewRecorder(2, 10*sim.Millisecond)
	r.Start(0)
	r.AddRange(0, Out, 1*sim.Millisecond, 2*sim.Millisecond, 1000)
	s := r.Series(0, Out)
	if len(s) != 1 || !almostEq(s[0], 1000) {
		t.Fatalf("series = %v, want [1000]", s)
	}
	if got := r.Series(0, In); len(got) != 0 {
		t.Fatalf("inbound series unexpectedly %v", got)
	}
}

func TestSpreadAcrossBuckets(t *testing.T) {
	r := NewRecorder(1, 10*sim.Millisecond)
	r.Start(0)
	// 30 ms transfer spanning buckets 0..2 evenly.
	r.AddRange(0, In, 0, 30*sim.Millisecond, 3000)
	s := r.Series(0, In)
	if len(s) != 3 {
		t.Fatalf("series length %d, want 3", len(s))
	}
	for i, b := range s {
		if !almostEq(b, 1000) {
			t.Fatalf("bucket %d = %v, want 1000", i, b)
		}
	}
}

func TestPartialBucketSplit(t *testing.T) {
	r := NewRecorder(1, 10*sim.Millisecond)
	r.Start(0)
	// 5ms..15ms: half in bucket 0, half in bucket 1.
	r.AddRange(0, Out, 5*sim.Millisecond, 15*sim.Millisecond, 800)
	s := r.Series(0, Out)
	if len(s) != 2 || !almostEq(s[0], 400) || !almostEq(s[1], 400) {
		t.Fatalf("series = %v, want [400 400]", s)
	}
}

func TestBytesConserved(t *testing.T) {
	r := NewRecorder(1, 10*sim.Millisecond)
	r.Start(0)
	total := int64(0)
	for i := 0; i < 100; i++ {
		from := sim.Time(i) * 7 * sim.Millisecond
		to := from + sim.Time(i%13+1)*sim.Millisecond
		r.AddRange(0, Out, from, to, int64(i*37+1))
		total += int64(i*37 + 1)
	}
	if got := r.TotalBytes(0, Out); !almostEq(got, float64(total)) {
		t.Fatalf("TotalBytes = %v, want %d", got, total)
	}
}

func TestWindowClipping(t *testing.T) {
	r := NewRecorder(1, 10*sim.Millisecond)
	r.Start(100 * sim.Millisecond)
	// Fully before the window: dropped.
	r.AddRange(0, Out, 0, 50*sim.Millisecond, 500)
	if got := r.TotalBytes(0, Out); got != 0 {
		t.Fatalf("pre-window bytes recorded: %v", got)
	}
	// Straddles the start: only the in-window share counts.
	r.AddRange(0, Out, 90*sim.Millisecond, 110*sim.Millisecond, 1000)
	if got := r.TotalBytes(0, Out); !almostEq(got, 500) {
		t.Fatalf("straddling bytes = %v, want 500", got)
	}
	// Bucket 0 is the window start.
	s := r.Series(0, Out)
	if !almostEq(s[0], 500) {
		t.Fatalf("bucket 0 = %v, want 500", s[0])
	}
}

func TestDisabledAndNilRecorder(t *testing.T) {
	r := NewRecorder(1, 0)
	r.AddRange(0, Out, 0, sim.Millisecond, 100) // not started: ignored
	if got := r.TotalBytes(0, Out); got != 0 {
		t.Fatalf("disabled recorder captured %v bytes", got)
	}
	r.Start(0)
	r.Stop()
	r.AddRange(0, Out, 0, sim.Millisecond, 100)
	if got := r.TotalBytes(0, Out); got != 0 {
		t.Fatalf("stopped recorder captured %v bytes", got)
	}
	var nilRec *Recorder
	nilRec.AddRange(0, Out, 0, sim.Millisecond, 100) // must not panic
}

func TestGbpsConversion(t *testing.T) {
	r := NewRecorder(1, 10*sim.Millisecond)
	r.Start(0)
	// 12.5 MB in one 10 ms bucket = 100 Mbit / 0.01 s = 10 Gbps.
	r.AddRange(0, In, 0, 10*sim.Millisecond, 12_500_000)
	g := r.Gbps(0, In)
	if len(g) != 1 || !almostEq(g[0], 10) {
		t.Fatalf("Gbps = %v, want [10]", g)
	}
}

func TestDefaultBucket(t *testing.T) {
	r := NewRecorder(1, 0)
	if r.Bucket() != DefaultBucket {
		t.Fatalf("default bucket = %v", r.Bucket())
	}
}

func TestTableRendering(t *testing.T) {
	r := NewRecorder(1, 10*sim.Millisecond)
	r.Start(0)
	r.AddRange(0, Out, 0, 10*sim.Millisecond, 1000)
	r.AddRange(0, In, 0, 20*sim.Millisecond, 3000)
	tbl := r.Table(0)
	if tbl == "" {
		t.Fatal("empty table")
	}
	lines := 0
	for _, c := range tbl {
		if c == '\n' {
			lines++
		}
	}
	if lines != 3 { // header + 2 buckets
		t.Fatalf("table has %d lines:\n%s", lines, tbl)
	}
}

func TestZeroAndNegativeRangesIgnored(t *testing.T) {
	r := NewRecorder(1, 10*sim.Millisecond)
	r.Start(0)
	r.AddRange(0, Out, 5, 5, 100)  // empty interval
	r.AddRange(0, Out, 10, 5, 100) // inverted interval
	r.AddRange(0, Out, 0, 10, 0)   // zero bytes
	r.AddRange(0, Out, 0, 10, -5)  // negative bytes
	if got := r.TotalBytes(0, Out); got != 0 {
		t.Fatalf("degenerate ranges recorded %v bytes", got)
	}
}
