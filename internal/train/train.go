// Package train runs data-parallel training of the convergence experiments
// (paper Sections 5.6 and Appendix B.2): N workers compute gradients on
// disjoint data shards and exchange them through one of four aggregation
// rules:
//
//   - Dense: synchronous dense aggregation — the rule shared by the MXNet
//     baseline AND P3. The two differ only in *when* bytes move, never in
//     what is computed, so their parameter trajectories are bit-identical;
//     the trainer exposes the chunk-ordered aggregation path so tests can
//     verify exactly that (the paper's "P3 does not affect convergence").
//   - DGC: Deep Gradient Compression (lossy top-k with momentum correction).
//   - ASGD: asynchronous SGD — each worker pushes into the master without
//     waiting for the others, computing on stale parameters.
//   - Quantized: QSGD/TernGrad/1-bit codecs from the paper's related work.
package train

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"p3/internal/core"
	"p3/internal/data"
	"p3/internal/dgc"
	"p3/internal/model"
	"p3/internal/nn"
	"p3/internal/opt"
	"p3/internal/quant"
)

// Mode selects the gradient-exchange rule.
type Mode int

// Aggregation modes.
const (
	Dense Mode = iota
	DGC
	ASGD
	// Quantized exchanges codec-compressed gradients (QSGD/TernGrad/1-bit,
	// the related-work baselines of the paper's Section 6); the Codecs
	// field supplies one codec per worker.
	Quantized
)

func (m Mode) String() string {
	switch m {
	case Dense:
		return "dense"
	case DGC:
		return "dgc"
	case ASGD:
		return "asgd"
	case Quantized:
		return "quantized"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config describes one training run.
type Config struct {
	Net         nn.Config
	Workers     int
	Batch       int // per-worker batch size
	Epochs      int
	Schedule    opt.Schedule
	Momentum    float64
	WeightDecay float64

	Mode Mode
	// DGCSparsity is the withheld fraction for Mode == DGC (paper: 0.999).
	DGCSparsity float64
	// Codecs holds one quantization codec per worker for Mode == Quantized
	// (codecs like 1-bit SGD carry per-worker error state).
	Codecs []quant.Codec

	// ChunkOrder, if non-nil, aggregates gradients chunk-by-chunk in this
	// plan's order (sorted by priority when Priority is true) instead of
	// tensor-by-tensor. Results are bit-identical either way — that is the
	// paper's central convergence claim, and tests assert it.
	ChunkOrder *core.Plan
	Priority   bool

	// ClipNorm rescales gradients whose global L2 norm exceeds it (0
	// disables). Applied to the aggregated gradient in Dense/ASGD and to
	// each worker's local gradient in DGC, as in the respective papers.
	ClipNorm float64

	Seed int64
	// Parallel computes worker gradients on goroutines (identical results;
	// aggregation order is fixed).
	Parallel bool
}

// clipNorm rescales the tensors in-place so their joint L2 norm is at most
// maxNorm (no-op when maxNorm <= 0).
func clipNorm(grads [][]float64, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	var ss float64
	for _, g := range grads {
		for _, x := range g {
			ss += x * x
		}
	}
	if ss <= maxNorm*maxNorm {
		return
	}
	scale := maxNorm / math.Sqrt(ss)
	for _, g := range grads {
		for i := range g {
			g[i] *= scale
		}
	}
}

// History records a run's per-epoch metrics.
type History struct {
	Mode        Mode
	ValAcc      []float64 // per epoch
	TrainLoss   []float64 // per epoch (mean over iterations)
	Iterations  int
	FinalValAcc float64
	// CompressionRatio is the measured dense-bits / wire-bits ratio for
	// Quantized runs (0 otherwise).
	CompressionRatio float64
}

// Run trains the configured network and returns its history. The master
// replica's parameters end up in the returned network.
func Run(cfg Config, tr, val *data.Set) (*History, *nn.Network) {
	if cfg.Workers <= 0 || cfg.Batch <= 0 || cfg.Epochs <= 0 {
		panic(fmt.Sprintf("train: invalid config workers=%d batch=%d epochs=%d", cfg.Workers, cfg.Batch, cfg.Epochs))
	}
	switch cfg.Mode {
	case Dense:
		return runDense(cfg, tr, val)
	case DGC:
		return runDGC(cfg, tr, val)
	case ASGD:
		return runASGD(cfg, tr, val)
	case Quantized:
		return runQuantized(cfg, tr, val)
	}
	panic(fmt.Sprintf("train: unknown mode %v", cfg.Mode))
}

// runQuantized is synchronous data-parallel SGD where each worker's
// gradient passes through its quantization codec before aggregation. The
// server applies momentum SGD on the mean of the decoded gradients. The
// history records the measured compression ratio.
func runQuantized(cfg Config, tr, val *data.Set) (*History, *nn.Network) {
	if len(cfg.Codecs) != cfg.Workers {
		panic(fmt.Sprintf("train: %d codecs for %d workers", len(cfg.Codecs), cfg.Workers))
	}
	shards, sample := shardsAndBatches(cfg, tr)
	replicas := make([]*nn.Network, cfg.Workers)
	opts := make([]*opt.SGD, cfg.Workers)
	for w := range replicas {
		replicas[w] = nn.NewResidualMLP(cfg.Net)
		opts[w] = opt.NewSGD(cfg.Schedule.LR(0), cfg.Momentum, cfg.WeightDecay)
	}
	params := make([][]*nn.Param, cfg.Workers)
	grads := make([][][]float64, cfg.Workers)
	for w := range replicas {
		params[w] = replicas[w].Params()
		grads[w] = gradBuffers(params[w])
	}
	agg := gradBuffers(params[0])

	h := &History{Mode: cfg.Mode}
	iters := itersPerEpoch(cfg, tr)
	var wireBits, denseBits int64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.Schedule.LR(epoch)
		var lossSum float64
		for it := 0; it < iters; it++ {
			losses := computeGrads(cfg, replicas, shards, sample, epoch, it, grads)
			for _, l := range losses {
				lossSum += l / float64(cfg.Workers)
			}
			for pi := range agg {
				for i := range agg[pi] {
					agg[pi][i] = 0
				}
			}
			for w := 0; w < cfg.Workers; w++ {
				clipNorm(grads[w], cfg.ClipNorm)
				for pi := range agg {
					dec, bits := cfg.Codecs[w].EncodeDecode(pi, grads[w][pi])
					wireBits += bits
					denseBits += 32 * int64(len(dec))
					a := agg[pi]
					for i := range a {
						a[i] += dec[i]
					}
				}
			}
			inv := 1.0 / float64(cfg.Workers)
			for pi := range agg {
				for i := range agg[pi] {
					agg[pi][i] *= inv
				}
			}
			for w := range replicas {
				opts[w].LR = lr
				opts[w].StepDense(params[w], agg)
			}
			h.Iterations++
		}
		h.TrainLoss = append(h.TrainLoss, lossSum/float64(iters))
		h.ValAcc = append(h.ValAcc, replicas[0].Accuracy(val.X, val.Y))
	}
	h.FinalValAcc = h.ValAcc[len(h.ValAcc)-1]
	if wireBits > 0 {
		h.CompressionRatio = float64(denseBits) / float64(wireBits)
	}
	return h, replicas[0]
}

// shardsAndBatches prepares per-worker data shards and a deterministic
// batch-index sampler.
func shardsAndBatches(cfg Config, tr *data.Set) ([]*data.Set, func(epoch, iter, worker int) []int) {
	shards := make([]*data.Set, cfg.Workers)
	for w := range shards {
		shards[w] = tr.Shard(w, cfg.Workers)
	}
	sample := func(epoch, iter, worker int) []int {
		seed := uint64(cfg.Seed)*1e9 + uint64(epoch)*1e6 + uint64(iter)*101 + uint64(worker)
		rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
		idx := make([]int, cfg.Batch)
		n := shards[worker].N()
		for i := range idx {
			idx[i] = rng.IntN(n)
		}
		return idx
	}
	return shards, sample
}

// itersPerEpoch is the number of synchronous steps per epoch.
func itersPerEpoch(cfg Config, tr *data.Set) int {
	it := tr.N() / (cfg.Workers * cfg.Batch)
	if it < 1 {
		it = 1
	}
	return it
}

// gradBuffers allocates one flat gradient buffer per parameter tensor.
func gradBuffers(params []*nn.Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = make([]float64, len(p.Data))
	}
	return out
}

// computeGrads runs forward/backward on every worker's batch and copies the
// resulting per-tensor gradients into grads[w]. Replicas hold identical
// parameters in synchronous modes, so this is exactly data-parallel SGD.
func computeGrads(cfg Config, replicas []*nn.Network, shards []*data.Set,
	sample func(int, int, int) []int, epoch, iter int, grads [][][]float64) []float64 {

	losses := make([]float64, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		runOne := func(w int) {
			x, y := shards[w].Batch(sample(epoch, iter, w))
			net := replicas[w]
			logits := net.Forward(x)
			losses[w] = net.LossAndBackward(logits, y)
			for pi, p := range net.Params() {
				copy(grads[w][pi], p.Grad)
			}
		}
		if cfg.Parallel {
			wg.Add(1)
			go func(w int) { defer wg.Done(); runOne(w) }(w)
		} else {
			runOne(w)
		}
	}
	wg.Wait()
	return losses
}

// aggregate sums per-worker gradients into agg (averaged). If a chunk plan
// is present, aggregation walks chunk-by-chunk in plan (optionally priority)
// order — byte-for-byte the same arithmetic, demonstrating that P3's
// reordering cannot change results.
func aggregate(cfg Config, params []*nn.Param, grads [][][]float64, agg [][]float64) {
	inv := 1.0 / float64(cfg.Workers)
	for pi := range agg {
		for i := range agg[pi] {
			agg[pi][i] = 0
		}
	}
	if cfg.ChunkOrder == nil {
		for pi := range params {
			for w := 0; w < cfg.Workers; w++ {
				g := grads[w][pi]
				a := agg[pi]
				for i := range a {
					a[i] += g[i]
				}
			}
			for i := range agg[pi] {
				agg[pi][i] *= inv
			}
		}
		return
	}
	order := make([]core.Chunk, len(cfg.ChunkOrder.Chunks))
	copy(order, cfg.ChunkOrder.Chunks)
	if cfg.Priority {
		// Stable sort by priority: P3's transmission order.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && order[j].Priority < order[j-1].Priority; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	}
	for _, c := range order {
		a := agg[c.Layer][c.Offset : c.Offset+c.Params]
		for w := 0; w < cfg.Workers; w++ {
			g := grads[w][c.Layer][c.Offset : c.Offset+c.Params]
			for i := range a {
				a[i] += g[i]
			}
		}
		for i := range a {
			a[i] *= inv
		}
	}
}

// PlanFor builds a core slicing plan matching a network's parameter tensors
// so that the trainer can aggregate through P3's chunk order.
func PlanFor(net *nn.Network, maxSlice int64, servers int) *core.Plan {
	params := net.Params()
	m := &model.Model{Name: "trainer", BatchSize: 1, PlateauPerWorker: 1, FwdFraction: 0.5}
	for i, p := range params {
		m.Layers = append(m.Layers, model.Layer{
			Index: i, Name: p.Name, Kind: model.KindFC, Params: int64(len(p.Data)), FwdFLOPs: 1,
		})
	}
	return core.PartitionSlices(m, maxSlice, servers)
}

func runDense(cfg Config, tr, val *data.Set) (*History, *nn.Network) {
	shards, sample := shardsAndBatches(cfg, tr)
	replicas := make([]*nn.Network, cfg.Workers)
	opts := make([]*opt.SGD, cfg.Workers)
	for w := range replicas {
		replicas[w] = nn.NewResidualMLP(cfg.Net) // same seed -> identical init
		opts[w] = opt.NewSGD(cfg.Schedule.LR(0), cfg.Momentum, cfg.WeightDecay)
	}
	params := make([][]*nn.Param, cfg.Workers)
	grads := make([][][]float64, cfg.Workers)
	for w := range replicas {
		params[w] = replicas[w].Params()
		grads[w] = gradBuffers(params[w])
	}
	agg := gradBuffers(params[0])

	h := &History{Mode: cfg.Mode}
	iters := itersPerEpoch(cfg, tr)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.Schedule.LR(epoch)
		var lossSum float64
		for it := 0; it < iters; it++ {
			losses := computeGrads(cfg, replicas, shards, sample, epoch, it, grads)
			for _, l := range losses {
				lossSum += l / float64(cfg.Workers)
			}
			aggregate(cfg, params[0], grads, agg)
			clipNorm(agg, cfg.ClipNorm)
			// Every replica applies the identical aggregated update (the
			// parameter-server broadcast).
			for w := range replicas {
				opts[w].LR = lr
				opts[w].StepDense(params[w], agg)
			}
			h.Iterations++
		}
		h.TrainLoss = append(h.TrainLoss, lossSum/float64(iters))
		h.ValAcc = append(h.ValAcc, replicas[0].Accuracy(val.X, val.Y))
	}
	h.FinalValAcc = h.ValAcc[len(h.ValAcc)-1]
	return h, replicas[0]
}

func runDGC(cfg Config, tr, val *data.Set) (*History, *nn.Network) {
	if cfg.DGCSparsity == 0 {
		cfg.DGCSparsity = 0.999
	}
	shards, sample := shardsAndBatches(cfg, tr)
	replicas := make([]*nn.Network, cfg.Workers)
	for w := range replicas {
		replicas[w] = nn.NewResidualMLP(cfg.Net)
	}
	params := make([][]*nn.Param, cfg.Workers)
	grads := make([][][]float64, cfg.Workers)
	sizes := []int{}
	for _, p := range replicas[0].Params() {
		sizes = append(sizes, len(p.Data))
	}
	comps := make([]*dgc.Compressor, cfg.Workers)
	for w := range replicas {
		params[w] = replicas[w].Params()
		grads[w] = gradBuffers(params[w])
		comps[w] = dgc.NewCompressor(sizes, cfg.DGCSparsity, cfg.Momentum)
	}
	agg := gradBuffers(params[0])

	h := &History{Mode: cfg.Mode}
	iters := itersPerEpoch(cfg, tr)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.Schedule.LR(epoch)
		var lossSum float64
		for it := 0; it < iters; it++ {
			losses := computeGrads(cfg, replicas, shards, sample, epoch, it, grads)
			for _, l := range losses {
				lossSum += l / float64(cfg.Workers)
			}
			// Each worker compresses; the server sums sparse updates.
			for pi := range agg {
				for i := range agg[pi] {
					agg[pi][i] = 0
				}
			}
			for w := 0; w < cfg.Workers; w++ {
				clipNorm(grads[w], cfg.ClipNorm)
				for pi := range agg {
					sp := comps[w].Compress(pi, grads[w][pi])
					dgc.Apply(agg[pi], sp)
				}
			}
			inv := 1.0 / float64(cfg.Workers)
			// DGC carries momentum in the workers (momentum correction), so
			// the server applies plain SGD on the aggregated sparse update.
			for w := range replicas {
				for pi, p := range params[w] {
					for i := range p.Data {
						p.Data[i] -= lr * (agg[pi][i]*inv + cfg.WeightDecay*p.Data[i])
					}
				}
			}
			h.Iterations++
		}
		h.TrainLoss = append(h.TrainLoss, lossSum/float64(iters))
		h.ValAcc = append(h.ValAcc, replicas[0].Accuracy(val.X, val.Y))
	}
	h.FinalValAcc = h.ValAcc[len(h.ValAcc)-1]
	return h, replicas[0]
}

func runASGD(cfg Config, tr, val *data.Set) (*History, *nn.Network) {
	shards, sample := shardsAndBatches(cfg, tr)
	master := nn.NewResidualMLP(cfg.Net)
	masterParams := master.Params()
	sgd := opt.NewSGD(cfg.Schedule.LR(0), cfg.Momentum, cfg.WeightDecay)

	// Each worker computes on a stale snapshot, refreshed after its push.
	replicas := make([]*nn.Network, cfg.Workers)
	for w := range replicas {
		replicas[w] = nn.NewResidualMLP(cfg.Net)
	}
	syncFromMaster := func(w int) {
		for pi, p := range replicas[w].Params() {
			copy(p.Data, masterParams[pi].Data)
		}
	}

	h := &History{Mode: cfg.Mode}
	iters := itersPerEpoch(cfg, tr)
	grad := gradBuffers(masterParams)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		sgd.LR = cfg.Schedule.LR(epoch)
		var lossSum float64
		for it := 0; it < iters; it++ {
			// One "iteration" consumes the same sample budget as a
			// synchronous step: every worker pushes once, in turn, each
			// computing on parameters that are (Workers-1) updates stale by
			// the time its own update lands.
			for w := 0; w < cfg.Workers; w++ {
				x, y := shards[w].Batch(sample(epoch, it, w))
				net := replicas[w]
				logits := net.Forward(x)
				lossSum += net.LossAndBackward(logits, y) / float64(cfg.Workers)
				for pi, p := range net.Params() {
					copy(grad[pi], p.Grad)
				}
				clipNorm(grad, cfg.ClipNorm)
				sgd.StepDense(masterParams, grad)
				syncFromMaster(w)
			}
			h.Iterations++
		}
		h.TrainLoss = append(h.TrainLoss, lossSum/float64(iters))
		h.ValAcc = append(h.ValAcc, master.Accuracy(val.X, val.Y))
	}
	h.FinalValAcc = h.ValAcc[len(h.ValAcc)-1]
	return h, master
}
