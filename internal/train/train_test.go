package train

import (
	"testing"

	"p3/internal/data"
	"p3/internal/nn"
	"p3/internal/opt"
	"p3/internal/quant"
)

func tinyTask(t *testing.T) (tr, val *data.Set, netCfg nn.Config) {
	t.Helper()
	set := data.Generate(data.Config{Samples: 480, Features: 16, Classes: 4, Noise: 1.2, Seed: 5})
	tr, val = set.Split(0.25)
	netCfg = nn.Config{In: 16, Width: 24, Classes: 4, Blocks: 2, Seed: 9}
	return tr, val, netCfg
}

func baseCfg(netCfg nn.Config) Config {
	return Config{
		Net: netCfg, Workers: 4, Batch: 8, Epochs: 6,
		Schedule: opt.ConstSchedule(0.05), Momentum: 0.9, WeightDecay: 1e-4,
		ClipNorm: 2, Seed: 31,
	}
}

func finalParams(net *nn.Network) [][]float64 {
	var out [][]float64
	for _, p := range net.Params() {
		out = append(out, append([]float64(nil), p.Data...))
	}
	return out
}

func paramsEqual(a, b [][]float64) bool {
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestP3AggregationBitIdentical is the paper's central convergence claim
// (Sections 4, 5.6): P3 reorders *when* gradients move, never what is
// computed. Aggregating tensor-by-tensor (baseline), chunk-by-chunk in plan
// order (slicing), and chunk-by-chunk in priority order (P3) must produce
// bit-identical parameter trajectories.
func TestP3AggregationBitIdentical(t *testing.T) {
	tr, val, netCfg := tinyTask(t)

	run := func(mutate func(*Config)) [][]float64 {
		cfg := baseCfg(netCfg)
		cfg.Mode = Dense
		mutate(&cfg)
		_, net := Run(cfg, tr, val)
		return finalParams(net)
	}

	probe := nn.NewResidualMLP(netCfg)
	plan := PlanFor(probe, 64, 4) // small slices: many chunks per tensor

	baseline := run(func(c *Config) {})
	sliced := run(func(c *Config) { c.ChunkOrder = plan })
	p3 := run(func(c *Config) { c.ChunkOrder = plan; c.Priority = true })
	parallel := run(func(c *Config) { c.Parallel = true })

	if !paramsEqual(baseline, sliced) {
		t.Fatal("chunk-ordered aggregation diverged from tensor-ordered")
	}
	if !paramsEqual(baseline, p3) {
		t.Fatal("priority-ordered aggregation diverged from baseline")
	}
	if !paramsEqual(baseline, parallel) {
		t.Fatal("parallel gradient computation diverged from sequential")
	}
}

func TestDenseReplicasStayIdentical(t *testing.T) {
	tr, val, netCfg := tinyTask(t)
	cfg := baseCfg(netCfg)
	cfg.Mode = Dense
	cfg.Epochs = 2
	// Run twice: determinism of the whole trainer.
	h1, net1 := Run(cfg, tr, val)
	h2, net2 := Run(cfg, tr, val)
	if h1.FinalValAcc != h2.FinalValAcc {
		t.Fatal("trainer not deterministic")
	}
	if !paramsEqual(finalParams(net1), finalParams(net2)) {
		t.Fatal("parameters differ across identical runs")
	}
}

func TestDenseConverges(t *testing.T) {
	tr, val, netCfg := tinyTask(t)
	cfg := baseCfg(netCfg)
	cfg.Mode = Dense
	cfg.Epochs = 12
	h, _ := Run(cfg, tr, val)
	if h.FinalValAcc < 0.75 {
		t.Fatalf("dense training reached only %.3f", h.FinalValAcc)
	}
	if h.Iterations != 12*(tr.N()/(4*8)) {
		t.Fatalf("iteration count %d unexpected", h.Iterations)
	}
	if len(h.ValAcc) != 12 || len(h.TrainLoss) != 12 {
		t.Fatalf("history lengths %d/%d", len(h.ValAcc), len(h.TrainLoss))
	}
}

func TestDGCConverges(t *testing.T) {
	tr, val, netCfg := tinyTask(t)
	cfg := baseCfg(netCfg)
	cfg.Mode = DGC
	cfg.DGCSparsity = 0.99
	cfg.Epochs = 12
	h, _ := Run(cfg, tr, val)
	if h.FinalValAcc < 0.7 {
		t.Fatalf("DGC training reached only %.3f", h.FinalValAcc)
	}
}

func TestASGDConverges(t *testing.T) {
	tr, val, netCfg := tinyTask(t)
	cfg := baseCfg(netCfg)
	cfg.Mode = ASGD
	cfg.Schedule = opt.ConstSchedule(0.02) // staleness tolerates less LR
	cfg.Epochs = 12
	h, _ := Run(cfg, tr, val)
	if h.FinalValAcc < 0.7 {
		t.Fatalf("ASGD training reached only %.3f", h.FinalValAcc)
	}
}

func TestClipNorm(t *testing.T) {
	g := [][]float64{{3, 0}, {0, 4}} // norm 5
	clipNorm(g, 10)                  // under the cap: untouched
	if g[0][0] != 3 || g[1][1] != 4 {
		t.Fatal("clip modified in-bounds gradient")
	}
	clipNorm(g, 2.5) // halve
	if g[0][0] != 1.5 || g[1][1] != 2 {
		t.Fatalf("clip = %v", g)
	}
	clipNorm(g, 0) // disabled
	if g[0][0] != 1.5 {
		t.Fatal("disabled clip modified gradient")
	}
}

func TestPlanForMatchesNetwork(t *testing.T) {
	net := nn.NewResidualMLP(nn.Config{In: 8, Width: 16, Classes: 3, Blocks: 1, Seed: 2})
	plan := PlanFor(net, 50, 4)
	params := net.Params()
	if len(plan.ByLayer) != len(params) {
		t.Fatalf("plan covers %d tensors, network has %d", len(plan.ByLayer), len(params))
	}
	for i, p := range params {
		var covered int64
		for _, id := range plan.LayerChunks(i) {
			covered += plan.Chunks[id].Params
		}
		if covered != int64(len(p.Data)) {
			t.Fatalf("tensor %s: plan covers %d of %d", p.Name, covered, len(p.Data))
		}
	}
}

func TestModeString(t *testing.T) {
	if Dense.String() != "dense" || DGC.String() != "dgc" || ASGD.String() != "asgd" {
		t.Fatal("mode names broken")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode empty")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	tr, val, netCfg := tinyTask(t)
	cfg := baseCfg(netCfg)
	cfg.Workers = 0
	defer func() {
		if recover() == nil {
			t.Fatal("workers=0 accepted")
		}
	}()
	Run(cfg, tr, val)
}

func TestQuantizedConverges(t *testing.T) {
	tr, val, netCfg := tinyTask(t)
	cfg := baseCfg(netCfg)
	cfg.Mode = Quantized
	cfg.Epochs = 12
	for w := 0; w < cfg.Workers; w++ {
		cfg.Codecs = append(cfg.Codecs, quant.NewQSGD(8, int64(w)))
	}
	h, _ := Run(cfg, tr, val)
	if h.FinalValAcc < 0.7 {
		t.Fatalf("QSGD training reached only %.3f", h.FinalValAcc)
	}
	if h.CompressionRatio < 5 {
		t.Fatalf("QSGD-8 compression ratio %.2f, want > 5x", h.CompressionRatio)
	}
}

func TestQuantizedRequiresCodecs(t *testing.T) {
	tr, val, netCfg := tinyTask(t)
	cfg := baseCfg(netCfg)
	cfg.Mode = Quantized
	defer func() {
		if recover() == nil {
			t.Fatal("missing codecs accepted")
		}
	}()
	Run(cfg, tr, val)
}
