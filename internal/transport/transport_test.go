package transport

import (
	"bytes"
	"io"
	"math"
	"p3/internal/sched"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Type: TypePush, Sender: 3, Priority: -7, Key: 123456789, Iter: 42,
		Values: []float32{1.5, -2.25, 0, math.MaxFloat32},
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.Sender != f.Sender || got.Priority != f.Priority ||
		got.Key != f.Key || got.Iter != f.Iter || len(got.Values) != len(f.Values) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
	}
	for i := range f.Values {
		if got.Values[i] != f.Values[i] {
			t.Fatalf("value %d: %v != %v", i, got.Values[i], f.Values[i])
		}
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(typ, sender uint8, prio int32, key uint64, iter int32, vals []float32) bool {
		in := &Frame{Type: typ, Sender: sender, Priority: prio, Key: key, Iter: iter, Values: vals}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		if out.Type != typ || out.Sender != sender || out.Priority != prio ||
			out.Key != key || out.Iter != iter || len(out.Values) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN != NaN: compare bit patterns.
			if math.Float32bits(out.Values[i]) != math.Float32bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyPayloadFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: TypeHello, Sender: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeHello || len(got.Values) != 0 {
		t.Fatalf("hello round trip: %+v", got)
	}
}

func TestMultipleFramesStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteFrame(&buf, &Frame{Type: TypePush, Key: uint64(i), Values: []float32{float32(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Key != uint64(i) || got.Values[0] != float32(i) {
			t.Fatalf("frame %d out of order: %+v", i, got)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, &Frame{Type: TypePush, Values: []float32{1, 2, 3}})
	raw := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestCorruptLength(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("absurd length accepted")
	}
	raw = []byte{1, 0, 0, 0, 0} // below header size
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("undersized length accepted")
	}
}

func TestCorruptCount(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, &Frame{Type: TypePush, Values: []float32{1, 2}})
	raw := buf.Bytes()
	// Corrupt the declared value count (offset 4+18 = 22).
	raw[22] = 99
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("count/length mismatch accepted")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	f := &Frame{Type: TypePush, Values: make([]float32, MaxFrameValues+1)}
	if err := WriteFrame(io.Discard, f); err == nil {
		t.Fatal("oversize frame written")
	}
}

// ---- SendQueue ----

func TestQueueFIFO(t *testing.T) {
	q := NewSendQueue(sched.NewFIFO())
	for i := int32(0); i < 5; i++ {
		q.Push(&Frame{Iter: i, Priority: -i}) // priorities would reverse it
	}
	for i := int32(0); i < 5; i++ {
		f, ok := q.Pop()
		if !ok || f.Iter != i {
			t.Fatalf("FIFO pop %d = %+v", i, f)
		}
	}
}

func TestQueuePriority(t *testing.T) {
	q := NewSendQueue(sched.NewP3Priority())
	for _, p := range []int32{5, 1, 3, 1, 4} {
		q.Push(&Frame{Priority: p})
	}
	want := []int32{1, 1, 3, 4, 5}
	for i, w := range want {
		f, _ := q.Pop()
		if f.Priority != w {
			t.Fatalf("pop %d priority %d, want %d", i, f.Priority, w)
		}
	}
}

func TestQueueBlockingPop(t *testing.T) {
	q := NewSendQueue(sched.NewP3Priority())
	done := make(chan *Frame)
	go func() {
		f, _ := q.Pop()
		done <- f
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(&Frame{Key: 7})
	select {
	case f := <-done:
		if f.Key != 7 {
			t.Fatalf("popped %+v", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop never woke up")
	}
}

func TestQueueCloseWakesConsumers(t *testing.T) {
	q := NewSendQueue(sched.NewFIFO())
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := q.Pop(); ok {
				t.Error("closed empty queue returned a frame")
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	wg.Wait()
	// Push after close is a no-op.
	q.Push(&Frame{})
	if q.Len() != 0 {
		t.Fatal("push after close landed")
	}
}

func TestQueueDrainAfterClose(t *testing.T) {
	q := NewSendQueue(sched.NewFIFO())
	q.Push(&Frame{Key: 1})
	q.Push(&Frame{Key: 2})
	q.Close()
	f, ok := q.Pop()
	if !ok || f.Key != 1 {
		t.Fatalf("drain after close: %+v %v", f, ok)
	}
	if f, ok := q.TryPop(); !ok || f.Key != 2 {
		t.Fatalf("TryPop after close: %+v %v", f, ok)
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on drained queue returned a frame")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := NewSendQueue(sched.NewP3Priority())
	const producers, per = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(&Frame{Priority: int32(p*per + i)})
			}
		}(p)
	}
	wg.Wait()
	if q.Len() != producers*per {
		t.Fatalf("queue has %d frames", q.Len())
	}
	last := int32(-1)
	for q.Len() > 0 {
		f, _ := q.Pop()
		if f.Priority < last {
			t.Fatal("priority order violated")
		}
		last = f.Priority
	}
}
