package transport

import (
	"testing"

	"p3/internal/sched"
)

// TestSendQueueSetProfile pins the runtime recalibration hook: a tictac
// queue created without a profile ranks by raw priority (the documented p3
// fallback); after SetProfile installs timing whose slack order inverts the
// raw order, frames pushed afterwards dispatch by slack. This is the
// mechanism behind the calibrated mode of pstcp (Server/Worker.SetProfile):
// measure a pass, rebuild the profile from its stalls, swap it in live.
func TestSendQueueSetProfile(t *testing.T) {
	q := NewSendQueue(sched.MustByName("tictac"))
	defer q.Close()

	push := func(pri int32) {
		q.Push(&Frame{Type: TypePush, Priority: pri, Values: make([]float32, 4)})
	}
	popPri := func() int32 {
		f, ok := q.TryPop()
		if !ok {
			t.Fatal("queue unexpectedly empty")
		}
		q.Done(f)
		return f.Priority
	}

	// Profile-less tictac degrades to p3: class 0 first.
	push(1)
	push(0)
	if got := popPri(); got != 0 {
		t.Fatalf("profile-less tictac popped class %d first, want 0", got)
	}
	popPri()

	// Install a profile whose slack ranks class 1 more urgent than class 0
	// (heavy transfer against an early deadline) — with frames ALREADY
	// queued, which must re-order under the rebuilt heaps.
	push(0)
	push(1)
	q.SetProfile(&sched.Profile{
		NeedAtNs:     []int64{5000, 6000},
		LayerBytes:   []int64{100, 1_000_000},
		GbpsEstimate: 1,
	})
	if got := popPri(); got != 1 {
		t.Fatalf("calibrated tictac popped class %d first, want the negative-slack class 1", got)
	}
	popPri()

	// On a profile-blind discipline the hook is a harmless no-op.
	p := NewSendQueue(sched.MustByName("p3"))
	defer p.Close()
	p.SetProfile(&sched.Profile{NeedAtNs: []int64{1}, GbpsEstimate: 1})
	p.Push(&Frame{Type: TypePush, Priority: 3})
	if f, ok := p.TryPop(); !ok || f.Priority != 3 {
		t.Fatal("p3 queue disturbed by SetProfile")
	}
}
