package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"p3/internal/sched"
)

// TestRequeueRefundsCreditAndReschedules: a popped-but-unacknowledged frame
// returned via Requeue must refund its in-flight credit (the window frees up
// for other traffic) and rejoin the schedule to be popped again.
func TestRequeueRefundsCreditAndReschedules(t *testing.T) {
	q := NewSendQueue(sched.NewCreditGated(100))
	f := &Frame{Priority: 5, Values: make([]float32, 20)} // 80 bytes
	other := &Frame{Priority: 9, Values: make([]float32, 20)}
	q.Push(f)
	q.Push(other)
	got, ok := q.TryPop()
	if !ok || got != f {
		t.Fatalf("first pop = %+v, want the urgent frame", got)
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("second frame admitted with the window full")
	}
	q.Requeue(f) // write failed: credit back, frame rescheduled
	if got, ok = q.TryPop(); !ok || got != f {
		t.Fatalf("post-Requeue pop = (%+v,%v), want the requeued frame", got, ok)
	}
	q.Done(f)
	if got, ok = q.TryPop(); !ok || got != other {
		t.Fatalf("final pop = (%+v,%v), want the other frame", got, ok)
	}
	q.Done(other)
}

// TestRequeueOnClosedQueueDropsButRefunds: requeueing after Close must not
// resurrect the frame (no retry is coming) but still refunds its credit so
// the drain stays balanced.
func TestRequeueOnClosedQueueDropsButRefunds(t *testing.T) {
	q := NewSendQueue(sched.NewCreditGated(100))
	f := &Frame{Priority: 1, Values: make([]float32, 20)}
	q.Push(f)
	if _, ok := q.TryPop(); !ok {
		t.Fatal("pop failed")
	}
	q.Close()
	q.Requeue(f)
	if _, ok := q.Pop(); ok {
		t.Fatal("closed queue resurrected a requeued frame")
	}
}

// errWriter fails every write after the first n bytes worth of calls.
type errWriter struct {
	err      error
	failNow  bool
	writes   int
	flushErr error
}

func (w *errWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.failNow {
		return 0, w.err
	}
	return len(p), nil
}

func (w *errWriter) Flush() error { return w.flushErr }

// TestSendLoopErrRoutesFailuresToCallback: frames whose destination has no
// writer, whose write errors, or whose flush errors must reach onErr with
// their credit still held — and a Requeue from the callback retries them on
// the writer that exists by then.
func TestSendLoopErrRoutesFailuresToCallback(t *testing.T) {
	q := NewSendQueue(sched.NewP3Priority())
	good := &errWriter{}
	bad := &errWriter{err: errors.New("broken pipe"), failNow: true}

	var mu sync.Mutex
	failCh := make(chan error, 8)

	// Dst 0 has no writer; dst 1 fails writes until flipped; dst 2 works.
	writers := map[uint8]FlushWriter{1: bad, 2: good}
	retried := map[*Frame]bool{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		SendLoopErr(q, func(f *Frame) FlushWriter {
			if w, ok := writers[f.Dst]; ok {
				return w
			}
			return nil
		}, 0, func(f *Frame, err error) {
			mu.Lock()

			if !errors.Is(err, ErrNoWriter) {
				bad.failNow = false // "reconnected": the retry must succeed
			}
			if !retried[f] {
				retried[f] = true
				q.Requeue(f)
			} else {
				q.Cancel(f)
			}
			mu.Unlock()
			failCh <- err
		})
	}()

	noWriter := &Frame{Type: TypePush, Dst: 0, Key: 10}
	flaky := &Frame{Type: TypePush, Dst: 1, Key: 11}
	clean := &Frame{Type: TypePush, Dst: 2, Key: 12}
	q.Push(noWriter)
	q.Push(flaky)
	q.Push(clean)

	// Close only after both failure kinds surfaced, so the retry Requeue
	// happens on a live queue.
	var sawNoWriter, sawWriteErr bool
	timeout := time.After(5 * time.Second)
	for !(sawNoWriter && sawWriteErr) {
		select {
		case err := <-failCh:
			if errors.Is(err, ErrNoWriter) {
				sawNoWriter = true
			} else if err != nil {
				sawWriteErr = true
			}
		case <-timeout:
			t.Fatalf("failures never surfaced (sawNoWriter=%v sawWriteErr=%v)", sawNoWriter, sawWriteErr)
		}
	}
	q.Close()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if !retried[flaky] && !retried[noWriter] {
		t.Error("no failed frame was retried")
	}
	// The flaky frame's retry must have landed on a writer: after failNow is
	// cleared, dst 1 accepts the write.
	if bad.writes < 2 {
		t.Errorf("flaky writer saw %d writes, want the original attempt plus the retry", bad.writes)
	}
	if good.writes == 0 {
		t.Error("clean frame never written")
	}
}
