package transport

import (
	"sync"
	"testing"
	"time"

	"p3/internal/sched"
)

// TestManyFlowConcurrentSendQueue is the -race coverage for the indexed-heap
// dispatcher under the concurrency it actually serves: many producers
// pushing frames spread over 64 destination flows while one consumer drains
// with the Pop/Done credit protocol. Beyond data races, it checks the two
// structural invariants the rewrite must preserve under interleaving —
// everything pushed is dispatched exactly once, and the queue's flow table
// is empty once drained (eviction keeps up with concurrent traffic).
func TestManyFlowConcurrentSendQueue(t *testing.T) {
	const (
		producers = 8
		perProd   = 500
		dests     = 64
	)
	for _, name := range []string{"p3", "credit-adaptive:4096"} {
		t.Run(name, func(t *testing.T) {
			q := NewSendQueue(sched.MustByName(name))

			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProd; i++ {
						q.Push(&Frame{
							Type:     TypePush,
							Priority: int32((p + i) % 16),
							Dst:      uint8((p*perProd + i) % dests),
							Key:      uint64(p*perProd + i),
							Values:   make([]float32, 8),
						})
					}
				}(p)
			}

			seen := make(map[uint64]bool, producers*perProd)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for len(seen) < producers*perProd {
					f, ok := q.Pop()
					if !ok {
						t.Errorf("queue closed with %d/%d frames drained", len(seen), producers*perProd)
						return
					}
					if seen[f.Key] {
						t.Errorf("frame %d dispatched twice", f.Key)
						return
					}
					seen[f.Key] = true
					q.Done(f)
				}
			}()

			wg.Wait()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatalf("consumer wedged: %d/%d frames drained", len(seen), producers*perProd)
			}
			if n := q.Len(); n != 0 {
				t.Fatalf("drained queue reports Len %d", n)
			}
		})
	}
}
