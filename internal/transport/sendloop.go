package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// FlushWriter is the buffered per-connection writer the send loop serializes
// frames into.
type FlushWriter interface {
	io.Writer
	Flush() error
}

// FrameWireBytes returns f's full serialized size, length prefix included.
func FrameWireBytes(f *Frame) int { return 4 + headerBytes + 4*len(f.Values) }

// SegmentWriter serializes one frame across multiple bounded writes, so a
// single consumer thread can interleave strictly more urgent frames for
// other connections between the segments of a bulk frame — the real-network
// analogue of netsim's resumable egress. The frame's wire encoding is
// unchanged; only the writing is split, so the receiver never notices.
type SegmentWriter struct {
	f   *Frame
	off int // values already written
	hdr bool
	err error
}

// NewSegmentWriter starts a segmented write of f.
func NewSegmentWriter(f *Frame) *SegmentWriter {
	s := &SegmentWriter{f: f}
	if len(f.Values) > MaxFrameValues {
		s.err = fmt.Errorf("transport: frame carries %d values, max %d", len(f.Values), MaxFrameValues)
	}
	return s
}

// Done reports whether the frame is fully written — or failed, in which case
// the stream is broken and cannot accept the rest.
func (s *SegmentWriter) Done() bool {
	return s.err != nil || (s.hdr && s.off == len(s.f.Values))
}

// Err returns the first write error, if any.
func (s *SegmentWriter) Err() error { return s.err }

// WriteNext writes the frame's next segment of at most quantum bytes to w
// (the first segment always carries the whole header, plus values up to the
// quantum; every segment makes progress even when quantum is tiny). Call it
// until Done reports true; segments of one frame must all go to the same
// writer, with nothing else interleaved on it.
func (s *SegmentWriter) WriteNext(w io.Writer, quantum int) error {
	if s.Done() {
		return s.err
	}
	budget := quantum
	if !s.hdr {
		var hdr [4 + headerBytes]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(headerBytes+4*len(s.f.Values)))
		hdr[4] = s.f.Type
		hdr[5] = s.f.Sender
		binary.LittleEndian.PutUint32(hdr[6:], uint32(s.f.Priority))
		binary.LittleEndian.PutUint64(hdr[10:], s.f.Key)
		binary.LittleEndian.PutUint32(hdr[18:], uint32(s.f.Iter))
		binary.LittleEndian.PutUint32(hdr[22:], uint32(len(s.f.Values)))
		if _, err := w.Write(hdr[:]); err != nil {
			s.err = err
			return err
		}
		s.hdr = true
		budget -= len(hdr)
	}
	n := budget / 4
	if n < 1 {
		n = 1 // always progress, even when the header ate the quantum
	}
	if rem := len(s.f.Values) - s.off; n > rem {
		n = rem
	}
	if n == 0 {
		return nil
	}
	buf := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(s.f.Values[s.off+i]))
	}
	if _, err := w.Write(buf); err != nil {
		s.err = err
		return err
	}
	s.off += n
	return nil
}

// ErrNoWriter is the error SendLoopErr hands its onErr callback for a
// frame whose destination has no writer right now (never registered, or
// its connection is down awaiting a reconnect).
var ErrNoWriter = errors.New("transport: no writer for destination")

// SendLoop is the consumer thread of Section 4.2, shared by the worker and
// server sides of pstcp: it drains q until the queue is closed and empty,
// writing each admitted frame to the writer sink resolves for it (a nil
// sink result drops the frame — e.g. a destination that never registered).
// Credit bookkeeping follows the batch-flush protocol: a popped frame's
// credit is returned (Done) when the loop flushes, which happens whenever
// nothing is admitted — so a credit-gated discipline bounds the
// buffered-but-unflushed backlog.
//
// quantum > 0 enables preemptive transmission: a frame larger than quantum
// wire bytes is written in quantum-sized segments, and between segments any
// strictly more urgent admitted frame bound for a DIFFERENT destination is
// written first (one TCP stream cannot interleave two frames, so
// same-destination urgency still waits for the in-flight frame; the
// per-flow send queue guarantees the preemptor never reorders the parked
// flow). quantum <= 0 writes every frame whole — the paper's semantics,
// preemption only at frame granularity.
func SendLoop(q *SendQueue, sink func(*Frame) FlushWriter, quantum int) {
	SendLoopErr(q, sink, quantum, nil)
}

// SendLoopErr is SendLoop with an error path: every popped frame that did
// not make it onto the wire — nil sink (ErrNoWriter), write error, or a
// failed flush — is handed to onErr instead of being acknowledged. The
// callback owns the frame's credit from that point: it must eventually
// Requeue (retry on a fresh connection) or Cancel it on the queue.
// Duplicates are possible — a flush error cannot tell how many buffered
// bytes reached the peer before the connection died — so receivers retried
// through this path must deduplicate (pstcp servers track a per-iteration
// seen-sender set). A nil onErr restores SendLoop's fire-and-forget
// semantics: undeliverable frames are dropped with their credit returned.
func SendLoopErr(q *SendQueue, sink func(*Frame) FlushWriter, quantum int, onErr func(*Frame, error)) {
	dirty := make(map[FlushWriter]bool)
	pending := make(map[FlushWriter][]*Frame) // written, not yet flushed/acked
	fail := func(f *Frame, err error) {
		if onErr != nil {
			onErr(f, err)
		} else {
			q.Done(f)
		}
	}
	flushAll := func() {
		for w := range dirty {
			err := w.Flush()
			delete(dirty, w)
			for _, f := range pending[w] {
				if err != nil {
					fail(f, err)
				} else {
					q.Done(f)
				}
			}
			delete(pending, w)
		}
		// Writers with acknowledged-but-clean backlogs (their bytes flushed
		// with an earlier preemptor) and frames that never had a writer.
		for w, fs := range pending {
			for _, f := range fs {
				q.Done(f)
			}
			delete(pending, w)
		}
	}
	// writePreemptor ships an urgent frame NOW: written, flushed to its
	// socket, and acknowledged immediately. Leaving it in the bufio layer
	// until the bulk frame's usual idle-time flush would forfeit the very
	// latency the preemption exists to recover.
	writePreemptor := func(f *Frame) {
		w := sink(f)
		if w == nil {
			fail(f, ErrNoWriter)
			return
		}
		if err := WriteFrame(w, f); err != nil {
			fail(f, err)
			return
		}
		if err := w.Flush(); err != nil {
			// The preemptor's bytes died in the broken stream along with any
			// earlier buffered frames on this writer.
			delete(dirty, w)
			for _, p := range pending[w] {
				fail(p, err)
			}
			delete(pending, w)
			fail(f, err)
			return
		}
		delete(dirty, w) // earlier buffered frames flushed with it
		for _, p := range pending[w] {
			q.Done(p)
		}
		delete(pending, w)
		q.Done(f)
	}
	for {
		f, ok := q.TryPop()
		if !ok {
			// Nothing admitted right now — either the queue is empty or the
			// credit window is full of unflushed frames. Flush, return their
			// credit, then block for the next admitted frame.
			flushAll()
			if f, ok = q.Pop(); !ok {
				flushAll()
				return
			}
		}
		w := sink(f)
		if w == nil {
			fail(f, ErrNoWriter)
			continue
		}
		if quantum <= 0 || FrameWireBytes(f) <= quantum {
			if err := WriteFrame(w, f); err != nil {
				fail(f, err)
				continue
			}
			dirty[w] = true
			pending[w] = append(pending[w], f)
			continue
		}
		// Bulk frame: write it in segments, letting strictly more urgent
		// frames for other connections overtake at each boundary.
		sw := NewSegmentWriter(f)
		for !sw.Done() {
			if err := sw.WriteNext(w, quantum); err != nil {
				break // stream broken; abandon the remainder
			}
			dirty[w] = true
			// Preemptors are written whole: each is, by construction, the
			// most urgent admitted traffic at this instant, so there is
			// nothing that should overtake it mid-frame.
			for {
				p, ok := q.TryPopPreempting(f)
				if !ok {
					break
				}
				writePreemptor(p)
			}
		}
		if err := sw.Err(); err != nil {
			fail(f, err)
			continue
		}
		pending[w] = append(pending[w], f)
	}
}
