package transport

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"p3/internal/sched"
)

// driveCreditWindow hammers a SendQueue with concurrent producers and
// consumers and tracks, per destination, the bytes between a successful pop
// and its Done call. Consumers mimic the real sendLoop: popped frames
// accumulate in a pending batch and are only acknowledged when the
// discipline stops admitting (or the batch fills), so the in-flight total
// genuinely presses against the window. The per-destination counters are
// maintained with atomics strictly inside the pop..Done interval, so the
// observed maximum can only under-count what the discipline charged — an
// observed value above the configured bound proves the window was exceeded.
//
// Consumers use TryPop (never the post-Close drain, which bypasses the gate
// by design), and every frame is smaller than the window, so the idle-queue
// admission exception cannot push a destination above its bound either.
func driveCreditWindow(t *testing.T, mk func() sched.Discipline, globalBound, perDestBound int64, dests int) {
	t.Helper()
	const (
		producers      = 4
		consumers      = 2
		framesPerProd  = 500
		maxFrameFloats = 64 // 256 bytes max, far below any window
		batch          = 32
	)
	total := int64(producers * framesPerProd)
	q := NewSendQueue(mk())
	inFlight := make([]atomic.Int64, dests)
	maxSeen := make([]atomic.Int64, dests)
	var globalInFlight, globalMax, popped atomic.Int64
	bump := func(counter, max *atomic.Int64, delta int64) {
		now := counter.Add(delta)
		for {
			prev := max.Load()
			if now <= prev || max.CompareAndSwap(prev, now) {
				return
			}
		}
	}

	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(seed uint64) {
			defer prodWG.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
			for i := 0; i < framesPerProd; i++ {
				q.Push(&Frame{
					Type:     TypePush,
					Priority: int32(rng.IntN(8)),
					Dst:      uint8(rng.IntN(dests)),
					Values:   make([]float32, 1+rng.IntN(maxFrameFloats)),
				})
			}
		}(uint64(p + 1))
	}

	var consWG sync.WaitGroup
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			var pending []*Frame
			flush := func() {
				for _, f := range pending {
					inFlight[f.Dst].Add(-4 * int64(len(f.Values)))
					globalInFlight.Add(-4 * int64(len(f.Values)))
					q.Done(f)
				}
				pending = pending[:0]
			}
			for {
				f, ok := q.TryPop()
				if !ok {
					// Window full or queue momentarily empty: return the
					// credit we hold so the gate can open, then retry.
					flush()
					if popped.Load() == total && q.Len() == 0 {
						return
					}
					runtime.Gosched()
					continue
				}
				popped.Add(1)
				d := int(f.Dst)
				bytes := 4 * int64(len(f.Values))
				bump(&inFlight[d], &maxSeen[d], bytes)
				bump(&globalInFlight, &globalMax, bytes)
				pending = append(pending, f)
				if len(pending) >= batch {
					flush()
				}
			}
		}()
	}

	prodWG.Wait()
	consWG.Wait()
	q.Close()

	if got := popped.Load(); got != total {
		t.Fatalf("consumed %d frames, want %d", got, total)
	}
	if got := globalMax.Load(); got > globalBound {
		t.Errorf("global: observed %d in-flight bytes, bound %d", got, globalBound)
	}
	for d := 0; d < dests; d++ {
		if got := maxSeen[d].Load(); got > perDestBound {
			t.Errorf("dest %d: observed %d in-flight bytes, window bound %d", d, got, perDestBound)
		}
	}
}

// TestCreditGatedWindowNeverExceededConcurrent: under concurrent
// Push/TryPop/Done producers and consumers, the shared credit window is
// never exceeded (every frame fits inside it, so the idle-queue exception
// cannot fire above the bound). Run with -race, as CI does.
func TestCreditGatedWindowNeverExceededConcurrent(t *testing.T) {
	const window = 1 << 12
	driveCreditWindow(t, func() sched.Discipline { return sched.NewCreditGated(window) }, window, window, 3)
}

// TestAdaptiveCreditWindowNeverExceededConcurrent: the per-destination
// adaptive windows grow and shrink during the run, but no destination's
// in-flight bytes may ever exceed the adaptation ceiling (Max).
func TestAdaptiveCreditWindowNeverExceededConcurrent(t *testing.T) {
	const initial = 1 << 12
	const dests = 3
	probe := sched.NewAdaptiveCredit(initial)
	// Windows are per destination: the global total may legitimately reach
	// the sum of every destination's ceiling, but no single destination may
	// exceed its own.
	driveCreditWindow(t, func() sched.Discipline { return sched.NewAdaptiveCredit(initial) }, dests*probe.Max, probe.Max, dests)
}
