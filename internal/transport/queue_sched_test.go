package transport

import (
	"math/rand/v2"
	"sync"
	"testing"

	"p3/internal/sched"
)

// TestP3NeverEmitsLowerPriorityWhileHigherQueued is the scheduler-correctness
// property of Section 4.2: under any interleaving of pushes and pops, a
// SendQueue running the p3 discipline must never hand the consumer a frame
// while a strictly more urgent frame is still queued.
func TestP3NeverEmitsLowerPriorityWhileHigherQueued(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 99))
	for trial := 0; trial < 25; trial++ {
		q := NewSendQueue(sched.NewP3Priority())
		queued := map[int32]int{} // priority -> frames currently queued
		for step := 0; step < 500; step++ {
			if rng.IntN(2) == 0 || q.Len() == 0 {
				p := int32(rng.IntN(10))
				q.Push(&Frame{Type: TypePush, Priority: p})
				queued[p]++
				continue
			}
			f, ok := q.TryPop()
			if !ok {
				t.Fatalf("trial %d: TryPop failed on non-empty queue", trial)
			}
			for p, n := range queued {
				if n > 0 && p < f.Priority {
					t.Fatalf("trial %d: emitted priority %d while priority %d queued",
						trial, f.Priority, p)
				}
			}
			queued[f.Priority]--
		}
	}
}

// TestCreditGatedSendQueue exercises the Done/credit path end to end: with a
// one-frame window the consumer must acknowledge each frame before the next
// is admitted, and urgency still wins within the window.
func TestCreditGatedSendQueue(t *testing.T) {
	q := NewSendQueue(sched.NewCreditGated(100))
	lo := &Frame{Priority: 9, Values: make([]float32, 20)} // 80 bytes
	hi := &Frame{Priority: 0, Values: make([]float32, 20)}
	q.Push(lo)
	q.Push(hi)
	f, ok := q.TryPop()
	if !ok || f != hi {
		t.Fatalf("first pop = %+v, want the urgent frame", f)
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("second frame admitted with the window full")
	}
	q.Done(hi)
	if f, ok := q.TryPop(); !ok || f != lo {
		t.Fatalf("post-Done pop = (%+v,%v), want the low frame", f, ok)
	}
	q.Done(lo)
}

// TestCreditGatedDrainAfterClose: draining a closed credit-gated queue with
// the consumer's usual Pop+Done loop must stay balanced — the drain path
// bypasses the admission gate but still charges credit, so the trailing
// Done calls cannot underflow the window (this panicked before the charge
// was added to the drain path).
func TestCreditGatedDrainAfterClose(t *testing.T) {
	q := NewSendQueue(sched.NewCreditGated(100))
	for i := 0; i < 4; i++ {
		q.Push(&Frame{Priority: int32(i), Values: make([]float32, 30)}) // 120 B each
	}
	q.Close()
	for i := 0; i < 4; i++ {
		f, ok := q.Pop()
		if !ok {
			t.Fatalf("drain pop %d failed", i)
		}
		q.Done(f) // must not panic with "credit underflow"
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("drained queue returned a frame")
	}
}

// BenchmarkSendQueue measures the queue under concurrent producers for the
// three wire disciplines the paper's comparison hinges on: fifo (baseline),
// p3 (priority), and credit (bounded preemption window).
func BenchmarkSendQueue(b *testing.B) {
	const producers = 4
	for _, name := range []string{"fifo", "p3", "credit:262144"} {
		b.Run(name, func(b *testing.B) {
			q := NewSendQueue(sched.MustByName(name))
			frames := make([]*Frame, 64)
			for i := range frames {
				frames[i] = &Frame{
					Type:     TypePush,
					Priority: int32(i % 16),
					Values:   make([]float32, 64),
				}
			}
			var wg sync.WaitGroup
			per := b.N / producers
			b.ResetTimer()
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						q.Push(frames[(p*per+i)%len(frames)])
					}
				}(p)
			}
			for i := 0; i < per*producers; i++ {
				f, ok := q.Pop()
				if !ok {
					b.Fatal("queue closed early")
				}
				q.Done(f)
			}
			wg.Wait()
		})
	}

	// The serial many-destination dispatch benchmarks (sendqueue/*/64dests)
	// live in internal/benchmarks, shared with `p3bench bench` and the CI
	// regression gate, and run under go test via the root BenchmarkDispatch
	// driver; the sub-benchmarks here cover what that suite cannot — real
	// producer/consumer concurrency on the mutex/condvar path.

	// blocked-flow: the hot path of flow-aware head skipping. Destination 1
	// sits permanently credit-blocked at the most urgent priority; every
	// dispatch must skip over it to destination 2's admissible frames, so
	// the benchmark prices the per-pop cost of the per-flow head scan.
	b.Run("credit-adaptive/blocked-flow", func(b *testing.B) {
		q := NewSendQueue(sched.NewAdaptiveCredit(512))
		for i := 0; i < 2; i++ {
			q.Push(&Frame{Type: TypePush, Priority: 0, Dst: 1, Values: make([]float32, 64)})
			if f, ok := q.TryPop(); !ok || f.Dst != 1 {
				b.Fatal("setup pop failed")
			}
			// Never acknowledged: flow 1 stays blocked.
		}
		q.Push(&Frame{Type: TypePush, Priority: 0, Dst: 1, Values: make([]float32, 64)})
		frames := make([]*Frame, 64)
		for i := range frames {
			frames[i] = &Frame{Type: TypePush, Priority: 9, Dst: 2, Values: make([]float32, 64)}
		}
		var wg sync.WaitGroup
		const producers = 4
		per := b.N / producers
		b.ResetTimer()
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					q.Push(frames[(p*per+i)%len(frames)])
				}
			}(p)
		}
		for i := 0; i < per*producers; i++ {
			f, ok := q.Pop()
			if !ok {
				b.Fatal("queue closed early")
			}
			if f.Dst != 2 {
				b.Fatal("blocked flow dispatched")
			}
			q.Done(f)
		}
		wg.Wait()
	})
}
