package transport

import (
	"bytes"
	"testing"

	"p3/internal/sched"
)

// bufSink is an in-memory FlushWriter.
type bufSink struct{ bytes.Buffer }

func (b *bufSink) Flush() error { return nil }

// TestSegmentWriterRoundTrip: a frame written in bounded segments must
// decode identically to one written whole, for quanta from smaller than the
// header to larger than the frame.
func TestSegmentWriterRoundTrip(t *testing.T) {
	f := &Frame{Type: TypePush, Sender: 3, Priority: 7, Key: 99, Iter: 5, Values: make([]float32, 1000)}
	for i := range f.Values {
		f.Values[i] = float32(i) * 0.25
	}
	for _, quantum := range []int{8, 64, 300, 4096, 1 << 20} {
		var buf bufSink
		sw := NewSegmentWriter(f)
		steps := 0
		for !sw.Done() {
			if err := sw.WriteNext(&buf, quantum); err != nil {
				t.Fatalf("quantum %d: WriteNext: %v", quantum, err)
			}
			if steps++; steps > FrameWireBytes(f)+8 {
				t.Fatalf("quantum %d: no progress", quantum)
			}
		}
		if buf.Len() != FrameWireBytes(f) {
			t.Fatalf("quantum %d: wrote %d bytes, want %d", quantum, buf.Len(), FrameWireBytes(f))
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("quantum %d: ReadFrame: %v", quantum, err)
		}
		if got.Type != f.Type || got.Sender != f.Sender || got.Priority != f.Priority ||
			got.Key != f.Key || got.Iter != f.Iter || len(got.Values) != len(f.Values) {
			t.Fatalf("quantum %d: frame mismatch: %+v", quantum, got)
		}
		for i := range f.Values {
			if got.Values[i] != f.Values[i] {
				t.Fatalf("quantum %d: value %d = %v, want %v", quantum, i, got.Values[i], f.Values[i])
			}
		}
	}
}

// gateSink blocks after its first values write so the test can inject
// frames while a bulk frame is deterministically mid-write.
type gateSink struct {
	bufSink
	writes  int
	midway  chan struct{}
	release chan struct{}
}

func (g *gateSink) Write(p []byte) (int, error) {
	n, err := g.bufSink.Write(p)
	g.writes++
	if g.writes == 2 { // header write + first segment's values write
		close(g.midway)
		<-g.release
	}
	return n, err
}

// TestSendLoopPreemptsAcrossConnections: with a write quantum, a bulk frame
// for one server is interleaved with a strictly more urgent frame for
// another server — the urgent frame lands on its connection while the bulk
// frame is provably mid-write — while a same-connection urgent frame must
// wait (one TCP stream cannot interleave two frames). Both streams decode
// cleanly, with the bulk frame contiguous on its connection.
func TestSendLoopPreemptsAcrossConnections(t *testing.T) {
	q := NewSendQueue(sched.NewP3Priority())
	conn0 := &gateSink{midway: make(chan struct{}), release: make(chan struct{})}
	conn1 := &bufSink{}
	sink := func(f *Frame) FlushWriter {
		if f.Dst == 0 {
			return conn0
		}
		return conn1
	}
	bulk := &Frame{Type: TypePush, Priority: 5, Dst: 0, Key: 1, Values: make([]float32, 100_000)}
	urgent := &Frame{Type: TypePush, Priority: 0, Dst: 1, Key: 2, Values: make([]float32, 4)}
	sameConn := &Frame{Type: TypePush, Priority: 0, Dst: 0, Key: 3, Values: make([]float32, 4)}
	q.Push(bulk)

	done := make(chan struct{})
	go func() {
		defer close(done)
		SendLoop(q, sink, 16<<10)
	}()

	<-conn0.midway // bulk frame is mid-write on connection 0
	q.Push(urgent)
	q.Push(sameConn)
	close(conn0.release)
	q.Close()
	<-done

	// Connection 1 got the urgent frame even though bulk was mid-write.
	f1, err := ReadFrame(&conn1.Buffer)
	if err != nil || f1.Key != 2 {
		t.Fatalf("connection 1: (%+v, %v), want the urgent frame", f1, err)
	}
	// Connection 0: the bulk frame is contiguous (the same-connection
	// urgent frame could not interleave) and the urgent frame follows.
	f0, err := ReadFrame(&conn0.Buffer)
	if err != nil || f0.Key != 1 {
		t.Fatalf("connection 0 first frame: (%+v, %v), want the contiguous bulk frame", f0, err)
	}
	f0, err = ReadFrame(&conn0.Buffer)
	if err != nil || f0.Key != 3 {
		t.Fatalf("connection 0 second frame: (%+v, %v), want the deferred same-connection frame", f0, err)
	}
	if conn0.Len() != 0 || conn1.Len() != 0 {
		t.Fatal("trailing bytes after decoding all frames")
	}
}

// TestSendLoopWholeFramesWithoutQuantum: quantum 0 must reproduce the
// pre-refactor behaviour — every frame written whole, credit returned on
// flush.
func TestSendLoopWholeFramesWithoutQuantum(t *testing.T) {
	q := NewSendQueue(sched.NewCreditGated(1 << 20))
	var sink bufSink
	for i := 0; i < 5; i++ {
		q.Push(&Frame{Type: TypePush, Priority: int32(i), Key: uint64(i), Values: make([]float32, 64)})
	}
	q.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		SendLoop(q, func(*Frame) FlushWriter { return &sink }, 0)
	}()
	<-done
	for i := 0; i < 5; i++ {
		f, err := ReadFrame(&sink.Buffer)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Key != uint64(i) {
			t.Fatalf("frame %d: key %d, want priority order", i, f.Key)
		}
	}
}
