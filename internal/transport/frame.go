// Package transport implements the wire protocol of the real (non-simulated)
// parameter server: length-prefixed binary frames carrying float32 tensors,
// plus the blocking scheduled queue (SendQueue) that the sender and receiver
// producer/consumer loops of Section 4.2 drain. SendQueue takes its ordering
// from a sched.Discipline — fifo for the baseline wire behaviour, p3 for the
// paper's priority mechanism, credit for a ByteScheduler-style bounded
// in-flight window, or any other discipline registered in internal/sched —
// so the transport itself is policy-free.
//
// The frame layout (little-endian):
//
//	uint32  payload length (bytes after this field)
//	uint8   type
//	uint8   sender id
//	int32   priority (lower = more urgent)
//	uint64  key (chunk id)
//	int32   iteration
//	uint32  value count
//	float32 x count values
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame types.
const (
	TypeInit      uint8 = iota + 1 // worker -> server: set initial parameter values
	TypePush                       // worker -> server: gradient contribution
	TypePull                       // worker -> server: request current value
	TypeData                       // server -> worker: updated parameter values
	TypeNotify                     // server -> worker: key updated (no payload)
	TypeHello                      // worker -> server: register this connection
	TypeHeartbeat                  // either direction: keep-alive, refreshes the peer's read deadline
)

// MaxFrameValues bounds a single frame's tensor payload; larger tensors must
// be sliced (which P3 does anyway). Prevents hostile/corrupt length fields
// from allocating unbounded memory.
const MaxFrameValues = 1 << 24

// headerBytes is the fixed frame size excluding the leading length field and
// the values.
const headerBytes = 1 + 1 + 4 + 8 + 4 + 4

// Frame is one protocol message.
type Frame struct {
	Type     uint8
	Sender   uint8
	Priority int32
	Key      uint64
	Iter     int32
	Values   []float32

	// Dst routes an outgoing frame to a peer inside a process's send queue.
	// It is not serialized.
	Dst uint8
}

// WriteFrame serializes f to w. Callers typically wrap w in a bufio.Writer
// and flush once the send queue momentarily drains.
func WriteFrame(w io.Writer, f *Frame) error {
	if len(f.Values) > MaxFrameValues {
		return fmt.Errorf("transport: frame carries %d values, max %d", len(f.Values), MaxFrameValues)
	}
	var hdr [4 + headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(headerBytes+4*len(f.Values)))
	hdr[4] = f.Type
	hdr[5] = f.Sender
	binary.LittleEndian.PutUint32(hdr[6:], uint32(f.Priority))
	binary.LittleEndian.PutUint64(hdr[10:], f.Key)
	binary.LittleEndian.PutUint32(hdr[18:], uint32(f.Iter))
	binary.LittleEndian.PutUint32(hdr[22:], uint32(len(f.Values)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Values) == 0 {
		return nil
	}
	buf := make([]byte, 4*len(f.Values))
	for i, v := range f.Values {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// ReadFrame deserializes one frame from r.
func ReadFrame(r io.Reader) (*Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err // io.EOF propagates cleanly on clean shutdown
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < headerBytes || n > headerBytes+4*MaxFrameValues {
		return nil, fmt.Errorf("transport: invalid frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("transport: truncated frame: %w", err)
	}
	f := &Frame{
		Type:     body[0],
		Sender:   body[1],
		Priority: int32(binary.LittleEndian.Uint32(body[2:])),
		Key:      binary.LittleEndian.Uint64(body[6:]),
		Iter:     int32(binary.LittleEndian.Uint32(body[14:])),
	}
	count := binary.LittleEndian.Uint32(body[18:])
	if uint32(len(body)-headerBytes) != 4*count {
		return nil, fmt.Errorf("transport: frame declares %d values but carries %d bytes",
			count, len(body)-headerBytes)
	}
	if count > 0 {
		f.Values = make([]float32, count)
		for i := range f.Values {
			f.Values[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[headerBytes+4*i:]))
		}
	}
	return f, nil
}

// NewFrameWriter returns a buffered writer sized for typical slice frames.
func NewFrameWriter(w io.Writer) *bufio.Writer { return bufio.NewWriterSize(w, 256<<10) }

// NewFrameReader returns a buffered reader sized for typical slice frames.
func NewFrameReader(r io.Reader) *bufio.Reader { return bufio.NewReaderSize(r, 256<<10) }
