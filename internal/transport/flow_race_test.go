package transport

import (
	"sync"
	"testing"
	"time"

	"p3/internal/sched"
)

// TestBlockedFlowNeverDelaysAdmissibleFlow is the concurrency property of
// flow-aware head skipping, run under -race in CI: with per-destination
// credit windows, a destination whose window is exhausted (its frames are
// popped but never acknowledged) must never delay admissible frames bound
// for an unblocked destination — the consumer keeps draining destination B
// at full rate while destination A sits credit-blocked at higher urgency.
func TestBlockedFlowNeverDelaysAdmissibleFlow(t *testing.T) {
	const (
		frameVals = 64 // 256 bytes/frame
		window    = 512
		bFrames   = 200
	)
	q := NewSendQueue(sched.NewAdaptiveCredit(window))

	// Exhaust destination A's window with two unacknowledged frames that
	// are MORE urgent than anything destination B will ever send.
	for i := 0; i < 2; i++ {
		q.Push(&Frame{Type: TypePush, Priority: 0, Dst: 1, Values: make([]float32, frameVals)})
		f, ok := q.TryPop()
		if !ok || f.Dst != 1 {
			t.Fatalf("setup pop %d failed: (%+v, %v)", i, f, ok)
		}
		// Never Done(f): A's window stays full.
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // producer: urgent traffic for blocked A, bulk for open B
		defer wg.Done()
		for i := 0; i < bFrames; i++ {
			q.Push(&Frame{Type: TypePush, Priority: 0, Dst: 1, Values: make([]float32, frameVals)})
			q.Push(&Frame{Type: TypePush, Priority: 9, Dst: 2, Values: make([]float32, frameVals)})
		}
	}()

	done := make(chan struct{})
	var got int
	go func() { // consumer: every admitted frame must be for B
		defer close(done)
		for got < bFrames {
			f, ok := q.Pop()
			if !ok {
				t.Errorf("queue closed with %d/%d B frames drained", got, bFrames)
				return
			}
			if f.Dst != 2 {
				t.Errorf("credit-blocked destination 1 dispatched (priority %d) ahead of admissible destination 2", f.Priority)
				return
			}
			got++
			q.Done(f)
		}
	}()

	wg.Wait()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("consumer wedged: %d/%d admissible frames drained while a flow was credit-blocked", got, bFrames)
	}
	// A's frames are all still queued, untouched.
	if n := q.Len(); n != bFrames {
		t.Fatalf("blocked flow retained %d frames, want %d", n, bFrames)
	}
}

// TestSendQueueCancelAfterHeadSkip mirrors the sched-level regression at
// the transport layer: a frame popped by skipping a blocked flow and then
// cancelled refunds its own destination's window.
func TestSendQueueCancelAfterHeadSkip(t *testing.T) {
	a := sched.NewAdaptiveCredit(256)
	q := NewSendQueue(a)
	blockA := &Frame{Priority: 0, Dst: 1, Values: make([]float32, 60)} // 240 B
	q.Push(blockA)
	if f, ok := q.TryPop(); !ok || f != blockA {
		t.Fatal("setup pop failed")
	}
	forB := &Frame{Priority: 5, Dst: 2, Values: make([]float32, 30)}
	q.Push(forB)
	f, ok := q.TryPop()
	if !ok || f != forB {
		t.Fatalf("head skip failed: (%+v, %v)", f, ok)
	}
	q.Cancel(f)
	if got := a.InFlight(2); got != 0 {
		t.Fatalf("dest 2 in-flight after cancel = %d, want 0", got)
	}
	if got := a.InFlight(1); got != 240 {
		t.Fatalf("dest 1 in-flight = %d, want 240", got)
	}
}
