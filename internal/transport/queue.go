package transport

import (
	"sync"

	"p3/internal/sched"
)

// SendQueue is the blocking scheduled queue behind every producer/consumer
// pair in the real transport (Section 4.2): producers enqueue frames as
// gradients become ready, a single consumer goroutine pops the most urgent
// frame and performs the blocking network write. The ordering — and any
// credit gating — comes from the sched.Discipline supplied at construction:
// fifo reproduces the baseline, p3 the paper's priority mechanism, credit a
// ByteScheduler-style bounded preemption window.
//
// The underlying sched.Queue is per-flow (keyed by Frame.Dst), so under a
// credit-gated discipline a destination whose window is exhausted never
// blocks admissible frames bound for other destinations: Pop and TryPop
// dispatch the most urgent admissible flow head (flow-aware head skipping),
// all under the queue's one mutex/condvar.
type SendQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       *sched.Queue[*Frame]
	gated   bool // the discipline has an Admitter: Done/Cancel can unblock a consumer
	waiters int  // consumers parked in cond.Wait
	closed  bool
}

// frameItem is the scheduler-visible view of a frame: the wire priority,
// the payload size, and the destination endpoint (the flow key of
// per-destination disciplines such as credit-adaptive). The sending
// endpoint is a property of the whole queue, injected into source-aware
// disciplines via sched.ApplySource by the queue's owner (pstcp).
func frameItem(f *Frame) sched.Item {
	return sched.Item{Priority: f.Priority, Bytes: 4 * int64(len(f.Values)), Dest: int32(f.Dst)}
}

// NewSendQueue creates a queue ordered by d. d must be a fresh discipline
// instance (stateful disciplines carry per-queue state); obtain one from
// sched.ByName.
func NewSendQueue(d sched.Discipline) *SendQueue {
	s := &SendQueue{q: sched.NewQueue(d, frameItem)}
	_, s.gated = d.(sched.Admitter)
	s.cond = sync.NewCond(&s.mu)
	return s
}

// signal wakes one parked consumer, if any. Tracking the waiter count keeps
// the producer fast path free of the condvar's notify list when the consumer
// is keeping up (the common case under load); callers must hold s.mu.
func (s *SendQueue) signal() {
	if s.waiters > 0 {
		s.cond.Signal()
	}
}

// Push enqueues a frame. Pushing to a closed queue is a no-op.
func (s *SendQueue) Push(f *Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.q.Push(f)
	s.signal()
}

// Pop blocks until a frame is admitted by the discipline or the queue is
// closed. The second result is false once the queue is closed and drained.
// With a credit-gated discipline the caller must Done every popped frame
// once its write completes, or the window fills and Pop blocks forever.
func (s *SendQueue) Pop() (*Frame, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed {
		if f, ok := s.q.PopReady(); ok {
			return f, true
		}
		s.waiters++
		s.cond.Wait()
		s.waiters--
	}
	// Closed: drain without the credit gate — the consumer is shutting
	// down and acknowledgements may never come.
	return s.q.Pop()
}

// TryPop pops without blocking; the second result is false if nothing is
// queued or the discipline refuses to admit every flow head right now.
func (s *SendQueue) TryPop() (*Frame, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.q.Pop()
	}
	return s.q.PopReady()
}

// TryPopPreempting pops, without blocking, the most urgent admitted frame
// that is strictly more urgent than hold AND bound for a different
// destination — the segment-boundary primitive of a preemptive send loop,
// whose in-flight frame occupies hold's connection (one TCP stream cannot
// interleave two frames). The second result is false when no such frame is
// queued, the queue is closed (the drain path finishes in-flight frames
// first), or every candidate is refused by the credit window.
func (s *SendQueue) TryPopPreempting(hold *Frame) (*Frame, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	return s.q.PopPreempting(hold)
}

// Done releases f's in-flight credit and wakes a consumer that may now be
// admitted. Call it once per popped frame after the blocking write
// completes. For a discipline without a credit window the release is a
// no-op and nothing new can become admissible, so ungated queues skip the
// lock round-trip entirely — Done costs nothing on the fifo/p3 hot path.
func (s *SendQueue) Done(f *Frame) {
	if !s.gated {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.q.Done(f)
	s.signal()
}

// Cancel releases f's in-flight credit without signalling a completion —
// the caller backed out of the write (the frame was never put on the wire),
// so adaptive disciplines must not tune their windows on it. The refund is
// routed by f's own destination, so a flow skipped at dispatch never
// absorbs another flow's refund.
func (s *SendQueue) Cancel(f *Frame) {
	if !s.gated {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.q.Cancel(f)
	s.signal()
}

// Requeue returns a popped-but-unacknowledged frame to the queue — the
// reconnect path's primitive: the frame's write failed (or its connection
// died before the flush), so its in-flight credit is refunded as a Cancel
// (the bytes never reached the peer; adaptive windows must not tune on
// them) and the frame rejoins the schedule to be retried on the next
// connection. Requeueing on a closed queue refunds the credit but drops
// the frame: the consumer is shutting down and no retry is coming.
func (s *SendQueue) Requeue(f *Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gated {
		s.q.Cancel(f)
	}
	if !s.closed {
		s.q.Push(f)
	}
	s.signal()
}

// SetProfile installs a (re)calibrated timing profile on the queue's
// discipline when it is profile-aware (tictac, damped:tictac); a no-op
// otherwise. It is the runtime hook of the calibrated mode: a worker or
// server that has measured its real per-layer stalls swaps in the profile
// rebuilt from them (strategy.CalibrateProfile) without tearing the queue
// down. Frames already queued are re-ordered under the new profile
// (sched.Queue.SetProfile rebuilds the heaps, so the swap is safe
// mid-traffic); in-flight credit is untouched.
func (s *SendQueue) SetProfile(p *sched.Profile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.q.SetProfile(p)
	s.signal()
}

// Len reports the queued frame count.
func (s *SendQueue) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Len()
}

// Close wakes all blocked consumers; queued frames may still be drained via
// Pop/TryPop.
func (s *SendQueue) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}
