package transport

import (
	"sync"

	"p3/internal/pq"
)

// SendQueue is the blocking priority queue behind every producer/consumer
// pair in the real transport (Section 4.2): producers enqueue frames as
// gradients become ready, a single consumer goroutine pops the most urgent
// frame and performs the blocking network write. When priority mode is off
// the queue degenerates to FIFO, which is the baseline behaviour.
type SendQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      *pq.Queue[*Frame]
	closed bool
}

// NewSendQueue creates a queue; priority selects P3 ordering vs FIFO.
func NewSendQueue(priority bool) *SendQueue {
	less := func(a, b *Frame) bool { return false }
	if priority {
		less = func(a, b *Frame) bool { return a.Priority < b.Priority }
	}
	s := &SendQueue{q: pq.New(less)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Push enqueues a frame. Pushing to a closed queue is a no-op.
func (s *SendQueue) Push(f *Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.q.Push(f)
	s.cond.Signal()
}

// Pop blocks until a frame is available or the queue is closed. The second
// result is false once the queue is closed and drained.
func (s *SendQueue) Pop() (*Frame, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.q.Len() == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.q.Len() == 0 {
		return nil, false
	}
	return s.q.Pop(), true
}

// TryPop pops without blocking; the second result is false if nothing is
// queued.
func (s *SendQueue) TryPop() (*Frame, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.q.Len() == 0 {
		return nil, false
	}
	return s.q.Pop(), true
}

// Len reports the queued frame count.
func (s *SendQueue) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Len()
}

// Close wakes all blocked consumers; queued frames may still be drained via
// Pop/TryPop.
func (s *SendQueue) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}
