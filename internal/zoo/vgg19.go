package zoo

import (
	"fmt"

	"p3/internal/model"
)

// VGG19 builds VGG-19 (Simonyan & Zisserman 2014) for 224x224 inputs:
// sixteen 3x3 convolutions in five blocks plus three fully connected layers.
// 38 parameter tensors, 143.67M parameters. The first FC layer
// (25088x4096 = 102.76M parameters, 71.5% of the model) is the
// disproportionately heavy tensor the paper's Figure 5(b) and the
// granularity analysis of Section 3 revolve around.
func VGG19() *model.Model {
	b := &builder{}

	type block struct {
		convs int64
		cout  int64
		hw    int64 // spatial side within the block (pooling halves it after)
	}
	blocks := []block{
		{convs: 2, cout: 64, hw: 224},
		{convs: 2, cout: 128, hw: 112},
		{convs: 4, cout: 256, hw: 56},
		{convs: 4, cout: 512, hw: 28},
		{convs: 4, cout: 512, hw: 14},
	}

	in := int64(3)
	for bi, blk := range blocks {
		for c := int64(0); c < blk.convs; c++ {
			b.convBias(fmt.Sprintf("conv%d_%d", bi+1, c+1), 3, in, blk.cout, blk.hw)
			in = blk.cout
		}
	}

	// After the fifth pool: 512 x 7 x 7 = 25088 inputs to the classifier.
	b.fc("fc6", 512*7*7, 4096)
	b.fc("fc7", 4096, 4096)
	b.fc("fc8", 4096, 1000)

	return &model.Model{
		Name:             "vgg19",
		Layers:           b.layers,
		BatchSize:        32,
		SampleUnit:       "images",
		PlateauPerWorker: 56,
		FwdFraction:      1.0 / 3.0,
	}
}
