package zoo

import (
	"p3/internal/model"
)

// Sockeye builds an IWSLT15-scale Sockeye (Hieber et al. 2017) neural
// machine translation model: source/target embeddings, a bidirectional LSTM
// encoder layer followed by two stacked LSTM encoder layers, MLP attention,
// a three-layer LSTM decoder and the output projection. 20k source / 12k
// target vocabulary, 512 hidden units, ~25-token average sentences.
//
// The distinguishing trait the paper leans on (Figure 5(c), Sections 5.3 and
// 5.5): the heaviest parameter tensor is the *initial* source embedding, so
// its gradient is produced last in backprop yet consumed first in the next
// forward pass — the worst case for FIFO synchronization. Variable sequence
// lengths also make iteration times uneven across workers, captured by
// ComputeJitter.
func Sockeye() *model.Model {
	const (
		srcVocab = 20000
		tgtVocab = 12000
		hidden   = 512
		srcLen   = 25 // average source tokens per sentence
		tgtLen   = 25 // average target tokens per sentence
	)

	b := &builder{}

	// lstm emits the four parameter tensors of one LSTM layer and attributes
	// per-sentence FLOPs (2 FLOPs per weight per time step).
	lstm := func(name string, in, steps int64) {
		i2h := int64(4 * in * hidden)
		h2h := int64(4 * hidden * hidden)
		b.add(name+"_i2h_weight", model.KindRNN, i2h, 2*i2h*steps)
		b.add(name+"_i2h_bias", model.KindBias, 4*hidden, 4*hidden*steps)
		b.add(name+"_h2h_weight", model.KindRNN, h2h, 2*h2h*steps)
		b.add(name+"_h2h_bias", model.KindBias, 4*hidden, 4*hidden*steps)
	}

	// Source embedding: the heaviest tensor, first in forward order.
	b.add("source_embed_weight", model.KindEmbedding, srcVocab*hidden, srcLen*hidden*2)

	// Encoder: bidirectional first layer, then two stacked layers.
	lstm("encoder_birnn_fwd", hidden, srcLen)
	lstm("encoder_birnn_rev", hidden, srcLen)
	lstm("encoder_rnn_l1", 2*hidden, srcLen) // consumes the concatenated directions
	lstm("encoder_rnn_l2", hidden, srcLen)

	// Bridge: initializes the decoder state from the final encoder state.
	b.fc("bridge", hidden, hidden)

	// Target embedding.
	b.add("target_embed_weight", model.KindEmbedding, tgtVocab*hidden, tgtLen*hidden*2)

	// MLP attention (query projection, key projection, scoring vector).
	b.add("attention_query_weight", model.KindAttention, hidden*hidden, 2*hidden*hidden*tgtLen)
	b.add("attention_key_weight", model.KindAttention, hidden*hidden, 2*hidden*hidden*srcLen)
	b.add("attention_score_weight", model.KindAttention, hidden, 2*hidden*srcLen*tgtLen)

	// Decoder: first layer consumes embedding + attention context.
	lstm("decoder_rnn_l0", 2*hidden, tgtLen)
	lstm("decoder_rnn_l1", hidden, tgtLen)
	lstm("decoder_rnn_l2", hidden, tgtLen)

	// Output projection over the target vocabulary.
	b.add("output_weight", model.KindFC, hidden*tgtVocab, 2*hidden*tgtVocab*tgtLen)
	b.add("output_bias", model.KindBias, tgtVocab, tgtVocab*tgtLen)

	return &model.Model{
		Name:             "sockeye",
		Layers:           b.layers,
		BatchSize:        64,
		SampleUnit:       "sentences",
		PlateauPerWorker: 170,
		ComputeJitter:    0.12,
		FwdFraction:      1.0 / 3.0,
	}
}
