package zoo

import (
	"fmt"

	"p3/internal/model"
)

// ResNet110 builds the CIFAR-10 ResNet-110 (He et al. 2015) used by the
// paper's convergence studies (Section 5.6 and Appendix B.2): a 3x3 stem,
// three stages of 18 basic blocks at widths 16/32/64 on 32x32 inputs, and a
// 10-way classifier. ~1.73M parameters across ~330 tiny tensors. The timing
// experiments use it to derive the iteration times behind the accuracy-vs-
// wall-clock comparison of Figure 15.
func ResNet110() *model.Model {
	b := &builder{}

	b.convBN("conv0", 3, 3, 16, 32)

	type stage struct {
		width int64
		hw    int64
	}
	stages := []stage{{16, 32}, {32, 16}, {64, 8}}
	in := int64(16)
	for si, s := range stages {
		for u := 1; u <= 18; u++ {
			prefix := fmt.Sprintf("stage%d_unit%d", si+1, u)
			b.convBN(prefix+"_conv1", 3, in, s.width, s.hw)
			b.convBN(prefix+"_conv2", 3, s.width, s.width, s.hw)
			if in != s.width {
				// Projection shortcut on the widening unit.
				b.convBN(prefix+"_sc", 1, in, s.width, s.hw)
			}
			in = s.width
		}
	}

	b.fc("fc", 64, 10)

	return &model.Model{
		Name:             "resnet110",
		Layers:           b.layers,
		BatchSize:        128,
		SampleUnit:       "images",
		PlateauPerWorker: 900,
		FwdFraction:      1.0 / 3.0,
	}
}
