// Package zoo builds the four DNNs the paper evaluates — ResNet-50,
// InceptionV3, VGG-19 and Sockeye — as parameter-tensor tables
// (model.Model). Architectures are generated programmatically from their
// published configurations; parameter counts are exact for ResNet-50 and
// VGG-19 and faithful approximations for InceptionV3 (aux classifier
// excluded) and Sockeye (IWSLT15-scale NMT: 16k vocab, 512-unit LSTMs).
//
// One table entry per parameter tensor (conv weight, BN gamma, BN beta, FC
// weight, FC bias, ...), in forward-pass order — the same granularity as
// MXNet KVStore keys and the x axis of the paper's Figure 5.
package zoo

import (
	"fmt"
	"strings"

	"p3/internal/model"
)

// Names of the available models, in the order the paper presents them.
var Names = []string{"resnet50", "inception3", "vgg19", "sockeye"}

// ByName returns the named model. It panics on an unknown name; use Lookup
// for user-supplied names and Names for the valid set.
func ByName(name string) *model.Model {
	m, err := Lookup(name)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// Lookup returns the named model, or an error listing the valid names —
// the validation front door for names arriving from CLI flags.
func Lookup(name string) (*model.Model, error) {
	switch name {
	case "resnet50":
		return ResNet50(), nil
	case "inception3", "inceptionv3":
		return InceptionV3(), nil
	case "vgg19":
		return VGG19(), nil
	case "sockeye":
		return Sockeye(), nil
	case "resnet110":
		return ResNet110(), nil
	}
	return nil, fmt.Errorf("zoo: unknown model %q (want %s|resnet110)", name, strings.Join(Names, "|"))
}

// All returns the four paper models.
func All() []*model.Model {
	return []*model.Model{ResNet50(), InceptionV3(), VGG19(), Sockeye()}
}

// builder accumulates parameter tensors in forward order.
type builder struct {
	layers []model.Layer
}

func (b *builder) add(name string, kind model.Kind, params, flops int64) {
	b.layers = append(b.layers, model.Layer{
		Index:    len(b.layers),
		Name:     name,
		Kind:     kind,
		Params:   params,
		FwdFLOPs: flops,
	})
}

// conv emits a convolution weight tensor (no bias, as in BN networks).
// k: kernel side, cin/cout: channels, hw: output spatial side.
func (b *builder) conv(name string, k, cin, cout, hwOut int64) {
	params := k * k * cin * cout
	flops := 2 * params * hwOut * hwOut
	b.add(name+"_weight", model.KindConv, params, flops)
}

// conv2 emits a convolution with distinct kernel height/width (for
// InceptionV3's factorized 1x7 / 7x1 convolutions).
func (b *builder) conv2(name string, kh, kw, cin, cout, hOut, wOut int64) {
	params := kh * kw * cin * cout
	flops := 2 * params * hOut * wOut
	b.add(name+"_weight", model.KindConv, params, flops)
}

// bn emits batch-norm gamma and beta tensors over cout channels at spatial
// side hw.
func (b *builder) bn(name string, cout, hw int64) {
	elemFLOPs := 2 * cout * hw * hw
	b.add(name+"_gamma", model.KindBatchNorm, cout, elemFLOPs)
	b.add(name+"_beta", model.KindBatchNorm, cout, elemFLOPs)
}

// convBN emits a conv weight followed by its batch norm.
func (b *builder) convBN(name string, k, cin, cout, hwOut int64) {
	b.conv(name, k, cin, cout, hwOut)
	b.bn(name+"_bn", cout, hwOut)
}

// convBN2 is convBN with rectangular kernels.
func (b *builder) convBN2(name string, kh, kw, cin, cout, hOut, wOut int64) {
	b.conv2(name, kh, kw, cin, cout, hOut, wOut)
	elemFLOPs := 2 * cout * hOut * wOut
	b.add(name+"_bn_gamma", model.KindBatchNorm, cout, elemFLOPs)
	b.add(name+"_bn_beta", model.KindBatchNorm, cout, elemFLOPs)
}

// fc emits a fully connected weight and bias.
func (b *builder) fc(name string, in, out int64) {
	b.add(name+"_weight", model.KindFC, in*out, 2*in*out)
	b.add(name+"_bias", model.KindBias, out, out)
}

// convBias emits a conv weight plus bias (VGG-style, no BN).
func (b *builder) convBias(name string, k, cin, cout, hwOut int64) {
	params := k * k * cin * cout
	flops := 2 * params * hwOut * hwOut
	b.add(name+"_weight", model.KindConv, params, flops)
	b.add(name+"_bias", model.KindBias, cout, cout*hwOut*hwOut)
}
