package zoo

import (
	"fmt"

	"p3/internal/model"
)

// ResNet50 builds the standard ResNet-50 (He et al. 2015) for 224x224
// ImageNet inputs: 7x7 stem, four stages of [3,4,6,3] bottleneck units,
// global pooling and a 1000-way classifier. 161 parameter tensors, 25.56M
// parameters — matching the spread-out, all-small-tensors distribution of
// the paper's Figure 5(a).
func ResNet50() *model.Model {
	b := &builder{}

	// Stem: 224 -> conv s2 -> 112 -> maxpool s2 -> 56.
	b.convBN("conv0", 7, 3, 64, 112)

	type stage struct {
		units int64
		mid   int64 // bottleneck width
		out   int64
		hw    int64 // spatial side after the stage's (possibly strided) first unit
	}
	stages := []stage{
		{units: 3, mid: 64, out: 256, hw: 56},
		{units: 4, mid: 128, out: 512, hw: 28},
		{units: 6, mid: 256, out: 1024, hw: 14},
		{units: 3, mid: 512, out: 2048, hw: 7},
	}

	in := int64(64)
	for si, s := range stages {
		for u := int64(0); u < s.units; u++ {
			prefix := fmt.Sprintf("stage%d_unit%d", si+1, u+1)
			// 1x1 reduce, 3x3, 1x1 expand; the 3x3 of the first unit of
			// stages 2-4 carries the stride (already reflected in s.hw).
			b.convBN(prefix+"_conv1", 1, in, s.mid, s.hw)
			b.convBN(prefix+"_conv2", 3, s.mid, s.mid, s.hw)
			b.convBN(prefix+"_conv3", 1, s.mid, s.out, s.hw)
			if u == 0 {
				// Projection shortcut on the first unit of every stage.
				b.convBN(prefix+"_sc", 1, in, s.out, s.hw)
			}
			in = s.out
		}
	}

	b.fc("fc", 2048, 1000)

	return &model.Model{
		Name:             "resnet50",
		Layers:           b.layers,
		BatchSize:        32,
		SampleUnit:       "images",
		PlateauPerWorker: 105,
		FwdFraction:      1.0 / 3.0,
	}
}
