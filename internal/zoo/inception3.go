package zoo

import (
	"p3/internal/model"
)

// InceptionV3 builds Inception-v3 (Szegedy et al. 2015) for 299x299 inputs:
// the five-conv stem, three InceptionA blocks at 35x35, a ReductionA, four
// InceptionB blocks with factorized 7x7 convolutions at 17x17, a ReductionB,
// two InceptionC blocks at 8x8 and the classifier. The auxiliary classifier
// is excluded (it is not part of the synchronized training graph the paper
// measures). ~23.8M parameters across ~290 small tensors: like ResNet-50, no
// single dominant layer, which is why the paper finds slicing alone does not
// help this model.
func InceptionV3() *model.Model {
	b := &builder{}

	// Stem: 299 -> 149 -> 147 -> 147 -> pool 73 -> 73 -> 71 -> pool 35.
	b.convBN("conv1a", 3, 3, 32, 149)
	b.convBN("conv2a", 3, 32, 32, 147)
	b.convBN("conv2b", 3, 32, 64, 147)
	b.convBN("conv3b", 1, 64, 80, 73)
	b.convBN("conv4a", 3, 80, 192, 71)

	// InceptionA at 35x35: in -> 64 + 64 + 96 + pool. Pool-projection width
	// is 32 for the first block and 64 afterwards.
	inceptionA := func(name string, cin, poolProj int64) int64 {
		const hw = 35
		b.convBN(name+"_1x1", 1, cin, 64, hw)
		b.convBN(name+"_5x5red", 1, cin, 48, hw)
		b.convBN(name+"_5x5", 5, 48, 64, hw)
		b.convBN(name+"_3x3red", 1, cin, 64, hw)
		b.convBN(name+"_3x3a", 3, 64, 96, hw)
		b.convBN(name+"_3x3b", 3, 96, 96, hw)
		b.convBN(name+"_pool", 1, cin, poolProj, hw)
		return 64 + 64 + 96 + poolProj
	}
	c := inceptionA("mixed5b", 192, 32) // 256
	c = inceptionA("mixed5c", c, 64)    // 288
	c = inceptionA("mixed5d", c, 64)    // 288

	// ReductionA: 35 -> 17.
	b.convBN("mixed6a_3x3", 3, c, 384, 17)
	b.convBN("mixed6a_dblred", 1, c, 64, 35)
	b.convBN("mixed6a_dbl3x3a", 3, 64, 96, 35)
	b.convBN("mixed6a_dbl3x3b", 3, 96, 96, 17)
	c = 384 + 96 + c // 768 (max-pool branch passes channels through)

	// InceptionB at 17x17 with factorized 7x7s; c7 is the bottleneck width.
	inceptionB := func(name string, c7 int64) {
		const hw = 17
		b.convBN(name+"_1x1", 1, 768, 192, hw)
		b.convBN(name+"_7x7red", 1, 768, c7, hw)
		b.convBN2(name+"_1x7a", 1, 7, c7, c7, hw, hw)
		b.convBN2(name+"_7x1a", 7, 1, c7, 192, hw, hw)
		b.convBN(name+"_dblred", 1, 768, c7, hw)
		b.convBN2(name+"_dbl7x1a", 7, 1, c7, c7, hw, hw)
		b.convBN2(name+"_dbl1x7a", 1, 7, c7, c7, hw, hw)
		b.convBN2(name+"_dbl7x1b", 7, 1, c7, c7, hw, hw)
		b.convBN2(name+"_dbl1x7b", 1, 7, c7, 192, hw, hw)
		b.convBN(name+"_pool", 1, 768, 192, hw)
	}
	inceptionB("mixed6b", 128)
	inceptionB("mixed6c", 160)
	inceptionB("mixed6d", 160)
	inceptionB("mixed6e", 192)

	// ReductionB: 17 -> 8.
	b.convBN("mixed7a_3x3red", 1, 768, 192, 17)
	b.convBN("mixed7a_3x3", 3, 192, 320, 8)
	b.convBN("mixed7a_7x7red", 1, 768, 192, 17)
	b.convBN2("mixed7a_1x7", 1, 7, 192, 192, 17, 17)
	b.convBN2("mixed7a_7x1", 7, 1, 192, 192, 17, 17)
	b.convBN("mixed7a_3x3b", 3, 192, 192, 8)
	cin := int64(320 + 192 + 768) // 1280 with the pooled pass-through

	// InceptionC at 8x8.
	inceptionC := func(name string, cin int64) {
		const hw = 8
		b.convBN(name+"_1x1", 1, cin, 320, hw)
		b.convBN(name+"_3x3red", 1, cin, 384, hw)
		b.convBN2(name+"_1x3", 1, 3, 384, 384, hw, hw)
		b.convBN2(name+"_3x1", 3, 1, 384, 384, hw, hw)
		b.convBN(name+"_dblred", 1, cin, 448, hw)
		b.convBN(name+"_dbl3x3", 3, 448, 384, hw)
		b.convBN2(name+"_dbl1x3", 1, 3, 384, 384, hw, hw)
		b.convBN2(name+"_dbl3x1", 3, 1, 384, 384, hw, hw)
		b.convBN(name+"_pool", 1, cin, 192, hw)
	}
	inceptionC("mixed7b", cin)
	inceptionC("mixed7c", 2048)

	b.fc("fc", 2048, 1000)

	m := &model.Model{
		Name:             "inception3",
		Layers:           b.layers,
		BatchSize:        32,
		SampleUnit:       "images",
		PlateauPerWorker: 71,
		FwdFraction:      1.0 / 3.0,
	}
	return m
}
