package zoo

import (
	"testing"

	"p3/internal/model"
)

func TestAllModelsValidate(t *testing.T) {
	for _, m := range All() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if err := ResNet110().Validate(); err != nil {
		t.Errorf("resnet110: %v", err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range append(Names, "resnet110") {
		if m := ByName(name); m.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, m.Name)
		}
	}
	if ByName("inceptionv3").Name != "inception3" {
		t.Error("inceptionv3 alias broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown model did not panic")
		}
	}()
	ByName("alexnet")
}

// TestResNet50Exact pins the well-known ImageNet parameter count.
func TestResNet50Exact(t *testing.T) {
	m := ResNet50()
	if got := m.TotalParams(); got != 25_557_032 {
		t.Fatalf("ResNet-50 params = %d, want 25557032", got)
	}
	if got := len(m.Layers); got != 161 {
		t.Fatalf("ResNet-50 tensors = %d, want 161", got)
	}
}

// TestVGG19Exact pins VGG-19's parameter count and the paper's 71.5% claim
// about fc6 (Section 3).
func TestVGG19Exact(t *testing.T) {
	m := VGG19()
	if got := m.TotalParams(); got != 143_667_240 {
		t.Fatalf("VGG-19 params = %d, want 143667240", got)
	}
	if got := len(m.Layers); got != 38 {
		t.Fatalf("VGG-19 tensors = %d, want 38", got)
	}
	var fc6 int64
	for _, l := range m.Layers {
		if l.Name == "fc6_weight" {
			fc6 = l.Params
		}
	}
	if fc6 != 25088*4096 {
		t.Fatalf("fc6 = %d params", fc6)
	}
	share := float64(fc6) / float64(m.TotalParams())
	if share < 0.710 || share > 0.720 {
		t.Fatalf("fc6 share = %.4f, paper says 0.715", share)
	}
}

func TestInceptionV3Approximate(t *testing.T) {
	m := InceptionV3()
	got := float64(m.TotalParams())
	// torchvision inception_v3 without aux: ~23.8M. Allow 3%.
	if got < 23.8e6*0.97 || got > 23.8e6*1.03 {
		t.Fatalf("InceptionV3 params = %.2fM, want ~23.8M", got/1e6)
	}
	// No single dominant tensor (the paper's reason slicing does not help).
	var max int64
	for _, l := range m.Layers {
		if l.Params > max {
			max = l.Params
		}
	}
	if float64(max) > 0.1*got {
		t.Fatalf("largest tensor %.2fM is over 10%% of the model", float64(max)/1e6)
	}
}

// TestSockeyeShape checks the property the paper leans on: the heaviest
// tensor is the *initial* source embedding.
func TestSockeyeShape(t *testing.T) {
	m := Sockeye()
	first := m.Layers[0]
	if first.Kind != model.KindEmbedding {
		t.Fatalf("first tensor is %v, want embedding", first.Kind)
	}
	for _, l := range m.Layers[1:] {
		if l.Params >= first.Params {
			t.Fatalf("tensor %q (%d params) >= initial embedding (%d)", l.Name, l.Params, first.Params)
		}
	}
	if m.ComputeJitter <= 0 {
		t.Fatal("Sockeye must model variable sequence-length jitter")
	}
}

func TestResNet110Shape(t *testing.T) {
	m := ResNet110()
	got := float64(m.TotalParams())
	// He et al. report ~1.7M for ResNet-110 on CIFAR.
	if got < 1.6e6 || got > 1.9e6 {
		t.Fatalf("ResNet-110 params = %.2fM, want ~1.7M", got/1e6)
	}
	if len(m.Layers) < 200 {
		t.Fatalf("ResNet-110 has %d tensors, expected hundreds of small ones", len(m.Layers))
	}
}

// TestResNet50Distribution checks Figure 5(a)'s property: all tensors are
// below 2.5M parameters, with the largest in the final stage.
func TestResNet50Distribution(t *testing.T) {
	m := ResNet50()
	var maxIdx int
	var max int64
	for _, l := range m.Layers {
		if l.Params > max {
			max = l.Params
			maxIdx = l.Index
		}
	}
	if max > 2_500_000 {
		t.Fatalf("largest ResNet-50 tensor = %d params; Figure 5(a) tops at ~2.4M", max)
	}
	if maxIdx < len(m.Layers)/2 {
		t.Fatalf("largest tensor at index %d; image models grow towards the end", maxIdx)
	}
}

func TestForwardOrderIndices(t *testing.T) {
	for _, m := range All() {
		for i, l := range m.Layers {
			if l.Index != i {
				t.Fatalf("%s: layer %d has index %d", m.Name, i, l.Index)
			}
		}
	}
}

func TestFLOPsPositiveForWeightTensors(t *testing.T) {
	for _, m := range All() {
		for _, l := range m.Layers {
			if (l.Kind == model.KindConv || l.Kind == model.KindFC || l.Kind == model.KindRNN) && l.FwdFLOPs <= 0 {
				t.Errorf("%s: weight tensor %q has no FLOPs", m.Name, l.Name)
			}
		}
	}
}
