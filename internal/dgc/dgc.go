// Package dgc implements Deep Gradient Compression (Lin et al., ICLR 2018),
// the compression baseline of the paper's Section 5.6: each worker keeps
// per-tensor momentum and accumulation buffers, and per step transmits only
// the top-k largest accumulated gradient values (k = (1-sparsity)·n),
// applying momentum correction and momentum factor masking locally.
//
// Unlike P3, DGC is lossy: unsent gradient mass stays in local accumulators
// and arrives late, which is what costs it the small accuracy gap the paper
// measures (0.4% average on ResNet-110/CIFAR-10).
package dgc

import (
	"fmt"
	"sort"
)

// Sparse is one tensor's compressed update: parallel index/value slices.
type Sparse struct {
	Idx []int
	Val []float64
}

// Compressor holds one worker's DGC state across all parameter tensors.
type Compressor struct {
	Sparsity float64 // fraction of values withheld per tensor, e.g. 0.999
	Momentum float64

	u [][]float64 // per-tensor momentum buffer
	v [][]float64 // per-tensor accumulation buffer
}

// NewCompressor creates DGC state for tensors of the given sizes.
func NewCompressor(sizes []int, sparsity, momentum float64) *Compressor {
	if sparsity <= 0 || sparsity >= 1 {
		panic(fmt.Sprintf("dgc: sparsity %f out of (0,1)", sparsity))
	}
	c := &Compressor{Sparsity: sparsity, Momentum: momentum}
	c.u = make([][]float64, len(sizes))
	c.v = make([][]float64, len(sizes))
	for i, n := range sizes {
		c.u[i] = make([]float64, n)
		c.v[i] = make([]float64, n)
	}
	return c
}

// K returns the number of values transmitted for a tensor of n elements:
// ceil((1-sparsity)*n), at least 1.
func (c *Compressor) K(n int) int {
	k := int(float64(n)*(1-c.Sparsity) + 0.999999)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Compress folds the dense gradient of tensor t into the local state and
// returns the top-k sparse update (momentum-corrected). The returned values
// are removed from the local accumulators (momentum factor masking).
func (c *Compressor) Compress(t int, grad []float64) Sparse {
	u, v := c.u[t], c.v[t]
	if len(grad) != len(u) {
		panic(fmt.Sprintf("dgc: tensor %d has %d elements, gradient %d", t, len(u), len(grad)))
	}
	for i, g := range grad {
		u[i] = c.Momentum*u[i] + g // momentum correction
		v[i] += u[i]               // local accumulation
	}
	k := c.K(len(v))
	idx := topK(v, k)
	out := Sparse{Idx: idx, Val: make([]float64, len(idx))}
	for j, i := range idx {
		out.Val[j] = v[i]
		v[i] = 0 // transmitted: clear accumulator...
		u[i] = 0 // ...and mask momentum
	}
	return out
}

// topK returns the indices of the k largest |v| values, in ascending index
// order (deterministic: ties keep the lower index).
func topK(v []float64, k int) []int {
	// Min-heap of size k over (|value|, index): O(n log k).
	type entry struct {
		mag float64
		idx int
	}
	heap := make([]entry, 0, k)
	less := func(a, b entry) bool { // true if a should sit nearer the heap top
		if a.mag != b.mag {
			return a.mag < b.mag
		}
		return a.idx > b.idx // larger index evicted first on ties
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(heap) && less(heap[l], heap[smallest]) {
				smallest = l
			}
			if r < len(heap) && less(heap[r], heap[smallest]) {
				smallest = r
			}
			if smallest == i {
				return
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				return
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	for i, x := range v {
		e := entry{mag: abs(x), idx: i}
		if len(heap) < k {
			heap = append(heap, e)
			up(len(heap) - 1)
			continue
		}
		if less(heap[0], e) {
			heap[0] = e
			down(0)
		}
	}
	sel := make([]int, len(heap))
	for i, e := range heap {
		sel[i] = e.idx
	}
	sort.Ints(sel)
	return sel
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Apply adds a sparse update into a dense accumulator.
func Apply(dst []float64, s Sparse) {
	for j, i := range s.Idx {
		dst[i] += s.Val[j]
	}
}
