package dgc

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestKComputation(t *testing.T) {
	c := NewCompressor([]int{1000}, 0.999, 0.9)
	if got := c.K(1000); got != 1 {
		t.Fatalf("K(1000)@0.999 = %d, want 1", got)
	}
	if got := c.K(10_000); got != 10 {
		t.Fatalf("K(10000)@0.999 = %d, want 10", got)
	}
	c2 := NewCompressor([]int{10}, 0.5, 0.9)
	if got := c2.K(10); got != 5 {
		t.Fatalf("K(10)@0.5 = %d, want 5", got)
	}
	if got := c2.K(1); got != 1 {
		t.Fatalf("K(1) = %d, want at least 1", got)
	}
}

func TestInvalidSparsityPanics(t *testing.T) {
	for _, s := range []float64{0, 1, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("sparsity %v accepted", s)
				}
			}()
			NewCompressor([]int{10}, s, 0.9)
		}()
	}
}

func TestCompressPicksLargest(t *testing.T) {
	c := NewCompressor([]int{5}, 0.6, 0) // k = 2, no momentum
	sp := c.Compress(0, []float64{0.1, -5, 0.3, 4, 0.2})
	if len(sp.Idx) != 2 {
		t.Fatalf("sent %d values, want 2", len(sp.Idx))
	}
	// Largest |values| are -5 (idx 1) and 4 (idx 3), in index order.
	if sp.Idx[0] != 1 || sp.Idx[1] != 3 {
		t.Fatalf("picked %v, want [1 3]", sp.Idx)
	}
	if sp.Val[0] != -5 || sp.Val[1] != 4 {
		t.Fatalf("values %v", sp.Val)
	}
}

// TestMassConservation: over any sequence of compress calls with momentum 0,
// (sum of all transmitted values) + (remaining accumulator) == (sum of all
// gradients fed in). DGC loses nothing permanently — it only delays.
func TestMassConservation(t *testing.T) {
	const n = 64
	c := NewCompressor([]int{n}, 0.9, 0)
	rng := rand.New(rand.NewPCG(5, 6))
	var fedIn, sent float64
	for step := 0; step < 50; step++ {
		g := make([]float64, n)
		for i := range g {
			g[i] = rng.NormFloat64()
			fedIn += g[i]
		}
		sp := c.Compress(0, g)
		for _, v := range sp.Val {
			sent += v
		}
	}
	var residual float64
	for _, v := range c.v[0] {
		residual += v
	}
	if math.Abs(fedIn-(sent+residual)) > 1e-9 {
		t.Fatalf("mass leak: fed %v, sent %v + residual %v", fedIn, sent, residual)
	}
}

// TestMomentumMasking: a transmitted coordinate's momentum resets, so an
// immediately following zero gradient transmits nothing new there.
func TestMomentumMasking(t *testing.T) {
	c := NewCompressor([]int{4}, 0.5, 0.9) // k = 2
	sp := c.Compress(0, []float64{10, 0, 0, 0})
	if len(sp.Idx) == 0 || sp.Idx[0] != 0 {
		t.Fatalf("first compress picked %v", sp.Idx)
	}
	if c.u[0][0] != 0 || c.v[0][0] != 0 {
		t.Fatal("momentum/accumulator not masked after transmission")
	}
}

// TestAccumulationEventuallySends: a small but persistent gradient must
// eventually be transmitted thanks to local accumulation.
func TestAccumulationEventuallySends(t *testing.T) {
	c := NewCompressor([]int{10}, 0.9, 0) // k = 1
	// Coordinate 9 has a small persistent signal; others get one-off noise.
	sentNine := false
	for step := 0; step < 100 && !sentNine; step++ {
		g := make([]float64, 10)
		g[step%9] = 0.5 // rotating noise
		g[9] = 0.2      // persistent small signal
		sp := c.Compress(0, g)
		for _, idx := range sp.Idx {
			if idx == 9 {
				sentNine = true
			}
		}
	}
	if !sentNine {
		t.Fatal("persistent small gradient never transmitted")
	}
}

func TestTopKMatchesSortReference(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				v = append(v, x)
			}
		}
		if len(v) == 0 {
			return true
		}
		k := 1 + int(kRaw)%len(v)
		got := topK(v, k)

		// Reference: stable sort by (|v| desc, idx asc).
		idx := make([]int, len(v))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			va, vb := math.Abs(v[idx[a]]), math.Abs(v[idx[b]])
			if va != vb {
				return va > vb
			}
			return idx[a] < idx[b]
		})
		want := append([]int(nil), idx[:k]...)
		sort.Ints(want)

		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestApply(t *testing.T) {
	dst := make([]float64, 5)
	Apply(dst, Sparse{Idx: []int{1, 4}, Val: []float64{2, -3}})
	Apply(dst, Sparse{Idx: []int{1}, Val: []float64{0.5}})
	want := []float64{0, 2.5, 0, 0, -3}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("Apply = %v, want %v", dst, want)
		}
	}
}

func TestCompressShapePanics(t *testing.T) {
	c := NewCompressor([]int{3}, 0.5, 0.9)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong gradient size accepted")
		}
	}()
	c.Compress(0, []float64{1, 2})
}

func BenchmarkCompress(b *testing.B) {
	const n = 100_000
	c := NewCompressor([]int{n}, 0.999, 0.9)
	rng := rand.New(rand.NewPCG(1, 1))
	g := make([]float64, n)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Compress(0, g)
	}
}
