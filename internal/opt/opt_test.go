package opt

import (
	"math"
	"testing"

	"p3/internal/nn"
)

func param(n int) *nn.Param {
	return &nn.Param{Name: "p", Data: make([]float64, n), Grad: make([]float64, n)}
}

func TestSGDPlain(t *testing.T) {
	p := param(2)
	p.Data[0], p.Data[1] = 1, 2
	p.Grad[0], p.Grad[1] = 0.5, -0.5
	o := NewSGD(0.1, 0, 0)
	o.Step([]*nn.Param{p})
	if math.Abs(p.Data[0]-0.95) > 1e-12 || math.Abs(p.Data[1]-2.05) > 1e-12 {
		t.Fatalf("plain SGD step = %v", p.Data)
	}
}

func TestSGDMomentumClosedForm(t *testing.T) {
	// With constant gradient g, velocity after k steps is
	// g * (1 - mu^k) / (1 - mu).
	p := param(1)
	p.Data[0] = 0
	const g, mu, lr = 1.0, 0.9, 0.1
	o := NewSGD(lr, mu, 0)
	v, x := 0.0, 0.0
	for k := 0; k < 10; k++ {
		p.Grad[0] = g
		o.Step([]*nn.Param{p})
		v = mu*v + g
		x -= lr * v
		if math.Abs(p.Data[0]-x) > 1e-12 {
			t.Fatalf("step %d: got %v, want %v", k, p.Data[0], x)
		}
	}
}

func TestWeightDecay(t *testing.T) {
	p := param(1)
	p.Data[0] = 10
	p.Grad[0] = 0
	o := NewSGD(0.1, 0, 0.01)
	o.Step([]*nn.Param{p})
	// g_eff = 0 + 0.01*10 = 0.1; x = 10 - 0.1*0.1 = 9.99.
	if math.Abs(p.Data[0]-9.99) > 1e-12 {
		t.Fatalf("weight decay step = %v", p.Data[0])
	}
}

func TestStepDenseMatchesStep(t *testing.T) {
	a, b := param(3), param(3)
	for i := 0; i < 3; i++ {
		a.Data[i], b.Data[i] = float64(i), float64(i)
	}
	grads := [][]float64{{0.1, 0.2, 0.3}}
	copy(a.Grad, grads[0])

	oa := NewSGD(0.05, 0.9, 1e-4)
	ob := NewSGD(0.05, 0.9, 1e-4)
	for step := 0; step < 5; step++ {
		oa.Step([]*nn.Param{a})
		ob.StepDense([]*nn.Param{b}, grads)
		copy(a.Grad, grads[0]) // Step reads p.Grad each time
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("step %d: Step %v != StepDense %v", step, a.Data, b.Data)
			}
		}
	}
}

func TestStepDensePanicsOnMismatch(t *testing.T) {
	o := NewSGD(0.1, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched grads accepted")
		}
	}()
	o.StepDense([]*nn.Param{param(2)}, [][]float64{{1}})
}

func TestNewSGDRejectsBadLR(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("lr=0 accepted")
		}
	}()
	NewSGD(0, 0.9, 0)
}

func TestStepSchedule(t *testing.T) {
	s := StepSchedule{Base: 1.0, Gamma: 0.1, Milestones: []int{10, 20}}
	cases := map[int]float64{0: 1.0, 9: 1.0, 10: 0.1, 19: 0.1, 20: 0.01, 100: 0.01}
	for epoch, want := range cases {
		if got := s.LR(epoch); math.Abs(got-want) > 1e-15 {
			t.Fatalf("LR(%d) = %v, want %v", epoch, got, want)
		}
	}
}

func TestConstSchedule(t *testing.T) {
	if ConstSchedule(0.3).LR(57) != 0.3 {
		t.Fatal("const schedule broken")
	}
}
