// Package opt implements the optimizers used by the convergence
// experiments: SGD with momentum and weight decay (the training rule of the
// paper's ResNet-110/CIFAR-10 study) and step learning-rate schedules.
package opt

import (
	"fmt"

	"p3/internal/nn"
)

// SGD is stochastic gradient descent with classical momentum:
//
//	v <- mu*v + g + wd*w ;  w <- w - lr*v
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	vel map[*nn.Param][]float64
}

// NewSGD creates the optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	if lr <= 0 {
		panic(fmt.Sprintf("opt: non-positive learning rate %f", lr))
	}
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, vel: make(map[*nn.Param][]float64)}
}

// Step applies one update to every parameter from its current gradient.
func (o *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		v, ok := o.vel[p]
		if !ok {
			v = make([]float64, len(p.Data))
			o.vel[p] = v
		}
		for i := range p.Data {
			g := p.Grad[i] + o.WeightDecay*p.Data[i]
			v[i] = o.Momentum*v[i] + g
			p.Data[i] -= o.LR * v[i]
		}
	}
}

// StepDense applies an update from an externally aggregated flat gradient
// (one slice per parameter tensor, aligned with params). Used by the
// data-parallel trainer, where the gradient arrives from the parameter
// server rather than from the local replica.
func (o *SGD) StepDense(params []*nn.Param, grads [][]float64) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("opt: %d params vs %d gradient tensors", len(params), len(grads)))
	}
	for pi, p := range params {
		g := grads[pi]
		if len(g) != len(p.Data) {
			panic(fmt.Sprintf("opt: param %q has %d elements, gradient %d", p.Name, len(p.Data), len(g)))
		}
		v, ok := o.vel[p]
		if !ok {
			v = make([]float64, len(p.Data))
			o.vel[p] = v
		}
		for i := range p.Data {
			gr := g[i] + o.WeightDecay*p.Data[i]
			v[i] = o.Momentum*v[i] + gr
			p.Data[i] -= o.LR * v[i]
		}
	}
}

// Schedule maps an epoch to a learning rate.
type Schedule interface {
	LR(epoch int) float64
}

// StepSchedule decays Base by Gamma at each milestone epoch (the standard
// CIFAR recipe).
type StepSchedule struct {
	Base       float64
	Gamma      float64
	Milestones []int
}

// LR implements Schedule.
func (s StepSchedule) LR(epoch int) float64 {
	lr := s.Base
	for _, m := range s.Milestones {
		if epoch >= m {
			lr *= s.Gamma
		}
	}
	return lr
}

// ConstSchedule is a fixed learning rate.
type ConstSchedule float64

// LR implements Schedule.
func (c ConstSchedule) LR(int) float64 { return float64(c) }
