package pstcp

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"p3/internal/sched"
	"p3/internal/transport"
)

// testCluster wires nServers and nWorkers over loopback TCP.
type testCluster struct {
	servers []*Server
	addrs   []string
	workers []*Worker
}

func startCluster(t *testing.T, nServers, nWorkers int, schedName string, upd Updater, handler func(worker int, f *transport.Frame)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for s := 0; s < nServers; s++ {
		srv := NewServer(ServerConfig{ID: s, Workers: nWorkers, Sched: schedName, Updater: upd})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tc.servers = append(tc.servers, srv)
		tc.addrs = append(tc.addrs, addr)
	}
	for w := 0; w < nWorkers; w++ {
		w := w
		wk, err := DialWorker(w, tc.addrs, schedName, func(f *transport.Frame) { handler(w, f) })
		if err != nil {
			t.Fatal(err)
		}
		tc.workers = append(tc.workers, wk)
	}
	t.Cleanup(tc.close)
	return tc
}

func (tc *testCluster) close() {
	for _, w := range tc.workers {
		w.Close()
	}
	for _, s := range tc.servers {
		s.Close()
	}
}

// TestAggregationAndBroadcast: every worker pushes a gradient for every key;
// each server must aggregate exactly once and broadcast the updated value to
// every worker.
func TestAggregationAndBroadcast(t *testing.T) {
	const nServers, nWorkers, nKeys = 2, 3, 8

	var mu sync.Mutex
	got := map[int]map[uint64][]float32{}
	var wg sync.WaitGroup
	wg.Add(nWorkers * nKeys)

	tc := startCluster(t, nServers, nWorkers, "p3", SGDUpdater(1.0),
		func(worker int, f *transport.Frame) {
			mu.Lock()
			if got[worker] == nil {
				got[worker] = map[uint64][]float32{}
			}
			if _, dup := got[worker][f.Key]; dup {
				t.Errorf("worker %d received key %d twice", worker, f.Key)
			}
			got[worker][f.Key] = append([]float32(nil), f.Values...)
			mu.Unlock()
			wg.Done()
		})

	// Initialize every key to zeros on its server, then push grads.
	for k := 0; k < nKeys; k++ {
		srv := k % nServers
		tc.workers[0].Init(srv, uint64(k), make([]float32, 4))
	}
	time.Sleep(50 * time.Millisecond) // let inits land before pushes
	for w, wk := range tc.workers {
		for k := 0; k < nKeys; k++ {
			grad := []float32{float32(w + 1), float32(k), 1, -1}
			wk.Push(k%nServers, uint64(k), 0, int32(k), grad)
		}
	}

	waitDone(t, &wg, 5*time.Second)

	// Expected: param = 0 - lr * sum(grads)/workers with lr=1:
	// elem0: -(1+2+3)/3 = -2; elem1: -k; elem2: -1; elem3: +1.
	mu.Lock()
	defer mu.Unlock()
	for w := 0; w < nWorkers; w++ {
		for k := 0; k < nKeys; k++ {
			v := got[w][uint64(k)]
			if v == nil {
				t.Fatalf("worker %d missing key %d", w, k)
			}
			want := []float32{-2, -float32(k), -1, 1}
			for i := range want {
				if v[i] != want[i] {
					t.Fatalf("worker %d key %d = %v, want %v", w, k, v, want)
				}
			}
		}
	}

	var pushes, updates int64
	for _, s := range tc.servers {
		p, u := s.Stats()
		pushes += p
		updates += u
	}
	if pushes != nWorkers*nKeys {
		t.Fatalf("servers processed %d pushes, want %d", pushes, nWorkers*nKeys)
	}
	if updates != nKeys {
		t.Fatalf("servers applied %d updates, want %d", updates, nKeys)
	}
}

func waitDone(t *testing.T, wg *sync.WaitGroup, timeout time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatal("timed out waiting for broadcasts")
	}
}

// TestMultipleIterations drives several aggregation rounds through one key
// and checks the value evolves exactly as synchronous SGD prescribes.
func TestMultipleIterations(t *testing.T) {
	const workers = 2
	results := make(chan []float32, 16)
	tc := startCluster(t, 1, workers, "p3", SGDUpdater(0.5),
		func(worker int, f *transport.Frame) {
			if worker == 0 {
				results <- append([]float32(nil), f.Values...)
			}
		})

	tc.workers[0].Init(0, 7, []float32{10})
	time.Sleep(20 * time.Millisecond)

	want := float32(10)
	for iter := int32(0); iter < 5; iter++ {
		for _, wk := range tc.workers {
			wk.Push(0, 7, iter, 0, []float32{2}) // sum=4, mean=2, -0.5*2 = -1
		}
		select {
		case v := <-results:
			want--
			if v[0] != want {
				t.Fatalf("iter %d: value %v, want %v", iter, v[0], want)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("iter %d: no broadcast", iter)
		}
	}
}

// TestPullReturnsCurrentValue exercises the explicit pull path (baseline
// flows).
func TestPullReturnsCurrentValue(t *testing.T) {
	results := make(chan []float32, 1)
	tc := startCluster(t, 1, 1, "fifo", SGDUpdater(1),
		func(worker int, f *transport.Frame) {
			results <- append([]float32(nil), f.Values...)
		})
	tc.workers[0].Init(0, 3, []float32{5, 6})
	time.Sleep(20 * time.Millisecond)
	tc.workers[0].Pull(0, 3, 0, 0)
	select {
	case v := <-results:
		if v[0] != 5 || v[1] != 6 {
			t.Fatalf("pull = %v", v)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("pull never answered")
	}
}

// TestPriorityOrderingUnderBacklog verifies the consumer thread drains the
// send queue most-urgent-first once a backlog forms.
func TestPriorityOrderingUnderBacklog(t *testing.T) {
	q := transport.NewSendQueue(sched.NewP3Priority())
	// Simulate the producer side: enqueue a burst out of order.
	for _, p := range []int32{9, 4, 7, 1, 8, 0, 3} {
		q.Push(&transport.Frame{Priority: p})
	}
	var got []int32
	for q.Len() > 0 {
		f, _ := q.Pop()
		got = append(got, f.Priority)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("backlog drained out of order: %v", got)
		}
	}
}

// TestManyKeysManyWorkers is a heavier soak: 4 workers, 2 servers, 64 keys,
// 3 iterations, ensuring no deadlocks, drops or duplicate broadcasts.
func TestManyKeysManyWorkers(t *testing.T) {
	const nServers, nWorkers, nKeys, iters = 2, 4, 64, 3

	var mu sync.Mutex
	recv := map[string]int{} // worker/key/iter -> count
	var wg sync.WaitGroup
	wg.Add(nWorkers * nKeys * iters)

	tc := startCluster(t, nServers, nWorkers, "p3", SGDUpdater(0.1),
		func(worker int, f *transport.Frame) {
			mu.Lock()
			recv[fmt.Sprintf("%d/%d/%d", worker, f.Key, f.Iter)]++
			mu.Unlock()
			wg.Done()
		})

	for k := 0; k < nKeys; k++ {
		tc.workers[0].Init(k%nServers, uint64(k), make([]float32, 16))
	}
	time.Sleep(50 * time.Millisecond)

	for iter := int32(0); iter < iters; iter++ {
		var send sync.WaitGroup
		for _, wk := range tc.workers {
			send.Add(1)
			go func(wk *Worker) {
				defer send.Done()
				for k := 0; k < nKeys; k++ {
					grad := make([]float32, 16)
					grad[0] = 1
					wk.Push(k%nServers, uint64(k), iter, int32(nKeys-k), grad)
				}
			}(wk)
		}
		send.Wait()
		// Workers in a real loop would wait for all keys before the next
		// iteration; emulate with a short settle so iterations do not mix
		// at the same aggregation slot.
		time.Sleep(100 * time.Millisecond)
	}

	waitDone(t, &wg, 10*time.Second)
	mu.Lock()
	defer mu.Unlock()
	for k, c := range recv {
		if c != 1 {
			t.Fatalf("broadcast %s delivered %d times", k, c)
		}
	}
}

func TestWorkerRejectsBadID(t *testing.T) {
	if _, err := DialWorker(300, nil, "fifo", nil); err == nil {
		t.Fatal("id 300 accepted")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := DialWorker(0, []string{"127.0.0.1:1"}, "fifo", nil); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestDoubleCloseIsSafe(t *testing.T) {
	tc := startCluster(t, 1, 1, "fifo", nil, func(int, *transport.Frame) {})
	tc.workers[0].Close()
	tc.workers[0].Close() // second close must be a no-op
}
