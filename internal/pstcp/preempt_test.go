package pstcp

import (
	"sync"
	"testing"
	"time"

	"p3/internal/transport"
)

// TestPreemptiveTransmissionEndToEnd runs the real TCP parameter server on
// loopback with a small write quantum, so every bulk gradient frame is
// written in segments with urgent small frames for other connections
// overtaking at segment boundaries — and asserts the protocol is
// byte-faithful anyway: all pushes aggregate, every worker receives every
// broadcast, and the broadcast values are exactly the aggregated update.
func TestPreemptiveTransmissionEndToEnd(t *testing.T) {
	const (
		nWorkers = 3
		iters    = 5
		bigKey   = uint64(0)
		bigLen   = 60_000 // ~240 KB frames: many segments at a 4 KiB quantum
		smallLen = 8
		nSmall   = 16
	)
	srv := NewServer(ServerConfig{
		ID:      0,
		Workers: nWorkers,
		Sched:   "p3",
		// Store the raw sum: every worker pushes the same value per key, so
		// the expected broadcast is exactly value*nWorkers in float32.
		Updater:      func(_ uint64, param, sum []float32, workers int) { copy(param, sum) },
		PreemptBytes: 4096,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, nWorkers)
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			type got struct {
				key  uint64
				iter int32
				vals []float32
			}
			recv := make(chan got, 64)
			worker, err := DialWorkerCfg(WorkerConfig{
				ID: id, Servers: []string{addr}, Sched: "p3",
				PreemptBytes: 4096,
				Handler: func(f *transport.Frame) {
					recv <- got{f.Key, f.Iter, f.Values}
				},
			})
			if err != nil {
				errs <- err
				return
			}
			defer worker.Close()
			if id == 0 {
				worker.Init(0, bigKey, make([]float32, bigLen))
				for k := 1; k <= nSmall; k++ {
					worker.Init(0, uint64(k), make([]float32, smallLen))
				}
				time.Sleep(100 * time.Millisecond)
			} else {
				time.Sleep(150 * time.Millisecond)
			}
			for it := int32(0); it < iters; it++ {
				// The bulk frame goes first at low urgency, the small
				// frames afterwards at high urgency — the send loop should
				// interleave them into the bulk frame's segments.
				big := make([]float32, bigLen)
				for i := range big {
					big[i] = float32(it + 1)
				}
				worker.Push(0, bigKey, it, 1000, big)
				for k := 1; k <= nSmall; k++ {
					small := make([]float32, smallLen)
					for i := range small {
						small[i] = float32(k)
					}
					worker.Push(0, uint64(k), it, int32(k), small)
				}
				need := map[uint64]bool{bigKey: true}
				for k := 1; k <= nSmall; k++ {
					need[uint64(k)] = true
				}
				deadline := time.After(20 * time.Second)
				for len(need) > 0 {
					select {
					case g := <-recv:
						if g.iter != it || !need[g.key] {
							continue // stale duplicate from a previous sync
						}
						delete(need, g.key)
						want := float32(0)
						if g.key == bigKey {
							want = float32(it+1) * nWorkers
							if len(g.vals) != bigLen {
								t.Errorf("worker %d: big frame carries %d values", id, len(g.vals))
							}
						} else {
							want = float32(g.key) * nWorkers
							if len(g.vals) != smallLen {
								t.Errorf("worker %d: small frame carries %d values", id, len(g.vals))
							}
						}
						for i, v := range g.vals {
							if v != want {
								t.Errorf("worker %d iter %d key %d: value[%d] = %v, want %v",
									id, it, g.key, i, v, want)
								break
							}
						}
					case <-deadline:
						t.Errorf("worker %d iter %d: timed out waiting for %d broadcasts", id, it, len(need))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	pushes, updates := srv.Stats()
	wantPushes := int64(nWorkers * iters * (nSmall + 1))
	if pushes != wantPushes || updates != int64(iters*(nSmall+1)) {
		t.Fatalf("server stats: %d pushes, %d updates; want %d, %d",
			pushes, updates, wantPushes, iters*(nSmall+1))
	}
}
