package pstcp

import (
	"testing"
	"time"

	"p3/internal/transport"
)

// TestWorkerReconnectAfterServerRestart kills the server mid-session and
// restarts it on the same address: the worker's reconnect loop must
// re-establish the connection (fresh Hello) and the training flow must
// complete on the new connection.
func TestWorkerReconnectAfterServerRestart(t *testing.T) {
	srv := NewServer(ServerConfig{ID: 0, Workers: 1, Sched: "p3", Updater: SGDUpdater(1)})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	recv := make(chan *transport.Frame, 16)
	wk, err := DialWorkerCfg(WorkerConfig{
		ID: 0, Servers: []string{addr}, Sched: "p3",
		Handler: func(f *transport.Frame) { recv <- f },
		Reconnect: ReconnectConfig{
			MaxAttempts: 100,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wk.Close()

	// Round 1 on the original connection.
	wk.Push(0, 1, 0, 0, []float32{2})
	select {
	case <-recv:
	case <-time.After(5 * time.Second):
		t.Fatal("no broadcast on the original connection")
	}

	// Kill the server, restart it on the same address. The worker's read
	// loop fails, enters the backoff loop, and redials once the listener is
	// back.
	srv.Close()
	srv2 := NewServer(ServerConfig{ID: 0, Workers: 1, Sched: "p3", Updater: SGDUpdater(1)})
	if _, err := srv2.Start(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()

	// Wait for the redial before pushing: a push racing the broken socket
	// can vanish into the kernel buffer without an error (TCP reports the
	// breakage only on a later write), and without an application-level ack
	// there is nothing to retry on. Once the fresh connection's Hello is in
	// (Reconnects ticks after the Hello flush), the ordered stream makes
	// delivery deterministic.
	waitFor(t, 5*time.Second, func() bool { return wk.Reconnects() >= 1 })
	deadline := time.After(10 * time.Second)
	wk.Push(0, 1, 1, 0, []float32{3})
	for {
		select {
		case f := <-recv:
			if f.Iter == 1 {
				if wk.Reconnects() < 1 {
					t.Fatalf("flow completed but Reconnects() = %d, want >= 1", wk.Reconnects())
				}
				return
			}
		case <-deadline:
			t.Fatalf("no broadcast after server restart (reconnects=%d, queued=%d)",
				wk.Reconnects(), wk.QueuedSends())
		}
	}
}

// TestHeartbeatsKeepIdleConnectionAlive: with aggressive read deadlines on
// both sides and matching heartbeats, an idle connection must survive far
// past the deadline — and still carry traffic afterwards.
func TestHeartbeatsKeepIdleConnectionAlive(t *testing.T) {
	srv := NewServer(ServerConfig{
		ID: 0, Workers: 1, Sched: "fifo", Updater: SGDUpdater(1),
		ReadTimeout:    120 * time.Millisecond,
		HeartbeatEvery: 30 * time.Millisecond,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	recv := make(chan *transport.Frame, 4)
	wk, err := DialWorkerCfg(WorkerConfig{
		ID: 0, Servers: []string{addr}, Sched: "fifo",
		Handler:        func(f *transport.Frame) { recv <- f },
		ReadTimeout:    120 * time.Millisecond,
		HeartbeatEvery: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wk.Close()

	// Idle for several read-deadline periods: heartbeats must keep both
	// directions alive the whole time.
	time.Sleep(500 * time.Millisecond)
	if wk.Reconnects() != 0 {
		t.Fatalf("idle heartbeat-kept connection reconnected %d times", wk.Reconnects())
	}

	wk.Push(0, 9, 0, 0, []float32{1})
	select {
	case <-recv:
	case <-time.After(5 * time.Second):
		t.Fatal("connection did not survive the idle period")
	}
}

// TestServerReadDeadlineDropsSilentWorker: a worker that sends neither
// traffic nor heartbeats must be deregistered by the server's read deadline;
// a reconnect-enabled worker then recovers via a fresh Hello.
func TestServerReadDeadlineDropsSilentWorker(t *testing.T) {
	srv := NewServer(ServerConfig{
		ID: 0, Workers: 1, Sched: "fifo", Updater: SGDUpdater(1),
		ReadTimeout: 80 * time.Millisecond,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	recv := make(chan *transport.Frame, 4)
	wk, err := DialWorkerCfg(WorkerConfig{
		ID: 0, Servers: []string{addr}, Sched: "fifo",
		Handler: func(f *transport.Frame) { recv <- f },
		Reconnect: ReconnectConfig{
			MaxAttempts: 100,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wk.Close()

	// Stay silent well past the server's read deadline: the server closes
	// the connection, the worker notices and redials.
	waitFor(t, 5*time.Second, func() bool { return wk.Reconnects() >= 1 })

	// The reconnected link must carry a full round.
	deadline := time.After(10 * time.Second)
	wk.Push(0, 2, 0, 0, []float32{1})
	for {
		select {
		case f := <-recv:
			if f.Key == 2 {
				return
			}
		case <-deadline:
			t.Fatalf("no broadcast after deadline-driven reconnect (reconnects=%d)", wk.Reconnects())
		}
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition never reached")
}

// TestDuplicatePushDedup drives the server's aggregation directly: a push
// retried through the reconnect path (same sender, same iteration) must not
// double-count, and the update must fire exactly once when the second
// worker's push lands.
func TestDuplicatePushDedup(t *testing.T) {
	srv := NewServer(ServerConfig{ID: 0, Workers: 2, Sched: "fifo", Updater: SGDUpdater(1)})
	push := func(sender uint8, v float32) {
		srv.handlePush(&transport.Frame{
			Type: transport.TypePush, Sender: sender, Key: 5, Iter: 0, Values: []float32{v},
		})
	}
	push(0, 4) // original
	push(0, 4) // retry duplicate: must be ignored
	if p, u := srv.Stats(); p != 1 || u != 0 {
		t.Fatalf("after duplicate: pushes=%d updates=%d, want 1/0", p, u)
	}
	push(1, 2)
	if p, u := srv.Stats(); p != 2 || u != 1 {
		t.Fatalf("after both workers: pushes=%d updates=%d, want 2/1", p, u)
	}
	// param = 0 - 1 * (4+2)/2 = -3; a double-counted duplicate would give
	// (4+4+2)/2 = -5 instead.
	if got := srv.params[5][0]; got != -3 {
		t.Fatalf("param = %v, want -3 (duplicate leaked into the sum)", got)
	}
	// Next iteration resets the seen set: the same sender counts again.
	srv.handlePush(&transport.Frame{
		Type: transport.TypePush, Sender: 0, Key: 5, Iter: 1, Values: []float32{1},
	})
	if p, _ := srv.Stats(); p != 3 {
		t.Fatalf("new iteration push ignored: pushes=%d, want 3", p)
	}
}
