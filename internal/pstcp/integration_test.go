package pstcp

import (
	"net"
	"sync"
	"testing"
	"time"

	"p3/internal/core"
	"p3/internal/data"
	"p3/internal/nn"
	"p3/internal/train"
	"p3/internal/transport"
)

// TestDistributedTrainingEndToEnd trains a real network through the real
// TCP parameter server on loopback: N worker goroutines slice gradients,
// push them priority-ordered, wait for the immediate broadcasts, and
// install. Asserts (a) the loss falls, (b) all replicas end bit-identical —
// i.e., the wire protocol implements synchronous SGD faithfully.
func TestDistributedTrainingEndToEnd(t *testing.T) {
	const (
		nServers = 2
		nWorkers = 3
		iters    = 40
		batch    = 8
		lr       = 0.02
	)
	set := data.Generate(data.Config{Samples: 300, Features: 16, Classes: 3, Noise: 1.0, Seed: 4})
	netCfg := nn.Config{In: 16, Width: 16, Classes: 3, Blocks: 1, Seed: 6}
	probe := nn.NewResidualMLP(netCfg)
	plan := train.PlanFor(probe, 100, nServers)

	var servers []*Server
	var addrs []string
	for s := 0; s < nServers; s++ {
		srv := NewServer(ServerConfig{ID: s, Workers: nWorkers, Sched: "p3", Updater: SGDUpdater(lr)})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, addr)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	sliceOf := func(tensor []float64, c core.Chunk) []float32 {
		out := make([]float32, c.Params)
		for i := range out {
			out[i] = float32(tensor[c.Offset+int64(i)])
		}
		return out
	}

	losses := make([][]float64, nWorkers)
	finals := make([]*nn.Network, nWorkers)
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			netw := nn.NewResidualMLP(netCfg)
			params := netw.Params()
			shard := set.Shard(id, nWorkers)
			recv := make(chan *transport.Frame, plan.NumChunks()+4)
			worker, err := DialWorker(id, addrs, "p3", func(f *transport.Frame) { recv <- f })
			if err != nil {
				t.Error(err)
				return
			}
			defer worker.Close()
			if id == 0 {
				for _, c := range plan.Chunks {
					worker.Init(c.Server, uint64(c.ID), sliceOf(params[c.Layer].Data, c))
				}
			}
			for it := 0; it < iters; it++ {
				idx := make([]int, batch)
				for i := range idx {
					idx[i] = (it*batch + i) % shard.N()
				}
				x, y := shard.Batch(idx)
				loss := netw.LossAndBackward(netw.Forward(x), y)
				losses[id] = append(losses[id], loss)
				for _, c := range plan.Chunks {
					worker.Push(c.Server, uint64(c.ID), int32(it), int32(c.Priority),
						sliceOf(params[c.Layer].Grad, c))
				}
				for n := 0; n < plan.NumChunks(); n++ {
					select {
					case f := <-recv:
						c := plan.Chunks[f.Key]
						dst := params[c.Layer].Data[c.Offset : c.Offset+c.Params]
						for i, v := range f.Values {
							dst[i] = float64(v)
						}
					case <-time.After(10 * time.Second):
						t.Errorf("worker %d: timed out at iter %d", id, it)
						return
					}
				}
			}
			finals[id] = netw
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Compare the mean loss of the first and last quarters: single-batch
	// losses are noisy, the trend must not be.
	for w := 0; w < nWorkers; w++ {
		q := len(losses[w]) / 4
		var head, tail float64
		for i := 0; i < q; i++ {
			head += losses[w][i] / float64(q)
			tail += losses[w][len(losses[w])-1-i] / float64(q)
		}
		if tail >= head {
			t.Errorf("worker %d: loss did not fall (%.4f -> %.4f)", w, head, tail)
		}
	}
	ref := finals[0].Params()
	for w := 1; w < nWorkers; w++ {
		ps := finals[w].Params()
		for i := range ref {
			for j := range ref[i].Data {
				if ref[i].Data[j] != ps[i].Data[j] {
					t.Fatalf("replica %d diverged at tensor %d elem %d", w, i, j)
				}
			}
		}
	}
}

// TestWorkerDisconnectDoesNotWedgeServer: when a worker vanishes mid-round,
// remaining aggregation state simply never completes (synchronous SGD
// semantics), but the server must stay responsive and shut down cleanly.
func TestWorkerDisconnectDoesNotWedgeServer(t *testing.T) {
	srv := NewServer(ServerConfig{ID: 0, Workers: 2, Sched: "p3", Updater: SGDUpdater(1)})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	got := make(chan *transport.Frame, 4)
	w0, err := DialWorker(0, []string{addr}, "p3", func(f *transport.Frame) { got <- f })
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w1, err := DialWorker(1, []string{addr}, "p3", nil)
	if err != nil {
		t.Fatal(err)
	}

	w0.Init(0, 1, []float32{0})
	time.Sleep(20 * time.Millisecond)
	// w1 pushes once, then dies before w0 pushes.
	w1.Push(0, 1, 0, 0, []float32{1})
	time.Sleep(20 * time.Millisecond)
	w1.Close()
	time.Sleep(20 * time.Millisecond)

	// w0's push completes the round (count reached 2): the server must
	// still aggregate and broadcast to the remaining worker.
	w0.Push(0, 1, 0, 0, []float32{1})
	select {
	case f := <-got:
		if f.Values[0] != -1 { // 0 - 1.0*mean(1,1)
			t.Fatalf("value %v after partial-cluster update", f.Values[0])
		}
	case <-time.After(3 * time.Second):
		t.Fatal("server wedged after worker disconnect")
	}
}

// TestMalformedFrameClosesConnOnly: garbage on one connection must not
// crash the server or disturb other workers.
func TestMalformedFrameClosesConnOnly(t *testing.T) {
	srv := NewServer(ServerConfig{ID: 0, Workers: 1, Sched: "fifo", Updater: SGDUpdater(1)})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Raw connection spewing garbage.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	raw.Close()
	time.Sleep(20 * time.Millisecond)

	// A well-behaved worker still gets service.
	got := make(chan *transport.Frame, 1)
	w, err := DialWorker(0, []string{addr}, "fifo", func(f *transport.Frame) { got <- f })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Init(0, 9, []float32{5})
	time.Sleep(20 * time.Millisecond)
	w.Pull(0, 9, 0, 0)
	select {
	case f := <-got:
		if f.Values[0] != 5 {
			t.Fatalf("pull after garbage conn = %v", f.Values)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("server unresponsive after malformed frame")
	}
}

// TestPushBeforeInitZeroInitializes: the server adopts the first push's
// shape with zero parameters rather than crashing.
func TestPushBeforeInitZeroInitializes(t *testing.T) {
	srv := NewServer(ServerConfig{ID: 0, Workers: 1, Sched: "fifo", Updater: SGDUpdater(1)})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got := make(chan *transport.Frame, 1)
	w, err := DialWorker(0, []string{addr}, "fifo", func(f *transport.Frame) { got <- f })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Push(0, 5, 0, 0, []float32{2, 4})
	select {
	case f := <-got:
		if f.Values[0] != -2 || f.Values[1] != -4 {
			t.Fatalf("update from zero init = %v", f.Values)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no broadcast for uninitialized key")
	}
}
