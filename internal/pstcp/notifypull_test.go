package pstcp

import (
	"sync"
	"testing"
	"time"

	"p3/internal/transport"
)

// TestNotifyPullProtocol exercises the stock-KVStore wire behaviour on real
// sockets: the server answers completed aggregations with payload-free
// notifications, and data moves only on explicit pulls — the extra round
// trip P3 removes.
func TestNotifyPullProtocol(t *testing.T) {
	srv := NewServer(ServerConfig{ID: 0, Workers: 1, NotifyPull: true, Updater: SGDUpdater(1)})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	notifies := make(chan *transport.Frame, 4)
	datas := make(chan *transport.Frame, 4)
	w, err := DialWorker(0, []string{addr}, "fifo", func(f *transport.Frame) {
		if f.Type == transport.TypeNotify {
			notifies <- f
		} else {
			datas <- f
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	w.Init(0, 1, []float32{10})
	time.Sleep(20 * time.Millisecond)
	w.Push(0, 1, 0, 0, []float32{2})

	// First a notification with no payload...
	select {
	case f := <-notifies:
		if len(f.Values) != 0 {
			t.Fatalf("notify carried %d values", len(f.Values))
		}
		if f.Key != 1 {
			t.Fatalf("notify for key %d", f.Key)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no notification")
	}
	select {
	case <-datas:
		t.Fatal("data arrived without a pull")
	case <-time.After(50 * time.Millisecond):
	}

	// ...then data only after the explicit pull (MXNet semantics).
	w.Pull(0, 1, 0, 0)
	select {
	case f := <-datas:
		if f.Values[0] != 8 { // 10 - 1*2
			t.Fatalf("pulled value %v, want 8", f.Values[0])
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no data after pull")
	}
}

// TestPriorityReducesUrgentLatency measures, on real sockets, the paper's
// core effect: with a large low-priority backlog queued ahead of it, an
// urgent slice completes its round trip dramatically sooner under priority
// scheduling than under FIFO. This is Figure 4 on a real network stack.
func TestPriorityReducesUrgentLatency(t *testing.T) {
	const (
		bulkFrames = 64
		bulkSize   = 64 * 1024 // floats per bulk frame (256 KB)
	)
	measure := func(schedName string) time.Duration {
		srv := NewServer(ServerConfig{ID: 0, Workers: 1, Sched: schedName, Updater: SGDUpdater(1)})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()

		var mu sync.Mutex
		urgentDone := make(chan time.Time, 1)
		w, err := DialWorker(0, []string{addr}, schedName, func(f *transport.Frame) {
			if f.Key == 9999 {
				mu.Lock()
				select {
				case urgentDone <- time.Now():
				default:
				}
				mu.Unlock()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()

		bulk := make([]float32, bulkSize)
		// Enqueue the low-priority backlog first (priority 1000)...
		for k := 0; k < bulkFrames; k++ {
			w.Push(0, uint64(k), 0, 1000, bulk)
		}
		// ...then the single urgent slice (priority 0).
		start := time.Now()
		w.Push(0, 9999, 0, 0, []float32{1})
		select {
		case at := <-urgentDone:
			return at.Sub(start)
		case <-time.After(30 * time.Second):
			t.Fatal("urgent slice never completed")
			return 0
		}
	}

	fifo := measure("fifo")
	prio := measure("p3")
	t.Logf("urgent round trip: fifo=%v priority=%v", fifo, prio)
	// Under FIFO the urgent frame waits behind ~16 MB of queued bulk; with
	// priority it overtakes everything except the frame already in flight.
	if prio*2 >= fifo {
		t.Fatalf("priority latency %v not clearly below FIFO %v", prio, fifo)
	}
}
