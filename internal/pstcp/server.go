// Package pstcp is the real-network implementation of the paper's parameter
// server: P3Server and P3Worker over TCP (Section 4.2). It mirrors the
// modified-KVStore design exactly:
//
//   - the worker slices gradients (via core.PartitionSlices), a producer
//     pushes slices into a scheduled send queue, and a single consumer
//     goroutine performs blocking sends of the most urgent slice;
//   - the server pushes received frames into a scheduled receive queue
//     drained by a single processor goroutine, aggregates per key, applies
//     the update on the Nth push, and immediately broadcasts the new values
//     to all workers (the explicit notify+pull of stock KVStore is removed);
//   - the queue discipline is a sched registry name ("p3" reproduces the
//     paper, "fifo" the baseline, "credit" a ByteScheduler-style window;
//     see internal/sched for the full set).
//
// The simulator reproduces the paper's timing results; this package
// demonstrates the same protocol logic end-to-end on a real network stack
// and is exercised by loopback integration tests and examples.
package pstcp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"p3/internal/sched"
	"p3/internal/transport"
)

// Updater folds an aggregated gradient into a stored parameter tensor.
// sum holds the un-normalized sum over workers' pushes.
type Updater func(key uint64, param, sum []float32, workers int)

// SGDUpdater returns the standard update rule: param -= lr * mean(grad).
func SGDUpdater(lr float32) Updater {
	return func(_ uint64, param, sum []float32, workers int) {
		scale := lr / float32(workers)
		for i := range param {
			param[i] -= scale * sum[i]
		}
	}
}

// ServerConfig configures a Server.
type ServerConfig struct {
	ID      int
	Workers int // number of workers that must push before an update
	// Sched names the queue discipline (sched registry) applied to the
	// receive and send queues: "p3" for the paper's priority mechanism,
	// "fifo" (or empty) for the baseline, "credit[:bytes]" for a
	// ByteScheduler-style window, "tictac" / "credit-adaptive[:bytes]" for
	// the model-aware disciplines, etc.
	Sched string
	// Profile optionally supplies model timing to profile-aware disciplines
	// (tictac); without it tictac degrades to p3 ordering.
	Profile *sched.Profile
	// NotifyPull selects stock KVStore semantics (Section 4.1): on update
	// completion the server sends a payload-free Notify to every worker and
	// returns data only on explicit Pull. False selects P3's immediate
	// broadcast (Section 4.2).
	NotifyPull bool
	// PreemptBytes > 0 enables preemptive transmission on the send side:
	// frames larger than this many wire bytes are written in bounded
	// segments, and strictly more urgent frames bound for other workers
	// overtake at segment boundaries (see transport.SendLoop). 0 writes
	// whole frames — preemption only at frame granularity, as in the paper.
	PreemptBytes int
	Updater      Updater

	// ReadTimeout > 0 arms a read deadline on every worker connection,
	// refreshed per frame: a worker silent for longer (no pushes, no
	// heartbeats) is presumed dead, its connection is closed and its writer
	// deregistered so broadcasts stop queueing for it. 0 reads forever.
	ReadTimeout time.Duration
	// WriteTimeout > 0 bounds every blocking socket write to a worker; a
	// stalled peer fails the write instead of wedging the send loop. 0
	// writes forever.
	WriteTimeout time.Duration
	// HeartbeatEvery > 0 sends a payload-free heartbeat frame to every
	// registered worker at this period, keeping idle-but-healthy
	// connections inside the workers' read deadlines. 0 sends none.
	HeartbeatEvery time.Duration
}

type aggState struct {
	iter  int32
	count int
	sum   []float32
	// seen is a bitmask of the workers already counted this iteration, so a
	// push retried through the reconnect path (which cannot know whether the
	// original reached the wire before the connection died) never
	// double-counts.
	seen [4]uint64
}

func (a *aggState) markSeen(w uint8) bool {
	mask := uint64(1) << (w % 64)
	if a.seen[w/64]&mask != 0 {
		return false
	}
	a.seen[w/64] |= mask
	return true
}

// Server is one parameter server process.
type Server struct {
	cfg   ServerConfig
	ln    net.Listener
	recvQ *transport.SendQueue
	sendQ *transport.SendQueue

	mu      sync.Mutex
	writers map[uint8]*connWriter
	params  map[uint64][]float32
	agg     map[uint64]*aggState

	wg     sync.WaitGroup
	connWG sync.WaitGroup
	done   chan struct{}

	// Stats
	statsMu sync.Mutex
	pushes  int64
	updates int64
}

type connWriter struct {
	conn net.Conn
	w    transport.FlushWriter
}

// NewServer creates a server. A nil Updater defaults to SGD with lr 0.1.
// It panics on an unknown Sched name (validate with sched.ByName first if
// the name comes from user input).
func NewServer(cfg ServerConfig) *Server {
	if cfg.Workers <= 0 {
		panic(fmt.Sprintf("pstcp: server needs workers > 0, got %d", cfg.Workers))
	}
	if cfg.Updater == nil {
		cfg.Updater = SGDUpdater(0.1)
	}
	newQ := func() *transport.SendQueue {
		// The server's id seeds source-aware disciplines (damped), so a
		// fleet of servers does not resolve equal-rank ties identically.
		disc := sched.ApplyProfile(sched.MustByName(cfg.Sched), cfg.Profile)
		sched.ApplySource(disc, int32(cfg.ID))
		return transport.NewSendQueue(disc)
	}
	return &Server{
		cfg:     cfg,
		recvQ:   newQ(),
		sendQ:   newQ(),
		writers: make(map[uint8]*connWriter),
		params:  make(map[uint64][]float32),
		agg:     make(map[uint64]*aggState),
		done:    make(chan struct{}),
	}
}

// Start listens on addr (use "127.0.0.1:0" for tests) and returns the bound
// address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("pstcp: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(3)
	go s.acceptLoop()
	go s.processLoop()
	go s.sendLoop()
	if s.cfg.HeartbeatEvery > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	return ln.Addr().String(), nil
}

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() {
	close(s.done)
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for _, cw := range s.writers {
		cw.conn.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait() // readers drain before the process queue closes
	s.recvQ.Close()
	s.sendQ.Close()
	s.wg.Wait()
}

// SetProfile swaps the timing profile of the server's receive and send
// queues at runtime — the calibrated mode's feedback hook: run a pass on
// the static profile, measure the real per-layer stalls, rebuild the
// profile (strategy.CalibrateProfile) and apply it here without restarting
// the server. Queued frames re-order under the new profile; a no-op for
// profile-blind disciplines.
func (s *Server) SetProfile(p *sched.Profile) {
	s.recvQ.SetProfile(p)
	s.sendQ.SetProfile(p)
}

// Stats returns (pushes processed, updates applied).
func (s *Server) Stats() (pushes, updates int64) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.pushes, s.updates
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connWG.Add(1)
		go s.readLoop(conn)
	}
}

// readLoop is the per-connection producer: every received frame goes into
// the receive priority queue for the single processor goroutine. Any read
// error — a closed peer, a corrupt frame, or a worker silent past the read
// deadline — closes the connection and deregisters its writer, so the send
// side stops queueing broadcasts for a dead worker. Heartbeats refresh the
// deadline (every read does) and are otherwise dropped here, never
// reaching the receive queue.
func (s *Server) readLoop(conn net.Conn) {
	defer s.connWG.Done()
	var sender uint8
	registered := false
	r := transport.NewFrameReader(deadlineConn{conn: conn, readTimeout: s.cfg.ReadTimeout})
	for {
		f, err := transport.ReadFrame(r)
		if err != nil {
			break // connection closed, corrupt, or silent past the deadline
		}
		switch f.Type {
		case transport.TypeHello:
			sender, registered = f.Sender, true
			s.mu.Lock()
			s.writers[f.Sender] = &connWriter{
				conn: conn,
				w:    transport.NewFrameWriter(deadlineConn{conn: conn, writeTimeout: s.cfg.WriteTimeout}),
			}
			s.mu.Unlock()
		case transport.TypeHeartbeat:
			// Keep-alive only; arrival already refreshed the read deadline.
		default:
			s.recvQ.Push(f)
		}
	}
	conn.Close()
	if registered {
		s.mu.Lock()
		// Deregister only our own registration: the worker may already have
		// reconnected on a fresh connection that must keep its writer.
		if cw := s.writers[sender]; cw != nil && cw.conn == conn {
			delete(s.writers, sender)
		}
		s.mu.Unlock()
	}
}

// heartbeatLoop keeps idle-but-healthy worker connections inside the
// workers' read deadlines: a payload-free maximally-urgent frame per
// registered worker, every HeartbeatEvery.
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	//p3:wallclock-ok liveness heartbeats pace the real transport
	t := time.NewTicker(s.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
		}
		s.mu.Lock()
		ids := make([]uint8, 0, len(s.writers))
		for id := range s.writers {
			ids = append(ids, id)
		}
		s.mu.Unlock()
		for _, id := range ids {
			s.sendQ.Push(&transport.Frame{
				Type: transport.TypeHeartbeat, Sender: uint8(s.cfg.ID), Dst: id,
				Priority: heartbeatPriority,
			})
		}
	}
}

// processLoop is the consumer of the receive queue: the P3Server's
// aggregation thread.
func (s *Server) processLoop() {
	defer s.wg.Done()
	for {
		f, ok := s.recvQ.Pop()
		if !ok {
			return
		}
		switch f.Type {
		case transport.TypeInit:
			s.handleInit(f)
		case transport.TypePush:
			s.handlePush(f)
		case transport.TypePull:
			s.handlePull(f)
		}
		s.recvQ.Done(f)
	}
}

func (s *Server) handleInit(f *transport.Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.params[f.Key]; !ok { // first init wins; replicas agree anyway
		s.params[f.Key] = append([]float32(nil), f.Values...)
	}
}

func (s *Server) handlePush(f *transport.Frame) {
	s.mu.Lock()
	param, ok := s.params[f.Key]
	if !ok {
		// Push before init: treat the first push's shape as authoritative
		// with zero-initialized parameters.
		param = make([]float32, len(f.Values))
		s.params[f.Key] = param
	}
	a := s.agg[f.Key]
	if a == nil {
		a = &aggState{iter: f.Iter, sum: make([]float32, len(param))}
		s.agg[f.Key] = a
	}
	if a.iter != f.Iter {
		a.iter = f.Iter
		a.count = 0
		for i := range a.sum {
			a.sum[i] = 0
		}
		a.seen = [4]uint64{}
	}
	if len(f.Values) != len(a.sum) {
		s.mu.Unlock()
		return // shape mismatch: drop (tests never hit this)
	}
	if !a.markSeen(f.Sender) {
		// A retry duplicate: the worker's reconnect path re-sent a push whose
		// original already arrived before the connection died.
		s.mu.Unlock()
		return
	}
	for i, v := range f.Values {
		a.sum[i] += v
	}
	a.count++
	complete := a.count == s.cfg.Workers
	var snapshot []float32
	var dsts []uint8
	if complete {
		s.cfg.Updater(f.Key, param, a.sum, s.cfg.Workers)
		// Copy under the lock: the stored tensor mutates on later updates
		// while the send loop is still serializing this broadcast.
		snapshot = append([]float32(nil), param...)
		for id := range s.writers {
			dsts = append(dsts, id)
		}
	}
	s.mu.Unlock()

	s.statsMu.Lock()
	s.pushes++
	if complete {
		s.updates++
	}
	s.statsMu.Unlock()

	if complete {
		typ := transport.TypeData
		var payload []float32 = snapshot
		if s.cfg.NotifyPull {
			// Stock KVStore: notify now, serve the data on explicit Pull.
			typ = transport.TypeNotify
			payload = nil
		}
		// With immediate broadcast (P3, Section 4.2) the data goes out
		// right away — no notify/pull round trip.
		for _, id := range dsts {
			s.sendQ.Push(&transport.Frame{
				Type: typ, Sender: uint8(s.cfg.ID), Dst: id,
				Priority: f.Priority, Key: f.Key, Iter: f.Iter, Values: payload,
			})
		}
	}
}

func (s *Server) handlePull(f *transport.Frame) {
	s.mu.Lock()
	var param []float32
	if stored := s.params[f.Key]; stored != nil {
		param = append([]float32(nil), stored...)
	}
	s.mu.Unlock()
	if param == nil {
		return
	}
	s.sendQ.Push(&transport.Frame{
		Type: transport.TypeData, Sender: uint8(s.cfg.ID), Dst: f.Sender,
		Priority: f.Priority, Key: f.Key, Iter: f.Iter, Values: param,
	})
}

// sendLoop is the consumer of the send queue: transport.SendLoop writes one
// admitted frame (or, with PreemptBytes, frame segment) at a time, most
// urgent first, flow-aware across the per-worker connections. Credit is
// returned at flush, so a credit-gated discipline bounds the
// buffered-but-unflushed backlog.
func (s *Server) sendLoop() {
	defer s.wg.Done()
	transport.SendLoop(s.sendQ, func(f *transport.Frame) transport.FlushWriter {
		s.mu.Lock()
		cw := s.writers[f.Dst]
		s.mu.Unlock()
		if cw == nil {
			return nil
		}
		return cw.w
	}, s.cfg.PreemptBytes)
}

// heartbeatPriority ranks keep-alives ahead of all real traffic without
// sitting at the int32 extreme (rank arithmetic inside disciplines stays
// overflow-free).
const heartbeatPriority = -(1 << 20)

// ErrClosed is returned by operations on a closed worker.
var ErrClosed = errors.New("pstcp: closed")
