package pstcp

import (
	"net"
	"time"
)

// deadlineConn wraps a connection so every read and write first arms its
// deadline — the hardening layer both endpoints build their buffered
// readers and writers on. A peer silent past the read timeout fails the
// read (the loop closes the connection instead of waiting forever); a
// peer not draining past the write timeout fails the write (the send loop
// requeues instead of wedging). Zero timeouts leave that direction
// unbounded, the pre-hardening behaviour.
type deadlineConn struct {
	conn         net.Conn
	readTimeout  time.Duration
	writeTimeout time.Duration
}

func (d deadlineConn) Read(p []byte) (int, error) {
	if d.readTimeout > 0 {
		// A failed arm means the connection is already dead (or the OS
		// rejected the timer); surfacing it here fails the read the same
		// way an expired deadline would, instead of silently reading
		// unbounded.
		//p3:wallclock-ok deadlines are anchored to real time by definition
		if err := d.conn.SetReadDeadline(time.Now().Add(d.readTimeout)); err != nil {
			return 0, err
		}
	}
	return d.conn.Read(p)
}

func (d deadlineConn) Write(p []byte) (int, error) {
	if d.writeTimeout > 0 {
		//p3:wallclock-ok deadlines are anchored to real time by definition
		if err := d.conn.SetWriteDeadline(time.Now().Add(d.writeTimeout)); err != nil {
			return 0, err
		}
	}
	return d.conn.Write(p)
}
