package pstcp

import (
	"fmt"
	"net"
	"sync"

	"p3/internal/sched"
	"p3/internal/transport"
)

// Handler receives fully delivered Data frames on the worker.
type Handler func(f *transport.Frame)

// Worker is one training process's communication endpoint: the P3Worker of
// Section 4.2. Gradient slices pushed by the training loop (the producer)
// are drained by a single consumer goroutine that always transmits the most
// urgent slice next.
type Worker struct {
	id      uint8
	conns   []net.Conn
	sendQ   *transport.SendQueue
	handler Handler

	wg     sync.WaitGroup
	readWG sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// DialWorker connects worker id to every server address. schedName names
// the send-queue discipline from the sched registry ("p3" for the paper's
// priority ordering, "fifo" or empty for the baseline). handler runs on a
// receive goroutine for every Data frame; it must be safe for concurrent
// calls when multiple servers are used.
func DialWorker(id int, addrs []string, schedName string, handler Handler) (*Worker, error) {
	return DialWorkerProfile(id, addrs, schedName, nil, handler)
}

// DialWorkerProfile is DialWorker with a model timing profile for
// profile-aware send-queue disciplines (tictac ranks gradient slices by
// slack to consumption instead of layer index). profile may be nil, in
// which case such disciplines degrade to their model-blind order.
func DialWorkerProfile(id int, addrs []string, schedName string, profile *sched.Profile, handler Handler) (*Worker, error) {
	if id < 0 || id > 255 {
		return nil, fmt.Errorf("pstcp: worker id %d out of range", id)
	}
	disc, err := sched.ByName(schedName)
	if err != nil {
		return nil, fmt.Errorf("pstcp: %w", err)
	}
	sched.ApplyProfile(disc, profile)
	w := &Worker{
		id:      uint8(id),
		sendQ:   transport.NewSendQueue(disc),
		handler: handler,
	}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("pstcp: dial %s: %w", addr, err)
		}
		w.conns = append(w.conns, conn)
	}
	// Register on every server before anything else moves.
	for _, conn := range w.conns {
		fw := transport.NewFrameWriter(conn)
		if err := transport.WriteFrame(fw, &transport.Frame{Type: transport.TypeHello, Sender: w.id}); err != nil {
			w.Close()
			return nil, fmt.Errorf("pstcp: hello: %w", err)
		}
		if err := fw.Flush(); err != nil {
			w.Close()
			return nil, fmt.Errorf("pstcp: hello flush: %w", err)
		}
	}
	for _, conn := range w.conns {
		w.readWG.Add(1)
		go w.readLoop(conn)
	}
	w.wg.Add(1)
	go w.sendLoop()
	return w, nil
}

// Init uploads initial parameter values for a key to its server.
func (w *Worker) Init(server int, key uint64, values []float32) {
	w.sendQ.Push(&transport.Frame{
		Type: transport.TypeInit, Sender: w.id, Dst: uint8(server),
		Key: key, Values: values,
	})
}

// Push sends a gradient slice for key to its server; the slice joins the
// send queue at the given priority (lower = more urgent).
func (w *Worker) Push(server int, key uint64, iter int32, priority int32, grad []float32) {
	w.sendQ.Push(&transport.Frame{
		Type: transport.TypePush, Sender: w.id, Dst: uint8(server),
		Priority: priority, Key: key, Iter: iter, Values: grad,
	})
}

// Pull requests the current value of key (used by baseline-style flows; P3
// relies on the server's immediate broadcast instead).
func (w *Worker) Pull(server int, key uint64, iter int32, priority int32) {
	w.sendQ.Push(&transport.Frame{
		Type: transport.TypePull, Sender: w.id, Dst: uint8(server),
		Priority: priority, Key: key, Iter: iter,
	})
}

// QueuedSends reports the number of frames waiting in the send queue.
func (w *Worker) QueuedSends() int { return w.sendQ.Len() }

// Close tears down the connections and waits for the worker's goroutines.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	w.sendQ.Close()
	w.wg.Wait() // drain pending sends before closing connections
	for _, c := range w.conns {
		c.Close()
	}
	w.readWG.Wait()
}

func (w *Worker) readLoop(conn net.Conn) {
	defer w.readWG.Done()
	r := transport.NewFrameReader(conn)
	for {
		f, err := transport.ReadFrame(r)
		if err != nil {
			return
		}
		if (f.Type == transport.TypeData || f.Type == transport.TypeNotify) && w.handler != nil {
			w.handler(f)
		}
	}
}

// sendLoop is the consumer thread of Section 4.2: it polls the most urgent
// admitted frame and performs the blocking network call, so transmission
// order always tracks the discipline at frame granularity. A frame's credit
// is returned only when its bytes are flushed to the socket, so a
// credit-gated discipline bounds the buffered-but-unflushed backlog: once
// the window fills, the loop flushes and acknowledges before popping more.
func (w *Worker) sendLoop() {
	defer w.wg.Done()
	writers := make([]*connWriter, len(w.conns))
	for i, c := range w.conns {
		writers[i] = &connWriter{conn: c, w: transport.NewFrameWriter(c)}
	}
	dirty := make(map[int]bool)
	var pending []*transport.Frame // written, not yet flushed/acked
	flushAll := func() {
		for i := range dirty {
			writers[i].w.Flush()
			delete(dirty, i)
		}
		for _, f := range pending {
			w.sendQ.Done(f)
		}
		pending = pending[:0]
	}
	for {
		f, ok := w.sendQ.TryPop()
		if !ok {
			// Nothing admitted right now — either the queue is empty or
			// the credit window is full of unflushed frames. Flush, return
			// their credit, then block for the next admitted frame.
			flushAll()
			if f, ok = w.sendQ.Pop(); !ok {
				flushAll()
				return
			}
		}
		if int(f.Dst) < len(writers) {
			if err := transport.WriteFrame(writers[f.Dst].w, f); err == nil {
				dirty[int(f.Dst)] = true
			}
		}
		pending = append(pending, f)
	}
}
