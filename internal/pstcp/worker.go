package pstcp

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"p3/internal/sched"
	"p3/internal/transport"
)

// Handler receives fully delivered Data frames on the worker.
type Handler func(f *transport.Frame)

// Worker is one training process's communication endpoint: the P3Worker of
// Section 4.2. Gradient slices pushed by the training loop (the producer)
// are drained by a single consumer goroutine that always transmits the most
// urgent slice next.
type Worker struct {
	id      uint8
	cfg     WorkerConfig
	links   []*link
	sendQ   *transport.SendQueue
	handler Handler
	preempt int

	wg     sync.WaitGroup
	readWG sync.WaitGroup
	done   chan struct{}

	mu     sync.Mutex
	closed bool

	reconnects atomic.Int64
}

// link is one server connection's mutable state. The reader goroutine
// replaces conn/w on reconnect under mu; the send loop resolves the
// current writer under mu per frame, and parks undeliverable frames in
// retry until the reconnect lands (or declares the link dead).
type link struct {
	addr string

	mu    sync.Mutex
	conn  net.Conn
	w     transport.FlushWriter
	down  bool // between a failure and a successful reconnect
	dead  bool // reconnect exhausted: frames for this link are dropped
	retry []*transport.Frame
}

// ReconnectConfig bounds the worker's reconnect-on-failure loop.
type ReconnectConfig struct {
	// MaxAttempts caps redials per connection failure; 0 disables
	// reconnection entirely (a failed connection is dead, the pre-hardening
	// behaviour).
	MaxAttempts int
	// BaseDelay is the first retry's backoff (default 10ms); each attempt
	// doubles it up to MaxDelay (default 1s). Every wait is jittered
	// uniformly in [delay/2, delay) so a fleet of workers does not redial a
	// restarted server in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// WorkerConfig configures DialWorkerCfg.
type WorkerConfig struct {
	// ID is the worker's unique id (0..255).
	ID int
	// Servers are the parameter-server addresses, one connection each; a
	// frame's Dst indexes this list.
	Servers []string
	// Sched names the send-queue discipline (sched registry): "p3" for the
	// paper's priority ordering, "fifo" or empty for the baseline.
	Sched string
	// Profile optionally supplies model timing to profile-aware disciplines
	// (tictac ranks gradient slices by slack to consumption instead of
	// layer index); nil degrades them to their model-blind order.
	Profile *sched.Profile
	// PreemptBytes > 0 enables preemptive transmission: frames larger than
	// this many wire bytes are written in bounded segments, and strictly
	// more urgent frames bound for other servers overtake at segment
	// boundaries (see transport.SendLoop). 0 writes whole frames.
	PreemptBytes int
	// Handler runs on a receive goroutine for every Data/Notify frame; it
	// must be safe for concurrent calls when multiple servers are used.
	Handler Handler

	// ReadTimeout > 0 arms a read deadline on every server connection,
	// refreshed per frame: a server silent for longer (no broadcasts, no
	// heartbeats) fails the read and enters the reconnect path. 0 reads
	// forever.
	ReadTimeout time.Duration
	// WriteTimeout > 0 bounds every blocking socket write; a stalled server
	// fails the write (and the frame is retried after reconnecting) instead
	// of wedging the send loop. 0 writes forever.
	WriteTimeout time.Duration
	// HeartbeatEvery > 0 sends a payload-free heartbeat to every server at
	// this period, keeping idle-but-healthy connections inside the servers'
	// read deadlines. 0 sends none.
	HeartbeatEvery time.Duration
	// Reconnect bounds the redial loop a failed connection enters.
	Reconnect ReconnectConfig
}

// DialWorker connects worker id to every server address with the default
// options (no profile, no preemption).
func DialWorker(id int, addrs []string, schedName string, handler Handler) (*Worker, error) {
	return DialWorkerCfg(WorkerConfig{ID: id, Servers: addrs, Sched: schedName, Handler: handler})
}

// DialWorkerProfile is DialWorker with a model timing profile for
// profile-aware send-queue disciplines.
func DialWorkerProfile(id int, addrs []string, schedName string, profile *sched.Profile, handler Handler) (*Worker, error) {
	return DialWorkerCfg(WorkerConfig{ID: id, Servers: addrs, Sched: schedName, Profile: profile, Handler: handler})
}

// DialWorkerCfg connects a worker to every configured server.
func DialWorkerCfg(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID < 0 || cfg.ID > 255 {
		return nil, fmt.Errorf("pstcp: worker id %d out of range", cfg.ID)
	}
	disc, err := sched.ByName(cfg.Sched)
	if err != nil {
		return nil, fmt.Errorf("pstcp: %w", err)
	}
	sched.ApplyProfile(disc, cfg.Profile)
	// The worker's id seeds source-aware disciplines (damped), so a fleet
	// of workers does not resolve equal-rank ties identically.
	sched.ApplySource(disc, int32(cfg.ID))
	w := &Worker{
		id:      uint8(cfg.ID),
		cfg:     cfg,
		sendQ:   transport.NewSendQueue(disc),
		handler: cfg.Handler,
		preempt: cfg.PreemptBytes,
		done:    make(chan struct{}),
	}
	for _, addr := range cfg.Servers {
		conn, err := w.dial(addr)
		if err != nil {
			w.Close()
			return nil, err
		}
		w.links = append(w.links, &link{addr: addr, conn: conn, w: w.newWriter(conn)})
	}
	for _, li := range w.links {
		w.readWG.Add(1)
		go w.readLoop(li)
	}
	w.wg.Add(1)
	go w.sendLoop()
	if cfg.HeartbeatEvery > 0 {
		w.wg.Add(1)
		go w.heartbeatLoop()
	}
	return w, nil
}

// dial connects to one server and registers on it (Hello) before anything
// else moves.
func (w *Worker) dial(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pstcp: dial %s: %w", addr, err)
	}
	fw := w.newWriter(conn)
	if err := transport.WriteFrame(fw, &transport.Frame{Type: transport.TypeHello, Sender: w.id}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("pstcp: hello: %w", err)
	}
	if err := fw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("pstcp: hello flush: %w", err)
	}
	return conn, nil
}

func (w *Worker) newWriter(conn net.Conn) transport.FlushWriter {
	return transport.NewFrameWriter(deadlineConn{conn: conn, writeTimeout: w.cfg.WriteTimeout})
}

// Init uploads initial parameter values for a key to its server.
func (w *Worker) Init(server int, key uint64, values []float32) {
	w.sendQ.Push(&transport.Frame{
		Type: transport.TypeInit, Sender: w.id, Dst: uint8(server),
		Key: key, Values: values,
	})
}

// Push sends a gradient slice for key to its server; the slice joins the
// send queue at the given priority (lower = more urgent).
func (w *Worker) Push(server int, key uint64, iter int32, priority int32, grad []float32) {
	w.sendQ.Push(&transport.Frame{
		Type: transport.TypePush, Sender: w.id, Dst: uint8(server),
		Priority: priority, Key: key, Iter: iter, Values: grad,
	})
}

// Pull requests the current value of key (used by baseline-style flows; P3
// relies on the server's immediate broadcast instead).
func (w *Worker) Pull(server int, key uint64, iter int32, priority int32) {
	w.sendQ.Push(&transport.Frame{
		Type: transport.TypePull, Sender: w.id, Dst: uint8(server),
		Priority: priority, Key: key, Iter: iter,
	})
}

// QueuedSends reports the number of frames waiting in the send queue.
func (w *Worker) QueuedSends() int { return w.sendQ.Len() }

// Reconnects reports how many times the worker has re-established a server
// connection.
func (w *Worker) Reconnects() int64 { return w.reconnects.Load() }

// SetProfile swaps the send queue's timing profile at runtime — the
// calibrated mode's feedback hook (see Server.SetProfile): after measuring
// its real per-layer sync stalls a worker re-ranks subsequent pushes
// against the observed timeline instead of the static one. A no-op for
// profile-blind disciplines.
func (w *Worker) SetProfile(p *sched.Profile) { w.sendQ.SetProfile(p) }

// Close tears down the connections and waits for the worker's goroutines.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
	w.sendQ.Close()
	w.wg.Wait() // drain pending sends before closing connections
	for _, li := range w.links {
		li.mu.Lock()
		if li.conn != nil {
			li.conn.Close()
		}
		li.mu.Unlock()
	}
	w.readWG.Wait()
}

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// readLoop owns one link for the worker's lifetime: it drains frames from
// the current connection, and on any read error — closed peer, corrupt
// frame, silence past the read deadline — closes the connection and tries
// to re-establish it with bounded, jittered exponential backoff. A
// successful reconnect requeues the frames the send loop parked while the
// link was down; exhaustion marks the link dead and drops them.
func (w *Worker) readLoop(li *link) {
	defer w.readWG.Done()
	for {
		li.mu.Lock()
		conn := li.conn
		li.mu.Unlock()
		r := transport.NewFrameReader(deadlineConn{conn: conn, readTimeout: w.cfg.ReadTimeout})
		for {
			f, err := transport.ReadFrame(r)
			if err != nil {
				break
			}
			if (f.Type == transport.TypeData || f.Type == transport.TypeNotify) && w.handler != nil {
				w.handler(f)
			}
		}
		conn.Close()
		if w.isClosed() || !w.reconnect(li) {
			return
		}
	}
}

// reconnect redials li with exponential backoff and uniform jitter. It
// reports whether the link is live again.
func (w *Worker) reconnect(li *link) bool {
	li.mu.Lock()
	li.down = true
	li.mu.Unlock()
	cfg := w.cfg.Reconnect
	delay := cfg.BaseDelay
	if delay <= 0 {
		delay = 10 * time.Millisecond
	}
	maxDelay := cfg.MaxDelay
	if maxDelay <= 0 {
		maxDelay = time.Second
	}
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		//p3:wallclock-ok reconnect backoff jitter must differ across real workers
		jittered := delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1))
		select {
		case <-w.done:
			return false
		//p3:wallclock-ok reconnect backoff waits in real time
		case <-time.After(jittered):
		}
		conn, err := w.dial(li.addr)
		if err == nil {
			w.reconnects.Add(1)
			li.mu.Lock()
			li.conn = conn
			li.w = w.newWriter(conn)
			li.down = false
			parked := li.retry
			li.retry = nil
			li.mu.Unlock()
			// Unacknowledged frames ride the fresh connection; the server's
			// per-iteration seen-sender set absorbs any duplicate whose
			// original did reach the wire before the old connection died.
			for _, f := range parked {
				w.sendQ.Requeue(f)
			}
			return true
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
	li.mu.Lock()
	li.dead = true
	parked := li.retry
	li.retry = nil
	li.mu.Unlock()
	for _, f := range parked {
		w.sendQ.Cancel(f) // dropped: release their credit
	}
	return false
}

// sendLoop is the consumer thread of Section 4.2: transport.SendLoop polls
// the most urgent admitted frame (skipping credit-blocked destinations in
// favour of admissible ones) and performs the blocking network call; with
// PreemptBytes set, bulk frames are written in segments that strictly more
// urgent frames for other servers may overtake. A frame's credit is
// returned only when its bytes are flushed to the socket, so a credit-gated
// discipline bounds the buffered-but-unflushed backlog. Frames that fail to
// write — or whose link is down — are parked on the link and requeued by a
// successful reconnect; their credit stays held meanwhile, so a gated flow
// to a down server never floods the parking lot.
func (w *Worker) sendLoop() {
	defer w.wg.Done()
	transport.SendLoopErr(w.sendQ, func(f *transport.Frame) transport.FlushWriter {
		if int(f.Dst) >= len(w.links) {
			return nil
		}
		li := w.links[f.Dst]
		li.mu.Lock()
		defer li.mu.Unlock()
		if li.down || li.dead {
			return nil
		}
		return li.w
	}, w.preempt, func(f *transport.Frame, err error) {
		if f.Type == transport.TypeHeartbeat || int(f.Dst) >= len(w.links) {
			w.sendQ.Cancel(f) // keep-alives are never retried
			return
		}
		li := w.links[f.Dst]
		li.mu.Lock()
		if li.dead {
			li.mu.Unlock()
			w.sendQ.Cancel(f)
			return
		}
		// A write failure on a live-looking link means the connection just
		// broke under us: mark it down now so subsequent frames park instead
		// of burning writes into the dead socket; the read loop notices the
		// same breakage and drives the reconnect.
		li.down = true
		li.retry = append(li.retry, f)
		li.mu.Unlock()
	})
}

// heartbeatLoop keeps idle-but-healthy server connections inside the
// servers' read deadlines: a payload-free maximally-urgent frame per live
// link, every HeartbeatEvery.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	//p3:wallclock-ok liveness heartbeats pace the real transport
	t := time.NewTicker(w.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
		}
		for i, li := range w.links {
			li.mu.Lock()
			live := !li.down && !li.dead
			li.mu.Unlock()
			if live {
				w.sendQ.Push(&transport.Frame{
					Type: transport.TypeHeartbeat, Sender: w.id, Dst: uint8(i),
					Priority: heartbeatPriority,
				})
			}
		}
	}
}
