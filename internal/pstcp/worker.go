package pstcp

import (
	"fmt"
	"net"
	"sync"

	"p3/internal/sched"
	"p3/internal/transport"
)

// Handler receives fully delivered Data frames on the worker.
type Handler func(f *transport.Frame)

// Worker is one training process's communication endpoint: the P3Worker of
// Section 4.2. Gradient slices pushed by the training loop (the producer)
// are drained by a single consumer goroutine that always transmits the most
// urgent slice next.
type Worker struct {
	id      uint8
	conns   []net.Conn
	sendQ   *transport.SendQueue
	handler Handler
	preempt int

	wg     sync.WaitGroup
	readWG sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// WorkerConfig configures DialWorkerCfg.
type WorkerConfig struct {
	// ID is the worker's unique id (0..255).
	ID int
	// Servers are the parameter-server addresses, one connection each; a
	// frame's Dst indexes this list.
	Servers []string
	// Sched names the send-queue discipline (sched registry): "p3" for the
	// paper's priority ordering, "fifo" or empty for the baseline.
	Sched string
	// Profile optionally supplies model timing to profile-aware disciplines
	// (tictac ranks gradient slices by slack to consumption instead of
	// layer index); nil degrades them to their model-blind order.
	Profile *sched.Profile
	// PreemptBytes > 0 enables preemptive transmission: frames larger than
	// this many wire bytes are written in bounded segments, and strictly
	// more urgent frames bound for other servers overtake at segment
	// boundaries (see transport.SendLoop). 0 writes whole frames.
	PreemptBytes int
	// Handler runs on a receive goroutine for every Data/Notify frame; it
	// must be safe for concurrent calls when multiple servers are used.
	Handler Handler
}

// DialWorker connects worker id to every server address with the default
// options (no profile, no preemption).
func DialWorker(id int, addrs []string, schedName string, handler Handler) (*Worker, error) {
	return DialWorkerCfg(WorkerConfig{ID: id, Servers: addrs, Sched: schedName, Handler: handler})
}

// DialWorkerProfile is DialWorker with a model timing profile for
// profile-aware send-queue disciplines.
func DialWorkerProfile(id int, addrs []string, schedName string, profile *sched.Profile, handler Handler) (*Worker, error) {
	return DialWorkerCfg(WorkerConfig{ID: id, Servers: addrs, Sched: schedName, Profile: profile, Handler: handler})
}

// DialWorkerCfg connects a worker to every configured server.
func DialWorkerCfg(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID < 0 || cfg.ID > 255 {
		return nil, fmt.Errorf("pstcp: worker id %d out of range", cfg.ID)
	}
	disc, err := sched.ByName(cfg.Sched)
	if err != nil {
		return nil, fmt.Errorf("pstcp: %w", err)
	}
	sched.ApplyProfile(disc, cfg.Profile)
	// The worker's id seeds source-aware disciplines (damped), so a fleet
	// of workers does not resolve equal-rank ties identically.
	sched.ApplySource(disc, int32(cfg.ID))
	w := &Worker{
		id:      uint8(cfg.ID),
		sendQ:   transport.NewSendQueue(disc),
		handler: cfg.Handler,
		preempt: cfg.PreemptBytes,
	}
	for _, addr := range cfg.Servers {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("pstcp: dial %s: %w", addr, err)
		}
		w.conns = append(w.conns, conn)
	}
	// Register on every server before anything else moves.
	for _, conn := range w.conns {
		fw := transport.NewFrameWriter(conn)
		if err := transport.WriteFrame(fw, &transport.Frame{Type: transport.TypeHello, Sender: w.id}); err != nil {
			w.Close()
			return nil, fmt.Errorf("pstcp: hello: %w", err)
		}
		if err := fw.Flush(); err != nil {
			w.Close()
			return nil, fmt.Errorf("pstcp: hello flush: %w", err)
		}
	}
	for _, conn := range w.conns {
		w.readWG.Add(1)
		go w.readLoop(conn)
	}
	w.wg.Add(1)
	go w.sendLoop()
	return w, nil
}

// Init uploads initial parameter values for a key to its server.
func (w *Worker) Init(server int, key uint64, values []float32) {
	w.sendQ.Push(&transport.Frame{
		Type: transport.TypeInit, Sender: w.id, Dst: uint8(server),
		Key: key, Values: values,
	})
}

// Push sends a gradient slice for key to its server; the slice joins the
// send queue at the given priority (lower = more urgent).
func (w *Worker) Push(server int, key uint64, iter int32, priority int32, grad []float32) {
	w.sendQ.Push(&transport.Frame{
		Type: transport.TypePush, Sender: w.id, Dst: uint8(server),
		Priority: priority, Key: key, Iter: iter, Values: grad,
	})
}

// Pull requests the current value of key (used by baseline-style flows; P3
// relies on the server's immediate broadcast instead).
func (w *Worker) Pull(server int, key uint64, iter int32, priority int32) {
	w.sendQ.Push(&transport.Frame{
		Type: transport.TypePull, Sender: w.id, Dst: uint8(server),
		Priority: priority, Key: key, Iter: iter,
	})
}

// QueuedSends reports the number of frames waiting in the send queue.
func (w *Worker) QueuedSends() int { return w.sendQ.Len() }

// SetProfile swaps the send queue's timing profile at runtime — the
// calibrated mode's feedback hook (see Server.SetProfile): after measuring
// its real per-layer sync stalls a worker re-ranks subsequent pushes
// against the observed timeline instead of the static one. A no-op for
// profile-blind disciplines.
func (w *Worker) SetProfile(p *sched.Profile) { w.sendQ.SetProfile(p) }

// Close tears down the connections and waits for the worker's goroutines.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	w.sendQ.Close()
	w.wg.Wait() // drain pending sends before closing connections
	for _, c := range w.conns {
		c.Close()
	}
	w.readWG.Wait()
}

func (w *Worker) readLoop(conn net.Conn) {
	defer w.readWG.Done()
	r := transport.NewFrameReader(conn)
	for {
		f, err := transport.ReadFrame(r)
		if err != nil {
			return
		}
		if (f.Type == transport.TypeData || f.Type == transport.TypeNotify) && w.handler != nil {
			w.handler(f)
		}
	}
}

// sendLoop is the consumer thread of Section 4.2: transport.SendLoop polls
// the most urgent admitted frame (skipping credit-blocked destinations in
// favour of admissible ones) and performs the blocking network call; with
// PreemptBytes set, bulk frames are written in segments that strictly more
// urgent frames for other servers may overtake. A frame's credit is
// returned only when its bytes are flushed to the socket, so a credit-gated
// discipline bounds the buffered-but-unflushed backlog.
func (w *Worker) sendLoop() {
	defer w.wg.Done()
	writers := make([]transport.FlushWriter, len(w.conns))
	for i, c := range w.conns {
		writers[i] = transport.NewFrameWriter(c)
	}
	transport.SendLoop(w.sendQ, func(f *transport.Frame) transport.FlushWriter {
		if int(f.Dst) < len(writers) {
			return writers[f.Dst]
		}
		return nil
	}, w.preempt)
}
