package faults

import (
	"reflect"
	"strings"
	"testing"

	"p3/internal/netsim"
)

func samplePlan() *Plan {
	return &Plan{
		Seed:      7,
		DetectNs:  2e6,
		TimeoutNs: 8e6,
		Events: []Event{
			{Kind: KindAggCrash, At: 10e6, Until: 60e6, Tier: TierRack, Index: 1},
			{Kind: KindAggCrash, At: 90e6, Tier: TierPod, Index: 0},
			{Kind: KindStraggler, At: 0, Until: 40e6, Machine: 5, Factor: 1.5},
			{Kind: KindStraggler, At: 20e6, Until: 30e6, Machine: 5, Factor: 2},
			{Kind: KindLinkDegrade, At: 5e6, Until: 15e6, Link: LinkHost, Index: 3, Factor: 0.5},
			{Kind: KindLinkDegrade, At: 5e6, Until: 25e6, Link: LinkToR, Index: 0, Factor: 0.25},
			{Kind: KindWorkerLeave, At: 30e6, Until: 50e6, Machine: 2},
		},
	}
}

func sampleTopo() netsim.Topology {
	return netsim.Topology{RackSize: 4, CoreOversub: 4, Pods: 2, SpineOversub: 4}
}

func TestPlanRoundTrip(t *testing.T) {
	p := samplePlan()
	buf, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip changed the plan:\n got %+v\nwant %+v", got, p)
	}
}

func TestDecodeStrict(t *testing.T) {
	if _, err := Decode([]byte(`{"events": [{"kind": "straggler", "at_ns": 0, "untl_ns": 5}]}`)); err == nil {
		t.Error("typo'd field decoded without error")
	}
	if _, err := Decode([]byte(`{"events": []} {"events": []}`)); err == nil {
		t.Error("trailing data decoded without error")
	}
	if _, err := Decode([]byte(`{"events": [`)); err == nil {
		t.Error("truncated JSON decoded without error")
	}
}

func TestValidate(t *testing.T) {
	topo := sampleTopo()
	if err := samplePlan().Validate(16, topo); err != nil {
		t.Fatalf("sample plan invalid: %v", err)
	}
	bad := []struct {
		name string
		frag string
		e    Event
	}{
		{"unknown-kind", "unknown kind", Event{Kind: "meteor", At: 0, Until: 1}},
		{"negative-at", "negative at_ns", Event{Kind: KindStraggler, At: -1, Until: 5, Machine: 0, Factor: 2}},
		{"empty-window", "not after", Event{Kind: KindStraggler, At: 5, Until: 5, Machine: 0, Factor: 2}},
		{"machine-range", "outside the 16-machine cluster", Event{Kind: KindStraggler, At: 0, Until: 5, Machine: 16, Factor: 2}},
		{"straggler-speedup", "below 1", Event{Kind: KindStraggler, At: 0, Until: 5, Machine: 0, Factor: 0.5}},
		{"degrade-factor", "outside (0, 1]", Event{Kind: KindLinkDegrade, At: 0, Until: 5, Link: LinkHost, Index: 0, Factor: 1.5}},
		{"degrade-link", "link", Event{Kind: KindLinkDegrade, At: 0, Until: 5, Link: "wifi", Index: 0, Factor: 0.5}},
		{"tor-range", "outside the 4-rack topology", Event{Kind: KindLinkDegrade, At: 0, Until: 5, Link: LinkToR, Index: 4, Factor: 0.5}},
		{"spine-range", "outside the 2-pod topology", Event{Kind: KindLinkDegrade, At: 0, Until: 5, Link: LinkSpine, Index: 2, Factor: 0.5}},
		{"crash-tier", "tier", Event{Kind: KindAggCrash, At: 0, Tier: "core", Index: 0}},
		{"crash-rack-range", "outside the 4-rack topology", Event{Kind: KindAggCrash, At: 0, Tier: TierRack, Index: 7}},
		{"crash-pod-range", "outside the 2-pod topology", Event{Kind: KindAggCrash, At: 0, Tier: TierPod, Index: 2}},
		{"crash-window", "use 0 for a permanent crash", Event{Kind: KindAggCrash, At: 5, Until: 3, Tier: TierRack, Index: 0}},
	}
	for _, tc := range bad {
		p := &Plan{Events: []Event{tc.e}}
		err := p.Validate(16, topo)
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}

	flat := &Plan{Events: []Event{{Kind: KindAggCrash, At: 0, Tier: TierRack, Index: 0}}}
	if err := flat.Validate(16, netsim.Topology{}); err == nil || !strings.Contains(err.Error(), "flat topology") {
		t.Errorf("rack crash on flat topology: %v", err)
	}
	noSpine := &Plan{Events: []Event{{Kind: KindAggCrash, At: 0, Tier: TierPod, Index: 0}}}
	if err := noSpine.Validate(16, netsim.Topology{RackSize: 4, CoreOversub: 4}); err == nil || !strings.Contains(err.Error(), "without a spine tier") {
		t.Errorf("pod crash without spine: %v", err)
	}
}

func TestLookups(t *testing.T) {
	p := samplePlan()

	if !p.HasAggCrash() || !p.HasTierCrash(TierRack) || !p.HasTierCrash(TierPod) {
		t.Error("crash lookups missed scripted crashes")
	}
	if (&Plan{}).HasAggCrash() {
		t.Error("empty plan reports a crash")
	}

	// Rack 1 down [At+Detect, Until+Detect) = [12ms, 62ms).
	for _, tc := range []struct {
		now  int64
		want bool
	}{{11e6, false}, {12e6, true}, {61e6, true}, {62e6, false}} {
		if got := p.AggDownDetected(netsim.TierRack, 1, tc.now); got != tc.want {
			t.Errorf("rack 1 down at %d = %v, want %v", tc.now, got, tc.want)
		}
	}
	if p.AggDownDetected(netsim.TierRack, 0, 20e6) {
		t.Error("uncrashed rack 0 reported down")
	}
	// The pod crash is permanent: down from 92ms forever.
	if p.AggDownDetected(netsim.TierPod, 0, 91e6) {
		t.Error("pod 0 down before detection")
	}
	if !p.AggDownDetected(netsim.TierPod, 0, 1e12) {
		t.Error("permanently crashed pod 0 reported up")
	}

	// Straggler windows on machine 5 compound: factor 1.5 on [0, 40ms),
	// 1.5*2 inside the nested [20ms, 30ms).
	if got := p.SlowFactor(5, 10e6); got != 1.5 {
		t.Errorf("SlowFactor(5, 10ms) = %g, want 1.5", got)
	}
	if got := p.SlowFactor(5, 25e6); got != 3 {
		t.Errorf("SlowFactor(5, 25ms) = %g, want 3", got)
	}
	if got := p.SlowFactor(5, 40e6); got != 1 {
		t.Errorf("SlowFactor(5, 40ms) = %g, want 1", got)
	}
	if got := p.SlowFactor(4, 10e6); got != 1 {
		t.Errorf("SlowFactor(4, 10ms) = %g, want 1", got)
	}

	if rejoin, ok := p.PausedAt(2, 35e6); !ok || rejoin != 50e6 {
		t.Errorf("PausedAt(2, 35ms) = %d, %v; want 50ms, true", rejoin, ok)
	}
	if _, ok := p.PausedAt(2, 50e6); ok {
		t.Error("machine 2 paused at its own rejoin instant")
	}
	if _, ok := p.PausedAt(3, 35e6); ok {
		t.Error("machine 3 paused by machine 2's window")
	}

	if got := p.DegradedNs(); got != 10e6+20e6 {
		t.Errorf("DegradedNs = %d, want %d", got, int64(30e6))
	}
}

func TestCrashOverlap(t *testing.T) {
	p := &Plan{
		DetectNs:  2e6,
		TimeoutNs: 8e6,
		Events: []Event{
			{Kind: KindAggCrash, At: 10e6, Until: 60e6, Tier: TierRack, Index: 1},
		},
	}
	// Effective window end 62 ms; recovery slack = timeout + detect = 10 ms.
	if fire, pending := p.CrashOverlap(5e6, 5e6); fire || !pending {
		t.Errorf("before the crash: fire=%v pending=%v, want false/true", fire, pending)
	}
	if fire, pending := p.CrashOverlap(5e6, 20e6); !fire || !pending {
		t.Errorf("during the crash: fire=%v pending=%v, want true/true", fire, pending)
	}
	if fire, pending := p.CrashOverlap(71e6, 80e6); !fire || !pending {
		t.Errorf("inside the slack: fire=%v pending=%v, want true/true", fire, pending)
	}
	if fire, pending := p.CrashOverlap(73e6, 80e6); fire || pending {
		t.Errorf("past the slack: fire=%v pending=%v, want false/false", fire, pending)
	}

	// Leave and straggler windows widen the slack: a worker paused 30 ms
	// observes that much later.
	p.Events = append(p.Events,
		Event{Kind: KindWorkerLeave, At: 100e6, Until: 130e6, Machine: 0},
		Event{Kind: KindStraggler, At: 0, Until: 20e6, Machine: 1, Factor: 1.5},
	)
	// Slack grows to 10 + 30 + 10 ms = 50 ms; pending until since > 112 ms.
	if fire, pending := p.CrashOverlap(100e6, 110e6); !fire || !pending {
		t.Errorf("inside the widened slack: fire=%v pending=%v, want true/true", fire, pending)
	}
	if fire, pending := p.CrashOverlap(113e6, 120e6); fire || pending {
		t.Errorf("past the widened slack: fire=%v pending=%v, want false/false", fire, pending)
	}

	// A permanent crash keeps recovery pending forever.
	perm := &Plan{Events: []Event{{Kind: KindAggCrash, At: 10e6, Tier: TierRack, Index: 0}}}
	if fire, pending := perm.CrashOverlap(1e15, 1e15); !fire || !pending {
		t.Errorf("permanent crash: fire=%v pending=%v, want true/true", fire, pending)
	}
}

func TestDefaults(t *testing.T) {
	p := &Plan{}
	if p.Detect() != DefaultDetectNs || p.Timeout() != DefaultTimeoutNs {
		t.Errorf("zero plan defaults: detect %d timeout %d", p.Detect(), p.Timeout())
	}
	p = &Plan{DetectNs: 1, TimeoutNs: 2}
	if p.Detect() != 1 || p.Timeout() != 2 {
		t.Errorf("explicit latencies overridden: detect %d timeout %d", p.Detect(), p.Timeout())
	}
}

// TestScripted pins the generator contract: same inputs, same plan; the
// generated plan validates against the cluster it was generated for; and
// the event mix follows the topology and aggregation flags.
func TestScripted(t *testing.T) {
	topo := sampleTopo()
	a := Scripted(3, 16, topo, true, true, 0)
	b := Scripted(3, 16, topo, true, true, 0)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different plans:\n%+v\n%+v", a, b)
	}
	if c := Scripted(4, 16, topo, true, true, 0); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
	if err := a.Validate(16, topo); err != nil {
		t.Errorf("scripted plan invalid: %v", err)
	}
	if !a.HasTierCrash(TierRack) || !a.HasTierCrash(TierPod) {
		t.Errorf("hier scripted plan missing crashes: %+v", a.Events)
	}

	flat := Scripted(3, 8, netsim.Topology{}, false, false, 0)
	if err := flat.Validate(8, netsim.Topology{}); err != nil {
		t.Errorf("flat scripted plan invalid: %v", err)
	}
	if flat.HasAggCrash() || flat.HasKind(KindLinkDegrade) && hasLink(flat, LinkToR) {
		t.Errorf("flat scripted plan references tiers a flat topology lacks: %+v", flat.Events)
	}

	// Every window must respect the horizon bounds.
	const horizon = int64(80e6)
	h := Scripted(9, 16, topo, true, true, horizon)
	for i, e := range h.Events {
		if e.At < horizon/8 || e.Until > horizon*7/8 {
			t.Errorf("event %d window [%d, %d] outside [h/8, 7h/8]", i, e.At, e.Until)
		}
	}
}

func hasLink(p *Plan, link string) bool {
	for _, e := range p.Events {
		if e.Kind == KindLinkDegrade && e.Link == link {
			return true
		}
	}
	return false
}
