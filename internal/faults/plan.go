package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"

	"p3/internal/netsim"
)

// Kind names one fault-event class.
type Kind string

// The fault-event classes a Plan can script.
const (
	// KindAggCrash takes the addressed rack or pod aggregator offline for
	// [At, Until) (Until 0 = permanently): messages addressed to it are
	// dropped and its in-flight partial reductions are lost. Senders detect
	// the outage DetectNs after it begins and fall back to direct paths
	// until DetectNs after it ends.
	KindAggCrash Kind = "agg-crash"
	// KindStraggler multiplies one machine's compute times by Factor (>= 1)
	// for every compute step that starts inside [At, Until).
	KindStraggler Kind = "straggler"
	// KindLinkDegrade multiplies one port's serialization rate by Factor
	// (in (0, 1]) for [At, Until): a host NIC (both directions), a rack's
	// ToR uplink+downlink, or a pod's spine uplink+downlink.
	KindLinkDegrade Kind = "link-degrade"
	// KindWorkerLeave pauses one machine's training loop for [At, Until):
	// compute steps that would start inside the window instead complete
	// their full duration after Until (the worker rejoins where it left
	// off; synchronous SGD stalls the barrier meanwhile, exactly as a real
	// sync-SGD cluster without elastic membership would).
	KindWorkerLeave Kind = "worker-leave"
)

// Link targets of a KindLinkDegrade event.
const (
	LinkHost  = "host"
	LinkToR   = "tor"
	LinkSpine = "spine"
)

// Aggregator tiers of a KindAggCrash event (string forms of
// netsim.TierRack / netsim.TierPod).
const (
	TierRack = "rack"
	TierPod  = "pod"
)

// Event is one timed fault. Times are virtual nanoseconds on the
// simulation clock; which of the target fields is meaningful depends on
// Kind (see Validate).
type Event struct {
	Kind Kind `json:"kind"`
	// At is when the fault begins, in virtual nanoseconds.
	At int64 `json:"at_ns"`
	// Until is when the fault ends. 0 means permanent, allowed only for
	// agg-crash; every other kind requires Until > At.
	Until int64 `json:"until_ns,omitempty"`
	// Tier is the aggregation tier of an agg-crash: "rack" or "pod".
	Tier string `json:"tier,omitempty"`
	// Index is the crashed aggregator's rack/pod index, or the degraded
	// link's machine/rack/pod index (per Link).
	Index int `json:"index,omitempty"`
	// Link is the degraded port class of a link-degrade: "host", "tor" or
	// "spine".
	Link string `json:"link,omitempty"`
	// Machine is the straggling or leaving machine.
	Machine int `json:"machine,omitempty"`
	// Factor is the straggler compute multiplier (>= 1) or the link-degrade
	// rate multiplier (in (0, 1]).
	Factor float64 `json:"factor,omitempty"`
}

// Plan is a seeded, scripted set of timed fault events, JSON-serializable
// so a run's faults replay exactly. The zero-event Plan is byte-identical
// to no plan at every shard count (it schedules nothing).
type Plan struct {
	// Seed records the generator seed of a Scripted plan (informational —
	// replay uses the events, not the seed).
	Seed int64 `json:"seed,omitempty"`
	// DetectNs is the failure-detection latency: senders treat a crashed
	// aggregator as up until DetectNs after the crash, and as down until
	// DetectNs after the restart. 0 selects DefaultDetectNs.
	DetectNs int64 `json:"detect_ns,omitempty"`
	// TimeoutNs is the recovery-retry period: how long a server waits on an
	// incomplete aggregation barrier before requesting direct re-pushes,
	// and how long a worker stalls on missing parameters before pulling
	// them directly. 0 selects DefaultTimeoutNs. It is a recovery-latency
	// knob, not a correctness one — duplicate deliveries are deduplicated.
	TimeoutNs int64   `json:"timeout_ns,omitempty"`
	Events    []Event `json:"events"`
}

// Default detection and retry latencies (see Plan.DetectNs / TimeoutNs).
const (
	DefaultDetectNs  = int64(5e6) // 5 ms
	DefaultTimeoutNs = int64(1e8) // 100 ms
)

// Detect is DetectNs with its default applied.
func (p *Plan) Detect() int64 {
	if p.DetectNs > 0 {
		return p.DetectNs
	}
	return DefaultDetectNs
}

// Timeout is TimeoutNs with its default applied.
func (p *Plan) Timeout() int64 {
	if p.TimeoutNs > 0 {
		return p.TimeoutNs
	}
	return DefaultTimeoutNs
}

// Decode parses a serialized Plan strictly: unknown fields are errors, so
// a typo'd event never silently becomes a no-op fault.
func Decode(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: decoding plan: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil || len(extra) > 0 {
		return nil, fmt.Errorf("faults: trailing data after plan")
	}
	return &p, nil
}

// Encode serializes the plan as indented JSON (round-trips through Decode).
func (p *Plan) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("faults: encoding plan: %w", err)
	}
	return append(buf, '\n'), nil
}

// Validate checks every event against the cluster it will be injected
// into: machine indices must be inside [0, machines), rack/pod indices
// inside the topology's rack/pod count (so a plan cannot reference tiers
// the topology does not have), factors inside their kind's legal range,
// and windows well-ordered.
func (p *Plan) Validate(machines int, topo netsim.Topology) error {
	if machines <= 0 {
		return fmt.Errorf("faults: plan for %d machines", machines)
	}
	if p.DetectNs < 0 {
		return fmt.Errorf("faults: negative detect_ns %d", p.DetectNs)
	}
	if p.TimeoutNs < 0 {
		return fmt.Errorf("faults: negative timeout_ns %d", p.TimeoutNs)
	}
	racks := 0
	if topo.RackSize > 0 {
		racks = topo.NumRacks(machines)
	}
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("faults: event %d (%s): negative at_ns %d", i, e.Kind, e.At)
		}
		window := func() error {
			if e.Until <= e.At {
				return fmt.Errorf("faults: event %d (%s): until_ns %d not after at_ns %d", i, e.Kind, e.Until, e.At)
			}
			return nil
		}
		machine := func(m int) error {
			if m < 0 || m >= machines {
				return fmt.Errorf("faults: event %d (%s): machine %d outside the %d-machine cluster", i, e.Kind, m, machines)
			}
			return nil
		}
		switch e.Kind {
		case KindAggCrash:
			if e.Until != 0 && e.Until <= e.At {
				return fmt.Errorf("faults: event %d (agg-crash): until_ns %d not after at_ns %d (use 0 for a permanent crash)", i, e.Until, e.At)
			}
			switch e.Tier {
			case TierRack:
				if racks == 0 {
					return fmt.Errorf("faults: event %d (agg-crash): rack aggregator %d on a flat topology (Topology.RackSize is 0)", i, e.Index)
				}
				if e.Index < 0 || e.Index >= racks {
					return fmt.Errorf("faults: event %d (agg-crash): rack %d outside the %d-rack topology", i, e.Index, racks)
				}
			case TierPod:
				if topo.Pods <= 0 {
					return fmt.Errorf("faults: event %d (agg-crash): pod aggregator %d without a spine tier (Topology.Pods is 0)", i, e.Index)
				}
				if e.Index < 0 || e.Index >= topo.Pods {
					return fmt.Errorf("faults: event %d (agg-crash): pod %d outside the %d-pod topology", i, e.Index, topo.Pods)
				}
			default:
				return fmt.Errorf("faults: event %d (agg-crash): tier %q (want %q or %q)", i, e.Tier, TierRack, TierPod)
			}
		case KindStraggler:
			if err := window(); err != nil {
				return err
			}
			if err := machine(e.Machine); err != nil {
				return err
			}
			if e.Factor < 1 {
				return fmt.Errorf("faults: event %d (straggler): factor %g below 1 (a straggler is slower, not faster)", i, e.Factor)
			}
		case KindLinkDegrade:
			if err := window(); err != nil {
				return err
			}
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("faults: event %d (link-degrade): factor %g outside (0, 1]", i, e.Factor)
			}
			switch e.Link {
			case LinkHost:
				if err := machine(e.Index); err != nil {
					return err
				}
			case LinkToR:
				if racks == 0 {
					return fmt.Errorf("faults: event %d (link-degrade): ToR %d on a flat topology (Topology.RackSize is 0)", i, e.Index)
				}
				if e.Index < 0 || e.Index >= racks {
					return fmt.Errorf("faults: event %d (link-degrade): rack %d outside the %d-rack topology", i, e.Index, racks)
				}
			case LinkSpine:
				if topo.Pods <= 0 {
					return fmt.Errorf("faults: event %d (link-degrade): spine port %d without a spine tier (Topology.Pods is 0)", i, e.Index)
				}
				if e.Index < 0 || e.Index >= topo.Pods {
					return fmt.Errorf("faults: event %d (link-degrade): pod %d outside the %d-pod topology", i, e.Index, topo.Pods)
				}
			default:
				return fmt.Errorf("faults: event %d (link-degrade): link %q (want %q, %q or %q)", i, e.Link, LinkHost, LinkToR, LinkSpine)
			}
		case KindWorkerLeave:
			if err := window(); err != nil {
				return err
			}
			if err := machine(e.Machine); err != nil {
				return err
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %q", i, e.Kind)
		}
	}
	return nil
}

// HasKind reports whether the plan scripts at least one event of kind k.
func (p *Plan) HasKind(k Kind) bool {
	for _, e := range p.Events {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// HasAggCrash reports whether any aggregator crash is scripted.
func (p *Plan) HasAggCrash() bool { return p.HasKind(KindAggCrash) }

// HasTierCrash reports whether an aggregator of the given tier ("rack" or
// "pod") is scripted to crash.
func (p *Plan) HasTierCrash(tier string) bool {
	for _, e := range p.Events {
		if e.Kind == KindAggCrash && e.Tier == tier {
			return true
		}
	}
	return false
}

// untilEffective is the instant senders stop treating e's aggregator as
// down: detection lag past the restart, or forever for a permanent crash.
func (p *Plan) untilEffective(e Event) int64 {
	if e.Until == 0 {
		return int64(1) << 62
	}
	return e.Until + p.Detect()
}

// AggDownDetected reports whether senders consider the tier's aggregator
// idx down at virtual time now: the crash window shifted by the detection
// latency, [At+Detect, Until+Detect) (never-ending for a permanent
// crash). tier is netsim.TierRack or netsim.TierPod.
func (p *Plan) AggDownDetected(tier, idx int, now int64) bool {
	want := TierRack
	if tier == netsim.TierPod {
		want = TierPod
	}
	for _, e := range p.Events {
		if e.Kind != KindAggCrash || e.Tier != want || e.Index != idx {
			continue
		}
		if now >= e.At+p.Detect() && now < p.untilEffective(e) {
			return true
		}
	}
	return false
}

// SlowFactor is the compute multiplier of machine at virtual time now: the
// product of every straggler window containing now (1 outside all windows).
func (p *Plan) SlowFactor(machine int, now int64) float64 {
	f := 1.0
	for _, e := range p.Events {
		if e.Kind == KindStraggler && e.Machine == machine && now >= e.At && now < e.Until {
			f *= e.Factor
		}
	}
	return f
}

// PausedAt reports whether machine is inside a worker-leave window at
// virtual time now, returning the latest rejoin instant among the windows
// containing now.
func (p *Plan) PausedAt(machine int, now int64) (rejoin int64, ok bool) {
	for _, e := range p.Events {
		if e.Kind == KindWorkerLeave && e.Machine == machine && now >= e.At && now < e.Until {
			if e.Until > rejoin {
				rejoin = e.Until
				ok = true
			}
		}
	}
	return rejoin, ok
}

// recoverySlack bounds how long after a crash's effective end a barrier
// or stall observed at `since` could still be missing state the crash
// swallowed: one retry period and one detection lag of ordinary latency,
// plus the plan's own maximum injectable skew — a worker paused through a
// leave window (or slowed through a straggler window) sends and observes
// up to that much later than its peers, so its barrier can be born well
// after the crash that ate a peer's contribution.
func (p *Plan) recoverySlack() int64 {
	s := p.Timeout() + p.Detect()
	for _, e := range p.Events {
		switch e.Kind {
		case KindWorkerLeave:
			s += e.Until - e.At
		case KindStraggler:
			s += int64(float64(e.Until-e.At) * (e.Factor - 1))
		}
	}
	return s
}

// CrashOverlap scopes the recovery retries: fire reports whether an
// aggregator crash could explain application state missing since `since`
// as of `now` (some crash began at or before now, and its effective
// window — plus the plan's recovery slack — had not closed before since);
// pending reports whether one might yet (the same test ignoring whether
// the crash has begun), i.e. whether a retry timer is worth re-arming.
// Outside both, nothing can have been lost and recovery stays silent, so
// a plan's retries never tax iterations far from its crash windows.
func (p *Plan) CrashOverlap(since, now int64) (fire, pending bool) {
	slack := p.recoverySlack()
	for _, e := range p.Events {
		if e.Kind != KindAggCrash {
			continue
		}
		if since <= p.untilEffective(e)+slack {
			pending = true
			if e.At <= now {
				fire = true
			}
		}
	}
	return fire, pending
}

// DegradedNs is the total scripted link-degradation time: the sum of every
// link-degrade window's width (overlapping windows count separately).
func (p *Plan) DegradedNs() int64 {
	var t int64
	for _, e := range p.Events {
		if e.Kind == KindLinkDegrade {
			t += e.Until - e.At
		}
	}
	return t
}

// Scripted generates a deterministic plan from a seed: one straggler
// window, one worker-leave window, one host-NIC degradation, plus — when
// the topology has the tier — a ToR degradation, and — when the cluster
// aggregates (rackAgg / hierAgg) — a rack (and pod) aggregator crash. All
// windows land inside [horizonNs/8, 7*horizonNs/8]; horizonNs <= 0
// selects 400 ms. The same (seed, machines, topo, rackAgg, hierAgg,
// horizonNs) always yields the same plan.
func Scripted(seed int64, machines int, topo netsim.Topology, rackAgg, hierAgg bool, horizonNs int64) *Plan {
	if horizonNs <= 0 {
		horizonNs = int64(4e8)
	}
	rng := rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0x9e3779b97f4a7c15))
	h := float64(horizonNs)
	window := func(loFrac, spanFrac float64) (int64, int64) {
		at := int64(h * (loFrac + rng.Float64()*0.25))
		until := at + int64(h*spanFrac*(0.5+rng.Float64()))
		if max := horizonNs * 7 / 8; until > max {
			until = max
		}
		if until <= at {
			until = at + 1
		}
		return at, until
	}
	p := &Plan{Seed: seed}
	at, until := window(0.125, 0.25)
	p.Events = append(p.Events, Event{
		Kind: KindStraggler, At: at, Until: until,
		Machine: rng.IntN(machines), Factor: 1.25 + rng.Float64(),
	})
	at, until = window(0.25, 0.2)
	p.Events = append(p.Events, Event{
		Kind: KindWorkerLeave, At: at, Until: until,
		Machine: rng.IntN(machines),
	})
	at, until = window(0.125, 0.3)
	p.Events = append(p.Events, Event{
		Kind: KindLinkDegrade, At: at, Until: until,
		Link: LinkHost, Index: rng.IntN(machines), Factor: 0.25 + rng.Float64()*0.75,
	})
	if topo.RackSize > 0 {
		racks := topo.NumRacks(machines)
		at, until = window(0.25, 0.25)
		p.Events = append(p.Events, Event{
			Kind: KindLinkDegrade, At: at, Until: until,
			Link: LinkToR, Index: rng.IntN(racks), Factor: 0.25 + rng.Float64()*0.75,
		})
		if rackAgg {
			at, until = window(0.125, 0.2)
			p.Events = append(p.Events, Event{
				Kind: KindAggCrash, At: at, Until: until,
				Tier: TierRack, Index: rng.IntN(racks),
			})
			if hierAgg && topo.Pods > 0 {
				at, until = window(0.4, 0.15)
				p.Events = append(p.Events, Event{
					Kind: KindAggCrash, At: at, Until: until,
					Tier: TierPod, Index: rng.IntN(topo.Pods),
				})
			}
		}
	}
	return p
}
