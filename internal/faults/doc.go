// Package faults scripts deterministic fault injection for the cluster
// simulator: a seeded, JSON-serializable Plan of timed fault events that
// replays bit-identically at every shard count of the parallel engine.
//
// # Plan schema
//
// A Plan is a JSON object:
//
//	{
//	  "seed": 7,             // informational: the Scripted() generator seed
//	  "detect_ns": 5000000,  // failure-detection latency (0 = 5 ms default)
//	  "timeout_ns": 100000000, // recovery retry period (0 = 100 ms default)
//	  "events": [
//	    {"kind": "agg-crash",    "at_ns": 1e7, "until_ns": 6e7, "tier": "rack", "index": 1},
//	    {"kind": "straggler",    "at_ns": 0,   "until_ns": 4e8, "machine": 5, "factor": 1.5},
//	    {"kind": "link-degrade", "at_ns": 2e7, "until_ns": 8e7, "link": "tor", "index": 0, "factor": 0.5},
//	    {"kind": "worker-leave", "at_ns": 3e7, "until_ns": 9e7, "machine": 9}
//	  ]
//	}
//
// Times are virtual nanoseconds on the simulation clock. Decoding is
// strict (unknown fields are errors) and Plan.Validate checks every event
// against the concrete cluster — machine indices against the machine
// count, rack/pod indices against the netsim.Topology — so a plan cannot
// silently reference hardware the run does not have.
//
// The four kinds:
//
//   - agg-crash: the rack or pod aggregator goes down for [at, until)
//     (until 0 = permanently). Messages addressed to it are dropped, its
//     in-flight partial reductions are lost, and senders — after a
//     detect_ns detection lag — fall back to direct paths: workers push
//     straight to the parameter server, the hierarchical tier re-parents
//     rack streams from the pod aggregator to the server, and server
//     broadcasts fan out per machine instead of per rack/pod. Servers
//     re-arm a timeout_ns barrier timer and request direct re-pushes for
//     contributions the crash swallowed; workers stalled on lost
//     broadcasts re-pull directly. Recovery is dedup-safe, so timeout_ns
//     only tunes recovery latency, never correctness.
//   - straggler: machine's compute steps that start inside the window
//     take factor (>= 1) times longer.
//   - link-degrade: one port's serialization rate is multiplied by factor
//     (in (0, 1]) inside the window — a host NIC, a rack's ToR uplink and
//     downlink, or a pod's spine uplink and downlink.
//   - worker-leave: the machine's training loop pauses for the window;
//     compute steps that would start inside it instead run after until.
//     Synchronous SGD stalls the barrier meanwhile — the realistic
//     semantics of a sync cluster without elastic membership.
//
// # LP quantization rule
//
// Every fault is injected as an ordinary discrete event on the logical
// process that owns the affected state — the degraded port's LP, the
// crashed aggregator's LP — scheduled at construction time, before the
// engines run. Construction-time events carry the earliest insertion
// sequence numbers on both the single-shard and sharded engines, so a
// fault at time t on an LP always sorts before runtime deliveries at t on
// that LP, independent of shard count. State read on fault paths is
// likewise quantized to the reading LP's own clock (e.g. a sender decides
// "aggregator down?" from its own Now(), never a cross-LP peek). This is
// the same discipline as the credit-refund events of the gated transport,
// and it is what makes a plan compose bit-identically with the sharded
// parallel engine: a zero-event Plan schedules nothing and is
// byte-identical to no Plan at every shard count.
package faults
