package faults

import (
	"reflect"
	"testing"
)

// FuzzPlanDecode drives arbitrary bytes through the strict decoder: it
// must never panic, and whatever it accepts must survive an encode/decode
// round trip unchanged (the replay property the cluster tests rely on).
func FuzzPlanDecode(f *testing.F) {
	f.Add([]byte(`{"events": []}`))
	f.Add([]byte(`{"seed": 7, "detect_ns": 1, "timeout_ns": 2, "events": [` +
		`{"kind": "agg-crash", "at_ns": 1000, "until_ns": 2000, "tier": "rack", "index": 1}]}`))
	f.Add([]byte(`{"events": [{"kind": "straggler", "at_ns": 0, "until_ns": 5, "machine": 3, "factor": 1.5}]}`))
	f.Add([]byte(`{"events": [{"kind": "link-degrade", "at_ns": 0, "until_ns": 5, "link": "tor", "index": 0, "factor": 0.5}]}`))
	f.Add([]byte(`{"events": [{"kind": "worker-leave", "at_ns": 9, "until_ns": 10, "machine": 0}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"events": []} trailing`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		buf, err := p.Encode()
		if err != nil {
			t.Fatalf("accepted plan failed to encode: %v", err)
		}
		q, err := Decode(buf)
		if err != nil {
			t.Fatalf("encoded plan failed to decode: %v\n%s", err, buf)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip changed the plan:\n got %+v\nwant %+v", q, p)
		}
	})
}
