package cluster

import (
	"reflect"
	"strings"
	"testing"

	"p3/internal/faults"
	"p3/internal/netsim"
	"p3/internal/strategy"
)

// quickPlan returns p with fast detection/recovery latencies so the small
// test cells recover well inside their few-iteration runs.
func quickPlan(p *faults.Plan) *faults.Plan {
	p.DetectNs = 1e6  // 1 ms
	p.TimeoutNs = 2e6 // 2 ms
	return p
}

// TestFaultZeroPlanMatchesNoPlan is the fault layer's determinism base
// case: a zero-event plan schedules nothing and must be byte-identical to
// no plan at every shard count, on the flat, rack, and hierarchical
// topologies. Named in the CI -race determinism step.
func TestFaultZeroPlanMatchesNoPlan(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"flat", shardedCfg(t, 16, "damped")},
		{"racks", aggCfg(t, 16, 4, "credit", "", true)},
		{"hier", hierCfg(t, 16, 4, 2, "p3")},
	}
	for _, tc := range cases {
		want := Run(tc.cfg)
		for _, shards := range []int{1, 2, 4} {
			cfg := tc.cfg
			cfg.Shards = shards
			cfg.Faults = &faults.Plan{}
			if got := Run(cfg); !reflect.DeepEqual(got, want) {
				t.Errorf("%s/shards=%d: zero-event plan diverges from no plan:\n got %+v\nwant %+v",
					tc.name, shards, got, want)
			}
		}
	}
}

// TestFaultAggCrashShardDeterminism pins the tentpole's determinism
// contract on a small cell: a rack-aggregator crash mid-run recovers via
// failover (the run completes, failovers happen, lost reductions are
// counted) and the whole faulted Result is bit-identical across shard
// counts. Named in the CI -race determinism step.
func TestFaultAggCrashShardDeterminism(t *testing.T) {
	base := aggCfg(t, 16, 4, "fifo", "", true)
	base.Faults = quickPlan(&faults.Plan{Events: []faults.Event{
		{Kind: faults.KindAggCrash, At: 20e6, Until: 120e6, Tier: faults.TierRack, Index: 1},
	}})
	want := Run(base)
	if want.AggFailovers < 1 {
		t.Errorf("rack-aggregator crash caused no failovers: %+v", want)
	}
	if want.FaultsInjected != 1 {
		t.Errorf("FaultsInjected = %d, want 1", want.FaultsInjected)
	}
	for _, shards := range []int{2, 4} {
		cfg := base
		cfg.Shards = shards
		if got := Run(cfg); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: faulted run diverges from single engine:\n got %+v\nwant %+v",
				shards, got, want)
		}
	}

	// The hierarchical tier: a pod-aggregator crash re-parents rack
	// streams to the server, with the same shard contract.
	hier := hierCfg(t, 16, 4, 2, "fifo")
	hier.Faults = quickPlan(&faults.Plan{Events: []faults.Event{
		{Kind: faults.KindAggCrash, At: 20e6, Until: 120e6, Tier: faults.TierPod, Index: 1},
	}})
	hwant := Run(hier)
	if hwant.AggFailovers < 1 {
		t.Errorf("pod-aggregator crash caused no failovers: %+v", hwant)
	}
	for _, shards := range []int{2, 4} {
		cfg := hier
		cfg.Shards = shards
		if got := Run(cfg); !reflect.DeepEqual(got, hwant) {
			t.Errorf("hier/shards=%d: faulted run diverges from single engine:\n got %+v\nwant %+v",
				shards, got, hwant)
		}
	}
}

// TestFaultPlanReplayIdentical is the replay property: serializing a
// plan to JSON and running the decoded copy reproduces the original
// faulted Result exactly.
func TestFaultPlanReplayIdentical(t *testing.T) {
	plan := faults.Scripted(7, 16, netsim.Topology{RackSize: 4, CoreOversub: 4}, true, false, 50e6)
	plan.DetectNs = 1e6
	plan.TimeoutNs = 2e6
	cfg := aggCfg(t, 16, 4, "damped", "", true)
	cfg.Faults = plan
	want := Run(cfg)
	if want.FaultsInjected != len(plan.Events) {
		t.Fatalf("FaultsInjected = %d, want %d", want.FaultsInjected, len(plan.Events))
	}

	buf, err := plan.Encode()
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := faults.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = replayed
	if got := Run(cfg); !reflect.DeepEqual(got, want) {
		t.Errorf("replayed plan diverges from original:\n got %+v\nwant %+v", got, want)
	}
}

// TestFaultStragglerAndDegradeSlowRun pins the non-crash fault kinds'
// mechanisms: a straggler window and a link degradation each slow the
// run, a worker-leave window stalls it, and all complete.
func TestFaultStragglerAndDegradeSlowRun(t *testing.T) {
	base := shardedCfg(t, 4, "fifo")
	clean := Run(base)
	window := int64(10 * clean.MeanIterTime * 4) // safely covers the run

	straggle := base
	straggle.Faults = &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindStraggler, At: 0, Until: window, Machine: 1, Factor: 2},
	}}
	if got := Run(straggle); got.MeanIterTime <= clean.MeanIterTime {
		t.Errorf("2x straggler did not slow the run: %v <= %v", got.MeanIterTime, clean.MeanIterTime)
	}

	degrade := base
	degrade.Faults = &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindLinkDegrade, At: 0, Until: window, Link: faults.LinkHost, Index: 0, Factor: 0.25},
	}}
	if got := Run(degrade); got.MeanIterTime <= clean.MeanIterTime {
		t.Errorf("4x NIC degradation did not slow the run: %v <= %v", got.MeanIterTime, clean.MeanIterTime)
	} else if got.DegradedNs != window {
		t.Errorf("DegradedNs = %d, want %d", got.DegradedNs, window)
	}

	// The leave window opens inside the measured iterations (warmup ends
	// around one clean iteration in): the barrier stall must land where
	// MeanIterTime can see it.
	leave := base
	leave.Faults = &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindWorkerLeave, At: int64(clean.MeanIterTime) * 3 / 2, Until: int64(clean.MeanIterTime) * 3, Machine: 2},
	}}
	if got := Run(leave); got.MeanIterTime <= clean.MeanIterTime {
		t.Errorf("a worker-leave window did not stall the run: %v <= %v", got.MeanIterTime, clean.MeanIterTime)
	}
}

// TestFaultRejections pins the Config prerequisites: plans the cluster
// cannot honor fail loudly at construction, naming the missing piece.
func TestFaultRejections(t *testing.T) {
	mustPanicWith := func(name, frag string, cfg Config) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, frag) {
				t.Errorf("%s: panic %v does not mention %q", name, r, frag)
			}
		}()
		Run(cfg)
	}

	noAgg := shardedCfg(t, 16, "fifo")
	noAgg.Faults = &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindAggCrash, At: 1e6, Tier: faults.TierRack, Index: 0},
	}}
	mustPanicWith("crash-without-rackagg", "rack aggregator 0 on a flat topology", noAgg)

	rackNoAgg := shardedCfg(t, 16, "fifo")
	rackNoAgg.Topology = netsim.Topology{RackSize: 4, CoreOversub: 4}
	rackNoAgg.Faults = noAgg.Faults
	mustPanicWith("crash-without-aggregation", "needs RackAggregation", rackNoAgg)

	podNoHier := aggCfg(t, 16, 4, "fifo", "", true)
	podNoHier.Faults = &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindAggCrash, At: 1e6, Tier: faults.TierPod, Index: 0},
	}}
	mustPanicWith("pod-crash-without-spine", "without a spine tier", podNoHier)

	local := aggCfg(t, 16, 4, "fifo", "", true)
	local.RackLocalPS = true
	local = pullCfg(local)
	local.Faults = noAgg.Faults
	mustPanicWith("crash-with-racklocal", "RackLocalPS", local)

	pull := pullCfg(aggCfg(t, 16, 4, "fifo", "", true))
	pull.Faults = noAgg.Faults
	mustPanicWith("crash-with-pull", "Immediate-broadcast", pull)

	badMachine := shardedCfg(t, 16, "fifo")
	badMachine.Faults = &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindStraggler, At: 0, Until: 1e6, Machine: 99, Factor: 2},
	}}
	mustPanicWith("machine-out-of-range", "machine 99 outside the 16-machine cluster", badMachine)
}

// TestHierCrashFailover256 is the tentpole acceptance run: an aggregator
// crash mid-run on the 256-machine hierarchical topology completes via
// failover — no hang, failovers observed, throughput degraded but
// positive — bit-identically across shard counts. Too big instrumented:
// left to the non-race CI step.
func TestHierCrashFailover256(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("256-machine hierarchy cell: non-race CI step only")
	}
	st, err := strategy.SlicingOnly(0).WithSched("damped")
	if err != nil {
		t.Fatal(err)
	}
	st.Name = "sliced+damped"
	base := Config{
		Model: smallModel(), Machines: 256, Servers: 8, Strategy: st, BandwidthGbps: 1.5,
		WarmupIters: 1, MeasureIters: 2, Seed: 1,
		Topology:        netsim.Topology{RackSize: 32, CoreOversub: 4, Pods: 2, SpineOversub: 4},
		ServerMachines:  []int{0, 32, 64, 96, 128, 160, 192, 224},
		RackAggregation: true,
		HierAggregation: true,
	}
	clean := Run(base)

	crashed := base
	crashed.Faults = &faults.Plan{
		DetectNs: 2e6, TimeoutNs: 10e6,
		Events: []faults.Event{
			{Kind: faults.KindAggCrash, At: 30e6, Until: 300e6, Tier: faults.TierRack, Index: 1},
		},
	}
	want := Run(crashed)
	if want.AggFailovers < 1 {
		t.Errorf("crash caused no failovers: %+v", want)
	}
	if want.Throughput <= 0 {
		t.Errorf("faulted throughput %v not positive", want.Throughput)
	}
	if want.Throughput >= clean.Throughput {
		t.Errorf("crash did not degrade throughput: faulted %v >= clean %v", want.Throughput, clean.Throughput)
	}
	for _, shards := range []int{4} {
		cfg := crashed
		cfg.Shards = shards
		if got := Run(cfg); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: 256-machine faulted run diverges from single engine:\n got %+v\nwant %+v",
				shards, got, want)
		}
	}
}
