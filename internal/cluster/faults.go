package cluster

// Fault injection and recovery (Config.Faults). A faults.Plan is wired in
// as construction-time discrete events on the affected LPs (netsim's
// Schedule* methods) plus read-side lookups against the static plan, so a
// zero-event plan schedules nothing and stays byte-identical to no plan
// at every shard count. Recovery from aggregator crashes is driven from
// both ends on top of the same dedup invariant:
//
//   - every contribution the server counts is tracked in a per-chunk seen
//     bitmap, so a direct re-push and a late rack/pod stream for the same
//     worker can never double-count;
//   - the server re-arms a timeout on every aggregation barrier born while
//     a crash window could overlap it, and asks still-unseen machines of
//     crash-affected racks/pods for a direct re-push (kRepush);
//   - a worker stalled on parameters a lost broadcast should have carried
//     re-pulls them directly after the same timeout, and installChunk
//     dedups whatever arrives twice.
//
// All recovery state is partitioned by the LP that owns it (per-machine
// counters on the machine's LP, per-aggregator counters on the aggregator
// LP, seen bitmaps on the server's machine LP), so the sharded engine
// never races on it and fault runs are bit-identical across shard counts.

import (
	"fmt"

	"p3/internal/faults"
	"p3/internal/netsim"
	"p3/internal/sim"
	"p3/internal/strategy"
)

// faultState is the per-run fault wiring. Nil on fault-free runs; the
// crash-recovery arrays (pushedIter, gotIter, affected) are allocated only
// when the plan scripts an aggregator crash.
type faultState struct {
	plan    *faults.Plan
	timeout sim.Time
	// hasCrash gates every crash-recovery code path; stragglers, link
	// degradation and worker churn need none of it.
	hasCrash bool
	// affected[w] marks machines whose contributions or broadcasts can
	// route through a crash-scripted aggregator — the only machines the
	// server's barrier timer ever asks for re-pushes, so slow-but-healthy
	// racks are never spammed. Under HierAggregation a rack-tier crash
	// marks its whole parent pod: the pod reduction cannot complete without
	// the crashed rack's stream, so the sibling racks' contributions stall
	// inside the pod aggregator and need direct re-pushes too.
	affected []bool
	// pushedIter[w][chunk] is the newest iteration worker w pushed for the
	// chunk; gotIter[w][chunk] the newest iteration installed. Both are
	// owned by machine w's LP. gotIter doubles as the dedup line for
	// recovery duplicates. repushedIter[w][chunk] is the newest iteration
	// the worker answered a kRepush for: the direct re-push rides a
	// lossless network, so answering the same barrier's request twice only
	// feeds the congestion that delayed the first copy — the retry storm
	// that turns one crashed aggregator into a network collapse.
	// repulledIter[w][chunk] is the same line for stallCheck's recovery
	// pulls: a pull the server cannot answer yet parks in its pending list
	// and is answered when the update lands, so one pull per iteration is
	// guaranteed a reply and every further round would duplicate the
	// full-chunk data answer into the already-congested failover path.
	pushedIter   [][]int32
	repushedIter [][]int32
	repulledIter [][]int32
	gotIter      [][]int32
	// machFailovers[w] counts failover actions taken on machine w's LP
	// (detected reroutes, re-pushes, recovery pulls, repush rounds);
	// aggFailovers (rack aggregators first, then pods) counts reroutes
	// decided on an aggregator's LP; aggLost likewise counts gradient
	// contributions swallowed by a down aggregator.
	machFailovers []int64
	aggFailovers  []int64
	aggLost       []int64
}

// validateFaults rejects plans the cluster cannot honor, before any state
// is built. Mirrors the panic idiom of the other Config prerequisites.
func validateFaults(cfg *Config, n int) {
	p := cfg.Faults
	if err := p.Validate(n, cfg.Topology); err != nil {
		panic(fmt.Sprintf("cluster: %v", err))
	}
	if !p.HasAggCrash() {
		return
	}
	if !cfg.RackAggregation {
		panic("cluster: an agg-crash fault needs RackAggregation (there is no aggregator to crash)")
	}
	if cfg.RackLocalPS {
		panic("cluster: agg-crash faults are incompatible with RackLocalPS (the rack parameter cache has no failover path)")
	}
	if cfg.Strategy.Pull != strategy.Immediate {
		panic("cluster: agg-crash faults need an Immediate-broadcast strategy (crash recovery re-pulls against the immediate data path)")
	}
	if p.HasTierCrash(faults.TierPod) && !cfg.HierAggregation {
		panic("cluster: a pod-tier agg-crash needs HierAggregation (there is no pod aggregator to crash)")
	}
}

// newFaultState builds the run's fault wiring. Called after the rack
// aggregation state (rackPop, rpp) exists and before the network is
// constructed (netCfg.AggDrop must be set before NewOnExec).
func (cs *clusterSim) newFaultState(netCfg *netsim.Config) {
	p := cs.cfg.Faults
	n := cs.cfg.Machines
	fs := &faultState{
		plan:          p,
		timeout:       sim.Time(p.Timeout()),
		hasCrash:      p.HasAggCrash(),
		machFailovers: make([]int64, n),
	}
	cs.fs = fs
	if !fs.hasCrash {
		return
	}
	racks := len(cs.rackPop)
	fs.aggFailovers = make([]int64, racks+cs.cfg.Topology.Pods)
	fs.aggLost = make([]int64, racks+cs.cfg.Topology.Pods)
	fs.affected = make([]bool, n)
	markRack := func(r int) {
		lo := r * cs.cfg.Topology.RackSize
		for w := lo; w < lo+cs.rackPop[r]; w++ {
			fs.affected[w] = true
		}
	}
	for _, e := range p.Events {
		if e.Kind != faults.KindAggCrash {
			continue
		}
		switch {
		case e.Tier == faults.TierPod:
			for r := e.Index * cs.rpp; r < (e.Index+1)*cs.rpp; r++ {
				markRack(r)
			}
		case cs.cfg.HierAggregation:
			pod := e.Index / cs.rpp
			for r := pod * cs.rpp; r < (pod+1)*cs.rpp; r++ {
				markRack(r)
			}
		default:
			markRack(e.Index)
		}
	}
	fs.pushedIter = make([][]int32, n)
	fs.gotIter = make([][]int32, n)
	fs.repushedIter = make([][]int32, n)
	fs.repulledIter = make([][]int32, n)
	for w := 0; w < n; w++ {
		fs.pushedIter[w] = make([]int32, cs.plan.NumChunks())
		fs.gotIter[w] = make([]int32, cs.plan.NumChunks())
		fs.repushedIter[w] = make([]int32, cs.plan.NumChunks())
		fs.repulledIter[w] = make([]int32, cs.plan.NumChunks())
		for c := range fs.pushedIter[w] {
			fs.pushedIter[w][c] = -1
			fs.gotIter[w][c] = -1
			fs.repushedIter[w][c] = -1
			fs.repulledIter[w][c] = -1
		}
	}
	netCfg.AggDrop = cs.aggDrop
}

// scheduleFaults installs the plan's scripted netsim events — link
// degradations and aggregator outages — as construction-time events on
// the affected LPs. Stragglers and worker-leave windows need no events:
// they are read back from the static plan at compute-scheduling time.
func (cs *clusterSim) scheduleFaults() {
	for _, e := range cs.fs.plan.Events {
		switch e.Kind {
		case faults.KindLinkDegrade:
			switch e.Link {
			case faults.LinkHost:
				cs.net.ScheduleHostDegrade(e.Index, sim.Time(e.At), sim.Time(e.Until), e.Factor)
			case faults.LinkToR:
				cs.net.ScheduleRackDegrade(e.Index, sim.Time(e.At), sim.Time(e.Until), e.Factor)
			case faults.LinkSpine:
				cs.net.ScheduleSpineDegrade(e.Index, sim.Time(e.At), sim.Time(e.Until), e.Factor)
			}
		case faults.KindAggCrash:
			tier := netsim.TierRack
			ord := e.Index
			if e.Tier == faults.TierPod {
				tier = netsim.TierPod
				ord = len(cs.rackPop) + e.Index
			}
			idx := e.Index
			cs.net.ScheduleAggOutage(tier, idx, sim.Time(e.At), sim.Time(e.Until),
				func() { cs.onAggCrash(tier, idx, ord) }, nil)
		}
	}
}

// onAggCrash runs on the crashed aggregator's LP at the crash instant:
// whatever partial reductions the aggregator held are lost with it.
func (cs *clusterSim) onAggCrash(tier, idx, ord int) {
	var agg []chunkAgg
	if tier == netsim.TierPod {
		agg = cs.podAggs[idx].agg
	} else {
		agg = cs.rackAggs[idx].agg
	}
	for c := range agg {
		if agg[c].count > 0 {
			cs.fs.aggLost[ord] += int64(agg[c].count)
			agg[c].iter = -1
			agg[c].count = 0
		}
	}
}

// aggDrop is the netsim AggDrop handler (crash plans only): it counts the
// gradient contributions a down aggregator swallowed, on that
// aggregator's own LP. Reduced streams (Src < 0) count as every worker
// folded into them; broadcast traffic carries no contributions.
func (cs *clusterSim) aggDrop(tier, idx int, m netsim.Message) {
	ord := idx
	if tier == netsim.TierPod {
		ord = len(cs.rackPop) + idx
	}
	if m.Kind != kPush {
		return
	}
	switch {
	case m.Src >= 0:
		cs.fs.aggLost[ord]++
	case int(-1-m.Src) >= len(cs.rackPop):
		cs.fs.aggLost[ord] += int64(cs.podExpect(int(-1-m.Src)-len(cs.rackPop), m.Chunk))
	default:
		cs.fs.aggLost[ord] += int64(cs.aggExpect(int(-1-m.Src), m.Chunk))
	}
}

// after schedules fn d after now on machine w's LP, deferring past any
// worker-leave window containing now: a step that would start inside the
// window instead runs its full duration from the rejoin instant.
func (cs *clusterSim) after(w int, d sim.Time, fn func()) {
	p := cs.procs[w]
	if cs.fs != nil {
		if rejoin, ok := cs.fs.plan.PausedAt(w, int64(p.Now())); ok {
			p.At(sim.Time(rejoin)+d, fn)
			return
		}
	}
	p.After(d, fn)
}

// rackDownDetected reports whether rack r's aggregator is down as
// detected at virtual time now (the reading LP's own clock).
func (cs *clusterSim) rackDownDetected(r int, now sim.Time) bool {
	return cs.fs.plan.AggDownDetected(netsim.TierRack, r, int64(now))
}

// podDownDetected is rackDownDetected for a pod aggregator.
func (cs *clusterSim) podDownDetected(p int, now sim.Time) bool {
	return cs.fs.plan.AggDownDetected(netsim.TierPod, p, int64(now))
}

// pushProcessedFaults replaces the synchronous pushProcessed barrier under
// crash plans: contributions are counted through a per-chunk seen bitmap
// (dedup against re-pushes), barriers born inside a possible crash window
// arm a re-push timer, and stale re-pushes of an already-completed
// iteration are answered with the current value so the re-pusher also
// recovers any broadcast it missed.
func (cs *clusterSim) pushProcessedFaults(srv int, it procItem) {
	s := &cs.servers[srv]
	if it.iter <= s.lastDone[it.chunk] {
		if it.src >= 0 {
			cs.sendData(srv, it.chunk, it.iter, int(it.src))
		}
		return
	}
	agg := &s.agg[it.chunk]
	if agg.iter != it.iter {
		agg.iter = it.iter
		agg.count = 0
		agg.done = false
		seen := s.seen[it.chunk]
		for i := range seen {
			seen[i] = false
		}
		now := cs.procs[cs.srvMachine[srv]].Now()
		if _, pending := cs.fs.plan.CrashOverlap(int64(now), int64(now)); pending {
			cs.armBarrierCheck(srv, it.chunk, it.iter, now)
		}
	}
	agg.count += cs.markSeen(srv, it.chunk, int(it.src))
	if agg.count == cs.cfg.Machines && !agg.done {
		agg.done = true
		if it.iter > s.lastDone[it.chunk] {
			s.lastDone[it.chunk] = it.iter
		}
		cs.onUpdated(srv, it.chunk, it.iter)
	}
}

// markSeen marks the workers a contribution covers in the chunk's seen
// bitmap and returns how many were newly marked — 0 for every worker a
// re-push or late stream already counted. Reduced streams cover their
// rack's (or pod's) machines except the chunk's server machine, mirroring
// aggExpect/podExpect.
func (cs *clusterSim) markSeen(srv int, chunk int32, src int) int {
	seen := cs.servers[srv].seen[chunk]
	mark := func(w int) int {
		if seen[w] {
			return 0
		}
		seen[w] = true
		return 1
	}
	if src >= 0 {
		return mark(src)
	}
	srvM := cs.srvMachine[srv]
	markRack := func(r int) int {
		n := 0
		lo := r * cs.cfg.Topology.RackSize
		for w := lo; w < lo+cs.rackPop[r]; w++ {
			if w == srvM {
				continue
			}
			n += mark(w)
		}
		return n
	}
	idx := -1 - src
	if idx >= len(cs.rackPop) {
		pod := idx - len(cs.rackPop)
		n := 0
		for r := pod * cs.rpp; r < (pod+1)*cs.rpp; r++ {
			n += markRack(r)
		}
		return n
	}
	return markRack(idx)
}

// recoveryBackoff doubles a retry timer up to 32x the configured timeout:
// re-pushed gradients and re-pulled parameters are megabytes crossing an
// oversubscribed uplink, so they routinely outlive one timeout in flight —
// retrying on a fixed period re-requests data that is already coming and
// melts the network under its own recovery traffic.
func (cs *clusterSim) recoveryBackoff(delay sim.Time) sim.Time {
	if max := cs.fs.timeout * 32; delay*2 > max {
		return max
	}
	return delay * 2
}

// armBarrierCheck re-arms a timeout on the server's machine LP for an
// aggregation barrier born at `since` while a crash window could overlap
// it. Each firing asks every still-unseen machine of a crash-affected
// rack/pod for a direct re-push (kRepush); the timer stops once the
// barrier completes, the slot moves to a newer iteration, or no scripted
// crash can reach it anymore, and backs off exponentially in between.
func (cs *clusterSim) armBarrierCheck(srv int, chunk, iter int32, since sim.Time) {
	cs.barrierCheck(srv, chunk, iter, since, cs.fs.timeout)
}

func (cs *clusterSim) barrierCheck(srv int, chunk, iter int32, since sim.Time, delay sim.Time) {
	srvM := cs.srvMachine[srv]
	cs.procs[srvM].After(delay, func() {
		s := &cs.servers[srv]
		agg := &s.agg[chunk]
		if agg.iter != iter || agg.done {
			return
		}
		now := cs.procs[srvM].Now()
		fire, pending := cs.fs.plan.CrashOverlap(int64(since), int64(now))
		if fire {
			sent := false
			seen := s.seen[chunk]
			c := cs.plan.Chunks[chunk]
			for w := range seen {
				if seen[w] || !cs.fs.affected[w] || w == srvM {
					continue
				}
				sent = true
				cs.net.Send(netsim.Message{
					From: srvM, To: w, Bytes: ctlBytes, Priority: int32(c.Priority),
					Kind: kRepush, Chunk: chunk, Iter: iter, Src: int32(srv),
				})
			}
			if sent {
				cs.fs.machFailovers[srvM]++
			}
		}
		if pending {
			cs.barrierCheck(srv, chunk, iter, since, cs.recoveryBackoff(delay))
		}
	})
}

// onRepush answers a server's re-push request on the worker's LP: if the
// worker already pushed this iteration (so its contribution may have died
// with an aggregator) and has not yet seen the iteration's update, it
// re-pushes the gradient chunk directly to the server — once per
// iteration: the direct path is lossless, so a second copy can only add
// congestion behind the first.
func (cs *clusterSim) onRepush(m netsim.Message) {
	w := m.To
	fs := cs.fs
	if fs.pushedIter[w][m.Chunk] < m.Iter || fs.gotIter[w][m.Chunk] >= m.Iter ||
		fs.repushedIter[w][m.Chunk] >= m.Iter {
		return
	}
	fs.repushedIter[w][m.Chunk] = m.Iter
	fs.machFailovers[w]++
	c := cs.plan.Chunks[m.Chunk]
	cs.net.Send(netsim.Message{
		From: w, To: cs.srvMachine[c.Server], Bytes: c.Bytes(), Priority: int32(c.Priority),
		Kind: kPush, Chunk: m.Chunk, Iter: m.Iter, Src: int32(w),
	})
}

// armStallCheck re-arms a timeout on worker w's LP while it is stalled in
// forward waiting for layer l's parameters of iteration iter-1 and a
// scripted crash could explain the gap (a broadcast stream dropped at a
// down aggregator). Each firing re-pulls the still-missing chunks
// directly from their servers — once per iteration (repulledIter): an
// unanswerable pull parks in the server's pending list and is answered
// when the update lands, so a second pull can only duplicate the data
// answer behind the first — backing off exponentially between rounds;
// stragglers of the dedup line are still dedup'd at install (gotIter).
func (cs *clusterSim) armStallCheck(w, l int, iter int32, since sim.Time) {
	if _, pending := cs.fs.plan.CrashOverlap(int64(since), int64(since)); !pending {
		return
	}
	cs.stallCheck(w, l, iter, since, cs.fs.timeout)
}

func (cs *clusterSim) stallCheck(w, l int, iter int32, since sim.Time, delay sim.Time) {
	cs.procs[w].After(delay, func() {
		ws := &cs.workers[w]
		if !ws.waitingFwd || ws.fwdLayer != l || ws.curIter != iter {
			return
		}
		now := cs.procs[w].Now()
		fire, pending := cs.fs.plan.CrashOverlap(int64(since), int64(now))
		if fire {
			pulled := false
			for _, id := range cs.plan.LayerChunks(l) {
				if cs.fs.gotIter[w][id] >= iter-1 || cs.fs.repulledIter[w][id] >= iter-1 {
					continue
				}
				cs.fs.repulledIter[w][id] = iter - 1
				pulled = true
				c := cs.plan.Chunks[id]
				cs.net.Send(netsim.Message{
					From: w, To: cs.srvMachine[c.Server], Bytes: ctlBytes, Priority: int32(c.Priority),
					Kind: kPull, Chunk: int32(id), Iter: iter - 1, Src: int32(w),
				})
			}
			if pulled {
				cs.fs.machFailovers[w]++
			}
		}
		if pending {
			cs.stallCheck(w, l, iter, since, cs.recoveryBackoff(delay))
		}
	})
}

// faultCounters sums the per-LP fault counters into the Result fields
// (safe once the run is over, like the netsim stat accessors).
func (cs *clusterSim) faultCounters(r *Result) {
	fs := cs.fs
	r.FaultsInjected = len(fs.plan.Events)
	r.DegradedNs = fs.plan.DegradedNs()
	for _, v := range fs.machFailovers {
		r.AggFailovers += v
	}
	for _, v := range fs.aggFailovers {
		r.AggFailovers += v
	}
	for _, v := range fs.aggLost {
		r.LostReductions += v
	}
}
