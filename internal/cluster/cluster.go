// Package cluster simulates data-parallel synchronous-SGD training over a
// parameter-server architecture on the discrete-event clock. It is the
// substitute for the paper's physical testbed (four GPU machines with
// tc-qdisc-throttled NICs): one machine hosts one worker and one co-located
// parameter server (the paper's recommended deployment), workers alternate
// forward/backward compute phases, and gradients/parameters flow through the
// simulated network according to a strategy.Strategy.
//
// The protocol follows Sections 2, 4.1 and 4.2 of the paper:
//
//	worker: backward(l) done -> push gradient chunks of layer l
//	server: Nth push of a chunk processed -> parameters updated ->
//	        notify+pull (baseline), immediate broadcast (P3/slicing/WFBP),
//	        or reply-on-deferred-pull (TensorFlow style)
//	worker: all chunks of layer l received -> layer l usable by the next
//	        forward pass; forward(l) blocks until then
package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"

	"p3/internal/core"
	"p3/internal/faults"
	"p3/internal/model"
	"p3/internal/netsim"
	"p3/internal/sched"
	"p3/internal/sim"
	"p3/internal/strategy"
	"p3/internal/trace"
)

// Message kinds on the simulated network.
const (
	kPush   uint8 = iota + 1 // worker -> server: gradient chunk
	kNotify                  // server -> worker: chunk updated (baseline)
	kPull                    // worker -> server: parameter request
	kData                    // server -> worker: updated parameter chunk
	kCache                   // server -> rack aggregator: updated parameter chunk for the rack-local cache (RackLocalPS)
	kRepush                  // server -> worker: re-push a contribution lost at a crashed aggregator (Config.Faults)
)

// ctlBytes is the payload size of notify/pull control messages.
const ctlBytes = 16

// Config describes one simulated training run.
type Config struct {
	Model    *model.Model
	Machines int // worker machines (each runs one worker)
	// Servers is the parameter-server count; servers are co-located on the
	// first Servers machines. 0 means one server per machine, the paper's
	// deployment (Section 5.1). Appendix A.7 allows customizing this.
	Servers  int
	Strategy strategy.Strategy
	// BandwidthGbps is the per-direction NIC rate (the paper's x axis).
	BandwidthGbps float64
	// Net optionally overrides the full interconnect config; if zero-valued
	// it is derived from BandwidthGbps via netsim.DefaultConfig. The
	// Egress discipline is always forced from the strategy's Sched name.
	Net *netsim.Config
	// Profile optionally overrides the static FLOP-derived timing profile
	// handed to model-aware disciplines (tictac) — the hook behind the
	// calibrated two-pass mode (RunCalibrated), which re-runs with a
	// profile rebuilt from a prior run's measured stalls. nil selects the
	// static strategy.ComputeProfile.
	Profile *sched.Profile
	// PreemptQuantum > 0 makes NIC egress transmission resumable in
	// segments of this many wire bytes (netsim.Config.PreemptQuantum): a
	// strictly more urgent message preempts an in-flight one at the next
	// segment boundary — the true-preemption upper bound that the paper's
	// slicing approximates. 0 keeps message-granularity preemption.
	PreemptQuantum int64
	// UpdateRateGBps is the server-side per-byte processing rate in
	// gigabytes per second: deserializing a received gradient, accumulating
	// it, and (on the last push) applying the SGD update. ps-lite servers
	// do this on a single thread, so at layer granularity a 100 MB shard
	// occupies the server for a long, unpipelined stretch — one of the
	// effects parameter slicing removes.
	UpdateRateGBps float64
	// UpdateOverhead is the fixed per-message server processing cost.
	UpdateOverhead sim.Time
	// HostRateGBps is the worker-side per-byte cost of deserializing and
	// installing received parameters (same single-threaded copy path).
	HostRateGBps float64
	// HostOverhead is the fixed per-message worker receive cost.
	HostOverhead sim.Time
	// ServerThreads is the number of concurrent update threads per server
	// (ps-lite's server loop is effectively single-threaded; pushes to the
	// same key always serialize on its accumulator regardless).
	ServerThreads int
	// HostThreads is the number of concurrent install threads on the worker
	// receive path (MXNet's engine copies different keys in parallel).
	HostThreads int
	// WarmupIters iterations are run before measurement; MeasureIters are
	// measured. The paper skips 1000 warm-up iterations on real hardware;
	// the simulator reaches steady state within a couple.
	WarmupIters  int
	MeasureIters int
	// Seed drives the per-worker compute jitter (Sockeye's variable
	// sequence lengths). Runs are deterministic for a fixed seed.
	Seed int64
	// Recorder, if non-nil, captures per-machine NIC utilization.
	// Incompatible with Shards >= 2 (the buckets are shared across
	// machines).
	Recorder *trace.Recorder
	// Shards selects the engine: 0 or 1 runs the exact legacy single-heap
	// engine (bit-identical to earlier releases), >= 2 runs the
	// conservative-lookahead parallel engine with that many shards —
	// producing, by the sim package's determinism contract, the same
	// Result. Values above the machine count are clamped.
	Shards int
	// Engine optionally supplies a reusable single-shard engine: it is
	// Reset and used in place of a fresh one, so sweep workers keep one
	// grown event slab across configurations. Ignored when Shards >= 2.
	Engine *sim.Engine
	// Topology optionally arranges machines into racks behind an
	// oversubscribed core (netsim.Topology); the zero value keeps the flat
	// non-blocking switch.
	Topology netsim.Topology
	// ServerMachines optionally places parameter server s on machine
	// ServerMachines[s] (len must equal the server count; entries must be
	// distinct). nil keeps the default co-location: server s on machine s.
	// With a rack topology this is the PS-placement axis: spread servers
	// across racks or pack them into one.
	ServerMachines []int
	// RackAggregation enables Parameter Hub-style in-rack gradient
	// aggregation on a rack topology: every non-loopback gradient push
	// routes through the pushing worker's rack aggregator, which sums the
	// rack's contributions per (chunk, iteration) and forwards ONE reduced
	// stream to the chunk's server (weighted as the whole rack at the
	// aggregation barrier), and every server broadcast (Immediate data,
	// NotifyPull notifies) sends one copy per rack that the destination
	// ToR fans out to its machines. Per-worker pulls and their replies
	// stay direct — only the all-to-one and one-to-all patterns collapse.
	// Requires Topology.RackSize > 0; incompatible with Strategy.Async
	// (ASGD has no aggregation barrier to fold into the rack). The
	// reduction itself models a switch-side engine: aggregator ingest and
	// summing cost no host NIC or CPU time unless AggReduceGBps bounds it.
	RackAggregation bool
	// HierAggregation extends RackAggregation into a hierarchical reduce
	// on a spine topology (Topology.Pods > 0): rack aggregators flush
	// their reduced stream to their pod's aggregator instead of the
	// server, the pod aggregator reduces its racks' streams into ONE
	// stream per pod toward the chunk's server, and server broadcasts
	// descend the same tree (one stream per pod, fanned to the pod's rack
	// aggregators at the spine, then to machines at the ToRs) — so the
	// server NIC and the spine each carry per-pod streams instead of
	// per-rack ones. Requires RackAggregation and a spine tier.
	HierAggregation bool
	// RackLocalPS co-designs parameter-server placement with chunk
	// ownership at the rack level: every server update is also pushed to
	// the rack aggregators as a rack-local parameter cache (kCache, one
	// data-sized stream per rack — per pod under HierAggregation), and
	// every non-loopback parameter pull is answered by the puller's own
	// rack aggregator from that cache (pulls that arrive before the
	// cache update wait at the aggregator), so no pull or its data reply
	// ever crosses the core. Only pull-based strategies (NotifyPull,
	// DeferredPull) issue pulls — Immediate-broadcast strategies are
	// unaffected. Requires RackAggregation.
	RackLocalPS bool
	// AggReduceGBps bounds the aggregators' reduction capacity
	// (netsim.Config.AggReduceGBps): payloads queue FIFO at each
	// aggregator and reduce at this many bytes per nanosecond before the
	// aggregation logic sees them. 0 keeps the free switch-side engine.
	// Requires RackAggregation.
	AggReduceGBps float64
	// Faults optionally injects a scripted fault plan: aggregator
	// crash/restart, per-machine straggler windows, link-rate degradation,
	// and worker leave/join, all as deterministic discrete events (see
	// package faults). Aggregator crashes require RackAggregation with an
	// Immediate-broadcast strategy (pod-tier crashes also HierAggregation)
	// and are incompatible with RackLocalPS. A nil plan — and a zero-event
	// one — is byte-identical to no faults at every shard count.
	Faults *faults.Plan
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Machines == 0 {
		out.Machines = 4
	}
	if out.Servers == 0 {
		out.Servers = out.Machines
	}
	if out.Servers > out.Machines {
		panic(fmt.Sprintf("cluster: %d servers on %d machines", out.Servers, out.Machines))
	}
	if out.UpdateRateGBps == 0 {
		out.UpdateRateGBps = 2
	}
	if out.UpdateOverhead == 0 {
		out.UpdateOverhead = 5 * sim.Microsecond
	}
	if out.HostRateGBps == 0 {
		out.HostRateGBps = 3
	}
	if out.HostOverhead == 0 {
		out.HostOverhead = 5 * sim.Microsecond
	}
	if out.ServerThreads == 0 {
		out.ServerThreads = 1
	}
	if out.HostThreads == 0 {
		out.HostThreads = 2
	}
	if out.WarmupIters == 0 {
		out.WarmupIters = 2
	}
	if out.MeasureIters == 0 {
		out.MeasureIters = 8
	}
	return out
}

// Result summarizes a run.
type Result struct {
	Model         string
	Strategy      string
	Machines      int
	BandwidthGbps float64

	// Throughput is the aggregate training throughput (samples/second
	// summed over workers) — the paper's primary metric.
	Throughput float64
	// MeanIterTime is the average measured iteration makespan.
	MeanIterTime sim.Time
	// IterTimes holds each measured iteration's makespan.
	IterTimes []sim.Time
	// ComputeIterTime is the pure-compute iteration time (the upper bound on
	// throughput); the gap to MeanIterTime is communication delay.
	ComputeIterTime sim.Time
	// WarmupEnd is the virtual time at which measurement began (for
	// trimming utilization traces).
	WarmupEnd sim.Time
	// MeasuredIters is the measured iteration count (the divisor of
	// MeanLayerStalls).
	MeasuredIters int
	// LayerStalls[l] is worker 0's cumulative measured-window time spent
	// blocked at layer l waiting for its parameters — the queueing-delay
	// mechanism Figures 1 and 4 of the paper illustrate, and the measured
	// signal the calibrated profile mode feeds back into scheduling.
	LayerStalls []sim.Time

	Events    uint64
	Msgs      int64
	WireBytes int64
	// Preemptions counts egress transmissions parked mid-flight for a more
	// urgent message (0 unless Config.PreemptQuantum > 0).
	Preemptions int64
	// CoreBytes is the payload volume that serialized through the rack
	// uplink/downlink ports (0 on a flat network) — the traffic
	// RackAggregation exists to shrink.
	CoreBytes int64
	// SpineBytes is the payload volume that serialized through the spine
	// uplink/downlink ports (0 without Topology.Pods) — the inter-pod
	// traffic HierAggregation exists to shrink.
	SpineBytes int64

	// Fault counters (all 0 without Config.Faults). FaultsInjected is the
	// scripted event count; AggFailovers the failover actions taken
	// (detected reroutes around a down aggregator, direct re-pushes and
	// recovery pulls, re-push request rounds); DegradedNs the total
	// scripted link-degradation window time; LostReductions the gradient
	// contributions swallowed by down aggregators (each recovered through
	// a direct re-push).
	FaultsInjected int
	AggFailovers   int64
	DegradedNs     int64
	LostReductions int64
}

// TotalStall sums the per-layer forward stalls of worker 0 over the
// measured iterations.
func (r Result) TotalStall() sim.Time {
	var t sim.Time
	for _, s := range r.LayerStalls {
		t += s
	}
	return t
}

// MeanLayerStalls returns the per-iteration mean of LayerStalls, the form
// strategy.CalibrateProfile consumes.
func (r Result) MeanLayerStalls() []sim.Time {
	return strategy.MeanStalls(r.LayerStalls, r.MeasuredIters)
}

// Speedup returns r's throughput relative to base.
func (r Result) Speedup(base Result) float64 { return r.Throughput / base.Throughput }

func (r Result) String() string {
	return fmt.Sprintf("%s/%s x%d @%gGbps: %.1f %s/s (iter %.1f ms, compute %.1f ms)",
		r.Model, r.Strategy, r.Machines, r.BandwidthGbps, r.Throughput,
		"samples", r.MeanIterTime.Millis(), r.ComputeIterTime.Millis())
}

type chunkAgg struct {
	iter  int32
	count int
	done  bool
}

// rackAggState is one rack aggregator's reduction state: per chunk, the
// in-flight iteration and how many of the rack's workers have contributed
// their gradient slice. Iterations strictly serialize per chunk at an
// aggregator (a worker cannot push iteration k before the server's k-1
// update, which needed this rack's k-1 flush), so one slot per chunk
// suffices — the same invariant the server-side chunkAgg relies on.
// Under RackLocalPS the aggregator is also the rack's parameter cache:
// cachedIter[c] is the newest iteration whose kCache update for chunk c
// landed (-1 initially), and pending holds the rack's pulls that arrived
// ahead of their iteration's cache update.
type rackAggState struct {
	agg        []chunkAgg
	cachedIter []int32                 // RackLocalPS only
	pending    map[int32][]pendingPull // RackLocalPS only: chunk -> waiting pulls
}

// podAggState is one pod aggregator's reduction state (HierAggregation):
// the same per-chunk serialization invariant as rackAggState, with rack
// streams as the contributions — each arriving stream carries its rack's
// aggExpect weight, and the flush fires at podExpect.
type podAggState struct {
	agg []chunkAgg
}

type pendingPull struct {
	iter int32
	src  int
}

type procItem struct {
	chunk    int32
	iter     int32
	src      int32
	priority int32
}

// procPool serializes per-byte endpoint processing. It models MXNet's engine
// semantics: up to `threads` items process concurrently, but items for the
// same chunk (key) always serialize because they share an accumulator. The
// queue discipline is pluggable (a sched.Discipline resolved from the
// strategy's Sched name): fifo for baseline strategies, p3 priority ordering
// for the server- and worker-side producer/consumer loops of Section 4.2,
// or any other registered discipline.
type procPool struct {
	threads   int
	inFlight  int
	queue     *sched.Queue[procItem]
	chunkBusy map[int32]bool
	waiting   map[int32][]procItem
	overhead  sim.Time
	rate      float64  // bytes per nanosecond
	proc      sim.Proc // the owning machine's timeline
	done      func(procItem)
}

// newProcPool builds a pool ordered by queue, which must wrap a fresh
// discipline instance (pools never share scheduler state). proc is the
// owning machine's scheduling handle — pool events belong to that LP.
func newProcPool(threads int, overhead sim.Time, rate float64, queue *sched.Queue[procItem], proc sim.Proc) *procPool {
	return &procPool{
		threads:   threads,
		queue:     queue,
		chunkBusy: make(map[int32]bool),
		waiting:   make(map[int32][]procItem),
		overhead:  overhead,
		rate:      rate,
		proc:      proc,
	}
}

// add enqueues an item and starts as many queued items as the thread,
// per-key and credit limits allow. The pool's done callback runs on the
// virtual clock when an item finishes processing.
func (p *procPool) add(cs *clusterSim, it procItem) {
	p.queue.Push(it)
	p.pump(cs)
}

func (p *procPool) pump(cs *clusterSim) {
	for p.inFlight < p.threads {
		it, ok := p.queue.PopReady()
		if !ok {
			return
		}
		if p.chunkBusy[it.chunk] {
			// Deferred on the per-key serialization, not processing yet:
			// refund any credit until the chunk frees up and re-queues it.
			// Cancel, not Done — an adaptive window must not read this
			// refund as a completed transfer.
			p.queue.Cancel(it)
			p.waiting[it.chunk] = append(p.waiting[it.chunk], it)
			continue
		}
		p.start(cs, it)
	}
}

func (p *procPool) start(cs *clusterSim, it procItem) {
	p.chunkBusy[it.chunk] = true
	p.inFlight++
	cost := p.overhead + sim.Time(float64(cs.plan.Chunks[it.chunk].Bytes())/p.rate)
	p.proc.After(cost, func() {
		p.inFlight--
		delete(p.chunkBusy, it.chunk)
		p.queue.Done(it)
		if w := p.waiting[it.chunk]; len(w) > 0 {
			p.queue.Push(w[0])
			if len(w) == 1 {
				delete(p.waiting, it.chunk)
			} else {
				p.waiting[it.chunk] = w[1:]
			}
		}
		p.done(it)
		p.pump(cs)
	})
}

type serverState struct {
	proc *procPool
	agg  []chunkAgg // indexed by chunk ID (only own chunks used)
	// lastDone[c] is the newest iteration whose update completed for chunk
	// c (-1 initially). A pull for iteration <= lastDone is answerable
	// immediately with the current value, exactly as a real KVStore pull
	// returns whatever the store holds; without this, a pull tagged with an
	// older iteration could strand forever once a faster worker's next
	// push resets the aggregation slot.
	lastDone []int32
	pending  map[int32][]pendingPull // chunk ID -> pulls waiting for their iteration
	// seen[c][w] marks the workers whose contribution to chunk c's
	// in-flight barrier has been counted — the dedup that lets crash
	// recovery re-push a possibly-lost contribution without ever counting
	// a worker twice. Allocated only under a crash-scripting fault plan;
	// owned by the server's machine LP like the rest of serverState.
	seen [][]bool
}

type workerState struct {
	readyIter   []int32 // per layer: iteration whose sync delivered current params (-1 = initial)
	recvCount   []int   // per layer: data chunks received for the in-flight sync
	notifyCount []int   // per layer: notifications received (baseline)
	fwdLayer    int
	waitingFwd  bool
	waitSince   sim.Time
	curIter     int32
	bwdDone     []sim.Time // per iteration
	layerStall  []sim.Time // cumulative forward stall per layer

	// Receive-side processing: deserializing and installing an arrived
	// parameter chunk costs CPU time (the receiver-side producer/consumer
	// of Section 4.2; priority-ordered under P3).
	proc *procPool
}

type clusterSim struct {
	cfg    Config
	exec   sim.Exec
	procs  []sim.Proc // one per machine
	net    *netsim.Network
	plan   *core.Plan
	timing *model.Timing
	layers int
	total  int32 // iterations to run

	// srvMachine[s] is the machine hosting server s; machineSrv is the
	// inverse (-1 on machines without a server). Identity by default —
	// the paper's co-located deployment.
	srvMachine []int
	machineSrv []int

	// Rack-aggregation state (RackAggregation only). rackAggs[r] is owned
	// by rack r's aggregator LP: it is touched exclusively from AggDeliver
	// callbacks, which the netsim contract runs on that LP's timeline, so
	// the sharded engine never races on it. rackPop[r] is the machine
	// count of rack r (the last rack may be partial). podAggs[p] is
	// likewise owned by pod p's aggregator LP (HierAggregation only);
	// rpp is the racks-per-pod count and podPop[p] the machine count of
	// pod p.
	rackAggs []rackAggState
	rackPop  []int
	podAggs  []podAggState
	rpp      int
	podPop   []int

	workers  []workerState
	servers  []serverState
	jitter   [][]float64 // [worker][iter]
	updRate  float64     // bytes per nanosecond
	hostRate float64     // bytes per nanosecond

	// fs is the fault-injection wiring (Config.Faults); nil on fault-free
	// runs, so every fault check is a single nil test on the hot paths.
	fs *faultState
}

// RunCalibrated is the two-pass calibrated mode: the first pass runs cfg as
// given (static FLOP-derived profile unless cfg.Profile overrides it) and
// records the per-layer consumption stalls it actually observed; the second
// pass re-runs with the profile rebuilt from those measured stalls
// (strategy.CalibrateProfile), so model-aware disciplines rank against the
// iteration timeline the cluster really produces instead of the idealized
// compute-only one. Both results are returned, first the static pass.
func RunCalibrated(cfg Config) (static, calibrated Result) {
	static = Run(cfg)
	// Profile at the same wire rate the runs use: BandwidthGbps when set,
	// else the rate of an explicit Net override (mirroring newClusterSim).
	gbps := cfg.BandwidthGbps
	if gbps <= 0 && cfg.Net != nil {
		gbps = cfg.Net.BandwidthGbps
	}
	cfg.Profile = strategy.CalibrateProfile(cfg.Model, gbps, static.MeanLayerStalls())
	calibrated = Run(cfg)
	return static, calibrated
}

// Run executes one simulated training run and returns its Result.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	if err := cfg.Model.Validate(); err != nil {
		panic(fmt.Sprintf("cluster: invalid model: %v", err))
	}
	cs := newClusterSim(cfg)
	cs.start()
	cs.exec.Run()
	return cs.result()
}

func newClusterSim(cfg Config) *clusterSim {
	m := cfg.Model
	n := cfg.Machines

	var netCfg netsim.Config
	if cfg.Net != nil {
		netCfg = *cfg.Net
	} else {
		netCfg = netsim.DefaultConfig(cfg.BandwidthGbps)
	}
	if cfg.BandwidthGbps > 0 {
		netCfg.BandwidthGbps = cfg.BandwidthGbps
	}
	netCfg.Egress = cfg.Strategy.Discipline()
	if cfg.PreemptQuantum > 0 {
		netCfg.PreemptQuantum = cfg.PreemptQuantum
	}
	if cfg.Topology.RackSize > 0 {
		netCfg.Topology = cfg.Topology
	}
	if cfg.RackAggregation {
		if cfg.Topology.RackSize <= 0 {
			panic("cluster: RackAggregation needs a rack topology (Topology.RackSize > 0)")
		}
		if cfg.Strategy.Async {
			panic("cluster: RackAggregation is a synchronous-reduction optimization; ASGD has no aggregation barrier to fold into the rack")
		}
		// Set before the engine is built: the aggregator LPs change the
		// LP count and shard assignment.
		netCfg.Aggregation = true
		netCfg.AggReduceGBps = cfg.AggReduceGBps
	} else {
		if cfg.HierAggregation {
			panic("cluster: HierAggregation without RackAggregation (there are no rack aggregators to stack a pod tier on)")
		}
		if cfg.RackLocalPS {
			panic("cluster: RackLocalPS without RackAggregation (there are no rack aggregators to cache parameters on)")
		}
		if cfg.AggReduceGBps > 0 {
			panic("cluster: AggReduceGBps without RackAggregation (there are no aggregators to rate-limit)")
		}
	}
	if cfg.HierAggregation && cfg.Topology.Pods <= 0 {
		panic("cluster: HierAggregation needs a spine tier (Topology.Pods > 0)")
	}
	if cfg.Faults != nil {
		validateFaults(&cfg, n)
	}
	// Model-aware disciplines (tictac) see the same timing the simulator
	// runs on unless a calibrated profile overrides it; model-blind
	// disciplines ignore the profile entirely.
	prof := cfg.Profile
	if prof == nil {
		prof = strategy.ComputeProfile(m, netCfg.BandwidthGbps)
	}
	netCfg.Profile = prof

	// Engine selection: the exact legacy single-heap engine for Shards
	// <= 1 (optionally a caller-supplied reusable one), the
	// conservative-lookahead parallel engine above that. The lookahead is
	// the topology's minimum cross-LP latency; shard assignment is
	// rack-aligned so only the core hop crosses shards.
	shards := cfg.Shards
	if shards > n {
		shards = n
	}
	var exec sim.Exec
	if shards >= 2 {
		if cfg.Recorder != nil {
			panic("cluster: Recorder needs Shards <= 1 (shared utilization buckets)")
		}
		p, err := sim.NewParallel(shards, netCfg.LPShards(n, shards), netCfg.Lookahead())
		if err != nil {
			panic(fmt.Sprintf("cluster: %v", err))
		}
		exec = p
	} else {
		eng := cfg.Engine
		if eng != nil {
			eng.Reset()
		} else {
			eng = &sim.Engine{}
		}
		exec = sim.Single{Eng: eng}
	}

	cs := &clusterSim{
		cfg:    cfg,
		exec:   exec,
		plan:   cfg.Strategy.Partition(m, cfg.Servers),
		timing: model.NewTiming(m),
		layers: len(m.Layers),
		total:  int32(cfg.WarmupIters + cfg.MeasureIters),
	}
	cs.procs = make([]sim.Proc, n)
	for i := range cs.procs {
		cs.procs[i] = exec.Proc(i)
	}

	// Server placement: identity (server s co-located on machine s) unless
	// ServerMachines overrides it.
	cs.srvMachine = make([]int, cfg.Servers)
	cs.machineSrv = make([]int, n)
	for i := range cs.machineSrv {
		cs.machineSrv[i] = -1
	}
	if cfg.ServerMachines != nil && len(cfg.ServerMachines) != cfg.Servers {
		panic(fmt.Sprintf("cluster: %d ServerMachines for %d servers", len(cfg.ServerMachines), cfg.Servers))
	}
	for s := range cs.srvMachine {
		mach := s
		if cfg.ServerMachines != nil {
			mach = cfg.ServerMachines[s]
		}
		if mach < 0 || mach >= n {
			panic(fmt.Sprintf("cluster: server %d placed on machine %d of %d", s, mach, n))
		}
		if cs.machineSrv[mach] != -1 {
			panic(fmt.Sprintf("cluster: servers %d and %d both placed on machine %d", cs.machineSrv[mach], s, mach))
		}
		cs.srvMachine[s] = mach
		cs.machineSrv[mach] = s
	}

	if cfg.RackAggregation {
		racks := cfg.Topology.NumRacks(n)
		cs.rackPop = make([]int, racks)
		cs.rackAggs = make([]rackAggState, racks)
		for r := 0; r < racks; r++ {
			cs.rackPop[r] = cfg.Topology.RackMachines(n, r)
			agg := make([]chunkAgg, cs.plan.NumChunks())
			for c := range agg {
				agg[c].iter = -1
			}
			cs.rackAggs[r] = rackAggState{agg: agg}
			if cfg.RackLocalPS {
				cached := make([]int32, cs.plan.NumChunks())
				for c := range cached {
					cached[c] = -1
				}
				cs.rackAggs[r].cachedIter = cached
				cs.rackAggs[r].pending = make(map[int32][]pendingPull)
			}
		}
		if cfg.HierAggregation {
			cs.rpp = racks / cfg.Topology.Pods
			cs.podAggs = make([]podAggState, cfg.Topology.Pods)
			cs.podPop = make([]int, cfg.Topology.Pods)
			for p := range cs.podAggs {
				agg := make([]chunkAgg, cs.plan.NumChunks())
				for c := range agg {
					agg[c].iter = -1
				}
				cs.podAggs[p] = podAggState{agg: agg}
				for r := p * cs.rpp; r < (p+1)*cs.rpp; r++ {
					cs.podPop[p] += cs.rackPop[r]
				}
			}
		}
		netCfg.AggDeliver = cs.aggDeliver
	}
	if cfg.Faults != nil {
		// Builds cs.fs and, for crash plans, sets netCfg.AggDrop — which
		// must land before the network is constructed.
		cs.newFaultState(&netCfg)
	}
	cs.net = netsim.NewOnExec(exec, n, netCfg, cs.deliver, cfg.Recorder)
	cs.updRate = cfg.UpdateRateGBps // GB/s == bytes/ns
	cs.hostRate = cfg.HostRateGBps  // GB/s == bytes/ns

	// Every processing pool runs the strategy's discipline on a fresh
	// instance; the item view exposes the chunk's wire priority and size,
	// with the originating worker as the flow key of per-destination gates
	// (and the axis damped's epoch rank interleaves same-layer items
	// across). The owning machine's index seeds source-aware disciplines.
	itemView := func(it procItem) sched.Item {
		return sched.Item{Priority: it.priority, Bytes: cs.plan.Chunks[it.chunk].Bytes(), Dest: it.src}
	}
	newQueue := func(owner int) *sched.Queue[procItem] {
		disc := sched.ApplyProfile(sched.MustByName(cfg.Strategy.Discipline()), prof)
		sched.ApplySource(disc, int32(owner))
		return sched.NewQueue(disc, itemView)
	}
	cs.servers = make([]serverState, cfg.Servers)
	for s := range cs.servers {
		srv := s
		cs.servers[s] = serverState{
			proc:     newProcPool(cfg.ServerThreads, cfg.UpdateOverhead, cfg.UpdateRateGBps, newQueue(s), cs.procs[cs.srvMachine[s]]),
			agg:      make([]chunkAgg, cs.plan.NumChunks()),
			lastDone: make([]int32, cs.plan.NumChunks()),
			pending:  make(map[int32][]pendingPull),
		}
		for c := range cs.servers[s].agg {
			cs.servers[s].agg[c].iter = -1
			cs.servers[s].lastDone[c] = -1
		}
		if cs.fs != nil && cs.fs.hasCrash {
			cs.servers[s].seen = make([][]bool, cs.plan.NumChunks())
			for c := range cs.servers[s].seen {
				cs.servers[s].seen[c] = make([]bool, n)
			}
		}
		cs.servers[s].proc.done = func(it procItem) { cs.pushProcessed(srv, it) }
	}

	cs.workers = make([]workerState, n)
	for w := range cs.workers {
		ws := &cs.workers[w]
		ws.readyIter = make([]int32, cs.layers)
		for l := range ws.readyIter {
			ws.readyIter[l] = -1
		}
		ws.recvCount = make([]int, cs.layers)
		ws.notifyCount = make([]int, cs.layers)
		ws.bwdDone = make([]sim.Time, cs.total)
		ws.layerStall = make([]sim.Time, cs.layers)
		ws.proc = newProcPool(cfg.HostThreads, cfg.HostOverhead, cfg.HostRateGBps, newQueue(w), cs.procs[w])
		wk := w
		ws.proc.done = func(it procItem) { cs.installChunk(wk, it.chunk, it.iter) }
	}

	// Precompute per-(worker, iteration) compute jitter so that event
	// ordering cannot perturb the random sequence.
	cs.jitter = make([][]float64, n)
	rng := rand.New(rand.NewPCG(uint64(cfg.Seed), uint64(cfg.Seed)^0x9e3779b97f4a7c15))
	sigma := m.ComputeJitter
	for w := range cs.jitter {
		cs.jitter[w] = make([]float64, cs.total)
		for i := range cs.jitter[w] {
			if sigma == 0 {
				cs.jitter[w][i] = 1
				continue
			}
			cs.jitter[w][i] = math.Exp(rng.NormFloat64()*sigma - sigma*sigma/2)
		}
	}
	if cs.fs != nil {
		// Construction time, before the engine runs: the scripted events
		// get the earliest insertion sequence numbers on their LPs, the
		// LP-quantization rule fault determinism rests on.
		cs.scheduleFaults()
	}
	return cs
}

func (cs *clusterSim) start() {
	if cs.cfg.Recorder != nil {
		cs.cfg.Recorder.Start(0)
	}
	for w := 0; w < cs.cfg.Machines; w++ {
		cs.advanceForward(w)
	}
}

// ---- worker compute state machine ----

func (cs *clusterSim) scaled(w int, iter int32, d sim.Time) sim.Time {
	t := sim.Time(float64(d) * cs.jitter[w][iter])
	if cs.fs != nil {
		// A straggler window multiplies compute steps that start inside it
		// (read off the static plan at the worker's own clock — no events,
		// no cross-LP state).
		if f := cs.fs.plan.SlowFactor(w, int64(cs.procs[w].Now())); f != 1 {
			t = sim.Time(float64(t) * f)
		}
	}
	return t
}

func (cs *clusterSim) advanceForward(w int) {
	ws := &cs.workers[w]
	if ws.fwdLayer == cs.layers {
		cs.startBackward(w)
		return
	}
	l := ws.fwdLayer
	if ws.readyIter[l] < ws.curIter-1 {
		if !ws.waitingFwd {
			ws.waitingFwd = true
			ws.waitSince = cs.procs[w].Now()
			if cs.fs != nil && cs.fs.hasCrash {
				// A broadcast stream dropped at a down aggregator would leave
				// this wait unsatisfiable: re-pull directly after a timeout.
				cs.armStallCheck(w, l, ws.curIter, ws.waitSince)
			}
		}
		return
	}
	if ws.waitingFwd {
		ws.waitingFwd = false
		if ws.curIter >= int32(cs.cfg.WarmupIters) {
			ws.layerStall[l] += cs.procs[w].Now() - ws.waitSince
		}
	}
	cs.after(w, cs.scaled(w, ws.curIter, cs.timing.Fwd[l]), func() {
		ws.fwdLayer = l + 1
		cs.advanceForward(w)
	})
}

func (cs *clusterSim) startBackward(w int) {
	cs.stepBackward(w, cs.layers-1)
}

func (cs *clusterSim) stepBackward(w, l int) {
	ws := &cs.workers[w]
	cs.after(w, cs.scaled(w, ws.curIter, cs.timing.Bwd[l]), func() {
		cs.pushLayer(w, l)
		if l > 0 {
			cs.stepBackward(w, l-1)
			return
		}
		cs.backwardDone(w)
	})
}

func (cs *clusterSim) pushLayer(w, l int) {
	ws := &cs.workers[w]
	for _, id := range cs.plan.LayerChunks(l) {
		c := cs.plan.Chunks[id]
		m := netsim.Message{
			From: w, To: cs.srvMachine[c.Server], Bytes: c.Bytes(), Priority: int32(c.Priority),
			Kind: kPush, Chunk: int32(id), Iter: ws.curIter, Src: int32(w),
		}
		// Under rack aggregation every push that would cross the NIC routes
		// through the worker's own rack aggregator instead — including
		// pushes whose server is rack-local, which cuts the server's NIC
		// fan-in from rackPop to one. Only the co-located worker's loopback
		// (shared memory, never on the wire) stays direct. A worker that
		// has detected its rack aggregator down falls back to the direct
		// push until the restart is detected.
		if cs.rackAggs != nil && w != m.To {
			rack := cs.cfg.Topology.RackOf(w)
			if cs.fs != nil && cs.fs.hasCrash && cs.rackDownDetected(rack, cs.procs[w].Now()) {
				cs.fs.machFailovers[w]++
			} else {
				m.To = rack
				m.ToAgg = true
			}
		}
		if cs.fs != nil && cs.fs.hasCrash {
			cs.fs.pushedIter[w][id] = ws.curIter
		}
		cs.net.Send(m)
	}
}

func (cs *clusterSim) backwardDone(w int) {
	ws := &cs.workers[w]
	ws.bwdDone[ws.curIter] = cs.procs[w].Now()
	if cs.cfg.Strategy.Pull == strategy.DeferredPull {
		// TensorFlow semantics: the next graph execution begins now and
		// issues receive ops for every parameter at once.
		for id := range cs.plan.Chunks {
			cs.sendPull(w, int32(id), ws.curIter)
		}
	}
	ws.curIter++
	if ws.curIter < cs.total {
		ws.fwdLayer = 0
		cs.advanceForward(w)
	}
}

// ---- message dispatch ----

func (cs *clusterSim) deliver(m netsim.Message) {
	switch m.Kind {
	case kPush:
		cs.onPush(m)
	case kNotify:
		cs.onNotify(m)
	case kPull:
		cs.onPull(m)
	case kData:
		cs.onData(m)
	case kRepush:
		cs.onRepush(m)
	default:
		panic(fmt.Sprintf("cluster: unknown message kind %d", m.Kind))
	}
}

// ---- server side ----

func (cs *clusterSim) onPush(m netsim.Message) {
	cs.servers[cs.machineSrv[m.To]].proc.add(cs, procItem{chunk: m.Chunk, iter: m.Iter, src: m.Src, priority: m.Priority})
}

// ---- rack and pod aggregators (RackAggregation only) ----

// aggDeliver is the netsim AggDeliver handler, running on the addressed
// aggregator's LP.
//
// Rack tier: gradient pushes reduce — the rack's last contribution per
// (chunk, iteration) flushes one reduced push, same bytes, weighted as
// the whole rack, to the chunk's server (or, under HierAggregation, up to
// the pod aggregator for the second reduction stage). Broadcast traffic
// (immediate data, notifies) fans out to the rack's machines at ToR line
// rate, skipping the server's own machine (its worker got the loopback
// copy). Under RackLocalPS the rack aggregator additionally acts as the
// rack's parameter cache: kCache updates refresh it (answering any pulls
// that arrived early), and kPull requests are served rack-locally from
// it.
//
// Pod tier (HierAggregation): rack streams reduce again — each arriving
// stream counts as its rack's weight, and podExpect flushes ONE stream
// per pod to the server; broadcast traffic descends, one copy per rack of
// the pod, re-entering the rack aggregators above.
func (cs *clusterSim) aggDeliver(tier, idx int, m netsim.Message) {
	if tier == netsim.TierPod {
		cs.podAggDeliver(idx, m)
		return
	}
	rack := idx
	switch m.Kind {
	case kPush:
		a := &cs.rackAggs[rack].agg[m.Chunk]
		if a.iter != m.Iter {
			a.iter = m.Iter
			a.count = 0
		}
		a.count++
		if a.count == cs.aggExpect(rack, m.Chunk) {
			out := m
			out.Src = int32(-1 - rack)
			toPod := cs.podAggs != nil
			if toPod && cs.fs != nil && cs.fs.hasCrash &&
				cs.podDownDetected(cs.podOf(rack), cs.net.AggNow(netsim.TierRack, rack)) {
				// Hierarchical failover: re-parent the reduced rack stream
				// from the down pod aggregator straight to the server.
				toPod = false
				cs.fs.aggFailovers[rack]++
			}
			if toPod {
				out.To = cs.podOf(rack)
				out.ToAgg = true
				out.AggTier = netsim.TierPod
			} else {
				out.To = cs.srvMachine[cs.plan.Chunks[m.Chunk].Server]
				out.ToAgg = false
			}
			cs.net.AggSend(netsim.TierRack, rack, out)
			// Flushed contributions are accounted for downstream: reset the
			// slot so a later crash on this aggregator cannot count them as
			// lost (event-neutral — a completed slot never flushes again).
			a.count = 0
		}
	case kData, kNotify:
		skip := -1
		if srvM := cs.srvMachine[int(m.Src)]; cs.cfg.Topology.RackOf(srvM) == rack {
			skip = srvM
		}
		cs.net.AggFanout(netsim.TierRack, rack, m, skip)
	case kCache:
		ra := &cs.rackAggs[rack]
		if m.Iter > ra.cachedIter[m.Chunk] {
			ra.cachedIter[m.Chunk] = m.Iter
		}
		pend := ra.pending[m.Chunk]
		if len(pend) == 0 {
			return
		}
		rest := pend[:0]
		for _, p := range pend {
			if p.iter <= m.Iter {
				cs.aggServePull(rack, m.Chunk, p.iter, p.src)
			} else {
				rest = append(rest, p)
			}
		}
		if len(rest) == 0 {
			delete(ra.pending, m.Chunk)
		} else {
			ra.pending[m.Chunk] = rest
		}
	case kPull:
		ra := &cs.rackAggs[rack]
		if ra.cachedIter[m.Chunk] >= m.Iter {
			cs.aggServePull(rack, m.Chunk, m.Iter, int(m.Src))
			return
		}
		ra.pending[m.Chunk] = append(ra.pending[m.Chunk], pendingPull{iter: m.Iter, src: int(m.Src)})
	default:
		panic(fmt.Sprintf("cluster: message kind %d has no rack-aggregator semantics", m.Kind))
	}
}

// aggServePull answers a rack-local parameter pull from the rack
// aggregator's cache (RackLocalPS): the data copy pays propagation plus
// the puller's ingress, never a core port.
func (cs *clusterSim) aggServePull(rack int, chunk, iter int32, dst int) {
	c := cs.plan.Chunks[chunk]
	cs.net.AggSend(netsim.TierRack, rack, netsim.Message{
		From: cs.srvMachine[c.Server], To: dst, Bytes: c.Bytes(), Priority: int32(c.Priority),
		Kind: kData, Chunk: chunk, Iter: iter, Src: int32(c.Server),
	})
}

// podAggDeliver handles pod-tier aggregator traffic (HierAggregation).
func (cs *clusterSim) podAggDeliver(pod int, m netsim.Message) {
	switch m.Kind {
	case kPush:
		a := &cs.podAggs[pod].agg[m.Chunk]
		if a.iter != m.Iter {
			a.iter = m.Iter
			a.count = 0
		}
		a.count += cs.aggExpect(int(-1-m.Src), m.Chunk)
		if a.count == cs.podExpect(pod, m.Chunk) {
			out := m
			out.To = cs.srvMachine[cs.plan.Chunks[m.Chunk].Server]
			out.ToAgg = false
			out.AggTier = 0
			out.Src = int32(-1 - len(cs.rackPop) - pod)
			cs.net.AggSend(netsim.TierPod, pod, out)
			a.count = 0
		}
	case kData, kNotify, kCache:
		// Descend the broadcast: one copy per rack of the pod, skipping a
		// rack whose only machine is the broadcasting server (its worker
		// got the loopback copy, the rack has nobody else to fan to, and
		// nobody there will ever pull from the cache).
		skip := -1
		srvM := cs.srvMachine[int(m.Src)]
		if cs.podOf(cs.cfg.Topology.RackOf(srvM)) == pod {
			if r := cs.cfg.Topology.RackOf(srvM); cs.rackPop[r] == 1 {
				skip = r
			}
		}
		if cs.fs != nil && cs.fs.hasCrash {
			now := cs.net.AggNow(netsim.TierPod, pod)
			lo, hi := pod*cs.rpp, (pod+1)*cs.rpp
			anyDown := false
			for r := lo; r < hi; r++ {
				if r != skip && cs.rackDownDetected(r, now) {
					anyDown = true
					break
				}
			}
			if anyDown {
				// Failover fan: streams for down rack aggregators go per
				// machine instead (each copy serializes through the rack
				// downlink individually — the cost of losing the ToR fanout).
				cs.fs.aggFailovers[len(cs.rackPop)+pod]++
				for r := lo; r < hi; r++ {
					if r == skip {
						continue
					}
					if cs.rackDownDetected(r, now) {
						mlo := r * cs.cfg.Topology.RackSize
						for w := mlo; w < mlo+cs.rackPop[r]; w++ {
							if w == srvM {
								continue
							}
							c := m
							c.To = w
							c.ToAgg = false
							c.AggTier = 0
							cs.net.AggSend(netsim.TierPod, pod, c)
						}
						continue
					}
					c := m
					c.To = r
					c.ToAgg = true
					c.AggTier = netsim.TierRack
					cs.net.AggSend(netsim.TierPod, pod, c)
				}
				return
			}
		}
		cs.net.AggFanout(netsim.TierPod, pod, m, skip)
	default:
		panic(fmt.Sprintf("cluster: message kind %d has no pod-aggregator semantics", m.Kind))
	}
}

// podOf maps a rack to its pod (HierAggregation only).
func (cs *clusterSim) podOf(rack int) int { return rack / cs.rpp }

// aggExpect is the contribution count that completes rack's reduction of
// chunk — every machine of the rack, except the chunk's own server
// machine when it lives there (its co-located worker pushes through
// shared memory, counted individually by the server). It is also the
// weight the reduced push carries at the next aggregation barrier (the
// server's, or the pod aggregator's under HierAggregation).
func (cs *clusterSim) aggExpect(rack int, chunk int32) int {
	expect := cs.rackPop[rack]
	if srvM := cs.srvMachine[cs.plan.Chunks[chunk].Server]; cs.cfg.Topology.RackOf(srvM) == rack {
		expect--
	}
	return expect
}

// podExpect is the contribution weight that completes pod's reduction of
// chunk: the sum of its racks' aggExpect weights. Racks with weight 0
// (a single-machine rack hosting the chunk's server) never flush, so the
// sum counts exactly the streams that arrive.
func (cs *clusterSim) podExpect(pod int, chunk int32) int {
	expect := 0
	for r := pod * cs.rpp; r < (pod+1)*cs.rpp; r++ {
		expect += cs.aggExpect(r, chunk)
	}
	return expect
}

// pushProcessed runs when the server finishes aggregating one worker's push
// of a chunk; the Nth push completes the update. In Async (ASGD) mode every
// push is its own update, answered only to the pushing worker. A reduced
// push (Src < 0 under RackAggregation) counts as every worker whose
// gradient was folded into it: Src encodes -(1+rack) for a rack stream
// and -(1+racks+pod) for a pod stream (HierAggregation).
func (cs *clusterSim) pushProcessed(srv int, it procItem) {
	if cs.cfg.Strategy.Async {
		cs.sendData(srv, it.chunk, it.iter, int(it.src))
		return
	}
	if cs.fs != nil && cs.fs.hasCrash {
		cs.pushProcessedFaults(srv, it)
		return
	}
	s := &cs.servers[srv]
	agg := &s.agg[it.chunk]
	if agg.iter != it.iter {
		agg.iter = it.iter
		agg.count = 0
		agg.done = false
	}
	if it.src < 0 {
		if idx := int(-1 - it.src); idx >= len(cs.rackPop) {
			agg.count += cs.podExpect(idx-len(cs.rackPop), it.chunk)
		} else {
			agg.count += cs.aggExpect(idx, it.chunk)
		}
	} else {
		agg.count++
	}
	if agg.count == cs.cfg.Machines {
		agg.done = true
		if it.iter > s.lastDone[it.chunk] {
			s.lastDone[it.chunk] = it.iter
		}
		cs.onUpdated(srv, it.chunk, it.iter)
	}
}

func (cs *clusterSim) onUpdated(srv int, chunk, iter int32) {
	c := cs.plan.Chunks[chunk]
	// broadcast sends one message per worker — or, under rack aggregation,
	// one loopback to the co-located worker plus one rack-stream per rack
	// for its ToR to fan out (one pod-stream per pod under hierarchical
	// aggregation, descending the spine once and fanning at each tier), so
	// the server's egress serializes per-rack (per-pod) instead of
	// per-worker and only one copy per rack (pod) crosses the core
	// (spine). kCache streams address the rack caches only: no loopback —
	// the co-located worker never pulls over the wire.
	broadcast := func(bytes int64, kind uint8) {
		srvM := cs.srvMachine[srv]
		if cs.rackAggs == nil {
			for w := 0; w < cs.cfg.Machines; w++ {
				cs.net.Send(netsim.Message{
					From: srvM, To: w, Bytes: bytes, Priority: int32(c.Priority),
					Kind: kind, Chunk: chunk, Iter: iter, Src: int32(srv),
				})
			}
			return
		}
		if kind != kCache {
			cs.net.Send(netsim.Message{
				From: srvM, To: srvM, Bytes: bytes, Priority: int32(c.Priority),
				Kind: kind, Chunk: chunk, Iter: iter, Src: int32(srv),
			})
		}
		crash := cs.fs != nil && cs.fs.hasCrash
		var now sim.Time
		if crash {
			now = cs.procs[srvM].Now()
		}
		srvRack := cs.cfg.Topology.RackOf(srvM)
		// rackStream ships rack r's copy: one ToR stream normally, or —
		// when the rack's aggregator is down as detected now — one direct
		// copy per machine of the rack (the loopback covered srvM).
		rackStream := func(r int) {
			if crash && cs.rackDownDetected(r, now) {
				cs.fs.machFailovers[srvM]++
				lo := r * cs.cfg.Topology.RackSize
				for w := lo; w < lo+cs.rackPop[r]; w++ {
					if w == srvM {
						continue
					}
					cs.net.Send(netsim.Message{
						From: srvM, To: w, Bytes: bytes, Priority: int32(c.Priority),
						Kind: kind, Chunk: chunk, Iter: iter, Src: int32(srv),
					})
				}
				return
			}
			cs.net.Send(netsim.Message{
				From: srvM, To: r, ToAgg: true, Bytes: bytes, Priority: int32(c.Priority),
				Kind: kind, Chunk: chunk, Iter: iter, Src: int32(srv),
			})
		}
		if cs.podAggs != nil {
			srvPod := cs.podOf(srvRack)
			for p := range cs.podPop {
				if p == srvPod && cs.podPop[p] == 1 {
					continue // the loopback already reached the whole pod
				}
				if crash && cs.podDownDetected(p, now) {
					// The pod stream would die at the down pod aggregator:
					// descend one tier and ship per-rack streams instead.
					cs.fs.machFailovers[srvM]++
					for r := p * cs.rpp; r < (p+1)*cs.rpp; r++ {
						if r == srvRack && cs.rackPop[r] == 1 {
							continue
						}
						rackStream(r)
					}
					continue
				}
				cs.net.Send(netsim.Message{
					From: srvM, To: p, ToAgg: true, AggTier: netsim.TierPod,
					Bytes: bytes, Priority: int32(c.Priority),
					Kind: kind, Chunk: chunk, Iter: iter, Src: int32(srv),
				})
			}
			return
		}
		for r := range cs.rackPop {
			if r == srvRack && cs.rackPop[r] == 1 {
				continue // the loopback already reached the whole rack
			}
			rackStream(r)
		}
	}
	switch cs.cfg.Strategy.Pull {
	case strategy.Immediate:
		broadcast(c.Bytes(), kData)
	case strategy.NotifyPull:
		broadcast(ctlBytes, kNotify)
	}
	// The rack-local parameter cache refreshes on every update: one
	// data-sized stream per rack (per pod under HierAggregation) — the
	// same volume an Immediate broadcast would ship, but pull-mode
	// strategies then answer every pull inside the rack.
	if cs.cfg.RackLocalPS && cs.cfg.Strategy.Pull != strategy.Immediate {
		broadcast(c.Bytes(), kCache)
	}
	// Serve any pulls that were waiting for this (or an older) iteration,
	// regardless of pull mode: the stored value now satisfies them.
	s := &cs.servers[srv]
	pend := s.pending[chunk]
	if len(pend) == 0 {
		return
	}
	rest := pend[:0]
	for _, p := range pend {
		if p.iter <= iter {
			cs.sendData(srv, chunk, p.iter, p.src)
		} else {
			rest = append(rest, p)
		}
	}
	if len(rest) == 0 {
		delete(s.pending, chunk)
	} else {
		s.pending[chunk] = rest
	}
}

func (cs *clusterSim) sendData(srv int, chunk, iter int32, dst int) {
	c := cs.plan.Chunks[chunk]
	cs.net.Send(netsim.Message{
		From: cs.srvMachine[srv], To: dst, Bytes: c.Bytes(), Priority: int32(c.Priority),
		Kind: kData, Chunk: chunk, Iter: iter, Src: int32(srv),
	})
}

func (cs *clusterSim) onPull(m netsim.Message) {
	srv := cs.machineSrv[m.To]
	s := &cs.servers[srv]
	if s.lastDone[m.Chunk] >= m.Iter {
		// The requested (or a newer) update already landed: answer with
		// the current value, as a real key-value store does.
		cs.sendData(srv, m.Chunk, m.Iter, int(m.Src))
		return
	}
	s.pending[m.Chunk] = append(s.pending[m.Chunk], pendingPull{iter: m.Iter, src: int(m.Src)})
}

// ---- worker receive side ----

func (cs *clusterSim) onNotify(m netsim.Message) {
	w := m.To
	ws := &cs.workers[w]
	l := cs.plan.Chunks[m.Chunk].Layer
	ws.notifyCount[l]++
	if ws.notifyCount[l] < len(cs.plan.LayerChunks(l)) {
		return
	}
	// All shards of this layer updated: issue the pulls (MXNet semantics).
	ws.notifyCount[l] = 0
	for _, id := range cs.plan.LayerChunks(l) {
		cs.sendPull(w, int32(id), m.Iter)
	}
}

// sendPull issues worker w's parameter pull for a chunk: a pull to a
// co-located server stays loopback (shared memory), and under RackLocalPS
// every other pull goes to the worker's own rack aggregator, which
// answers from the rack's parameter cache — so neither the pull nor its
// data reply ever crosses the core.
func (cs *clusterSim) sendPull(w int, id, iter int32) {
	c := cs.plan.Chunks[id]
	m := netsim.Message{
		From: w, To: cs.srvMachine[c.Server], Bytes: ctlBytes, Priority: int32(c.Priority),
		Kind: kPull, Chunk: id, Iter: iter, Src: int32(w),
	}
	if cs.cfg.RackLocalPS && w != m.To {
		m.To = cs.cfg.Topology.RackOf(w)
		m.ToAgg = true
	}
	cs.net.Send(m)
}

func (cs *clusterSim) onData(m netsim.Message) {
	cs.workers[m.To].proc.add(cs, procItem{chunk: m.Chunk, iter: m.Iter, src: m.Src, priority: m.Priority})
}

// installChunk marks an updated parameter chunk as usable by the next
// forward pass and unblocks the worker if it was stalled on this layer.
func (cs *clusterSim) installChunk(w int, chunk, iter int32) {
	if fs := cs.fs; fs != nil && fs.hasCrash {
		// Crash recovery can deliver the same chunk twice (re-pull plus the
		// original broadcast): only the first installation of an iteration
		// counts, keeping recvCount consistent.
		if fs.gotIter[w][chunk] >= iter {
			return
		}
		fs.gotIter[w][chunk] = iter
	}
	ws := &cs.workers[w]
	l := cs.plan.Chunks[chunk].Layer
	ws.recvCount[l]++
	if ws.recvCount[l] < len(cs.plan.LayerChunks(l)) {
		return
	}
	ws.recvCount[l] = 0
	ws.readyIter[l] = iter
	if ws.waitingFwd && ws.fwdLayer == l {
		cs.advanceForward(w)
	}
}

// ---- results ----

func (cs *clusterSim) result() Result {
	n := cs.cfg.Machines
	// A wedged protocol leaves some worker's final iteration timestamp at
	// zero after the event queue drained: fail loudly instead of reporting
	// nonsense.
	for w := 0; w < n; w++ {
		if cs.workers[w].bwdDone[cs.total-1] == 0 {
			panic(fmt.Sprintf("cluster: worker %d never finished iteration %d (%s/%s, %d servers): protocol wedged",
				w, cs.total-1, cs.cfg.Model.Name, cs.cfg.Strategy.Name, cs.cfg.Servers))
		}
	}
	makespan := func(iter int) sim.Time {
		var t sim.Time
		for w := 0; w < n; w++ {
			if cs.workers[w].bwdDone[iter] > t {
				t = cs.workers[w].bwdDone[iter]
			}
		}
		return t
	}
	warmEnd := makespan(cs.cfg.WarmupIters - 1)
	last := makespan(int(cs.total) - 1)
	elapsed := last - warmEnd
	samples := float64(cs.cfg.MeasureIters * n * cs.cfg.Model.BatchSize)

	iterTimes := make([]sim.Time, 0, cs.cfg.MeasureIters)
	prev := warmEnd
	var sum sim.Time
	for i := cs.cfg.WarmupIters; i < int(cs.total); i++ {
		t := makespan(i)
		iterTimes = append(iterTimes, t-prev)
		sum += t - prev
		prev = t
	}

	res := Result{
		Model:           cs.cfg.Model.Name,
		Strategy:        cs.cfg.Strategy.Name,
		Machines:        n,
		BandwidthGbps:   cs.cfg.BandwidthGbps,
		Throughput:      samples / elapsed.Seconds(),
		MeanIterTime:    sum / sim.Time(len(iterTimes)),
		IterTimes:       iterTimes,
		ComputeIterTime: cs.timing.IterCompute,
		WarmupEnd:       warmEnd,
		MeasuredIters:   cs.cfg.MeasureIters,
		LayerStalls:     cs.workers[0].layerStall,
		Events:          cs.exec.Processed(),
		Msgs:            cs.net.MsgsDelivered(),
		WireBytes:       cs.net.BytesDelivered(),
		Preemptions:     cs.net.Preemptions(),
		CoreBytes:       cs.net.CoreBytes(),
		SpineBytes:      cs.net.SpineBytes(),
	}
	if cs.fs != nil {
		cs.faultCounters(&res)
	}
	return res
}
