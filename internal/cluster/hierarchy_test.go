package cluster

import (
	"reflect"
	"strings"
	"testing"

	"p3/internal/netsim"
	"p3/internal/sim"
	"p3/internal/strategy"
)

// hierCfg is aggCfg over a two-tier topology: racks of rackSize behind a
// 4:1 core, grouped into pods behind a 4:1 spine, with hierarchical
// aggregation on.
func hierCfg(t *testing.T, n, rackSize, pods int, sched string) Config {
	t.Helper()
	cfg := shardedCfg(t, n, sched)
	cfg.Topology = netsim.Topology{RackSize: rackSize, CoreOversub: 4, Pods: pods, SpineOversub: 4}
	cfg.RackAggregation = true
	cfg.HierAggregation = true
	return cfg
}

// pullCfg swaps the sliced Immediate-broadcast strategy for the
// NotifyPull baseline, the mode that actually issues parameter pulls.
func pullCfg(cfg Config) Config {
	st := strategy.Baseline()
	st.Name = "baseline-pull"
	cfg.Strategy = st
	return cfg
}

// TestShardedHierMatchesSingle extends the cluster-level determinism
// contract to the full two-tier stack: hierarchical aggregation (rack and
// pod aggregator LPs, spine ports), the rack-local parameter cache under
// a pull-mode strategy, and a credit-gated host discipline — sharded runs
// of each must reproduce the single-engine Result bit for bit.
func TestShardedHierMatchesSingle(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"hier/fifo", hierCfg(t, 16, 4, 2, "fifo")},
		{"hier/p3", hierCfg(t, 16, 4, 2, "p3")},
		{"hier/credit", hierCfg(t, 16, 4, 2, "credit")},
	}
	local := hierCfg(t, 16, 4, 2, "fifo")
	local.RackLocalPS = true
	cases = append(cases, struct {
		name string
		cfg  Config
	}{"hier/racklocal/pull", pullCfg(local)})
	paced := hierCfg(t, 16, 4, 2, "p3")
	paced.AggReduceGBps = 1
	cases = append(cases, struct {
		name string
		cfg  Config
	}{"hier/paced", paced})
	for _, tc := range cases {
		want := Run(tc.cfg)
		if want.SpineBytes <= 0 {
			t.Fatalf("%s: no spine traffic recorded", tc.name)
		}
		for _, shards := range []int{2, 4} {
			cfg := tc.cfg
			cfg.Shards = shards
			if got := Run(cfg); !reflect.DeepEqual(got, want) {
				t.Errorf("%s/shards=%d diverges from single engine:\n got %+v\nwant %+v",
					tc.name, shards, got, want)
			}
		}
	}
}

// TestHierShrinksSpineTraffic pins the second reduction stage's
// mechanism: on the same two-tier topology, hierarchical aggregation
// moves strictly fewer bytes through the spine ports than rack-only
// aggregation (one stream per pod instead of one per rack, both ways),
// while completing the same iterations.
func TestHierShrinksSpineTraffic(t *testing.T) {
	rackOnly := hierCfg(t, 16, 4, 2, "fifo")
	rackOnly.HierAggregation = false
	flat := Run(rackOnly)
	hier := Run(hierCfg(t, 16, 4, 2, "fifo"))
	if flat.SpineBytes <= 0 || hier.SpineBytes <= 0 {
		t.Fatalf("no spine traffic: rack-only %d, hier %d", flat.SpineBytes, hier.SpineBytes)
	}
	if hier.SpineBytes >= flat.SpineBytes {
		t.Errorf("hierarchical aggregation moved %d spine bytes, rack-only moved %d — the pod reduction should shrink spine traffic",
			hier.SpineBytes, flat.SpineBytes)
	}
	if hier.MeasuredIters != flat.MeasuredIters {
		t.Errorf("hierarchical aggregation changed iteration count: %d vs %d", hier.MeasuredIters, flat.MeasuredIters)
	}
}

// TestRackLocalPSKeepsPullsInRack pins the placement co-design: under a
// pull-mode strategy, the rack-local parameter cache answers every
// non-loopback pull inside the rack, shrinking core traffic versus the
// same topology without it — and under an Immediate-broadcast strategy
// (which issues no pulls) the switch is a bit-identical no-op.
func TestRackLocalPSKeepsPullsInRack(t *testing.T) {
	base := aggCfg(t, 16, 4, "fifo", "", true)
	plain := Run(pullCfg(base))
	localCfg := base
	localCfg.RackLocalPS = true
	local := Run(pullCfg(localCfg))
	if local.CoreBytes >= plain.CoreBytes {
		t.Errorf("rack-local PS moved %d core bytes, plain moved %d — pulls and replies should stay in-rack",
			local.CoreBytes, plain.CoreBytes)
	}
	if local.MeasuredIters != plain.MeasuredIters {
		t.Errorf("rack-local PS changed iteration count: %d vs %d", local.MeasuredIters, plain.MeasuredIters)
	}
	// Immediate-broadcast strategies never pull: the cache must not
	// perturb a single bit.
	imm := Run(base)
	immLocal := Run(localCfg)
	if !reflect.DeepEqual(immLocal, imm) {
		t.Errorf("RackLocalPS under an Immediate strategy diverges:\n got %+v\nwant %+v", immLocal, imm)
	}
}

// TestAggCapacitySlowsIteration pins the capacity model at cluster level:
// a starved reduction engine strictly lengthens the iteration versus the
// free switch-side engine, without changing the protocol (same messages,
// same iterations).
func TestAggCapacitySlowsIteration(t *testing.T) {
	base := aggCfg(t, 16, 4, "fifo", "", true)
	free := Run(base)
	starved := base
	starved.AggReduceGBps = 0.05
	slow := Run(starved)
	if slow.MeanIterTime <= free.MeanIterTime {
		t.Errorf("0.05 GB/s reduction iterates in %v, free engine in %v — starved aggregators should be slower",
			slow.MeanIterTime, free.MeanIterTime)
	}
	if slow.Msgs != free.Msgs || slow.MeasuredIters != free.MeasuredIters {
		t.Errorf("capacity model changed the protocol: %d msgs/%d iters vs %d/%d",
			slow.Msgs, slow.MeasuredIters, free.Msgs, free.MeasuredIters)
	}
}

// TestEngineResetReuseWithAggregation pins Engine.Reset against the full
// two-tier LP population (machines, ports, spine ports, rack and pod
// aggregators) under a credit-gated discipline: a reused engine's second
// run and a sharded run must both be bit-identical to a fresh engine.
func TestEngineResetReuseWithAggregation(t *testing.T) {
	base := hierCfg(t, 16, 4, 2, "credit")
	want := Run(base)
	cfg := base
	cfg.Engine = &sim.Engine{}
	for i := 1; i <= 2; i++ {
		if got := Run(cfg); !reflect.DeepEqual(got, want) {
			t.Errorf("run %d on a reused engine diverges:\n got %+v\nwant %+v", i, got, want)
		}
	}
	sharded := base
	sharded.Shards = 4
	for i := 1; i <= 2; i++ {
		if got := Run(sharded); !reflect.DeepEqual(got, want) {
			t.Errorf("sharded run %d diverges from the fresh single engine:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestHierarchyRejections pins the loud-failure contract of the new
// config surface: every extension without its prerequisite panics with a
// message naming the missing piece.
func TestHierarchyRejections(t *testing.T) {
	mustPanic := func(name, wantMsg string, cfg Config) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s did not panic", name)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, wantMsg) {
					t.Fatalf("unhelpful panic: %v", r)
				}
			}()
			Run(cfg)
		})
	}
	noAgg := aggCfg(t, 16, 4, "fifo", "", false)
	noAgg.Topology.Pods = 2
	noAgg.Topology.SpineOversub = 4
	noAgg.HierAggregation = true
	mustPanic("hier without rackagg", "RackAggregation", noAgg)

	noPods := aggCfg(t, 16, 4, "fifo", "", true)
	noPods.HierAggregation = true
	mustPanic("hier without pods", "spine", noPods)

	noAggLocal := aggCfg(t, 16, 4, "fifo", "", false)
	noAggLocal.RackLocalPS = true
	mustPanic("racklocal without rackagg", "RackAggregation", noAggLocal)

	noAggRate := aggCfg(t, 16, 4, "fifo", "", false)
	noAggRate.AggReduceGBps = 8
	mustPanic("aggrate without rackagg", "RackAggregation", noAggRate)

	uneven := hierCfg(t, 16, 4, 3, "fifo")
	mustPanic("pods do not divide racks", "pods", uneven)
}
