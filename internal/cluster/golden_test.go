package cluster

import (
	"math"
	"testing"

	"p3/internal/sim"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// golden is one pre-refactor reference result, captured from the seed tree
// (ad-hoc bool/enum ordering, before the sched.Discipline extraction) on
// resnet110, 4 machines, warmup 2, measure 4, seed 1. Throughput is stored
// as float64 bits so the comparison is exact.
type golden struct {
	Strategy        string
	ThroughputBits  uint64
	MeanIterTime    sim.Time
	IterTimes       []sim.Time
	ComputeIterTime sim.Time
	Events          uint64
	Msgs            int64
	WireBytes       int64
	TotalStall      sim.Time
}

// goldens10 was captured at 10 Gbps (compute-bound: the immediate-broadcast
// strategies coincide) and goldens15 at 1.5 Gbps (communication-bound: every
// strategy separates). Together they pin both regimes.
var goldens10 = []golden{
	{
		Strategy:        "baseline",
		ThroughputBits:  0x40ac15727d8d10a4,
		MeanIterTime:    142430978,
		IterTimes:       []sim.Time{142430978, 142430978, 142430978, 142430978},
		ComputeIterTime: 142221830,
		Events:          112560,
		Msgs:            32160,
		WireBytes:       332554368,
		TotalStall:      836592,
	},
	{
		Strategy:        "tensorflow",
		ThroughputBits:  0x40ab837aa89ccfae,
		MeanIterTime:    145382698,
		IterTimes:       []sim.Time{144326412, 144336697, 144309719, 148557964},
		ComputeIterTime: 142221830,
		Events:          92460,
		Msgs:            24120,
		WireBytes:       332425728,
		TotalStall:      9447562,
	},
	{
		Strategy:        "wfbp",
		ThroughputBits:  0x40ac1a0c92263a0d,
		MeanIterTime:    142339868,
		IterTimes:       []sim.Time{142339868, 142339868, 142339868, 142339868},
		ComputeIterTime: 142221830,
		Events:          72360,
		Msgs:            16080,
		WireBytes:       332297088,
		TotalStall:      472152,
	},
	{
		Strategy:        "slicing",
		ThroughputBits:  0x40ac1a0c92263a0d,
		MeanIterTime:    142339868,
		IterTimes:       []sim.Time{142339868, 142339868, 142339868, 142339868},
		ComputeIterTime: 142221830,
		Events:          72360,
		Msgs:            16080,
		WireBytes:       332297088,
		TotalStall:      472152,
	},
	{
		Strategy:        "p3",
		ThroughputBits:  0x40ac1a0c92263a0d,
		MeanIterTime:    142339868,
		IterTimes:       []sim.Time{142339868, 142339868, 142339868, 142339868},
		ComputeIterTime: 142221830,
		Events:          72360,
		Msgs:            16080,
		WireBytes:       332297088,
		TotalStall:      472152,
	},
	{
		Strategy:        "asgd",
		ThroughputBits:  0x40ac1b00b3de3fd3,
		MeanIterTime:    142321002,
		IterTimes:       []sim.Time{142321002, 142321002, 142321002, 142321002},
		ComputeIterTime: 142221830,
		Events:          72360,
		Msgs:            16080,
		WireBytes:       332297088,
		TotalStall:      396688,
	},
}

var goldens15 = []golden{
	{
		Strategy:        "baseline",
		ThroughputBits:  0x40ac0fa9a0e70e9a,
		MeanIterTime:    142545670,
		IterTimes:       []sim.Time{142545670, 142545670, 142545670, 142545670},
		ComputeIterTime: 142221830,
		Events:          112560,
		Msgs:            32160,
		WireBytes:       332554368,
		TotalStall:      1295360,
	},
	{
		Strategy:        "tensorflow",
		ThroughputBits:  0x40aa96d6d04a6cd9,
		MeanIterTime:    150436933,
		IterTimes:       []sim.Time{144787209, 145048654, 146151290, 165760579},
		ComputeIterTime: 142221830,
		Events:          92460,
		Msgs:            24120,
		WireBytes:       332425728,
		TotalStall:      32967614,
	},
	{
		Strategy:        "wfbp",
		ThroughputBits:  0x40ac13e22640b1ef,
		MeanIterTime:    142461966,
		IterTimes:       []sim.Time{142461966, 142461966, 142461966, 142461966},
		ComputeIterTime: 142221830,
		Events:          72360,
		Msgs:            16080,
		WireBytes:       332297088,
		TotalStall:      960544,
	},
	{
		Strategy:        "slicing",
		ThroughputBits:  0x40ac1122c12e86bc,
		MeanIterTime:    142516444,
		IterTimes:       []sim.Time{142388612, 142559055, 142559055, 142559055},
		ComputeIterTime: 142221830,
		Events:          72360,
		Msgs:            16080,
		WireBytes:       332297088,
		TotalStall:      1203304,
	},
	{
		Strategy:        "p3",
		ThroughputBits:  0x40ac146271b88719,
		MeanIterTime:    142452034,
		IterTimes:       []sim.Time{142388612, 142515456, 142388612, 142515456},
		ComputeIterTime: 142221830,
		Events:          72360,
		Msgs:            16080,
		WireBytes:       332297088,
		TotalStall:      914212,
	},
	{
		Strategy:        "asgd",
		ThroughputBits:  0x40ac17dd3067191a,
		MeanIterTime:    142383114,
		IterTimes:       []sim.Time{142408187, 142390776, 142366748, 142366748},
		ComputeIterTime: 142221830,
		Events:          72360,
		Msgs:            16080,
		WireBytes:       332297088,
		TotalStall:      590840,
	},
}

// runGolden executes one golden configuration; preempt > 0 exercises the
// segmented egress path.
func runGolden(t *testing.T, name string, gbps float64, preempt int64) Result {
	t.Helper()
	st, err := strategy.ByName(name)
	if err != nil {
		t.Fatalf("strategy %q: %v", name, err)
	}
	return Run(Config{
		Model:          zoo.ByName("resnet110"),
		Machines:       4,
		Strategy:       st,
		BandwidthGbps:  gbps,
		PreemptQuantum: preempt,
		WarmupIters:    2,
		MeasureIters:   4,
		Seed:           1,
	})
}

// checkGolden asserts r matches g bit-for-bit.
func checkGolden(t *testing.T, g golden, gbps float64, r Result) {
	t.Helper()
	if got := math.Float64bits(r.Throughput); got != g.ThroughputBits {
		t.Errorf("%s@%g: throughput bits %#x, want %#x (%.6f vs %.6f)",
			g.Strategy, gbps, got, g.ThroughputBits,
			r.Throughput, math.Float64frombits(g.ThroughputBits))
	}
	if r.MeanIterTime != g.MeanIterTime {
		t.Errorf("%s@%g: mean iter %d, want %d", g.Strategy, gbps, r.MeanIterTime, g.MeanIterTime)
	}
	if r.ComputeIterTime != g.ComputeIterTime {
		t.Errorf("%s@%g: compute iter %d, want %d", g.Strategy, gbps, r.ComputeIterTime, g.ComputeIterTime)
	}
	if len(r.IterTimes) != len(g.IterTimes) {
		t.Fatalf("%s@%g: %d iter times, want %d", g.Strategy, gbps, len(r.IterTimes), len(g.IterTimes))
	}
	for i := range g.IterTimes {
		if r.IterTimes[i] != g.IterTimes[i] {
			t.Errorf("%s@%g: iter %d time %d, want %d", g.Strategy, gbps, i, r.IterTimes[i], g.IterTimes[i])
		}
	}
	if r.Events != g.Events || r.Msgs != g.Msgs || r.WireBytes != g.WireBytes {
		t.Errorf("%s@%g: events/msgs/bytes %d/%d/%d, want %d/%d/%d",
			g.Strategy, gbps, r.Events, r.Msgs, r.WireBytes, g.Events, g.Msgs, g.WireBytes)
	}
	if r.TotalStall() != g.TotalStall {
		t.Errorf("%s@%g: total stall %d, want %d", g.Strategy, gbps, r.TotalStall(), g.TotalStall)
	}
}

// TestGoldenParityWithSeed asserts that every pre-existing strategy produces
// bit-identical Results through the sched.Discipline path that it produced
// through the seed's hardcoded bool/enum ordering — the refactor moved the
// policy, it must not have moved a single event.
func TestGoldenParityWithSeed(t *testing.T) {
	cases := []struct {
		gbps    float64
		goldens []golden
	}{
		{10, goldens10},
		{1.5, goldens15},
	}
	for _, c := range cases {
		for _, g := range c.goldens {
			checkGolden(t, g, c.gbps, runGolden(t, g.Strategy, c.gbps, 0))
		}
	}
}

// TestGoldenParityPreemptiveDispatchPath pins the new dispatch machinery
// against the same pre-refactor goldens: with PreemptQuantum set to more
// than any message's wire size, every transmission is a single segment of
// the resumable egress path — per-flow subqueues, parked-transmission
// bookkeeping, telescoped segment timing and all — and must reproduce the
// seed Results bit-identically for every strategy at both bandwidths. The
// refactor may only change behaviour when a preemption actually fires.
func TestGoldenParityPreemptiveDispatchPath(t *testing.T) {
	cases := []struct {
		gbps    float64
		goldens []golden
	}{
		{10, goldens10},
		{1.5, goldens15},
	}
	for _, c := range cases {
		for _, g := range c.goldens {
			r := runGolden(t, g.Strategy, c.gbps, 1<<30) // larger than any message: one segment each
			if r.Preemptions != 0 {
				t.Errorf("%s@%g: %d preemptions with an over-size quantum", g.Strategy, c.gbps, r.Preemptions)
			}
			checkGolden(t, g, c.gbps, r)
		}
	}
}

// TestRegistryPresetEquivalence: a preset strategy and the same strategy
// with its discipline spelled through the registry name must be
// indistinguishable — the name IS the policy.
func TestRegistryPresetEquivalence(t *testing.T) {
	base := strategy.SlicingOnly(0)
	viaRegistry, err := base.WithSched("p3")
	if err != nil {
		t.Fatal(err)
	}
	run := func(s strategy.Strategy) Result {
		return Run(Config{
			Model: zoo.ByName("resnet110"), Machines: 4, Strategy: s,
			BandwidthGbps: 1.5, WarmupIters: 1, MeasureIters: 3, Seed: 1,
		})
	}
	a := run(strategy.P3(0))
	b := run(viaRegistry)
	if a.Throughput != b.Throughput || a.MeanIterTime != b.MeanIterTime ||
		a.Events != b.Events || a.WireBytes != b.WireBytes {
		t.Fatalf("p3 preset %+v != slicing+WithSched(p3) %+v", a, b)
	}
}
