package cluster

import (
	"testing"

	"p3/internal/strategy"
	"p3/internal/zoo"
)

// TestCalibratedTicTacNoSlowerOnZoo pins the stall-feedback loop's value
// claim: rebuilding the tictac profile from a prior run's measured
// consumption stalls (the two-pass calibrated mode) is never slower than
// the static FLOP-derived profile, on every zoo model at the bottleneck
// bandwidth where ordering dominates. The simulator is deterministic, so
// these are exact comparisons, not statistics.
func TestCalibratedTicTacNoSlowerOnZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo calibration sweep in -short mode")
	}
	for _, name := range []string{"resnet50", "inception3", "vgg19", "sockeye", "resnet110"} {
		static, cal := RunCalibrated(Config{
			Model: zoo.ByName(name), Machines: 4, Strategy: strategy.TicTac(0),
			BandwidthGbps: 1.5, WarmupIters: 1, MeasureIters: 3, Seed: 1,
		})
		if cal.MeanIterTime > static.MeanIterTime {
			t.Errorf("%s: calibrated tictac %.3f ms/iter slower than static %.3f ms/iter",
				name, cal.MeanIterTime.Millis(), static.MeanIterTime.Millis())
		}
	}
}

// TestCalibrationFeedbackBoundedByDamping pins the sweep's second finding
// at the inversion scale: stall feedback under STRICT tictac diverges at 64
// machines (stretching a starved layer's measured deadline makes it still
// less urgent, which starves it harder), while the same feedback under the
// damped rank — which bounds any class's deferral — converges and beats
// both its own static pass and fifo.
func TestCalibrationFeedbackBoundedByDamping(t *testing.T) {
	if testing.Short() {
		t.Skip("64-machine calibration runs in -short mode")
	}
	if raceEnabled {
		t.Skip("64-machine calibration under -race (covered by the dedicated non-race CI step)")
	}
	cfg := func(sched string) Config {
		st, err := strategy.SlicingOnly(0).WithSched(sched)
		if err != nil {
			t.Fatal(err)
		}
		st.Name = "sliced+" + sched
		return Config{
			Model: zoo.ByName("resnet50"), Machines: 64, Strategy: st,
			BandwidthGbps: 1.5, WarmupIters: 1, MeasureIters: 2, Seed: 1,
		}
	}
	dampedStatic, dampedCal := RunCalibrated(cfg("damped:tictac"))
	if dampedCal.MeanIterTime > dampedStatic.MeanIterTime {
		t.Errorf("damped:tictac calibration diverged at 64 machines: %.2f ms static -> %.2f ms calibrated",
			dampedStatic.MeanIterTime.Millis(), dampedCal.MeanIterTime.Millis())
	}
	fifo := runScale(t, 64, "fifo")
	if dampedCal.MeanIterTime > fifo.MeanIterTime {
		t.Errorf("calibrated damped:tictac %.2f ms above fifo %.2f ms at 64 machines",
			dampedCal.MeanIterTime.Millis(), fifo.MeanIterTime.Millis())
	}
}
