package cluster

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"p3/internal/model"
	"p3/internal/sim"
	"p3/internal/strategy"
)

// randomModel builds a structurally valid random model: 2-12 tensors of
// 1k-3M parameters.
func randomModel(rng *rand.Rand) *model.Model {
	n := 2 + rng.IntN(11)
	m := &model.Model{
		Name: "random", BatchSize: 1 + rng.IntN(64), SampleUnit: "images",
		PlateauPerWorker: 10 + rng.Float64()*200, FwdFraction: 1.0 / 3.0,
	}
	for i := 0; i < n; i++ {
		params := int64(1000 + rng.IntN(3_000_000))
		m.Layers = append(m.Layers, model.Layer{
			Index: i, Name: string(rune('a' + i)), Kind: model.KindConv,
			Params: params, FwdFLOPs: params * int64(1+rng.IntN(50)),
		})
	}
	return m
}

// TestPropertyAllRunsFinishAndRespectComputeBound: for random models,
// cluster sizes, bandwidths and strategies, the simulation (a) terminates,
// (b) never beats the compute bound, (c) conserves messages.
func TestPropertyAllRunsFinishAndRespectComputeBound(t *testing.T) {
	strategies := []strategy.Strategy{
		strategy.Baseline(), strategy.TFStyle(), strategy.WFBP(),
		strategy.SlicingOnly(0), strategy.P3(0), strategy.ASGDStrategy(),
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xc0ffee))
		m := randomModel(rng)
		machines := 2 + rng.IntN(6)
		bw := 0.5 + rng.Float64()*20
		s := strategies[rng.IntN(len(strategies))]
		r := Run(Config{
			Model: m, Machines: machines, Strategy: s, BandwidthGbps: bw,
			WarmupIters: 1, MeasureIters: 2, Seed: int64(seed),
		})
		if r.Throughput <= 0 {
			t.Logf("seed %d: no throughput (%+v)", seed, r)
			return false
		}
		// Mean iteration cannot undercut pure compute.
		if r.MeanIterTime < r.ComputeIterTime-2 {
			t.Logf("seed %d: %s iter %v under compute %v", seed, s.Name, r.MeanIterTime, r.ComputeIterTime)
			return false
		}
		// All sent messages were delivered (the network drains).
		if r.Msgs <= 0 {
			t.Logf("seed %d: no messages", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyP3NeverLosesBadly: across random workloads, P3's throughput
// stays within a whisker of (usually above) the baseline's — the paper's
// "P3 always performs better than the baseline" resilience claim.
func TestPropertyP3NeverLosesBadly(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xbeef))
		m := randomModel(rng)
		bw := 1 + rng.Float64()*15
		cfg := Config{Model: m, Machines: 4, BandwidthGbps: bw,
			WarmupIters: 1, MeasureIters: 2, Seed: 7}
		cfg.Strategy = strategy.Baseline()
		base := Run(cfg)
		cfg.Strategy = strategy.P3(0)
		p3 := Run(cfg)
		if p3.Throughput < base.Throughput*0.97 {
			t.Logf("seed %d: p3 %v vs baseline %v at %.1f Gbps (model %d tensors, %d params)",
				seed, p3.Throughput, base.Throughput, bw, len(m.Layers), m.TotalParams())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestStallAccounting: recorded stalls explain the gap between iteration
// time and compute time (they are the same quantity measured two ways for
// worker 0, up to pipeline effects across workers).
func TestStallAccounting(t *testing.T) {
	m := smallModel()
	r := Run(fastCfg(m, strategy.Baseline(), 2))
	gap := (r.MeanIterTime - r.ComputeIterTime) * sim.Time(len(r.IterTimes))
	total := r.TotalStall()
	if total <= 0 {
		t.Fatal("no stalls recorded under tight bandwidth")
	}
	// Worker 0's stall should be on the order of the cluster-level gap
	// (within 3x either way: makespans mix all workers).
	if total > gap*3 || total*3 < gap {
		t.Fatalf("stall accounting off: total stall %v vs aggregate gap %v", total, gap)
	}
	// P3 must reduce the dominant stall.
	p3 := Run(fastCfg(m, strategy.P3(0), 2))
	if p3.TotalStall() >= r.TotalStall() {
		t.Fatalf("P3 stall %v not below baseline %v", p3.TotalStall(), r.TotalStall())
	}
}
