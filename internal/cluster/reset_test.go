package cluster

import (
	"reflect"
	"testing"

	"p3/internal/sim"
)

// TestEngineResetDeterministic pins the construct → run → Reset → run
// contract that the maporder analyzer guards statically: every structure
// rebuilt between runs (per-server pending-pull maps, processing pools,
// aggregator state, fault schedules) must be repopulated in a
// deterministic order, so a reset engine reproduces the fresh engine's
// Result bit for bit, run after run. A single unsorted map walk anywhere
// in construction or scheduling would make the second run diverge.
func TestEngineResetDeterministic(t *testing.T) {
	for _, sched := range []string{"p3", "credit"} {
		t.Run(sched, func(t *testing.T) {
			base := shardedCfg(t, 8, sched)
			base.Servers = 4
			want := Run(base)

			eng := &sim.Engine{}
			cfg := base
			cfg.Engine = eng
			for i := 1; i <= 2; i++ {
				if got := Run(cfg); !reflect.DeepEqual(got, want) {
					t.Errorf("run %d on a reset engine diverges:\n got %+v\nwant %+v", i, got, want)
				}
			}

			// Reset between runs must also be safe to invoke explicitly —
			// Run resets a provided engine itself, so this doubles it up.
			eng.Reset()
			if got := Run(cfg); !reflect.DeepEqual(got, want) {
				t.Errorf("run after explicit Reset diverges:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}
