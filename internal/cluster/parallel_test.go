package cluster

import (
	"reflect"
	"strings"
	"testing"

	"p3/internal/netsim"
	"p3/internal/sim"
	"p3/internal/strategy"
	"p3/internal/trace"
)

// shardedCfg builds the config used by the shard-equality property: the
// sliced strategy under the named discipline at the bottleneck bandwidth,
// small iteration counts, on the hand-sized model.
func shardedCfg(t *testing.T, n int, sched string) Config {
	t.Helper()
	st, err := strategy.SlicingOnly(0).WithSched(sched)
	if err != nil {
		t.Fatal(err)
	}
	st.Name = "sliced+" + sched
	return Config{
		Model: smallModel(), Machines: n, Strategy: st, BandwidthGbps: 1.5,
		WarmupIters: 1, MeasureIters: 2, Seed: 1,
	}
}

// TestShardedMatchesSingleResult is the simulator's determinism contract at
// cluster level: an N-shard conservative-lookahead run produces the same
// Result — same floats, same event count, same message count — as the
// single-engine run, for every discipline of the scale sweep, at several
// shard counts, on both the flat and the rack topology. 64 machines is left
// to the non-race CI step; under the race detector the sharded runs are an
// order of magnitude slower.
func TestShardedMatchesSingleResult(t *testing.T) {
	sizes := []int{4, 16}
	if !raceEnabled && !testing.Short() {
		sizes = append(sizes, 64)
	}
	topos := []struct {
		name string
		topo netsim.Topology
	}{
		{"flat", netsim.Topology{}},
		{"racks", netsim.Topology{RackSize: 8, CoreOversub: 4}},
	}
	for _, n := range sizes {
		for _, tp := range topos {
			if tp.topo.RackSize > 0 && n < 2*tp.topo.RackSize {
				continue // a single rack is just the flat switch with extra hops
			}
			for _, sched := range []string{"fifo", "p3", "damped", "tictac"} {
				base := shardedCfg(t, n, sched)
				base.Topology = tp.topo
				want := Run(base)
				for _, shards := range []int{2, 4, 8} {
					cfg := base
					cfg.Shards = shards
					got := Run(cfg)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%d machines/%s/%s/shards=%d diverges from single engine:\n got %+v\nwant %+v",
							n, tp.name, sched, shards, got, want)
					}
				}
			}
		}
	}
}

// TestShardedEngineFieldIgnored pins that a caller-supplied reusable Engine
// does not leak into a sharded run (it belongs to the single path only).
func TestShardedEngineFieldIgnored(t *testing.T) {
	base := shardedCfg(t, 4, "p3")
	want := Run(base)
	cfg := base
	cfg.Shards = 2
	cfg.Engine = &sim.Engine{}
	if got := Run(cfg); !reflect.DeepEqual(got, want) {
		t.Errorf("sharded run with Engine set diverges:\n got %+v\nwant %+v", got, want)
	}
	// And the single path actually reuses it across runs.
	cfg.Shards = 0
	if got := Run(cfg); !reflect.DeepEqual(got, want) {
		t.Errorf("first run on a reusable engine diverges:\n got %+v\nwant %+v", got, want)
	}
	if got := Run(cfg); !reflect.DeepEqual(got, want) {
		t.Errorf("second run on a reused engine diverges:\n got %+v\nwant %+v", got, want)
	}
}

// TestZeroLookaheadRejected pins the failure mode of a latency-free
// topology: conservative parallel execution has no safe window, and the
// run must refuse loudly instead of deadlocking.
func TestZeroLookaheadRejected(t *testing.T) {
	cfg := shardedCfg(t, 4, "fifo")
	net := netsim.DefaultConfig(cfg.BandwidthGbps)
	net.PropDelay = 0
	cfg.Net = &net
	cfg.Shards = 2
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sharded run on a zero-latency topology did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "lookahead") {
			t.Fatalf("unhelpful zero-lookahead panic: %v", r)
		}
	}()
	Run(cfg)
}

// TestShardedRecorderRejected pins that utilization tracing (shared
// time-bucket state) refuses to run sharded.
func TestShardedRecorderRejected(t *testing.T) {
	cfg := shardedCfg(t, 4, "fifo")
	cfg.Recorder = trace.NewRecorder(4, 10*1000*1000)
	cfg.Shards = 2
	defer func() {
		if recover() == nil {
			t.Fatal("sharded run with a Recorder did not panic")
		}
	}()
	Run(cfg)
}

// TestShardedGatedMatchesSingle is the determinism contract for
// credit-gated egress under the window-relaxed refund protocol (refunds
// land one lookahead after delivery, the barrier-window width): an
// N-shard credit/credit-adaptive run reproduces the single-engine Result
// bit for bit, on the flat network and on a rack topology — the property
// that lifted the historical shards=1 rejection for gated disciplines.
func TestShardedGatedMatchesSingle(t *testing.T) {
	topos := []struct {
		name string
		topo netsim.Topology
	}{
		{"flat", netsim.Topology{}},
		{"racks", netsim.Topology{RackSize: 4, CoreOversub: 4}},
	}
	for _, sched := range []string{"credit", "credit-adaptive"} {
		for _, tp := range topos {
			base := shardedCfg(t, 16, sched)
			base.Topology = tp.topo
			want := Run(base)
			for _, shards := range []int{2, 4} {
				cfg := base
				cfg.Shards = shards
				if got := Run(cfg); !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s/shards=%d diverges from single engine:\n got %+v\nwant %+v",
						sched, tp.name, shards, got, want)
				}
			}
		}
	}
}

// TestServerPlacement pins the ServerMachines axis: an explicit identity
// placement is bit-identical to the default, a spread placement still
// completes and conserves protocol traffic, and invalid placements fail
// loudly.
func TestServerPlacement(t *testing.T) {
	base := shardedCfg(t, 8, "p3")
	base.Servers = 2
	want := Run(base)

	identity := base
	identity.ServerMachines = []int{0, 1}
	if got := Run(identity); !reflect.DeepEqual(got, want) {
		t.Errorf("explicit identity placement diverges from default:\n got %+v\nwant %+v", got, want)
	}

	spread := base
	spread.ServerMachines = []int{3, 6}
	r := Run(spread)
	if r.Msgs != want.Msgs {
		t.Errorf("spread placement changed protocol traffic: %d msgs, want %d", r.Msgs, want.Msgs)
	}

	for _, c := range []struct {
		name string
		bad  []int
	}{
		{"wrong length", []int{0}},
		{"out of range", []int{0, 8}},
		{"duplicate", []int{3, 3}},
	} {
		name, bad := c.name, c.bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s placement did not panic", name)
				}
			}()
			cfg := base
			cfg.ServerMachines = bad
			Run(cfg)
		}()
	}
}
