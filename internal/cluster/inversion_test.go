package cluster

import (
	"testing"

	"p3/internal/strategy"
	"p3/internal/zoo"
)

// runScale runs the scale-axis configuration (resnet50 at the 1.5 Gbps
// bottleneck, the cell that exposed the inversion) under one discipline.
func runScale(t *testing.T, machines int, sched string) Result {
	t.Helper()
	st, err := strategy.SlicingOnly(0).WithSched(sched)
	if err != nil {
		t.Fatal(err)
	}
	st.Name = "sliced+" + sched
	return Run(Config{
		Model: zoo.ByName("resnet50"), Machines: machines, Strategy: st,
		BandwidthGbps: 1.5, WarmupIters: 1, MeasureIters: 2, Seed: 1,
	})
}

// TestInversionFixedAt64Machines pins the fix for the 64-machine
// p3-vs-fifo inversion (PR 4's finding): on the parameter-server path at
// the bottleneck bandwidth, strict p3 loses to fifo at high fan-in — every
// machine defers its gradient-push tail behind fresher urgent broadcasts in
// lockstep and the aggregation barrier turns the shared deferral into idle
// ingest windows — while the damped rank transform must beat BOTH, at the
// small scale where strict priority was already winning and at the scale
// that inverted it.
func TestInversionFixedAt64Machines(t *testing.T) {
	if testing.Short() {
		t.Skip("64-machine sweep in -short mode")
	}
	if raceEnabled {
		t.Skip("64-machine sweeps under -race (covered by the dedicated non-race CI step)")
	}
	for _, machines := range []int{4, 64} {
		fifo := runScale(t, machines, "fifo")
		p3 := runScale(t, machines, "p3")
		damped := runScale(t, machines, "damped")
		if damped.MeanIterTime > fifo.MeanIterTime {
			t.Errorf("x%d: damped-p3 iteration %.2f ms above fifo %.2f ms — the inversion fix regressed",
				machines, damped.MeanIterTime.Millis(), fifo.MeanIterTime.Millis())
		}
		if machines == 64 {
			// At the fan-in that inverted strict priority, damping must
			// recover more than the whole inversion, not just edge past
			// fifo.
			if damped.MeanIterTime > p3.MeanIterTime {
				t.Errorf("x64: damped-p3 iteration %.2f ms above strict p3 %.2f ms",
					damped.MeanIterTime.Millis(), p3.MeanIterTime.Millis())
			}
			// Document the inversion itself: this log firing means strict
			// p3 no longer loses at 64 machines and the damped default
			// weight should be re-tuned (see ROADMAP).
			if p3.MeanIterTime <= fifo.MeanIterTime {
				t.Logf("note: strict p3 (%.2f ms) no longer inverts against fifo (%.2f ms) at 64 machines",
					p3.MeanIterTime.Millis(), fifo.MeanIterTime.Millis())
			}
		}
	}
}
