package cluster

import (
	"testing"

	"p3/internal/strategy"
)

// TestProtocolMessageCounts pins the wire protocol of each strategy by
// exact message count per iteration with N machines and C chunks:
//
//	NotifyPull (baseline): push + notify + pull + data  = 4*N*C
//	Immediate (WFBP/slicing/P3): push + broadcast data  = 2*N*C
//	DeferredPull (TF): push + pull + data               = 3*N*C
//	Async (ASGD): push + per-worker data                = 2*N*C
func TestProtocolMessageCounts(t *testing.T) {
	m := smallModel()
	const machines = 4
	iters := int64(1 + 3) // warmup + measured

	cases := []struct {
		s            strategy.Strategy
		perChunkMsgs int64
	}{
		{strategy.Baseline(), 4},
		{strategy.WFBP(), 2},
		{strategy.SlicingOnly(0), 2},
		{strategy.P3(0), 2},
		{strategy.TFStyle(), 3},
		{strategy.ASGDStrategy(), 2},
	}
	for _, c := range cases {
		plan := c.s.Partition(m, machines)
		want := iters * int64(machines) * int64(plan.NumChunks()) * c.perChunkMsgs
		r := Run(fastCfg(m, c.s, 10))
		if r.Msgs != want {
			t.Errorf("%s: %d messages, want %d (%d chunks)", c.s.Name, r.Msgs, want, plan.NumChunks())
		}
	}
}

// TestWireBytesAccounting: every gradient byte crosses to its server once
// per worker per iteration, and every updated byte returns once per worker.
// Control traffic is tiny by comparison.
func TestWireBytesAccounting(t *testing.T) {
	m := smallModel()
	const machines = 4
	iters := int64(1 + 3)
	r := Run(fastCfg(m, strategy.P3(0), 10))
	payload := iters * int64(machines) * m.TotalBytes() * 2 // push + broadcast
	// r.WireBytes counts payload only (headers added by netsim are not in
	// the Message.Bytes field).
	if r.WireBytes != payload {
		t.Fatalf("wire bytes %d, want %d", r.WireBytes, payload)
	}

	rBase := Run(fastCfg(m, strategy.Baseline(), 10))
	// Baseline adds 16-byte notify+pull per chunk per worker per iteration.
	plan := strategy.Baseline().Partition(m, machines)
	ctl := iters * int64(machines) * int64(plan.NumChunks()) * 2 * ctlBytes
	if rBase.WireBytes != payload+ctl {
		t.Fatalf("baseline wire bytes %d, want %d", rBase.WireBytes, payload+ctl)
	}
}

// TestFewerServersThanMachines is the regression test for the stranded-pull
// deadlock: with a single overloaded server, a worker's pull could arrive
// after a faster worker's next-iteration push reset the aggregation slot;
// the server must still answer from its stored value.
func TestFewerServersThanMachines(t *testing.T) {
	m := smallModel()
	for _, servers := range []int{1, 2, 3} {
		for _, name := range []string{"baseline", "tensorflow", "p3"} {
			s, _ := strategy.ByName(name)
			cfg := fastCfg(m, s, 5)
			cfg.Servers = servers
			r := Run(cfg) // panics on a wedged protocol
			if r.Throughput <= 0 {
				t.Fatalf("%s with %d servers: throughput %v", name, servers, r.Throughput)
			}
			for _, it := range r.IterTimes {
				if it <= 0 {
					t.Fatalf("%s with %d servers: non-positive iteration %v", name, servers, it)
				}
			}
		}
	}
}

// TestMoreServersHelp: spreading the shards over more servers must not slow
// the run down (load-balancing sanity).
func TestMoreServersHelp(t *testing.T) {
	m := smallModel()
	cfg1 := fastCfg(m, strategy.P3(0), 4)
	cfg1.Servers = 1
	cfg4 := fastCfg(m, strategy.P3(0), 4)
	one, four := Run(cfg1), Run(cfg4)
	if four.Throughput < one.Throughput {
		t.Fatalf("4 servers (%v) slower than 1 (%v)", four.Throughput, one.Throughput)
	}
}

// TestTooManyServersPanics: servers must fit on the machines.
func TestTooManyServersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("8 servers on 4 machines accepted")
		}
	}()
	cfg := fastCfg(smallModel(), strategy.P3(0), 5)
	cfg.Servers = 8
	Run(cfg)
}
