package cluster

import (
	"testing"

	"p3/internal/strategy"
	"p3/internal/zoo"
)

// TestRun64Machines is the cluster-path scale smoke: the protocol must
// complete at 64 machines (a wedge panics inside Run), with every worker's
// traffic accounted for. The paper's testbed stops at 16; this size is the
// regime the O(log F) egress dispatch exists for — each NIC's send queue
// holds one flow per peer machine.
func TestRun64Machines(t *testing.T) {
	if testing.Short() {
		t.Skip("64-machine run in -short mode")
	}
	for _, sched := range []string{"p3", "credit-adaptive"} {
		st, err := strategy.SlicingOnly(0).WithSched(sched)
		if err != nil {
			t.Fatal(err)
		}
		r := Run(Config{
			Model: zoo.ByName("resnet110"), Machines: 64, Strategy: st,
			BandwidthGbps: 10, WarmupIters: 1, MeasureIters: 2, Seed: 3,
		})
		if r.Machines != 64 || r.Throughput <= 0 {
			t.Fatalf("%s: degenerate 64-machine result: %+v", sched, r)
		}
		if r.MeanIterTime <= 0 || r.MeanIterTime < r.ComputeIterTime {
			t.Fatalf("%s: iteration time %v below compute floor %v", sched, r.MeanIterTime, r.ComputeIterTime)
		}
		// Every one of the 64 workers pushes and receives every chunk every
		// iteration: the message volume must reflect all of them (loopback
		// pairs included), or some worker silently dropped out.
		if r.Msgs < int64(64*3) {
			t.Fatalf("%s: implausibly few messages at 64 machines: %d", sched, r.Msgs)
		}
	}
}
