package cluster

import (
	"testing"

	"p3/internal/model"
	"p3/internal/strategy"
	"p3/internal/trace"
	"p3/internal/zoo"
)

// fastCfg keeps simulation cost low for tests.
func fastCfg(m *model.Model, s strategy.Strategy, gbps float64) Config {
	return Config{
		Model: m, Machines: 4, Strategy: s, BandwidthGbps: gbps,
		WarmupIters: 1, MeasureIters: 3, Seed: 1,
	}
}

// smallModel is a hand-sized model that keeps unit runs instant.
func smallModel() *model.Model {
	m := &model.Model{Name: "small", BatchSize: 8, SampleUnit: "images",
		PlateauPerWorker: 100, FwdFraction: 1.0 / 3.0}
	sizes := []int64{200_000, 60_000, 1_200_000, 400_000, 2_000_000}
	for i, s := range sizes {
		m.Layers = append(m.Layers, model.Layer{
			Index: i, Name: string(rune('a' + i)), Kind: model.KindConv,
			Params: s, FwdFLOPs: s * 10,
		})
	}
	return m
}

func TestDeterminism(t *testing.T) {
	for _, s := range []strategy.Strategy{strategy.Baseline(), strategy.P3(0)} {
		a := Run(fastCfg(zoo.Sockeye(), s, 4))
		b := Run(fastCfg(zoo.Sockeye(), s, 4))
		if a.Throughput != b.Throughput || a.MeanIterTime != b.MeanIterTime {
			t.Fatalf("%s: nondeterministic: %v vs %v", s.Name, a, b)
		}
	}
}

func TestSeedChangesJitteredRun(t *testing.T) {
	cfg := fastCfg(zoo.Sockeye(), strategy.P3(0), 4)
	a := Run(cfg)
	cfg.Seed = 99
	b := Run(cfg)
	if a.Throughput == b.Throughput {
		t.Fatal("different seeds produced identical jittered runs")
	}
}

func TestPlateauAtHighBandwidth(t *testing.T) {
	m := smallModel()
	r := Run(fastCfg(m, strategy.P3(0), 100))
	// At 100 Gbps the run must be compute bound: within 2% of the plateau.
	perWorker := r.Throughput / float64(r.Machines)
	if perWorker < m.PlateauPerWorker*0.98 {
		t.Fatalf("per-worker throughput %v below plateau %v at 100 Gbps", perWorker, m.PlateauPerWorker)
	}
	if perWorker > m.PlateauPerWorker*1.001 {
		t.Fatalf("per-worker throughput %v exceeds compute bound %v", perWorker, m.PlateauPerWorker)
	}
}

// TestStrategyOrdering is the paper's central result: under constrained
// bandwidth, P3 >= slicing >= baseline, with real separation at the knee.
func TestStrategyOrdering(t *testing.T) {
	m := smallModel()
	base := Run(fastCfg(m, strategy.Baseline(), 3))
	slic := Run(fastCfg(m, strategy.SlicingOnly(0), 3))
	p3 := Run(fastCfg(m, strategy.P3(0), 3))
	if !(p3.Throughput >= slic.Throughput*0.999) {
		t.Fatalf("P3 (%v) below slicing (%v)", p3.Throughput, slic.Throughput)
	}
	if !(slic.Throughput >= base.Throughput*0.999) {
		t.Fatalf("slicing (%v) below baseline (%v)", slic.Throughput, base.Throughput)
	}
	if p3.Speedup(base) < 1.02 {
		t.Fatalf("P3 speedup over baseline only %.3f at 3 Gbps", p3.Speedup(base))
	}
}

func TestThroughputMonotoneInBandwidth(t *testing.T) {
	m := smallModel()
	for _, s := range []strategy.Strategy{strategy.Baseline(), strategy.P3(0)} {
		prev := 0.0
		for _, bw := range []float64{1, 2, 4, 8, 16} {
			r := Run(fastCfg(m, s, bw))
			if r.Throughput < prev*0.995 { // tiny tolerance for pipeline phase effects
				t.Fatalf("%s: throughput fell from %v to %v at %v Gbps", s.Name, prev, r.Throughput, bw)
			}
			prev = r.Throughput
		}
	}
}

func TestAllStrategiesComplete(t *testing.T) {
	m := smallModel()
	for _, name := range []string{"baseline", "tensorflow", "wfbp", "slicing", "p3", "asgd"} {
		s, err := strategy.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r := Run(fastCfg(m, s, 5))
		if r.Throughput <= 0 {
			t.Fatalf("%s: throughput %v", name, r.Throughput)
		}
		if r.MeanIterTime < r.ComputeIterTime {
			t.Fatalf("%s: iteration faster than compute bound: %v < %v",
				name, r.MeanIterTime, r.ComputeIterTime)
		}
	}
}

// TestTFStyleSlowerThanWFBP: deferring pulls to the next iteration must not
// beat immediate per-layer sync under tight bandwidth.
func TestTFStyleSlowerThanWFBP(t *testing.T) {
	m := smallModel()
	tf := Run(fastCfg(m, strategy.TFStyle(), 2))
	wfbp := Run(fastCfg(m, strategy.WFBP(), 2))
	if tf.Throughput > wfbp.Throughput*1.001 {
		t.Fatalf("TF-style (%v) beat WFBP (%v)", tf.Throughput, wfbp.Throughput)
	}
}

// TestAsyncFasterThanSyncIterations: ASGD removes the all-worker barrier, so
// its iterations must not be slower than the baseline's under equal
// bandwidth.
func TestAsyncFasterThanSyncIterations(t *testing.T) {
	m := smallModel()
	sync := Run(fastCfg(m, strategy.Baseline(), 2))
	async := Run(fastCfg(m, strategy.ASGDStrategy(), 2))
	if async.MeanIterTime > sync.MeanIterTime {
		t.Fatalf("ASGD iterations (%v) slower than synchronous baseline (%v)",
			async.MeanIterTime, sync.MeanIterTime)
	}
}

func TestSliceSizeSweetSpot(t *testing.T) {
	m := smallModel()
	tiny := Run(fastCfg(m, strategy.P3(500), 3))
	mid := Run(fastCfg(m, strategy.P3(50_000), 3))
	huge := Run(fastCfg(m, strategy.P3(2_000_000), 3))
	if !(mid.Throughput > tiny.Throughput) {
		t.Fatalf("50k slices (%v) not better than 500-param slices (%v)", mid.Throughput, tiny.Throughput)
	}
	if !(mid.Throughput >= huge.Throughput) {
		t.Fatalf("50k slices (%v) not better than 2M slices (%v)", mid.Throughput, huge.Throughput)
	}
}

func TestUtilizationTraceConsistency(t *testing.T) {
	m := smallModel()
	rec := trace.NewRecorder(4, 0)
	cfg := fastCfg(m, strategy.P3(0), 4)
	cfg.Recorder = rec
	r := Run(cfg)
	var total float64
	for mach := 0; mach < 4; mach++ {
		total += rec.TotalBytes(mach, trace.Out)
	}
	// Recorded egress bytes should be positive and bounded by total wire
	// bytes plus headers (loopback traffic is excluded from the recorder).
	if total <= 0 {
		t.Fatal("no utilization recorded")
	}
	headroom := float64(r.WireBytes) * 1.1 // headers
	if total > headroom {
		t.Fatalf("recorded %v bytes, more than wire total %v", total, headroom)
	}
	// Outbound == inbound across the cluster (every remote byte is counted
	// once at each end).
	var inTotal float64
	for mach := 0; mach < 4; mach++ {
		inTotal += rec.TotalBytes(mach, trace.In)
	}
	if diff := total - inTotal; diff > 1 || diff < -1 {
		t.Fatalf("outbound %v != inbound %v", total, inTotal)
	}
}

func TestMoreMachinesMoreAggregate(t *testing.T) {
	m := smallModel()
	cfg2 := fastCfg(m, strategy.P3(0), 20)
	cfg2.Machines = 2
	cfg8 := fastCfg(m, strategy.P3(0), 20)
	cfg8.Machines = 8
	r2, r8 := Run(cfg2), Run(cfg8)
	if r8.Throughput <= r2.Throughput {
		t.Fatalf("8 machines (%v) not faster than 2 (%v) at 20 Gbps", r8.Throughput, r2.Throughput)
	}
}

func TestIterTimesRecorded(t *testing.T) {
	r := Run(fastCfg(smallModel(), strategy.Baseline(), 5))
	if len(r.IterTimes) != 3 {
		t.Fatalf("IterTimes has %d entries, want 3", len(r.IterTimes))
	}
	var sum float64
	for _, it := range r.IterTimes {
		if it <= 0 {
			t.Fatalf("non-positive iteration time %v", it)
		}
		sum += it.Seconds()
	}
	if r.WarmupEnd <= 0 {
		t.Fatal("warmup end not recorded")
	}
}

func TestInvalidModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid model accepted")
		}
	}()
	Run(Config{Model: &model.Model{Name: "empty"}, Strategy: strategy.P3(0), BandwidthGbps: 1})
}

func TestResultString(t *testing.T) {
	r := Run(fastCfg(smallModel(), strategy.P3(0), 5))
	if r.String() == "" {
		t.Fatal("empty result string")
	}
}

// TestHeadlineSpeedups pins the reproduction's headline numbers loosely
// (the paper's Section 5.3 claims, within generous bands so the test guards
// regressions without over-fitting the simulator constants).
func TestHeadlineSpeedups(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model sweep")
	}
	cases := []struct {
		model    string
		gbps     float64
		min, max float64 // acceptable P3-vs-baseline speedup band
	}{
		{"resnet50", 4, 1.15, 1.60}, // paper: 1.26
		{"vgg19", 15, 1.40, 2.00},   // paper: 1.66
		{"sockeye", 4, 1.10, 1.60},  // paper: 1.38
		{"inception3", 4, 1.02, 1.40} /* paper: 1.18 */}
	for _, c := range cases {
		base := Run(fastCfg(zoo.ByName(c.model), strategy.Baseline(), c.gbps))
		p3 := Run(fastCfg(zoo.ByName(c.model), strategy.P3(0), c.gbps))
		sp := p3.Speedup(base)
		if sp < c.min || sp > c.max {
			t.Errorf("%s @%gGbps: speedup %.2f outside [%.2f, %.2f]", c.model, c.gbps, sp, c.min, c.max)
		}
	}
}
