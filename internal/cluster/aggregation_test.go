package cluster

import (
	"reflect"
	"strings"
	"testing"

	"p3/internal/netsim"
	"p3/internal/strategy"
)

// aggCfg is shardedCfg over a rack topology with an oversubscribed core,
// with the core discipline and aggregation switch exposed.
func aggCfg(t *testing.T, n, rackSize int, sched, core string, agg bool) Config {
	t.Helper()
	cfg := shardedCfg(t, n, sched)
	cfg.Topology = netsim.Topology{RackSize: rackSize, CoreOversub: 4, CoreSched: core}
	cfg.RackAggregation = agg
	return cfg
}

// TestCoreSchedFifoBitIdentical pins the parity base case of the
// priority-aware core: a ToR port running the "fifo" discipline through
// the sched.Queue machinery must be bit-identical to the blind FIFO slice
// it replaces — same Result, same event count — for every host discipline,
// with and without aggregation. Ranked core disciplines may then diverge;
// fifo may not.
func TestCoreSchedFifoBitIdentical(t *testing.T) {
	for _, sched := range []string{"fifo", "p3", "damped", "tictac"} {
		for _, agg := range []bool{false, true} {
			blind := Run(aggCfg(t, 16, 4, sched, "", agg))
			fifo := Run(aggCfg(t, 16, 4, sched, "fifo", agg))
			if !reflect.DeepEqual(fifo, blind) {
				t.Errorf("%s/agg=%v: fifo-disciplined core diverges from blind FIFO core:\n got %+v\nwant %+v",
					sched, agg, fifo, blind)
			}
		}
	}
}

// TestShardedAggregationMatchesSingle extends the cluster-level
// determinism contract to the aggregator LPs: an N-shard run with
// RackAggregation (and with disciplined core ports) produces the same
// Result as the single-engine run. The aggregator LP rides its rack's
// shard, so the reduced stream is the only aggregation traffic that
// crosses shards; this must not perturb a single bit. 64 machines is left
// to the non-race CI step.
func TestShardedAggregationMatchesSingle(t *testing.T) {
	type size struct{ n, rackSize int }
	sizes := []size{{4, 2}, {16, 4}}
	if !raceEnabled && !testing.Short() {
		sizes = append(sizes, size{64, 8})
	}
	for _, sz := range sizes {
		for _, sched := range []string{"fifo", "p3", "damped"} {
			for _, core := range []string{"", sched} {
				base := aggCfg(t, sz.n, sz.rackSize, sched, core, true)
				want := Run(base)
				if want.CoreBytes <= 0 {
					t.Fatalf("%d machines/%s/core=%q: no core traffic recorded", sz.n, sched, core)
				}
				for _, shards := range []int{2, 4} {
					cfg := base
					cfg.Shards = shards
					if got := Run(cfg); !reflect.DeepEqual(got, want) {
						t.Errorf("%d machines/%s/core=%q/shards=%d diverges from single engine:\n got %+v\nwant %+v",
							sz.n, sched, core, shards, got, want)
					}
				}
			}
		}
	}
}

// TestAggregationShrinksCoreTraffic pins the mechanism at cluster level:
// with one server per rack, aggregation strictly reduces the bytes that
// serialize through the core ports while still completing the same number
// of iterations.
func TestAggregationShrinksCoreTraffic(t *testing.T) {
	flat := Run(aggCfg(t, 16, 4, "fifo", "", false))
	agg := Run(aggCfg(t, 16, 4, "fifo", "", true))
	if agg.CoreBytes >= flat.CoreBytes {
		t.Errorf("aggregation moved %d core bytes, flat moved %d — the reduced streams should shrink core traffic",
			agg.CoreBytes, flat.CoreBytes)
	}
	if agg.MeasuredIters != flat.MeasuredIters {
		t.Errorf("aggregation changed iteration count: %d vs %d", agg.MeasuredIters, flat.MeasuredIters)
	}
}

// TestRackAggregationRejections pins the loud-failure contract:
// aggregation without a rack topology or under ASGD has no meaning and
// must panic instead of silently running flat.
func TestRackAggregationRejections(t *testing.T) {
	t.Run("no racks", func(t *testing.T) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("RackAggregation on a flat network did not panic")
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "rack topology") {
				t.Fatalf("unhelpful panic: %v", r)
			}
		}()
		cfg := shardedCfg(t, 4, "fifo")
		cfg.RackAggregation = true
		Run(cfg)
	})
	t.Run("asgd", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("RackAggregation under ASGD did not panic")
			}
		}()
		st := strategy.SlicingOnly(0)
		st.Async = true
		st.Name = "asgd"
		cfg := aggCfg(t, 4, 2, "fifo", "", true)
		cfg.Strategy = st
		Run(cfg)
	})
}
