package lint

import (
	"go/token"
	"os"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

// runFixture loads one testdata package (excluded from ./... by the
// testdata rule, buildable when named explicitly), runs the analyzers over
// it, and checks the findings against the fixture's `// want` comments:
// every diagnostic must match a backtick-quoted regex on its line, and
// every want must be matched by exactly one diagnostic.
func runFixture(t *testing.T, pattern string, analyzers ...*Analyzer) {
	t.Helper()
	pkgs, err := Load(".", []string{pattern})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for %s, want 1", len(pkgs), pattern)
	}
	pkg := pkgs[0]
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string]map[int][]*want) // file -> line -> wants
	for _, path := range pkg.GoFiles {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		wants[path] = make(map[int][]*want)
		for i, line := range strings.Split(string(src), "\n") {
			_, spec, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, quoted := range regexp.MustCompile("`[^`]*`").FindAllString(spec, -1) {
				re, err := regexp.Compile(quoted[1 : len(quoted)-1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex: %v", path, i+1, err)
				}
				wants[path][i+1] = append(wants[path][i+1], &want{re: re})
			}
		}
	}

	for _, d := range diags {
		ws := wants[d.Pos.Filename][d.Pos.Line]
		found := false
		for _, w := range ws {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: want %q: no diagnostic matched", file, line, w.re)
				}
			}
		}
	}
}

func TestWallclockFixture(t *testing.T) {
	runFixture(t, "./testdata/src/wallclock", Wallclock(CriticalPackages))
}

func TestWallclockCriticalFixture(t *testing.T) {
	// The fixture's own import path is the critical list, so the fixture
	// exercises the no-exceptions branch without touching a real critical
	// package.
	runFixture(t, "./testdata/src/wallclockcrit",
		Wallclock([]string{"p3/internal/lint/testdata/src/wallclockcrit"}))
}

func TestMapOrderFixture(t *testing.T) {
	// The fixture declares its own Engine.At sink; configuring it here
	// exercises exactly the matching path DefaultSinks uses for sim.
	runFixture(t, "./testdata/src/maporder",
		MapOrder([]Sink{{Pkg: "p3/internal/lint/testdata/src/maporder", Recv: "Engine", Name: "At"}}))
}

func TestSizeBudgetFixture(t *testing.T) {
	if runtime.GOARCH != "amd64" && runtime.GOARCH != "arm64" {
		t.Skipf("budgets are stated for 64-bit targets; GOARCH=%s", runtime.GOARCH)
	}
	runFixture(t, "./testdata/src/sizebudget", SizeBudget())
}

// TestSizeBudgetRealStructs pins the live annotations: sim's event struct
// and sched.Item carry //p3:sizebudget 32, and the analyzer must agree
// silently. If this test fails, a field was added to a budgeted hot struct
// — see internal/lint/doc.go for the measured cliffs before changing the
// budget.
func TestSizeBudgetRealStructs(t *testing.T) {
	if runtime.GOARCH != "amd64" && runtime.GOARCH != "arm64" {
		t.Skipf("budgets are stated for 64-bit targets; GOARCH=%s", runtime.GOARCH)
	}
	pkgs, err := Load(".", []string{"p3/internal/sim", "p3/internal/sched"})
	if err != nil {
		t.Fatal(err)
	}
	budgeted := 0
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, []*Analyzer{SizeBudget()})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("unexpected diagnostic: %s", d)
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if d, ok := ParseDirective(c.Text, pkg.Fset.Position(c.Pos())); ok && d.Name == "sizebudget" {
						budgeted++
					}
				}
			}
		}
	}
	if budgeted != 2 {
		t.Errorf("found %d //p3:sizebudget directives in sim+sched, want 2 (event and Item)", budgeted)
	}
}

func TestNoEscapeFixture(t *testing.T) {
	diags, err := NoEscape(".", []string{"./testdata/src/noescape"})
	if err != nil {
		t.Fatal(err)
	}
	var leaks, others []string
	for _, d := range diags {
		if strings.Contains(d.Message, "function leak") {
			leaks = append(leaks, d.String())
		} else {
			others = append(others, d.String())
		}
	}
	if len(leaks) == 0 {
		t.Errorf("leak's new(int) escape was not reported")
	}
	if len(others) > 0 {
		t.Errorf("diagnostics outside leak (clean, exempted and unmarked must pass):\n%s", strings.Join(others, "\n"))
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text      string
		ok        bool
		name, arg string
	}{
		{"//p3:wallclock-ok measuring real throughput", true, "wallclock-ok", "measuring real throughput"},
		{"//p3:sizebudget 32", true, "sizebudget", "32"},
		{"//p3:noescape", true, "noescape", ""},
		{"// p3:wallclock-ok spaced out", false, "", ""},
		{"//p3: empty name", false, "", ""},
		{"// plain comment", false, "", ""},
	}
	for _, c := range cases {
		d, ok := ParseDirective(c.text, token.Position{})
		if ok != c.ok || d.Name != c.name || d.Arg != c.arg {
			t.Errorf("ParseDirective(%q) = {%q %q} %v, want {%q %q} %v", c.text, d.Name, d.Arg, ok, c.name, c.arg, c.ok)
		}
	}
}

func TestParseSink(t *testing.T) {
	s, err := ParseSink("p3/internal/sim.(Engine).At")
	if err != nil || s != (Sink{Pkg: "p3/internal/sim", Recv: "Engine", Name: "At"}) {
		t.Errorf("ParseSink method form: %+v, %v", s, err)
	}
	s, err = ParseSink("p3/internal/sim.Run")
	if err != nil || s != (Sink{Pkg: "p3/internal/sim", Name: "Run"}) {
		t.Errorf("ParseSink func form: %+v, %v", s, err)
	}
	if _, err := ParseSink("garbage"); err == nil {
		t.Error("ParseSink(garbage): want error")
	}
	if got := (Sink{Pkg: "p", Recv: "R", Name: "M"}).String(); got != "p.(R).M" {
		t.Errorf("Sink.String() = %q", got)
	}
}
