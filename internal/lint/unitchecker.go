package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// vetConfig is the JSON configuration cmd/go hands a -vettool for each
// compilation unit (the x/tools unitchecker wire format, reimplemented here
// from the standard library alone). Test variants arrive as their own units
// — "p3/internal/sim [p3/internal/sim.test]" — so `go vet -vettool` covers
// test files without p3lint's standalone loader having to.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes analyzers over the single compilation unit described by
// the vet config at cfgPath, printing findings to w in vet's plain-text
// format. It returns the number of findings. p3lint exchanges no facts, but
// cmd/go expects the vetx output file to exist, so an empty one is always
// written.
func RunUnit(cfgPath string, analyzers []*Analyzer, w io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	// Only this module's packages carry p3 invariants; the dependency
	// closure cmd/go walks (the entire standard library) is skipped without
	// being parsed.
	if cfg.VetxOnly || cfg.ModulePath == "" {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := newInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor(cfg.Compiler, envGOARCH())}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}

	pkg := &Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		GoFiles:    cfg.GoFiles,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Sizes:      conf.Sizes,
	}
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	return len(diags), nil
}
