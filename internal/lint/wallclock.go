package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CriticalPackages are the determinism-critical import paths: everything a
// simulation Result is a pure function of. Inside them the wall clock and
// ambient randomness are banned outright — even the //p3:wallclock-ok
// escape hatch is rejected, because one unseeded read anywhere in these
// packages breaks the N-shard == 1-shard bit-identity contract that PRs 6-9
// pinned (see doc.go).
var CriticalPackages = []string{
	"p3/internal/sim",
	"p3/internal/netsim",
	"p3/internal/cluster",
	"p3/internal/faults",
	"p3/internal/ring",
	"p3/internal/sched",
	"p3/internal/pq",
	"p3/internal/trace",
}

// wallclockForbidden lists the banned package-level functions per package.
// A nil set means "every package-level function except the constructors in
// wallclockAllowed" (the math/rand rule: explicitly seeded generators are
// fine, the shared global source is not).
var wallclockForbidden = map[string]map[string]bool{
	"time": {
		"Now":       true,
		"Since":     true,
		"Until":     true,
		"After":     true,
		"Tick":      true,
		"NewTimer":  true,
		"NewTicker": true,
		"AfterFunc": true,
		"Sleep":     true,
	},
	"math/rand":    nil,
	"math/rand/v2": nil,
}

// wallclockAllowed are the math/rand[/v2] package-level functions that do
// not touch the global (runtime-seeded) source: constructors a caller seeds
// explicitly.
var wallclockAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// Wallclock returns the analyzer forbidding wall-clock reads and
// global-source randomness, with critical treated as the no-exceptions
// package list.
func Wallclock(critical []string) *Analyzer {
	criticalSet := make(map[string]bool, len(critical))
	for _, p := range critical {
		criticalSet[p] = true
	}
	az := &Analyzer{
		Name: "wallclock",
		Doc: "forbid time.Now/Since/timers and global math/rand in simulation code: " +
			"a Result must be a pure function of its inputs, so real time and " +
			"runtime-seeded randomness may appear only behind a //p3:wallclock-ok " +
			"directive, and never in the determinism-critical packages",
	}
	az.Run = func(pass *Pass) error {
		isCritical := criticalSet[pass.Pkg.Path()]
		for _, f := range pass.Files {
			if pass.IsTestFile(f.Pos()) {
				// Tests measure wall time legitimately (speedup pins,
				// deadline tests); the determinism contract binds the
				// simulation, not its measurement harness.
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if fn.Signature().Recv() != nil {
					return true // methods (e.g. on a seeded *rand.Rand) are fine
				}
				pkgPath := fn.Pkg().Path()
				forbidden, watched := wallclockForbidden[pkgPath]
				if !watched {
					return true
				}
				if forbidden != nil {
					if !forbidden[fn.Name()] {
						return true
					}
				} else if wallclockAllowed[fn.Name()] {
					return true
				}
				use := pkgName(pkgPath) + "." + fn.Name()
				if d := pass.DirectiveNear(sel.Pos(), "wallclock-ok"); d != nil {
					switch {
					case isCritical:
						pass.Reportf(sel.Pos(), "%s in determinism-critical package %s: //p3:wallclock-ok is not honored here (a Result must be a pure function of its inputs)", use, pass.Pkg.Path())
					case d.Arg == "":
						pass.Reportf(sel.Pos(), "//p3:wallclock-ok needs a reason (//p3:wallclock-ok <why this wall-clock use is sound>)")
					}
					return true
				}
				if isCritical {
					pass.Reportf(sel.Pos(), "%s in determinism-critical package %s: simulation time comes from the engine, randomness from a seeded generator", use, pass.Pkg.Path())
				} else {
					pass.Reportf(sel.Pos(), "%s reads wall-clock state; annotate //p3:wallclock-ok <reason> if this site is genuinely about real time", use)
				}
				return true
			})
		}
		return nil
	}
	return az
}

// pkgName renders the conventional package qualifier of an import path
// ("math/rand/v2" -> "rand").
func pkgName(path string) string {
	name := path[strings.LastIndexByte(path, '/')+1:]
	if name == "v2" {
		name = path[:strings.LastIndexByte(path, '/')]
		name = name[strings.LastIndexByte(name, '/')+1:]
	}
	return name
}
