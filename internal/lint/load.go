package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths, build-constraint filtered, no tests
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Sizes      types.Sizes
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load lists, parses and type-checks the packages matching patterns,
// resolved relative to dir. Dependencies are imported from compiled export
// data (`go list -export`), so only the target packages themselves are
// parsed — the same architecture go vet uses, built from the standard
// library alone. Test files are not loaded; the `go vet -vettool` path
// covers test variants (cmd/go hands each test package to the tool as its
// own compilation unit).
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	sizes := types.SizesFor("gc", envGOARCH())

	var out []*Package
	for _, p := range targets {
		pkg, err := typeCheck(fset, imp, sizes, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typeCheck parses and checks one listed package.
func typeCheck(fset *token.FileSet, imp types.Importer, sizes types.Sizes, p *listPkg) (*Package, error) {
	var files []*ast.File
	var paths []string
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	info := newInfo()
	conf := types.Config{Importer: imp, Sizes: sizes}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		GoFiles:    paths,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Sizes:      sizes,
	}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

func envGOARCH() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	return runtime.GOARCH
}
