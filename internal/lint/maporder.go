package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Sink names one event-scheduling or queue-mutation entry point: calling it
// from inside a map iteration makes event order a function of Go's
// randomized map layout. Recv is the receiver's named type ("" for a
// package-level function); interface methods (sim.Proc, sim.Exec) match the
// interface's declared method.
type Sink struct {
	Pkg  string
	Recv string
	Name string
}

func (s Sink) String() string {
	if s.Recv == "" {
		return s.Pkg + "." + s.Name
	}
	return s.Pkg + ".(" + s.Recv + ")." + s.Name
}

// ParseSink decodes "pkg.(Recv).Method" or "pkg.Func" (the -maporder.sinks
// wire format; pkg is a full import path and may itself contain dots).
func ParseSink(spec string) (Sink, error) {
	if i := strings.Index(spec, ".("); i >= 0 {
		rest := spec[i+2:]
		j := strings.Index(rest, ").")
		if j < 0 {
			return Sink{}, fmt.Errorf("malformed sink %q (want pkg.(Recv).Method)", spec)
		}
		return Sink{Pkg: spec[:i], Recv: rest[:j], Name: rest[j+2:]}, nil
	}
	i := strings.LastIndexByte(spec, '.')
	if i < 0 {
		return Sink{}, fmt.Errorf("malformed sink %q (want pkg.Func or pkg.(Recv).Method)", spec)
	}
	return Sink{Pkg: spec[:i], Name: spec[i+1:]}, nil
}

// DefaultSinks are the repo's real scheduling entry points: the discrete
// -event engines' scheduling calls, the cross-shard send, the scheduler
// queue mutation, and netsim's message/fault injection surface.
var DefaultSinks = []Sink{
	{"p3/internal/sim", "Engine", "At"},
	{"p3/internal/sim", "Engine", "After"},
	{"p3/internal/sim", "Proc", "At"},
	{"p3/internal/sim", "Proc", "After"},
	{"p3/internal/sim", "Exec", "Cross"},
	{"p3/internal/sim", "Single", "Cross"},
	{"p3/internal/sim", "Parallel", "Cross"},
	{"p3/internal/sched", "Queue", "Push"},
	{"p3/internal/netsim", "Network", "Send"},
	{"p3/internal/netsim", "Network", "ScheduleHostDegrade"},
	{"p3/internal/netsim", "Network", "ScheduleRackDegrade"},
	{"p3/internal/netsim", "Network", "ScheduleSpineDegrade"},
	{"p3/internal/netsim", "Network", "ScheduleAggOutage"},
}

// MapOrder returns the analyzer flagging `range` statements over maps whose
// body — transitively through same-package calls — reaches one of sinks.
// This is the static form of the PR 9 tie bug: every event carries a
// canonical (scheduling time, LP, per-LP order) key stamped in scheduling
// call order, so feeding Schedule/Push/Send from a map walk makes that
// order (and with it the whole Result) a function of Go's per-process map
// seed. The fix is to iterate sorted keys; code that has a genuine reason
// to differ says so with //p3:maporder-ok <reason>.
func MapOrder(sinks []Sink) *Analyzer {
	az := &Analyzer{
		Name: "maporder",
		Doc: "forbid map iteration that (transitively) schedules events or mutates " +
			"scheduler queues: map order is randomized per process, and the engines' " +
			"canonical event keys are stamped in scheduling call order, so such a walk " +
			"perturbs the Result; iterate sorted keys instead",
	}
	az.Run = func(pass *Pass) error {
		m := &mapOrderPass{
			pass:  pass,
			sinks: sinks,
			decls: make(map[*types.Func]*ast.FuncDecl),
			memo:  make(map[*types.Func]*Sink),
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					m.decls[fn] = fd
				}
			}
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				sink := m.bodyReaches(rs.Body)
				if sink == nil {
					return true
				}
				if d := pass.DirectiveNear(rs.Pos(), "maporder-ok"); d != nil {
					if d.Arg == "" {
						pass.Reportf(rs.Pos(), "//p3:maporder-ok needs a reason (//p3:maporder-ok <why this order is sound>)")
					}
					return true
				}
				pass.Reportf(rs.Pos(), "map iteration over %s reaches event scheduling (%s): map order is randomized per process and would perturb the canonical event order — iterate keys in sorted order", types.ExprString(rs.X), sink)
				return true
			})
		}
		return nil
	}
	return az
}

type mapOrderPass struct {
	pass  *Pass
	sinks []Sink
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func]*Sink // nil entry = in progress or clean
}

// bodyReaches walks one statement body (including nested function
// literals: a closure built per map element is scheduled work whose
// creation order is the map's) and returns the first sink reachable from
// it, or nil.
func (m *mapOrderPass) bodyReaches(body ast.Node) (found *Sink) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := m.callee(call)
		if fn == nil {
			return true
		}
		if s := m.matchSink(fn); s != nil {
			found = s
			return false
		}
		if s := m.funcReaches(fn); s != nil {
			found = s
			return false
		}
		return true
	})
	return found
}

// funcReaches reports the first sink reachable from fn's body, for
// functions declared in the package under analysis (other packages are
// opaque beyond the sink list itself). Results are memoized; recursion
// terminates because an in-progress function reads as clean, which is sound
// for reachability (some finite call chain hits the sink first).
func (m *mapOrderPass) funcReaches(fn *types.Func) *Sink {
	if s, seen := m.memo[fn]; seen {
		return s
	}
	decl := m.decls[fn]
	if decl == nil {
		return nil
	}
	m.memo[fn] = nil
	s := m.bodyReaches(decl.Body)
	m.memo[fn] = s
	return s
}

// callee resolves a call expression to the called named function or method,
// or nil for indirect calls (function values, conversions, builtins).
func (m *mapOrderPass) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := m.pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := m.pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := m.pass.Info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// matchSink reports whether fn is one of the configured sinks.
func (m *mapOrderPass) matchSink(fn *types.Func) *Sink {
	if fn.Pkg() == nil {
		return nil
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	recvName := ""
	if recv := fn.Signature().Recv(); recv != nil {
		recvName = namedTypeName(recv.Type())
	}
	for i := range m.sinks {
		s := &m.sinks[i]
		if s.Pkg == pkg && s.Name == name && s.Recv == recvName {
			return s
		}
	}
	return nil
}

// namedTypeName unwraps pointers and generic instantiation to the bare
// receiver type name ("*Queue[T]" -> "Queue"; unnamed receivers -> "").
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return "" // receiver of an interface method literal; matched via Uses
	}
	return ""
}
