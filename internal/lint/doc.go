// Package lint statically enforces the contracts this repo's correctness
// and performance results rest on. Every invariant below was first paid for
// dynamically — a divergence hunted across shard counts, a benchmark
// regression bisected to a struct field — and each analyzer is the static
// form of one of those lessons: the tree fails `go vet` at the moment the
// contract is broken, instead of a determinism test or a benchmark gate
// failing several PRs later.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is built on the standard library alone: packages load via
// `go list -deps -export` with dependencies type-checked from compiled
// export data, and cmd/p3lint additionally speaks cmd/go's vettool protocol
// (-flags, -V=full, per-unit vet.cfg), so the same analyzers run standalone
// and under `go vet -vettool`.
//
// # The invariants
//
// wallclock — a simulation Result must be a pure function of its inputs.
// The discrete-event engines define time; the cluster model pre-draws all
// randomness from seeded PCG streams (compute jitter is precomputed
// per (worker, iteration) exactly so that event order cannot perturb the
// random sequence). One time.Now or global-rand read anywhere in the
// determinism-critical packages (sim, netsim, cluster, faults, ring, sched,
// pq, trace) silently breaks the N-shard == 1-shard bit-identity contract,
// so there the analyzer rejects wall-clock reads outright — even annotated
// ones. Elsewhere (the real pstcp transport, experiment harnesses that
// report wall-clock throughput, the CLI binaries) real time is legitimate
// and is declared with //p3:wallclock-ok <reason>. Methods on an explicitly
// seeded *rand.Rand and the seeded constructors (rand.New, NewPCG, ...) are
// always fine; it is the runtime-seeded package-level source that is banned.
//
// maporder — every event carries a canonical (scheduling time, LP, per-LP
// order) tie key, stamped in scheduling call order. Feeding a scheduling
// call — Engine.At/After, Proc.At/After, an Exec.Cross send, sched's
// Queue.Push, netsim's Send and fault-injection surface — from a `range`
// over a map makes that order, and with it the whole Result, a function of
// Go's per-process map seed. This is the static form of the PR 9
// local-vs-cross tie bug, which surfaced only at particular shard counts.
// The analyzer follows calls transitively within the package, including
// through closures built in the loop body; iterate sorted keys instead, or
// document a genuinely order-insensitive walk with //p3:maporder-ok <reason>.
//
// sizebudget — two hot structs sit on measured performance cliffs, pinned
// with //p3:sizebudget 32:
//
//   - sim's event struct (32 bytes: at, sched, packed ord, fn). The event
//     heap moves events by value; at 32 bytes those copies are compiled to
//     register moves. One more word pushes them off that path and was
//     measured (PR 9) to roughly triple per-event heap cost — the
//     difference between ~17ns and ~50ns per event across a
//     quarter-billion-event sweep. That is why lp and seq share the packed
//     ord word instead of having fields of their own.
//
//   - sched.Item (32 bytes, 4 fields: Priority, Bytes, Dest, rank). A
//     Less(a, b Item) interface call passes both items by value in the
//     amd64 ABI's nine integer argument registers; a fifth field spills
//     both arguments to the stack, measured (PR 5) as a ~45% regression on
//     the dispatch hot path (BenchmarkQueueManyFlows/p3). That is also why
//     Item has no Src field — the element's origin is a property of the
//     queue, injected per discipline via ApplySource.
//
// The analyzer recomputes each annotated struct's size under the gc layout
// (types.Sizes) and fails on any mismatch, in either direction: growth is
// the regression itself, shrinkage means the budget and its justifying
// comment are stale and the cliff must be re-measured. Budgets are stated
// for 64-bit targets; on 32-bit the analyzer is silent rather than wrong.
//
// noescape — PR 4 drove the pq and sched dispatch paths to 0 allocs/op in
// steady state (free-listed flow shells, slab-backed heaps), and the
// benchmark gate pins that dynamically. The //p3:noescape directive pins it
// statically: cmd/p3lint compiles the module with -gcflags='<module>/...=-m'
// and fails if any "escapes to heap"/"moved to heap" diagnostic lands
// inside a marked function. Generics make the module-wide build necessary:
// escape analysis of a generic hot path happens in the *importing*
// package's compilation, with positions pointing back into the defining
// file. Documented cold-path allocations inside a marked function — the
// first flow shell per destination, the per-flow heap — are exempted line
// by line with //p3:alloc-ok <reason>. This pass drives the compiler, so it
// runs standalone (`p3lint -analyzers=noescape ./...`), not under vet; on
// an unchanged tree the diagnostics replay from the build cache.
//
// # Directive grammar
//
// A directive is a comment beginning exactly //p3: (no space, the Go
// directive convention). The name runs to the first space; the remainder is
// the argument. A directive attaches to the line it trails, or to the line
// immediately below when it stands alone — deliberately narrow, so a stale
// directive cannot silently blanket half a file.
//
//	//p3:wallclock-ok <reason>   allow one wall-clock/global-rand use site
//	//p3:maporder-ok <reason>    allow one map-walk-into-scheduling site
//	//p3:sizebudget <bytes>      pin a struct's exact gc size (on the decl)
//	//p3:noescape                forbid heap escapes in this function
//	//p3:alloc-ok <reason>       exempt one line inside a //p3:noescape body
//
// The -ok suppressions require a reason and are rejected in the
// determinism-critical packages (wallclock) — an empty excuse fails the
// build the same way the violation would.
package lint
