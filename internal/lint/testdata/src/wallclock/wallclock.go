// Package wallclock is the failing fixture for the wallclock analyzer in a
// NON-critical package: wall-clock reads need a //p3:wallclock-ok <reason>,
// seeded generators are always fine. Each `// want "re"` comment is the
// diagnostic the harness requires on that line.
package wallclock

import (
	"math/rand/v2"
	"time"
)

func bareNow() int64 {
	return time.Now().UnixNano() // want `time\.Now reads wall-clock state`
}

func bareTimer() {
	t := time.NewTimer(time.Second) // want `time\.NewTimer reads wall-clock state`
	defer t.Stop()
	time.Sleep(time.Millisecond) // want `time\.Sleep reads wall-clock state`
}

func excused() time.Time {
	//p3:wallclock-ok fixture demonstrates an annotated real-time site
	return time.Now()
}

func excusedTrailing() time.Time {
	return time.Now() //p3:wallclock-ok trailing directives attach to their own line
}

func noReason() time.Time {
	//p3:wallclock-ok
	return time.Now() // want `//p3:wallclock-ok needs a reason`
}

func globalRand() int64 {
	return rand.Int64() // want `rand\.Int64 reads wall-clock state`
}

// seededRand is clean: constructors are allowed, and methods on an
// explicitly seeded generator are not package-level reads.
func seededRand(seed uint64) float64 {
	r := rand.New(rand.NewPCG(seed, seed))
	return r.Float64()
}

// durations touches the time package without touching the clock.
func durations(d time.Duration) float64 {
	return d.Seconds() + time.Millisecond.Seconds()
}
