// Package wallclockcrit is the failing fixture for the wallclock analyzer
// in a determinism-CRITICAL package (the harness passes this package's own
// import path as the critical list): wall-clock reads are banned outright,
// and even the //p3:wallclock-ok escape hatch is rejected.
package wallclockcrit

import "time"

func bare() int64 {
	return time.Now().UnixNano() // want `time\.Now in determinism-critical package .*simulation time comes from the engine`
}

func excuseRejected() time.Time {
	//p3:wallclock-ok no excuse is accepted here
	return time.Now() // want `//p3:wallclock-ok is not honored here`
}
