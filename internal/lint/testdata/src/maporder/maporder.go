// Package maporder is the failing fixture for the maporder analyzer. The
// harness configures this package's own Engine.At as the sink, so the
// fixture needs no imports: every shape of "map walk reaches scheduling" —
// direct, through a helper, through a closure — must be flagged, and
// slice walks or suppressed walks must not.
package maporder

// Engine stands in for the simulation engine; At is the configured sink.
type Engine struct{}

func (e *Engine) At(at int64, fn func()) {}

type state struct {
	eng     *Engine
	pending map[int]func()
}

func (s *state) direct() {
	for at, fn := range s.pending { // want `map iteration over s\.pending reaches event scheduling`
		s.eng.At(int64(at), fn)
	}
}

func (s *state) transitive() {
	for at := range s.pending { // want `map iteration over s\.pending reaches event scheduling`
		s.schedule(at)
	}
}

func (s *state) schedule(at int) {
	s.eng.At(int64(at), nil)
}

func (s *state) closure() {
	for at, fn := range s.pending { // want `map iteration over s\.pending reaches event scheduling`
		at, fn := at, fn
		defer func() { s.eng.At(int64(at), fn) }()
	}
}

// sliceWalk is clean: slice order is deterministic.
func (s *state) sliceWalk(ats []int) {
	for _, at := range ats {
		s.eng.At(int64(at), nil)
	}
}

// readOnly is clean: the walk never reaches a sink.
func (s *state) readOnly() int {
	n := 0
	for range s.pending {
		n++
	}
	return n
}

// suppressed documents why its order is sound.
func (s *state) suppressed() {
	//p3:maporder-ok every pending callback is idempotent and self-ordering in this fixture
	for at, fn := range s.pending {
		s.eng.At(int64(at), fn)
	}
}

func (s *state) suppressedNoReason() {
	//p3:maporder-ok
	for at, fn := range s.pending { // want `//p3:maporder-ok needs a reason`
		s.eng.At(int64(at), fn)
	}
}
