// Package knownbad is the end-to-end fixture for cmd/p3lint: it violates
// each analyzer's invariant exactly once, against the real sinks and the
// real directive grammar, so the integration test can assert that both the
// standalone runner and the `go vet -vettool` path surface every analyzer
// with its documented message. It lives under testdata, so ./... wildcards
// (and therefore CI's lint step) never see it.
package knownbad

import (
	"time"

	"p3/internal/sim"
)

// Stamp is the one wallclock violation: an unannotated wall-clock read.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Flush is the one maporder violation: scheduling straight out of a map
// walk, the exact shape of the PR 9 local-vs-cross tie bug.
func Flush(eng *sim.Engine, pending map[int]func()) {
	for at, fn := range pending {
		eng.At(sim.Time(at), fn)
	}
}

// grownEvent is the one sizebudget violation: sim's event layout plus one
// field, still claiming the 32-byte budget.
//
//p3:sizebudget 32
type grownEvent struct {
	at    int64
	sched int64
	ord   uint64
	fn    func()
	tag   uint32
}

var _ = grownEvent{}

var leaked *int

// Leak is the one noescape violation: a //p3:noescape function whose
// allocation escapes, with no //p3:alloc-ok exemption.
//
//p3:noescape
func Leak() *int {
	leaked = new(int)
	return leaked
}
