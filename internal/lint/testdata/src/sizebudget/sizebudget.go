// Package sizebudget is the failing fixture for the sizebudget analyzer.
// The two *Grown structs mirror the repo's budgeted hot structs —
// sim's event and sched.Item, both pinned at 32 bytes — with one field
// added, proving the analyzer fails the exact change the budgets exist to
// catch. Sizes are for 64-bit gc targets (the analyzer is silent on
// 32-bit, and the harness skips there).
package sizebudget

// eventOK matches sim's event layout and its declared budget: clean.
//
//p3:sizebudget 32
type eventOK struct {
	at    int64
	sched int64
	ord   uint64
	fn    func()
}

// eventGrown is eventOK plus one field — the regression the budget on
// sim's event struct pins (one more word pushes heap copies off the
// register-move path and triples per-event cost).
//
//p3:sizebudget 32
type eventGrown struct { // want `struct eventGrown is 40 bytes, declared //p3:sizebudget 32`
	at    int64
	sched int64
	ord   uint64
	fn    func()
	tag   uint32
}

// itemGrown is sched.Item's layout plus the Src field Item deliberately
// does not have — the fifth field spills Less calls past the amd64 ABI's
// integer argument registers (a measured 45% dispatch regression).
//
//p3:sizebudget 32
type itemGrown struct { // want `struct itemGrown is 40 bytes, declared //p3:sizebudget 32`
	Priority int32
	Bytes    int64
	Dest     int32
	rank     uint64
	Src      int32
}

//p3:sizebudget 0
type badArg struct{} // want `//p3:sizebudget "0": want a positive byte count`

//p3:sizebudget many
type badArg2 struct{} // want `//p3:sizebudget "many": want a positive byte count`

//p3:sizebudget 8
type notAStruct int64 // want `//p3:sizebudget on non-struct type notAStruct`

// unbudgeted carries no directive and is never checked.
type unbudgeted struct {
	a, b, c, d, e, f int64
}

var _ = [...]any{eventOK{}, eventGrown{}, itemGrown{}, badArg{}, badArg2{}, notAStruct(0), unbudgeted{}}
