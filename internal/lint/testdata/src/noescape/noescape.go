// Package noescape is the failing fixture for the build-driven noescape
// gate: leak's allocation must be reported, clean and the //p3:alloc-ok
// exempted site must not, and unmarked functions may allocate freely.
package noescape

var sink *int

// leak violates its own contract: new(int) escapes.
//
//p3:noescape
func leak() *int {
	p := new(int)
	sink = p
	return p
}

// clean honors the contract: everything stays in registers or on the stack.
//
//p3:noescape
func clean(x, y int) int {
	s := 0
	for i := x; i < y; i++ {
		s += i
	}
	return s
}

// exempted allocates on a documented line.
//
//p3:noescape
func exempted() *int {
	//p3:alloc-ok fixture demonstrates a documented cold-path allocation
	p := new(int)
	return p
}

// unmarked carries no contract and may allocate.
func unmarked() *int {
	return new(int)
}
