package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// SizeBudget returns the analyzer enforcing //p3:sizebudget <bytes>
// directives on struct declarations: the declared size must match the
// type's size under the gc sizes model exactly. The budgets guard measured
// cliffs, not vague intent — sim's event struct is held at 32 bytes because
// one more word pushes heap copies off the register-move path and triples
// per-event cost, and sched.Item at 32 bytes/4 fields because a fifth field
// spills Less calls past the amd64 ABI's integer argument registers (a
// measured 45% dispatch regression) — so a mismatch in either direction
// fails: growth is the regression itself, shrinkage means the budget (and
// the comment justifying it) is stale and must be re-measured.
//
// Budgets are stated for 64-bit gc targets; on a 32-bit target the analyzer
// is silent rather than wrong.
func SizeBudget() *Analyzer {
	az := &Analyzer{
		Name: "sizebudget",
		Doc: "enforce //p3:sizebudget <bytes> on struct declarations via the " +
			"types.Sizes model, so hot-struct growth fails go vet instead of a " +
			"benchmark gate several PRs later",
	}
	az.Run = func(pass *Pass) error {
		if pass.Sizes == nil || pass.Sizes.Sizeof(types.Typ[types.UnsafePointer]) != 8 {
			return nil
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					d := typeSpecDirective(pass, gd, ts, "sizebudget")
					if d == nil {
						continue
					}
					checkBudget(pass, ts, d)
				}
			}
		}
		return nil
	}
	return az
}

// typeSpecDirective finds a //p3:<name> directive attached to a type
// declaration: in the TypeSpec's doc comment, the enclosing GenDecl's doc
// comment (the usual place for a single-type declaration), or the line
// comment trailing the spec.
func typeSpecDirective(pass *Pass, gd *ast.GenDecl, ts *ast.TypeSpec, name string) *Directive {
	for _, cg := range [...]*ast.CommentGroup{ts.Doc, gd.Doc, ts.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if d, ok := ParseDirective(c.Text, pass.Fset.Position(c.Pos())); ok && d.Name == name {
				return &d
			}
		}
	}
	return nil
}

func checkBudget(pass *Pass, ts *ast.TypeSpec, d *Directive) {
	budget, err := strconv.ParseInt(d.Arg, 10, 64)
	if err != nil || budget <= 0 {
		pass.Reportf(ts.Pos(), "//p3:sizebudget %q: want a positive byte count", d.Arg)
		return
	}
	obj, ok := pass.Info.Defs[ts.Name]
	if !ok {
		return
	}
	t := obj.Type()
	if _, isStruct := t.Underlying().(*types.Struct); !isStruct {
		pass.Reportf(ts.Pos(), "//p3:sizebudget on non-struct type %s (budgets bound struct layout)", ts.Name.Name)
		return
	}
	size := pass.Sizes.Sizeof(t)
	if size != budget {
		pass.Reportf(ts.Pos(), "struct %s is %d bytes, declared //p3:sizebudget %d: re-measure before changing this layout (the budget pins a measured cliff — see the declaration's comment)", ts.Name.Name, size, budget)
	}
}
