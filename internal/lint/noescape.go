package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// noescapeRegion is one function carrying a //p3:noescape directive: the
// contract that compiling it (including every generic instantiation of it)
// produces no "escapes to heap"/"moved to heap" diagnostics, except on
// lines annotated //p3:alloc-ok <reason> (documented cold paths, e.g. a
// queue growing a slab or minting a flow shell that a free list then
// recycles).
type noescapeRegion struct {
	file       string // absolute path
	fn         string
	start, end int          // inclusive line range of the declaration
	allocOK    map[int]bool // lines exempted by //p3:alloc-ok
	pos        token.Position
}

// escapeDiag matches the gc compiler's -m diagnostics.
var escapeDiag = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// NoEscape runs the build-driven zero-allocation gate over the packages
// matching patterns (resolved in dir): it compiles the module's packages
// with -gcflags=<module>/...=-m, so escape diagnostics from every
// compilation unit — including the shape instantiations of generic hot
// paths, which the compiler analyzes in the *importing* package — are
// collected, then reports any heap escape whose position falls inside a
// //p3:noescape function. This cannot be a pure go/analysis pass: escape
// analysis is the compiler's, not the type checker's, so the gate drives
// `go build` and parses its diagnostics (replayed from the build cache on
// unchanged code, so repeated runs are cheap).
func NoEscape(dir string, patterns []string) ([]Diagnostic, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	listed, err := goList(dir, append([]string{"list", "-json=ImportPath,Dir,GoFiles,Standard,DepOnly,Module"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var modulePath string
	fset := token.NewFileSet()
	var regions []noescapeRegion
	for _, p := range listed {
		if p.Standard || p.Module == nil {
			continue
		}
		if modulePath == "" {
			modulePath = p.Module.Path
		}
		for _, name := range p.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(p.Dir, name)
			}
			rs, err := markedFunctions(fset, path)
			if err != nil {
				return nil, err
			}
			regions = append(regions, rs...)
		}
	}
	if len(regions) == 0 {
		return nil, nil
	}

	args := append([]string{"build", "-gcflags=" + modulePath + "/...=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}

	var diags []Diagnostic
	seen := make(map[string]bool)
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := escapeDiag.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(absDir, filepath.Clean(file))
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		msg := m[4]
		for i := range regions {
			r := &regions[i]
			if file != r.file || line < r.start || line > r.end {
				continue
			}
			if r.allocOK[line] {
				break
			}
			key := fmt.Sprintf("%s:%d:%d:%s", file, line, col, msg)
			if seen[key] {
				break
			}
			seen[key] = true
			diags = append(diags, Diagnostic{
				Analyzer: "noescape",
				Pos:      token.Position{Filename: file, Line: line, Column: col},
				Message:  fmt.Sprintf("heap escape in //p3:noescape function %s: %s (the dispatch hot paths are pinned at 0 allocs/op; move the allocation off the hot path or annotate the line //p3:alloc-ok <reason>)", r.fn, msg),
			})
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// markedFunctions parses one file and returns the //p3:noescape regions in
// it: each marked function or method declaration, with its //p3:alloc-ok
// exemption lines. The directive must sit in the function's doc comment.
func markedFunctions(fset *token.FileSet, path string) ([]noescapeRegion, error) {
	src, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	// Index //p3:alloc-ok lines once per file; each region keeps the lines
	// inside its own span.
	allocOK := make(map[int]bool)
	for _, cg := range src.Comments {
		for _, c := range cg.List {
			if d, ok := ParseDirective(c.Text, fset.Position(c.Pos())); ok && d.Name == "alloc-ok" {
				// The exemption covers the directive's own line and the one
				// below — same two-line attachment rule as every directive.
				allocOK[d.Pos.Line] = true
				allocOK[d.Pos.Line+1] = true
			}
		}
	}
	var out []noescapeRegion
	for _, decl := range src.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || fd.Body == nil {
			continue
		}
		marked := false
		for _, c := range fd.Doc.List {
			if d, ok := ParseDirective(c.Text, fset.Position(c.Pos())); ok && d.Name == "noescape" {
				marked = true
				break
			}
		}
		if !marked {
			continue
		}
		start := fset.Position(fd.Pos())
		end := fset.Position(fd.End())
		region := noescapeRegion{
			file:  path,
			fn:    funcDisplayName(fd),
			start: start.Line,
			end:   end.Line,
			pos:   start,
		}
		for line := range allocOK {
			if line >= region.start && line <= region.end {
				if region.allocOK == nil {
					region.allocOK = make(map[int]bool)
				}
				region.allocOK[line] = true
			}
		}
		out = append(out, region)
	}
	return out, nil
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := types.ExprString(fd.Recv.List[0].Type)
	return "(" + recv + ")." + fd.Name.Name
}
