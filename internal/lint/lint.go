package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. The framework mirrors the shape of
// golang.org/x/tools/go/analysis deliberately — Name/Doc/Run over a Pass —
// but is self-contained: the toolchain image carries no module cache, so
// p3lint depends on nothing outside the standard library.
type Analyzer struct {
	// Name is the canonical analyzer name ("wallclock", "maporder", ...).
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one type-checked package and reports findings.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Sizes    types.Sizes
	// Report records a finding. The framework stamps the analyzer name.
	Report func(Diagnostic)

	dirs map[string]map[int][]Directive // filename -> line -> directives
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Directive is one //p3:<name> <arg> comment. The grammar is the repo's
// invariant-annotation language (see doc.go): the comment must start exactly
// with "//p3:" (no space — the Go directive-comment convention), the name
// runs to the first space, and everything after it is the argument (a
// human-readable reason for the -ok suppressions, a byte count for
// sizebudget).
type Directive struct {
	Name string
	Arg  string
	Pos  token.Position
}

// ParseDirective decodes a single comment's text, returning ok=false for
// non-directive comments.
func ParseDirective(text string, pos token.Position) (Directive, bool) {
	const prefix = "//p3:"
	if !strings.HasPrefix(text, prefix) {
		return Directive{}, false
	}
	rest := text[len(prefix):]
	name, arg := rest, ""
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		name, arg = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Arg: arg, Pos: pos}, true
}

// directiveIndex lazily builds the per-file line index of //p3: directives.
func (p *Pass) directiveIndex() map[string]map[int][]Directive {
	if p.dirs != nil {
		return p.dirs
	}
	p.dirs = make(map[string]map[int][]Directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				d, ok := ParseDirective(c.Text, pos)
				if !ok {
					continue
				}
				byLine := p.dirs[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]Directive)
					p.dirs[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return p.dirs
}

// DirectiveNear returns the named directive attached to the source line at
// pos: on the line itself (trailing comment) or on the line immediately
// above (a directive comment of its own). That two-line rule is the whole
// attachment grammar — deliberately narrow, so a stale directive cannot
// silently blanket half a file.
func (p *Pass) DirectiveNear(pos token.Pos, name string) *Directive {
	position := p.Fset.Position(pos)
	byLine := p.directiveIndex()[position.Filename]
	if byLine == nil {
		return nil
	}
	for _, line := range [2]int{position.Line, position.Line - 1} {
		for i := range byLine[line] {
			if byLine[line][i].Name == name {
				return &byLine[line][i]
			}
		}
	}
	return nil
}

// Reportf formats and records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// RunAnalyzers runs each analyzer over pkg and returns the findings sorted
// by position then analyzer name, so output order is stable for golden
// comparisons and CI logs.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, az := range analyzers {
		pass := &Pass{
			Analyzer: az,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Sizes:    pkg.Sizes,
		}
		pass.Report = func(d Diagnostic) { out = append(out, d) }
		if err := az.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", az.Name, pkg.ImportPath, err)
		}
	}
	SortDiagnostics(out)
	return out, nil
}

// SortDiagnostics orders findings by file, line, column, analyzer, message.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
