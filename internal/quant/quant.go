// Package quant implements the gradient-quantization baselines the paper
// positions P3 against in its related work (Section 6): QSGD (Alistarh et
// al. 2017), TernGrad (Wen et al. 2017) and 1-bit SGD with error feedback
// (Seide et al. 2014). Each codec consumes a dense gradient and returns the
// gradient the receiving end would reconstruct, plus the wire cost in bits —
// so the trainer can measure both the statistical effect (information loss)
// and the bandwidth saving, the trade-off P3 refuses to make.
//
// All stochastic codecs draw from an explicit seeded generator: runs are
// reproducible.
package quant

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Codec transforms a worker's local gradient into what the far end decodes.
type Codec interface {
	// EncodeDecode quantizes grad for tensor t and returns the decoded
	// gradient (same length) and the number of wire bits the encoding
	// would occupy.
	EncodeDecode(t int, grad []float64) (decoded []float64, wireBits int64)
	// Name identifies the codec.
	Name() string
}

// ---- QSGD ----

// QSGD is stochastic uniform quantization with s levels per half-axis:
// each coordinate becomes ||v||_2 * sign(v_i) * xi_i with xi_i an integer
// multiple of 1/s, chosen stochastically so the estimate is unbiased.
type QSGD struct {
	Levels int // s; 2^b - 1 levels for b-bit quantization
	rng    *rand.Rand
}

// NewQSGD creates a QSGD codec with the given level count and seed.
func NewQSGD(levels int, seed int64) *QSGD {
	if levels < 1 {
		panic(fmt.Sprintf("quant: QSGD needs >= 1 level, got %d", levels))
	}
	return &QSGD{Levels: levels, rng: rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0x95D))}
}

// Name implements Codec.
func (q *QSGD) Name() string { return fmt.Sprintf("qsgd-%d", q.Levels) }

// EncodeDecode implements Codec.
func (q *QSGD) EncodeDecode(_ int, grad []float64) ([]float64, int64) {
	norm := 0.0
	for _, g := range grad {
		norm += g * g
	}
	norm = math.Sqrt(norm)
	out := make([]float64, len(grad))
	if norm == 0 {
		return out, 32 // just the norm
	}
	s := float64(q.Levels)
	for i, g := range grad {
		u := math.Abs(g) / norm * s // in [0, s]
		lo := math.Floor(u)
		level := lo
		if q.rng.Float64() < u-lo {
			level = lo + 1
		}
		val := norm * level / s
		if g < 0 {
			val = -val
		}
		out[i] = val
	}
	// Wire cost: 32-bit norm + per coordinate sign + ceil(log2(s+1)) bits.
	bitsPer := int64(math.Ceil(math.Log2(s+1))) + 1
	return out, 32 + bitsPer*int64(len(grad))
}

// ---- TernGrad ----

// TernGrad quantizes to three levels {-1, 0, +1} scaled by the max
// magnitude, stochastically and unbiasedly.
type TernGrad struct {
	rng *rand.Rand
}

// NewTernGrad creates a TernGrad codec.
func NewTernGrad(seed int64) *TernGrad {
	return &TernGrad{rng: rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0x7E4))}
}

// Name implements Codec.
func (t *TernGrad) Name() string { return "terngrad" }

// EncodeDecode implements Codec.
func (t *TernGrad) EncodeDecode(_ int, grad []float64) ([]float64, int64) {
	var maxAbs float64
	for _, g := range grad {
		if a := math.Abs(g); a > maxAbs {
			maxAbs = a
		}
	}
	out := make([]float64, len(grad))
	if maxAbs == 0 {
		return out, 32
	}
	for i, g := range grad {
		p := math.Abs(g) / maxAbs
		if t.rng.Float64() < p {
			if g < 0 {
				out[i] = -maxAbs
			} else {
				out[i] = maxAbs
			}
		}
	}
	// 32-bit scale + 2 bits per coordinate (ternary).
	return out, 32 + 2*int64(len(grad))
}

// ---- 1-bit SGD ----

// OneBit quantizes every coordinate to one bit (sign), scaling positive and
// negative halves by their respective means, and carries the quantization
// error into the next step (error feedback) — without which it diverges.
type OneBit struct {
	err [][]float64
}

// NewOneBit creates a 1-bit codec for tensors of the given sizes.
func NewOneBit(sizes []int) *OneBit {
	o := &OneBit{err: make([][]float64, len(sizes))}
	for i, n := range sizes {
		o.err[i] = make([]float64, n)
	}
	return o
}

// Name implements Codec.
func (o *OneBit) Name() string { return "1bit" }

// EncodeDecode implements Codec.
func (o *OneBit) EncodeDecode(t int, grad []float64) ([]float64, int64) {
	e := o.err[t]
	if len(e) != len(grad) {
		panic(fmt.Sprintf("quant: tensor %d has %d coords, gradient %d", t, len(e), len(grad)))
	}
	// Corrected gradient = fresh gradient + carried error.
	corrected := make([]float64, len(grad))
	for i := range grad {
		corrected[i] = grad[i] + e[i]
	}
	var posSum, negSum float64
	var posN, negN int
	for _, c := range corrected {
		if c >= 0 {
			posSum += c
			posN++
		} else {
			negSum += c
			negN++
		}
	}
	posMean, negMean := 0.0, 0.0
	if posN > 0 {
		posMean = posSum / float64(posN)
	}
	if negN > 0 {
		negMean = negSum / float64(negN)
	}
	out := make([]float64, len(grad))
	for i, c := range corrected {
		if c >= 0 {
			out[i] = posMean
		} else {
			out[i] = negMean
		}
		e[i] = c - out[i] // error feedback
	}
	// Two 32-bit scales + 1 bit per coordinate.
	return out, 64 + int64(len(grad))
}

// CompressionRatio returns the ratio of dense float32 wire size to the
// codec's wire size for a gradient of n coordinates costing bits.
func CompressionRatio(n int, bits int64) float64 {
	return float64(32*n) / float64(bits)
}
