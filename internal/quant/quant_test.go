package quant

import (
	"math"
	"math/rand/v2"
	"testing"
)

func randGrad(rng *rand.Rand, n int) []float64 {
	g := make([]float64, n)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	return g
}

// TestQSGDUnbiased: averaging many independent quantizations recovers the
// original gradient (QSGD's defining property).
func TestQSGDUnbiased(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := randGrad(rng, 32)
	q := NewQSGD(4, 7)
	const trials = 4000
	mean := make([]float64, len(g))
	for k := 0; k < trials; k++ {
		dec, _ := q.EncodeDecode(0, g)
		for i := range mean {
			mean[i] += dec[i] / trials
		}
	}
	for i := range g {
		if math.Abs(mean[i]-g[i]) > 0.15 {
			t.Fatalf("coord %d: E[quantized] = %v, want %v", i, mean[i], g[i])
		}
	}
}

func TestQSGDLevelsAreDiscrete(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	g := randGrad(rng, 64)
	q := NewQSGD(4, 9)
	dec, bits := q.EncodeDecode(0, g)
	norm := 0.0
	for _, x := range g {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	for i, d := range dec {
		level := math.Abs(d) / norm * 4
		if math.Abs(level-math.Round(level)) > 1e-9 {
			t.Fatalf("coord %d: %v is not a level multiple", i, d)
		}
	}
	// 4 levels: 3 bits + sign... ceil(log2(5)) = 3, +1 sign = 4 bits/coord.
	if want := int64(32 + 4*64); bits != want {
		t.Fatalf("wire bits = %d, want %d", bits, want)
	}
}

func TestQSGDZeroGradient(t *testing.T) {
	q := NewQSGD(4, 1)
	dec, _ := q.EncodeDecode(0, make([]float64, 8))
	for _, d := range dec {
		if d != 0 {
			t.Fatal("zero gradient quantized to nonzero")
		}
	}
}

func TestQSGDPanicsOnBadLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("levels=0 accepted")
		}
	}()
	NewQSGD(0, 1)
}

// TestTernGradUnbiasedAndTernary.
func TestTernGradUnbiased(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	g := randGrad(rng, 16)
	tg := NewTernGrad(11)
	const trials = 6000
	mean := make([]float64, len(g))
	for k := 0; k < trials; k++ {
		dec, _ := tg.EncodeDecode(0, g)
		var maxAbs float64
		for _, x := range g {
			if a := math.Abs(x); a > maxAbs {
				maxAbs = a
			}
		}
		for i, d := range dec {
			if d != 0 && math.Abs(math.Abs(d)-maxAbs) > 1e-12 {
				t.Fatalf("coord %d: %v not in {0, +-%v}", i, d, maxAbs)
			}
			mean[i] += d / trials
		}
	}
	for i := range g {
		if math.Abs(mean[i]-g[i]) > 0.2 {
			t.Fatalf("coord %d: E[ternary] = %v, want %v", i, mean[i], g[i])
		}
	}
}

// TestOneBitErrorFeedback: the carried error makes the *cumulative*
// transmitted signal track the cumulative true gradient.
func TestOneBitErrorFeedback(t *testing.T) {
	const n = 16
	o := NewOneBit([]int{n})
	rng := rand.New(rand.NewPCG(7, 8))
	trueSum := make([]float64, n)
	sentSum := make([]float64, n)
	for step := 0; step < 400; step++ {
		g := randGrad(rng, n)
		// Constant bias on coordinate 3 so it has real signal.
		g[3] += 0.5
		dec, bits := o.EncodeDecode(0, g)
		if bits != 64+n {
			t.Fatalf("wire bits = %d", bits)
		}
		for i := range g {
			trueSum[i] += g[i]
			sentSum[i] += dec[i]
		}
	}
	// The residual error is bounded (it is exactly o.err), so cumulative
	// sums must be close after many steps.
	for i := range trueSum {
		if diff := math.Abs(trueSum[i] - sentSum[i]); diff > 5 {
			t.Fatalf("coord %d: cumulative drift %v", i, diff)
		}
	}
}

func TestOneBitShapePanics(t *testing.T) {
	o := NewOneBit([]int{4})
	defer func() {
		if recover() == nil {
			t.Fatal("wrong shape accepted")
		}
	}()
	o.EncodeDecode(0, make([]float64, 5))
}

func TestNames(t *testing.T) {
	if NewQSGD(15, 1).Name() != "qsgd-15" {
		t.Fatal("qsgd name")
	}
	if NewTernGrad(1).Name() != "terngrad" {
		t.Fatal("terngrad name")
	}
	if NewOneBit(nil).Name() != "1bit" {
		t.Fatal("1bit name")
	}
}

func TestCompressionRatio(t *testing.T) {
	// 1-bit on a big tensor approaches 32x.
	if r := CompressionRatio(100_000, 64+100_000); r < 31 || r > 32 {
		t.Fatalf("1-bit ratio %v", r)
	}
	// TernGrad approaches 16x.
	if r := CompressionRatio(100_000, 32+200_000); r < 15.9 || r > 16.1 {
		t.Fatalf("terngrad ratio %v", r)
	}
}
