package ring

import (
	"math"
	"testing"

	"p3/internal/sim"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

// ringGolden is one pre-refactor reference result, captured from the tree
// before the model-aware scheduling wiring (sched.Profile threading, the
// tictac/credit-adaptive disciplines) on resnet110, 4 machines, warmup 2,
// measure 4, seed 1 — mirroring internal/cluster/golden_test.go so the ring
// path's wiring cannot drift either. Throughput is stored as float64 bits
// so the comparison is exact.
type ringGolden struct {
	Strategy       string
	Granularity    strategy.Granularity
	Sched          string
	ThroughputBits uint64
	MeanIterTime   sim.Time
	ComputeIter    sim.Time
	Events         uint64
}

// ringGoldens10 was captured at 10 Gbps (compute-bound) and ringGoldens15
// at 1.5 Gbps (communication-bound: priority separates from fifo). Together
// they pin both regimes for the fifo and p3 disciplines.
var ringGoldens10 = []ringGolden{
	{
		Strategy: "ar-layer", Granularity: strategy.Shards, Sched: "fifo",
		ThroughputBits: 0x40ac114a15bd87d8,
		MeanIterTime:   142513397,
		ComputeIter:    142221830,
		Events:         209040,
	},
	{
		Strategy: "ar-sliced", Granularity: strategy.Slices, Sched: "fifo",
		ThroughputBits: 0x40ac114a15bd87d8,
		MeanIterTime:   142513397,
		ComputeIter:    142221830,
		Events:         209040,
	},
	{
		Strategy: "ar-p3", Granularity: strategy.Slices, Sched: "p3",
		ThroughputBits: 0x40ac114a15bd87d8,
		MeanIterTime:   142513397,
		ComputeIter:    142221830,
		Events:         209040,
	},
}

var ringGoldens15 = []ringGolden{
	{
		Strategy: "ar-layer", Granularity: strategy.Shards, Sched: "fifo",
		ThroughputBits: 0x40ac0c8f8331d64f,
		MeanIterTime:   142607250,
		ComputeIter:    142221830,
		Events:         209040,
	},
	{
		Strategy: "ar-sliced", Granularity: strategy.Slices, Sched: "fifo",
		ThroughputBits: 0x40ac0c8f8331d64f,
		MeanIterTime:   142607250,
		ComputeIter:    142221830,
		Events:         209040,
	},
	{
		Strategy: "ar-p3", Granularity: strategy.Slices, Sched: "p3",
		ThroughputBits: 0x40ac0d68c328083c,
		MeanIterTime:   142590398,
		ComputeIter:    142221830,
		Events:         209040,
	},
}

// TestRingGoldenParity asserts that the fifo and p3 disciplines produce
// bit-identical ring all-reduce Results through the profile-threaded wiring
// that they produced before it existed — threading model knowledge to the
// disciplines that want it must not move a single event for the ones that
// do not.
func TestRingGoldenParity(t *testing.T) {
	cases := []struct {
		gbps    float64
		goldens []ringGolden
	}{
		{10, ringGoldens10},
		{1.5, ringGoldens15},
	}
	for _, c := range cases {
		for _, g := range c.goldens {
			st := strategy.Strategy{Name: g.Strategy, Granularity: g.Granularity, Sched: g.Sched}
			for _, preempt := range []int64{0, 1 << 30} {
				r := runGolden(t, st, c.gbps, preempt)
				checkGolden(t, g, c.gbps, preempt, r)
			}
		}
	}
}

// runGolden executes one golden configuration; preempt > 0 exercises the
// segmented egress path (an over-size quantum: one segment per message,
// which must stay bit-identical — the refactor may only change behaviour
// when a preemption actually fires).
func runGolden(t *testing.T, st strategy.Strategy, gbps float64, preempt int64) Result {
	t.Helper()
	return Run(Config{
		Model:          zoo.ByName("resnet110"),
		Machines:       4,
		Strategy:       st,
		BandwidthGbps:  gbps,
		PreemptQuantum: preempt,
		WarmupIters:    2,
		MeasureIters:   4,
		Seed:           1,
	})
}

func checkGolden(t *testing.T, g ringGolden, gbps float64, preempt int64, r Result) {
	t.Helper()
	if got := math.Float64bits(r.Throughput); got != g.ThroughputBits {
		t.Errorf("%s@%g preempt=%d: throughput bits %#x, want %#x (%.6f vs %.6f)",
			g.Strategy, gbps, preempt, got, g.ThroughputBits,
			r.Throughput, math.Float64frombits(g.ThroughputBits))
	}
	if r.MeanIterTime != g.MeanIterTime {
		t.Errorf("%s@%g preempt=%d: mean iter %d, want %d", g.Strategy, gbps, preempt, r.MeanIterTime, g.MeanIterTime)
	}
	if r.ComputeIter != g.ComputeIter {
		t.Errorf("%s@%g preempt=%d: compute iter %d, want %d", g.Strategy, gbps, preempt, r.ComputeIter, g.ComputeIter)
	}
	if r.Events != g.Events {
		t.Errorf("%s@%g preempt=%d: events %d, want %d", g.Strategy, gbps, preempt, r.Events, g.Events)
	}
}
