//go:build !race

package ring

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
