package ring

import (
	"testing"

	"p3/internal/model"
	"p3/internal/strategy"
	"p3/internal/zoo"
)

func smallModel() *model.Model {
	m := &model.Model{Name: "small", BatchSize: 8, SampleUnit: "images",
		PlateauPerWorker: 100, FwdFraction: 1.0 / 3.0}
	sizes := []int64{200_000, 60_000, 1_200_000, 400_000, 2_000_000}
	for i, s := range sizes {
		m.Layers = append(m.Layers, model.Layer{
			Index: i, Name: string(rune('a' + i)), Kind: model.KindConv,
			Params: s, FwdFLOPs: s * 10,
		})
	}
	return m
}

func cfg(s strategy.Strategy, gbps float64, machines int) Config {
	return Config{
		Model: smallModel(), Machines: machines, Strategy: s,
		BandwidthGbps: gbps, WarmupIters: 1, MeasureIters: 3, Seed: 1,
	}
}

var (
	arLayer  = strategy.Strategy{Name: "ar-layer", Granularity: strategy.Shards, Sched: "fifo"}
	arSliced = strategy.Strategy{Name: "ar-sliced", Granularity: strategy.Slices, Sched: "fifo"}
	arP3     = strategy.Strategy{Name: "ar-p3", Granularity: strategy.Slices, Sched: "p3"}
)

func TestRunCompletes(t *testing.T) {
	for _, s := range []strategy.Strategy{arLayer, arSliced, arP3} {
		r := Run(cfg(s, 5, 4))
		if r.Throughput <= 0 {
			t.Fatalf("%s: throughput %v", s.Name, r.Throughput)
		}
		if r.MeanIterTime < r.ComputeIter {
			t.Fatalf("%s: iteration %v faster than compute %v", s.Name, r.MeanIterTime, r.ComputeIter)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(cfg(arP3, 5, 4))
	b := Run(cfg(arP3, 5, 4))
	if a.Throughput != b.Throughput {
		t.Fatalf("nondeterministic: %v vs %v", a.Throughput, b.Throughput)
	}
}

// TestPriorityHelpsUnderConstraint mirrors the paper's main claim on the
// all-reduce substrate: sliced+priority must beat layer-granularity FIFO at
// low bandwidth.
func TestPriorityHelpsUnderConstraint(t *testing.T) {
	layer := Run(cfg(arLayer, 3, 4))
	p3 := Run(cfg(arP3, 3, 4))
	if p3.Throughput <= layer.Throughput {
		t.Fatalf("ar-p3 (%v) not above ar-layer (%v) at 3 Gbps", p3.Throughput, layer.Throughput)
	}
}

func TestComputeBoundAtHighBandwidth(t *testing.T) {
	m := smallModel()
	r := Run(Config{Model: m, Machines: 4, Strategy: arP3, BandwidthGbps: 200,
		WarmupIters: 1, MeasureIters: 3, Seed: 1})
	perWorker := r.Throughput / 4
	if perWorker < m.PlateauPerWorker*0.95 {
		t.Fatalf("per-worker %v below plateau %v at 200 Gbps", perWorker, m.PlateauPerWorker)
	}
}

func TestThroughputMonotoneInBandwidth(t *testing.T) {
	prev := 0.0
	for _, bw := range []float64{1, 2, 4, 8} {
		r := Run(cfg(arP3, bw, 4))
		if r.Throughput < prev*0.995 {
			t.Fatalf("throughput fell at %v Gbps", bw)
		}
		prev = r.Throughput
	}
}

func TestDifferentRingSizes(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		r := Run(cfg(arP3, 10, n))
		if r.Throughput <= 0 {
			t.Fatalf("n=%d: throughput %v", n, r.Throughput)
		}
		if r.Machines != n {
			t.Fatalf("n=%d: result says %d machines", n, r.Machines)
		}
	}
}

func TestSingleMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1-machine ring accepted")
		}
	}()
	Run(cfg(arP3, 10, 1))
}

func TestInvalidModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid model accepted")
		}
	}()
	Run(Config{Model: &model.Model{Name: "bad"}, Machines: 4, Strategy: arP3, BandwidthGbps: 1})
}

// TestRealModel exercises a zoo model end to end on the ring.
func TestRealModel(t *testing.T) {
	r := Run(Config{Model: zoo.ResNet50(), Machines: 4, Strategy: arP3,
		BandwidthGbps: 10, WarmupIters: 1, MeasureIters: 2, Seed: 1})
	if r.Throughput <= 0 {
		t.Fatal("resnet50 ring run failed")
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

// TestUrgentLayerCompletesFirst transplants the Figure 4 effect onto the
// collective: with priority scheduling, the first (most urgent) layer's
// all-reduce overtakes the bulk layers' traffic; its forward stall shrinks
// accordingly, visible as a shorter iteration.
func TestUrgentLayerCompletesFirst(t *testing.T) {
	// Front-loaded model: tiny first layer behind a huge bulk layer whose
	// gradients appear first in backprop.
	m := &model.Model{Name: "frontload", BatchSize: 8, SampleUnit: "images",
		PlateauPerWorker: 100, FwdFraction: 1.0 / 3.0}
	sizes := []int64{50_000, 4_000_000}
	for i, s := range sizes {
		m.Layers = append(m.Layers, model.Layer{
			Index: i, Name: string(rune('a' + i)), Kind: model.KindConv,
			Params: s, FwdFLOPs: 1_000_000,
		})
	}
	run := func(s strategy.Strategy) Result {
		return Run(Config{Model: m, Machines: 4, Strategy: s,
			BandwidthGbps: 2, WarmupIters: 1, MeasureIters: 3, Seed: 1})
	}
	fifo := run(arSliced)
	prio := run(arP3)
	if prio.MeanIterTime >= fifo.MeanIterTime {
		t.Fatalf("priority iteration %v not below FIFO %v", prio.MeanIterTime, fifo.MeanIterTime)
	}
}
