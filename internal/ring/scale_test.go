package ring

import (
	"testing"

	"p3/internal/strategy"
	"p3/internal/zoo"
)

// TestRunScaledRing is the all-reduce scale smoke: a 16-machine ring runs
// 2(N-1) = 30 rounds per chunk with every machine's reduce queue holding
// one flow per peer — the many-flow regime of the indexed-heap dispatcher.
// (The full 64-machine ring cell lives in `p3bench scale`; its ~40M events
// are too slow for the -race unit suite.)
func TestRunScaledRing(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled ring in -short mode")
	}
	st := strategy.Strategy{Name: "ar-p3", Granularity: strategy.Slices, Sched: "p3"}
	r := Run(Config{
		Model: zoo.ByName("resnet110"), Machines: 16, Strategy: st,
		BandwidthGbps: 10, WarmupIters: 1, MeasureIters: 2, Seed: 3,
	})
	if r.Machines != 16 || r.Throughput <= 0 {
		t.Fatalf("degenerate 16-machine ring result: %+v", r)
	}
	if r.MeanIterTime <= 0 || r.MeanIterTime < r.ComputeIter {
		t.Fatalf("iteration time %v below compute floor %v", r.MeanIterTime, r.ComputeIter)
	}
}
