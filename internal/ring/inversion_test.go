package ring

import (
	"testing"

	"p3/internal/strategy"
	"p3/internal/zoo"
)

// runScale runs the ring scale-axis configuration (resnet50 at the 1.5 Gbps
// bottleneck) under one discipline.
func runScale(t *testing.T, machines int, sched string) Result {
	t.Helper()
	st, err := strategy.SlicingOnly(0).WithSched(sched)
	if err != nil {
		t.Fatal(err)
	}
	st.Name = "ar-" + sched
	return Run(Config{
		Model: zoo.ByName("resnet50"), Machines: machines, Strategy: st,
		BandwidthGbps: 1.5, WarmupIters: 1, MeasureIters: 2, Seed: 1,
	})
}

// TestRingPriorityStillWinsAt16 pins the other half of the inversion
// finding: on the ring all-reduce path priority never inverted — each
// machine's egress feeds exactly one neighbour, so there is no fan-in
// window for urgent chunks to collapse onto — and both strict p3 and the
// damped transform (a single-flow queue dequeues exactly as its base) must
// keep beating fifo.
func TestRingPriorityStillWinsAt16(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled ring in -short mode")
	}
	fifo := runScale(t, 16, "fifo")
	p3 := runScale(t, 16, "p3")
	damped := runScale(t, 16, "damped")
	if p3.MeanIterTime > fifo.MeanIterTime {
		t.Errorf("ring x16: p3 %.2f ms above fifo %.2f ms", p3.MeanIterTime.Millis(), fifo.MeanIterTime.Millis())
	}
	if damped.MeanIterTime > fifo.MeanIterTime {
		t.Errorf("ring x16: damped %.2f ms above fifo %.2f ms", damped.MeanIterTime.Millis(), fifo.MeanIterTime.Millis())
	}
}

// TestRing64InversionRegression asserts the same at the 64-machine scale
// that inverted the cluster path. A 64-machine ring costs ~25M events per
// run, so it is skipped under the race detector (the CI workflow runs it in
// a dedicated non-race step) and in -short mode.
func TestRing64InversionRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("64-machine ring in -short mode")
	}
	if raceEnabled {
		t.Skip("64-machine ring under -race (covered by the dedicated CI step)")
	}
	fifo := runScale(t, 64, "fifo")
	p3 := runScale(t, 64, "p3")
	damped := runScale(t, 64, "damped")
	if p3.MeanIterTime > fifo.MeanIterTime {
		t.Errorf("ring x64: p3 %.2f ms above fifo %.2f ms", p3.MeanIterTime.Millis(), fifo.MeanIterTime.Millis())
	}
	if damped.MeanIterTime > fifo.MeanIterTime {
		t.Errorf("ring x64: damped %.2f ms above fifo %.2f ms", damped.MeanIterTime.Millis(), fifo.MeanIterTime.Millis())
	}
}
