// Package ring simulates data-parallel training over ring all-reduce
// instead of a parameter server. The paper argues (Sections 2 and 6) that
// P3's two principles — parameter slicing and priority-ordered transmission
// — "are general enough to be applied to any gradient aggregation method";
// this package substantiates that claim as an extension experiment: the
// same models, compute timing and network substrate as internal/cluster,
// but gradients are aggregated with the classic 2(N-1)-round ring
// reduce-scatter + all-gather, at either layer granularity (WFBP-style
// all-reduce, what Horovod-class systems did at the time) or P3-style
// sliced + priority-scheduled granularity.
//
// An all-reduce for a chunk can only begin once EVERY machine has produced
// that chunk's gradient (all ranks must enter the collective), so the
// ordering problem the paper identifies is, if anything, sharper here: the
// first layer's gradients — needed first in the next forward pass — become
// ready last and at layer granularity must wait behind the whole backlog of
// earlier collectives.
package ring

import (
	"fmt"
	"math"
	"math/rand/v2"

	"p3/internal/core"
	"p3/internal/model"
	"p3/internal/netsim"
	"p3/internal/sched"
	"p3/internal/sim"
	"p3/internal/strategy"
	"p3/internal/trace"
)

// Config describes one simulated all-reduce training run. Only the
// granularity and ordering of the strategy matter here (there are no
// parameter servers, so pull modes are meaningless).
type Config struct {
	Model    *model.Model
	Machines int
	Strategy strategy.Strategy
	// BandwidthGbps is the per-direction NIC rate.
	BandwidthGbps float64
	// PreemptQuantum > 0 makes NIC egress transmission resumable in
	// segments of this many wire bytes (netsim.Config.PreemptQuantum); an
	// urgent ring segment then preempts an in-flight bulk one at the next
	// boundary. 0 keeps message-granularity preemption.
	PreemptQuantum int64
	// Profile optionally overrides the static FLOP-derived timing profile
	// handed to model-aware disciplines (tictac) — the hook behind the
	// calibrated two-pass mode (RunCalibrated), which re-runs with a
	// profile rebuilt from a prior run's measured stalls. nil selects the
	// static strategy.ComputeProfile.
	Profile *sched.Profile
	// ReduceRateGBps is the local cost of summing one received segment into
	// the accumulator (and, on the final round, applying the update).
	ReduceRateGBps float64
	ReduceOverhead sim.Time
	WarmupIters    int
	MeasureIters   int
	Seed           int64
	Recorder       *trace.Recorder
	// Engine optionally supplies a reusable simulation engine: Run calls
	// Reset on it and reuses its event slab, so a sweep driver can run many
	// simulations without re-growing the heap each time. nil allocates a
	// fresh engine. The ring path always runs on the single-shard engine:
	// each collective launches only when every machine has produced the
	// gradient — a global zero-latency barrier that admits no conservative
	// lookahead window (contrast cluster.Config.Shards).
	Engine *sim.Engine
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Machines == 0 {
		out.Machines = 4
	}
	if out.ReduceRateGBps == 0 {
		out.ReduceRateGBps = 3
	}
	if out.ReduceOverhead == 0 {
		out.ReduceOverhead = 5 * sim.Microsecond
	}
	if out.WarmupIters == 0 {
		out.WarmupIters = 2
	}
	if out.MeasureIters == 0 {
		out.MeasureIters = 8
	}
	return out
}

// Result summarizes an all-reduce run.
type Result struct {
	Model         string
	Strategy      string
	Machines      int
	BandwidthGbps float64
	Throughput    float64 // aggregate samples/sec
	MeanIterTime  sim.Time
	ComputeIter   sim.Time
	// MeasuredIters is the measured iteration count (the divisor of
	// MeanLayerStalls).
	MeasuredIters int
	// LayerStalls[l] is machine 0's cumulative measured-window time spent
	// blocked at layer l waiting for its all-reduce to complete — the same
	// consumption-stall profile the cluster simulator reports, for feeding
	// measured timing back into a calibrated sched.Profile.
	LayerStalls []sim.Time
	Events      uint64
}

// MeanLayerStalls returns the per-iteration mean of LayerStalls, the form
// strategy.CalibrateProfile consumes.
func (r Result) MeanLayerStalls() []sim.Time {
	return strategy.MeanStalls(r.LayerStalls, r.MeasuredIters)
}

func (r Result) String() string {
	return fmt.Sprintf("allreduce %s/%s x%d @%gGbps: %.1f samples/s (iter %.1f ms)",
		r.Model, r.Strategy, r.Machines, r.BandwidthGbps, r.Throughput, r.MeanIterTime.Millis())
}

type chunkState struct {
	gradReady  int   // machines whose backward produced this chunk
	launched   bool  // ring started
	recvRounds []int // per machine: collective rounds received
	iter       int32
}

type workerState struct {
	readyIter  []int32
	chunksDone []int // per layer: chunks fully reduced this iteration
	fwdLayer   int
	waitingFwd bool
	waitSince  sim.Time
	curIter    int32
	bwdDone    []sim.Time
	layerStall []sim.Time // cumulative forward stall per layer

	reduce *sched.Queue[redItem]
	busy   bool
}

type redItem struct {
	chunk    int32
	iter     int32
	round    int
	priority int32
}

type ringSim struct {
	cfg     Config
	eng     *sim.Engine
	net     *netsim.Network
	plan    *core.Plan
	timing  *model.Timing
	layers  int
	total   int32
	rounds  int // 2*(N-1)
	workers []workerState
	chunks  []chunkState
	jitter  [][]float64
	redRate float64
}

// RunCalibrated is the two-pass calibrated mode: the first pass runs cfg as
// given (static FLOP-derived profile unless cfg.Profile overrides it) and
// records the per-layer consumption stalls it actually observed; the second
// pass re-runs with the profile rebuilt from those measured stalls
// (strategy.CalibrateProfile), so model-aware disciplines rank against the
// iteration timeline the cluster really produces instead of the idealized
// compute-only one. Both results are returned, first the static pass.
func RunCalibrated(cfg Config) (static, calibrated Result) {
	static = Run(cfg)
	cfg.Profile = strategy.CalibrateProfile(cfg.Model, cfg.BandwidthGbps, static.MeanLayerStalls())
	calibrated = Run(cfg)
	return static, calibrated
}

// Run executes one all-reduce training simulation.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	if err := cfg.Model.Validate(); err != nil {
		panic(fmt.Sprintf("ring: invalid model: %v", err))
	}
	if cfg.Machines < 2 {
		panic("ring: all-reduce needs at least 2 machines")
	}
	rs := newRingSim(cfg)
	rs.start()
	rs.eng.Run()
	return rs.result()
}

func newRingSim(cfg Config) *ringSim {
	n := cfg.Machines
	eng := cfg.Engine
	if eng != nil {
		eng.Reset()
	} else {
		eng = &sim.Engine{}
	}
	netCfg := netsim.DefaultConfig(cfg.BandwidthGbps)
	netCfg.Egress = cfg.Strategy.Discipline()
	netCfg.PreemptQuantum = cfg.PreemptQuantum
	prof := cfg.Profile
	if prof == nil {
		prof = strategy.ComputeProfile(cfg.Model, netCfg.BandwidthGbps)
	}
	netCfg.Profile = prof

	rs := &ringSim{
		cfg: cfg, eng: eng,
		// Partition with a single "server": all-reduce has no placement,
		// only granularity.
		plan:    cfg.Strategy.Partition(cfg.Model, 1),
		timing:  model.NewTiming(cfg.Model),
		layers:  len(cfg.Model.Layers),
		total:   int32(cfg.WarmupIters + cfg.MeasureIters),
		rounds:  2 * (n - 1),
		redRate: cfg.ReduceRateGBps,
	}
	rs.net = netsim.New(eng, n, netCfg, rs.deliver, cfg.Recorder)

	rs.chunks = make([]chunkState, rs.plan.NumChunks())
	for i := range rs.chunks {
		rs.chunks[i] = chunkState{recvRounds: make([]int, n), iter: -1}
	}

	// Each machine's reduction queue runs the strategy's discipline on a
	// fresh instance, mirroring the receiver-side consumer of Section 4.2.
	redView := func(it redItem) sched.Item {
		return sched.Item{Priority: it.priority, Bytes: rs.segBytes(it.chunk)}
	}
	rs.workers = make([]workerState, n)
	for w := range rs.workers {
		ws := &rs.workers[w]
		ws.readyIter = make([]int32, rs.layers)
		for l := range ws.readyIter {
			ws.readyIter[l] = -1
		}
		ws.chunksDone = make([]int, rs.layers)
		ws.bwdDone = make([]sim.Time, rs.total)
		ws.layerStall = make([]sim.Time, rs.layers)
		disc := sched.ApplyProfile(sched.MustByName(cfg.Strategy.Discipline()), prof)
		sched.ApplySource(disc, int32(w)) // owner seed for source-aware disciplines
		ws.reduce = sched.NewQueue(disc, redView)
	}

	rs.jitter = make([][]float64, n)
	rng := rand.New(rand.NewPCG(uint64(cfg.Seed), uint64(cfg.Seed)^0x51ce))
	sigma := cfg.Model.ComputeJitter
	for w := range rs.jitter {
		rs.jitter[w] = make([]float64, rs.total)
		for i := range rs.jitter[w] {
			if sigma == 0 {
				rs.jitter[w][i] = 1
				continue
			}
			rs.jitter[w][i] = math.Exp(rng.NormFloat64()*sigma - sigma*sigma/2)
		}
	}
	return rs
}

func (rs *ringSim) start() {
	if rs.cfg.Recorder != nil {
		rs.cfg.Recorder.Start(0)
	}
	for w := 0; w < rs.cfg.Machines; w++ {
		rs.advanceForward(w)
	}
}

func (rs *ringSim) scaled(w int, iter int32, d sim.Time) sim.Time {
	return sim.Time(float64(d) * rs.jitter[w][iter])
}

func (rs *ringSim) advanceForward(w int) {
	ws := &rs.workers[w]
	if ws.fwdLayer == rs.layers {
		rs.stepBackward(w, rs.layers-1)
		return
	}
	l := ws.fwdLayer
	if ws.readyIter[l] < ws.curIter-1 {
		if !ws.waitingFwd {
			ws.waitingFwd = true
			ws.waitSince = rs.eng.Now()
		}
		return
	}
	if ws.waitingFwd {
		ws.waitingFwd = false
		if ws.curIter >= int32(rs.cfg.WarmupIters) {
			ws.layerStall[l] += rs.eng.Now() - ws.waitSince
		}
	}
	rs.eng.After(rs.scaled(w, ws.curIter, rs.timing.Fwd[l]), func() {
		ws.fwdLayer = l + 1
		rs.advanceForward(w)
	})
}

func (rs *ringSim) stepBackward(w, l int) {
	ws := &rs.workers[w]
	rs.eng.After(rs.scaled(w, ws.curIter, rs.timing.Bwd[l]), func() {
		for _, id := range rs.plan.LayerChunks(l) {
			rs.gradProduced(int32(id), ws.curIter)
		}
		if l > 0 {
			rs.stepBackward(w, l-1)
			return
		}
		ws.bwdDone[ws.curIter] = rs.eng.Now()
		ws.curIter++
		if ws.curIter < rs.total {
			ws.fwdLayer = 0
			rs.advanceForward(w)
		}
	})
}

// gradProduced counts backward completions; the collective launches when
// every rank has entered it.
func (rs *ringSim) gradProduced(chunk, iter int32) {
	cst := &rs.chunks[chunk]
	if cst.iter != iter {
		cst.iter = iter
		cst.gradReady = 0
		cst.launched = false
		for i := range cst.recvRounds {
			cst.recvRounds[i] = 0
		}
	}
	cst.gradReady++
	if cst.gradReady == rs.cfg.Machines && !cst.launched {
		cst.launched = true
		for m := 0; m < rs.cfg.Machines; m++ {
			rs.sendRound(m, chunk, iter, 0)
		}
	}
}

// segBytes is the per-round segment size: the tensor is cut into N ring
// segments.
func (rs *ringSim) segBytes(chunk int32) int64 {
	b := rs.plan.Chunks[chunk].Bytes() / int64(rs.cfg.Machines)
	if b < 1 {
		b = 1
	}
	return b
}

func (rs *ringSim) sendRound(from int, chunk, iter int32, round int) {
	to := (from + 1) % rs.cfg.Machines
	rs.net.Send(netsim.Message{
		From: from, To: to, Bytes: rs.segBytes(chunk),
		Priority: int32(rs.plan.Chunks[chunk].Priority),
		Kind:     1, Chunk: chunk, Iter: iter, Src: int32(round),
	})
}

// deliver: a ring segment arrived; queue its local reduction.
func (rs *ringSim) deliver(m netsim.Message) {
	ws := &rs.workers[m.To]
	ws.reduce.Push(redItem{chunk: m.Chunk, iter: m.Iter, round: int(m.Src), priority: m.Priority})
	rs.pumpReduce(m.To)
}

// pumpReduce serializes local segment reductions per machine, priority
// ordered under P3 — the receiver-side consumer of Section 4.2 transplanted
// onto the all-reduce.
func (rs *ringSim) pumpReduce(w int) {
	ws := &rs.workers[w]
	if ws.busy {
		return
	}
	it, ok := ws.reduce.PopReady()
	if !ok {
		return
	}
	ws.busy = true
	cost := rs.cfg.ReduceOverhead + sim.Time(float64(rs.segBytes(it.chunk))/rs.redRate)
	rs.eng.After(cost, func() {
		ws.busy = false
		ws.reduce.Done(it)
		rs.roundDone(w, it)
		rs.pumpReduce(w)
	})
}

func (rs *ringSim) roundDone(w int, it redItem) {
	cst := &rs.chunks[it.chunk]
	if cst.iter != it.iter {
		return // stale segment from a previous iteration's tail
	}
	cst.recvRounds[w]++
	if it.round+1 < rs.rounds {
		rs.sendRound(w, it.chunk, it.iter, it.round+1)
	}
	if cst.recvRounds[w] == rs.rounds {
		rs.chunkComplete(w, it.chunk, it.iter)
	}
}

func (rs *ringSim) chunkComplete(w int, chunk, iter int32) {
	ws := &rs.workers[w]
	l := rs.plan.Chunks[chunk].Layer
	ws.chunksDone[l]++
	if ws.chunksDone[l] < len(rs.plan.LayerChunks(l)) {
		return
	}
	ws.chunksDone[l] = 0
	ws.readyIter[l] = iter
	if ws.waitingFwd && ws.fwdLayer == l {
		rs.advanceForward(w)
	}
}

func (rs *ringSim) result() Result {
	n := rs.cfg.Machines
	makespan := func(iter int) sim.Time {
		var t sim.Time
		for w := 0; w < n; w++ {
			if rs.workers[w].bwdDone[iter] > t {
				t = rs.workers[w].bwdDone[iter]
			}
		}
		return t
	}
	warmEnd := makespan(rs.cfg.WarmupIters - 1)
	last := makespan(int(rs.total) - 1)
	samples := float64(rs.cfg.MeasureIters * n * rs.cfg.Model.BatchSize)
	return Result{
		Model:         rs.cfg.Model.Name,
		Strategy:      rs.cfg.Strategy.Name,
		Machines:      n,
		BandwidthGbps: rs.cfg.BandwidthGbps,
		Throughput:    samples / (last - warmEnd).Seconds(),
		MeanIterTime:  (last - warmEnd) / sim.Time(rs.cfg.MeasureIters),
		ComputeIter:   rs.timing.IterCompute,
		MeasuredIters: rs.cfg.MeasureIters,
		LayerStalls:   rs.workers[0].layerStall,
		Events:        rs.eng.Processed(),
	}
}
