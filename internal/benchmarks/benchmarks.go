// Package benchmarks defines the dispatch-path microbenchmarks and the
// zoo-simulation timings as plain functions, so they can run both under `go
// test -bench` and programmatically from cmd/p3bench — which renders them,
// writes the BENCH_<n>.json perf-trajectory artifact, and gates CI against
// a checked-in baseline (Check).
//
// The dispatch suite prices the hot paths this repository's throughput
// hangs on: sched.Queue's indexed-heap dispatch under many flows, the
// credit-gated admission walk, flow-aware head skipping past a blocked
// flow, transport.SendQueue's mutex path, and sim.Engine's event
// scheduling. Every dispatch benchmark is required to be allocation-free at
// steady state; Check fails any result that allocates.
package benchmarks

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"p3/internal/cluster"
	"p3/internal/ring"
	"p3/internal/sched"
	"p3/internal/sim"
	"p3/internal/strategy"
	"p3/internal/transport"
	"p3/internal/zoo"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// SimResult is one zoo-simulation timing: the simulated iteration time it
// reports plus the wall-clock the simulator itself needed — the
// perf-trajectory number for the engine and dispatch work.
type SimResult struct {
	Name     string  `json:"name"`
	Machines int     `json:"machines"`
	IterMs   float64 `json:"iter_ms"`
	WallMs   float64 `json:"wall_ms"`
	Events   uint64  `json:"events"`
}

// Artifact is the machine-readable benchmark record `p3bench -json` writes
// as BENCH_<n>.json.
type Artifact struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CalibNs is the measured cost of a fixed arithmetic spin loop. Check
	// scales ns/op thresholds by the calibration ratio, so a baseline
	// recorded on one machine remains meaningful on a faster or slower
	// CI runner; allocs/op needs no calibration.
	CalibNs  float64     `json:"calib_ns"`
	Dispatch []Result    `json:"dispatch"`
	Sims     []SimResult `json:"sims,omitempty"`
}

// Named is one runnable benchmark.
type Named struct {
	Name  string
	Bench func(b *testing.B)
}

// queueBench builds a steady-state dispatch benchmark over `flows` flows.
func queueBench(disc string, flows int) func(b *testing.B) {
	return func(b *testing.B) {
		ident := func(it sched.Item) sched.Item { return it }
		q := sched.NewQueue(sched.MustByName(disc), ident)
		for i := 0; i < flows*4; i++ {
			q.Push(sched.Item{
				Priority: int32(i % 8),
				Bytes:    int64(256 + (i*131)%1024),
				Dest:     int32(i % flows),
			})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, ok := q.PopReady()
			if !ok {
				b.Fatal("nothing admissible")
			}
			q.Done(v)
			q.Push(v)
		}
	}
}

// blockedFlowBench keeps the most urgent flow permanently credit-blocked so
// every dispatch must skip past it — the head-skipping walk.
func blockedFlowBench(flows int) func(b *testing.B) {
	return func(b *testing.B) {
		ident := func(it sched.Item) sched.Item { return it }
		q := sched.NewQueue(sched.NewAdaptiveCredit(512), ident)
		blocked := sched.Item{Priority: 0, Bytes: 480, Dest: int32(flows + 1)}
		q.Push(blocked)
		if _, ok := q.PopReady(); !ok {
			b.Fatal("setup pop failed")
		}
		q.Push(blocked) // never acknowledged: its flow stays refused
		for i := 0; i < flows*4; i++ {
			q.Push(sched.Item{
				Priority: 1 + int32(i%8),
				Bytes:    64,
				Dest:     int32(i % flows),
			})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, ok := q.PopReady()
			if !ok {
				b.Fatal("nothing admissible")
			}
			q.Done(v)
			q.Push(v)
		}
	}
}

// sendQueueBench prices the transport queue's mutex path single-threaded
// over 64 destinations.
func sendQueueBench(disc string) func(b *testing.B) {
	return func(b *testing.B) {
		q := transport.NewSendQueue(sched.MustByName(disc))
		for i := 0; i < 256; i++ {
			q.Push(&transport.Frame{
				Type:     transport.TypePush,
				Priority: int32(i % 16),
				Dst:      uint8(i % 64),
				Values:   make([]float32, 64),
			})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f, ok := q.TryPop()
			if !ok {
				b.Fatal("queue drained")
			}
			q.Done(f)
			q.Push(f)
		}
	}
}

// engineBench prices one scheduled-and-fired event on the discrete-event
// engine (the closure is reused, so the cost is the slab heap alone).
func engineBench(b *testing.B) {
	var eng sim.Engine
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(10, tick)
		}
	}
	eng.After(10, tick)
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}

// calibBench is the fixed arithmetic spin used to normalize ns/op across
// machines; it allocates nothing and touches no memory beyond two registers.
func calibBench(b *testing.B) {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < b.N; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	sinkU64 = x
}

var sinkU64 uint64

// xshardBench prices the parallel executor's per-event window machinery: a
// two-shard ping-pong where each event's only effect is a cross-shard send,
// so every window carries both shards' handoff (coordinator -> worker
// channel, barrier wait, canonical outbox injection) and nothing else. The
// closures and outbox/scratch/heap slabs are all reused, so steady state
// must stay allocation-free like the rest of the dispatch suite.
func xshardBench(b *testing.B) {
	const look = sim.Time(10)
	p, err := sim.NewParallel(2, []int{0, 1}, look)
	if err != nil {
		b.Fatal(err)
	}
	half := b.N / 2
	if half == 0 {
		half = 1
	}
	proc0, proc1 := p.Proc(0), p.Proc(1)
	n0, n1 := 0, 0
	var fn0, fn1 func()
	fn0 = func() {
		n0++
		if n0 < half {
			p.Cross(0, 1, proc0.Now()+look, fn1)
		}
	}
	fn1 = func() {
		n1++
		if n1 < half {
			p.Cross(1, 0, proc1.Now()+look, fn0)
		}
	}
	proc0.At(0, fn0)
	proc1.At(0, fn1)
	b.ReportAllocs()
	b.ResetTimer()
	p.Run()
}

// Dispatch returns the dispatch microbenchmark suite, in stable order.
func Dispatch() []Named {
	return []Named{
		{"queue/p3/64flows", queueBench("p3", 64)},
		{"queue/p3/256flows", queueBench("p3", 256)},
		{"queue/damped/64flows", queueBench("damped", 64)},
		{"queue/tictac/64flows", queueBench("tictac", 64)},
		{"queue/credit-adaptive/64flows", queueBench("credit-adaptive:1048576", 64)},
		{"queue/credit-adaptive/256flows", queueBench("credit-adaptive:1048576", 256)},
		{"queue/blocked-flow/64flows", blockedFlowBench(64)},
		{"sendqueue/p3/64dests", sendQueueBench("p3")},
		{"sendqueue/damped/64dests", sendQueueBench("damped")},
		{"sendqueue/credit-adaptive/64dests", sendQueueBench("credit-adaptive:1048576")},
		{"engine/event", engineBench},
		{"engine/xshard", xshardBench},
	}
}

// benchReps is how many times RunDispatch measures each benchmark. The
// reported ns/op is the minimum across repetitions — the standard
// noise-robust statistic for sub-microsecond benchmarks, since co-scheduled
// load on a shared runner can only make a run slower, never faster — which
// keeps the CI gate's single comparison from flaking on machine noise the
// spin-loop calibration cannot see (cache and memory-bandwidth contention).
// allocs/op is taken as the maximum: it is deterministic at steady state,
// and any repetition observing an allocation is a real contract violation.
const benchReps = 5

// RunDispatch measures the dispatch suite with testing.Benchmark, best of
// benchReps repetitions per benchmark.
func RunDispatch() []Result {
	suite := Dispatch()
	out := make([]Result, 0, len(suite))
	for _, n := range suite {
		var best Result
		for rep := 0; rep < benchReps; rep++ {
			r := testing.Benchmark(n.Bench)
			cur := Result{
				Name:        n.Name,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if rep == 0 || cur.NsPerOp < best.NsPerOp {
				best.Name, best.NsPerOp = cur.Name, cur.NsPerOp
			}
			if cur.AllocsPerOp > best.AllocsPerOp {
				best.AllocsPerOp = cur.AllocsPerOp
			}
			if cur.BytesPerOp > best.BytesPerOp {
				best.BytesPerOp = cur.BytesPerOp
			}
		}
		out = append(out, best)
	}
	return out
}

// Calibrate measures the spin-loop reference cost (best of benchReps).
func Calibrate() float64 {
	best := 0.0
	for rep := 0; rep < benchReps; rep++ {
		r := testing.Benchmark(calibBench)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if rep == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// RunSims times the zoo simulations of the perf trajectory: each paper
// model at its headline bandwidth on 4 machines, plus the 64-machine scale
// cell that the dispatch rewrite made practical.
func RunSims() []SimResult {
	cases := []struct {
		name     string
		model    string
		machines int
		gbps     float64
		path     string
		shards   int
	}{
		{"cluster/resnet50/p3@4G", "resnet50", 4, 4, "cluster", 0},
		{"cluster/vgg19/p3@15G", "vgg19", 4, 15, "cluster", 0},
		{"cluster/sockeye/p3@4G", "sockeye", 4, 4, "cluster", 0},
		{"cluster/resnet50/p3@1.5G/64m", "resnet50", 64, 1.5, "cluster", 0},
		// The 256-machine cell runs on the sharded engine (4 shards
		// regardless of host parallelism — the Result is bit-identical
		// either way, and WallMs then tracks the parallel executor's cost).
		{"cluster/resnet50/p3@1.5G/256m/shards4", "resnet50", 256, 1.5, "cluster", 4},
		{"ring/resnet50/p3@1.5G/16m", "resnet50", 16, 1.5, "ring", 0},
	}
	out := make([]SimResult, 0, len(cases))
	for _, c := range cases {
		//p3:wallclock-ok WallMs reports real simulator throughput
		t0 := time.Now()
		var iterMs float64
		var events uint64
		if c.path == "ring" {
			st := strategy.Strategy{Name: "ar-p3", Granularity: strategy.Slices, Sched: "p3"}
			r := ring.Run(ring.Config{
				Model: zoo.ByName(c.model), Machines: c.machines, Strategy: st,
				BandwidthGbps: c.gbps, WarmupIters: 1, MeasureIters: 3, Seed: 1,
			})
			iterMs, events = r.MeanIterTime.Millis(), r.Events
		} else {
			r := cluster.Run(cluster.Config{
				Model: zoo.ByName(c.model), Machines: c.machines, Strategy: strategy.P3(0),
				BandwidthGbps: c.gbps, WarmupIters: 1, MeasureIters: 3, Seed: 1,
				Shards: c.shards,
			})
			iterMs, events = r.MeanIterTime.Millis(), r.Events
		}
		out = append(out, SimResult{
			Name:     c.name,
			Machines: c.machines,
			IterMs:   iterMs,
			WallMs:   float64(time.Since(t0).Microseconds()) / 1000, //p3:wallclock-ok WallMs reports real simulator throughput
			Events:   events,
		})
	}
	return out
}

// Collect runs the full suite into an artifact. withSims adds the zoo
// simulation timings (slower; the CI gate runs dispatch only).
func Collect(withSims bool) *Artifact {
	a := &Artifact{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CalibNs:    Calibrate(),
		Dispatch:   RunDispatch(),
	}
	if withSims {
		a.Sims = RunSims()
	}
	return a
}

// Check compares cur against base and returns the violations: any dispatch
// benchmark that allocates at steady state (allocs/op > 0), regresses ns/op
// by more than tol (after scaling base by the machines' calibration ratio),
// or disappeared from the suite. An empty slice means the gate passes.
func Check(cur, base *Artifact, tol float64) []string {
	var violations []string
	scale := 1.0
	if base.CalibNs > 0 && cur.CalibNs > 0 {
		scale = cur.CalibNs / base.CalibNs
	}
	baseline := make(map[string]Result, len(base.Dispatch))
	for _, r := range base.Dispatch {
		baseline[r.Name] = r
	}
	seen := make(map[string]bool, len(cur.Dispatch))
	for _, r := range cur.Dispatch {
		seen[r.Name] = true
		if r.AllocsPerOp > 0 {
			violations = append(violations, fmt.Sprintf(
				"%s: %d allocs/op at steady state, want 0", r.Name, r.AllocsPerOp))
		}
		b, ok := baseline[r.Name]
		if !ok {
			continue // new benchmark: no baseline yet
		}
		limit := b.NsPerOp * scale * (1 + tol)
		if r.NsPerOp > limit {
			violations = append(violations, fmt.Sprintf(
				"%s: %.1f ns/op exceeds %.1f (baseline %.1f x calib %.2f x tolerance %.0f%%)",
				r.Name, r.NsPerOp, limit, b.NsPerOp, scale, tol*100))
		}
	}
	for _, b := range base.Dispatch {
		if !seen[b.Name] {
			violations = append(violations, fmt.Sprintf("%s: benchmark vanished from the suite", b.Name))
		}
	}
	return violations
}
