package benchmarks

import (
	"strings"
	"testing"
)

func art(calib float64, rs ...Result) *Artifact {
	return &Artifact{GoVersion: "gotest", GOMAXPROCS: 1, CalibNs: calib, Dispatch: rs}
}

// TestCheckGate pins the regression-gate semantics: steady-state allocations
// always fail, ns/op may drift up to the tolerance after calibration
// scaling, and a benchmark cannot silently vanish from the suite.
func TestCheckGate(t *testing.T) {
	base := art(2.0, Result{Name: "queue/p3/64flows", NsPerOp: 400})

	if v := Check(art(2.0, Result{Name: "queue/p3/64flows", NsPerOp: 480}), base, 0.25); len(v) != 0 {
		t.Fatalf("20%% drift within a 25%% tolerance must pass, got %v", v)
	}
	if v := Check(art(2.0, Result{Name: "queue/p3/64flows", NsPerOp: 520}), base, 0.25); len(v) != 1 {
		t.Fatalf("30%% regression must fail, got %v", v)
	}
	// A machine running everything 2x slower (calibration 4.0 vs 2.0) gets
	// its thresholds scaled: 750 ns/op is within 400 * 2 * 1.25 = 1000.
	if v := Check(art(4.0, Result{Name: "queue/p3/64flows", NsPerOp: 750}), base, 0.25); len(v) != 0 {
		t.Fatalf("calibration scaling missing: %v", v)
	}
	// Allocations fail regardless of speed.
	v := Check(art(2.0, Result{Name: "queue/p3/64flows", NsPerOp: 100, AllocsPerOp: 1}), base, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
		t.Fatalf("steady-state alloc must fail, got %v", v)
	}
	// A benchmark missing from the current run is a violation, and a new
	// benchmark without a baseline entry is not.
	v = Check(art(2.0, Result{Name: "queue/brand-new", NsPerOp: 1}), base, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "vanished") {
		t.Fatalf("vanished benchmark must fail, got %v", v)
	}
}

// TestDispatchSuiteNames guards the contract between the suite and the
// checked-in baseline: the names the gate compares against must stay
// stable.
func TestDispatchSuiteNames(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Dispatch() {
		if n.Name == "" || n.Bench == nil {
			t.Fatalf("malformed suite entry %+v", n)
		}
		if seen[n.Name] {
			t.Fatalf("duplicate benchmark name %q", n.Name)
		}
		seen[n.Name] = true
	}
	for _, want := range []string{"queue/p3/64flows", "sendqueue/p3/64dests", "engine/event"} {
		if !seen[want] {
			t.Fatalf("suite lost %q, which the checked-in baseline gates on", want)
		}
	}
}
