// Package report generates EXPERIMENTS.md: the paper-versus-measured record
// for every table and figure of the evaluation, produced by actually running
// the full experiment suite (cmd/p3report).
package report

import (
	"fmt"
	"strings"

	"p3/internal/experiments"
	"p3/internal/metrics"
)

// Generate runs every experiment and renders the full markdown report.
// With o.Fast it produces a trimmed (smoke) version in well under a minute;
// the full version takes a few minutes, dominated by the convergence runs.
func Generate(o experiments.Options) string {
	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	b.WriteString("Reproduction of every table and figure in *Priority-based Parameter\n")
	b.WriteString("Propagation for Distributed DNN Training* (MLSys 2019). All throughput and\n")
	b.WriteString("utilization numbers come from the discrete-event cluster simulator that\n")
	b.WriteString("substitutes for the paper's 4x-GPU testbed (see DESIGN.md §2 and §5 for the\n")
	b.WriteString("substitution argument and the four calibration constants); convergence\n")
	b.WriteString("numbers come from real training runs on the substitute task. Absolute values\n")
	b.WriteString("are therefore calibrated, but every *comparison* (who wins, by what factor,\n")
	b.WriteString("where the knees fall) is measured, not assumed.\n\n")
	if o.Fast {
		b.WriteString("> NOTE: generated with -fast (trimmed sweeps). Run `go run ./cmd/p3report`\n")
		b.WriteString("> without -fast for the full grids.\n\n")
	}
	b.WriteString("Regenerate: `go run ./cmd/p3report > EXPERIMENTS.md` — or inspect any single\n")
	b.WriteString("experiment with `go run ./cmd/p3bench <figN>`.\n\n")

	section5(&b, o)
	section7(&b, o)
	sectionUtil(&b, o, "Figure 8 — baseline network utilization", experiments.Fig8,
		"bursty traffic with long idle gaps; inbound and outbound rarely overlap")
	sectionUtil(&b, o, "Figure 9 — P3 network utilization", experiments.Fig9,
		"idle time reduced; both directions busy simultaneously")
	section10(&b, o)
	section11(&b, o)
	section12(&b, o)
	sectionUtil(&b, o, "Figure 13 — TensorFlow-style utilization (Appendix B.1)", experiments.Fig13,
		"pull deferral leaves the inbound direction idle during backprop")
	sectionUtil(&b, o, "Figure 14 — Poseidon/WFBP utilization (Appendix B.1)", experiments.Fig14,
		"layer-granularity WFBP is also bursty under 1 Gbps")
	section15(&b, o)
	sectionHeadline(&b, o)
	sectionAblation(&b, o)
	sectionSched(&b, o)
	sectionRack(&b, o)
	sectionFaults(&b, o)
	sectionAllreduce(&b, o)
	sectionTTA(&b, o)
	sectionCompression(&b, o)
	sectionSensitivity(&b, o)
	sectionDeviations(&b)
	return b.String()
}

func sectionCompression(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Extension — compression family (related work)\n\n")
	b.WriteString("The quantization/sparsification baselines the paper cites (QSGD, TernGrad,\n")
	b.WriteString("1-bit SGD, DGC) on the substitute task: bandwidth bought with accuracy risk,\n")
	b.WriteString("versus the dense exchange P3 keeps.\n\n")
	b.WriteString(tsvToMarkdown(experiments.CompressionTable(experiments.ExtCompression(o))))
	b.WriteString("\n")
}

func sectionSensitivity(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Sensitivity — server count and batch size (Appendix A.7 knobs)\n\n")
	b.WriteString("VGG-19 at 15 Gbps on 4 machines, per-machine images/sec. Fewer servers\n")
	b.WriteString("concentrate ingress and update load (P3's pipelining matters more); larger\n")
	b.WriteString("batches stretch compute against fixed communication (everything hides).\n\n")
	b.WriteString(tsvToMarkdown(experiments.SensitivityTable(experiments.Sensitivity(o))))
	b.WriteString("\n")
}

func sectionDeviations(b *strings.Builder) {
	b.WriteString("## Known deviations from the paper\n\n")
	b.WriteString("1. **Absolute scale is calibrated, comparisons are measured.** Per-worker\n")
	b.WriteString("   compute-bound throughput is pinned to the paper's high-bandwidth plateaus\n")
	b.WriteString("   (DESIGN.md §5); everything else — knees, gaps, crossovers — emerges from\n")
	b.WriteString("   the simulated mechanisms.\n")
	b.WriteString("2. **Slicing-only at 30 Gbps on VGG-19 under-gains** (~+17% measured vs +49%\n")
	b.WriteString("   quoted). At that bandwidth the baseline's penalty is dominated by endpoint\n")
	b.WriteString("   (de)serialization costs that our two-rate endpoint model captures only\n")
	b.WriteString("   coarsely. At 15 Gbps — where the paper quotes its headline +66% — the\n")
	b.WriteString("   reproduction agrees within a few points.\n")
	b.WriteString("3. **InceptionV3's gain is smaller than quoted** (+7% vs +18% at 4 Gbps); its\n")
	b.WriteString("   many small tensors leave less queueing delay for P3 to remove in our\n")
	b.WriteString("   model. The qualitative claims (baseline knee below ~6 Gbps, slicing alone\n")
	b.WriteString("   useless) reproduce.\n")
	b.WriteString("4. **Convergence experiments run the substitute task** (residual MLP on\n")
	b.WriteString("   synthetic data instead of ResNet-110/CIFAR-10, which requires data and\n")
	b.WriteString("   GPUs this build does not have). The reproduced *relations*: P3 == baseline\n")
	b.WriteString("   bit-identically; DGC at 99.9% sparsity trails slightly on average; ASGD\n")
	b.WriteString("   destabilizes at synchronous learning rates. DGC's warm-up schedule is\n")
	b.WriteString("   omitted, and with momentum correction our DGC occasionally matches dense\n")
	b.WriteString("   accuracy — consistent with the DGC paper's own claims, and with this\n")
	b.WriteString("   paper's observation that DGC results are hard to reproduce exactly.\n")
	b.WriteString("5. **Poseidon is approximated** by WFBP-on-PS (layer granularity, immediate\n")
	b.WriteString("   sync); Figure 14 only needs its bursty-utilization behaviour.\n")
	b.WriteString("6. **Figure 10's AWS testbed** is modelled as a 0.5x (0.6x for Sockeye)\n")
	b.WriteString("   compute-rate scaling of the P4000 profile (M60-class GPUs).\n")
}

func tsvToMarkdown(tsv string) string {
	var b strings.Builder
	rows := 0
	for _, line := range strings.Split(strings.TrimRight(tsv, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		cells := strings.Split(line, "\t")
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
		if rows == 0 {
			b.WriteString("|" + strings.Repeat(" --- |", len(cells)) + "\n")
		}
		rows++
	}
	return b.String()
}

func section5(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Figure 5 — parameter distribution\n\n")
	b.WriteString("Paper: ResNet-50 has no tensor above ~2.4M parameters; VGG-19's fc6 holds\n")
	b.WriteString("71.5% of the model; Sockeye's heaviest tensor is the *initial* embedding.\n\n")
	for _, f := range experiments.Fig5(o) {
		ys := f.Series[0].Y
		s := metrics.Summarize(ys)
		var total float64
		for _, y := range ys {
			total += y
		}
		fmt.Fprintf(b, "- **%s**: %d tensors, %.2fM params total, largest %.2fM (%.1f%% of model)\n",
			f.Series[0].Name, len(ys), total, s.Max, s.Max/total*100)
	}
	b.WriteString("\nMeasured: matches — 25.56M/143.67M/40.13M totals; fc6 share 71.5%; Sockeye's\n")
	b.WriteString("first tensor (source embedding) is its largest. `p3bench fig5` prints the\n")
	b.WriteString("full per-tensor tables.\n\n")
}

func section7(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Figure 7 — bandwidth vs throughput (4 machines)\n\n")
	b.WriteString("Throughput per machine (samples/sec), Baseline / Slicing / P3.\n\n")
	notes := map[string]string{
		"fig7a": "paper: baseline degrades below 6 Gbps; P3 near-linear to 4 Gbps; +26% at 4 Gbps",
		"fig7b": "paper: +18% max; slicing alone does not help",
		"fig7c": "paper: slicing +49% at 30 Gbps; P3 +66% at 15 Gbps",
		"fig7d": "paper: +38% max; heavy initial layer limits the gain",
	}
	for _, f := range experiments.Fig7(o) {
		fmt.Fprintf(b, "### %s: %s\n\n%s\n\n", f.ID, f.Title, notes[f.ID])
		b.WriteString(tsvToMarkdown(f.TSV()))
		base, slic, p3 := f.Series[0], f.Series[1], f.Series[2]
		bestGain, bestBW := 0.0, 0.0
		for i := range base.Y {
			if g := p3.Y[i]/base.Y[i] - 1; g > bestGain {
				bestGain, bestBW = g, base.X[i]
			}
		}
		last := len(base.Y) - 1
		fmt.Fprintf(b, "\nMeasured: max P3 gain **%+.0f%%** at %g Gbps; slicing alone %+.0f%% at %g Gbps.\n\n",
			bestGain*100, bestBW, (slic.Y[last]/base.Y[last]-1)*100, base.X[last])
	}
}

func sectionUtil(b *strings.Builder, o experiments.Options, title string,
	fn func(experiments.Options) []*experiments.Figure, paperNote string) {

	fmt.Fprintf(b, "## %s\n\n", title)
	fmt.Fprintf(b, "Paper: %s.\n\n", paperNote)
	b.WriteString("| config | dir | mean Gbps | peak Gbps | idle buckets |\n| --- | --- | --- | --- | --- |\n")
	for _, f := range fn(o) {
		for _, s := range f.Series {
			sum := metrics.Summarize(s.Y)
			idle := 0
			for _, y := range s.Y {
				if y < 0.05*sum.Max {
					idle++
				}
			}
			fmt.Fprintf(b, "| %s | %s | %.2f | %.2f | %d%% |\n",
				f.ID, s.Name, sum.Mean, sum.Max, idle*100/max(1, len(s.Y)))
		}
	}
	b.WriteString("\n`p3bench` prints the full 10 ms time series for each sub-figure.\n\n")
}

func section10(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Figure 10 — scalability (2–16 machines @ 10 Gbps, AWS profile)\n\n")
	b.WriteString("Aggregate samples/sec; paper: ResNet-50 baseline == P3; VGG-19 up to +61%\n")
	b.WriteString("(8 machines); Sockeye up to +18% (8 machines).\n\n")
	for _, f := range experiments.Fig10(o) {
		fmt.Fprintf(b, "### %s\n\n", f.Title)
		b.WriteString(tsvToMarkdown(f.TSV()))
		base, p3 := f.Series[0], f.Series[1]
		bestGain, bestN := 0.0, 0.0
		for i := range base.Y {
			if g := p3.Y[i]/base.Y[i] - 1; g > bestGain {
				bestGain, bestN = g, base.X[i]
			}
		}
		fmt.Fprintf(b, "\nMeasured: max P3 gain %+.0f%% at %g machines.\n\n", bestGain*100, bestN)
	}
}

func section11(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Figure 11 — convergence: P3 vs DGC (5 hyper-parameter settings)\n\n")
	b.WriteString("Paper: P3's accuracy band always above DGC's; mean DGC drop 0.4%\n")
	b.WriteString("(ResNet-110/CIFAR-10). Ours uses the substitute task (DESIGN.md): a residual\n")
	b.WriteString("MLP on synthetic data, DGC at 99.9% sparsity without warm-up.\n\n")
	f := experiments.Fig11(o)[0]
	last := len(f.Series[0].Y) - 1
	get := func(name string) float64 {
		for _, s := range f.Series {
			if s.Name == name {
				return s.Y[last]
			}
		}
		return -1
	}
	fmt.Fprintf(b, "| method | final min | final max |\n| --- | --- | --- |\n")
	fmt.Fprintf(b, "| p3 (== baseline, bit-identical) | %.4f | %.4f |\n", get("p3_min"), get("p3_max"))
	fmt.Fprintf(b, "| dgc | %.4f | %.4f |\n", get("dgc_min"), get("dgc_max"))
	fmt.Fprintf(b, "\nMeasured band gap at the final epoch: P3 max %+.2f%% over DGC max.\n",
		(get("p3_max")-get("dgc_max"))*100)
	b.WriteString("P3 == baseline exactly: `internal/train`'s bit-identity test proves the\n")
	b.WriteString("aggregation arithmetic is unchanged by slicing or priority reordering.\n\n")
}

func section12(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Figure 12 — slice size vs throughput\n\n")
	b.WriteString("Paper: throughput peaks at 50,000 parameters per slice; per-message overhead\n")
	b.WriteString("dominates below, pipelining degrades above.\n\n")
	for _, f := range experiments.Fig12(o) {
		fmt.Fprintf(b, "### %s\n\n", f.Title)
		b.WriteString(tsvToMarkdown(f.TSV()))
		s := f.Series[0]
		peakX, peakY := 0.0, 0.0
		for i := range s.Y {
			if s.Y[i] > peakY {
				peakX, peakY = s.X[i], s.Y[i]
			}
		}
		fmt.Fprintf(b, "\nMeasured peak: %.0f-parameter slices (%.1f samples/sec).\n\n", peakX, peakY)
	}
}

func section15(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Figure 15 — ASGD vs P3, accuracy over wall-clock (Appendix B.2)\n\n")
	b.WriteString("Paper: P3 reaches 93% final vs ASGD's 88%, and hits 80% ~6x sooner despite\n")
	b.WriteString("ASGD's faster iterations. Iteration times below come from the simulator\n")
	b.WriteString("(ResNet-110 profile, 4 machines, 1 Gbps); accuracies from the substitute task.\n\n")
	f := experiments.Fig15(o)[0]
	for _, n := range f.Notes {
		fmt.Fprintf(b, "- %s\n", n)
	}
	b.WriteString("\n")
	for _, s := range f.Series {
		to80 := "never reached"
		for i, y := range s.Y {
			if y >= 0.8 {
				to80 = fmt.Sprintf("%.1f min", s.X[i])
				break
			}
		}
		fmt.Fprintf(b, "- **%s**: final accuracy %.4f; 80%% reached at %s\n",
			s.Name, s.Y[len(s.Y)-1], to80)
	}
	b.WriteString("\n")
}

func sectionHeadline(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Section 5.3 headline speedups\n\n")
	b.WriteString(tsvToMarkdown(experiments.HeadlineTable(experiments.Headline(o))))
	b.WriteString("\n(`speedup%` is measured P3-vs-baseline; `paper%` is the quoted value.)\n\n")
}

func sectionAblation(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Ablation — contribution of each design decision\n\n")
	b.WriteString("Per-machine throughput when enabling each P3 mechanism in isolation\n")
	b.WriteString("(immediate broadcast, slicing, priority) versus the full design — the\n")
	b.WriteString("decomposition DESIGN.md calls out for Section 4.2's three modifications.\n\n")
	b.WriteString(tsvToMarkdown(experiments.AblationTable(experiments.Ablation(o))))
	b.WriteString("\n")
}

func sectionSched(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Scheduler ablation — every discipline, both aggregation paths\n\n")
	b.WriteString("Every discipline in the internal/sched registry applied to the same sliced\n")
	b.WriteString("immediate-broadcast strategy, on the parameter-server cluster and on ring\n")
	b.WriteString("all-reduce, so transmission order is the only variable. `ttc_speedup_vs_fifo`\n")
	b.WriteString("is time-to-convergence relative to fifo on the same path (synchronous SGD\n")
	b.WriteString("converges identically under every order, so it scales with iteration time).\n")
	b.WriteString("p3, credit, and smallest form the leading pack; tictac — TicTac-style\n")
	b.WriteString("critical-path ranks from the model's timing profile — tracks p3 closely,\n")
	b.WriteString("as expected for linear-chain models where timing-derived order nearly\n")
	b.WriteString("coincides with layer order; credit-adaptive matches credit while sizing its\n")
	b.WriteString("per-destination windows by AIMD instead of a hand-picked constant.\n\n")
	b.WriteString(tsvToMarkdown(experiments.SchedulerTable(experiments.SchedulerAblation(o))))
	b.WriteString("\n")
}

func sectionRack(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Extension — rack-scale topology (oversubscribed core, spine tier, in-network aggregation)\n\n")
	b.WriteString("The regime past the paper's flat testbed, in the spirit of Parameter Hub's\n")
	b.WriteString("rack-scale co-design: machines in racks behind an oversubscribed core (and,\n")
	b.WriteString("on the two-tier cells, a 4:1 spine over two pods), with server placement,\n")
	b.WriteString("host/core/spine disciplines, in-rack and hierarchical aggregation, the\n")
	b.WriteString("aggregator reduce rate (`agg_GBps`; `inf` = free switch-side reduction) and\n")
	b.WriteString("the rack-local parameter cache (`local`, on the pull-mode `baseline`\n")
	b.WriteString("strategy rows) as axes. `core_MB`/`spine_MB` are the payload volumes that\n")
	b.WriteString("serialized through the ToR and spine ports — the traffic each reduction\n")
	b.WriteString("tier exists to shrink.\n\n")
	b.WriteString(tsvToMarkdown(experiments.RackTable(experiments.Rack(o))))
	b.WriteString("\n")
}

func sectionFaults(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Extension — fault injection and graceful degradation\n\n")
	b.WriteString("Scripted faults (internal/faults) on the rack-aggregated cluster: a 1.5x\n")
	b.WriteString("compute straggler, a half-rate host NIC, and a permanent aggregator crash\n")
	b.WriteString("that forces every affected reduction through the timeout/re-push failover.\n")
	b.WriteString("`retained_pct` is throughput relative to the same discipline's clean cell\n")
	b.WriteString("— the graceful-degradation measure. In the comm-bound regime every\n")
	b.WriteString("discipline absorbs the compute straggler almost entirely. The credit\n")
	b.WriteString("window cuts both ways: under the degraded NIC its bounded in-flight bytes\n")
	b.WriteString("keep the slowed link's queue shallow (most throughput retained), but\n")
	b.WriteString("under the crash a fixed window sized for the healthy in-rack round-trip\n")
	b.WriteString("throttles the much slower direct-to-server failover path (least retained)\n")
	b.WriteString("— a static-window/BDP mismatch that argues for adaptive windows.\n\n")
	b.WriteString(tsvToMarkdown(experiments.FaultsTable(experiments.Faults(o))))
	b.WriteString("\n")
}

func sectionAllreduce(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Extension — P3 principles on ring all-reduce (Section 6 claim)\n\n")
	b.WriteString("The paper claims slicing + priority generalize beyond the parameter server.\n")
	b.WriteString("`internal/ring` implements ring all-reduce on the same substrate:\n\n")
	for _, f := range experiments.ExtAllreduce(o) {
		fmt.Fprintf(b, "### %s\n\n", f.Title)
		b.WriteString(tsvToMarkdown(f.TSV()))
		layer, p3 := f.Series[0], f.Series[2]
		bestGain, bestBW := 0.0, 0.0
		for i := range layer.Y {
			if g := p3.Y[i]/layer.Y[i] - 1; g > bestGain {
				bestGain, bestBW = g, layer.X[i]
			}
		}
		fmt.Fprintf(b, "\nMeasured: sliced+priority all-reduce gains up to %+.0f%% over\nlayer-granularity all-reduce (at %g Gbps).\n\n", bestGain*100, bestBW)
	}
}

func sectionTTA(b *strings.Builder, o experiments.Options) {
	b.WriteString("## Extension — time to accuracy\n\n")
	b.WriteString("Combining both halves of the reproduction: simulated iteration time x\n")
	b.WriteString("measured statistical efficiency. DGC iterates fastest but converges lower;\n")
	b.WriteString("P3 keeps dense convergence at near-compute-bound speed.\n\n")
	b.WriteString(tsvToMarkdown(experiments.TimeToAccuracyTable(experiments.TimeToAccuracy(o))))
	b.WriteString("\n")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
