package report

import (
	"strings"
	"testing"

	"p3/internal/experiments"
)

// TestGenerateFast renders the full report in fast mode and checks every
// section of the paper's evaluation appears with measured content.
func TestGenerateFast(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole (trimmed) experiment suite")
	}
	md := Generate(experiments.Options{Fast: true, Seed: 1})

	sections := []string{
		"# EXPERIMENTS — paper vs. measured",
		"Figure 5 — parameter distribution",
		"Figure 7 — bandwidth vs throughput",
		"Figure 8 — baseline network utilization",
		"Figure 9 — P3 network utilization",
		"Figure 10 — scalability",
		"Figure 11 — convergence: P3 vs DGC",
		"Figure 12 — slice size vs throughput",
		"Figure 13 — TensorFlow-style utilization",
		"Figure 14 — Poseidon/WFBP utilization",
		"Figure 15 — ASGD vs P3",
		"Section 5.3 headline speedups",
		"Ablation — contribution of each design decision",
		"Extension — rack-scale topology",
		"Extension — fault injection and graceful degradation",
		"Extension — P3 principles on ring all-reduce",
		"Extension — time to accuracy",
	}
	for _, s := range sections {
		if !strings.Contains(md, s) {
			t.Errorf("report missing section %q", s)
		}
	}
	// Markdown tables must be present and well formed.
	if !strings.Contains(md, "| --- |") {
		t.Error("no markdown tables rendered")
	}
	// Measured commentary lines.
	for _, frag := range []string{"Measured:", "max P3 gain", "minutes_to_80%"} {
		if !strings.Contains(md, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
	if len(md) < 4000 {
		t.Errorf("report suspiciously short: %d bytes", len(md))
	}
}

func TestTSVToMarkdown(t *testing.T) {
	in := "# comment dropped\na\tb\n1\t2\n3\t4\n"
	got := tsvToMarkdown(in)
	want := "| a | b |\n| --- | --- |\n| 1 | 2 |\n| 3 | 4 |\n"
	if got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}
