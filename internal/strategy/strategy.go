// Package strategy defines the parameter-synchronization mechanisms the
// paper compares. A strategy is a declarative description — partition
// granularity, transmission order, and pull protocol — interpreted by the
// cluster simulator and by the TCP parameter server.
//
// The five mechanisms:
//
//   - Baseline: MXNet KVStore (Section 4.1). Layer-granularity shards,
//     FIFO transmission in gradient-generation order, and the explicit
//     notify-then-pull protocol (a worker pulls a layer only after being
//     notified that all of its shards updated).
//   - TFStyle: TensorFlow's graph-based parameter server (Section 2 and
//     Appendix B.1): pushes during backprop, but pull requests are not
//     issued until the next iteration's graph execution starts.
//   - WFBP: Poseidon-style wait-free backpropagation (Zhang et al. 2017):
//     layer granularity, FIFO, with updates returned immediately (no
//     notify/pull round trip).
//   - SlicingOnly: P3's parameter slicing alone (the "Slicing" series of
//     Figure 7): fixed-size slices, immediate broadcast, but FIFO order.
//   - P3: slicing + priority queues on both the worker and server sides +
//     immediate broadcast (Section 4.2).
package strategy

import (
	"fmt"

	"p3/internal/core"
	"p3/internal/model"
)

// Granularity selects the partitioning scheme.
type Granularity int

const (
	// Shards uses KVStore's layer-granularity placement (split only tensors
	// over the threshold, one shard per server).
	Shards Granularity = iota
	// Slices uses P3's fixed-maximum-size parameter slicing.
	Slices
)

// Order selects the transmission order of ready chunks.
type Order int

const (
	// FIFO transmits chunks in the order their gradients were produced
	// (backprop order: last layer first).
	FIFO Order = iota
	// ByPriority transmits the most urgent ready chunk first (forward-pass
	// order: first layer first), preempting lower-priority traffic at chunk
	// granularity.
	ByPriority
)

// PullMode selects how updated parameters travel back to workers.
type PullMode int

const (
	// NotifyPull: the server notifies workers per updated shard; a worker
	// requests the data only after every shard of a layer is notified
	// (MXNet semantics, Section 4.1/4.2).
	NotifyPull PullMode = iota
	// Immediate: the server broadcasts updated chunks to all workers as
	// soon as aggregation completes (P3's modification, Section 4.2).
	Immediate
	// DeferredPull: workers request all parameters at the start of the next
	// iteration (TensorFlow semantics, Section 2).
	DeferredPull
)

// Strategy describes a synchronization mechanism.
type Strategy struct {
	Name        string
	Granularity Granularity
	// MaxSliceParams caps slice size when Granularity == Slices
	// (0 = core.DefaultMaxSliceParams).
	MaxSliceParams int64
	// ShardThreshold is KVStore's split threshold when Granularity == Shards
	// (0 = core.DefaultShardThreshold).
	ShardThreshold int64
	Order          Order
	Pull           PullMode
	// Async selects asynchronous SGD (Appendix B.2): the server applies and
	// returns each worker's push immediately instead of waiting for all
	// workers, so no worker ever blocks on another.
	Async bool
}

// Baseline returns the MXNet KVStore baseline.
func Baseline() Strategy {
	return Strategy{Name: "baseline", Granularity: Shards, Order: FIFO, Pull: NotifyPull}
}

// TFStyle returns the TensorFlow-like strategy (Appendix B.1, Figure 13).
func TFStyle() Strategy {
	return Strategy{Name: "tensorflow", Granularity: Shards, Order: FIFO, Pull: DeferredPull}
}

// WFBP returns the Poseidon-like wait-free-backprop strategy (Figure 14).
func WFBP() Strategy {
	return Strategy{Name: "wfbp", Granularity: Shards, Order: FIFO, Pull: Immediate}
}

// SlicingOnly returns parameter slicing without priority (the "Slicing"
// series of Figure 7). maxSlice 0 selects the paper's 50,000-parameter
// default.
func SlicingOnly(maxSlice int64) Strategy {
	return Strategy{Name: "slicing", Granularity: Slices, MaxSliceParams: maxSlice, Order: FIFO, Pull: Immediate}
}

// P3 returns the full mechanism. maxSlice 0 selects the paper's
// 50,000-parameter default.
func P3(maxSlice int64) Strategy {
	return Strategy{Name: "p3", Granularity: Slices, MaxSliceParams: maxSlice, Order: ByPriority, Pull: Immediate}
}

// ASGDStrategy returns MXNet's asynchronous-SGD wire behaviour (Appendix
// B.2): layer-granularity shards, FIFO, per-worker immediate update.
func ASGDStrategy() Strategy {
	return Strategy{Name: "asgd", Granularity: Shards, Order: FIFO, Pull: Immediate, Async: true}
}

// ByName maps the names used by the CLI tools to strategies.
func ByName(name string) (Strategy, error) {
	switch name {
	case "baseline":
		return Baseline(), nil
	case "tensorflow", "tf":
		return TFStyle(), nil
	case "wfbp", "poseidon":
		return WFBP(), nil
	case "slicing":
		return SlicingOnly(0), nil
	case "p3":
		return P3(0), nil
	case "asgd":
		return ASGDStrategy(), nil
	}
	return Strategy{}, fmt.Errorf("unknown strategy %q (want baseline|tensorflow|wfbp|slicing|p3|asgd)", name)
}

// Partition applies the strategy's granularity to m for the given number of
// servers.
func (s Strategy) Partition(m *model.Model, servers int) *core.Plan {
	switch s.Granularity {
	case Slices:
		return core.PartitionSlices(m, s.MaxSliceParams, servers)
	default:
		return core.PartitionShards(m, s.ShardThreshold, servers)
	}
}

// PriorityEgress reports whether NIC egress queues (and server processing
// queues) should use the priority discipline.
func (s Strategy) PriorityEgress() bool { return s.Order == ByPriority }

func (s Strategy) String() string { return s.Name }
