// Package strategy defines the parameter-synchronization mechanisms the
// paper compares. A strategy is a declarative description — partition
// granularity, queue discipline, and pull protocol — interpreted by the
// cluster simulator and by the TCP parameter server.
//
// Transmission order is not an enum here: the Sched field names a queue
// discipline in the internal/sched registry ("fifo", "p3", "rr",
// "smallest", "credit[:bytes]", ...), and every scheduling site — the
// simulator's NIC egress queues and endpoint processing pools, and the TCP
// transport's send/receive queues — resolves that name to a fresh
// discipline instance. The named strategies below are thin presets over
// that registry; any strategy can be re-run under any discipline by
// overriding Sched (the -sched flag of cmd/p3sim does exactly this).
//
// The preset mechanisms:
//
//   - Baseline: MXNet KVStore (Section 4.1). Layer-granularity shards,
//     fifo transmission in gradient-generation order, and the explicit
//     notify-then-pull protocol (a worker pulls a layer only after being
//     notified that all of its shards updated).
//   - TFStyle: TensorFlow's graph-based parameter server (Section 2 and
//     Appendix B.1): pushes during backprop, but pull requests are not
//     issued until the next iteration's graph execution starts.
//   - WFBP: Poseidon-style wait-free backpropagation (Zhang et al. 2017):
//     layer granularity, fifo, with updates returned immediately (no
//     notify/pull round trip).
//   - SlicingOnly: P3's parameter slicing alone (the "Slicing" series of
//     Figure 7): fixed-size slices, immediate broadcast, but fifo order.
//   - P3: slicing + the p3 priority discipline on both the worker and
//     server sides + immediate broadcast (Section 4.2).
package strategy

import (
	"fmt"
	"os"
	"strings"

	"p3/internal/core"
	"p3/internal/model"
	"p3/internal/sched"
	"p3/internal/sim"
)

// Granularity selects the partitioning scheme.
type Granularity int

const (
	// Shards uses KVStore's layer-granularity placement (split only tensors
	// over the threshold, one shard per server).
	Shards Granularity = iota
	// Slices uses P3's fixed-maximum-size parameter slicing.
	Slices
)

// PullMode selects how updated parameters travel back to workers.
type PullMode int

const (
	// NotifyPull: the server notifies workers per updated shard; a worker
	// requests the data only after every shard of a layer is notified
	// (MXNet semantics, Section 4.1/4.2).
	NotifyPull PullMode = iota
	// Immediate: the server broadcasts updated chunks to all workers as
	// soon as aggregation completes (P3's modification, Section 4.2).
	Immediate
	// DeferredPull: workers request all parameters at the start of the next
	// iteration (TensorFlow semantics, Section 2).
	DeferredPull
)

// Strategy describes a synchronization mechanism.
type Strategy struct {
	Name        string
	Granularity Granularity
	// MaxSliceParams caps slice size when Granularity == Slices
	// (0 = core.DefaultMaxSliceParams).
	MaxSliceParams int64
	// ShardThreshold is KVStore's split threshold when Granularity == Shards
	// (0 = core.DefaultShardThreshold).
	ShardThreshold int64
	// Sched names the queue discipline (sched registry) applied to every
	// scheduling site: NIC egress queues, endpoint processing pools, and the
	// TCP transport's send/receive queues. Empty means "fifo", transmitting
	// chunks in gradient-generation order (backprop order: last layer
	// first); "p3" transmits the most urgent ready chunk first (forward
	// order), preempting lower-priority traffic at chunk granularity.
	Sched string
	Pull  PullMode
	// Async selects asynchronous SGD (Appendix B.2): the server applies and
	// returns each worker's push immediately instead of waiting for all
	// workers, so no worker ever blocks on another.
	Async bool
}

// Baseline returns the MXNet KVStore baseline.
func Baseline() Strategy {
	return Strategy{Name: "baseline", Granularity: Shards, Sched: "fifo", Pull: NotifyPull}
}

// TFStyle returns the TensorFlow-like strategy (Appendix B.1, Figure 13).
func TFStyle() Strategy {
	return Strategy{Name: "tensorflow", Granularity: Shards, Sched: "fifo", Pull: DeferredPull}
}

// WFBP returns the Poseidon-like wait-free-backprop strategy (Figure 14).
func WFBP() Strategy {
	return Strategy{Name: "wfbp", Granularity: Shards, Sched: "fifo", Pull: Immediate}
}

// SlicingOnly returns parameter slicing without priority (the "Slicing"
// series of Figure 7). maxSlice 0 selects the paper's 50,000-parameter
// default.
func SlicingOnly(maxSlice int64) Strategy {
	return Strategy{Name: "slicing", Granularity: Slices, MaxSliceParams: maxSlice, Sched: "fifo", Pull: Immediate}
}

// P3 returns the full mechanism. maxSlice 0 selects the paper's
// 50,000-parameter default.
func P3(maxSlice int64) Strategy {
	return Strategy{Name: "p3", Granularity: Slices, MaxSliceParams: maxSlice, Sched: "p3", Pull: Immediate}
}

// ASGDStrategy returns MXNet's asynchronous-SGD wire behaviour (Appendix
// B.2): layer-granularity shards, fifo, per-worker immediate update.
func ASGDStrategy() Strategy {
	return Strategy{Name: "asgd", Granularity: Shards, Sched: "fifo", Pull: Immediate, Async: true}
}

// TicTac returns P3's slicing and immediate broadcast under the tictac
// discipline: transfers ranked by critical-path slack from the model's
// timing profile instead of raw layer index. maxSlice 0 selects the paper's
// 50,000-parameter default.
func TicTac(maxSlice int64) Strategy {
	return Strategy{Name: "tictac", Granularity: Slices, MaxSliceParams: maxSlice, Sched: "tictac", Pull: Immediate}
}

// CreditAdaptive returns P3's slicing and immediate broadcast under
// per-destination AIMD-adapted credit windows. maxSlice 0 selects the
// paper's 50,000-parameter default.
func CreditAdaptive(maxSlice int64) Strategy {
	return Strategy{Name: "credit-adaptive", Granularity: Slices, MaxSliceParams: maxSlice, Sched: "credit-adaptive", Pull: Immediate}
}

// ByName maps the names used by the CLI tools to strategies.
func ByName(name string) (Strategy, error) {
	switch name {
	case "baseline":
		return Baseline(), nil
	case "tensorflow", "tf":
		return TFStyle(), nil
	case "wfbp", "poseidon":
		return WFBP(), nil
	case "slicing":
		return SlicingOnly(0), nil
	case "p3":
		return P3(0), nil
	case "asgd":
		return ASGDStrategy(), nil
	case "tictac":
		return TicTac(0), nil
	case "credit-adaptive", "adaptive":
		return CreditAdaptive(0), nil
	}
	return Strategy{}, fmt.Errorf("unknown strategy %q (want baseline|tensorflow|wfbp|slicing|p3|asgd|tictac|credit-adaptive)", name)
}

// Partition applies the strategy's granularity to m for the given number of
// servers.
func (s Strategy) Partition(m *model.Model, servers int) *core.Plan {
	switch s.Granularity {
	case Slices:
		return core.PartitionSlices(m, s.MaxSliceParams, servers)
	default:
		return core.PartitionShards(m, s.ShardThreshold, servers)
	}
}

// Discipline returns the strategy's effective scheduler name ("fifo" when
// Sched is empty), suitable for sched.ByName.
func (s Strategy) Discipline() string {
	if s.Sched == "" {
		return "fifo"
	}
	return s.Sched
}

// ComputeProfile derives the sched.Profile that model-aware disciplines
// (tictac) consume for model m at an estimated wire rate of gbps:
// NeedAtNs[l] is the forward compute time preceding layer l's consumption,
// taken from the same model.Timing the simulators run on, so the ranker's
// notion of "when does the forward pass block on this layer" matches the
// clock it is scheduling against. gbps <= 0 disables transfer-time
// estimation (slack reduces to the consumption deadline).
func ComputeProfile(m *model.Model, gbps float64) *sched.Profile {
	t := model.NewTiming(m)
	need := make([]int64, len(t.Fwd))
	bytes := make([]int64, len(m.Layers))
	var acc int64
	for i, f := range t.Fwd {
		need[i] = acc
		acc += int64(f)
		bytes[i] = m.Layers[i].Bytes()
	}
	return &sched.Profile{NeedAtNs: need, LayerBytes: bytes, GbpsEstimate: gbps}
}

// CalibrateProfile rebuilds the sched.Profile from measured stalls instead
// of static timing: stalls[l] is the observed mean per-iteration time the
// forward pass spent blocked at layer l (cluster/ring Result.
// MeanLayerStalls). The static profile assumes the forward pass reaches
// layer l after exactly the preceding layers' compute; in a measured
// iteration it reaches l only after their compute AND their stalls, so each
// observed stall pushes every later layer's consumption deadline out by the
// same amount. Model-aware disciplines ranking against the calibrated
// deadlines therefore spend their urgency where the measured iteration
// actually blocked — a stalling layer keeps its deadline while everything
// after it gains slack — which is the closed-loop form of TicTac's
// observed-timing priorities. Extra stall entries beyond the model's layers
// are ignored; missing ones count as zero; a nil stalls slice reproduces
// ComputeProfile exactly.
func CalibrateProfile(m *model.Model, gbps float64, stalls []sim.Time) *sched.Profile {
	t := model.NewTiming(m)
	need := make([]int64, len(t.Fwd))
	bytes := make([]int64, len(m.Layers))
	var acc int64
	for i, f := range t.Fwd {
		need[i] = acc
		acc += int64(f)
		if i < len(stalls) && stalls[i] > 0 {
			acc += int64(stalls[i])
		}
		bytes[i] = m.Layers[i].Bytes()
	}
	return &sched.Profile{NeedAtNs: need, LayerBytes: bytes, GbpsEstimate: gbps}
}

// MeanStalls divides cumulative per-layer stalls by the iteration count
// they were accumulated over — the normalization both simulators' Result.
// MeanLayerStalls apply before feeding CalibrateProfile. Returns nil when
// iters is not positive.
func MeanStalls(stalls []sim.Time, iters int) []sim.Time {
	if iters <= 0 {
		return nil
	}
	out := make([]sim.Time, len(stalls))
	for i, s := range stalls {
		out[i] = s / sim.Time(iters)
	}
	return out
}

// WriteStallFile serializes a measured per-layer stall profile (mean
// nanoseconds per iteration, one layer per line) so a later process — a
// p3server/p3worker pass, or a re-run of p3sim — can run calibrated against
// it. The format is trivially diffable: "<layer>\t<stall_ns>\n".
func WriteStallFile(path string, stalls []sim.Time) error {
	var b strings.Builder
	for l, s := range stalls {
		fmt.Fprintf(&b, "%d\t%d\n", l, int64(s))
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// ReadStallFile parses a WriteStallFile artifact back into per-layer mean
// stalls.
func ReadStallFile(path string) ([]sim.Time, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var stalls []sim.Time
	for ln, line := range strings.Split(string(buf), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var layer int
		var ns int64
		if _, err := fmt.Sscanf(line, "%d\t%d", &layer, &ns); err != nil || layer < 0 {
			return nil, fmt.Errorf("strategy: stall file %s line %d: %q", path, ln+1, line)
		}
		for len(stalls) <= layer {
			stalls = append(stalls, 0)
		}
		stalls[layer] = sim.Time(ns)
	}
	return stalls, nil
}

// WithSched returns a copy of s running under the named discipline — the
// hook behind the -sched knob of the CLI tools. It validates the name
// against the sched registry.
func (s Strategy) WithSched(name string) (Strategy, error) {
	if _, err := sched.ByName(name); err != nil {
		return Strategy{}, err
	}
	out := s
	out.Sched = name
	return out, nil
}

func (s Strategy) String() string { return s.Name }
