package strategy

import (
	"testing"

	"p3/internal/core"
	"p3/internal/model"
	"p3/internal/zoo"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"baseline", "tensorflow", "wfbp", "slicing", "p3", "asgd", "tictac", "credit-adaptive"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name == "" {
			t.Fatalf("ByName(%q) has empty name", name)
		}
	}
	if s, _ := ByName("tf"); s.Name != "tensorflow" {
		t.Error("tf alias broken")
	}
	if s, _ := ByName("poseidon"); s.Name != "wfbp" {
		t.Error("poseidon alias broken")
	}
	if s, _ := ByName("adaptive"); s.Name != "credit-adaptive" {
		t.Error("adaptive alias broken")
	}
	if _, err := ByName("nccl"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestStrategySemantics(t *testing.T) {
	cases := []struct {
		s     Strategy
		gran  Granularity
		sched string
		pull  PullMode
		async bool
	}{
		{Baseline(), Shards, "fifo", NotifyPull, false},
		{TFStyle(), Shards, "fifo", DeferredPull, false},
		{WFBP(), Shards, "fifo", Immediate, false},
		{SlicingOnly(0), Slices, "fifo", Immediate, false},
		{P3(0), Slices, "p3", Immediate, false},
		{ASGDStrategy(), Shards, "fifo", Immediate, true},
		{TicTac(0), Slices, "tictac", Immediate, false},
		{CreditAdaptive(0), Slices, "credit-adaptive", Immediate, false},
	}
	for _, c := range cases {
		if c.s.Granularity != c.gran || c.s.Sched != c.sched || c.s.Pull != c.pull || c.s.Async != c.async {
			t.Errorf("%s: unexpected semantics %+v", c.s.Name, c.s)
		}
		if c.s.Discipline() != c.sched {
			t.Errorf("%s: Discipline = %q", c.s.Name, c.s.Discipline())
		}
	}
}

func TestWithSched(t *testing.T) {
	s, err := P3(0).WithSched("credit:65536")
	if err != nil {
		t.Fatal(err)
	}
	if s.Discipline() != "credit:65536" || s.Granularity != Slices {
		t.Fatalf("WithSched result %+v", s)
	}
	if _, err := Baseline().WithSched("bogus"); err == nil {
		t.Fatal("unknown discipline accepted")
	}
	if (Strategy{}).Discipline() != "fifo" {
		t.Fatal("zero-value Discipline should default to fifo")
	}
}

func TestPartitionDispatch(t *testing.T) {
	m := zoo.ResNet50()

	p3Plan := P3(10_000).Partition(m, 4)
	if err := p3Plan.Validate(m); err != nil {
		t.Fatal(err)
	}
	for _, c := range p3Plan.Chunks {
		if c.Params > 10_000 {
			t.Fatalf("P3 chunk bigger than requested slice: %v", c)
		}
	}

	basePlan := Baseline().Partition(m, 4)
	if err := basePlan.Validate(m); err != nil {
		t.Fatal(err)
	}
	// KVStore default threshold is 1M: ResNet-50 has layers above it
	// (2048x1000 fc and 2.36M conv) which must be split.
	var split bool
	for l, ids := range basePlan.ByLayer {
		if m.Layers[l].Params >= core.DefaultShardThreshold && len(ids) == 4 {
			split = true
		}
		if m.Layers[l].Params < core.DefaultShardThreshold && len(ids) != 1 {
			t.Fatalf("small layer %d split into %d", l, len(ids))
		}
	}
	if !split {
		t.Fatal("no big layer was split across servers")
	}

	if got, want := p3Plan.NumChunks(), basePlan.NumChunks(); got <= want {
		t.Fatalf("slicing produced %d chunks <= sharding's %d", got, want)
	}
}

func TestStringer(t *testing.T) {
	if P3(0).String() != "p3" {
		t.Fatal("String() broken")
	}
}

// TestComputeProfile checks the profile the tictac ranker consumes:
// deadlines are the cumulative forward times of the model's own Timing
// (non-decreasing, starting at zero), layer byte totals match the tensors,
// and transfer estimation follows the requested wire rate.
func TestComputeProfile(t *testing.T) {
	m := zoo.ResNet50()
	prof := ComputeProfile(m, 10)
	if len(prof.NeedAtNs) != len(m.Layers) || len(prof.LayerBytes) != len(m.Layers) {
		t.Fatalf("profile covers %d/%d layers, model has %d",
			len(prof.NeedAtNs), len(prof.LayerBytes), len(m.Layers))
	}
	if prof.NeedAtNs[0] != 0 {
		t.Fatalf("first layer's deadline %d, want 0 (consumed at forward start)", prof.NeedAtNs[0])
	}
	tm := model.NewTiming(m)
	var acc int64
	for i := range m.Layers {
		if prof.NeedAtNs[i] != acc {
			t.Fatalf("layer %d deadline %d, want cumulative forward %d", i, prof.NeedAtNs[i], acc)
		}
		acc += int64(tm.Fwd[i])
		if prof.LayerBytes[i] != m.Layers[i].Bytes() {
			t.Fatalf("layer %d bytes %d, want %d", i, prof.LayerBytes[i], m.Layers[i].Bytes())
		}
		if i > 0 && prof.NeedAtNs[i] < prof.NeedAtNs[i-1] {
			t.Fatalf("deadlines not monotone at layer %d", i)
		}
	}
	// 1 MB at 10 Gbps is 0.8 ms.
	if got := prof.TxNs(1_000_000); got != 800_000 {
		t.Fatalf("TxNs(1MB)@10Gbps = %d ns, want 800000", got)
	}
}
