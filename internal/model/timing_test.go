package model

import (
	"testing"

	"p3/internal/sim"
)

// TestNewTimingEdgeCases pins NewTiming's behaviour on the degenerate
// shapes the tictac ranker's profile construction depends on: zero-FLOP
// layers (batch-norm/bias tensors) must get zero time without poisoning
// their neighbours, a single-layer model must receive the whole budget,
// and FwdFraction at the extremes (0 and 1 — rejected by Validate but
// reachable through hand-built models) must stay finite and non-negative.
func TestNewTimingEdgeCases(t *testing.T) {
	layer := func(i int, params, flops int64) Layer {
		return Layer{Index: i, Name: "l", Params: params, FwdFLOPs: flops}
	}
	mk := func(fwdFraction float64, layers ...Layer) *Model {
		return &Model{
			Name: "t", Layers: layers, BatchSize: 16,
			PlateauPerWorker: 100, FwdFraction: fwdFraction,
		}
	}
	iter := sim.FromSeconds(16.0 / 100) // BatchSize / PlateauPerWorker

	cases := []struct {
		name string
		m    *Model
		// wantFwdShare[i] is layer i's expected share of the forward budget
		// (nil skips the per-layer check).
		wantFwdShare []float64
		wantFwdTotal sim.Time
	}{
		{
			name:         "single layer",
			m:            mk(1.0/3, layer(0, 1000, 500)),
			wantFwdShare: []float64{1},
			wantFwdTotal: iter / 3,
		},
		{
			name:         "zero-flop layer rides along",
			m:            mk(1.0/3, layer(0, 1000, 300), layer(1, 10, 0), layer(2, 1000, 100)),
			wantFwdShare: []float64{0.75, 0, 0.25},
			wantFwdTotal: iter / 3,
		},
		{
			name:         "all layers zero-flop spreads uniformly",
			m:            mk(0.5, layer(0, 10, 0), layer(1, 10, 0), layer(2, 10, 0), layer(3, 10, 0)),
			wantFwdShare: []float64{0.25, 0.25, 0.25, 0.25},
			wantFwdTotal: iter / 2,
		},
		{
			name:         "fwd fraction 0 puts everything in backward",
			m:            mk(0, layer(0, 1000, 300), layer(1, 1000, 100)),
			wantFwdTotal: 0,
		},
		{
			name:         "fwd fraction 1 puts everything in forward",
			m:            mk(1, layer(0, 1000, 300), layer(1, 1000, 100)),
			wantFwdTotal: iter,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tm := NewTiming(c.m)
			n := len(c.m.Layers)
			if len(tm.Fwd) != n || len(tm.Bwd) != n {
				t.Fatalf("Fwd/Bwd lengths %d/%d, want %d", len(tm.Fwd), len(tm.Bwd), n)
			}
			var fwdSum, bwdSum sim.Time
			for i := 0; i < n; i++ {
				if tm.Fwd[i] < 0 || tm.Bwd[i] < 0 {
					t.Fatalf("layer %d: negative duration fwd=%d bwd=%d", i, tm.Fwd[i], tm.Bwd[i])
				}
				fwdSum += tm.Fwd[i]
				bwdSum += tm.Bwd[i]
			}
			if tm.IterCompute != fwdSum+bwdSum {
				t.Fatalf("IterCompute %d != fwd %d + bwd %d", tm.IterCompute, fwdSum, bwdSum)
			}
			// Rounding may shed a few nanoseconds per layer, never more.
			slack := sim.Time(n + 1)
			if diff := fwdSum - c.wantFwdTotal; diff < -slack || diff > slack {
				t.Fatalf("forward budget %d, want %d (±%d)", fwdSum, c.wantFwdTotal, slack)
			}
			if diff := tm.IterCompute - iter; diff < -slack || diff > slack {
				t.Fatalf("IterCompute %d, want %d (±%d)", tm.IterCompute, iter, slack)
			}
			for i, share := range c.wantFwdShare {
				want := sim.Time(float64(c.wantFwdTotal) * share)
				if diff := tm.Fwd[i] - want; diff < -slack || diff > slack {
					t.Fatalf("layer %d forward %d, want %d (share %.2f)", i, tm.Fwd[i], want, share)
				}
			}
			// A zero-FLOP layer among FLOP-bearing ones gets exactly zero.
			if c.name == "zero-flop layer rides along" {
				if tm.Fwd[1] != 0 || tm.Bwd[1] != 0 {
					t.Fatalf("zero-FLOP layer got fwd=%d bwd=%d, want 0/0", tm.Fwd[1], tm.Bwd[1])
				}
			}
		})
	}
}
