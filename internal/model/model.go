// Package model defines the representation of a DNN used by the timing
// experiments: an ordered list of parameter tensors ("keys" in parameter-
// server terminology) with parameter counts and per-sample FLOP estimates,
// plus a calibrated compute-time model.
//
// The unit of synchronization in MXNet's KVStore — and therefore in this
// reproduction — is the parameter tensor, not the architectural "layer": a
// convolution's weight, a batch-norm's gamma and beta each get their own key.
// The paper's Figure 5 plots exactly this key index on its x axis.
package model

import (
	"fmt"
	"strings"
)

// Kind classifies a parameter tensor by the operation that owns it.
type Kind int

// Parameter tensor kinds.
const (
	KindConv Kind = iota
	KindFC
	KindBatchNorm
	KindBias
	KindEmbedding
	KindRNN
	KindAttention
	KindOther
)

var kindNames = [...]string{"conv", "fc", "batchnorm", "bias", "embedding", "rnn", "attention", "other"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// BytesPerParam is the wire size of one parameter or gradient element.
// MXNet's KVStore ships float32 values.
const BytesPerParam = 4

// Layer is one parameter tensor in forward-pass order.
type Layer struct {
	Index    int    // position in forward-pass order, 0-based
	Name     string // human-readable, e.g. "stage3_unit2_conv2_weight"
	Kind     Kind
	Params   int64 // number of learnable scalars in this tensor
	FwdFLOPs int64 // per-sample forward FLOPs attributed to this tensor's op
}

// Bytes returns the wire size of this tensor's gradient (or parameter) data.
func (l Layer) Bytes() int64 { return l.Params * BytesPerParam }

// Model is a DNN described at parameter-tensor granularity together with the
// calibration constants used by the compute-time model.
type Model struct {
	Name   string
	Layers []Layer

	// BatchSize is the per-worker mini-batch used in the paper's runs.
	BatchSize int
	// SampleUnit is the throughput unit ("images" or "sentences").
	SampleUnit string
	// PlateauPerWorker is the calibrated compute-bound throughput of one
	// worker (samples/second): the value the paper's curves plateau at,
	// divided by the number of machines. It pins the absolute scale of the
	// simulated compute times; everything else is shape.
	PlateauPerWorker float64
	// ComputeJitter is the relative standard deviation of per-iteration
	// compute time across workers. Nonzero only for Sockeye, whose variable
	// sequence lengths make iteration times uneven (paper §5.5).
	ComputeJitter float64
	// FwdFraction is the share of iteration compute spent in the forward
	// pass (backward gets the rest). 1:2 is the conventional split.
	FwdFraction float64
}

// TotalParams returns the total learnable parameter count.
func (m *Model) TotalParams() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.Params
	}
	return n
}

// TotalBytes returns the total gradient bytes exchanged per worker per
// iteration (one direction).
func (m *Model) TotalBytes() int64 { return m.TotalParams() * BytesPerParam }

// TotalFwdFLOPs returns the per-sample forward FLOPs of the whole model.
func (m *Model) TotalFwdFLOPs() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.FwdFLOPs
	}
	return n
}

// NumLayers returns the number of parameter tensors.
func (m *Model) NumLayers() int { return len(m.Layers) }

// Validate checks structural invariants: contiguous indices, positive
// parameter counts, nonempty names.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("model has no name")
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("model %s has no layers", m.Name)
	}
	for i, l := range m.Layers {
		if l.Index != i {
			return fmt.Errorf("model %s: layer %d has index %d", m.Name, i, l.Index)
		}
		if l.Params <= 0 {
			return fmt.Errorf("model %s: layer %q has %d params", m.Name, l.Name, l.Params)
		}
		if l.FwdFLOPs < 0 {
			return fmt.Errorf("model %s: layer %q has negative FLOPs", m.Name, l.Name)
		}
		if l.Name == "" {
			return fmt.Errorf("model %s: layer %d is unnamed", m.Name, i)
		}
	}
	if m.BatchSize <= 0 {
		return fmt.Errorf("model %s: batch size %d", m.Name, m.BatchSize)
	}
	if m.PlateauPerWorker <= 0 {
		return fmt.Errorf("model %s: plateau %f", m.Name, m.PlateauPerWorker)
	}
	if m.FwdFraction <= 0 || m.FwdFraction >= 1 {
		return fmt.Errorf("model %s: forward fraction %f out of (0,1)", m.Name, m.FwdFraction)
	}
	return nil
}

// String summarizes the model.
func (m *Model) String() string {
	return fmt.Sprintf("%s: %d tensors, %.2fM params, %.1f MB gradients, batch %d",
		m.Name, len(m.Layers), float64(m.TotalParams())/1e6,
		float64(m.TotalBytes())/1e6, m.BatchSize)
}

// Table renders the per-tensor parameter distribution (the data behind the
// paper's Figure 5) as a tab-separated table.
func (m *Model) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", m.String())
	fmt.Fprintf(&b, "index\tname\tkind\tparams\tfwd_flops\n")
	for _, l := range m.Layers {
		fmt.Fprintf(&b, "%d\t%s\t%s\t%d\t%d\n", l.Index, l.Name, l.Kind, l.Params, l.FwdFLOPs)
	}
	return b.String()
}
