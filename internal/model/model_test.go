package model

import (
	"strings"
	"testing"

	"p3/internal/sim"
)

func testModel() *Model {
	return &Model{
		Name: "toy",
		Layers: []Layer{
			{Index: 0, Name: "a", Kind: KindConv, Params: 100, FwdFLOPs: 1000},
			{Index: 1, Name: "b", Kind: KindFC, Params: 300, FwdFLOPs: 3000},
			{Index: 2, Name: "c", Kind: KindBias, Params: 50, FwdFLOPs: 0},
		},
		BatchSize:        10,
		SampleUnit:       "images",
		PlateauPerWorker: 100,
		FwdFraction:      1.0 / 3.0,
	}
}

func TestTotals(t *testing.T) {
	m := testModel()
	if got := m.TotalParams(); got != 450 {
		t.Fatalf("TotalParams = %d", got)
	}
	if got := m.TotalBytes(); got != 1800 {
		t.Fatalf("TotalBytes = %d", got)
	}
	if got := m.TotalFwdFLOPs(); got != 4000 {
		t.Fatalf("TotalFwdFLOPs = %d", got)
	}
	if m.NumLayers() != 3 {
		t.Fatalf("NumLayers = %d", m.NumLayers())
	}
}

func TestValidateOK(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"no name", func(m *Model) { m.Name = "" }},
		{"no layers", func(m *Model) { m.Layers = nil }},
		{"bad index", func(m *Model) { m.Layers[1].Index = 5 }},
		{"zero params", func(m *Model) { m.Layers[0].Params = 0 }},
		{"negative flops", func(m *Model) { m.Layers[0].FwdFLOPs = -1 }},
		{"unnamed layer", func(m *Model) { m.Layers[2].Name = "" }},
		{"zero batch", func(m *Model) { m.BatchSize = 0 }},
		{"zero plateau", func(m *Model) { m.PlateauPerWorker = 0 }},
		{"bad fraction", func(m *Model) { m.FwdFraction = 1.5 }},
	}
	for _, c := range cases {
		m := testModel()
		c.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate did not fail", c.name)
		}
	}
}

func TestLayerBytes(t *testing.T) {
	l := Layer{Params: 25}
	if l.Bytes() != 100 {
		t.Fatalf("Bytes = %d, want 100 (4 per param)", l.Bytes())
	}
}

func TestKindString(t *testing.T) {
	if KindConv.String() != "conv" || KindEmbedding.String() != "embedding" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind not reported")
	}
}

func TestTimingDistribution(t *testing.T) {
	m := testModel()
	tm := NewTiming(m)

	// Total compute = batch/plateau = 0.1 s.
	want := sim.FromSeconds(0.1)
	if diff := tm.IterCompute - want; diff < -10 || diff > 10 {
		t.Fatalf("IterCompute = %v, want ~%v", tm.IterCompute, want)
	}

	// Forward gets FwdFraction of the total.
	var fwd sim.Time
	for _, d := range tm.Fwd {
		fwd += d
	}
	wantFwd := sim.Time(float64(want) / 3)
	if diff := fwd - wantFwd; diff < -10 || diff > 10 {
		t.Fatalf("forward total = %v, want ~%v", fwd, wantFwd)
	}

	// Layer b has 3x layer a's FLOPs -> 3x the time; layer c has none.
	if tm.Fwd[1] < tm.Fwd[0]*2 || tm.Fwd[1] > tm.Fwd[0]*4 {
		t.Fatalf("flops share not respected: %v vs %v", tm.Fwd[1], tm.Fwd[0])
	}
	if tm.Fwd[2] != 0 || tm.Bwd[2] != 0 {
		t.Fatalf("zero-FLOP layer got time: %v/%v", tm.Fwd[2], tm.Bwd[2])
	}

	// Backward is twice forward per layer (up to nanosecond rounding).
	for i := range tm.Fwd {
		if tm.Fwd[i] == 0 {
			continue
		}
		diff := tm.Bwd[i] - tm.Fwd[i]*2
		if diff < -2 || diff > 2 {
			t.Fatalf("layer %d: bwd %v != 2*fwd %v", i, tm.Bwd[i], tm.Fwd[i])
		}
	}
}

func TestTimingZeroFLOPsModel(t *testing.T) {
	m := testModel()
	for i := range m.Layers {
		m.Layers[i].FwdFLOPs = 0
	}
	tm := NewTiming(m)
	if tm.IterCompute <= 0 {
		t.Fatal("degenerate model got no compute time")
	}
	if tm.Fwd[0] != tm.Fwd[1] || tm.Fwd[1] != tm.Fwd[2] {
		t.Fatal("uniform fallback not uniform")
	}
}

func TestStringAndTable(t *testing.T) {
	m := testModel()
	if !strings.Contains(m.String(), "toy") {
		t.Fatalf("String = %q", m.String())
	}
	tbl := m.Table()
	if !strings.Contains(tbl, "index\tname") || !strings.Contains(tbl, "\tb\t") {
		t.Fatalf("Table missing content:\n%s", tbl)
	}
}
