package model

import (
	"p3/internal/sim"
)

// Timing maps a model onto the virtual clock: how long each layer's forward
// and backward computation takes on one worker. Absolute scale comes from the
// calibrated compute-bound plateau throughput (DESIGN.md §5); relative
// per-layer shares come from the FLOP estimates, with backward costing twice
// forward (the usual dgrad+wgrad accounting).
type Timing struct {
	// Fwd[i] and Bwd[i] are the compute durations attributed to layer i for
	// one mini-batch on one worker.
	Fwd []sim.Time
	Bwd []sim.Time
	// IterCompute is the total compute time of one iteration (sum of Fwd and
	// Bwd), before any communication delay.
	IterCompute sim.Time
}

// NewTiming derives per-layer compute durations for m.
//
// Total iteration compute = BatchSize / PlateauPerWorker seconds, split
// FwdFraction : (1-FwdFraction) between the passes, then distributed across
// layers proportionally to their forward-FLOP share. Layers with zero FLOPs
// (pure parameter holders such as biases attributed elsewhere) get zero time
// and simply ride along with their neighbours.
func NewTiming(m *Model) *Timing {
	n := len(m.Layers)
	t := &Timing{Fwd: make([]sim.Time, n), Bwd: make([]sim.Time, n)}
	iter := sim.FromSeconds(float64(m.BatchSize) / m.PlateauPerWorker)
	fwdTotal := sim.Time(float64(iter) * m.FwdFraction)
	bwdTotal := iter - fwdTotal
	flops := m.TotalFwdFLOPs()
	if flops == 0 {
		// Degenerate model: spread uniformly.
		for i := range m.Layers {
			t.Fwd[i] = fwdTotal / sim.Time(n)
			t.Bwd[i] = bwdTotal / sim.Time(n)
		}
	} else {
		for i, l := range m.Layers {
			share := float64(l.FwdFLOPs) / float64(flops)
			t.Fwd[i] = sim.Time(float64(fwdTotal) * share)
			t.Bwd[i] = sim.Time(float64(bwdTotal) * share)
		}
	}
	for i := range t.Fwd {
		t.IterCompute += t.Fwd[i] + t.Bwd[i]
	}
	return t
}
