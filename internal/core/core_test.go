package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"p3/internal/model"
	"p3/internal/zoo"
)

func toyModel(sizes ...int64) *model.Model {
	m := &model.Model{Name: "toy", BatchSize: 1, PlateauPerWorker: 1, FwdFraction: 0.5}
	for i, s := range sizes {
		m.Layers = append(m.Layers, model.Layer{
			Index: i, Name: string(rune('a' + i)), Kind: model.KindConv, Params: s, FwdFLOPs: s,
		})
	}
	return m
}

func TestSliceSizesRespectMax(t *testing.T) {
	m := toyModel(120_001, 50_000, 3)
	p := PartitionSlices(m, 50_000, 4)
	if err := p.Validate(m); err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Chunks {
		if c.Params > 50_000 {
			t.Fatalf("chunk %v exceeds max slice size", c)
		}
	}
	// 120001 -> 3 slices; 50000 -> 1; 3 -> 1.
	if got := p.NumChunks(); got != 5 {
		t.Fatalf("chunks = %d, want 5", got)
	}
}

func TestSliceDefault(t *testing.T) {
	m := toyModel(100_000)
	p := PartitionSlices(m, 0, 2)
	if got := p.NumChunks(); got != 2 {
		t.Fatalf("default slicing gave %d chunks, want 2 (50k default)", got)
	}
}

func TestRoundRobinBalance(t *testing.T) {
	m := toyModel(500_000, 500_000, 500_000)
	p := PartitionSlices(m, 50_000, 4)
	load := p.ServerLoad()
	lo, hi := load[0], load[0]
	for _, l := range load[1:] {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	// 30 slices of 50k over 4 servers: 7 or 8 slices each.
	if hi-lo > 50_000 {
		t.Fatalf("round robin imbalance: %v", load)
	}
}

func TestPriorityIsForwardOrder(t *testing.T) {
	m := toyModel(10, 10, 10)
	p := PartitionSlices(m, 50_000, 2)
	for _, c := range p.Chunks {
		if c.Priority != Priority(c.Layer) {
			t.Fatalf("chunk %v: priority != layer index", c)
		}
	}
	if PriorityOf(0) >= PriorityOf(1) {
		t.Fatal("layer 0 must outrank layer 1")
	}
}

func TestShardThresholdBehaviour(t *testing.T) {
	m := toyModel(2_000_000, 999_999, 50)
	p := PartitionShards(m, 1_000_000, 4)
	if err := p.Validate(m); err != nil {
		t.Fatal(err)
	}
	if got := len(p.LayerChunks(0)); got != 4 {
		t.Fatalf("big layer split into %d shards, want 4", got)
	}
	if got := len(p.LayerChunks(1)); got != 1 {
		t.Fatalf("sub-threshold layer split into %d shards, want 1", got)
	}
	if got := len(p.LayerChunks(2)); got != 1 {
		t.Fatalf("small layer split into %d shards, want 1", got)
	}
	// Equal split: shards within one parameter of each other.
	shards := p.LayerChunks(0)
	for _, id := range shards {
		c := p.Chunks[id]
		if c.Params != 500_000 {
			t.Fatalf("shard %v: want 500000 params", c)
		}
	}
}

func TestShardUnevenSplit(t *testing.T) {
	m := toyModel(1_000_003)
	p := PartitionShards(m, 1_000_000, 4)
	if err := p.Validate(m); err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for _, c := range p.Chunks {
		sizes = append(sizes, c.Params)
	}
	// 1000003 = 250001 + 250001 + 250001 + 250000 — remainders lead.
	want := []int64{250_001, 250_001, 250_001, 250_000}
	for i, w := range want {
		if sizes[i] != w {
			t.Fatalf("shard sizes = %v, want %v", sizes, want)
		}
	}
}

func TestShardHashDeterministic(t *testing.T) {
	m := toyModel(10, 20, 30)
	a := PartitionShards(m, 1_000_000, 4)
	b := PartitionShards(m, 1_000_000, 4)
	for i := range a.Chunks {
		if a.Chunks[i].Server != b.Chunks[i].Server {
			t.Fatal("shard placement not deterministic")
		}
	}
}

func TestSingleServer(t *testing.T) {
	m := toyModel(3_000_000)
	for _, p := range []*Plan{PartitionSlices(m, 0, 1), PartitionShards(m, 0, 1)} {
		if err := p.Validate(m); err != nil {
			t.Fatal(err)
		}
		for _, c := range p.Chunks {
			if c.Server != 0 {
				t.Fatalf("chunk on server %d with 1 server", c.Server)
			}
		}
	}
}

func TestPartitionPanicsOnZeroServers(t *testing.T) {
	m := toyModel(10)
	for _, fn := range []func(){
		func() { PartitionSlices(m, 0, 0) },
		func() { PartitionShards(m, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for zero servers")
				}
			}()
			fn()
		}()
	}
}

// TestPartitionProperty: random layer sizes and server counts always produce
// a valid plan under both schemes, with all bytes covered exactly once.
func TestPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xdead))
		nLayers := 1 + rng.IntN(20)
		sizes := make([]int64, nLayers)
		for i := range sizes {
			sizes[i] = 1 + int64(rng.IntN(3_000_000))
		}
		m := toyModel(sizes...)
		servers := 1 + rng.IntN(8)
		maxSlice := int64(1 + rng.IntN(100_000))

		ps := PartitionSlices(m, maxSlice, servers)
		if ps.Validate(m) != nil {
			return false
		}
		var total int64
		for _, c := range ps.Chunks {
			total += c.Params
		}
		if total != m.TotalParams() {
			return false
		}

		sh := PartitionShards(m, int64(1+rng.IntN(2_000_000)), servers)
		if sh.Validate(m) != nil {
			return false
		}
		total = 0
		for _, c := range sh.Chunks {
			total += c.Params
		}
		return total == m.TotalParams()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPaperDefaultSliceCount pins the arithmetic the paper quotes: VGG-19's
// 143.67M parameters cut into 50k slices.
func TestPaperDefaultSliceCount(t *testing.T) {
	m := zoo.VGG19()
	p := PartitionSlices(m, 0, 4)
	if err := p.Validate(m); err != nil {
		t.Fatal(err)
	}
	// ceil per layer; fc6 alone is 102.76M -> 2056 slices.
	if got := len(p.LayerChunks(30)); got == 0 {
		t.Fatal("fc6 missing chunks")
	}
	var fc6Chunks int
	for li, l := range m.Layers {
		if l.Name == "fc6_weight" {
			fc6Chunks = len(p.LayerChunks(li))
		}
	}
	if fc6Chunks != 2056 {
		t.Fatalf("fc6 slices = %d, want 2056 (102.76M / 50k)", fc6Chunks)
	}
}

func TestChunkStringAndBytes(t *testing.T) {
	c := Chunk{ID: 1, Layer: 2, Params: 10}
	if c.Bytes() != 40 {
		t.Fatalf("Bytes = %d", c.Bytes())
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := toyModel(100, 200)
	p := PartitionSlices(m, 64, 2)

	corrupt := func(mutate func(*Plan)) {
		cp := &Plan{Servers: p.Servers, Chunks: append([]Chunk(nil), p.Chunks...)}
		cp.ByLayer = make([][]int, len(p.ByLayer))
		for i := range p.ByLayer {
			cp.ByLayer[i] = append([]int(nil), p.ByLayer[i]...)
		}
		mutate(cp)
		if cp.Validate(m) == nil {
			t.Error("corruption not caught")
		}
	}
	corrupt(func(p *Plan) { p.Chunks[0].Server = 99 })
	corrupt(func(p *Plan) { p.Chunks[0].Params = 0 })
	corrupt(func(p *Plan) { p.Chunks[1].Offset += 3 })
	corrupt(func(p *Plan) { p.Chunks[0].Priority = 42 })
	corrupt(func(p *Plan) { p.ByLayer[0] = p.ByLayer[0][:len(p.ByLayer[0])-1] })
}
