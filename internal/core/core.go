// Package core implements the paper's primary contribution — Priority-based
// Parameter Propagation (P3, Section 4): partitioning a model's parameter
// tensors into independently synchronized chunks, assigning each chunk a
// priority derived from its layer's forward-pass position, and placing
// chunks on parameter servers.
//
// Two partitioning schemes are provided, matching Section 4.1/4.2:
//
//   - PartitionShards: MXNet KVStore's heuristic. A tensor with at least
//     ShardThreshold parameters is split equally across all servers; smaller
//     tensors go whole to one server chosen by a deterministic hash. This is
//     the baseline's layer-granularity scheme — a shard is still updated
//     only as a unit.
//   - PartitionSlices: P3's parameter slicing. Every tensor is cut into
//     slices of at most MaxSliceParams parameters (default 50,000, the
//     paper's empirically optimal value), each slice assigned to servers
//     round-robin and synchronized fully independently.
//
// The logic here is pure (no clock, no sockets); both the discrete-event
// cluster simulator and the real TCP parameter server build on it.
package core

import (
	"fmt"
	"hash/fnv"

	"p3/internal/model"
)

// DefaultMaxSliceParams is the paper's empirically optimal slice size
// (Section 5.7): 50,000 parameters, 200 KB on the wire.
const DefaultMaxSliceParams = 50_000

// DefaultShardThreshold is KVStore's default big-tensor threshold
// (Section 4.1): tensors of at least 10^6 parameters are split across all
// servers.
const DefaultShardThreshold = 1_000_000

// Priority orders synchronization: lower values are more urgent. P3 assigns
// each chunk the forward-pass index of its layer, so the parameters consumed
// first in the next iteration are propagated first (Section 4, Figure 4b).
type Priority int32

// PriorityOf returns the P3 priority of a layer given its forward index.
func PriorityOf(layerIndex int) Priority { return Priority(layerIndex) }

// Chunk is the unit of synchronization: a contiguous range of one layer's
// parameter tensor, pinned to one server.
type Chunk struct {
	ID       int      // dense index within the Plan
	Layer    int      // owning layer (forward-pass index)
	Seq      int      // position among the layer's chunks (offset order)
	Offset   int64    // first parameter within the layer
	Params   int64    // number of parameters
	Server   int      // owning parameter server
	Priority Priority // inherited from the layer
}

// Bytes returns the chunk's payload size on the wire.
func (c Chunk) Bytes() int64 { return c.Params * model.BytesPerParam }

func (c Chunk) String() string {
	return fmt.Sprintf("chunk{id=%d layer=%d seq=%d off=%d n=%d srv=%d prio=%d}",
		c.ID, c.Layer, c.Seq, c.Offset, c.Params, c.Server, c.Priority)
}

// Plan is a complete partitioning of a model for a given server count.
type Plan struct {
	Chunks  []Chunk // all chunks; Chunks[i].ID == i
	ByLayer [][]int // chunk IDs per layer, in offset order
	Servers int
}

// NumChunks returns the total number of chunks.
func (p *Plan) NumChunks() int { return len(p.Chunks) }

// LayerChunks returns the chunk IDs belonging to layer l.
func (p *Plan) LayerChunks(l int) []int { return p.ByLayer[l] }

// ServerLoad returns the number of parameters assigned to each server —
// used to verify the balancing property of round-robin placement.
func (p *Plan) ServerLoad() []int64 {
	load := make([]int64, p.Servers)
	for _, c := range p.Chunks {
		load[c.Server] += c.Params
	}
	return load
}

// Validate checks the partition invariants: chunks of each layer are
// contiguous, non-overlapping, cover the tensor exactly, and land on valid
// servers.
func (p *Plan) Validate(m *model.Model) error {
	if len(p.ByLayer) != len(m.Layers) {
		return fmt.Errorf("plan covers %d layers, model has %d", len(p.ByLayer), len(m.Layers))
	}
	for i, c := range p.Chunks {
		if c.ID != i {
			return fmt.Errorf("chunk %d has ID %d", i, c.ID)
		}
		if c.Server < 0 || c.Server >= p.Servers {
			return fmt.Errorf("chunk %d on invalid server %d", i, c.Server)
		}
		if c.Params <= 0 {
			return fmt.Errorf("chunk %d has %d params", i, c.Params)
		}
	}
	for l, ids := range p.ByLayer {
		var off int64
		for seq, id := range ids {
			c := p.Chunks[id]
			if c.Layer != l {
				return fmt.Errorf("layer %d lists chunk %d of layer %d", l, id, c.Layer)
			}
			if c.Seq != seq {
				return fmt.Errorf("layer %d chunk %d out of order", l, id)
			}
			if c.Offset != off {
				return fmt.Errorf("layer %d chunk %d offset %d, want %d", l, id, c.Offset, off)
			}
			if c.Priority != PriorityOf(l) {
				return fmt.Errorf("layer %d chunk %d priority %d", l, id, c.Priority)
			}
			off += c.Params
		}
		if off != m.Layers[l].Params {
			return fmt.Errorf("layer %d chunks cover %d of %d params", l, off, m.Layers[l].Params)
		}
	}
	return nil
}

// PartitionSlices cuts every layer into slices of at most maxParams
// parameters (P3's parameter slicing) and assigns slices to servers with a
// single global round-robin counter, which balances load both within and
// across layers. maxParams <= 0 selects DefaultMaxSliceParams.
func PartitionSlices(m *model.Model, maxParams int64, servers int) *Plan {
	if maxParams <= 0 {
		maxParams = DefaultMaxSliceParams
	}
	if servers <= 0 {
		panic("core: PartitionSlices needs at least one server")
	}
	p := &Plan{Servers: servers, ByLayer: make([][]int, len(m.Layers))}
	rr := 0
	for l, layer := range m.Layers {
		var off int64
		seq := 0
		for off < layer.Params {
			n := layer.Params - off
			if n > maxParams {
				n = maxParams
			}
			id := len(p.Chunks)
			p.Chunks = append(p.Chunks, Chunk{
				ID: id, Layer: l, Seq: seq, Offset: off, Params: n,
				Server: rr % servers, Priority: PriorityOf(l),
			})
			p.ByLayer[l] = append(p.ByLayer[l], id)
			rr++
			seq++
			off += n
		}
	}
	return p
}

// PartitionShards reproduces KVStore's placement heuristic: layers with at
// least threshold parameters are split into one equal shard per server;
// smaller layers are assigned whole to a server chosen by a deterministic
// hash of the layer name (standing in for KVStore's random choice, which is
// fixed at initialization time). threshold <= 0 selects
// DefaultShardThreshold.
func PartitionShards(m *model.Model, threshold int64, servers int) *Plan {
	if threshold <= 0 {
		threshold = DefaultShardThreshold
	}
	if servers <= 0 {
		panic("core: PartitionShards needs at least one server")
	}
	p := &Plan{Servers: servers, ByLayer: make([][]int, len(m.Layers))}
	for l, layer := range m.Layers {
		if layer.Params >= threshold && servers > 1 {
			// Equal split: the first (params % servers) shards get one extra.
			base := layer.Params / int64(servers)
			extra := layer.Params % int64(servers)
			var off int64
			for s := 0; s < servers; s++ {
				n := base
				if int64(s) < extra {
					n++
				}
				if n == 0 {
					continue
				}
				id := len(p.Chunks)
				p.Chunks = append(p.Chunks, Chunk{
					ID: id, Layer: l, Seq: len(p.ByLayer[l]), Offset: off, Params: n,
					Server: s, Priority: PriorityOf(l),
				})
				p.ByLayer[l] = append(p.ByLayer[l], id)
				off += n
			}
		} else {
			id := len(p.Chunks)
			p.Chunks = append(p.Chunks, Chunk{
				ID: id, Layer: l, Seq: 0, Offset: 0, Params: layer.Params,
				Server: hashServer(layer.Name, servers), Priority: PriorityOf(l),
			})
			p.ByLayer[l] = append(p.ByLayer[l], id)
		}
	}
	return p
}

func hashServer(name string, servers int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(servers))
}
