package core_test

import (
	"fmt"

	"p3/internal/core"
	"p3/internal/model"
)

// ExamplePartitionSlices shows P3's parameter slicing on a toy two-layer
// model: the 120k-parameter layer is cut into three slices (max 50k), each
// assigned round-robin across two servers, all carrying their layer's
// forward-order priority.
func ExamplePartitionSlices() {
	m := &model.Model{
		Name: "toy", BatchSize: 1, PlateauPerWorker: 1, FwdFraction: 0.5,
		Layers: []model.Layer{
			{Index: 0, Name: "conv", Kind: model.KindConv, Params: 120_000, FwdFLOPs: 1},
			{Index: 1, Name: "fc", Kind: model.KindFC, Params: 30_000, FwdFLOPs: 1},
		},
	}
	plan := core.PartitionSlices(m, 50_000, 2)
	for _, c := range plan.Chunks {
		fmt.Println(c)
	}
	// Output:
	// chunk{id=0 layer=0 seq=0 off=0 n=50000 srv=0 prio=0}
	// chunk{id=1 layer=0 seq=1 off=50000 n=50000 srv=1 prio=0}
	// chunk{id=2 layer=0 seq=2 off=100000 n=20000 srv=0 prio=0}
	// chunk{id=3 layer=1 seq=0 off=0 n=30000 srv=1 prio=1}
}

// ExamplePartitionShards shows the baseline KVStore heuristic: tensors at
// or above the threshold split equally across all servers; smaller tensors
// go whole to one hashed server.
func ExamplePartitionShards() {
	m := &model.Model{
		Name: "toy", BatchSize: 1, PlateauPerWorker: 1, FwdFraction: 0.5,
		Layers: []model.Layer{
			{Index: 0, Name: "big", Kind: model.KindFC, Params: 2_000_000, FwdFLOPs: 1},
			{Index: 1, Name: "small", Kind: model.KindBias, Params: 1_000, FwdFLOPs: 1},
		},
	}
	plan := core.PartitionShards(m, 1_000_000, 4)
	fmt.Println("big layer shards:", len(plan.LayerChunks(0)))
	fmt.Println("small layer shards:", len(plan.LayerChunks(1)))
	// Output:
	// big layer shards: 4
	// small layer shards: 1
}
